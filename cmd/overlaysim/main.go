// Command overlaysim drives the page-overlay simulator's experiment
// harness. Each subcommand regenerates one table or figure from the
// paper's evaluation (§5):
//
//	overlaysim config                 Table 2 (simulated system)
//	overlaysim fork                   Figures 8 and 9 (overlay-on-write vs copy-on-write)
//	overlaysim spmv                   Figure 10 (SpMV: overlays vs CSR)
//	overlaysim linesize               Figure 11 (memory overhead vs granularity)
//	overlaysim sweep                  §5.2 sparsity sweep (overlays vs dense)
//	overlaysim dualcore               extension: divergence with both processes running
//	overlaysim trace                  record a workload trace / replay one through the simulator
//	overlaysim stats                  run one fork benchmark and dump all counters
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/exp"
	"repro/internal/system"
	"repro/internal/trace"
	"repro/internal/workload"
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: overlaysim <config|fork|spmv|linesize|sweep|dualcore|trace|stats> [flags]")
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "config":
		system.Describe(os.Stdout, system.Default())
	case "fork":
		err = forkCmd(os.Args[2:])
	case "spmv":
		err = spmvCmd(os.Args[2:])
	case "linesize":
		err = linesizeCmd(os.Args[2:])
	case "sweep":
		err = sweepCmd(os.Args[2:])
	case "dualcore":
		exp.PrintDualCore(os.Stdout, []exp.DualCoreResult{
			exp.RunDualCoreDivergence(true),
			exp.RunDualCoreDivergence(false),
		})
	case "trace":
		err = traceCmd(os.Args[2:])
	case "stats":
		err = statsCmd(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "overlaysim:", err)
		os.Exit(1)
	}
}

func forkCmd(args []string) error {
	fs := flag.NewFlagSet("fork", flag.ExitOnError)
	warm := fs.Uint64("warm", exp.DefaultForkParams().WarmInstructions, "warm-up instructions before the fork")
	measure := fs.Uint64("measure", exp.DefaultForkParams().MeasureInstructions, "instructions measured after the fork")
	bench := fs.String("bench", "", "run a single benchmark (default: all 15)")
	fs.Parse(args)
	params := exp.ForkParams{WarmInstructions: *warm, MeasureInstructions: *measure}
	var names []string
	if *bench != "" {
		names = []string{*bench}
	}
	results, err := exp.RunForkSuite(params, names)
	if err != nil {
		return err
	}
	exp.PrintFigure8(os.Stdout, results)
	fmt.Println()
	exp.PrintFigure9(os.Stdout, results)
	return nil
}

func spmvCmd(args []string) error {
	fs := flag.NewFlagSet("spmv", flag.ExitOnError)
	limit := fs.Int("matrices", 0, "number of suite matrices to run (0 = all 87)")
	dense := fs.Bool("dense", false, "also run the dense baseline")
	fs.Parse(args)
	results, err := exp.RunFigure10(*limit, *dense)
	if err != nil {
		return err
	}
	exp.PrintFigure10(os.Stdout, results)
	return nil
}

func linesizeCmd(args []string) error {
	fs := flag.NewFlagSet("linesize", flag.ExitOnError)
	limit := fs.Int("matrices", 0, "number of suite matrices (0 = all 87)")
	fs.Parse(args)
	exp.PrintFigure11(os.Stdout, exp.RunFigure11(*limit))
	return nil
}

func sweepCmd(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	points := fs.Int("points", 11, "sparsity levels between 0%% and 100%%")
	rows := fs.Int("rows", 256, "matrix dimension")
	fs.Parse(args)
	results, err := exp.RunSparsitySweep(*points, *rows)
	if err != nil {
		return err
	}
	exp.PrintSweep(os.Stdout, results)
	return nil
}

func statsCmd(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	bench := fs.String("bench", "mcf", "benchmark to run")
	overlay := fs.Bool("overlay", true, "use overlay-on-write (false: copy-on-write)")
	measure := fs.Uint64("measure", exp.QuickForkParams().MeasureInstructions, "instructions after fork")
	fs.Parse(args)
	spec, err := workload.ByName(*bench)
	if err != nil {
		return err
	}
	cfg := core.DefaultConfig()
	cfg.MemoryPages = spec.Pages*2 + 16384
	stats, err := exp.RunWithStats(spec, cfg, exp.ForkParams{
		WarmInstructions:    exp.QuickForkParams().WarmInstructions,
		MeasureInstructions: *measure,
	}, *overlay)
	if err != nil {
		return err
	}
	fmt.Print(stats)
	return nil
}

func traceCmd(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	bench := fs.String("bench", "mcf", "benchmark to record")
	out := fs.String("out", "", "record the trace to this file")
	in := fs.String("in", "", "replay a recorded trace through the simulator")
	n := fs.Uint64("n", 100000, "instructions to record")
	fs.Parse(args)

	if *out != "" {
		spec, err := workload.ByName(*bench)
		if err != nil {
			return err
		}
		fh, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer fh.Close()
		count, err := trace.Record(fh, spec.NewTrace(), *n)
		if err != nil {
			return err
		}
		fmt.Printf("recorded %d instructions of %s to %s\n", count, *bench, *out)
		return nil
	}
	if *in != "" {
		fh, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer fh.Close()
		r, err := trace.NewReader(fh)
		if err != nil {
			return err
		}
		spec, err := workload.ByName(*bench)
		if err != nil {
			return err
		}
		cfg := core.DefaultConfig()
		cfg.MemoryPages = spec.Pages*2 + 16384
		f, err := core.New(cfg)
		if err != nil {
			return err
		}
		proc := f.VM.NewProcess()
		if err := spec.MapFootprint(f, proc); err != nil {
			return err
		}
		port := f.NewPort()
		c := cpu.New(f.Engine, port, proc.PID, r)
		c.Run(0, nil)
		f.Engine.Run()
		if r.Err() != nil {
			return r.Err()
		}
		fmt.Printf("replayed %d instructions in %d cycles (CPI %.3f)\n",
			c.Retired(), c.Cycles(), c.CPI())
		return nil
	}
	return fmt.Errorf("trace: need -out (record) or -in (replay)")
}
