// Command overlaysim drives the page-overlay simulator's experiment
// harness. Each subcommand regenerates one table or figure from the
// paper's evaluation (§5):
//
//	overlaysim config                 Table 2 (simulated system)
//	overlaysim fork                   Figures 8 and 9 (overlay-on-write vs copy-on-write)
//	overlaysim spmv                   Figure 10 (SpMV: overlays vs CSR)
//	overlaysim linesize               Figure 11 (memory overhead vs granularity)
//	overlaysim sweep                  §5.2 sparsity sweep (overlays vs dense)
//	overlaysim dualcore               extension: divergence with both processes running
//	overlaysim compare                cross-backend comparison (overlay / baseline / vbi / utopia)
//	overlaysim omsstress              multi-tenant OMS churn with cooling eviction and spill tier
//	overlaysim bench                  fixed job matrix: parallel-vs-sequential baseline for CI
//	overlaysim trace                  record a workload trace / replay one through the simulator
//	overlaysim stats                  run one fork benchmark and dump all counters
//	overlaysim serve                  serve experiment jobs over HTTP (docs/API.md)
//	overlaysim coordinator            shard jobs across serve workers (docs/CLUSTER.md)
//
// Most subcommands accept -json=<file> (machine-readable schema-versioned
// export), -csv=<file> (epoch series rows) and -tracelog=<file> (Chrome
// trace_event JSON for chrome://tracing / Perfetto). The experiment
// subcommands accept -parallel=<n> to fan independent simulations across
// n worker goroutines (results are bit-identical at any n). Every
// subcommand accepts -cpuprofile=<file> and -memprofile=<file> to capture
// pprof profiles of the invocation. Usage errors exit with status 2,
// runtime errors with status 1.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/exp"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/system"
	"repro/internal/trace"
	"repro/internal/workload"
)

// command is one subcommand: its flag set is bound to closure variables
// inside the constructor, and run executes after a successful parse.
// Live progress goes to stderr; results go to stdout.
type command struct {
	name    string
	summary string
	flags   *flag.FlagSet
	prof    *profileFlags
	run     func(stdout, stderr io.Writer) error
}

// usageError marks an error as a bad-invocation problem (exit status 2)
// rather than a runtime failure (exit status 1).
type usageError string

func (e usageError) Error() string { return string(e) }

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run dispatches args to a subcommand and returns the process exit code:
// 0 on success, 1 on runtime error, 2 on usage error.
func run(args []string, stdout, stderr io.Writer) int {
	cmds := commands()
	usage := func() {
		fmt.Fprintln(stderr, "usage: overlaysim <command> [flags]")
		fmt.Fprintln(stderr, "\ncommands:")
		for _, c := range cmds {
			fmt.Fprintf(stderr, "\n  %-10s %s\n", c.name, c.summary)
			c.flags.SetOutput(stderr)
			c.flags.PrintDefaults()
		}
	}
	if len(args) < 1 {
		usage()
		return 2
	}
	var cmd *command
	for _, c := range cmds {
		if c.name == args[0] {
			cmd = c
			break
		}
	}
	if cmd == nil {
		fmt.Fprintf(stderr, "overlaysim: unknown command %q\n", args[0])
		usage()
		return 2
	}
	cmd.flags.SetOutput(stderr)
	if err := cmd.flags.Parse(args[1:]); err != nil {
		return 2
	}
	exitCode := func(err error) int {
		fmt.Fprintln(stderr, "overlaysim:", err)
		var ue usageError
		if errors.As(err, &ue) {
			return 2
		}
		return 1
	}
	stopProfiles, err := cmd.prof.start()
	if err != nil {
		return exitCode(err)
	}
	err = cmd.run(stdout, stderr)
	if perr := stopProfiles(); err == nil {
		err = perr
	}
	if err != nil {
		return exitCode(err)
	}
	return 0
}

// commands builds a fresh subcommand table (fresh flag sets, so tests can
// invoke run repeatedly without flag redefinition panics).
func commands() []*command {
	return []*command{
		newConfigCmd(),
		newForkCmd(),
		newSpmvCmd(),
		newLinesizeCmd(),
		newSweepCmd(),
		newDualcoreCmd(),
		newCompareCmd(),
		newOMSStressCmd(),
		newBenchCmd(),
		newTraceCmd(),
		newStatsCmd(),
		newServeCmd(),
		newCoordinatorCmd(),
	}
}

// addBackendFlag registers the shared -backend flag. parseBackend
// validates the value against the registered-backend list at flag-parse
// time: an unknown name is a usage error (exit 2) listing the valid
// names, not a simulation-time panic.
func addBackendFlag(fs *flag.FlagSet) *string {
	return fs.String("backend", "",
		fmt.Sprintf("translation backend: one of %s (default %s)",
			strings.Join(core.Backends(), ", "), core.DefaultBackend))
}

func parseBackend(backend string) (string, error) {
	if err := core.ValidBackend(backend); err != nil {
		return "", usageError(err.Error())
	}
	// The default backend canonicalises to the empty string so exports
	// and warm-state family keys match a run without the flag.
	if backend == core.DefaultBackend {
		return "", nil
	}
	return backend, nil
}

// profileFlags is the pprof flag group shared by every subcommand.
type profileFlags struct {
	cpuPath string
	memPath string
}

func addProfileFlags(fs *flag.FlagSet) *profileFlags {
	p := &profileFlags{}
	fs.StringVar(&p.cpuPath, "cpuprofile", "", "write a pprof CPU profile of this invocation to `file`")
	fs.StringVar(&p.memPath, "memprofile", "", "write a pprof heap profile taken at exit to `file`")
	return p
}

// start opens both profile outputs (so an unwritable path fails fast, as
// a usage error) and begins CPU profiling. The returned stop function
// finishes the CPU profile and records the heap profile; it must be
// called exactly once.
func (p *profileFlags) start() (stop func() error, err error) {
	var cpuFh, memFh *os.File
	if p.cpuPath != "" {
		if cpuFh, err = os.Create(p.cpuPath); err != nil {
			return nil, usageError(fmt.Sprintf("invalid -cpuprofile: %v", err))
		}
	}
	if p.memPath != "" {
		if memFh, err = os.Create(p.memPath); err != nil {
			if cpuFh != nil {
				cpuFh.Close()
			}
			return nil, usageError(fmt.Sprintf("invalid -memprofile: %v", err))
		}
	}
	if cpuFh != nil {
		if err := pprof.StartCPUProfile(cpuFh); err != nil {
			cpuFh.Close()
			if memFh != nil {
				memFh.Close()
			}
			return nil, err
		}
	}
	return func() error {
		var firstErr error
		if cpuFh != nil {
			pprof.StopCPUProfile()
			firstErr = cpuFh.Close()
		}
		if memFh != nil {
			runtime.GC() // flatten transient garbage so live heap dominates
			if err := pprof.WriteHeapProfile(memFh); err != nil && firstErr == nil {
				firstErr = err
			}
			if err := memFh.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}, nil
}

// addParallelFlag registers the shared -parallel flag. parsePool turns
// it into the experiment pool, rejecting negative counts as usage
// errors (0 selects GOMAXPROCS).
func addParallelFlag(fs *flag.FlagSet) *int {
	return fs.Int("parallel", 1, "worker goroutines for independent simulations (0 = GOMAXPROCS)")
}

func parsePool(parallel int, stderr io.Writer) (exp.Pool, error) {
	if parallel < 0 {
		return exp.Pool{}, usageError(fmt.Sprintf("invalid -parallel %d: must be >= 0", parallel))
	}
	return exp.Pool{Parallel: parallel, Progress: stderr}, nil
}

// addColdFlag registers the shared -cold flag on experiments with a
// warm-state snapshot path.
func addColdFlag(fs *flag.FlagSet) *bool {
	return fs.Bool("cold", false, "disable warm-state snapshot reuse (results are bit-identical either way)")
}

// telemetryFlags is the flag group shared by every measuring subcommand.
type telemetryFlags struct {
	jsonPath  string
	csvPath   string
	tracePath string
	spansPath string
	traceCap  int
	epoch     uint64
}

func addTelemetryFlags(fs *flag.FlagSet) *telemetryFlags {
	t := &telemetryFlags{}
	fs.StringVar(&t.jsonPath, "json", "", "write the machine-readable export (JSON, schema v1) to this `file`")
	fs.StringVar(&t.csvPath, "csv", "", "write epoch time-series rows (CSV) to this `file`")
	fs.StringVar(&t.tracePath, "tracelog", "", "write structured simulator events (Chrome trace_event JSON) to this `file`")
	fs.StringVar(&t.spansPath, "spans", "", "write host-side timing spans (JSONL) to this `file`; spans also merge into -tracelog")
	fs.IntVar(&t.traceCap, "tracecap", sim.DefaultTraceCap, "trace ring-buffer capacity in `events`")
	fs.Uint64Var(&t.epoch, "epoch", uint64(sim.DefaultEpoch), "series sampling period in `cycles`")
	return t
}

// wanted reports whether any telemetry output was requested.
func (t *telemetryFlags) wanted() bool {
	return t.jsonPath != "" || t.csvPath != "" || t.tracePath != "" || t.spansPath != ""
}

// traceLog returns the shared trace ring if -tracelog was given.
func (t *telemetryFlags) traceLog() *sim.TraceLog {
	if t.tracePath == "" {
		return nil
	}
	return sim.NewTraceLog(t.traceCap)
}

// traceContext equips the command's context with a span tracer when
// -spans (or -tracelog, which embeds the spans) was requested: the
// harness and experiment phases record wall-clock spans under a
// "cli.<cmd>" root. finish ends the root and returns every recorded
// span; without span output it returns nil and the context is plain.
func (t *telemetryFlags) traceContext(cmd string) (ctx context.Context, finish func() []obs.Span) {
	if t.spansPath == "" && t.tracePath == "" {
		return context.Background(), func() []obs.Span { return nil }
	}
	tr := obs.NewTracer(obs.TraceID{}, 0)
	ctx = obs.NewContext(context.Background(), tr)
	ctx, root := obs.StartSpan(ctx, "cli."+cmd)
	return ctx, func() []obs.Span {
		root.End()
		return tr.Spans()
	}
}

// telemetryOutputs holds the eagerly-created output files between a
// command's flag parse and its final write.
type telemetryOutputs struct {
	json, csv, trace, spans *os.File
}

// open creates every requested output file up front, so an unwritable
// path is a usage error (exit 2) before minutes of simulation — the
// same fail-fast contract profileFlags.start has.
func (t *telemetryFlags) open() (*telemetryOutputs, error) {
	o := &telemetryOutputs{}
	for _, out := range []struct {
		path string
		flag string
		dst  **os.File
	}{
		{t.jsonPath, "json", &o.json},
		{t.csvPath, "csv", &o.csv},
		{t.tracePath, "tracelog", &o.trace},
		{t.spansPath, "spans", &o.spans},
	} {
		if out.path == "" {
			continue
		}
		fh, err := os.Create(out.path)
		if err != nil {
			o.close()
			return nil, usageError(fmt.Sprintf("invalid -%s: %v", out.flag, err))
		}
		*out.dst = fh
	}
	return o, nil
}

// close releases any handles write has not consumed yet. Idempotent, so
// commands can defer it and still call write on the success path.
func (o *telemetryOutputs) close() {
	for _, fh := range []**os.File{&o.json, &o.csv, &o.trace, &o.spans} {
		if *fh != nil {
			(*fh).Close()
			*fh = nil
		}
	}
}

// flush emits one output and consumes its handle.
func flush(fh **os.File, emit func(io.Writer) error) error {
	if *fh == nil {
		return nil
	}
	err := emit(*fh)
	if cerr := (*fh).Close(); err == nil {
		err = cerr
	}
	*fh = nil
	return err
}

// write emits the requested telemetry files. Any of the inputs may be
// nil; an output whose input is nil is left empty. Host-side spans go
// to -spans as JSONL and additionally merge into the -tracelog Chrome
// document (simulated-cycle tracks at pid >= 1, wall-clock spans at
// pid 0).
func (o *telemetryOutputs) write(ex *sim.Export, series []*sim.Series, tl *sim.TraceLog, spans []obs.Span) error {
	defer o.close()
	if ex != nil {
		if err := flush(&o.json, ex.WriteJSON); err != nil {
			return err
		}
	}
	if err := flush(&o.csv, func(w io.Writer) error {
		return sim.WriteSeriesCSV(w, series...)
	}); err != nil {
		return err
	}
	if err := flush(&o.spans, func(w io.Writer) error {
		return obs.WriteSpansJSONL(w, spans)
	}); err != nil {
		return err
	}
	if tl != nil {
		if err := flush(&o.trace, func(w io.Writer) error {
			simRecords, err := tl.ChromeRecords()
			if err != nil {
				return err
			}
			spanRecords, err := obs.ChromeRecords(spans)
			if err != nil {
				return err
			}
			return sim.WriteChromeTrace(w, simRecords, spanRecords)
		}); err != nil {
			return err
		}
	}
	return nil
}

func newConfigCmd() *command {
	fs := flag.NewFlagSet("config", flag.ContinueOnError)
	return &command{
		name:    "config",
		summary: "print the simulated system (Table 2)",
		flags:   fs,
		prof:    addProfileFlags(fs),
		run: func(stdout, _ io.Writer) error {
			system.Describe(stdout, system.Default())
			return nil
		},
	}
}

func newForkCmd() *command {
	fs := flag.NewFlagSet("fork", flag.ContinueOnError)
	warm := fs.Uint64("warm", exp.DefaultForkParams().WarmInstructions, "warm-up instructions before the fork")
	measure := fs.Uint64("measure", exp.DefaultForkParams().MeasureInstructions, "instructions measured after the fork")
	bench := fs.String("bench", "", "run a single benchmark (default: all 15)")
	backend := addBackendFlag(fs)
	parallel := addParallelFlag(fs)
	cold := addColdFlag(fs)
	tel := addTelemetryFlags(fs)
	return &command{
		name:    "fork",
		summary: "Figures 8 and 9: overlay-on-write vs copy-on-write",
		flags:   fs,
		prof:    addProfileFlags(fs),
		run: func(stdout, stderr io.Writer) error {
			pool, err := parsePool(*parallel, stderr)
			if err != nil {
				return err
			}
			be, err := parseBackend(*backend)
			if err != nil {
				return err
			}
			pool.Cold = *cold
			snap := &exp.SnapshotStats{}
			pool.Snap = snap
			outs, err := tel.open()
			if err != nil {
				return err
			}
			defer outs.close()
			tl := tel.traceLog()
			params := exp.ForkParams{
				WarmInstructions:    *warm,
				MeasureInstructions: *measure,
				Backend:             be,
				SeriesEpoch:         sim.Cycle(tel.epoch),
				Trace:               tl,
			}
			var names []string
			if *bench != "" {
				names = []string{*bench}
			}
			ctx, finishSpans := tel.traceContext("fork")
			results, err := exp.RunForkSuitePool(ctx, pool, params, names)
			if err != nil {
				return err
			}
			exp.PrintFigure8(stdout, results)
			fmt.Fprintln(stdout)
			exp.PrintFigure9(stdout, results)
			if !tel.wanted() {
				return nil
			}
			ex := exp.ForkExport(params, results)
			snap.Provenance().AttachCounters(ex)
			var series []*sim.Series
			for i := range results {
				series = append(series, results[i].CoW.Series, results[i].OoW.Series)
			}
			return outs.write(ex, series, tl, finishSpans())
		},
	}
}

func newSpmvCmd() *command {
	fs := flag.NewFlagSet("spmv", flag.ContinueOnError)
	limit := fs.Int("matrices", 0, "number of suite matrices to run (0 = all 87)")
	dense := fs.Bool("dense", false, "also run the dense baseline")
	parallel := addParallelFlag(fs)
	cold := addColdFlag(fs)
	tel := addTelemetryFlags(fs)
	return &command{
		name:    "spmv",
		summary: "Figure 10: SpMV with overlays vs CSR",
		flags:   fs,
		prof:    addProfileFlags(fs),
		run: func(stdout, stderr io.Writer) error {
			pool, err := parsePool(*parallel, stderr)
			if err != nil {
				return err
			}
			if *limit < 0 {
				return usageError(fmt.Sprintf("invalid -matrices %d: must be >= 0", *limit))
			}
			outs, err := tel.open()
			if err != nil {
				return err
			}
			defer outs.close()
			pool.Cold = *cold
			snap := &exp.SnapshotStats{}
			pool.Snap = snap
			ctx, finishSpans := tel.traceContext("spmv")
			results, err := exp.RunFigure10Pool(ctx, pool, *limit, *dense)
			if err != nil {
				return err
			}
			exp.PrintFigure10(stdout, results)
			if !tel.wanted() {
				return nil
			}
			ex := sim.NewExport("spmv")
			ex.Results = results
			snap.Provenance().AttachCounters(ex)
			return outs.write(ex, nil, nil, finishSpans())
		},
	}
}

func newLinesizeCmd() *command {
	fs := flag.NewFlagSet("linesize", flag.ContinueOnError)
	limit := fs.Int("matrices", 0, "number of suite matrices (0 = all 87)")
	parallel := addParallelFlag(fs)
	cold := addColdFlag(fs)
	tel := addTelemetryFlags(fs)
	return &command{
		name:    "linesize",
		summary: "Figure 11: memory overhead vs mapping granularity",
		flags:   fs,
		prof:    addProfileFlags(fs),
		run: func(stdout, stderr io.Writer) error {
			pool, err := parsePool(*parallel, stderr)
			if err != nil {
				return err
			}
			if *limit < 0 {
				return usageError(fmt.Sprintf("invalid -matrices %d: must be >= 0", *limit))
			}
			outs, err := tel.open()
			if err != nil {
				return err
			}
			defer outs.close()
			// linesize is purely analytic today (a degenerate family with
			// nothing to warm), but it accepts -cold so the flag surface
			// matches the job-spec table.
			pool.Cold = *cold
			ctx, finishSpans := tel.traceContext("linesize")
			results, err := exp.RunFigure11Pool(ctx, pool, *limit)
			if err != nil {
				return err
			}
			exp.PrintFigure11(stdout, results)
			if !tel.wanted() {
				return nil
			}
			ex := sim.NewExport("linesize")
			ex.Results = results
			return outs.write(ex, nil, nil, finishSpans())
		},
	}
}

func newSweepCmd() *command {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	points := fs.Int("points", 11, "sparsity levels between 0%% and 100%%")
	rows := fs.Int("rows", 256, "matrix dimension")
	parallel := addParallelFlag(fs)
	cold := addColdFlag(fs)
	tel := addTelemetryFlags(fs)
	return &command{
		name:    "sweep",
		summary: "§5.2 sparsity sweep: overlays vs dense",
		flags:   fs,
		prof:    addProfileFlags(fs),
		run: func(stdout, stderr io.Writer) error {
			pool, err := parsePool(*parallel, stderr)
			if err != nil {
				return err
			}
			if *points < 2 {
				return usageError(fmt.Sprintf("invalid -points %d: need at least 2 sweep points", *points))
			}
			if *rows < 8 {
				return usageError(fmt.Sprintf("invalid -rows %d: need at least one cache line of values", *rows))
			}
			outs, err := tel.open()
			if err != nil {
				return err
			}
			defer outs.close()
			pool.Cold = *cold
			snap := &exp.SnapshotStats{}
			pool.Snap = snap
			ctx, finishSpans := tel.traceContext("sweep")
			results, err := exp.RunSparsitySweepPool(ctx, pool, *points, *rows)
			if err != nil {
				return err
			}
			exp.PrintSweep(stdout, results)
			if !tel.wanted() {
				return nil
			}
			ex := sim.NewExport("sweep")
			ex.Results = results
			snap.Provenance().AttachCounters(ex)
			return outs.write(ex, nil, nil, finishSpans())
		},
	}
}

func newDualcoreCmd() *command {
	fs := flag.NewFlagSet("dualcore", flag.ContinueOnError)
	parallel := addParallelFlag(fs)
	tel := addTelemetryFlags(fs)
	return &command{
		name:    "dualcore",
		summary: "extension: page divergence with both processes running",
		flags:   fs,
		prof:    addProfileFlags(fs),
		run: func(stdout, stderr io.Writer) error {
			pool, err := parsePool(*parallel, stderr)
			if err != nil {
				return err
			}
			outs, err := tel.open()
			if err != nil {
				return err
			}
			defer outs.close()
			ctx, finishSpans := tel.traceContext("dualcore")
			results, err := exp.RunDualCorePool(ctx, pool)
			if err != nil {
				return err
			}
			exp.PrintDualCore(stdout, results)
			if !tel.wanted() {
				return nil
			}
			ex := sim.NewExport("dualcore")
			ex.Results = results
			return outs.write(ex, nil, nil, finishSpans())
		},
	}
}

func newCompareCmd() *command {
	fs := flag.NewFlagSet("compare", flag.ContinueOnError)
	defaults := exp.DefaultCompareParams()
	bench := fs.String("bench", defaults.Bench, "fork benchmark each backend runs")
	backend := addBackendFlag(fs)
	warm := fs.Uint64("warm", defaults.Warm, "warm-up instructions before the fork")
	measure := fs.Uint64("measure", defaults.Measure, "instructions measured after the fork")
	matrices := fs.Int("matrices", defaults.Matrices, "SpMV suite matrices each backend runs")
	parallel := addParallelFlag(fs)
	cold := addColdFlag(fs)
	tel := addTelemetryFlags(fs)
	return &command{
		name:    "compare",
		summary: "run the same workloads across translation backends (overlay, baseline, vbi, utopia)",
		flags:   fs,
		prof:    addProfileFlags(fs),
		run: func(stdout, stderr io.Writer) error {
			pool, err := parsePool(*parallel, stderr)
			if err != nil {
				return err
			}
			if err := core.ValidBackend(*backend); err != nil {
				return usageError(err.Error())
			}
			if *matrices < 0 {
				return usageError(fmt.Sprintf("invalid -matrices %d: must be >= 0", *matrices))
			}
			outs, err := tel.open()
			if err != nil {
				return err
			}
			defer outs.close()
			pool.Cold = *cold
			snap := &exp.SnapshotStats{}
			pool.Snap = snap
			params := exp.CompareParams{
				Bench:    *bench,
				Warm:     *warm,
				Measure:  *measure,
				Matrices: *matrices,
			}
			// -backend restricts the run to one backend; default is all.
			if *backend != "" {
				params.Backends = []string{*backend}
			}
			ctx, finishSpans := tel.traceContext("compare")
			report, err := exp.RunComparePool(ctx, pool, params)
			if err != nil {
				return err
			}
			exp.PrintCompare(stdout, report)
			if !tel.wanted() {
				return nil
			}
			ex := exp.CompareExport(params, report)
			snap.Provenance().AttachCounters(ex)
			return outs.write(ex, nil, nil, finishSpans())
		},
	}
}

func newOMSStressCmd() *command {
	fs := flag.NewFlagSet("omsstress", flag.ContinueOnError)
	defaults := exp.DefaultOMSStressParams()
	tenants := fs.Int("tenants", defaults.Tenants, "concurrent tenant stores")
	ops := fs.Int("ops", defaults.Ops, "churn operations per tenant")
	segments := fs.Int("segments", defaults.Segments, "overlay segments per tenant (working-set bound)")
	capacity := fs.Int("oms-capacity", defaults.Capacity, "frame budget per tenant store (-1 = unlimited, no eviction)")
	spill := fs.Bool("oms-spill", defaults.Spill, "evict cold segments to the modeled spill tier")
	shared := fs.Bool("shared", false, "route all tenants through one lock-striped shared store (results are bit-identical either way)")
	parallel := addParallelFlag(fs)
	tel := addTelemetryFlags(fs)
	return &command{
		name:    "omsstress",
		summary: "multi-tenant OMS buffer-manager churn: cooling eviction and beyond-DRAM spill",
		flags:   fs,
		prof:    addProfileFlags(fs),
		run: func(stdout, stderr io.Writer) error {
			pool, err := parsePool(*parallel, stderr)
			if err != nil {
				return err
			}
			if *tenants < 1 || *ops < 1 || *segments < 1 {
				return usageError("omsstress: -tenants, -ops and -segments must be >= 1")
			}
			// Capacity semantics match the job spec: -1 = unlimited,
			// 0 normalizes to the default budget.
			capFrames := *capacity
			switch {
			case capFrames < -1:
				return usageError(fmt.Sprintf("invalid -oms-capacity %d: want a frame count, 0 for the default, or -1 for unlimited", capFrames))
			case capFrames == -1:
				capFrames = 0 // unlimited: never hand SetCapacity a budget
			case capFrames == 0:
				capFrames = defaults.Capacity
			}
			outs, err := tel.open()
			if err != nil {
				return err
			}
			defer outs.close()
			params := exp.OMSStressParams{
				Tenants:  *tenants,
				Ops:      *ops,
				Segments: *segments,
				Capacity: capFrames,
				Spill:    *spill,
				Shared:   *shared,
			}
			ctx, finishSpans := tel.traceContext("omsstress")
			results, _, err := exp.RunOMSStressPool(ctx, pool, params)
			if err != nil {
				return err
			}
			exp.PrintOMSStress(stdout, params, results)
			if !tel.wanted() {
				return nil
			}
			ex := sim.NewExport("omsstress")
			ex.Results = results
			return outs.write(ex, nil, nil, finishSpans())
		},
	}
}

func newBenchCmd() *command {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	short := fs.Bool("short", false, "run the quick CI matrix instead of the full one")
	parallel := fs.Int("parallel", 0, "worker goroutines for the parallel phase (0 = GOMAXPROCS)")
	jsonPath := fs.String("json", "", "write the machine-readable baseline (JSON, schema v1) to this `file`")
	check := fs.String("check", "", "compare this run against the recorded baseline `file`; drift exits 1")
	wallTol := fs.Float64("wall-tolerance", 0.25, "allowed wall-clock regression vs baseline (0.25 = +25%%; 0 disables)")
	benches := fs.String("benches", "", "override the fork benchmark list (comma-separated)")
	warm := fs.Uint64("warm", 0, "override fork warm-up instructions")
	measure := fs.Uint64("measure", 0, "override fork measured instructions")
	matrices := fs.Int("matrices", 0, "override the SpMV/linesize matrix count")
	points := fs.Int("points", 0, "override the sparsity-sweep point count")
	rows := fs.Int("rows", 0, "override the sparsity-sweep matrix dimension")
	return &command{
		name:    "bench",
		summary: "run the fixed experiment matrix sequentially and in parallel; baseline for CI",
		flags:   fs,
		prof:    addProfileFlags(fs),
		run: func(stdout, stderr io.Writer) error {
			if *parallel < 0 {
				return usageError(fmt.Sprintf("invalid -parallel %d: must be >= 0", *parallel))
			}
			if *wallTol < 0 {
				return usageError(fmt.Sprintf("invalid -wall-tolerance %g: must be >= 0", *wallTol))
			}
			// Open the export and load the baseline before spending
			// minutes simulating: a bad path is a usage error now, not
			// a runtime error after the run.
			var jsonFh *os.File
			if *jsonPath != "" {
				var err error
				if jsonFh, err = os.Create(*jsonPath); err != nil {
					return usageError(fmt.Sprintf("invalid -json: %v", err))
				}
				defer jsonFh.Close()
			}
			var baseline *exp.BenchReport
			if *check != "" {
				fh, err := os.Open(*check)
				if err != nil {
					return err
				}
				baseline, err = exp.LoadBenchBaseline(fh)
				fh.Close()
				if err != nil {
					return fmt.Errorf("%s: %w", *check, err)
				}
			}
			plan := exp.DefaultBenchPlan()
			if *short {
				plan = exp.ShortBenchPlan()
			}
			if *benches != "" {
				plan.ForkNames = strings.Split(*benches, ",")
			}
			if *warm != 0 {
				plan.ForkParams.WarmInstructions = *warm
			}
			if *measure != 0 {
				plan.ForkParams.MeasureInstructions = *measure
			}
			if *matrices != 0 {
				plan.SpMVMatrices = *matrices
				plan.LineSizeMatrices = *matrices
			}
			if *points != 0 {
				plan.SweepPoints = *points
			}
			if *rows != 0 {
				plan.SweepRows = *rows
			}
			workers := *parallel
			if workers == 0 {
				workers = runtime.GOMAXPROCS(0)
			}
			start := time.Now()
			report, err := exp.RunBench(context.Background(), plan, workers, stderr)
			if err != nil {
				return err
			}
			exp.PrintBench(stdout, report)
			if jsonFh != nil {
				ex := sim.NewExport("bench")
				ex.Meta = sim.NewRunMeta(workers)
				ex.Meta.WallMS = float64(time.Since(start).Microseconds()) / 1000
				ex.Config = plan
				ex.Results = report
				if err := ex.WriteJSON(jsonFh); err != nil {
					return err
				}
				if err := jsonFh.Close(); err != nil {
					return err
				}
			}
			if baseline != nil {
				if err := exp.CheckBench(baseline, report, *wallTol); err != nil {
					return err
				}
				fmt.Fprintf(stdout, "baseline check passed: metrics exact, wall within +%.0f%% of %s\n",
					*wallTol*100, *check)
			}
			return nil
		},
	}
}

func newStatsCmd() *command {
	fs := flag.NewFlagSet("stats", flag.ContinueOnError)
	bench := fs.String("bench", "mcf", "benchmark to run")
	backend := addBackendFlag(fs)
	overlay := fs.Bool("overlay", true, "use overlay-on-write (false: copy-on-write)")
	measure := fs.Uint64("measure", exp.QuickForkParams().MeasureInstructions, "instructions after fork")
	tel := addTelemetryFlags(fs)
	return &command{
		name:    "stats",
		summary: "run one fork benchmark and dump all counters",
		flags:   fs,
		prof:    addProfileFlags(fs),
		run: func(stdout, _ io.Writer) error {
			spec, err := workload.ByName(*bench)
			if err != nil {
				return err
			}
			be, err := parseBackend(*backend)
			if err != nil {
				return err
			}
			outs, err := tel.open()
			if err != nil {
				return err
			}
			defer outs.close()
			cfg := core.DefaultConfig()
			cfg.MemoryPages = spec.Pages*2 + 16384
			cfg.Backend = be
			tl := tel.traceLog()
			params := exp.ForkParams{
				WarmInstructions:    exp.QuickForkParams().WarmInstructions,
				MeasureInstructions: *measure,
				Backend:             be,
				SeriesEpoch:         sim.Cycle(tel.epoch),
				Trace:               tl,
			}
			ctx, finishSpans := tel.traceContext("stats")
			out, ex, err := exp.RunStatsExport(ctx, spec, cfg, params, *overlay)
			if err != nil {
				return err
			}
			fmt.Fprint(stdout, out)
			if !tel.wanted() {
				return nil
			}
			var series []*sim.Series
			if r, ok := ex.Results.(exp.MechanismResult); ok && r.Series != nil {
				series = append(series, r.Series)
			}
			return outs.write(ex, series, tl, finishSpans())
		},
	}
}

func newTraceCmd() *command {
	fs := flag.NewFlagSet("trace", flag.ContinueOnError)
	bench := fs.String("bench", "mcf", "benchmark to record")
	out := fs.String("out", "", "record the trace to this file")
	in := fs.String("in", "", "replay a recorded trace through the simulator")
	n := fs.Uint64("n", 100000, "instructions to record")
	return &command{
		name:    "trace",
		summary: "record a workload trace / replay one through the simulator",
		flags:   fs,
		prof:    addProfileFlags(fs),
		run: func(stdout, _ io.Writer) error {
			switch {
			case *out != "" && *in != "":
				return usageError("trace: -out and -in are mutually exclusive")
			case *out != "":
				return traceRecord(stdout, *bench, *out, *n)
			case *in != "":
				return traceReplay(stdout, *bench, *in)
			}
			return usageError("trace: need -out (record) or -in (replay)")
		},
	}
}

func traceRecord(stdout io.Writer, bench, out string, n uint64) error {
	spec, err := workload.ByName(bench)
	if err != nil {
		return err
	}
	fh, err := os.Create(out)
	if err != nil {
		return err
	}
	defer fh.Close()
	count, err := trace.Record(fh, spec.NewTrace(), n)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "recorded %d instructions of %s to %s\n", count, bench, out)
	return nil
}

func traceReplay(stdout io.Writer, bench, in string) error {
	fh, err := os.Open(in)
	if err != nil {
		return err
	}
	defer fh.Close()
	r, err := trace.NewReader(fh)
	if err != nil {
		return err
	}
	spec, err := workload.ByName(bench)
	if err != nil {
		return err
	}
	cfg := core.DefaultConfig()
	cfg.MemoryPages = spec.Pages*2 + 16384
	f, err := core.New(cfg)
	if err != nil {
		return err
	}
	proc := f.VM.NewProcess()
	if err := spec.MapFootprint(f, proc); err != nil {
		return err
	}
	port := f.NewPort()
	c := cpu.New(f.Engine, port, proc.PID, r)
	c.Run(0, nil)
	f.Engine.Run()
	if r.Err() != nil {
		return r.Err()
	}
	fmt.Fprintf(stdout, "replayed %d instructions in %d cycles (CPI %.3f)\n",
		c.Retired(), c.Cycles(), c.CPI())
	return nil
}
