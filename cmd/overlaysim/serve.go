package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/server"
)

// serve test hooks, nil outside the package tests: serveReady receives
// the bound address once the listener is up, and a close of serveStop
// triggers the same drain path a SIGTERM does.
var (
	serveReady chan<- string
	serveStop  <-chan struct{}
)

func newServeCmd() *command {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen `address` (host:port; port 0 picks a free port)")
	workers := fs.Int("workers", 0, "jobs simulated concurrently (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 16, "accepted jobs that may wait behind the running ones")
	jobTimeout := fs.Duration("job-timeout", 0, "per-job wall-clock cap (0 = unbounded)")
	grace := fs.Duration("grace", 30*time.Second, "shutdown grace period for in-flight jobs")
	cacheSize := fs.Int("cache", 128, "result cache entries (negative disables caching)")
	snapCache := fs.Int("snapshot-cache", 32, "warm-state snapshot cache families (negative disables warm-state reuse)")
	logFormat := fs.String("log-format", "json", "structured log format: json or text")
	logLevel := fs.String("log-level", "info", "log level: debug, info, warn or error")
	notrace := fs.Bool("no-trace", false, "disable per-job span tracing")
	store := fs.String("store", "", "persistent result store `directory` (empty disables the durable tier)")
	register := fs.String("register", "", "coordinator base `URL` to self-register with (worker mode)")
	advertise := fs.String("advertise", "", "base `URL` this worker registers as (default http://<bound addr>)")
	return &command{
		name:    "serve",
		summary: "serve experiment jobs over HTTP (wire protocol: docs/API.md)",
		flags:   fs,
		prof:    addProfileFlags(fs),
		run: func(stdout, stderr io.Writer) error {
			if *workers < 0 {
				return usageError(fmt.Sprintf("invalid -workers %d: must be >= 0", *workers))
			}
			if *queue < 1 {
				return usageError(fmt.Sprintf("invalid -queue %d: must be >= 1", *queue))
			}
			if *jobTimeout < 0 {
				return usageError(fmt.Sprintf("invalid -job-timeout %s: must be >= 0", *jobTimeout))
			}
			if *grace <= 0 {
				return usageError(fmt.Sprintf("invalid -grace %s: must be > 0", *grace))
			}
			if *logFormat != "json" && *logFormat != "text" {
				return usageError(fmt.Sprintf("invalid -log-format %q: json or text", *logFormat))
			}
			level, ok := obs.ParseLevel(*logLevel)
			if !ok {
				return usageError(fmt.Sprintf("invalid -log-level %q: debug, info, warn or error", *logLevel))
			}
			if *advertise != "" && *register == "" {
				return usageError("-advertise requires -register")
			}
			cfg := server.Config{
				Workers:           *workers,
				QueueDepth:        *queue,
				JobTimeout:        *jobTimeout,
				CacheSize:         *cacheSize,
				SnapshotCacheSize: *snapCache,
				Logger:            obs.NewLogger(stderr, *logFormat, level),
				DisableTracing:    *notrace,
			}
			if *store != "" {
				fsStore, err := cluster.NewFSStore(*store)
				if err != nil {
					return usageError(fmt.Sprintf("invalid -store: %v", err))
				}
				cfg.Store = fsStore
			}
			return serve(*addr, cfg, *grace, *register, *advertise, stdout, stderr)
		},
	}
}

// serve listens on addr and runs the job service until SIGINT/SIGTERM
// (or the test stop hook), then drains: intake stops with 503, in-flight
// jobs get the grace period to finish, stragglers are cancelled. A clean
// drain exits 0; an expired grace period is a runtime error (exit 1).
// With register set, the worker keeps itself announced to that
// coordinator for the server's whole lifetime (docs/CLUSTER.md).
func serve(addr string, cfg server.Config, grace time.Duration, register, advertise string, stdout, stderr io.Writer) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return usageError(fmt.Sprintf("invalid -addr: %v", err))
	}
	logger := cfg.Logger
	if logger == nil {
		logger = obs.NewLogger(stderr, "json", slog.LevelInfo)
		cfg.Logger = logger
	}
	srv := server.New(cfg)
	hs := &http.Server{Handler: srv.Handler()}

	sigCtx, stopSignals := signal.NotifyContext(context.Background(),
		os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	fmt.Fprintf(stdout, "overlaysim serve: listening on http://%s\n", ln.Addr())
	logger.Info("overlaysim serve: listening", "addr", ln.Addr().String())
	if serveReady != nil {
		serveReady <- ln.Addr().String()
	}

	// Worker mode: keep this server announced to the coordinator until
	// shutdown. Registration failures are retried on the loop's cadence
	// and never block serving.
	regCtx, stopRegister := context.WithCancel(context.Background())
	defer stopRegister()
	if register != "" {
		if advertise == "" {
			advertise = "http://" + ln.Addr().String()
		}
		go cluster.RegisterLoop(regCtx, register, advertise, 5*time.Second, logger)
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err // the listener died on its own
	case <-sigCtx.Done():
	case <-serveStop:
	}
	// Restore default signal handling so a second signal kills the
	// process instead of waiting out the grace period.
	stopSignals()
	stopRegister()

	logger.Info("overlaysim serve: shutting down, draining jobs", "grace", grace.String())
	graceCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	drainErr := srv.Drain(graceCtx)

	// All jobs are terminal now, so event streams and waiting submits
	// unblock promptly; Shutdown just flushes the last responses.
	shutCtx, cancelShut := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelShut()
	if err := hs.Shutdown(shutCtx); err != nil && drainErr == nil {
		drainErr = err
	}
	if drainErr == nil {
		logger.Info("overlaysim serve: drained cleanly")
	} else {
		logger.Error("overlaysim serve: drain failed", "err", drainErr.Error())
	}
	return drainErr
}
