package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
)

// startCmd launches one subcommand through run with ready/stop hooks
// already wired by the caller, and returns the bound address plus a
// stop-and-check function.
func startCmd(t *testing.T, args []string, ready <-chan string, stop chan struct{}) (addr string, shutdown func()) {
	t.Helper()
	exited := make(chan int, 1)
	var out, errBuf bytes.Buffer
	go func() { exited <- run(args, &out, &errBuf) }()
	select {
	case addr = <-ready:
	case code := <-exited:
		t.Fatalf("%s exited %d before listening, stderr: %s", args[0], code, errBuf.String())
	case <-time.After(10 * time.Second):
		t.Fatalf("%s never started listening", args[0])
	}
	stopped := false
	return addr, func() {
		if stopped {
			return
		}
		stopped = true
		close(stop)
		select {
		case code := <-exited:
			if code != 0 {
				t.Fatalf("%s exited %d, want 0 (stderr: %s)", args[0], code, errBuf.String())
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("%s did not exit after stop", args[0])
		}
		if !strings.Contains(errBuf.String(), "drained cleanly") {
			t.Errorf("%s stderr missing drain confirmation: %s", args[0], errBuf.String())
		}
	}
}

// TestCoordinatorMatchesWorkerAndCLI is the end-to-end contract of the
// cluster layer: a job routed through the coordinator returns byte-for-
// byte the export the CLI writes with -json and the worker serves
// directly, and a restarted coordinator answers the same digest from
// its persistent store without any worker at all.
func TestCoordinatorMatchesWorkerAndCLI(t *testing.T) {
	// The CLI run everything else must reproduce.
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "fork.json")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"fork", "-bench=hmmer", "-warm=20000", "-measure=50000",
		"-json=" + jsonPath}, &stdout, &stderr); code != 0 {
		t.Fatalf("CLI fork exited %d, stderr: %s", code, stderr.String())
	}
	cliExport, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}

	// One worker, then a coordinator with a durable store routing to it.
	workerReady := make(chan string, 1)
	workerStop := make(chan struct{})
	serveReady, serveStop = workerReady, workerStop
	defer func() { serveReady, serveStop = nil, nil }()
	workerAddr, stopWorker := startCmd(t,
		[]string{"serve", "-addr=127.0.0.1:0", "-workers=1", "-grace=30s"},
		workerReady, workerStop)
	defer stopWorker()
	workerURL := "http://" + workerAddr

	storeDir := filepath.Join(dir, "results")
	coordReady1 := make(chan string, 1)
	coordStop1 := make(chan struct{})
	coordReady, coordStop = coordReady1, coordStop1
	defer func() { coordReady, coordStop = nil, nil }()
	coordAddr, stopCoord := startCmd(t,
		[]string{"coordinator", "-addr=127.0.0.1:0", "-worker=" + workerURL,
			"-store=" + storeDir, "-health-interval=200ms", "-grace=30s"},
		coordReady1, coordStop1)
	coordURL := "http://" + coordAddr

	spec := `{"experiment":"fork","bench":"hmmer","warm":20000,"measure":50000}`
	post := func(base string) (int, server.JobDoc, http.Header) {
		resp, err := http.Post(base+"/v1/jobs?wait=true", "application/json",
			strings.NewReader(spec))
		if err != nil {
			t.Fatalf("POST %s/v1/jobs: %v", base, err)
		}
		defer resp.Body.Close()
		var doc server.JobDoc
		if resp.StatusCode < 300 {
			if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
				t.Fatalf("decoding job doc: %v", err)
			}
		}
		return resp.StatusCode, doc, resp.Header
	}
	getResult := func(base, id string) []byte {
		resp, err := http.Get(base + "/v1/jobs/" + id + "/result")
		if err != nil {
			t.Fatalf("GET result: %v", err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s result: status %d, err %v", base, resp.StatusCode, err)
		}
		return body
	}

	// Via the coordinator: one engine run on the worker, bytes == CLI.
	status, doc, _ := post(coordURL)
	if status != http.StatusOK || doc.State != "done" || doc.Cached {
		t.Fatalf("coordinator submit: status %d state %q cached %v, want 200/done/false",
			status, doc.State, doc.Cached)
	}
	if doc.Worker != workerURL {
		t.Fatalf("job ran on %q, want %q", doc.Worker, workerURL)
	}
	viaCoord := getResult(coordURL, doc.ID)
	if !bytes.Equal(viaCoord, cliExport) {
		t.Fatalf("coordinator result differs from CLI export (%d vs %d bytes)",
			len(viaCoord), len(cliExport))
	}

	// Directly on the worker: the same digest is its cache hit, and the
	// bytes it serves are the same bytes the coordinator relayed.
	status, direct, _ := post(workerURL)
	if status != http.StatusOK || !direct.Cached {
		t.Fatalf("direct worker submit: status %d cached %v, want 200/true", status, direct.Cached)
	}
	if viaWorker := getResult(workerURL, direct.ID); !bytes.Equal(viaWorker, cliExport) {
		t.Fatalf("worker result differs from CLI export (%d vs %d bytes)",
			len(viaWorker), len(cliExport))
	}

	// Restart the coordinator on the same store with no workers at all:
	// the previously computed result must come back from disk.
	stopCoord()
	coordReady2 := make(chan string, 1)
	coordStop2 := make(chan struct{})
	coordReady, coordStop = coordReady2, coordStop2
	coordAddr2, stopCoord2 := startCmd(t,
		[]string{"coordinator", "-addr=127.0.0.1:0", "-store=" + storeDir, "-grace=30s"},
		coordReady2, coordStop2)
	defer stopCoord2()

	status, redo, hdr := post("http://" + coordAddr2)
	if status != http.StatusOK || !redo.Cached || redo.CacheSource != server.CacheStore {
		t.Fatalf("restarted coordinator: status %d cached %v source %q, want 200/true/%q",
			status, redo.Cached, redo.CacheSource, server.CacheStore)
	}
	if got := hdr.Get("X-Overlaysim-Cache"); got != "hit-store" {
		t.Fatalf("X-Overlaysim-Cache = %q, want hit-store", got)
	}
	if fromStore := getResult("http://"+coordAddr2, redo.ID); !bytes.Equal(fromStore, cliExport) {
		t.Fatalf("store-served result differs from CLI export (%d vs %d bytes)",
			len(fromStore), len(cliExport))
	}

	// The worker's engine ran exactly once for all of the above.
	resp, err := http.Get(workerURL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(metrics), "overlaysim_server_engine_runs 1\n") {
		t.Fatalf("worker metrics do not show exactly one engine run:\n%s", metrics)
	}
}

// TestServeRegistersWithCoordinator proves worker mode: a serve process
// given -register announces itself, and the coordinator routes to it
// with no static -worker configuration.
func TestServeRegistersWithCoordinator(t *testing.T) {
	coordReadyC := make(chan string, 1)
	coordStopC := make(chan struct{})
	coordReady, coordStop = coordReadyC, coordStopC
	defer func() { coordReady, coordStop = nil, nil }()
	coordAddr, stopCoord := startCmd(t,
		[]string{"coordinator", "-addr=127.0.0.1:0", "-health-interval=100ms", "-grace=30s"},
		coordReadyC, coordStopC)
	defer stopCoord()
	coordURL := "http://" + coordAddr

	// No workers yet: the coordinator is up but not ready.
	resp, err := http.Get(coordURL + "/readyz")
	if err != nil {
		t.Fatalf("GET /readyz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("empty coordinator /readyz = %d, want 503", resp.StatusCode)
	}

	workerReady := make(chan string, 1)
	workerStop := make(chan struct{})
	serveReady, serveStop = workerReady, workerStop
	defer func() { serveReady, serveStop = nil, nil }()
	_, stopWorker := startCmd(t,
		[]string{"serve", "-addr=127.0.0.1:0", "-workers=1", "-grace=30s",
			"-register=" + coordURL},
		workerReady, workerStop)
	defer stopWorker()

	// Registration is periodic; wait for the fleet to show the worker.
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(coordURL + "/readyz")
		if err != nil {
			t.Fatalf("GET /readyz: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker never registered: /readyz still %d", resp.StatusCode)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// And jobs route through the registered worker.
	spec := `{"experiment":"sweep","points":3,"rows":16}`
	presp, err := http.Post(coordURL+"/v1/jobs?wait=true", "application/json",
		strings.NewReader(spec))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	defer presp.Body.Close()
	var doc server.JobDoc
	if err := json.NewDecoder(presp.Body).Decode(&doc); err != nil {
		t.Fatalf("decoding job doc: %v", err)
	}
	if presp.StatusCode != http.StatusOK || doc.State != "done" {
		t.Fatalf("routed submit: status %d state %q, want 200/done", presp.StatusCode, doc.State)
	}
	if doc.Worker == "" {
		t.Fatalf("job doc missing worker attribution: %+v", doc)
	}
}
