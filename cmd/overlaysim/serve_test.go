package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
)

// TestServeMatchesCLI is the end-to-end contract of the serving layer:
// a job submitted over HTTP returns byte-for-byte the export the CLI
// writes with -json for the same invocation, a duplicate submission is
// served from cache without another engine run, and a stop request
// drains the server cleanly (exit 0).
func TestServeMatchesCLI(t *testing.T) {
	// First the CLI run the service must reproduce.
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "fork.json")
	var stdout, stderr bytes.Buffer
	cliArgs := []string{"fork", "-bench=hmmer", "-warm=20000", "-measure=50000"}
	if code := run(append(cliArgs, "-json="+jsonPath), &stdout, &stderr); code != 0 {
		t.Fatalf("CLI fork exited %d, stderr: %s", code, stderr.String())
	}
	cliExport, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}

	// Start the server on a free port via the test hooks.
	ready := make(chan string, 1)
	stop := make(chan struct{})
	serveReady, serveStop = ready, stop
	defer func() { serveReady, serveStop = nil, nil }()

	exited := make(chan int, 1)
	var srvOut, srvErr bytes.Buffer
	go func() {
		exited <- run([]string{"serve", "-addr=127.0.0.1:0", "-workers=1", "-grace=30s"},
			&srvOut, &srvErr)
	}()
	var addr string
	select {
	case addr = <-ready:
	case code := <-exited:
		t.Fatalf("serve exited %d before listening, stderr: %s", code, srvErr.String())
	case <-time.After(10 * time.Second):
		t.Fatalf("serve never started listening")
	}
	base := "http://" + addr

	spec := `{"experiment":"fork","bench":"hmmer","warm":20000,"measure":50000}`
	post := func() (int, server.JobDoc) {
		resp, err := http.Post(base+"/v1/jobs?wait=true", "application/json",
			strings.NewReader(spec))
		if err != nil {
			t.Fatalf("POST /v1/jobs: %v", err)
		}
		defer resp.Body.Close()
		var doc server.JobDoc
		if resp.StatusCode < 300 {
			if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
				t.Fatalf("decoding job doc: %v", err)
			}
		}
		return resp.StatusCode, doc
	}

	status, doc := post()
	if status != http.StatusOK || doc.State != "done" || doc.Cached {
		t.Fatalf("first submit: status %d state %q cached %v, want 200/done/false",
			status, doc.State, doc.Cached)
	}

	// The served result must be byte-identical to the CLI's -json file.
	resp, err := http.Get(base + "/v1/jobs/" + doc.ID + "/result")
	if err != nil {
		t.Fatalf("GET result: %v", err)
	}
	served, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET result: status %d, err %v", resp.StatusCode, err)
	}
	if !bytes.Equal(served, cliExport) {
		t.Fatalf("served result differs from CLI export (%d vs %d bytes)",
			len(served), len(cliExport))
	}

	// A duplicate submission is a cache hit: no second engine run.
	status, dup := post()
	if status != http.StatusOK || !dup.Cached {
		t.Fatalf("duplicate submit: status %d cached %v, want 200/true", status, dup.Cached)
	}
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	metrics, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(metrics), "overlaysim_server_engine_runs 1\n") {
		t.Fatalf("metrics do not show exactly one engine run:\n%s", metrics)
	}

	// Stop the server the way a SIGTERM would and expect a clean drain.
	close(stop)
	select {
	case code := <-exited:
		if code != 0 {
			t.Fatalf("serve exited %d, want 0 (stderr: %s)", code, srvErr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("serve did not exit after stop")
	}
	if !strings.Contains(srvErr.String(), "drained cleanly") {
		t.Errorf("serve stderr missing drain confirmation: %s", srvErr.String())
	}
}
