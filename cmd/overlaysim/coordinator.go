package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
)

// coordinator test hooks, nil outside the package tests: coordReady
// receives the bound address once the listener is up, and a close of
// coordStop triggers the same drain path a SIGTERM does.
var (
	coordReady chan<- string
	coordStop  <-chan struct{}
)

// stringList collects a repeatable string flag.
type stringList []string

func (l *stringList) String() string { return fmt.Sprint([]string(*l)) }

func (l *stringList) Set(v string) error {
	*l = append(*l, v)
	return nil
}

func newCoordinatorCmd() *command {
	fs := flag.NewFlagSet("coordinator", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8090", "listen `address` (host:port; port 0 picks a free port)")
	var workers stringList
	fs.Var(&workers, "worker", "worker base `URL` to shard jobs across (repeatable); workers may also self-register")
	store := fs.String("store", "", "persistent result store `directory` (empty disables the durable tier)")
	healthEvery := fs.Duration("health-interval", 2*time.Second, "worker /readyz probe period")
	retryAfter := fs.Duration("retry-after", 2*time.Second, "Retry-After hint returned when every shard is saturated")
	attempts := fs.Int("forward-attempts", 3, "shards one job may be routed to before it fails")
	grace := fs.Duration("grace", 30*time.Second, "shutdown grace period for in-flight jobs")
	logFormat := fs.String("log-format", "json", "structured log format: json or text")
	logLevel := fs.String("log-level", "info", "log level: debug, info, warn or error")
	notrace := fs.Bool("no-trace", false, "disable per-job span tracing")
	return &command{
		name:    "coordinator",
		summary: "shard jobs across serve workers (topology: docs/CLUSTER.md)",
		flags:   fs,
		prof:    addProfileFlags(fs),
		run: func(stdout, stderr io.Writer) error {
			if *healthEvery <= 0 {
				return usageError(fmt.Sprintf("invalid -health-interval %s: must be > 0", *healthEvery))
			}
			if *retryAfter <= 0 {
				return usageError(fmt.Sprintf("invalid -retry-after %s: must be > 0", *retryAfter))
			}
			if *attempts < 1 {
				return usageError(fmt.Sprintf("invalid -forward-attempts %d: must be >= 1", *attempts))
			}
			if *grace <= 0 {
				return usageError(fmt.Sprintf("invalid -grace %s: must be > 0", *grace))
			}
			if *logFormat != "json" && *logFormat != "text" {
				return usageError(fmt.Sprintf("invalid -log-format %q: json or text", *logFormat))
			}
			level, ok := obs.ParseLevel(*logLevel)
			if !ok {
				return usageError(fmt.Sprintf("invalid -log-level %q: debug, info, warn or error", *logLevel))
			}
			cfg := cluster.Config{
				Workers:         workers,
				HealthInterval:  *healthEvery,
				RetryAfter:      *retryAfter,
				ForwardAttempts: *attempts,
				Logger:          obs.NewLogger(stderr, *logFormat, level),
				DisableTracing:  *notrace,
			}
			if *store != "" {
				fsStore, err := cluster.NewFSStore(*store)
				if err != nil {
					return usageError(fmt.Sprintf("invalid -store: %v", err))
				}
				cfg.Store = fsStore
			}
			return coordinate(*addr, cfg, *grace, stdout, stderr)
		},
	}
}

// coordinate listens on addr and routes jobs across the worker fleet
// until SIGINT/SIGTERM (or the test stop hook), then drains: intake
// stops with 503, in-flight jobs get the grace period to reach a
// terminal state on their workers, stragglers are cancelled remotely.
func coordinate(addr string, cfg cluster.Config, grace time.Duration, stdout, stderr io.Writer) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return usageError(fmt.Sprintf("invalid -addr: %v", err))
	}
	logger := cfg.Logger
	if logger == nil {
		logger = obs.NewLogger(stderr, "json", slog.LevelInfo)
		cfg.Logger = logger
	}
	co := cluster.New(cfg)
	hs := &http.Server{Handler: co.Handler()}

	sigCtx, stopSignals := signal.NotifyContext(context.Background(),
		os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	fmt.Fprintf(stdout, "overlaysim coordinator: listening on http://%s (%d static workers)\n",
		ln.Addr(), len(cfg.Workers))
	logger.Info("overlaysim coordinator: listening",
		"addr", ln.Addr().String(), "workers", len(cfg.Workers))
	if coordReady != nil {
		coordReady <- ln.Addr().String()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err // the listener died on its own
	case <-sigCtx.Done():
	case <-coordStop:
	}
	// Restore default signal handling so a second signal kills the
	// process instead of waiting out the grace period.
	stopSignals()

	logger.Info("overlaysim coordinator: shutting down, draining jobs", "grace", grace.String())
	graceCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	drainErr := co.Drain(graceCtx)

	shutCtx, cancelShut := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelShut()
	if err := hs.Shutdown(shutCtx); err != nil && drainErr == nil {
		drainErr = err
	}
	if drainErr == nil {
		logger.Info("overlaysim coordinator: drained cleanly")
	} else {
		logger.Error("overlaysim coordinator: drain failed", "err", drainErr.Error())
	}
	return drainErr
}
