package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestForkJSONRoundTrip runs a quick fork experiment through the CLI and
// validates the machine-readable export end to end: schema version, the
// required latency histograms with samples, at least one epoch series,
// and a trace file in Chrome trace_event shape.
func TestForkJSONRoundTrip(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "out.json")
	tracePath := filepath.Join(dir, "out.trace.json")

	var stdout, stderr bytes.Buffer
	code := run([]string{
		"fork", "-bench=hmmer", "-warm=20000", "-measure=50000",
		"-epoch=50000", "-json=" + jsonPath, "-tracelog=" + tracePath,
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("fork exited %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "hmmer") {
		t.Errorf("stdout missing benchmark name:\n%s", stdout.String())
	}

	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var ex struct {
		SchemaVersion int    `json:"schema_version"`
		Command       string `json:"command"`
		Counters      map[string]uint64
		Histograms    map[string]struct {
			Count uint64  `json:"count"`
			Mean  float64 `json:"mean"`
			P95   float64 `json:"p95"`
		} `json:"histograms"`
		Series []struct {
			Name string `json:"name"`
			Rows []struct {
				EndCycle uint64   `json:"end_cycle"`
				Values   []uint64 `json:"values"`
			} `json:"rows"`
		} `json:"series"`
	}
	if err := json.Unmarshal(raw, &ex); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if ex.SchemaVersion != 1 {
		t.Errorf("schema_version = %d, want 1", ex.SchemaVersion)
	}
	if ex.Command != "fork" {
		t.Errorf("command = %q, want fork", ex.Command)
	}
	for _, name := range []string{"core.access_cycles", "dram.read_cycles", "tlb.walk_cycles"} {
		h, ok := ex.Histograms[name]
		if !ok {
			t.Errorf("export missing histogram %q", name)
			continue
		}
		if h.Count == 0 {
			t.Errorf("histogram %q has zero samples", name)
		}
		if h.Mean <= 0 || h.P95 < h.Mean/2 {
			t.Errorf("histogram %q has implausible mean %v / p95 %v", name, h.Mean, h.P95)
		}
	}
	if len(ex.Series) < 1 {
		t.Fatalf("export has no series")
	}
	rows := 0
	for _, s := range ex.Series {
		rows += len(s.Rows)
	}
	if rows == 0 {
		t.Errorf("series contain no rows")
	}

	// Round trip: re-marshal and re-parse the export.
	again, err := json.Marshal(ex)
	if err != nil {
		t.Fatalf("re-marshal: %v", err)
	}
	if err := json.Unmarshal(again, &ex); err != nil {
		t.Fatalf("round trip: %v", err)
	}

	// The trace file must be Chrome trace_event JSON with events.
	traw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(traw, &tr); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	if len(tr.TraceEvents) == 0 {
		t.Error("trace file has no events")
	}
}

// TestExitCodes audits the exit-code conventions across every
// subcommand: usage errors (bad flags, invalid flag values, conflicting
// flags) exit 2, runtime errors (valid invocation, failing work) exit 1.
func TestExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		// Usage errors → 2.
		{"no args", nil, 2},
		{"unknown command", []string{"bogus"}, 2},
		{"fork bad flag", []string{"fork", "-nope"}, 2},
		{"fork negative parallel", []string{"fork", "-parallel=-1", "-bench=hmmer"}, 2},
		{"spmv bad flag", []string{"spmv", "-nope"}, 2},
		{"spmv negative matrices", []string{"spmv", "-matrices=-1"}, 2},
		{"spmv negative parallel", []string{"spmv", "-parallel=-2", "-matrices=1"}, 2},
		{"linesize negative matrices", []string{"linesize", "-matrices=-5"}, 2},
		{"sweep one point", []string{"sweep", "-points=1"}, 2},
		{"sweep tiny rows", []string{"sweep", "-rows=4"}, 2},
		{"dualcore bad flag", []string{"dualcore", "-nope"}, 2},
		{"dualcore negative parallel", []string{"dualcore", "-parallel=-1"}, 2},
		{"bench bad flag", []string{"bench", "-nope"}, 2},
		{"bench negative parallel", []string{"bench", "-parallel=-4"}, 2},
		{"bench negative tolerance", []string{"bench", "-wall-tolerance=-0.5"}, 2},
		{"trace without -out/-in", []string{"trace"}, 2},
		{"trace with both -out and -in", []string{"trace", "-out=a", "-in=b"}, 2},
		{"stats bad flag", []string{"stats", "-nope"}, 2},
		{"config bad flag", []string{"config", "-nope"}, 2},

		// -backend is validated against the registered-backend list at
		// flag-parse time, before any simulation.
		{"fork unknown backend", []string{"fork", "-backend=nope", "-bench=hmmer"}, 2},
		{"stats unknown backend", []string{"stats", "-backend=nope"}, 2},
		{"compare unknown backend", []string{"compare", "-backend=nope"}, 2},
		{"compare bad flag", []string{"compare", "-nope"}, 2},
		{"compare negative matrices", []string{"compare", "-matrices=-1"}, 2},
		{"compare negative parallel", []string{"compare", "-parallel=-1"}, 2},
		{"compare unwritable json", []string{"compare", "-warm=1000000000000", "-json=/nonexistent/dir/out.json"}, 2},
		{"config bad cpuprofile path", []string{"config", "-cpuprofile=/nonexistent/dir/cpu.pprof"}, 2},
		{"config bad memprofile path", []string{"config", "-memprofile=/nonexistent/dir/mem.pprof"}, 2},
		{"trace bad cpuprofile path", []string{"trace", "-cpuprofile=/nonexistent/dir/cpu.pprof"}, 2},

		// Unwritable output paths fail fast, before any simulation: the
		// huge instruction counts would hang the test if the experiment
		// ran first.
		{"fork unwritable json", []string{"fork", "-warm=1000000000000", "-measure=1000000000000", "-json=/nonexistent/dir/out.json"}, 2},
		{"sweep unwritable csv", []string{"sweep", "-points=1000", "-rows=65536", "-csv=/nonexistent/dir/out.csv"}, 2},
		{"dualcore unwritable tracelog", []string{"dualcore", "-tracelog=/nonexistent/dir/out.trace"}, 2},
		{"stats unwritable json", []string{"stats", "-measure=1000000000000", "-json=/nonexistent/dir/out.json"}, 2},
		{"bench unwritable json", []string{"bench", "-json=/nonexistent/dir/bench.json"}, 2},

		// serve validates its flags before binding the listener.
		{"serve bad flag", []string{"serve", "-nope"}, 2},
		{"serve negative workers", []string{"serve", "-workers=-1"}, 2},
		{"serve zero queue", []string{"serve", "-queue=0"}, 2},
		{"serve negative job timeout", []string{"serve", "-job-timeout=-1s"}, 2},
		{"serve zero grace", []string{"serve", "-grace=0"}, 2},
		{"serve unlistenable addr", []string{"serve", "-addr=999.999.999.999:0"}, 2},

		// Runtime errors → 1.
		{"stats unknown benchmark", []string{"stats", "-bench=notabench"}, 1},
		{"fork unknown benchmark", []string{"fork", "-bench=notabench"}, 1},
		{"compare unknown benchmark", []string{"compare", "-bench=notabench"}, 1},
		{"trace replay missing file", []string{"trace", "-in=/nonexistent/trace.bin"}, 1},
		{"trace record unwritable", []string{"trace", "-out=/nonexistent/dir/trace.bin", "-n=1"}, 1},
		{"bench missing baseline", []string{"bench", "-check=/nonexistent/baseline.json"}, 1},

		// Success → 0.
		{"config ok", []string{"config"}, 0},
	}
	for _, c := range cases {
		var stdout, stderr bytes.Buffer
		if code := run(c.args, &stdout, &stderr); code != c.want {
			t.Errorf("%s: exit code %d, want %d (stderr: %s)", c.name, code, c.want, stderr.String())
		}
	}
}

// TestProfileFlags exercises -cpuprofile/-memprofile on a real
// invocation: the command must succeed and both profiles must be
// non-empty files (pprof's gzip framing makes even an idle profile a
// few hundred bytes).
func TestProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpuPath := filepath.Join(dir, "cpu.pprof")
	memPath := filepath.Join(dir, "mem.pprof")
	var stdout, stderr bytes.Buffer
	args := []string{"config", "-cpuprofile=" + cpuPath, "-memprofile=" + memPath}
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code %d, want 0 (stderr: %s)", code, stderr.String())
	}
	for _, path := range []string{cpuPath, memPath} {
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if fi.Size() == 0 {
			t.Errorf("%s: empty profile", path)
		}
	}
}

// TestBenchCLI runs a tiny bench matrix through the CLI: the JSON
// export must be a loadable baseline, and a -check against the file it
// just wrote must pass (same machine, same run ⇒ metrics exact).
func TestBenchCLI(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "bench.json")
	tiny := []string{
		"-short", "-parallel=2", "-benches=hmmer", "-warm=20000", "-measure=40000",
		"-matrices=2", "-points=2", "-rows=64",
	}
	var stdout, stderr bytes.Buffer
	code := run(append([]string{"bench", "-json=" + jsonPath}, tiny...), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("bench exited %d, stderr: %s", code, stderr.String())
	}
	for _, want := range []string{"fork", "spmv", "linesize", "sweep", "dualcore", "total"} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("bench summary missing %q:\n%s", want, stdout.String())
		}
	}

	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var ex struct {
		SchemaVersion int    `json:"schema_version"`
		Command       string `json:"command"`
		Meta          struct {
			GoVersion string `json:"go_version"`
			Parallel  int    `json:"parallel"`
		} `json:"meta"`
		Results struct {
			Parallel    int `json:"parallel"`
			Experiments []struct {
				Name    string            `json:"name"`
				Metrics map[string]uint64 `json:"metrics"`
			} `json:"experiments"`
		} `json:"results"`
	}
	if err := json.Unmarshal(raw, &ex); err != nil {
		t.Fatalf("bench export is not valid JSON: %v", err)
	}
	if ex.SchemaVersion != 1 || ex.Command != "bench" {
		t.Errorf("export header = %d/%q", ex.SchemaVersion, ex.Command)
	}
	if ex.Meta.GoVersion == "" || ex.Meta.Parallel != 2 || ex.Results.Parallel != 2 {
		t.Errorf("export meta incomplete: %+v", ex.Meta)
	}
	if len(ex.Results.Experiments) != 7 {
		t.Fatalf("export has %d experiments, want 7", len(ex.Results.Experiments))
	}

	// Re-running against the just-written baseline must pass the gate.
	stdout.Reset()
	stderr.Reset()
	code = run(append([]string{"bench", "-check=" + jsonPath}, tiny...), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("bench -check exited %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "baseline check passed") {
		t.Errorf("check did not report success:\n%s", stdout.String())
	}

	// A baseline recorded at a different worker count is rejected (exit 1).
	stdout.Reset()
	stderr.Reset()
	mismatched := append([]string{"bench", "-check=" + jsonPath, "-short", "-parallel=1"}, tiny[2:]...)
	if code = run(mismatched, &stdout, &stderr); code != 1 {
		t.Fatalf("mismatched -parallel check exited %d, want 1", code)
	}
}

func TestStatsCSV(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "series.csv")
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"stats", "-bench=hmmer", "-measure=30000", "-epoch=50000", "-csv=" + csvPath,
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("stats exited %d, stderr: %s", code, stderr.String())
	}
	raw, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if lines[0] != "series,counter,end_cycle,value" {
		t.Errorf("csv header = %q", lines[0])
	}
	if len(lines) < 2 {
		t.Errorf("csv has no data rows")
	}
}

// TestSpansOutputAndMergedTrace runs a quick fork through -spans and
// -tracelog and validates both artefacts: the span JSONL carries the
// cli.fork → harness.job → fork.warmup/fork.measure hierarchy with one
// shared trace ID, and the Chrome document contains simulator instant
// events alongside pid-0 span records.
func TestSpansOutputAndMergedTrace(t *testing.T) {
	dir := t.TempDir()
	spansPath := filepath.Join(dir, "spans.jsonl")
	tracePath := filepath.Join(dir, "merged.trace.json")

	var stdout, stderr bytes.Buffer
	code := run([]string{
		"fork", "-bench=hmmer", "-warm=20000", "-measure=50000",
		"-spans=" + spansPath, "-tracelog=" + tracePath,
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("fork exited %d, stderr: %s", code, stderr.String())
	}

	raw, err := os.ReadFile(spansPath)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]int{}
	traceIDs := map[string]bool{}
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		var sp struct {
			TraceID string `json:"trace_id"`
			SpanID  string `json:"span_id"`
			Name    string `json:"name"`
		}
		if err := json.Unmarshal([]byte(line), &sp); err != nil {
			t.Fatalf("span line %q: %v", line, err)
		}
		if sp.SpanID == "" {
			t.Fatalf("span line lacks span_id: %s", line)
		}
		names[sp.Name]++
		traceIDs[sp.TraceID] = true
	}
	if len(traceIDs) != 1 {
		t.Errorf("spans carry %d distinct trace IDs, want 1", len(traceIDs))
	}
	for _, want := range []string{"cli.fork", "harness.job", "fork.warmup", "fork.measure"} {
		if names[want] == 0 {
			t.Errorf("span log lacks %q spans: %v", want, names)
		}
	}
	// One benchmark, two mechanisms: a warmup+measure pair per mechanism.
	if names["fork.warmup"] != 2 || names["fork.measure"] != 2 {
		t.Errorf("phase span counts = %v, want 2 warmup + 2 measure", names)
	}

	traw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Pid  float64 `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(traw, &doc); err != nil {
		t.Fatalf("merged trace is not valid JSON: %v", err)
	}
	simEvents, spanEvents := 0, 0
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "i":
			simEvents++
		case "X":
			spanEvents++
			if ev.Pid != 0 {
				t.Errorf("span record %q at pid %v, want 0", ev.Name, ev.Pid)
			}
		}
	}
	if simEvents == 0 || spanEvents == 0 {
		t.Errorf("merged trace has %d sim events + %d span events, want both > 0",
			simEvents, spanEvents)
	}
}
