package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestForkJSONRoundTrip runs a quick fork experiment through the CLI and
// validates the machine-readable export end to end: schema version, the
// required latency histograms with samples, at least one epoch series,
// and a trace file in Chrome trace_event shape.
func TestForkJSONRoundTrip(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "out.json")
	tracePath := filepath.Join(dir, "out.trace.json")

	var stdout, stderr bytes.Buffer
	code := run([]string{
		"fork", "-bench=hmmer", "-warm=20000", "-measure=50000",
		"-epoch=50000", "-json=" + jsonPath, "-tracelog=" + tracePath,
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("fork exited %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "hmmer") {
		t.Errorf("stdout missing benchmark name:\n%s", stdout.String())
	}

	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var ex struct {
		SchemaVersion int    `json:"schema_version"`
		Command       string `json:"command"`
		Counters      map[string]uint64
		Histograms    map[string]struct {
			Count uint64  `json:"count"`
			Mean  float64 `json:"mean"`
			P95   float64 `json:"p95"`
		} `json:"histograms"`
		Series []struct {
			Name string `json:"name"`
			Rows []struct {
				EndCycle uint64   `json:"end_cycle"`
				Values   []uint64 `json:"values"`
			} `json:"rows"`
		} `json:"series"`
	}
	if err := json.Unmarshal(raw, &ex); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if ex.SchemaVersion != 1 {
		t.Errorf("schema_version = %d, want 1", ex.SchemaVersion)
	}
	if ex.Command != "fork" {
		t.Errorf("command = %q, want fork", ex.Command)
	}
	for _, name := range []string{"core.access_cycles", "dram.read_cycles", "tlb.walk_cycles"} {
		h, ok := ex.Histograms[name]
		if !ok {
			t.Errorf("export missing histogram %q", name)
			continue
		}
		if h.Count == 0 {
			t.Errorf("histogram %q has zero samples", name)
		}
		if h.Mean <= 0 || h.P95 < h.Mean/2 {
			t.Errorf("histogram %q has implausible mean %v / p95 %v", name, h.Mean, h.P95)
		}
	}
	if len(ex.Series) < 1 {
		t.Fatalf("export has no series")
	}
	rows := 0
	for _, s := range ex.Series {
		rows += len(s.Rows)
	}
	if rows == 0 {
		t.Errorf("series contain no rows")
	}

	// Round trip: re-marshal and re-parse the export.
	again, err := json.Marshal(ex)
	if err != nil {
		t.Fatalf("re-marshal: %v", err)
	}
	if err := json.Unmarshal(again, &ex); err != nil {
		t.Fatalf("round trip: %v", err)
	}

	// The trace file must be Chrome trace_event JSON with events.
	traw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(traw, &tr); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	if len(tr.TraceEvents) == 0 {
		t.Error("trace file has no events")
	}
}

func TestUsageErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"no args", nil},
		{"unknown command", []string{"bogus"}},
		{"bad flag", []string{"fork", "-nope"}},
		{"trace without -out/-in", []string{"trace"}},
	}
	for _, c := range cases {
		var stdout, stderr bytes.Buffer
		if code := run(c.args, &stdout, &stderr); code != 2 {
			t.Errorf("%s: exit code %d, want 2", c.name, code)
		}
	}

	// Runtime errors (valid invocation, failing work) exit 1.
	var stdout, stderr bytes.Buffer
	if code := run([]string{"stats", "-bench=notabench"}, &stdout, &stderr); code != 1 {
		t.Errorf("unknown benchmark: exit code %d, want 1", code)
	}
}

func TestStatsCSV(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "series.csv")
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"stats", "-bench=hmmer", "-measure=30000", "-epoch=50000", "-csv=" + csvPath,
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("stats exited %d, stderr: %s", code, stderr.String())
	}
	raw, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if lines[0] != "series,counter,end_cycle,value" {
		t.Errorf("csv header = %q", lines[0])
	}
	if len(lines) < 2 {
		t.Errorf("csv has no data rows")
	}
}
