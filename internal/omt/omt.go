// Package omt implements the Overlay Mapping Table of §4.2/§4.4.4 and the
// memory controller's 64-entry OMT cache. The OMT maps each page of the
// Overlay Address Space (an OPN) to its OBitVector and the base address of
// the segment holding the overlay in the Overlay Memory Store. It is
// stored hierarchically like the virtual-to-physical tables and is owned
// entirely by the memory controller — the OS never walks it.
package omt

import (
	"repro/internal/arch"
	"repro/internal/sim"
)

// Entry is one OMT entry: the page's overlay bit vector and the segment
// base in the Overlay Memory Store (0 = no segment allocated yet; space
// is allocated lazily on the first dirty overlay write-back, §4.3.3).
type Entry struct {
	OBits   arch.OBitVector
	SegBase arch.PhysAddr
}

// Empty reports whether the entry carries no overlay state.
func (e Entry) Empty() bool { return e.OBits == 0 && e.SegBase == 0 }

// The table is a 4-level radix over the 52 meaningful OPN bits
// (overlay bit + 15-bit PID + 36-bit VPN), 13 bits per level.
const (
	radixLevels = 4
	radixBits   = 13
	radixFanout = 1 << radixBits
	radixMask   = radixFanout - 1
)

type node struct {
	children [radixFanout]*node
	entries  []Entry
}

// Table is the in-memory OMT.
type Table struct {
	root    node
	lastHop int // interior nodes touched by the last walk (test aid)
}

func idx(opn arch.OPN, level int) int {
	shift := uint(radixBits * (radixLevels - 1 - level))
	return int(uint64(opn)>>shift) & radixMask
}

// Get returns the entry for opn (zero entry if absent).
func (t *Table) Get(opn arch.OPN) Entry {
	if e := t.find(opn); e != nil {
		return *e
	}
	return Entry{}
}

func (t *Table) find(opn arch.OPN) *Entry {
	n := &t.root
	t.lastHop = 0
	for level := 0; level < radixLevels-1; level++ {
		t.lastHop++
		n = n.children[idx(opn, level)]
		if n == nil {
			return nil
		}
	}
	if n.entries == nil {
		return nil
	}
	return &n.entries[idx(opn, radixLevels-1)]
}

// Ref returns a pointer to the entry, materialising the path. The pointer
// stays valid until Delete.
func (t *Table) Ref(opn arch.OPN) *Entry {
	n := &t.root
	for level := 0; level < radixLevels-1; level++ {
		i := idx(opn, level)
		if n.children[i] == nil {
			n.children[i] = &node{}
			if level == radixLevels-2 {
				n.children[i].entries = make([]Entry, radixFanout)
			}
		}
		n = n.children[i]
	}
	return &n.entries[idx(opn, radixLevels-1)]
}

// Delete clears the entry for opn.
func (t *Table) Delete(opn arch.OPN) {
	if e := t.find(opn); e != nil {
		*e = Entry{}
	}
}

// Cache is the 64-entry OMT cache in the memory controller (Fig. 6, Ë).
// It is a latency model over the authoritative Table: entries returned by
// Lookup point directly into the table, so updates through them are
// automatically coherent; the cache decides only whether the access costs
// a hit or a full OMT walk.
type Cache struct {
	table   *Table
	stats   *sim.Stats
	missLog *sim.Histogram // OMT walk penalty paid per cache miss
	cap     int
	hitLat  sim.Cycle
	missLat sim.Cycle
	stamps  map[arch.OPN]uint64
	clock   uint64
}

// CacheConfig sizes the OMT cache.
type CacheConfig struct {
	Entries     int
	HitLatency  sim.Cycle
	MissLatency sim.Cycle // the OMT walk (Table 2: 1000 cycles)
}

// DefaultCacheConfig mirrors Table 2.
func DefaultCacheConfig() CacheConfig {
	return CacheConfig{Entries: 64, HitLatency: 5, MissLatency: 1000}
}

// NewCache builds the OMT cache over the table.
func NewCache(cfg CacheConfig, table *Table, stats *sim.Stats) *Cache {
	c := &Cache{
		table:   table,
		stats:   stats,
		cap:     cfg.Entries,
		hitLat:  cfg.HitLatency,
		missLat: cfg.MissLatency,
		stamps:  make(map[arch.OPN]uint64),
	}
	if stats != nil {
		c.missLog = stats.Histogram("omt.miss_penalty_cycles")
	}
	return c
}

// Lookup returns the (authoritative) entry pointer for opn and the access
// latency: a cache hit or a full OMT walk that then fills the cache.
func (c *Cache) Lookup(opn arch.OPN) (*Entry, sim.Cycle) {
	c.clock++
	if _, ok := c.stamps[opn]; ok {
		c.stamps[opn] = c.clock
		if c.stats != nil {
			c.stats.Inc("omt.cache_hits")
		}
		return c.table.Ref(opn), c.hitLat
	}
	if c.stats != nil {
		c.stats.Inc("omt.cache_misses")
		c.missLog.Observe(uint64(c.missLat))
	}
	if len(c.stamps) >= c.cap {
		var victim arch.OPN
		var oldest uint64 = ^uint64(0)
		for k, v := range c.stamps {
			if v < oldest {
				victim, oldest = k, v
			}
		}
		delete(c.stamps, victim)
		if c.stats != nil {
			c.stats.Inc("omt.cache_evictions")
		}
	}
	c.stamps[opn] = c.clock
	return c.table.Ref(opn), c.missLat
}

// Contains reports whether opn is cached (no latency, no LRU update).
func (c *Cache) Contains(opn arch.OPN) bool {
	_, ok := c.stamps[opn]
	return ok
}

// Invalidate drops opn from the cache (promotion/discard actions).
func (c *Cache) Invalidate(opn arch.OPN) { delete(c.stamps, opn) }
