// Package omt implements the Overlay Mapping Table of §4.2/§4.4.4 and the
// memory controller's 64-entry OMT cache. The OMT maps each page of the
// Overlay Address Space (an OPN) to its OBitVector and the base address of
// the segment holding the overlay in the Overlay Memory Store. It is
// stored hierarchically like the virtual-to-physical tables and is owned
// entirely by the memory controller — the OS never walks it.
package omt

import (
	"repro/internal/arch"
	"repro/internal/sim"
)

// Entry is one OMT entry: the page's overlay bit vector and the segment
// base in the Overlay Memory Store (0 = no segment allocated yet; space
// is allocated lazily on the first dirty overlay write-back, §4.3.3).
type Entry struct {
	OBits   arch.OBitVector
	SegBase arch.PhysAddr
}

// Empty reports whether the entry carries no overlay state.
func (e Entry) Empty() bool { return e.OBits == 0 && e.SegBase == 0 }

// Resident reports whether the entry holds a direct (pointer-swizzled)
// segment handle into the Overlay Memory Store. False when no segment is
// allocated or when SegBase is a cold reference to a segment evicted to
// the spill tier — the miss path must Resolve it (refilling the segment)
// before lines can be located.
func (e Entry) Resident() bool { return e.SegBase != 0 && !e.SegBase.IsCold() }

// The table is a 4-level radix over the 52 meaningful OPN bits
// (overlay bit + 15-bit PID + 36-bit VPN), 13 bits per level.
const (
	radixLevels = 4
	radixBits   = 13
	radixFanout = 1 << radixBits
	radixMask   = radixFanout - 1
)

type node struct {
	children [radixFanout]*node
	entries  []Entry
}

// Table is the in-memory OMT.
type Table struct {
	root    node
	lastHop int // interior nodes touched by the last walk (test aid)
}

func idx(opn arch.OPN, level int) int {
	shift := uint(radixBits * (radixLevels - 1 - level))
	return int(uint64(opn)>>shift) & radixMask
}

// Get returns the entry for opn (zero entry if absent).
func (t *Table) Get(opn arch.OPN) Entry {
	if e := t.find(opn); e != nil {
		return *e
	}
	return Entry{}
}

func (t *Table) find(opn arch.OPN) *Entry {
	n := &t.root
	t.lastHop = 0
	for level := 0; level < radixLevels-1; level++ {
		t.lastHop++
		n = n.children[idx(opn, level)]
		if n == nil {
			return nil
		}
	}
	if n.entries == nil {
		return nil
	}
	return &n.entries[idx(opn, radixLevels-1)]
}

// Ref returns a pointer to the entry, materialising the path. The pointer
// stays valid until Delete.
func (t *Table) Ref(opn arch.OPN) *Entry {
	n := &t.root
	for level := 0; level < radixLevels-1; level++ {
		i := idx(opn, level)
		if n.children[i] == nil {
			n.children[i] = &node{}
			if level == radixLevels-2 {
				n.children[i].entries = make([]Entry, radixFanout)
			}
		}
		n = n.children[i]
	}
	return &n.entries[idx(opn, radixLevels-1)]
}

// Delete clears the entry for opn.
func (t *Table) Delete(opn arch.OPN) {
	if e := t.find(opn); e != nil {
		*e = Entry{}
	}
}

// Count returns the number of non-empty entries (the OMT's live
// metadata footprint; translation backends charge bytes per entry).
func (t *Table) Count() int {
	return countNode(&t.root, 0)
}

func countNode(n *node, level int) int {
	total := 0
	if level == radixLevels-1 {
		for i := range n.entries {
			if !n.entries[i].Empty() {
				total++
			}
		}
		return total
	}
	for _, c := range n.children {
		if c != nil {
			total += countNode(c, level+1)
		}
	}
	return total
}

// Cache is the 64-entry OMT cache in the memory controller (Fig. 6, Ë).
// It is a latency model over the authoritative Table: entries returned by
// Lookup point directly into the table, so updates through them are
// automatically coherent; the cache decides only whether the access costs
// a hit or a full OMT walk.
// Residency is tracked with an intrusive doubly-linked LRU list over a
// fixed cap-sized slot array: hits and fills move the slot to the front,
// misses at capacity evict the tail. This selects exactly the victim the
// old timestamp scan did (least recently looked up), without the O(cap)
// minimum scan or a growing stamp map.
type Cache struct {
	table   *Table
	stats   *sim.Stats
	missLog *sim.Histogram // OMT walk penalty paid per cache miss
	cap     int
	hitLat  sim.Cycle
	missLat sim.Cycle

	slots      []cacheSlot
	index      map[arch.OPN]int32
	head, tail int32 // MRU at head, LRU at tail; -1 when empty
	free       []int32

	hits      *uint64
	misses    *uint64
	evictions *uint64
}

// cacheSlot is one residency slot in the LRU list.
type cacheSlot struct {
	opn        arch.OPN
	prev, next int32
}

// CacheConfig sizes the OMT cache.
type CacheConfig struct {
	Entries     int
	HitLatency  sim.Cycle
	MissLatency sim.Cycle // the OMT walk (Table 2: 1000 cycles)
}

// DefaultCacheConfig mirrors Table 2.
func DefaultCacheConfig() CacheConfig {
	return CacheConfig{Entries: 64, HitLatency: 5, MissLatency: 1000}
}

// NewCache builds the OMT cache over the table.
func NewCache(cfg CacheConfig, table *Table, stats *sim.Stats) *Cache {
	if cfg.Entries < 1 {
		panic("omt: cache needs at least one entry")
	}
	c := &Cache{
		table:   table,
		stats:   stats,
		cap:     cfg.Entries,
		hitLat:  cfg.HitLatency,
		missLat: cfg.MissLatency,
		slots:   make([]cacheSlot, cfg.Entries),
		index:   make(map[arch.OPN]int32, cfg.Entries),
		head:    -1,
		tail:    -1,
		free:    make([]int32, 0, cfg.Entries),
	}
	for i := cfg.Entries - 1; i >= 0; i-- {
		c.free = append(c.free, int32(i))
	}
	if stats != nil {
		c.missLog = stats.Histogram("omt.miss_penalty_cycles")
		c.hits = stats.Counter("omt.cache_hits")
		c.misses = stats.Counter("omt.cache_misses")
		c.evictions = stats.Counter("omt.cache_evictions")
	} else {
		var sink uint64
		c.hits, c.misses, c.evictions = &sink, &sink, &sink
	}
	return c
}

func (c *Cache) unlink(i int32) {
	s := &c.slots[i]
	if s.prev >= 0 {
		c.slots[s.prev].next = s.next
	} else {
		c.head = s.next
	}
	if s.next >= 0 {
		c.slots[s.next].prev = s.prev
	} else {
		c.tail = s.prev
	}
}

func (c *Cache) pushFront(i int32) {
	s := &c.slots[i]
	s.prev, s.next = -1, c.head
	if c.head >= 0 {
		c.slots[c.head].prev = i
	}
	c.head = i
	if c.tail < 0 {
		c.tail = i
	}
}

// Lookup returns the (authoritative) entry pointer for opn and the access
// latency: a cache hit or a full OMT walk that then fills the cache.
func (c *Cache) Lookup(opn arch.OPN) (*Entry, sim.Cycle) {
	if i, ok := c.index[opn]; ok {
		if c.head != i {
			c.unlink(i)
			c.pushFront(i)
		}
		*c.hits++
		return c.table.Ref(opn), c.hitLat
	}
	*c.misses++
	if c.missLog != nil {
		c.missLog.Observe(uint64(c.missLat))
	}
	var i int32
	if n := len(c.free); n > 0 {
		i = c.free[n-1]
		c.free = c.free[:n-1]
	} else {
		i = c.tail
		c.unlink(i)
		delete(c.index, c.slots[i].opn)
		*c.evictions++
	}
	c.slots[i].opn = opn
	c.pushFront(i)
	c.index[opn] = i
	return c.table.Ref(opn), c.missLat
}

// Contains reports whether opn is cached (no latency, no LRU update).
func (c *Cache) Contains(opn arch.OPN) bool {
	_, ok := c.index[opn]
	return ok
}

// Invalidate drops opn from the cache (promotion/discard actions).
func (c *Cache) Invalidate(opn arch.OPN) {
	i, ok := c.index[opn]
	if !ok {
		return
	}
	c.unlink(i)
	delete(c.index, opn)
	c.free = append(c.free, i)
}
