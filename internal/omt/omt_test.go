package omt

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/sim"
)

func opnOf(pid arch.PID, vpn arch.VPN) arch.OPN { return arch.OverlayPage(pid, vpn) }

func TestTableGetAbsentIsZero(t *testing.T) {
	var tbl Table
	if !tbl.Get(opnOf(1, 1)).Empty() {
		t.Fatal("absent entry not empty")
	}
}

func TestTableRefPersists(t *testing.T) {
	var tbl Table
	opn := opnOf(1, 10)
	e := tbl.Ref(opn)
	e.OBits = e.OBits.Set(5)
	e.SegBase = 0x1000
	got := tbl.Get(opn)
	if !got.OBits.Has(5) || got.SegBase != 0x1000 {
		t.Fatalf("entry lost: %+v", got)
	}
}

func TestTableDistinctOPNs(t *testing.T) {
	var tbl Table
	for pid := arch.PID(0); pid < 4; pid++ {
		for vpn := arch.VPN(0); vpn < 64; vpn++ {
			tbl.Ref(opnOf(pid, vpn)).SegBase = arch.PhysAddr(uint64(pid)<<32 | uint64(vpn))
		}
	}
	for pid := arch.PID(0); pid < 4; pid++ {
		for vpn := arch.VPN(0); vpn < 64; vpn++ {
			want := arch.PhysAddr(uint64(pid)<<32 | uint64(vpn))
			if got := tbl.Get(opnOf(pid, vpn)).SegBase; got != want {
				t.Fatalf("pid=%d vpn=%d: SegBase=%#x, want %#x", pid, vpn, uint64(got), uint64(want))
			}
		}
	}
}

func TestTableDelete(t *testing.T) {
	var tbl Table
	opn := opnOf(2, 20)
	tbl.Ref(opn).OBits = 0xff
	tbl.Delete(opn)
	if !tbl.Get(opn).Empty() {
		t.Fatal("entry survived delete")
	}
	tbl.Delete(opnOf(3, 3)) // deleting absent entry is a no-op
}

func TestCacheHitMissLatency(t *testing.T) {
	var tbl Table
	var st sim.Stats
	c := NewCache(DefaultCacheConfig(), &tbl, &st)
	cfg := DefaultCacheConfig()
	opn := opnOf(1, 1)

	_, lat := c.Lookup(opn)
	if lat != cfg.MissLatency {
		t.Fatalf("first lookup latency = %d, want %d", lat, cfg.MissLatency)
	}
	_, lat = c.Lookup(opn)
	if lat != cfg.HitLatency {
		t.Fatalf("second lookup latency = %d, want %d", lat, cfg.HitLatency)
	}
	if st.Get("omt.cache_hits") != 1 || st.Get("omt.cache_misses") != 1 {
		t.Fatalf("stats: %v", st.Snapshot())
	}
}

func TestCacheReturnsAuthoritativePointer(t *testing.T) {
	var tbl Table
	var st sim.Stats
	c := NewCache(DefaultCacheConfig(), &tbl, &st)
	opn := opnOf(1, 7)
	e, _ := c.Lookup(opn)
	e.OBits = e.OBits.Set(9)
	// Direct table access must observe the update (coherence by sharing).
	if !tbl.Get(opn).OBits.Has(9) {
		t.Fatal("cache and table diverged")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	var tbl Table
	var st sim.Stats
	cfg := CacheConfig{Entries: 4, HitLatency: 5, MissLatency: 1000}
	c := NewCache(cfg, &tbl, &st)
	for i := 0; i < 4; i++ {
		c.Lookup(opnOf(1, arch.VPN(i)))
	}
	c.Lookup(opnOf(1, 0))            // refresh opn 0
	c.Lookup(opnOf(1, arch.VPN(10))) // evicts opn 1 (LRU)
	if !c.Contains(opnOf(1, 0)) {
		t.Fatal("recently used entry evicted")
	}
	if c.Contains(opnOf(1, 1)) {
		t.Fatal("LRU entry not evicted")
	}
	if st.Get("omt.cache_evictions") != 1 {
		t.Fatalf("evictions = %d", st.Get("omt.cache_evictions"))
	}
}

func TestCacheInvalidate(t *testing.T) {
	var tbl Table
	var st sim.Stats
	c := NewCache(DefaultCacheConfig(), &tbl, &st)
	opn := opnOf(1, 1)
	c.Lookup(opn)
	c.Invalidate(opn)
	if c.Contains(opn) {
		t.Fatal("entry survived invalidate")
	}
	_, lat := c.Lookup(opn)
	if lat != DefaultCacheConfig().MissLatency {
		t.Fatal("invalidated entry hit")
	}
}

func TestEntryEmpty(t *testing.T) {
	if !(Entry{}).Empty() {
		t.Fatal("zero entry should be empty")
	}
	if (Entry{OBits: 1}).Empty() || (Entry{SegBase: 1}).Empty() {
		t.Fatal("non-zero entry reported empty")
	}
}
