package omt

import "repro/internal/arch"

// Snapshot support: the authoritative Table is deep-copied (radix nodes
// and entry leaves) and the controller cache's intrusive-LRU residency
// state is captured by value. Restored cache slots resolve entries
// dynamically through Table.Ref, so re-pointing a restored cache at a
// forked table is all the rebinding needed.

func cloneNode(n *node) *node {
	c := &node{}
	if n.entries != nil {
		c.entries = append([]Entry(nil), n.entries...)
	}
	for i, child := range n.children {
		if child != nil {
			c.children[i] = cloneNode(child)
		}
	}
	return c
}

// Clone deep-copies the table.
func (t *Table) Clone() *Table {
	c := &Table{}
	if t.root.entries != nil {
		c.root.entries = append([]Entry(nil), t.root.entries...)
	}
	for i, child := range t.root.children {
		if child != nil {
			c.root.children[i] = cloneNode(child)
		}
	}
	return c
}

// CacheSnapshot is an immutable capture of the OMT cache's residency
// and LRU state.
type CacheSnapshot struct {
	slots      []cacheSlot
	index      map[arch.OPN]int32
	head, tail int32
	free       []int32
}

// Snapshot captures the cache's LRU list, slot array and index.
func (c *Cache) Snapshot() *CacheSnapshot {
	s := &CacheSnapshot{
		slots: append([]cacheSlot(nil), c.slots...),
		index: make(map[arch.OPN]int32, len(c.index)),
		head:  c.head,
		tail:  c.tail,
		free:  append([]int32(nil), c.free...),
	}
	for k, v := range c.index {
		s.index[k] = v
	}
	return s
}

// Restore loads the captured residency state into this cache and points
// it at the given table (a fork's own deep copy). The cache must have
// the same capacity as the one that produced the snapshot.
func (c *Cache) Restore(s *CacheSnapshot, table *Table) {
	if len(s.slots) != len(c.slots) {
		panic("omt: cache restore capacity mismatch")
	}
	copy(c.slots, s.slots)
	c.index = make(map[arch.OPN]int32, len(s.index))
	for k, v := range s.index {
		c.index[k] = v
	}
	c.head, c.tail = s.head, s.tail
	c.free = append(c.free[:0], s.free...)
	c.table = table
}
