package sim

// DefaultEpoch is the default epoch length of a Series in cycles.
const DefaultEpoch Cycle = 100_000

// SeriesRow is one epoch sample: the cumulative value of every tracked
// counter at the end of the epoch. Consumers difference adjacent rows to
// recover per-epoch rates.
type SeriesRow struct {
	EndCycle Cycle
	Values   []uint64
}

// Series samples a fixed set of counters from a Stats registry every
// `epoch` cycles of simulated time, producing a time-series of cumulative
// counter values. Attach a series to an engine (Engine.Attach) to have it
// sampled as the clock advances; call Engine.CloseSeries (or Finish) to
// flush the final partial epoch.
//
// Epoch boundaries are aligned to absolute multiples of the epoch length,
// so series attached at different times line up row-for-row. Events that
// jump the clock across several boundaries produce one row per boundary
// crossed (with identical cumulative values), keeping rows evenly spaced
// in simulated time.
type Series struct {
	name     string
	epoch    Cycle
	names    []string
	next     Cycle // next un-sampled epoch boundary
	rows     []SeriesRow
	finished bool

	// engineIdx is the series' slot in the owning engine's attach list,
	// letting CloseSeries detach in O(1); -1 when not attached.
	engineIdx int
}

// NewSeries creates a series sampling the named counters every epoch
// cycles (epoch ≤ 0 selects DefaultEpoch).
func NewSeries(name string, epoch Cycle, counters ...string) *Series {
	if epoch <= 0 {
		epoch = DefaultEpoch
	}
	names := make([]string, len(counters))
	copy(names, counters)
	return &Series{name: name, epoch: epoch, names: names, next: epoch, engineIdx: -1}
}

// Name returns the series' label (e.g. "mcf/oow").
func (s *Series) Name() string { return s.name }

// Epoch returns the epoch length in cycles.
func (s *Series) Epoch() Cycle { return s.epoch }

// Counters returns the tracked counter names, in column order.
func (s *Series) Counters() []string { return s.names }

// Rows returns the sampled rows in time order. The slice is shared; do
// not mutate it.
func (s *Series) Rows() []SeriesRow { return s.rows }

// alignTo positions the first boundary strictly after `now`, on an
// absolute multiple of the epoch (Engine.Attach calls this).
func (s *Series) alignTo(now Cycle) {
	s.next = now - now%s.epoch + s.epoch
}

// advance samples every epoch boundary at or before `now`.
func (s *Series) advance(now Cycle, stats *Stats) {
	if s.finished {
		return
	}
	for s.next <= now {
		s.rows = append(s.rows, s.sample(s.next, stats))
		s.next += s.epoch
	}
}

// Finish flushes the final partial epoch (a row at `now` if any time has
// passed since the last boundary) and freezes the series.
func (s *Series) Finish(now Cycle, stats *Stats) {
	if s.finished {
		return
	}
	s.advance(now, stats)
	if len(s.rows) == 0 || s.rows[len(s.rows)-1].EndCycle < now {
		s.rows = append(s.rows, s.sample(now, stats))
	}
	s.finished = true
}

func (s *Series) sample(end Cycle, stats *Stats) SeriesRow {
	vals := make([]uint64, len(s.names))
	for i, n := range s.names {
		vals[i] = stats.Get(n)
	}
	return SeriesRow{EndCycle: end, Values: vals}
}
