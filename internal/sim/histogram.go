package sim

import (
	"math"
	"math/bits"
)

// histBuckets is the number of power-of-two buckets: bucket 0 holds the
// value 0 exactly; bucket k (k ≥ 1) holds values in [2^(k-1), 2^k - 1].
// 64 value buckets cover the full uint64 range.
const histBuckets = 65

// Histogram is a power-of-two-bucketed distribution of uint64 samples
// (latencies in cycles, sizes in bytes, …). Observation is O(1) and
// allocation-free, so histograms are safe to keep on simulator hot paths;
// quantiles are recovered by linear interpolation inside the matching
// bucket. The zero value is ready to use.
type Histogram struct {
	name     string
	count    uint64
	sum      uint64
	min, max uint64
	buckets  [histBuckets]uint64
}

// NewHistogram returns an empty named histogram.
func NewHistogram(name string) *Histogram { return &Histogram{name: name} }

// Name returns the histogram's registry name.
func (h *Histogram) Name() string { return h.name }

// bucketOf maps a value to its bucket index.
func bucketOf(v uint64) int { return bits.Len64(v) }

// BucketBounds returns the inclusive [lo, hi] value range of bucket i.
func BucketBounds(i int) (lo, hi uint64) {
	if i <= 0 {
		return 0, 0
	}
	lo = uint64(1) << uint(i-1)
	if i >= 64 {
		return lo, math.MaxUint64
	}
	return lo, uint64(1)<<uint(i) - 1
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[bucketOf(v)]++
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() uint64 { return h.sum }

// Min returns the smallest observed sample (0 if empty).
func (h *Histogram) Min() uint64 { return h.min }

// Max returns the largest observed sample (0 if empty).
func (h *Histogram) Max() uint64 { return h.max }

// Mean returns the arithmetic mean (0 if empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile returns an estimate of the q-quantile (q in [0, 1]) by linear
// interpolation within the bucket containing the target rank, clamped to
// the observed [min, max]. An empty histogram reports 0.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(h.count)
	var cum uint64
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		if float64(cum+c) >= target {
			lo, hi := BucketBounds(i)
			pos := (target - float64(cum)) / float64(c)
			v := float64(lo) + (float64(hi)-float64(lo))*pos
			return clampf(v, float64(h.min), float64(h.max))
		}
		cum += c
	}
	return float64(h.max)
}

// P50, P95 and P99 are the conventional latency percentiles.
func (h *Histogram) P50() float64 { return h.Quantile(0.50) }
func (h *Histogram) P95() float64 { return h.Quantile(0.95) }
func (h *Histogram) P99() float64 { return h.Quantile(0.99) }

// Bucket returns the sample count of bucket i (0 ≤ i < NumBuckets).
func (h *Histogram) Bucket(i int) uint64 { return h.buckets[i] }

// NumBuckets is the number of buckets a histogram carries.
func (h *Histogram) NumBuckets() int { return histBuckets }

// Merge folds other's samples into h (multi-core experiments combine
// per-framework histograms this way).
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.count == 0 {
		return
	}
	if h.count == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.count += other.count
	h.sum += other.sum
	for i, c := range other.buckets {
		h.buckets[i] += c
	}
}

// Reset discards all samples.
func (h *Histogram) Reset() { *h = Histogram{name: h.name} }

func clampf(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
