package sim

// This file implements machine-readable experiment output. Every
// overlaysim subcommand can emit an Export — a versioned JSON document
// bundling the run's configuration, final counters, latency histograms,
// epoch time-series and per-command results — so benchmark trajectories
// can be diffed across commits instead of eyeballing printed tables.

import (
	"encoding/csv"
	"encoding/json"
	"io"
	"runtime"
	"strconv"
)

// SchemaVersion identifies the Export JSON layout. Bump it on any
// backwards-incompatible change to the schema (field removal or
// renaming; purely additive fields keep the version).
const SchemaVersion = 1

// Export is the machine-readable result of one simulator run.
type Export struct {
	SchemaVersion int                         `json:"schema_version"`
	Command       string                      `json:"command"`
	Meta          *RunMeta                    `json:"meta,omitempty"`
	Config        interface{}                 `json:"config,omitempty"`
	Counters      map[string]uint64           `json:"counters,omitempty"`
	Histograms    map[string]HistogramSummary `json:"histograms,omitempty"`
	Series        []SeriesExport              `json:"series,omitempty"`
	Results       interface{}                 `json:"results,omitempty"`
}

// RunMeta records the provenance of a run — what executed it and how
// wide the harness fanned out — so exported baselines can be compared
// with their execution environment in view. Purely additive to the
// schema: absent fields keep old documents valid, so SchemaVersion
// stays at 1.
type RunMeta struct {
	GoVersion string  `json:"go_version,omitempty"`
	NumCPU    int     `json:"num_cpu,omitempty"`
	Parallel  int     `json:"parallel,omitempty"` // harness worker count
	WallMS    float64 `json:"wall_ms,omitempty"`  // host wall clock of the whole run
}

// NewRunMeta captures the current runtime environment.
func NewRunMeta(parallel int) *RunMeta {
	return &RunMeta{
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Parallel:  parallel,
	}
}

// HistogramSummary is the exported form of a Histogram: headline moments
// and percentiles plus the non-empty buckets.
type HistogramSummary struct {
	Count   uint64        `json:"count"`
	Min     uint64        `json:"min"`
	Max     uint64        `json:"max"`
	Mean    float64       `json:"mean"`
	P50     float64       `json:"p50"`
	P95     float64       `json:"p95"`
	P99     float64       `json:"p99"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// BucketCount is one non-empty histogram bucket: the inclusive value
// range [Lo, Hi] and its sample count.
type BucketCount struct {
	Lo    uint64 `json:"lo"`
	Hi    uint64 `json:"hi"`
	Count uint64 `json:"count"`
}

// Summary renders the histogram for export.
func (h *Histogram) Summary() HistogramSummary {
	s := HistogramSummary{
		Count: h.Count(),
		Min:   h.Min(),
		Max:   h.Max(),
		Mean:  h.Mean(),
		P50:   h.P50(),
		P95:   h.P95(),
		P99:   h.P99(),
	}
	for i := 0; i < h.NumBuckets(); i++ {
		if c := h.Bucket(i); c > 0 {
			lo, hi := BucketBounds(i)
			s.Buckets = append(s.Buckets, BucketCount{Lo: lo, Hi: hi, Count: c})
		}
	}
	return s
}

// SeriesExport is the exported form of a Series.
type SeriesExport struct {
	Name        string            `json:"name"`
	EpochCycles uint64            `json:"epoch_cycles"`
	Counters    []string          `json:"counters"`
	Rows        []SeriesRowExport `json:"rows"`
}

// SeriesRowExport is one exported epoch sample (cumulative values, in
// the same order as SeriesExport.Counters).
type SeriesRowExport struct {
	EndCycle uint64   `json:"end_cycle"`
	Values   []uint64 `json:"values"`
}

// ExportSeries renders the series for export.
func ExportSeries(s *Series) SeriesExport {
	out := SeriesExport{
		Name:        s.Name(),
		EpochCycles: uint64(s.Epoch()),
		Counters:    s.Counters(),
	}
	for _, row := range s.Rows() {
		out.Rows = append(out.Rows, SeriesRowExport{
			EndCycle: uint64(row.EndCycle),
			Values:   row.Values,
		})
	}
	return out
}

// NewExport creates an empty export for the named command.
func NewExport(command string) *Export {
	return &Export{SchemaVersion: SchemaVersion, Command: command}
}

// ExportFrom bundles a stats registry (counters + histograms) and any
// number of series into an export.
func ExportFrom(command string, stats *Stats, series ...*Series) *Export {
	e := NewExport(command)
	if stats != nil {
		e.Counters = stats.Snapshot()
		hists := stats.Histograms()
		if len(hists) > 0 {
			e.Histograms = make(map[string]HistogramSummary, len(hists))
			for name, h := range hists {
				e.Histograms[name] = h.Summary()
			}
		}
	}
	e.AddSeries(series...)
	return e
}

// AddSeries appends series to the export.
func (e *Export) AddSeries(series ...*Series) {
	for _, s := range series {
		if s != nil {
			e.Series = append(e.Series, ExportSeries(s))
		}
	}
}

// WriteJSON renders the export as indented JSON.
func (e *Export) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(e)
}

// WriteSeriesCSV renders series rows in long form —
// series,counter,end_cycle,value — one record per (row, counter) pair,
// ready for any plotting tool.
func WriteSeriesCSV(w io.Writer, series ...*Series) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"series", "counter", "end_cycle", "value"}); err != nil {
		return err
	}
	for _, s := range series {
		if s == nil {
			continue
		}
		for _, row := range s.Rows() {
			for i, name := range s.Counters() {
				rec := []string{
					s.Name(),
					name,
					strconv.FormatUint(uint64(row.EndCycle), 10),
					strconv.FormatUint(row.Values[i], 10),
				}
				if err := cw.Write(rec); err != nil {
					return err
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
