package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestScheduleAndRunOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(10, func() { order = append(order, 2) })
	e.Schedule(5, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 3) })
	end := e.Run()
	if end != 20 {
		t.Fatalf("final cycle = %d, want 20", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
}

func TestSameCycleFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(7, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-cycle events ran out of order: %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	var trace []Cycle
	e.Schedule(3, func() {
		trace = append(trace, e.Now())
		e.Schedule(4, func() {
			trace = append(trace, e.Now())
		})
	})
	e.Run()
	if len(trace) != 2 || trace[0] != 3 || trace[1] != 7 {
		t.Fatalf("trace = %v, want [3 7]", trace)
	}
}

func TestZeroDelayRunsThisCycle(t *testing.T) {
	e := NewEngine()
	ran := false
	e.Schedule(5, func() {
		e.Schedule(0, func() {
			if e.Now() != 5 {
				t.Errorf("zero-delay event at cycle %d, want 5", e.Now())
			}
			ran = true
		})
	})
	e.Run()
	if !ran {
		t.Fatal("zero-delay event never ran")
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var ran []Cycle
	for _, d := range []Cycle{5, 10, 15, 20} {
		d := d
		e.Schedule(d, func() { ran = append(ran, d) })
	}
	e.RunUntil(12)
	if len(ran) != 2 {
		t.Fatalf("ran %v, want events at 5 and 10 only", ran)
	}
	if e.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", e.Pending())
	}
	e.Run()
	if len(ran) != 4 {
		t.Fatalf("after Run, ran %v", ran)
	}
}

func TestRunWhile(t *testing.T) {
	e := NewEngine()
	count := 0
	var tick func()
	tick = func() {
		count++
		e.Schedule(1, tick)
	}
	e.Schedule(1, tick)
	e.RunWhile(func() bool { return count < 100 })
	if count != 100 {
		t.Fatalf("count = %d, want 100", count)
	}
}

func TestAtPanicsOnPast(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling in the past")
		}
	}()
	e.At(5, func() {})
}

func TestEventOrderProperty(t *testing.T) {
	// Property: for any set of delays, events fire in nondecreasing time
	// order and the engine visits exactly len(delays) events.
	f := func(raw []uint16) bool {
		e := NewEngine()
		var fired []Cycle
		for _, d := range raw {
			e.Schedule(Cycle(d), func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		if len(fired) != len(raw) {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Error(err)
	}
}

func TestStats(t *testing.T) {
	var s Stats
	s.Inc("a")
	s.Add("a", 4)
	s.Add("b", 2)
	if s.Get("a") != 5 || s.Get("b") != 2 || s.Get("missing") != 0 {
		t.Fatalf("counters wrong: %v", s.Snapshot())
	}
	names := s.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("Names = %v", names)
	}
	snap := s.Snapshot()
	s.Inc("a")
	if snap["a"] != 5 {
		t.Fatal("Snapshot must copy")
	}
	if s.String() == "" {
		t.Fatal("String empty")
	}
	s.Reset()
	if s.Get("a") != 0 || len(s.Names()) != 0 {
		t.Fatal("Reset failed")
	}
}
