package sim

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"
)

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"dram.read_cycles":   "dram_read_cycles",
		"core.cow-copies":    "core_cow_copies",
		"tlb walk":           "tlb_walk",
		"9lives":             "_9lives",
		"ok_name:subsystem0": "ok_name:subsystem0",
	}
	for in, want := range cases {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestWritePrometheusRoundTrip renders a populated registry and feeds
// it back through the parser: every counter value survives, every
// histogram has monotonically non-decreasing cumulative buckets ending
// at +Inf == _count, and every metric declares a TYPE.
func TestWritePrometheusRoundTrip(t *testing.T) {
	s := &Stats{}
	s.Add("dram.reads", 123)
	s.Add("core.overlaying_writes", 7)
	h := s.Histogram("dram.read_cycles")
	for _, v := range []uint64{0, 1, 3, 3, 17, 17, 200, 5000} {
		h.Observe(v)
	}

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, "overlaysim_", s); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	samples, types, err := ParsePrometheus(strings.NewReader(out))
	if err != nil {
		t.Fatalf("rendered output does not parse: %v\n%s", err, out)
	}

	byName := map[string][]PromSample{}
	for _, smp := range samples {
		byName[smp.Name] = append(byName[smp.Name], smp)
	}
	if v := byName["overlaysim_dram_reads"]; len(v) != 1 || v[0].Value != 123 {
		t.Errorf("dram.reads sample = %v", v)
	}
	if types["overlaysim_dram_reads"] != "counter" {
		t.Errorf("dram.reads TYPE = %q", types["overlaysim_dram_reads"])
	}
	if types["overlaysim_dram_read_cycles"] != "histogram" {
		t.Errorf("histogram TYPE = %q", types["overlaysim_dram_read_cycles"])
	}

	buckets := byName["overlaysim_dram_read_cycles_bucket"]
	if len(buckets) < 2 {
		t.Fatalf("histogram has %d bucket samples", len(buckets))
	}
	prevLe := math.Inf(-1)
	prevCum := -1.0
	for _, b := range buckets {
		le := math.Inf(1)
		if b.Le != "+Inf" {
			var err error
			le, err = parsePromValue(b.Le)
			if err != nil {
				t.Fatalf("bucket le %q: %v", b.Le, err)
			}
		}
		if le <= prevLe {
			t.Errorf("bucket le %v not increasing after %v", le, prevLe)
		}
		if b.Value < prevCum {
			t.Errorf("bucket counts not cumulative: %v after %v", b.Value, prevCum)
		}
		prevLe, prevCum = le, b.Value
	}
	last := buckets[len(buckets)-1]
	if last.Le != "+Inf" {
		t.Errorf("last bucket le = %q, want +Inf", last.Le)
	}
	count := byName["overlaysim_dram_read_cycles_count"]
	sum := byName["overlaysim_dram_read_cycles_sum"]
	if len(count) != 1 || count[0].Value != float64(h.Count()) {
		t.Errorf("_count = %v, want %d", count, h.Count())
	}
	if last.Value != count[0].Value {
		t.Errorf("+Inf bucket %v != _count %v", last.Value, count[0].Value)
	}
	if len(sum) != 1 || sum[0].Value != float64(h.Sum()) {
		t.Errorf("_sum = %v, want %d", sum, h.Sum())
	}
}

// TestWritePrometheusEmpty renders the zero registry (valid, empty).
func TestWritePrometheusEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, "x_", &Stats{}); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("empty registry rendered %q", buf.String())
	}
	if _, _, err := ParsePrometheus(&buf); err != nil {
		t.Errorf("empty exposition rejected: %v", err)
	}
}

// TestParsePrometheusRejectsMalformed guards the parser itself.
func TestParsePrometheusRejectsMalformed(t *testing.T) {
	for name, doc := range map[string]string{
		"no value":         "metric_without_value\n",
		"bad value":        "m one\n",
		"unquoted label":   `m{job=x} 1` + "\n",
		"unclosed label":   `m{job="x} 1` + "\n",
		"empty label name": `m{="x"} 1` + "\n",
		"dangling escape":  `m{job="x\"} 1` + "\n",
		"unknown escape":   `m{job="x\q"} 1` + "\n",
	} {
		if _, _, err := ParsePrometheus(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: parser accepted %q", name, doc)
		}
	}
}

// TestWritePrometheusBucketBoundaries pins the power-of-two → le
// mapping at the bucket edges: a value equal to a bucket's inclusive
// upper bound must be counted under exactly that le, and the next
// value must open the next bucket.
func TestWritePrometheusBucketBoundaries(t *testing.T) {
	s := &Stats{}
	h := s.Histogram("edge")
	// Bucket 0 holds {0}; bucket k holds [2^(k-1), 2^k - 1]. Observe
	// both edges of the [4,7] bucket plus its neighbours.
	for _, v := range []uint64{0, 3, 4, 7, 8} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, "", s); err != nil {
		t.Fatal(err)
	}
	samples, _, err := ParsePrometheus(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, buf.String())
	}
	cumByLe := map[string]float64{}
	for _, smp := range samples {
		if smp.Name == "edge_bucket" {
			cumByLe[smp.Le] = smp.Value
		}
	}
	// Cumulative counts: le 0 → {0}; le 3 → +{3}; le 7 → +{4,7};
	// le 15 → +{8}; +Inf → total.
	for le, want := range map[string]float64{
		"0": 1, "3": 2, "7": 4, "15": 5, "+Inf": 5,
	} {
		if got, ok := cumByLe[le]; !ok || got != want {
			t.Errorf("cumulative bucket le=%q = %v (present %v), want %v", le, got, ok, want)
		}
	}
	if len(cumByLe) != 5 {
		t.Errorf("bucket les = %v, want exactly {0,3,7,15,+Inf}", cumByLe)
	}
}

// TestWritePrometheusZeroCountSeries renders a registry holding a
// zero-valued counter and a histogram that never observed a sample:
// both must still expose well-formed series (a 0 counter; an empty
// histogram with only the mandatory +Inf bucket, _sum 0, _count 0).
func TestWritePrometheusZeroCountSeries(t *testing.T) {
	s := &Stats{}
	s.Add("touched.then_zero", 0)
	s.Histogram("never.observed")
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, "p_", s); err != nil {
		t.Fatal(err)
	}
	samples, types, err := ParsePrometheus(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, buf.String())
	}
	got := map[string]PromSample{}
	for _, smp := range samples {
		got[smp.Name+"/"+smp.Le] = smp
	}
	if smp, ok := got["p_touched_then_zero/"]; !ok || smp.Value != 0 {
		t.Errorf("zero counter sample = %+v (present %v)", smp, ok)
	}
	if smp, ok := got["p_never_observed_bucket/+Inf"]; !ok || smp.Value != 0 {
		t.Errorf("empty histogram +Inf bucket = %+v (present %v)", smp, ok)
	}
	for _, name := range []string{"p_never_observed_sum", "p_never_observed_count"} {
		if smp, ok := got[name+"/"]; !ok || smp.Value != 0 {
			t.Errorf("%s = %+v (present %v), want 0", name, smp, ok)
		}
	}
	if n := len(samples); n != 4 {
		t.Errorf("rendered %d samples, want 4 (counter, +Inf, _sum, _count)", n)
	}
	if types["p_never_observed"] != "histogram" {
		t.Errorf("empty histogram TYPE = %q", types["p_never_observed"])
	}
}

// TestPromLabelEscapingRoundTrip writes labelled samples whose values
// contain every escapable character and parses them back.
func TestPromLabelEscapingRoundTrip(t *testing.T) {
	values := []string{
		`plain`,
		`with "quotes"`,
		`back\slash`,
		"new\nline",
		`trailing backslash\`,
		`all three: \ " ` + "\n",
		`ends with quote"`,
		`"}`, // label-closer inside the value
		``,
	}
	var doc strings.Builder
	for i, v := range values {
		fmt.Fprintf(&doc, "m_%d{code=\"%s\"} %d\n", i, PromEscapeLabel(v), i)
	}
	samples, _, err := ParsePrometheus(strings.NewReader(doc.String()))
	if err != nil {
		t.Fatalf("escaped document does not parse: %v\n%s", err, doc.String())
	}
	if len(samples) != len(values) {
		t.Fatalf("parsed %d samples, want %d", len(samples), len(values))
	}
	for i, smp := range samples {
		if smp.Label != "code" || smp.LabelVal != values[i] {
			t.Errorf("sample %d: label %q=%q, want code=%q", i, smp.Label, smp.LabelVal, values[i])
		}
		if smp.Le != "" {
			t.Errorf("sample %d: non-le label leaked into Le: %q", i, smp.Le)
		}
		if smp.Value != float64(i) {
			t.Errorf("sample %d: value %v, want %d", i, smp.Value, i)
		}
	}
	// le labels keep populating the Le convenience field.
	smp, _, err := ParsePrometheus(strings.NewReader("h_bucket{le=\"+Inf\"} 3\n"))
	if err != nil || len(smp) != 1 || smp[0].Le != "+Inf" || smp[0].LabelVal != "+Inf" {
		t.Fatalf("le sample = %+v (%v)", smp, err)
	}
}
