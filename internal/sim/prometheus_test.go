package sim

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"dram.read_cycles":   "dram_read_cycles",
		"core.cow-copies":    "core_cow_copies",
		"tlb walk":           "tlb_walk",
		"9lives":             "_9lives",
		"ok_name:subsystem0": "ok_name:subsystem0",
	}
	for in, want := range cases {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestWritePrometheusRoundTrip renders a populated registry and feeds
// it back through the parser: every counter value survives, every
// histogram has monotonically non-decreasing cumulative buckets ending
// at +Inf == _count, and every metric declares a TYPE.
func TestWritePrometheusRoundTrip(t *testing.T) {
	s := &Stats{}
	s.Add("dram.reads", 123)
	s.Add("core.overlaying_writes", 7)
	h := s.Histogram("dram.read_cycles")
	for _, v := range []uint64{0, 1, 3, 3, 17, 17, 200, 5000} {
		h.Observe(v)
	}

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, "overlaysim_", s); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	samples, types, err := ParsePrometheus(strings.NewReader(out))
	if err != nil {
		t.Fatalf("rendered output does not parse: %v\n%s", err, out)
	}

	byName := map[string][]PromSample{}
	for _, smp := range samples {
		byName[smp.Name] = append(byName[smp.Name], smp)
	}
	if v := byName["overlaysim_dram_reads"]; len(v) != 1 || v[0].Value != 123 {
		t.Errorf("dram.reads sample = %v", v)
	}
	if types["overlaysim_dram_reads"] != "counter" {
		t.Errorf("dram.reads TYPE = %q", types["overlaysim_dram_reads"])
	}
	if types["overlaysim_dram_read_cycles"] != "histogram" {
		t.Errorf("histogram TYPE = %q", types["overlaysim_dram_read_cycles"])
	}

	buckets := byName["overlaysim_dram_read_cycles_bucket"]
	if len(buckets) < 2 {
		t.Fatalf("histogram has %d bucket samples", len(buckets))
	}
	prevLe := math.Inf(-1)
	prevCum := -1.0
	for _, b := range buckets {
		le := math.Inf(1)
		if b.Le != "+Inf" {
			var err error
			le, err = parsePromValue(b.Le)
			if err != nil {
				t.Fatalf("bucket le %q: %v", b.Le, err)
			}
		}
		if le <= prevLe {
			t.Errorf("bucket le %v not increasing after %v", le, prevLe)
		}
		if b.Value < prevCum {
			t.Errorf("bucket counts not cumulative: %v after %v", b.Value, prevCum)
		}
		prevLe, prevCum = le, b.Value
	}
	last := buckets[len(buckets)-1]
	if last.Le != "+Inf" {
		t.Errorf("last bucket le = %q, want +Inf", last.Le)
	}
	count := byName["overlaysim_dram_read_cycles_count"]
	sum := byName["overlaysim_dram_read_cycles_sum"]
	if len(count) != 1 || count[0].Value != float64(h.Count()) {
		t.Errorf("_count = %v, want %d", count, h.Count())
	}
	if last.Value != count[0].Value {
		t.Errorf("+Inf bucket %v != _count %v", last.Value, count[0].Value)
	}
	if len(sum) != 1 || sum[0].Value != float64(h.Sum()) {
		t.Errorf("_sum = %v, want %d", sum, h.Sum())
	}
}

// TestWritePrometheusEmpty renders the zero registry (valid, empty).
func TestWritePrometheusEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, "x_", &Stats{}); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("empty registry rendered %q", buf.String())
	}
	if _, _, err := ParsePrometheus(&buf); err != nil {
		t.Errorf("empty exposition rejected: %v", err)
	}
}

// TestParsePrometheusRejectsMalformed guards the parser itself.
func TestParsePrometheusRejectsMalformed(t *testing.T) {
	for name, doc := range map[string]string{
		"no value":   "metric_without_value\n",
		"bad value":  "m one\n",
		"bad labels": `m{job="x"} 1` + "\n",
	} {
		if _, _, err := ParsePrometheus(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: parser accepted %q", name, doc)
		}
	}
}
