package sim

// This file renders a Stats registry in the Prometheus text exposition
// format (version 0.0.4), so the telemetry the simulator already
// collects — counters and power-of-two latency histograms — can be
// scraped straight off a serving process's /metrics endpoint. The
// histogram buckets map onto Prometheus's cumulative le-labelled
// buckets exactly: bucket k's inclusive upper bound becomes the le
// value, counts accumulate left to right, and the mandatory +Inf
// bucket carries the total sample count.

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// PromName sanitises a registry name ("dram.read_cycles") into a
// Prometheus metric name ("dram_read_cycles"): every character outside
// [a-zA-Z0-9_:] becomes '_', and a leading digit is prefixed with '_'.
func PromName(name string) string {
	var sb strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if !ok {
			if r >= '0' && r <= '9' { // leading digit
				sb.WriteByte('_')
				sb.WriteRune(r)
				continue
			}
			sb.WriteByte('_')
			continue
		}
		sb.WriteRune(r)
	}
	return sb.String()
}

// WritePrometheus renders every counter and histogram of the registry
// in Prometheus text format, each metric name prefixed with prefix
// (conventionally the serving binary's namespace, e.g. "overlaysim_").
// Counters are emitted as counter-typed samples in sorted name order;
// histograms become native Prometheus histograms with cumulative
// buckets, _sum and _count. The output is deterministic for a given
// registry state.
func WritePrometheus(w io.Writer, prefix string, s *Stats) error {
	for _, name := range s.Names() {
		metric := prefix + PromName(name)
		if _, err := fmt.Fprintf(w, "# HELP %s simulator counter %s\n# TYPE %s counter\n%s %d\n",
			metric, name, metric, metric, s.Get(name)); err != nil {
			return err
		}
	}
	for _, name := range s.HistogramNames() {
		if err := writePromHistogram(w, prefix+PromName(name), name, s.Histogram(name)); err != nil {
			return err
		}
	}
	return nil
}

// writePromHistogram renders one histogram: one cumulative bucket line
// per non-empty power-of-two bucket, the mandatory +Inf bucket, then
// _sum and _count.
func writePromHistogram(w io.Writer, metric, name string, h *Histogram) error {
	if _, err := fmt.Fprintf(w, "# HELP %s simulator histogram %s\n# TYPE %s histogram\n",
		metric, name, metric); err != nil {
		return err
	}
	var cum uint64
	for i := 0; i < h.NumBuckets(); i++ {
		c := h.Bucket(i)
		if c == 0 {
			continue
		}
		cum += c
		_, hi := BucketBounds(i)
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", metric, hi, cum); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
		metric, h.Count(), metric, h.Sum(), metric, h.Count())
	return err
}

// PromEscapeLabel escapes a label value for the exposition format:
// backslash, double quote and newline become \\, \" and \n. Writers
// emitting labelled samples (the server's status-labelled response
// counters) must escape through here so ParsePrometheus — and any real
// Prometheus scraper — can read the value back.
func PromEscapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var sb strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// promUnescapeLabel reverses PromEscapeLabel. A dangling or unknown
// escape is an error.
func promUnescapeLabel(s string) (string, error) {
	if !strings.ContainsRune(s, '\\') {
		return s, nil
	}
	var sb strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c != '\\' {
			sb.WriteByte(c)
			continue
		}
		i++
		if i >= len(s) {
			return "", fmt.Errorf("dangling escape in label value %q", s)
		}
		switch s[i] {
		case '\\':
			sb.WriteByte('\\')
		case '"':
			sb.WriteByte('"')
		case 'n':
			sb.WriteByte('\n')
		default:
			return "", fmt.Errorf("unknown escape \\%c in label value %q", s[i], s)
		}
	}
	return sb.String(), nil
}

// PromSample is one parsed exposition sample: the metric name, at most
// one label (name + unescaped value), and the sample value. Le is the
// label value when the label is "le" — the histogram-bucket form most
// callers care about — and "" otherwise.
type PromSample struct {
	Name     string
	Label    string // label name, "" for bare samples
	LabelVal string // unescaped label value
	Le       string
	Value    float64
}

// ParsePrometheus is a minimal exposition-format parser covering what
// this package's writers emit (and what the CI smoke test scrapes):
// # HELP / # TYPE comments, bare samples, and single-labelled samples
// (histogram le buckets, the server's status-labelled counters) with
// escaped label values. It returns the samples in input order together
// with the declared TYPE per metric, and rejects structurally
// malformed lines — tests use it to prove /metrics is valid, not
// merely present.
func ParsePrometheus(r io.Reader) (samples []PromSample, types map[string]string, err error) {
	types = make(map[string]string)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 4 && fields[1] == "TYPE" {
				types[fields[2]] = fields[3]
			}
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			return nil, nil, fmt.Errorf("prometheus: line %d: no value: %q", lineNo, line)
		}
		name, valStr := line[:sp], line[sp+1:]
		var label, labelVal string
		if i := strings.IndexByte(name, '{'); i >= 0 {
			var perr error
			label, labelVal, perr = parsePromLabel(name[i:])
			if perr != nil {
				return nil, nil, fmt.Errorf("prometheus: line %d: %v", lineNo, perr)
			}
			name = name[:i]
		}
		if name == "" || strings.ContainsAny(name, " \t") {
			return nil, nil, fmt.Errorf("prometheus: line %d: bad metric name %q", lineNo, name)
		}
		v, perr := parsePromValue(valStr)
		if perr != nil {
			return nil, nil, fmt.Errorf("prometheus: line %d: %v", lineNo, perr)
		}
		s := PromSample{Name: name, Label: label, LabelVal: labelVal, Value: v}
		if label == "le" {
			s.Le = labelVal
		}
		samples = append(samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	return samples, types, nil
}

// parsePromLabel parses a single-label set `{name="value"}` with
// escaped value characters.
func parsePromLabel(s string) (label, value string, err error) {
	if !strings.HasPrefix(s, "{") || !strings.HasSuffix(s, `"}`) {
		return "", "", fmt.Errorf("unsupported labels %q", s)
	}
	eq := strings.IndexByte(s, '=')
	if eq < 0 || eq+1 >= len(s) || s[eq+1] != '"' {
		return "", "", fmt.Errorf("unsupported labels %q", s)
	}
	label = s[1:eq]
	if label == "" || strings.ContainsAny(label, ` "{}`) {
		return "", "", fmt.Errorf("bad label name in %q", s)
	}
	raw := s[eq+2 : len(s)-2]
	// The closing quote found by the suffix check must not itself be
	// escaped: count the trailing backslashes before it.
	bs := 0
	for i := len(raw) - 1; i >= 0 && raw[i] == '\\'; i-- {
		bs++
	}
	if bs%2 == 1 {
		return "", "", fmt.Errorf("unterminated label value in %q", s)
	}
	value, err = promUnescapeLabel(raw)
	if err != nil {
		return "", "", err
	}
	return label, value, nil
}

func parsePromValue(s string) (float64, error) {
	if s == "+Inf" {
		return strconv.ParseFloat("+inf", 64)
	}
	return strconv.ParseFloat(s, 64)
}
