package sim

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

func TestTraceLogRingWraparound(t *testing.T) {
	tl := NewTraceLog(4)
	tl.BeginTrack("run")
	for i := 0; i < 10; i++ {
		tl.Emit(Cycle(i), "cat", "ev", TraceArg{Key: "i", Val: uint64(i)})
	}
	if tl.Total() != 10 {
		t.Errorf("Total() = %d, want 10", tl.Total())
	}
	if tl.Dropped() != 6 {
		t.Errorf("Dropped() = %d, want 6", tl.Dropped())
	}
	evs := tl.Events()
	if len(evs) != 4 {
		t.Fatalf("Events() returned %d events, want 4", len(evs))
	}
	// The ring keeps the most recent window, in emission order.
	for i, ev := range evs {
		if want := Cycle(6 + i); ev.Cycle != want {
			t.Errorf("event %d at cycle %d, want %d", i, ev.Cycle, want)
		}
	}

	// A log that never fills returns everything in order.
	small := NewTraceLog(100)
	small.Emit(1, "a", "x")
	small.Emit(2, "a", "y")
	if small.Dropped() != 0 || len(small.Events()) != 2 {
		t.Errorf("unfilled ring: dropped=%d events=%d", small.Dropped(), len(small.Events()))
	}
}

func TestTraceLogTracks(t *testing.T) {
	tl := NewTraceLog(16)
	a := tl.BeginTrack("first")
	tl.Emit(5, "c", "e1")
	b := tl.BeginTrack("second")
	tl.Emit(6, "c", "e2")
	if a != 1 || b != 2 {
		t.Errorf("track ids = %d, %d, want 1, 2", a, b)
	}
	evs := tl.Events()
	if evs[0].Track != 1 || evs[1].Track != 2 {
		t.Errorf("event tracks = %d, %d, want 1, 2", evs[0].Track, evs[1].Track)
	}
}

// TestWriteChromeTraceMergesRecordSets bundles the ring's records with
// a foreign record set (the CLI merges obs span records this way) and
// checks the result is one well-formed document containing both.
func TestWriteChromeTraceMergesRecordSets(t *testing.T) {
	tl := NewTraceLog(8)
	tl.BeginTrack("run")
	tl.Emit(42, "cat", "sim-event")
	simRecords, err := tl.ChromeRecords()
	if err != nil {
		t.Fatalf("ChromeRecords: %v", err)
	}
	foreign := []json.RawMessage{
		json.RawMessage(`{"name":"host-span","ph":"X","ts":0,"dur":7,"pid":0,"tid":0}`),
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, simRecords, foreign); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("merged output is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 3 { // metadata + instant + foreign span
		t.Fatalf("got %d trace events, want 3", len(doc.TraceEvents))
	}
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		names[ev["name"].(string)] = true
	}
	if !names["sim-event"] || !names["host-span"] {
		t.Fatalf("merged document lacks records from both sets: %v", names)
	}
}

// TestGoldenChromeTrace locks the Chrome trace_event rendering against a
// golden file so the output stays loadable in chrome://tracing and
// Perfetto. Regenerate with: go test ./internal/sim -run TestGolden -update
func TestGoldenChromeTrace(t *testing.T) {
	tl := NewTraceLog(16)
	tl.BeginTrack("mcf/oow")
	tl.Emit(120, "overlay", "create",
		TraceArg{Key: "pid", Val: 1}, TraceArg{Key: "vpn", Val: 0x40})
	tl.Emit(340, "oms", "segment-alloc",
		TraceArg{Key: "base", Val: 4096}, TraceArg{Key: "class", Val: 0},
		TraceArg{Key: "bytes", Val: 256})
	tl.BeginTrack("mcf/cow")
	tl.Emit(512, "promote", "copy-and-commit",
		TraceArg{Key: "pid", Val: 2}, TraceArg{Key: "vpn", Val: 0x40},
		TraceArg{Key: "lines", Val: 3})

	var buf bytes.Buffer
	if err := tl.WriteChrome(&buf); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}

	// Structural checks first: valid JSON with the trace_event shape.
	var doc struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 5 { // 2 metadata + 3 instants
		t.Fatalf("got %d trace events, want 5", len(doc.TraceEvents))
	}
	meta, instants := 0, 0
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "M":
			meta++
		case "i":
			instants++
			if ev["s"] != "t" {
				t.Errorf("instant event missing thread scope: %v", ev)
			}
		default:
			t.Errorf("unexpected phase %v", ev["ph"])
		}
	}
	if meta != 2 || instants != 3 {
		t.Errorf("got %d metadata + %d instant events, want 2 + 3", meta, instants)
	}

	golden := filepath.Join("testdata", "chrome_trace.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden: %v (regenerate with -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("Chrome trace output differs from golden file %s\ngot:\n%s\nwant:\n%s",
			golden, buf.Bytes(), want)
	}
}
