package sim

import "testing"

// BenchmarkEngineStep measures the steady-state schedule→pop→invoke
// cycle of the calendar-queue scheduler across the three delay regimes:
// same-cycle, in-window, and overflow-heap distances. CI gates on this
// benchmark reporting 0 allocs/op — the hot path must run entirely on
// the node free list.
func BenchmarkEngineStep(b *testing.B) {
	e := NewEngine()
	delays := [4]Cycle{0, 1, 100, windowSize + 512}
	var i int
	var fn Event
	fn = func() {
		e.Schedule(delays[i&3], fn)
		i++
	}
	// Keep a few events in flight so buckets and the overflow heap both
	// stay populated.
	for j := 0; j < 8; j++ {
		e.Schedule(Cycle(j), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if !e.Step() {
			b.Fatal("engine drained")
		}
	}
}
