package sim

import (
	"encoding/json"
	"io"
)

// TraceArg is one key/value annotation on a trace event.
type TraceArg struct {
	Key string
	Val uint64
}

// TraceEvent is one typed simulator event: a point in simulated time with
// a category, a name, the logical track it belongs to, and annotations.
type TraceEvent struct {
	Cycle Cycle
	Track uint64
	Cat   string
	Name  string
	Args  []TraceArg
}

// TraceLog is a bounded ring buffer of TraceEvents. When the buffer is
// full the oldest events are overwritten, so a long run keeps the most
// recent window — Dropped reports how many fell off. The log renders to
// Chrome trace_event JSON (WriteChrome), loadable in chrome://tracing and
// Perfetto's legacy importer.
//
// A nil *TraceLog means tracing is disabled; emit sites guard with a nil
// check so the disabled path costs one branch and no allocation.
type TraceLog struct {
	cap    int
	buf    []TraceEvent
	next   int // overwrite position once the buffer is full
	total  uint64
	track  uint64
	tracks []string // track id → display name (index = id - 1)
}

// DefaultTraceCap is the default ring capacity in events.
const DefaultTraceCap = 1 << 16

// NewTraceLog creates a log holding at most `capacity` events
// (capacity ≤ 0 selects DefaultTraceCap).
func NewTraceLog(capacity int) *TraceLog {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &TraceLog{cap: capacity}
}

// BeginTrack starts a new logical track (one per simulated run or
// process); subsequent events are stamped with its id, and WriteChrome
// names the track in the viewer.
func (t *TraceLog) BeginTrack(name string) uint64 {
	t.tracks = append(t.tracks, name)
	t.track = uint64(len(t.tracks))
	return t.track
}

// Emit appends one event at the given cycle.
func (t *TraceLog) Emit(cycle Cycle, cat, name string, args ...TraceArg) {
	ev := TraceEvent{Cycle: cycle, Track: t.track, Cat: cat, Name: name, Args: args}
	if len(t.buf) < t.cap {
		t.buf = append(t.buf, ev)
	} else {
		t.buf[t.next] = ev
		t.next = (t.next + 1) % t.cap
	}
	t.total++
}

// Total returns how many events were ever emitted.
func (t *TraceLog) Total() uint64 { return t.total }

// Dropped returns how many events were overwritten by ring wraparound.
func (t *TraceLog) Dropped() uint64 { return t.total - uint64(len(t.buf)) }

// Events returns the retained events in emission order.
func (t *TraceLog) Events() []TraceEvent {
	out := make([]TraceEvent, 0, len(t.buf))
	out = append(out, t.buf[t.next:]...)
	return append(out, t.buf[:t.next]...)
}

// chromeEvent is one record of the Chrome trace_event format.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	Ts   uint64            `json:"ts"`
	Pid  uint64            `json:"pid"`
	Tid  uint64            `json:"tid"`
	S    string            `json:"s,omitempty"`
	Args map[string]uint64 `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents []json.RawMessage `json:"traceEvents"`
}

// ChromeRecords renders the retained events as Chrome trace_event
// records: one instant event ("ph":"i") per simulator event with the
// cycle count as the timestamp, plus process_name metadata naming each
// track (tracks are numbered from 1; pid 0 is reserved for host-side
// span records merged in by the CLI).
func (t *TraceLog) ChromeRecords() ([]json.RawMessage, error) {
	var records []json.RawMessage
	for i, name := range t.tracks {
		meta := map[string]interface{}{
			"name": "process_name",
			"ph":   "M",
			"pid":  uint64(i + 1),
			"tid":  uint64(0),
			"args": map[string]string{"name": name},
		}
		raw, err := json.Marshal(meta)
		if err != nil {
			return nil, err
		}
		records = append(records, raw)
	}
	for _, ev := range t.Events() {
		ce := chromeEvent{
			Name: ev.Name,
			Cat:  ev.Cat,
			Ph:   "i",
			Ts:   uint64(ev.Cycle),
			Pid:  ev.Track,
			Tid:  0,
			S:    "t",
		}
		if len(ev.Args) > 0 {
			ce.Args = make(map[string]uint64, len(ev.Args))
			for _, a := range ev.Args {
				ce.Args[a.Key] = a.Val
			}
		}
		raw, err := json.Marshal(ce)
		if err != nil {
			return nil, err
		}
		records = append(records, raw)
	}
	return records, nil
}

// WriteChromeTrace bundles any number of record sets — the simulator
// ring's ChromeRecords, obs span records, … — into one Chrome
// trace_event JSON document loadable in chrome://tracing and Perfetto.
func WriteChromeTrace(w io.Writer, recordSets ...[]json.RawMessage) error {
	var records []json.RawMessage
	for _, set := range recordSets {
		records = append(records, set...)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(chromeTrace{TraceEvents: records})
}

// WriteChrome renders the retained events as a standalone Chrome
// trace_event JSON document (ChromeRecords + WriteChromeTrace).
func (t *TraceLog) WriteChrome(w io.Writer) error {
	records, err := t.ChromeRecords()
	if err != nil {
		return err
	}
	return WriteChromeTrace(w, records)
}
