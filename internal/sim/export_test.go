package sim

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestExportMetaRoundTrip checks the additive meta block serializes
// under schema v1 and survives a JSON round trip.
func TestExportMetaRoundTrip(t *testing.T) {
	ex := NewExport("bench")
	ex.Meta = NewRunMeta(4)
	ex.Meta.WallMS = 1234.5
	if ex.Meta.GoVersion == "" || ex.Meta.NumCPU < 1 {
		t.Fatalf("NewRunMeta incomplete: %+v", ex.Meta)
	}
	var buf bytes.Buffer
	if err := ex.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Export
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.SchemaVersion != SchemaVersion {
		t.Errorf("schema version %d, want %d", back.SchemaVersion, SchemaVersion)
	}
	if back.Meta == nil || back.Meta.Parallel != 4 || back.Meta.WallMS != 1234.5 {
		t.Errorf("meta lost in round trip: %+v", back.Meta)
	}
}

// TestExportMetaOmitted keeps old-style exports byte-compatible: no
// meta block, no "meta" key.
func TestExportMetaOmitted(t *testing.T) {
	var buf bytes.Buffer
	if err := NewExport("fork").WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "\"meta\"") {
		t.Errorf("empty meta serialized:\n%s", buf.String())
	}
}
