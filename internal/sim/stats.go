package sim

import (
	"fmt"
	"sort"
	"strings"
)

// Stats is a flat registry of named counters. Components record event
// counts (cache hits, DRAM row conflicts, overlaying writes, …) into the
// engine's registry so experiments can report them uniformly.
type Stats struct {
	counters map[string]uint64
}

// Add increments the named counter by n, creating it if needed.
func (s *Stats) Add(name string, n uint64) {
	if s.counters == nil {
		s.counters = make(map[string]uint64)
	}
	s.counters[name] += n
}

// Inc increments the named counter by one.
func (s *Stats) Inc(name string) { s.Add(name, 1) }

// Get returns the counter's value (zero if never touched).
func (s *Stats) Get(name string) uint64 { return s.counters[name] }

// Reset clears every counter.
func (s *Stats) Reset() { s.counters = nil }

// Names returns all counter names in sorted order.
func (s *Stats) Names() []string {
	names := make([]string, 0, len(s.counters))
	for k := range s.counters {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Snapshot returns a copy of all counters.
func (s *Stats) Snapshot() map[string]uint64 {
	out := make(map[string]uint64, len(s.counters))
	for k, v := range s.counters {
		out[k] = v
	}
	return out
}

// String renders counters one per line, sorted by name.
func (s *Stats) String() string {
	var sb strings.Builder
	for _, name := range s.Names() {
		fmt.Fprintf(&sb, "%-40s %12d\n", name, s.counters[name])
	}
	return sb.String()
}
