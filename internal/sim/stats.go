package sim

import (
	"fmt"
	"sort"
	"strings"
)

// Stats is a flat registry of named counters and latency histograms.
// Components record event counts (cache hits, DRAM row conflicts,
// overlaying writes, …) and latency samples into the engine's registry so
// experiments can report them uniformly.
//
// The zero value is ready to use: Get, Snapshot, Names, Histograms and
// String are all safe before the first Add/Observe and behave exactly as
// they do on an empty registry (zero counts, empty — but non-nil —
// snapshot maps).
type Stats struct {
	counters map[string]*uint64
	hists    map[string]*Histogram
}

// Counter returns a stable pointer to the named counter's storage,
// creating it (at zero) if needed. Hot components fetch their handles
// once at construction and bump them with `*h++`, keeping the per-event
// path free of string-keyed map writes. Handles stay valid until Reset.
func (s *Stats) Counter(name string) *uint64 {
	if s.counters == nil {
		s.counters = make(map[string]*uint64)
	}
	p := s.counters[name]
	if p == nil {
		p = new(uint64)
		s.counters[name] = p
	}
	return p
}

// Add increments the named counter by n, creating it if needed.
func (s *Stats) Add(name string, n uint64) { *s.Counter(name) += n }

// Inc increments the named counter by one.
func (s *Stats) Inc(name string) { s.Add(name, 1) }

// Get returns the counter's value (zero if never touched).
func (s *Stats) Get(name string) uint64 {
	if p := s.counters[name]; p != nil {
		return *p
	}
	return 0
}

// Histogram returns the named histogram, creating it empty if needed.
// Components fetch their handle once at construction and call Observe on
// it directly, keeping the per-sample path free of map lookups.
func (s *Stats) Histogram(name string) *Histogram {
	if s.hists == nil {
		s.hists = make(map[string]*Histogram)
	}
	h := s.hists[name]
	if h == nil {
		h = NewHistogram(name)
		s.hists[name] = h
	}
	return h
}

// Histograms returns all registered histograms keyed by name. The
// histograms are shared, not copies; the map itself is fresh.
func (s *Stats) Histograms() map[string]*Histogram {
	out := make(map[string]*Histogram, len(s.hists))
	for k, v := range s.hists {
		out[k] = v
	}
	return out
}

// Reset clears every counter and histogram. Counter handles obtained
// before Reset are orphaned: they keep working but no longer feed the
// registry, so components holding handles must be rebuilt after a Reset.
func (s *Stats) Reset() {
	s.counters = nil
	s.hists = nil
}

// Merge folds other's counters (summed) and histograms (sample-merged)
// into s. Multi-core and multi-run experiments combine per-framework
// registries this way instead of summing counters by hand.
func (s *Stats) Merge(other *Stats) {
	if other == nil {
		return
	}
	for name, v := range other.counters {
		s.Add(name, *v)
	}
	for name, h := range other.hists {
		s.Histogram(name).Merge(h)
	}
}

// Names returns all counter names in sorted order.
func (s *Stats) Names() []string {
	names := make([]string, 0, len(s.counters))
	for k := range s.counters {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// HistogramNames returns all histogram names in sorted order.
func (s *Stats) HistogramNames() []string {
	names := make([]string, 0, len(s.hists))
	for k := range s.hists {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Snapshot returns a copy of all counters. The map is never nil.
func (s *Stats) Snapshot() map[string]uint64 {
	out := make(map[string]uint64, len(s.counters))
	for k, v := range s.counters {
		out[k] = *v
	}
	return out
}

// String renders counters one per line sorted by name, followed by one
// summary line per histogram.
func (s *Stats) String() string {
	var sb strings.Builder
	for _, name := range s.Names() {
		fmt.Fprintf(&sb, "%-40s %12d\n", name, *s.counters[name])
	}
	for _, name := range s.HistogramNames() {
		h := s.hists[name]
		fmt.Fprintf(&sb, "%-40s %12d  mean %.1f  p50 %.0f  p95 %.0f  p99 %.0f  max %d\n",
			name+" (hist)", h.Count(), h.Mean(), h.P50(), h.P95(), h.P99(), h.Max())
	}
	return sb.String()
}
