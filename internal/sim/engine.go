// Package sim provides the discrete-event simulation engine and the
// statistics registry used by every timed component in the system. The
// engine keeps a calendar queue of (cycle, sequence, callback) events and
// advances the clock to the next event; components express latency by
// scheduling continuations.
//
// The scheduler is a bucketed calendar queue: events within a fixed
// window of the current cycle land in a ring of per-cycle buckets
// (O(1) enqueue/dequeue, FIFO within a cycle), events beyond the window
// go to a sorted overflow heap and migrate into the ring as the clock
// advances. Event nodes are recycled through a free list, so steady-state
// Schedule/Step performs zero heap allocations.
package sim

import "math/bits"

// Cycle is a point in simulated time, measured in CPU cycles.
type Cycle uint64

// Event is a callback scheduled to run at a particular cycle.
type Event func()

// ArgEvent is a callback taking a packed uint64 argument. Hot paths
// pre-bind one ArgEvent per completion type at construction and pass the
// varying state (an address, a slab index) through the argument, so
// scheduling a continuation allocates nothing.
type ArgEvent func(arg uint64)

// Cont is a pre-bound continuation: either a plain Event or an ArgEvent
// plus its packed argument. The zero value is a no-op. Cont is a small
// value type — passing or storing one never allocates; the allocation
// cost (if any) was paid when the underlying func value was created.
type Cont struct {
	fn  ArgEvent
	f0  Event
	arg uint64
}

// ContOf wraps a plain callback (nil yields the no-op continuation).
func ContOf(f Event) Cont { return Cont{f0: f} }

// Bind packs a pre-bound ArgEvent and its argument into a continuation.
func Bind(fn ArgEvent, arg uint64) Cont { return Cont{fn: fn, arg: arg} }

// Valid reports whether invoking the continuation runs any code.
func (c Cont) Valid() bool { return c.fn != nil || c.f0 != nil }

// Invoke runs the continuation (no-op for the zero value).
func (c Cont) Invoke() {
	if c.fn != nil {
		c.fn(c.arg)
	} else if c.f0 != nil {
		c.f0()
	}
}

// node is one queued event. Nodes live either in a calendar bucket (next
// links the bucket's FIFO chain) or on the free list.
type node struct {
	at   Cycle
	seq  uint64 // tie-break so same-cycle events run in schedule order
	c    Cont
	next *node
}

const (
	// windowSize is the calendar span in cycles: events scheduled fewer
	// than windowSize cycles ahead go straight to a per-cycle bucket;
	// farther events wait in the overflow heap. 4096 covers every fixed
	// latency in the simulated system (the largest, a conventional TLB
	// shootdown, is 4000 cycles), so overflow traffic is rare.
	windowSize = 4096
	windowMask = windowSize - 1
	occWords   = windowSize / 64
)

// bucket is a FIFO chain of events that share one cycle. Within the
// active window each ring slot holds at most one distinct cycle, so
// append-at-tail preserves global (cycle, seq) order.
type bucket struct {
	head, tail *node
}

// Engine is a discrete-event simulator. The zero value is ready to use.
type Engine struct {
	now Cycle
	seq uint64

	buckets   [windowSize]bucket
	occ       [occWords]uint64 // occupancy bitmap over buckets
	nearCount int              // events currently in buckets
	overflow  []*node          // min-heap on (at, seq): events ≥ now+windowSize
	free      *node            // recycled event nodes
	pending   int

	// Memoised result of NextCycle; invalidated by pops, kept exact by
	// Schedule (an earlier event simply lowers it).
	nextAt    Cycle
	nextValid bool

	Stats Stats

	// Trace, when non-nil, receives typed simulator events from every
	// component wired to this engine (see TraceLog). Nil disables tracing.
	Trace *TraceLog

	series []*Series
}

// NewEngine returns an engine with time at cycle zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated cycle.
func (e *Engine) Now() Cycle { return e.now }

func (e *Engine) alloc() *node {
	n := e.free
	if n == nil {
		return new(node)
	}
	e.free = n.next
	n.next = nil
	return n
}

func (e *Engine) recycle(n *node) {
	n.c = Cont{}
	n.next = e.free
	e.free = n
}

// enqueue places a node in its calendar bucket. The caller guarantees
// n.at < now+windowSize and that nodes for any one cycle arrive in seq
// order (Schedule order, or overflow-heap pop order during migration).
func (e *Engine) enqueue(n *node) {
	b := &e.buckets[n.at&windowMask]
	if b.tail == nil {
		b.head = n
		idx := n.at & windowMask
		e.occ[idx>>6] |= 1 << (idx & 63)
	} else {
		b.tail.next = n
	}
	b.tail = n
	e.nearCount++
}

// Schedule runs fn after delay cycles. A delay of zero runs fn later in
// the current cycle, after all previously scheduled current-cycle events.
func (e *Engine) Schedule(delay Cycle, fn Event) {
	e.ScheduleCont(delay, ContOf(fn))
}

// ScheduleArg runs the pre-bound fn(arg) after delay cycles. It is the
// allocation-free form hot components use with continuations bound once
// at construction.
func (e *Engine) ScheduleArg(delay Cycle, fn ArgEvent, arg uint64) {
	e.ScheduleCont(delay, Bind(fn, arg))
}

// ScheduleCont runs the continuation after delay cycles.
func (e *Engine) ScheduleCont(delay Cycle, c Cont) {
	at := e.now + delay
	e.seq++
	n := e.alloc()
	n.at, n.seq, n.c = at, e.seq, c
	if delay < windowSize {
		e.enqueue(n)
	} else {
		e.overflowPush(n)
	}
	e.pending++
	if e.nextValid && at < e.nextAt {
		e.nextAt = at
	}
}

// At runs fn at the given absolute cycle, which must not be in the past.
func (e *Engine) At(cycle Cycle, fn Event) {
	if cycle < e.now {
		panic("sim: scheduling event in the past")
	}
	e.Schedule(cycle-e.now, fn)
}

// AtCont runs the continuation at the given absolute cycle, which must
// not be in the past.
func (e *Engine) AtCont(cycle Cycle, c Cont) {
	if cycle < e.now {
		panic("sim: scheduling event in the past")
	}
	e.ScheduleCont(cycle-e.now, c)
}

// Pending reports the number of events not yet run.
func (e *Engine) Pending() int { return e.pending }

// NextCycle reports the cycle of the earliest pending event without
// running it or advancing the clock. ok is false when no events remain.
func (e *Engine) NextCycle() (cycle Cycle, ok bool) {
	if e.pending == 0 {
		return 0, false
	}
	if e.nextValid {
		return e.nextAt, true
	}
	if e.nearCount > 0 {
		e.nextAt = e.scanFrom(e.now)
	} else {
		e.nextAt = e.overflow[0].at
	}
	e.nextValid = true
	return e.nextAt, true
}

// scanFrom finds the cycle of the first occupied bucket at or after
// `from`, using the occupancy bitmap (64 buckets per probe). The caller
// guarantees nearCount > 0, so the scan terminates within one window.
func (e *Engine) scanFrom(from Cycle) Cycle {
	idx := from & windowMask
	word := idx >> 6
	// Mask off bits below the starting bucket in the first word.
	w := e.occ[word] &^ (1<<(idx&63) - 1)
	for i := Cycle(0); ; i++ {
		if w != 0 {
			bit := Cycle(bits.TrailingZeros64(w))
			bucketIdx := word<<6 | bit
			// Distance from `from` to the bucket, wrapping the ring.
			return from + ((bucketIdx - idx) & windowMask)
		}
		if i >= occWords {
			panic("sim: occupancy bitmap inconsistent with nearCount")
		}
		word = (word + 1) & (occWords - 1)
		w = e.occ[word]
	}
}

// advanceTo moves the clock to `at` and migrates overflow events that
// the new window now covers into their calendar buckets. Heap pops come
// out in (at, seq) order, so same-cycle migrants keep FIFO order.
func (e *Engine) advanceTo(at Cycle) {
	if at == e.now {
		return
	}
	e.now = at
	limit := at + windowSize
	for len(e.overflow) > 0 && e.overflow[0].at < limit {
		e.enqueue(e.overflowPop())
	}
}

// pop removes and returns the earliest event, advancing the clock to its
// cycle. The caller guarantees pending > 0.
func (e *Engine) pop() *node {
	at, _ := e.NextCycle()
	e.advanceTo(at)
	idx := at & windowMask
	b := &e.buckets[idx]
	n := b.head
	b.head = n.next
	if b.head == nil {
		b.tail = nil
		e.occ[idx>>6] &^= 1 << (idx & 63)
	}
	n.next = nil
	e.nearCount--
	e.pending--
	e.nextValid = false
	return n
}

// Attach registers a series for sampling as the clock advances. The
// series' epoch boundaries are aligned to absolute multiples of its epoch
// length, starting after the current cycle.
func (e *Engine) Attach(s *Series) {
	s.alignTo(e.now)
	s.engineIdx = len(e.series)
	e.series = append(e.series, s)
}

// CloseSeries flushes the series' final partial epoch at the current
// cycle and detaches it from the engine in O(1) (the detached slot is
// backfilled with the last attached series).
func (e *Engine) CloseSeries(s *Series) {
	s.Finish(e.now, &e.Stats)
	i := s.engineIdx
	if i < 0 || i >= len(e.series) || e.series[i] != s {
		return // not attached (Finish still ran, matching historic behaviour)
	}
	last := len(e.series) - 1
	e.series[i] = e.series[last]
	e.series[i].engineIdx = i
	e.series[last] = nil
	e.series = e.series[:last]
	s.engineIdx = -1
}

// Step runs the next event, advancing the clock to its cycle. It reports
// whether an event was run.
func (e *Engine) Step() bool {
	if e.pending == 0 {
		return false
	}
	n := e.pop()
	if len(e.series) > 0 {
		for _, s := range e.series {
			s.advance(e.now, &e.Stats)
		}
	}
	c := n.c
	e.recycle(n)
	c.Invoke()
	return true
}

// Run executes events until the queue drains and returns the final cycle.
func (e *Engine) Run() Cycle {
	for e.Step() {
	}
	return e.now
}

// RunUntil executes events with cycle ≤ limit. Events scheduled beyond the
// limit remain queued; the clock is left at the last executed event (or
// unchanged if none ran).
func (e *Engine) RunUntil(limit Cycle) {
	for {
		at, ok := e.NextCycle()
		if !ok || at > limit {
			return
		}
		e.Step()
	}
}

// RunWhile executes events as long as cond returns true and events remain.
func (e *Engine) RunWhile(cond func() bool) {
	for cond() && e.Step() {
	}
}

// --- overflow min-heap on (at, seq) --------------------------------------
//
// A hand-rolled heap over []*node: container/heap would box every push
// and pop through interface{}, defeating the free list.

func overflowLess(a, b *node) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (e *Engine) overflowPush(n *node) {
	h := append(e.overflow, n)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !overflowLess(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	e.overflow = h
}

func (e *Engine) overflowPop() *node {
	h := e.overflow
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h[last] = nil
	h = h[:last]
	e.overflow = h
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h) && overflowLess(h[l], h[small]) {
			small = l
		}
		if r < len(h) && overflowLess(h[r], h[small]) {
			small = r
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	return top
}
