// Package sim provides the discrete-event simulation engine and the
// statistics registry used by every timed component in the system. The
// engine keeps a priority queue of (cycle, sequence, callback) events and
// advances the clock to the next event; components express latency by
// scheduling continuations.
package sim

import "container/heap"

// Cycle is a point in simulated time, measured in CPU cycles.
type Cycle uint64

// Event is a callback scheduled to run at a particular cycle.
type Event func()

type queuedEvent struct {
	at  Cycle
	seq uint64 // tie-break so same-cycle events run in schedule order
	fn  Event
}

type eventHeap []queuedEvent

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(queuedEvent)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulator. The zero value is ready to use.
type Engine struct {
	now    Cycle
	seq    uint64
	events eventHeap
	Stats  Stats

	// Trace, when non-nil, receives typed simulator events from every
	// component wired to this engine (see TraceLog). Nil disables tracing.
	Trace *TraceLog

	series []*Series
}

// NewEngine returns an engine with time at cycle zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated cycle.
func (e *Engine) Now() Cycle { return e.now }

// Schedule runs fn after delay cycles. A delay of zero runs fn later in
// the current cycle, after all previously scheduled current-cycle events.
func (e *Engine) Schedule(delay Cycle, fn Event) {
	e.seq++
	heap.Push(&e.events, queuedEvent{at: e.now + delay, seq: e.seq, fn: fn})
}

// At runs fn at the given absolute cycle, which must not be in the past.
func (e *Engine) At(cycle Cycle, fn Event) {
	if cycle < e.now {
		panic("sim: scheduling event in the past")
	}
	e.Schedule(cycle-e.now, fn)
}

// Pending reports the number of events not yet run.
func (e *Engine) Pending() int { return len(e.events) }

// Attach registers a series for sampling as the clock advances. The
// series' epoch boundaries are aligned to absolute multiples of its epoch
// length, starting after the current cycle.
func (e *Engine) Attach(s *Series) {
	s.alignTo(e.now)
	e.series = append(e.series, s)
}

// CloseSeries flushes the series' final partial epoch at the current
// cycle and detaches it from the engine.
func (e *Engine) CloseSeries(s *Series) {
	s.Finish(e.now, &e.Stats)
	for i, attached := range e.series {
		if attached == s {
			e.series = append(e.series[:i], e.series[i+1:]...)
			break
		}
	}
}

// Step runs the next event, advancing the clock to its cycle. It reports
// whether an event was run.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(queuedEvent)
	e.now = ev.at
	if len(e.series) > 0 {
		for _, s := range e.series {
			s.advance(e.now, &e.Stats)
		}
	}
	ev.fn()
	return true
}

// Run executes events until the queue drains and returns the final cycle.
func (e *Engine) Run() Cycle {
	for e.Step() {
	}
	return e.now
}

// RunUntil executes events with cycle ≤ limit. Events scheduled beyond the
// limit remain queued; the clock is left at the last executed event (or
// unchanged if none ran).
func (e *Engine) RunUntil(limit Cycle) {
	for len(e.events) > 0 && e.events[0].at <= limit {
		e.Step()
	}
}

// RunWhile executes events as long as cond returns true and events remain.
func (e *Engine) RunWhile(cond func() bool) {
	for cond() && e.Step() {
	}
}
