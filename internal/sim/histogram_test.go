package sim

import (
	"math"
	"testing"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		v      uint64
		bucket int
	}{
		{0, 0},
		{1, 1},
		{2, 2}, {3, 2},
		{4, 3}, {7, 3},
		{8, 4}, {15, 4},
		{1 << 10, 11}, {1<<11 - 1, 11},
		{math.MaxUint64, 64},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.bucket {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.bucket)
		}
		lo, hi := BucketBounds(c.bucket)
		if c.v < lo || c.v > hi {
			t.Errorf("value %d outside BucketBounds(%d) = [%d, %d]", c.v, c.bucket, lo, hi)
		}
	}

	// Buckets must tile the uint64 range without gaps or overlap.
	prevHi := uint64(0)
	for i := 1; i < histBuckets; i++ {
		lo, hi := BucketBounds(i)
		if lo != prevHi+1 {
			t.Errorf("bucket %d starts at %d, want %d", i, lo, prevHi+1)
		}
		if hi < lo {
			t.Errorf("bucket %d has hi %d < lo %d", i, hi, lo)
		}
		prevHi = hi
	}
	if prevHi != math.MaxUint64 {
		t.Errorf("buckets end at %d, want MaxUint64", prevHi)
	}

	h := NewHistogram("t")
	for _, c := range cases {
		h.Observe(c.v)
	}
	for _, c := range cases {
		if h.Bucket(c.bucket) == 0 {
			t.Errorf("bucket %d empty after observing %d", c.bucket, c.v)
		}
	}
}

func TestHistogramStats(t *testing.T) {
	h := NewHistogram("lat")
	for _, v := range []uint64{10, 20, 30, 40} {
		h.Observe(v)
	}
	if h.Count() != 4 || h.Sum() != 100 || h.Min() != 10 || h.Max() != 40 {
		t.Fatalf("count/sum/min/max = %d/%d/%d/%d, want 4/100/10/40",
			h.Count(), h.Sum(), h.Min(), h.Max())
	}
	if h.Mean() != 25 {
		t.Errorf("Mean() = %v, want 25", h.Mean())
	}
}

func TestHistogramQuantileInterpolation(t *testing.T) {
	// 100 samples of the value 20 — every quantile lands in bucket 5
	// ([16, 31]) and must clamp to the observed min=max=20.
	h := NewHistogram("q")
	for i := 0; i < 100; i++ {
		h.Observe(20)
	}
	for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
		if got := h.Quantile(q); got != 20 {
			t.Errorf("Quantile(%v) = %v, want 20 (clamped to min/max)", q, got)
		}
	}

	// 50 samples at 1, 50 at 1024: the median must stay in the low
	// bucket's range and p99 in the high bucket's range [1024, 2047],
	// clamped to max 1024.
	h2 := NewHistogram("q2")
	for i := 0; i < 50; i++ {
		h2.Observe(1)
		h2.Observe(1024)
	}
	if p50 := h2.P50(); p50 != 1 {
		t.Errorf("P50() = %v, want 1", p50)
	}
	if p99 := h2.P99(); p99 != 1024 {
		t.Errorf("P99() = %v, want 1024 (clamped to max)", p99)
	}

	// Interpolation inside a bucket: 10 samples spanning bucket 7
	// ([64, 127]). The interpolated quantile must be monotone and stay
	// within the bucket bounds.
	h3 := NewHistogram("q3")
	for i := 0; i < 10; i++ {
		h3.Observe(64 + uint64(i)*7)
	}
	last := -1.0
	for _, q := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		v := h3.Quantile(q)
		if v < 64 || v > 127 {
			t.Errorf("Quantile(%v) = %v outside bucket [64, 127]", q, v)
		}
		if v < last {
			t.Errorf("Quantile(%v) = %v not monotone (prev %v)", q, v, last)
		}
		last = v
	}
}

func TestHistogramZeroSample(t *testing.T) {
	var h Histogram // zero value must be usable
	if h.Count() != 0 || h.Sum() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Errorf("empty histogram count/sum/min/max = %d/%d/%d/%d, want all 0",
			h.Count(), h.Sum(), h.Min(), h.Max())
	}
	if h.Mean() != 0 {
		t.Errorf("empty Mean() = %v, want 0", h.Mean())
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%v) = %v, want 0", q, got)
		}
	}

	// A histogram of only zero-valued samples stays in bucket 0.
	h.Observe(0)
	h.Observe(0)
	if h.Bucket(0) != 2 || h.Count() != 2 || h.Max() != 0 {
		t.Errorf("after two Observe(0): bucket0=%d count=%d max=%d, want 2/2/0",
			h.Bucket(0), h.Count(), h.Max())
	}
	if h.P95() != 0 {
		t.Errorf("P95() of all-zero samples = %v, want 0", h.P95())
	}
}

func TestHistogramMergeAndReset(t *testing.T) {
	a := NewHistogram("a")
	b := NewHistogram("b")
	for i := uint64(1); i <= 10; i++ {
		a.Observe(i)
	}
	for i := uint64(100); i <= 105; i++ {
		b.Observe(i)
	}
	a.Merge(b)
	if a.Count() != 16 || a.Min() != 1 || a.Max() != 105 {
		t.Errorf("merged count/min/max = %d/%d/%d, want 16/1/105", a.Count(), a.Min(), a.Max())
	}
	a.Merge(nil) // must be a no-op
	if a.Count() != 16 {
		t.Errorf("Merge(nil) changed count to %d", a.Count())
	}

	a.Reset()
	if a.Count() != 0 || a.Sum() != 0 || a.Name() != "a" {
		t.Errorf("after Reset: count=%d sum=%d name=%q", a.Count(), a.Sum(), a.Name())
	}
}
