package sim

import (
	"container/heap"
	"math/rand"
	"testing"
)

// refEvent and refHeap form a reference scheduler: a plain binary heap
// ordered by (cycle, insertion sequence), the specification the
// calendar queue must match event for event.
type refEvent struct {
	at  Cycle
	seq uint64
	id  int
}

type refHeap []refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x interface{}) { *h = append(*h, x.(refEvent)) }
func (h *refHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// refSched mirrors the Engine's Schedule/At surface over the heap.
type refSched struct {
	now  Cycle
	seq  uint64
	heap refHeap
}

func (r *refSched) schedule(delay Cycle, id int) {
	heap.Push(&r.heap, refEvent{at: r.now + delay, seq: r.seq, id: id})
	r.seq++
}

func (r *refSched) at(cycle Cycle, id int) {
	heap.Push(&r.heap, refEvent{at: cycle, seq: r.seq, id: id})
	r.seq++
}

func (r *refSched) pop() (refEvent, bool) {
	if len(r.heap) == 0 {
		return refEvent{}, false
	}
	ev := heap.Pop(&r.heap).(refEvent)
	r.now = ev.at
	return ev, true
}

// TestCalendarMatchesReferenceHeap drives the calendar-queue engine and
// the reference heap with an identical randomized storm of interleaved
// Schedule/At calls — same-cycle delays, short in-window delays,
// bucket-wrap distances, and beyond-window delays that ride the
// overflow heap — and requires the two to execute events in exactly the
// same order. Executed events reschedule more work, so migration from
// the overflow heap back into buckets is exercised at many phases.
func TestCalendarMatchesReferenceHeap(t *testing.T) {
	rng := rand.New(rand.NewSource(0xCA1E))
	delays := []Cycle{
		0, 0, 1, 2, 3, 7, 63, 64, 100, 1023,
		windowSize - 1, windowSize, windowSize + 1,
		2*windowSize + 17, 10 * windowSize,
	}

	e := NewEngine()
	ref := &refSched{}
	var got []int

	nextID := 0
	var spawn func(depth int) // schedules one event pair in both schedulers
	spawn = func(depth int) {
		id := nextID
		nextID++
		body := func() {
			got = append(got, id)
			// Half the executed events reschedule follow-up work, so the
			// storm interleaves scheduling with execution at many cycles.
			if depth > 0 && rng.Intn(2) == 0 {
				spawn(depth - 1)
			}
		}
		if rng.Intn(4) == 0 {
			// Absolute-time insertion.
			target := e.Now() + delays[rng.Intn(len(delays))]
			e.At(target, body)
			ref.at(target, id)
		} else {
			d := delays[rng.Intn(len(delays))]
			e.Schedule(d, body)
			ref.schedule(d, id)
		}
	}

	for i := 0; i < 2000; i++ {
		spawn(3)
	}
	for {
		// Pop the reference first so ref.now is current when the engine's
		// event body reschedules into both schedulers.
		rev, rok := ref.pop()
		ok := e.Step()
		if ok != rok {
			t.Fatalf("schedulers disagree on drain: engine=%v ref=%v after %d events", ok, rok, len(got))
		}
		if !ok {
			break
		}
		if e.Now() != rev.at {
			t.Fatalf("event %d: engine at cycle %d, reference at %d", len(got), e.Now(), rev.at)
		}
		if got[len(got)-1] != rev.id {
			t.Fatalf("event %d: engine ran id %d, reference expected %d", len(got), got[len(got)-1], rev.id)
		}
	}
	if nextID != len(got) {
		t.Fatalf("executed %d events, scheduled %d", len(got), nextID)
	}
}
