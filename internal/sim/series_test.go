package sim

import "testing"

func TestSeriesEpochAlignment(t *testing.T) {
	e := NewEngine()
	e.Stats.Inc("x")

	// Attaching at cycle 0 puts the first boundary at one epoch.
	s := NewSeries("run", 100, "x")
	e.Attach(s)

	// Jump the clock past several boundaries in one event: one row per
	// boundary crossed, each on an absolute multiple of the epoch.
	e.At(350, func() { e.Stats.Add("x", 9) })
	e.Run()
	rows := s.Rows()
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3 (boundaries 100, 200, 300)", len(rows))
	}
	for i, want := range []Cycle{100, 200, 300} {
		if rows[i].EndCycle != want {
			t.Errorf("row %d at cycle %d, want %d", i, rows[i].EndCycle, want)
		}
		if rows[i].Values[0] != 1 {
			t.Errorf("row %d value %d, want 1 (sampled before the event ran)", i, rows[i].Values[0])
		}
	}

	// A series attached mid-run aligns to absolute epoch multiples, not
	// to its attach time: attached at 350, first boundary is 400.
	s2 := NewSeries("late", 100, "x")
	e.Attach(s2)
	e.At(450, func() {})
	e.Run()
	if rows := s2.Rows(); len(rows) != 1 || rows[0].EndCycle != 400 {
		t.Fatalf("late series rows = %+v, want one row at cycle 400", rows)
	}
}

func TestSeriesFinalPartialEpoch(t *testing.T) {
	e := NewEngine()
	s := NewSeries("run", 1000, "x")
	e.Attach(s)
	e.At(2500, func() { e.Stats.Add("x", 7) })
	e.Run()

	// CloseSeries flushes the partial epoch [2000, 2500) as a final row.
	e.CloseSeries(s)
	rows := s.Rows()
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3 (1000, 2000, partial 2500)", len(rows))
	}
	if rows[2].EndCycle != 2500 {
		t.Errorf("final row at cycle %d, want 2500", rows[2].EndCycle)
	}
	if rows[2].Values[0] != 7 {
		t.Errorf("final row value %d, want 7", rows[2].Values[0])
	}

	// Finish is idempotent and freezes the series.
	s.Finish(9999, &e.Stats)
	if len(s.Rows()) != 3 {
		t.Errorf("Finish after Finish added rows: %d", len(s.Rows()))
	}

	// A series closed exactly on a boundary gets no duplicate row.
	s2 := NewSeries("exact", 1000, "x")
	s2.advance(2000, &e.Stats)
	s2.Finish(2000, &e.Stats)
	if rows := s2.Rows(); len(rows) != 2 || rows[1].EndCycle != 2000 {
		t.Fatalf("boundary-aligned finish rows = %+v, want rows at 1000 and 2000", rows)
	}
}

func TestSeriesDefaults(t *testing.T) {
	s := NewSeries("d", 0, "a", "b")
	if s.Epoch() != DefaultEpoch {
		t.Errorf("Epoch() = %d, want DefaultEpoch %d", s.Epoch(), DefaultEpoch)
	}
	if got := s.Counters(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("Counters() = %v", got)
	}
	if s.Name() != "d" {
		t.Errorf("Name() = %q", s.Name())
	}
}
