package sim

import "fmt"

// Snapshot support for the engine and the statistics registry. A
// snapshot is only meaningful at a quiescence point — after Run() has
// drained the event queue — because pending continuations cannot be
// captured; both Save and Load enforce that.

// Clock is the engine's captured time state: the current cycle plus the
// event sequence counter (the same-cycle FIFO tie-break). Restoring
// both makes a forked engine schedule events in exactly the order the
// parent would have, so forked runs are bit-identical to cold runs.
type Clock struct {
	Now Cycle
	Seq uint64
}

// SaveClock captures the engine's clock. It panics if events are still
// pending: a snapshot mid-flight would silently drop continuations.
func (e *Engine) SaveClock() Clock {
	if e.pending != 0 {
		panic(fmt.Sprintf("sim: SaveClock with %d pending events", e.pending))
	}
	return Clock{Now: e.now, Seq: e.seq}
}

// LoadClock restores a captured clock onto a drained engine (typically
// a freshly constructed one). Series attached afterwards align their
// epochs against the restored cycle, exactly as they would on the
// original engine.
func (e *Engine) LoadClock(c Clock) {
	if e.pending != 0 {
		panic(fmt.Sprintf("sim: LoadClock with %d pending events", e.pending))
	}
	e.now = c.Now
	e.seq = c.Seq
	e.nextValid = false
}

// StatsSnapshot is an immutable capture of a Stats registry: counter
// values plus deep-copied histograms.
type StatsSnapshot struct {
	Counters map[string]uint64
	Hists    map[string]*Histogram
}

// Capture deep-copies the registry's current state.
func (s *Stats) Capture() *StatsSnapshot {
	snap := &StatsSnapshot{
		Counters: make(map[string]uint64, len(s.counters)),
		Hists:    make(map[string]*Histogram, len(s.hists)),
	}
	for name, p := range s.counters {
		snap.Counters[name] = *p
	}
	for name, h := range s.hists {
		c := *h
		snap.Hists[name] = &c
	}
	return snap
}

// Restore overwrites the registry with the captured state. Counter and
// histogram handles already held by components stay valid: restore
// writes through the existing storage instead of replacing it, creating
// entries only for names the registry has not seen yet. Counters and
// histograms present in the registry but absent from the snapshot are
// zeroed (they were implicitly zero when the snapshot was taken).
func (s *Stats) Restore(snap *StatsSnapshot) {
	for name, p := range s.counters {
		if _, ok := snap.Counters[name]; !ok {
			*p = 0
		}
	}
	for name, v := range snap.Counters {
		*s.Counter(name) = v
	}
	for name, h := range s.hists {
		if _, ok := snap.Hists[name]; !ok {
			h.Reset()
		}
	}
	for name, sh := range snap.Hists {
		h := s.Histogram(name)
		h.Reset()
		h.Merge(sh)
	}
}
