package arch

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGeometryConstants(t *testing.T) {
	if PageSize != 4096 {
		t.Errorf("PageSize = %d, want 4096", PageSize)
	}
	if LineSize != 64 {
		t.Errorf("LineSize = %d, want 64", LineSize)
	}
	if LinesPerPage != 64 {
		t.Errorf("LinesPerPage = %d, want 64", LinesPerPage)
	}
}

func TestVirtAddrDecomposition(t *testing.T) {
	tests := []struct {
		addr       VirtAddr
		page       VPN
		offset     uint64
		line       int
		lineOffset uint64
	}{
		{0, 0, 0, 0, 0},
		{0x1000, 1, 0, 0, 0},
		{0x1fff, 1, 0xfff, 63, 63},
		{0x12345, 0x12, 0x345, 13, 5},
		{0x7fffffffffff, 0x7ffffffff, 0xfff, 63, 63},
	}
	for _, tc := range tests {
		if got := tc.addr.Page(); got != tc.page {
			t.Errorf("%#x.Page() = %#x, want %#x", uint64(tc.addr), got, tc.page)
		}
		if got := tc.addr.Offset(); got != tc.offset {
			t.Errorf("%#x.Offset() = %#x, want %#x", uint64(tc.addr), got, tc.offset)
		}
		if got := tc.addr.Line(); got != tc.line {
			t.Errorf("%#x.Line() = %d, want %d", uint64(tc.addr), got, tc.line)
		}
		if got := tc.addr.LineOffset(); got != tc.lineOffset {
			t.Errorf("%#x.LineOffset() = %d, want %d", uint64(tc.addr), got, tc.lineOffset)
		}
	}
}

func TestCanonical(t *testing.T) {
	if !VirtAddr(0xffffffffffff).Canonical() {
		t.Error("48-bit address should be canonical")
	}
	if VirtAddr(1 << 48).Canonical() {
		t.Error("49-bit address should not be canonical")
	}
}

func TestOverlayPageRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		pid := PID(rng.Intn(1 << PIDBits))
		vpn := VPN(rng.Int63n(1 << (VirtBits - PageShift)))
		opn := OverlayPage(pid, vpn)
		gotPID, gotVPN := SplitOverlayPage(opn)
		if gotPID != pid || gotVPN != vpn {
			t.Fatalf("round trip (%d,%#x) -> %#x -> (%d,%#x)", pid, uint64(vpn), uint64(opn), gotPID, uint64(gotVPN))
		}
		if !opn.Addr(0).IsOverlay() {
			t.Fatalf("overlay address for opn %#x missing overlay bit", uint64(opn))
		}
	}
}

func TestOverlayPageUniqueness(t *testing.T) {
	// The framework's core constraint: no two (pid, vpn) pairs share an
	// overlay page (Section 4.1).
	seen := make(map[OPN]struct{})
	for pid := PID(0); pid < 8; pid++ {
		for vpn := VPN(0); vpn < 128; vpn++ {
			opn := OverlayPage(pid, vpn)
			if _, dup := seen[opn]; dup {
				t.Fatalf("duplicate OPN %#x for pid=%d vpn=%d", uint64(opn), pid, vpn)
			}
			seen[opn] = struct{}{}
		}
	}
}

func TestSplitOverlayPagePanicsOnRegularPage(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-overlay page number")
		}
	}()
	SplitOverlayPage(OPN(42))
}

func TestOverlayPageOfPanicsOnRegularAddress(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-overlay address")
		}
	}()
	OverlayPageOf(PhysAddr(0x1000))
}

func TestPhysAddrHelpers(t *testing.T) {
	p := PhysAddrOf(5, 0x345)
	if p != PhysAddr(0x5345) {
		t.Fatalf("PhysAddrOf = %#x, want 0x5345", uint64(p))
	}
	if p.Page() != 5 {
		t.Errorf("Page = %d, want 5", p.Page())
	}
	if p.Line() != 13 {
		t.Errorf("Line = %d, want 13", p.Line())
	}
	if p.LineAligned() != 0x5340 {
		t.Errorf("LineAligned = %#x, want 0x5340", uint64(p.LineAligned()))
	}
	if p.PageAligned() != 0x5000 {
		t.Errorf("PageAligned = %#x, want 0x5000", uint64(p.PageAligned()))
	}
	if p.IsOverlay() {
		t.Error("regular address reported as overlay")
	}
}

func TestOPNLineAddr(t *testing.T) {
	opn := OverlayPage(3, 17)
	a := opn.LineAddr(5)
	if !a.IsOverlay() {
		t.Fatal("overlay line address missing overlay bit")
	}
	if a.Line() != 5 {
		t.Errorf("Line = %d, want 5", a.Line())
	}
	if OverlayPageOf(a) != opn {
		t.Errorf("OverlayPageOf = %#x, want %#x", uint64(OverlayPageOf(a)), uint64(opn))
	}
}

func TestOBitVectorBasics(t *testing.T) {
	var b OBitVector
	if !b.Empty() || b.Count() != 0 {
		t.Fatal("zero vector should be empty")
	}
	b = b.Set(0).Set(63).Set(17)
	if !b.Has(0) || !b.Has(63) || !b.Has(17) || b.Has(16) {
		t.Fatalf("membership wrong: %s", b)
	}
	if b.Count() != 3 {
		t.Fatalf("Count = %d, want 3", b.Count())
	}
	b = b.Clear(17)
	if b.Has(17) || b.Count() != 2 {
		t.Fatalf("clear failed: %s", b)
	}
	if got := b.Lines(); len(got) != 2 || got[0] != 0 || got[1] != 63 {
		t.Fatalf("Lines = %v, want [0 63]", got)
	}
	if (^OBitVector(0)).Full() != true {
		t.Error("all-ones vector should be Full")
	}
	if d := OBitVector(0xff).Density(); d != 8.0/64.0 {
		t.Errorf("Density = %v, want 0.125", d)
	}
}

func TestOBitVectorRank(t *testing.T) {
	b := OBitVector(0).Set(2).Set(5).Set(9)
	tests := []struct{ line, want int }{{0, 0}, {2, 0}, {3, 1}, {5, 1}, {6, 2}, {9, 2}, {10, 3}, {63, 3}}
	for _, tc := range tests {
		if got := b.Rank(tc.line); got != tc.want {
			t.Errorf("Rank(%d) = %d, want %d", tc.line, got, tc.want)
		}
	}
}

func TestOBitVectorSetClearProperty(t *testing.T) {
	// Property: Set then Clear restores the original vector; Set is
	// idempotent; Count changes by exactly 0 or 1.
	f := func(v uint64, line uint8) bool {
		b := OBitVector(v)
		l := int(line % LinesPerPage)
		s := b.Set(l)
		if !s.Has(l) || s.Set(l) != s {
			return false
		}
		want := b.Count()
		if !b.Has(l) {
			want++
		}
		if s.Count() != want {
			return false
		}
		return s.Clear(l) == b.Clear(l)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOBitVectorRankCountProperty(t *testing.T) {
	// Property: Rank(64-ish top) equals Count; ranks are monotone.
	f := func(v uint64) bool {
		b := OBitVector(v)
		prev := 0
		for l := 0; l < LinesPerPage; l++ {
			r := b.Rank(l)
			if r < prev {
				return false
			}
			prev = r
		}
		last := LinesPerPage - 1
		wantTop := b.Count()
		if b.Has(last) {
			wantTop--
		}
		return b.Rank(last) == wantTop
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOBitVectorString(t *testing.T) {
	b := OBitVector(0).Set(0)
	s := b.String()
	if len(s) != 64 || s[63] != '1' || s[0] != '0' {
		t.Fatalf("String = %q", s)
	}
}
