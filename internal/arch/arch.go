// Package arch defines the address-space geometry shared by every other
// package in the simulator: page and cache-line sizes, virtual, physical
// and overlay address composition, and the OBitVector that records which
// cache lines of a virtual page live in its overlay.
//
// The layout follows Section 4.1 of the paper: the physical address space
// is widened by one bit; addresses with the overlay bit set form the
// Overlay Address Space, and the overlay page number for virtual page VPN
// of process PID is the direct (translation-free) concatenation
//
//	OPN = 1 | PID | VPN
package arch

import "fmt"

// Fundamental geometry. The paper evaluates a system with 4 KB pages and
// 64 B cache lines, giving 64 lines per page — exactly one line per bit of
// a 64-bit OBitVector.
const (
	PageShift = 12
	PageSize  = 1 << PageShift // 4096
	PageMask  = PageSize - 1

	LineShift = 6
	LineSize  = 1 << LineShift // 64
	LineMask  = LineSize - 1

	LinesPerPage = PageSize / LineSize // 64

	// VirtBits is the width of a per-process virtual address (x86-64
	// canonical). PIDBits processes are supported; with a 64-bit widened
	// physical address this matches the paper's 2^15 processes.
	VirtBits = 48
	PIDBits  = 15

	// OverlayBit is the MSB of the widened physical address space. A
	// physical address with this bit set belongs to the Overlay Address
	// Space and is not directly backed by main memory.
	OverlayBit = uint64(1) << 63

	// ColdBit tags an OMS segment handle as a cold (unswizzled) reference
	// to a segment evicted to the spill tier rather than a direct physical
	// base address. Direct handles are small DRAM addresses, so the tag can
	// never collide with a resident segment base; it is also distinct from
	// OverlayBit, so a cold reference is never mistaken for an overlay
	// address.
	ColdBit = uint64(1) << 62
)

// VirtAddr is a per-process virtual address.
type VirtAddr uint64

// PhysAddr is an address in the widened physical address space. Addresses
// with OverlayBit set are overlay addresses; the rest are regular physical
// addresses directly backed by main memory.
type PhysAddr uint64

// PID identifies a process (address-space ID).
type PID uint32

// VPN and PPN are virtual and physical page numbers.
type (
	VPN uint64
	PPN uint64
)

// OPN is an overlay page number: the page number of a page inside the
// Overlay Address Space (with the overlay bit folded in).
type OPN uint64

// Page returns the virtual page number of the address.
func (v VirtAddr) Page() VPN { return VPN(v >> PageShift) }

// Offset returns the byte offset of the address within its page.
func (v VirtAddr) Offset() uint64 { return uint64(v) & PageMask }

// Line returns the index (0..63) of the cache line the address falls in.
func (v VirtAddr) Line() int { return int(uint64(v)&PageMask) >> LineShift }

// LineOffset returns the byte offset within the cache line.
func (v VirtAddr) LineOffset() uint64 { return uint64(v) & LineMask }

// Canonical reports whether the address fits the supported virtual width.
func (v VirtAddr) Canonical() bool { return uint64(v)>>VirtBits == 0 }

// Addr reconstructs a virtual address from a page number and offset.
func (p VPN) Addr() VirtAddr { return VirtAddr(uint64(p) << PageShift) }

// Page returns the physical page number; the overlay bit, if any, is
// preserved in the page number so overlay and regular pages never collide.
func (p PhysAddr) Page() uint64 { return uint64(p) >> PageShift }

// IsOverlay reports whether the address lies in the Overlay Address Space.
func (p PhysAddr) IsOverlay() bool { return uint64(p)&OverlayBit != 0 }

// IsCold reports whether the value is a cold spill-tier reference to an
// evicted OMS segment rather than a direct (swizzled) segment base.
func (p PhysAddr) IsCold() bool { return uint64(p)&ColdBit != 0 }

// Line returns the cache-line index within the page.
func (p PhysAddr) Line() int { return int(uint64(p)&PageMask) >> LineShift }

// LineAligned returns the address rounded down to its cache line.
func (p PhysAddr) LineAligned() PhysAddr { return p &^ LineMask }

// PageAligned returns the address rounded down to its page.
func (p PhysAddr) PageAligned() PhysAddr { return p &^ PageMask }

// PhysAddrOf composes a regular physical address from a physical page
// number and an in-page offset.
func PhysAddrOf(ppn PPN, offset uint64) PhysAddr {
	return PhysAddr(uint64(ppn)<<PageShift | offset&PageMask)
}

// OverlayPage computes the overlay page number for (pid, vpn) per the
// direct mapping of Figure 5: overlay bit, then PID, then the virtual page
// number. Because no two virtual pages map to the same overlay page, the
// synonym problem cannot arise in the overlay space.
func OverlayPage(pid PID, vpn VPN) OPN {
	return OPN(OverlayBit>>PageShift | uint64(pid)<<(VirtBits-PageShift) | uint64(vpn))
}

// SplitOverlayPage recovers (pid, vpn) from an overlay page number. It is
// the inverse of OverlayPage and panics if opn is not an overlay page.
func SplitOverlayPage(opn OPN) (PID, VPN) {
	if uint64(opn)&(OverlayBit>>PageShift) == 0 {
		panic(fmt.Sprintf("arch: %#x is not an overlay page number", uint64(opn)))
	}
	vpnMask := uint64(1)<<(VirtBits-PageShift) - 1
	pid := PID(uint64(opn) >> (VirtBits - PageShift) & (1<<PIDBits - 1))
	return pid, VPN(uint64(opn) & vpnMask)
}

// Addr composes the overlay physical address of the given byte offset
// inside the overlay page.
func (o OPN) Addr(offset uint64) PhysAddr {
	return PhysAddr(uint64(o)<<PageShift | offset&PageMask)
}

// LineAddr composes the overlay physical address of cache line `line`.
func (o OPN) LineAddr(line int) PhysAddr {
	return o.Addr(uint64(line) << LineShift)
}

// OverlayPageOf extracts the OPN from an overlay physical address.
func OverlayPageOf(p PhysAddr) OPN {
	if !p.IsOverlay() {
		panic(fmt.Sprintf("arch: %#x is not an overlay address", uint64(p)))
	}
	return OPN(uint64(p) >> PageShift)
}
