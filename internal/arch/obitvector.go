package arch

import (
	"math/bits"
	"strings"
)

// OBitVector records, for one virtual page, which of its 64 cache lines
// are present in the page's overlay (bit i set ⇒ line i is in the
// overlay). It is cached in every TLB entry and in the memory controller's
// OMT cache (Section 3.1, Challenge 1).
type OBitVector uint64

// Has reports whether cache line `line` (0..63) is in the overlay.
func (b OBitVector) Has(line int) bool { return b>>uint(line)&1 != 0 }

// Set returns the vector with line's bit set.
func (b OBitVector) Set(line int) OBitVector { return b | 1<<uint(line) }

// Clear returns the vector with line's bit cleared.
func (b OBitVector) Clear(line int) OBitVector { return b &^ (1 << uint(line)) }

// Count returns the number of lines present in the overlay.
func (b OBitVector) Count() int { return bits.OnesCount64(uint64(b)) }

// Empty reports whether no line is in the overlay.
func (b OBitVector) Empty() bool { return b == 0 }

// Full reports whether every line of the page is in the overlay.
func (b OBitVector) Full() bool { return b == ^OBitVector(0) }

// Density returns the fraction of the page's lines held by the overlay.
func (b OBitVector) Density() float64 { return float64(b.Count()) / LinesPerPage }

// Lines returns the indices of set bits in ascending order.
func (b OBitVector) Lines() []int {
	out := make([]int, 0, b.Count())
	for v := uint64(b); v != 0; {
		i := bits.TrailingZeros64(v)
		out = append(out, i)
		v &^= 1 << uint(i)
	}
	return out
}

// Rank returns the number of set bits strictly below `line`. For a
// sequentially packed overlay this is the slot index of the line.
func (b OBitVector) Rank(line int) int {
	return bits.OnesCount64(uint64(b) & (1<<uint(line) - 1))
}

// String renders the vector MSB-first as 64 '0'/'1' characters, which
// keeps test failures readable.
func (b OBitVector) String() string {
	var sb strings.Builder
	sb.Grow(LinesPerPage)
	for i := LinesPerPage - 1; i >= 0; i-- {
		if b.Has(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}
