// Shared-store mode: many harness or server jobs drawing segments from
// one logical Overlay Memory Store through a lock-striped interface.
package oms

import "sync"

// Shared fronts a set of Store shards with one mutex per shard. Callers
// address the store by an opaque key (a tenant id, an overlay page
// number, a job handle); the key picks the stripe, so operations on
// different stripes proceed in parallel while operations that collide on
// a stripe serialise. Each shard owns its Store (and that Store's
// Memory) outright — no segment state is shared between stripes, which
// is what makes the striping sound without any cross-shard ordering.
type Shared struct {
	shards []sharedShard
}

type sharedShard struct {
	mu sync.Mutex
	st *Store
}

// NewShared builds a lock-striped front over the given shards. The
// stores must not be touched directly once handed over.
func NewShared(stores []*Store) *Shared {
	if len(stores) == 0 {
		panic("oms: NewShared with no shards")
	}
	sh := &Shared{shards: make([]sharedShard, len(stores))}
	for i, st := range stores {
		sh.shards[i].st = st
	}
	return sh
}

// Shards returns the stripe count.
func (sh *Shared) Shards() int { return len(sh.shards) }

// With runs fn against the shard the key stripes to, holding that
// shard's lock for the duration. fn must not retain the *Store.
func (sh *Shared) With(key uint64, fn func(*Store)) {
	s := &sh.shards[key%uint64(len(sh.shards))]
	s.mu.Lock()
	defer s.mu.Unlock()
	fn(s.st)
}
