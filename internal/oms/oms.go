// Package oms implements the Overlay Memory Store of §4.4: the region of
// main memory where overlays are stored compactly. Overlays live in
// segments of five fixed sizes (256 B – 4 KB). Every sub-4 KB segment
// begins with a metadata cache line holding 64 five-bit slot pointers and
// a 32-bit free-slot vector (Figure 7); a 4 KB segment stores each line at
// its natural page offset and needs no metadata. Free segments are kept on
// per-size free lists; when a size class runs dry the store splits a
// segment of the next size up, and when it runs out of 4 KB segments it
// asks the OS for more frames.
//
// The allocator is organised like a buffer manager (LeanStore/Umbra
// style) rather than a map-backed bookkeeper: every frame the OS grants
// gets a dense slot, segments are identified by their 256 B unit index
// within the slot table, and the per-class free lists are intrusive
// doubly-linked lists threaded through that table. Alloc, Free, class
// lookup and line resolution are therefore O(1) array operations with
// zero heap allocations — no maps anywhere on the hot path.
//
// When a frame capacity is configured (SetCapacity), the store also runs
// a cooling-FIFO second-chance eviction queue over its live segments and
// a spill tier — a modeled slow store with its own latency accounting —
// so the live overlay working set can exceed the frames the store is
// allowed to hold in modeled DRAM. Reference holders keep pointer-
// swizzled handles: a resident segment is referenced by its physical
// base address, a spilled one by a cold reference (arch.ColdBit) that
// Resolve turns back into a direct handle by refilling the segment.
//
// Segment metadata is stored functionally in main memory (the metadata
// line really occupies the segment's first 64 bytes), exactly where the
// OMT cache expects to find and cache it.
package oms

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/mem"
	"repro/internal/sim"
)

// NumClasses is the number of segment size classes.
const NumClasses = 5

// Unit geometry: the allocator tracks frames at the granularity of the
// smallest segment class (256 B), sixteen units per 4 KB frame.
const (
	unitShift     = 8
	unitBytes     = 1 << unitShift
	unitsPerFrame = arch.PageSize / unitBytes
)

// Default spill-tier latency model: a refill pays a fixed slow-store
// access penalty plus a per-line transfer cost.
const (
	DefaultSpillLatency     sim.Cycle = 2000
	DefaultSpillLineLatency sim.Cycle = 40
)

// ClassBytes returns the byte size of a segment of the given class
// (class 0 = 256 B … class 4 = 4 KB).
func ClassBytes(class int) int { return 256 << uint(class) }

// ClassLines returns the number of cache lines a segment spans.
func ClassLines(class int) int { return ClassBytes(class) / arch.LineSize }

// ClassSlots returns how many overlay cache lines a segment can hold; all
// classes but the largest sacrifice one line to metadata.
func ClassSlots(class int) int {
	if class == NumClasses-1 {
		return arch.LinesPerPage
	}
	return ClassLines(class) - 1
}

// ClassFor returns the smallest class able to hold n overlay lines.
func ClassFor(n int) int {
	for c := 0; c < NumClasses; c++ {
		if ClassSlots(c) >= n {
			return c
		}
	}
	panic(fmt.Sprintf("oms: no segment class holds %d lines", n))
}

// unit is one 256 B unit of a store-owned frame: free-list links, cooling-
// queue links, and the segment classes based at this unit. liveClass and
// freeClass are -1 unless a live/free segment starts exactly here, so a
// class lookup is a single array load.
type unit struct {
	next, prev         int32 // intrusive free-list links (freeClass >= 0)
	coolNext, coolPrev int32 // cooling-queue links (inCool)
	owner              uint64
	liveClass          int8
	freeClass          int8
	inCool             bool
	refBit             bool
}

// spillRec is one segment parked in the spill tier.
type spillRec struct {
	data  []byte
	owner uint64
	class int8 // -1 when the record is free
}

// Store is the Overlay Memory Store manager. It is owned by the memory
// controller and touched only on cache-hierarchy misses and dirty
// write-backs (§3.3), never on the critical path of cache hits.
type Store struct {
	memory *mem.Memory
	stats  *sim.Stats
	trace  *sim.TraceLog    // nil = tracing disabled
	now    func() sim.Cycle // clock for trace timestamps

	// Flat pooled allocation state. frameSlot maps a PPN to its dense
	// slot (+1; 0 = frame not owned by the store), frames is the inverse
	// in grant order, and units carries all per-unit bookkeeping.
	frameSlot []int32
	frames    []arch.PPN
	units     []unit

	freeHead [NumClasses]int32
	freeTail [NumClasses]int32

	owned    int // frames handed to the store by the OS
	inUse    int // bytes of resident live segments
	liveSegs int

	// Cooling/eviction/spill state; dormant unless SetCapacity was called
	// with a positive frame budget (capacity 0 = unlimited, the paper's
	// original behaviour, bit-identical to the pre-buffer-manager store).
	capacity     int
	spill        bool
	spillLat     sim.Cycle
	spillLineLat sim.Cycle

	coolHead, coolTail int32
	coolLen            int
	pinned             int32 // unit pinned against eviction (mid-migration)
	evictHook          func(owner uint64, cold arch.PhysAddr)

	spillRecs    []spillRec
	spillFree    []int32
	spilledBytes int
	spilledSegs  int

	zeroLine [arch.LineSize]byte
	sink     uint64 // counter target when stats == nil

	// Counter handles. The legacy counters bind lazily at their historic
	// first-use points so the registered metric set of a run is unchanged;
	// the capacity-mode counters bind eagerly in SetCapacity so they are
	// exported (as zeros) whenever the eviction machinery is armed.
	cFramesGranted *uint64
	cAllocs        *uint64
	cSplits        *uint64
	cCoalesces     *uint64
	cFrees         *uint64
	cMigrations    *uint64

	cEvictions     *uint64
	cSpills        *uint64
	cRefills       *uint64
	cSecondChance  *uint64
	cOverruns      *uint64
	cResidentBytes *uint64
	cSpilledBytes  *uint64
	cSpillPenalty  *uint64
}

// New creates a store drawing frames from memory. The OS proactively
// hands the controller initialFrames 4 KB pages at startup (§4.4.3).
func New(memory *mem.Memory, stats *sim.Stats, initialFrames int) (*Store, error) {
	s := &Store{
		memory:    memory,
		stats:     stats,
		frameSlot: make([]int32, memory.TotalPages()),
		pinned:    -1,
		coolHead:  -1,
		coolTail:  -1,
	}
	for c := range s.freeHead {
		s.freeHead[c], s.freeTail[c] = -1, -1
	}
	if err := s.addFrames(initialFrames); err != nil {
		return nil, err
	}
	return s, nil
}

// counter binds a registry counter, or a local sink when stats are absent.
func (s *Store) counter(name string) *uint64 {
	if s.stats == nil {
		return &s.sink
	}
	return s.stats.Counter(name)
}

// AttachTrace wires the store to an event trace; `now` supplies the
// timestamp for emitted events (segment alloc/free/spill/refill). The
// store has no engine reference of its own, so the owner passes the clock
// in.
func (s *Store) AttachTrace(t *sim.TraceLog, now func() sim.Cycle) {
	s.trace = t
	s.now = now
}

// emitSegEvent is the single nil-guarded choke point for segment trace
// events: when tracing is disabled the call costs one branch and builds
// nothing — no TraceArg slice, no closure.
func (s *Store) emitSegEvent(name string, base arch.PhysAddr, class int) {
	if s.trace == nil {
		return
	}
	s.trace.Emit(s.now(), "oms", name,
		sim.TraceArg{Key: "base", Val: uint64(base)},
		sim.TraceArg{Key: "class", Val: uint64(class)},
		sim.TraceArg{Key: "bytes", Val: uint64(ClassBytes(class))})
}

// SetCapacity arms the cooling/eviction machinery: the store may own at
// most `frames` 4 KB frames; once the budget is reached, allocations that
// would otherwise grow the store evict cooling segments instead. With
// spill=true evicted segments move to the spill tier and stay live behind
// cold references; with spill=false the capacity only caps the growth
// doubling (nothing can be evicted, so the budget is a soft target).
// frames <= 0 disables the machinery — the store behaves exactly like the
// unlimited original. Configure before the first allocation.
func (s *Store) SetCapacity(frames int, spill bool) {
	if frames <= 0 {
		s.capacity, s.spill = 0, false
		return
	}
	s.capacity = frames
	s.spill = spill
	if s.spillLat == 0 {
		s.spillLat, s.spillLineLat = DefaultSpillLatency, DefaultSpillLineLatency
	}
	s.bindCapacityCounters()
	s.syncGauges()
}

// SetSpillLatency overrides the modeled slow-store cost of a refill: a
// fixed penalty plus a per-line transfer cost.
func (s *Store) SetSpillLatency(fixed, perLine sim.Cycle) {
	s.spillLat, s.spillLineLat = fixed, perLine
}

// SetEvictHook registers the unswizzle callback: when a segment is
// spilled, the hook receives the owner token (see SetOwner) and the cold
// reference the owner must store in place of its direct handle.
func (s *Store) SetEvictHook(fn func(owner uint64, cold arch.PhysAddr)) { s.evictHook = fn }

// SetOwner associates a live resident segment with the opaque token of
// its reference holder (the overlay page number for OMT-held segments, a
// harness handle otherwise). Only owned segments are eligible for
// eviction — the spill path must be able to unswizzle the owner's
// reference through the evict hook. A no-op when no capacity is set.
func (s *Store) SetOwner(base arch.PhysAddr, owner uint64) {
	if s.capacity == 0 {
		return
	}
	u := s.unitOf(base)
	if u < 0 || s.units[u].liveClass < 0 {
		panic(fmt.Sprintf("oms: SetOwner on dead segment %#x", uint64(base)))
	}
	s.units[u].owner = owner
}

func (s *Store) bindCapacityCounters() {
	if s.cEvictions != nil {
		return
	}
	s.cEvictions = s.counter("oms.evictions")
	s.cSpills = s.counter("oms.spills")
	s.cRefills = s.counter("oms.refills")
	s.cSecondChance = s.counter("oms.second_chances")
	s.cOverruns = s.counter("oms.capacity_overruns")
	s.cResidentBytes = s.counter("oms.resident_bytes")
	s.cSpilledBytes = s.counter("oms.spilled_bytes")
	s.cSpillPenalty = s.counter("oms.spill_penalty_cycles")
}

// syncGauges publishes the residency gauges (capacity mode only).
func (s *Store) syncGauges() {
	if s.cResidentBytes != nil {
		*s.cResidentBytes = uint64(s.inUse)
		*s.cSpilledBytes = uint64(s.spilledBytes)
	}
}

// ---- Frame and unit addressing ----

// unitOf maps an address inside a store-owned frame to its unit index,
// or -1 when the frame is not owned by the store.
func (s *Store) unitOf(addr arch.PhysAddr) int32 {
	page := addr.Page()
	if page >= uint64(len(s.frameSlot)) {
		return -1
	}
	slot := s.frameSlot[page]
	if slot == 0 {
		return -1
	}
	return (slot-1)*unitsPerFrame + int32((uint64(addr)&arch.PageMask)>>unitShift)
}

// baseOf is the inverse of unitOf for segment bases.
func (s *Store) baseOf(u int32) arch.PhysAddr {
	return arch.PhysAddrOf(s.frames[u/unitsPerFrame], uint64(u%unitsPerFrame)<<unitShift)
}

func (s *Store) addFrames(n int) error {
	for i := 0; i < n; i++ {
		ppn, err := s.memory.Alloc()
		if err != nil {
			return fmt.Errorf("oms: growing store: %w", err)
		}
		slot := int32(len(s.frames))
		s.frames = append(s.frames, ppn)
		s.frameSlot[ppn] = slot + 1
		for j := 0; j < unitsPerFrame; j++ {
			s.units = append(s.units, unit{
				next: -1, prev: -1, coolNext: -1, coolPrev: -1,
				liveClass: -1, freeClass: -1,
			})
		}
		s.pushFree(slot*unitsPerFrame, NumClasses-1)
		s.owned++
	}
	if s.stats != nil {
		if s.cFramesGranted == nil {
			s.cFramesGranted = s.counter("oms.frames_granted")
		}
		*s.cFramesGranted += uint64(n)
	}
	return nil
}

// ---- Intrusive per-class free lists (tail push, tail pop) ----
//
// The list order reproduces the original slice free lists exactly:
// pushFree appends at the tail, allocation pops the tail, and buddy
// coalescing unlinks from the middle preserving relative order — so the
// sequence of addresses the allocator hands out is bit-identical to the
// map/slice implementation this replaced (order is timing-relevant).

func (s *Store) pushFree(u int32, class int) {
	un := &s.units[u]
	un.freeClass = int8(class)
	un.next = -1
	un.prev = s.freeTail[class]
	if un.prev >= 0 {
		s.units[un.prev].next = u
	} else {
		s.freeHead[class] = u
	}
	s.freeTail[class] = u
}

func (s *Store) unlinkFree(u int32, class int) {
	un := &s.units[u]
	if un.freeClass != int8(class) {
		panic(fmt.Sprintf("oms: free segment %#x missing from class %d list",
			uint64(s.baseOf(u)), class))
	}
	if un.prev >= 0 {
		s.units[un.prev].next = un.next
	} else {
		s.freeHead[class] = un.next
	}
	if un.next >= 0 {
		s.units[un.next].prev = un.prev
	} else {
		s.freeTail[class] = un.prev
	}
	un.next, un.prev = -1, -1
	un.freeClass = -1
}

func (s *Store) popFree(class int) int32 {
	u := s.freeTail[class]
	s.unlinkFree(u, class)
	return u
}

// ---- Cooling FIFO (second-chance clock over live segments) ----

func (s *Store) coolEnqueue(u int32) {
	un := &s.units[u]
	un.inCool = true
	un.coolNext = -1
	un.coolPrev = s.coolTail
	if un.coolPrev >= 0 {
		s.units[un.coolPrev].coolNext = u
	} else {
		s.coolHead = u
	}
	s.coolTail = u
	s.coolLen++
}

func (s *Store) coolDequeue(u int32) {
	un := &s.units[u]
	if !un.inCool {
		return
	}
	if un.coolPrev >= 0 {
		s.units[un.coolPrev].coolNext = un.coolNext
	} else {
		s.coolHead = un.coolNext
	}
	if un.coolNext >= 0 {
		s.units[un.coolNext].coolPrev = un.coolPrev
	} else {
		s.coolTail = un.coolPrev
	}
	un.coolNext, un.coolPrev = -1, -1
	un.inCool = false
	s.coolLen--
}

// coolRotate moves the queue head to the tail (second chance / skip).
func (s *Store) coolRotate(u int32) {
	if s.coolHead == s.coolTail {
		return
	}
	s.coolDequeue(u)
	s.coolEnqueue(u)
}

// touch marks a segment referenced for the second-chance sweep.
func (s *Store) touch(u int32) {
	if s.capacity != 0 {
		s.units[u].refBit = true
	}
}

// BytesInUse returns the bytes occupied by live segments — resident and
// spilled, metadata lines and internal slack included (this is the
// store's true footprint).
func (s *Store) BytesInUse() int { return s.inUse + s.spilledBytes }

// ResidentBytes returns the bytes of live segments resident in modeled
// DRAM (excluding the spill tier).
func (s *Store) ResidentBytes() int { return s.inUse }

// SpilledBytes returns the bytes of live segments parked in the spill tier.
func (s *Store) SpilledBytes() int { return s.spilledBytes }

// FramesOwned returns the number of 4 KB frames the OS has granted.
func (s *Store) FramesOwned() int { return s.owned }

// LiveSegments returns the number of allocated resident segments.
func (s *Store) LiveSegments() int { return s.liveSegs }

// SpilledSegments returns the number of live segments in the spill tier.
func (s *Store) SpilledSegments() int { return s.spilledSegs }

// CapacityFrames returns the configured frame budget (0 = unlimited).
func (s *Store) CapacityFrames() int { return s.capacity }

// AllocSegment carves out a free segment of the class, splitting larger
// segments, evicting cooling segments at capacity, or requesting OS
// frames as needed.
func (s *Store) AllocSegment(class int) (arch.PhysAddr, error) {
	if class < 0 || class >= NumClasses {
		panic(fmt.Sprintf("oms: bad class %d", class))
	}
	if err := s.refill(class); err != nil {
		return 0, err
	}
	u := s.popFree(class)
	un := &s.units[u]
	un.liveClass = int8(class)
	un.owner = 0
	s.liveSegs++
	s.inUse += ClassBytes(class)
	base := s.baseOf(u)
	if s.cAllocs == nil {
		s.cAllocs = s.counter("oms.segment_allocs")
	}
	*s.cAllocs++
	s.emitSegEvent("segment-alloc", base, class)
	if s.capacity != 0 {
		un.refBit = true
		s.coolEnqueue(u)
		s.syncGauges()
	}
	if class < NumClasses-1 {
		s.initMetadata(base, class)
	}
	return base, nil
}

// refill guarantees the class's free list is non-empty.
func (s *Store) refill(class int) error {
	if s.freeTail[class] >= 0 {
		return nil
	}
	if class == NumClasses-1 {
		return s.growTop()
	}
	if err := s.refill(class + 1); err != nil {
		return err
	}
	big := s.popFree(class + 1)
	s.pushFree(big, class)
	s.pushFree(big+(1<<class), class) // buddy: ClassBytes(class) bytes above
	if s.cSplits == nil {
		s.cSplits = s.counter("oms.segment_splits")
	}
	*s.cSplits++
	return nil
}

// growTop supplies a fresh top-class segment: within the frame budget the
// store doubles (floor of one frame, clamped to the budget); at the
// budget it evicts cooling segments to the spill tier instead, and only
// grows past the budget as a last resort when nothing is evictable.
func (s *Store) growTop() error {
	if s.capacity > 0 && s.owned >= s.capacity {
		if s.evictForSpace() {
			return nil
		}
		*s.cOverruns++
		return s.addFrames(1)
	}
	grow := s.owned
	if grow == 0 {
		grow = 1
	}
	if s.capacity > 0 && s.owned+grow > s.capacity {
		grow = s.capacity - s.owned
	}
	return s.addFrames(grow)
}

// evictForSpace runs the cooling clock until a top-class free segment
// exists: the queue head is spilled unless its reference bit grants a
// second chance; pinned and unowned segments rotate untouched. Reports
// whether a 4 KB segment was freed.
func (s *Store) evictForSpace() bool {
	if !s.spill || s.evictHook == nil {
		return false
	}
	for budget := 2*s.coolLen + 2; budget > 0 && s.coolHead >= 0; budget-- {
		u := s.coolHead
		un := &s.units[u]
		if u == s.pinned || un.owner == 0 {
			s.coolRotate(u)
			continue
		}
		if un.refBit {
			un.refBit = false
			s.coolRotate(u)
			*s.cSecondChance++
			continue
		}
		s.spillSegment(u)
		if s.freeTail[NumClasses-1] >= 0 {
			return true
		}
	}
	return s.freeTail[NumClasses-1] >= 0
}

// coldRef encodes a spill-tier reference: the cold tag, the record id and
// the segment class.
func coldRef(id int32, class int) arch.PhysAddr {
	return arch.PhysAddr(arch.ColdBit) | arch.PhysAddr(id)<<3 | arch.PhysAddr(class)
}

func decodeCold(ref arch.PhysAddr) (id int32, class int) {
	return int32((uint64(ref) &^ arch.ColdBit) >> 3), int(uint64(ref) & 7)
}

// spillSegment moves a live resident segment to the spill tier: its bytes
// (metadata line included — slot pointers are base-relative, so the image
// is position-independent) are copied out, its frames' units return to
// the free lists with buddy coalescing, and the owner's reference is
// unswizzled to a cold reference through the evict hook.
func (s *Store) spillSegment(u int32) {
	un := &s.units[u]
	class := int(un.liveClass)
	owner := un.owner
	base := s.baseOf(u)

	var id int32
	if n := len(s.spillFree); n > 0 {
		id = s.spillFree[n-1]
		s.spillFree = s.spillFree[:n-1]
	} else {
		id = int32(len(s.spillRecs))
		s.spillRecs = append(s.spillRecs, spillRec{class: -1})
	}
	rec := &s.spillRecs[id]
	n := ClassBytes(class)
	if cap(rec.data) < n {
		rec.data = make([]byte, n)
	} else {
		rec.data = rec.data[:n]
	}
	s.memory.ReadSpan(arch.PPN(base.Page()), uint64(base)&arch.PageMask, rec.data)
	rec.owner, rec.class = owner, int8(class)

	s.emitSegEvent("segment-spill", base, class)
	s.coolDequeue(u)
	s.releaseSegment(u, class)
	s.spilledBytes += n
	s.spilledSegs++
	*s.cEvictions++
	*s.cSpills++
	s.syncGauges()
	s.evictHook(owner, coldRef(id, class))
}

// Resolve swizzles a segment reference. A resident handle is returned
// unchanged (touching the segment's reference bit); a cold reference
// triggers a refill — a fresh segment is allocated (possibly evicting
// others), the spilled image is copied back, and the caller must store
// the returned direct handle in place of the cold one. The returned
// penalty is the modeled slow-store latency of the refill (0 when the
// handle was already resident).
func (s *Store) Resolve(ref arch.PhysAddr) (arch.PhysAddr, sim.Cycle, error) {
	if !ref.IsCold() {
		if u := s.unitOf(ref); u >= 0 && s.units[u].liveClass >= 0 {
			s.touch(u)
		}
		return ref, 0, nil
	}
	id, class := decodeCold(ref)
	if int(id) >= len(s.spillRecs) || s.spillRecs[id].class != int8(class) {
		return 0, 0, fmt.Errorf("oms: resolve of unknown cold reference %#x", uint64(ref))
	}
	base, err := s.AllocSegment(class)
	if err != nil {
		return 0, 0, err
	}
	rec := &s.spillRecs[id]
	s.memory.WriteSpan(arch.PPN(base.Page()), uint64(base)&arch.PageMask, rec.data)
	if rec.owner != 0 {
		s.SetOwner(base, rec.owner)
	}
	s.spilledBytes -= len(rec.data)
	s.spilledSegs--
	rec.class, rec.owner = -1, 0
	rec.data = rec.data[:0]
	s.spillFree = append(s.spillFree, id)
	penalty := s.spillLat + s.spillLineLat*sim.Cycle(ClassLines(class))
	*s.cRefills++
	*s.cSpillPenalty += uint64(penalty)
	s.emitSegEvent("segment-refill", base, class)
	s.syncGauges()
	return base, penalty, nil
}

// FreeSegment returns a segment to its class free list, coalescing with
// its buddy (the equal-sized neighbour within the parent segment) into
// larger segments whenever both halves are free — the store's defence
// against long-run fragmentation. Cold references free the spill-tier
// record instead.
func (s *Store) FreeSegment(base arch.PhysAddr) {
	if base.IsCold() {
		s.dropSpilled(base)
		return
	}
	u := s.unitOf(base)
	if u < 0 || s.units[u].liveClass < 0 {
		panic(fmt.Sprintf("oms: freeing unknown segment %#x", uint64(base)))
	}
	class := int(s.units[u].liveClass)
	s.emitSegEvent("segment-free", base, class)
	if s.capacity != 0 {
		s.coolDequeue(u)
	}
	s.releaseSegment(u, class)
	if s.cFrees == nil {
		s.cFrees = s.counter("oms.segment_frees")
	}
	*s.cFrees++
	if s.capacity != 0 {
		s.syncGauges()
	}
}

// releaseSegment returns a live segment's units to the free lists with
// buddy coalescing. Shared by FreeSegment and the spill path.
func (s *Store) releaseSegment(u int32, class int) {
	un := &s.units[u]
	un.liveClass = -1
	un.owner = 0
	un.refBit = false
	s.liveSegs--
	s.inUse -= ClassBytes(class)
	for class < NumClasses-1 {
		buddy := u ^ (1 << class)
		if s.units[buddy].freeClass != int8(class) {
			break
		}
		s.unlinkFree(buddy, class)
		if buddy < u {
			u = buddy
		}
		class++
		if s.cCoalesces == nil {
			s.cCoalesces = s.counter("oms.segment_coalesces")
		}
		*s.cCoalesces++
	}
	s.pushFree(u, class)
}

// dropSpilled frees a spill-tier segment through its cold reference.
func (s *Store) dropSpilled(ref arch.PhysAddr) {
	id, class := decodeCold(ref)
	if int(id) >= len(s.spillRecs) || s.spillRecs[id].class != int8(class) {
		panic(fmt.Sprintf("oms: freeing unknown cold reference %#x", uint64(ref)))
	}
	rec := &s.spillRecs[id]
	s.spilledBytes -= len(rec.data)
	s.spilledSegs--
	rec.class, rec.owner = -1, 0
	rec.data = rec.data[:0]
	s.spillFree = append(s.spillFree, id)
	if s.cFrees == nil {
		s.cFrees = s.counter("oms.segment_frees")
	}
	*s.cFrees++
	s.syncGauges()
}

// SegmentClass returns the class of a live segment — resident (by base
// address) or spilled (by cold reference).
func (s *Store) SegmentClass(base arch.PhysAddr) (int, bool) {
	if base.IsCold() {
		id, class := decodeCold(base)
		if int(id) < len(s.spillRecs) && s.spillRecs[id].class == int8(class) {
			return class, true
		}
		return 0, false
	}
	if uint64(base)&(unitBytes-1) != 0 {
		return 0, false
	}
	u := s.unitOf(base)
	if u < 0 {
		return 0, false
	}
	if c := s.units[u].liveClass; c >= 0 {
		return int(c), true
	}
	return 0, false
}

// ---- Segment metadata (Figure 7) ----
//
// Byte layout of the metadata line (first 64 B of sub-4 KB segments):
//   bytes 0..39  : 64 slot pointers, 5 bits each, little-endian bit order.
//                  Pointer value 0 = line not present; k = data in slot k.
//   bytes 40..43 : 32-bit free-slot vector; bit (k-1) set = slot k free.

func (s *Store) metaPPN(base arch.PhysAddr) (arch.PPN, uint64) {
	return arch.PPN(base.Page()), uint64(base) & arch.PageMask
}

func (s *Store) readMetaBits(base arch.PhysAddr, bitOff, width uint) uint32 {
	ppn, off := s.metaPPN(base)
	var v uint32
	for i := uint(0); i < width; i++ {
		bit := bitOff + i
		b := s.memory.Read(ppn, off+uint64(bit/8))
		v |= uint32(b>>(bit%8)&1) << i
	}
	return v
}

func (s *Store) writeMetaBits(base arch.PhysAddr, bitOff, width uint, v uint32) {
	ppn, off := s.metaPPN(base)
	for i := uint(0); i < width; i++ {
		bit := bitOff + i
		byteOff := off + uint64(bit/8)
		b := s.memory.Read(ppn, byteOff)
		if v>>i&1 != 0 {
			b |= 1 << (bit % 8)
		} else {
			b &^= 1 << (bit % 8)
		}
		s.memory.Write(ppn, byteOff, b)
	}
}

func (s *Store) slotPointer(base arch.PhysAddr, line int) int {
	return int(s.readMetaBits(base, uint(line)*5, 5))
}

func (s *Store) setSlotPointer(base arch.PhysAddr, line, slot int) {
	s.writeMetaBits(base, uint(line)*5, 5, uint32(slot))
}

func (s *Store) freeVector(base arch.PhysAddr) uint32 {
	return s.readMetaBits(base, 320, 32)
}

func (s *Store) setFreeVector(base arch.PhysAddr, v uint32) {
	s.writeMetaBits(base, 320, 32, v)
}

// initMetadata marks every data slot free and all pointers invalid.
func (s *Store) initMetadata(base arch.PhysAddr, class int) {
	ppn, off := s.metaPPN(base)
	s.memory.WriteSpan(ppn, off, s.zeroLine[:])
	s.setFreeVector(base, uint32(1)<<uint(ClassSlots(class))-1)
}

// liveClassOf returns the class of the live segment at base, panicking
// with the caller's context on a dead segment.
func (s *Store) liveClassOf(base arch.PhysAddr, op string) int {
	u := s.unitOf(base)
	if u < 0 || s.units[u].liveClass < 0 {
		panic(fmt.Sprintf("oms: %s on dead segment %#x", op, uint64(base)))
	}
	s.touch(u)
	return int(s.units[u].liveClass)
}

// LocateLine returns the main-memory address of the overlay cache line
// for page line `line`, or ok=false if the segment does not hold it.
func (s *Store) LocateLine(base arch.PhysAddr, line int) (arch.PhysAddr, bool) {
	class := s.liveClassOf(base, "LocateLine")
	if class == NumClasses-1 {
		return base + arch.PhysAddr(line*arch.LineSize), true
	}
	slot := s.slotPointer(base, line)
	if slot == 0 {
		return 0, false
	}
	return base + arch.PhysAddr(slot*arch.LineSize), true
}

// InsertLine claims a slot for page line `line` and returns its address.
// full=true means the segment has no free slot (the caller must migrate).
// Inserting an already-present line returns its existing slot.
func (s *Store) InsertLine(base arch.PhysAddr, line int) (addr arch.PhysAddr, full bool) {
	class := s.liveClassOf(base, "InsertLine")
	if class == NumClasses-1 {
		return base + arch.PhysAddr(line*arch.LineSize), false
	}
	if slot := s.slotPointer(base, line); slot != 0 {
		return base + arch.PhysAddr(slot*arch.LineSize), false
	}
	fv := s.freeVector(base)
	if fv == 0 {
		return 0, true
	}
	slot := 1
	for fv&1 == 0 {
		fv >>= 1
		slot++
	}
	s.setFreeVector(base, s.freeVector(base)&^(1<<uint(slot-1)))
	s.setSlotPointer(base, line, slot)
	return base + arch.PhysAddr(slot*arch.LineSize), false
}

// RemoveLine releases the slot held by page line `line` (no-op if absent).
func (s *Store) RemoveLine(base arch.PhysAddr, line int) {
	class := s.liveClassOf(base, "RemoveLine")
	if class == NumClasses-1 {
		return
	}
	slot := s.slotPointer(base, line)
	if slot == 0 {
		return
	}
	s.setSlotPointer(base, line, 0)
	s.setFreeVector(base, s.freeVector(base)|1<<uint(slot-1))
}

// Migrate moves an overlay into a segment of the next size up, copying
// every present line (per obits) and freeing the old segment. The source
// is pinned against eviction for the duration; the new segment inherits
// the owner. It returns the new base.
func (s *Store) Migrate(base arch.PhysAddr, obits arch.OBitVector) (arch.PhysAddr, error) {
	srcUnit := s.unitOf(base)
	if srcUnit < 0 || s.units[srcUnit].liveClass < 0 {
		panic(fmt.Sprintf("oms: Migrate on dead segment %#x", uint64(base)))
	}
	oldClass := int(s.units[srcUnit].liveClass)
	if oldClass >= NumClasses-1 {
		panic("oms: migrating a 4KB segment")
	}
	owner := s.units[srcUnit].owner
	prevPin := s.pinned
	s.pinned = srcUnit
	newBase, err := s.AllocSegment(oldClass + 1)
	s.pinned = prevPin
	if err != nil {
		return 0, err
	}
	for _, line := range obits.Lines() {
		src, ok := s.LocateLine(base, line)
		if !ok {
			continue // line tracked in OBitVector but not yet written back
		}
		dst, full := s.InsertLine(newBase, line)
		if full {
			panic("oms: migration target full")
		}
		s.copyLine(dst, src)
	}
	s.FreeSegment(base)
	if owner != 0 {
		s.SetOwner(newBase, owner)
	}
	if s.cMigrations == nil {
		s.cMigrations = s.counter("oms.migrations")
	}
	*s.cMigrations++
	return newBase, nil
}

func (s *Store) copyLine(dst, src arch.PhysAddr) {
	s.memory.CopySpan(
		arch.PPN(dst.Page()), uint64(dst)&arch.PageMask,
		arch.PPN(src.Page()), uint64(src)&arch.PageMask,
		arch.LineSize)
}

// ReadLineData copies the 64 data bytes at addr into dst.
func (s *Store) ReadLineData(addr arch.PhysAddr, dst []byte) {
	ppn, off := s.metaPPN(addr)
	s.memory.ReadSpan(ppn, off, dst[:arch.LineSize])
}

// WriteLineData stores 64 bytes at addr.
func (s *Store) WriteLineData(addr arch.PhysAddr, src []byte) {
	ppn, off := s.metaPPN(addr)
	s.memory.WriteSpan(ppn, off, src[:arch.LineSize])
}

// FreeSlots returns how many more lines the segment can accept.
func (s *Store) FreeSlots(base arch.PhysAddr) int {
	class := s.liveClassOf(base, "FreeSlots")
	if class == NumClasses-1 {
		return arch.LinesPerPage // offsets are never contended
	}
	fv := s.freeVector(base)
	n := 0
	for fv != 0 {
		n += int(fv & 1)
		fv >>= 1
	}
	return n
}
