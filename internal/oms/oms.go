// Package oms implements the Overlay Memory Store of §4.4: the region of
// main memory where overlays are stored compactly. Overlays live in
// segments of five fixed sizes (256 B – 4 KB). Every sub-4 KB segment
// begins with a metadata cache line holding 64 five-bit slot pointers and
// a 32-bit free-slot vector (Figure 7); a 4 KB segment stores each line at
// its natural page offset and needs no metadata. Free segments are kept on
// per-size grouped free lists; when a size class runs dry the store splits
// a segment of the next size up, and when it runs out of 4 KB segments it
// asks the OS for more frames.
//
// Segment metadata is stored functionally in main memory (the metadata
// line really occupies the segment's first 64 bytes), exactly where the
// OMT cache expects to find and cache it.
package oms

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/mem"
	"repro/internal/sim"
)

// NumClasses is the number of segment size classes.
const NumClasses = 5

// ClassBytes returns the byte size of a segment of the given class
// (class 0 = 256 B … class 4 = 4 KB).
func ClassBytes(class int) int { return 256 << uint(class) }

// ClassLines returns the number of cache lines a segment spans.
func ClassLines(class int) int { return ClassBytes(class) / arch.LineSize }

// ClassSlots returns how many overlay cache lines a segment can hold; all
// classes but the largest sacrifice one line to metadata.
func ClassSlots(class int) int {
	if class == NumClasses-1 {
		return arch.LinesPerPage
	}
	return ClassLines(class) - 1
}

// ClassFor returns the smallest class able to hold n overlay lines.
func ClassFor(n int) int {
	for c := 0; c < NumClasses; c++ {
		if ClassSlots(c) >= n {
			return c
		}
	}
	panic(fmt.Sprintf("oms: no segment class holds %d lines", n))
}

// Store is the Overlay Memory Store manager. It is owned by the memory
// controller and touched only on cache-hierarchy misses and dirty
// write-backs (§3.3), never on the critical path of cache hits.
type Store struct {
	memory *mem.Memory
	stats  *sim.Stats
	trace  *sim.TraceLog    // nil = tracing disabled
	now    func() sim.Cycle // clock for trace timestamps

	free      [NumClasses][]arch.PhysAddr
	freeClass map[arch.PhysAddr]int // base → class for free segments
	segClass  map[arch.PhysAddr]int // base → class for live segments
	owned     int                   // frames handed to the store by the OS
	inUse     int                   // bytes of live segments
}

// New creates a store drawing frames from memory. The OS proactively
// hands the controller initialFrames 4 KB pages at startup (§4.4.3).
func New(memory *mem.Memory, stats *sim.Stats, initialFrames int) (*Store, error) {
	s := &Store{
		memory:    memory,
		stats:     stats,
		segClass:  make(map[arch.PhysAddr]int),
		freeClass: make(map[arch.PhysAddr]int),
	}
	if err := s.addFrames(initialFrames); err != nil {
		return nil, err
	}
	return s, nil
}

// AttachTrace wires the store to an event trace; `now` supplies the
// timestamp for emitted events (segment alloc/free). The store has no
// engine reference of its own, so the owner passes the clock in.
func (s *Store) AttachTrace(t *sim.TraceLog, now func() sim.Cycle) {
	s.trace = t
	s.now = now
}

func (s *Store) addFrames(n int) error {
	for i := 0; i < n; i++ {
		ppn, err := s.memory.Alloc()
		if err != nil {
			return fmt.Errorf("oms: growing store: %w", err)
		}
		s.addFree(arch.PhysAddrOf(ppn, 0), NumClasses-1)
		s.owned++
	}
	if s.stats != nil {
		s.stats.Add("oms.frames_granted", uint64(n))
	}
	return nil
}

// BytesInUse returns the bytes occupied by live segments (metadata lines
// and internal slack included — this is the store's true footprint).
func (s *Store) BytesInUse() int { return s.inUse }

// FramesOwned returns the number of 4 KB frames the OS has granted.
func (s *Store) FramesOwned() int { return s.owned }

// LiveSegments returns the number of allocated segments.
func (s *Store) LiveSegments() int { return len(s.segClass) }

// AllocSegment carves out a free segment of the class, splitting larger
// segments or requesting OS frames as needed.
func (s *Store) AllocSegment(class int) (arch.PhysAddr, error) {
	if class < 0 || class >= NumClasses {
		panic(fmt.Sprintf("oms: bad class %d", class))
	}
	if err := s.refill(class); err != nil {
		return 0, err
	}
	n := len(s.free[class])
	base := s.free[class][n-1]
	s.free[class] = s.free[class][:n-1]
	delete(s.freeClass, base)
	s.segClass[base] = class
	s.inUse += ClassBytes(class)
	if s.stats != nil {
		s.stats.Inc("oms.segment_allocs")
	}
	if s.trace != nil {
		s.trace.Emit(s.now(), "oms", "segment-alloc",
			sim.TraceArg{Key: "base", Val: uint64(base)},
			sim.TraceArg{Key: "class", Val: uint64(class)},
			sim.TraceArg{Key: "bytes", Val: uint64(ClassBytes(class))})
	}
	if class < NumClasses-1 {
		s.initMetadata(base)
	}
	return base, nil
}

// refill guarantees the class's free list is non-empty.
func (s *Store) refill(class int) error {
	if len(s.free[class]) > 0 {
		return nil
	}
	if class == NumClasses-1 {
		// Double the store, with a floor of one frame.
		grow := s.owned
		if grow == 0 {
			grow = 1
		}
		return s.addFrames(grow)
	}
	if err := s.refill(class + 1); err != nil {
		return err
	}
	n := len(s.free[class+1])
	big := s.free[class+1][n-1]
	s.free[class+1] = s.free[class+1][:n-1]
	delete(s.freeClass, big)
	half := arch.PhysAddr(ClassBytes(class))
	s.addFree(big, class)
	s.addFree(big+half, class)
	if s.stats != nil {
		s.stats.Inc("oms.segment_splits")
	}
	return nil
}

// FreeSegment returns a segment to its class free list, coalescing with
// its buddy (the equal-sized neighbour within the parent segment) into
// larger segments whenever both halves are free — the store's defence
// against long-run fragmentation.
func (s *Store) FreeSegment(base arch.PhysAddr) {
	class, ok := s.segClass[base]
	if !ok {
		panic(fmt.Sprintf("oms: freeing unknown segment %#x", uint64(base)))
	}
	delete(s.segClass, base)
	s.inUse -= ClassBytes(class)
	if s.trace != nil {
		s.trace.Emit(s.now(), "oms", "segment-free",
			sim.TraceArg{Key: "base", Val: uint64(base)},
			sim.TraceArg{Key: "class", Val: uint64(class)},
			sim.TraceArg{Key: "bytes", Val: uint64(ClassBytes(class))})
	}
	for class < NumClasses-1 {
		buddy := base ^ arch.PhysAddr(ClassBytes(class))
		if c, free := s.freeClass[buddy]; !free || c != class {
			break
		}
		s.removeFree(buddy, class)
		if buddy < base {
			base = buddy
		}
		class++
		if s.stats != nil {
			s.stats.Inc("oms.segment_coalesces")
		}
	}
	s.addFree(base, class)
	if s.stats != nil {
		s.stats.Inc("oms.segment_frees")
	}
}

// addFree places a segment on its class free list.
func (s *Store) addFree(base arch.PhysAddr, class int) {
	s.free[class] = append(s.free[class], base)
	s.freeClass[base] = class
}

// removeFree removes a specific free segment (buddy coalescing).
func (s *Store) removeFree(base arch.PhysAddr, class int) {
	delete(s.freeClass, base)
	q := s.free[class]
	for i, b := range q {
		if b == base {
			s.free[class] = append(q[:i], q[i+1:]...)
			return
		}
	}
	panic(fmt.Sprintf("oms: free segment %#x missing from class %d list", uint64(base), class))
}

// SegmentClass returns the class of a live segment.
func (s *Store) SegmentClass(base arch.PhysAddr) (int, bool) {
	c, ok := s.segClass[base]
	return c, ok
}

// ---- Segment metadata (Figure 7) ----
//
// Byte layout of the metadata line (first 64 B of sub-4 KB segments):
//   bytes 0..39  : 64 slot pointers, 5 bits each, little-endian bit order.
//                  Pointer value 0 = line not present; k = data in slot k.
//   bytes 40..43 : 32-bit free-slot vector; bit (k-1) set = slot k free.

func (s *Store) metaPPN(base arch.PhysAddr) (arch.PPN, uint64) {
	return arch.PPN(base.Page()), uint64(base) & arch.PageMask
}

func (s *Store) readMetaBits(base arch.PhysAddr, bitOff, width uint) uint32 {
	ppn, off := s.metaPPN(base)
	var v uint32
	for i := uint(0); i < width; i++ {
		bit := bitOff + i
		b := s.memory.Read(ppn, off+uint64(bit/8))
		v |= uint32(b>>(bit%8)&1) << i
	}
	return v
}

func (s *Store) writeMetaBits(base arch.PhysAddr, bitOff, width uint, v uint32) {
	ppn, off := s.metaPPN(base)
	for i := uint(0); i < width; i++ {
		bit := bitOff + i
		byteOff := off + uint64(bit/8)
		b := s.memory.Read(ppn, byteOff)
		if v>>i&1 != 0 {
			b |= 1 << (bit % 8)
		} else {
			b &^= 1 << (bit % 8)
		}
		s.memory.Write(ppn, byteOff, b)
	}
}

func (s *Store) slotPointer(base arch.PhysAddr, line int) int {
	return int(s.readMetaBits(base, uint(line)*5, 5))
}

func (s *Store) setSlotPointer(base arch.PhysAddr, line, slot int) {
	s.writeMetaBits(base, uint(line)*5, 5, uint32(slot))
}

func (s *Store) freeVector(base arch.PhysAddr) uint32 {
	return s.readMetaBits(base, 320, 32)
}

func (s *Store) setFreeVector(base arch.PhysAddr, v uint32) {
	s.writeMetaBits(base, 320, 32, v)
}

// initMetadata marks every data slot free and all pointers invalid.
func (s *Store) initMetadata(base arch.PhysAddr) {
	class := s.segClass[base]
	ppn, off := s.metaPPN(base)
	for i := 0; i < arch.LineSize; i++ {
		s.memory.Write(ppn, off+uint64(i), 0)
	}
	s.setFreeVector(base, uint32(1)<<uint(ClassSlots(class))-1)
}

// LocateLine returns the main-memory address of the overlay cache line
// for page line `line`, or ok=false if the segment does not hold it.
func (s *Store) LocateLine(base arch.PhysAddr, line int) (arch.PhysAddr, bool) {
	class, ok := s.segClass[base]
	if !ok {
		panic(fmt.Sprintf("oms: LocateLine on dead segment %#x", uint64(base)))
	}
	if class == NumClasses-1 {
		return base + arch.PhysAddr(line*arch.LineSize), true
	}
	slot := s.slotPointer(base, line)
	if slot == 0 {
		return 0, false
	}
	return base + arch.PhysAddr(slot*arch.LineSize), true
}

// InsertLine claims a slot for page line `line` and returns its address.
// full=true means the segment has no free slot (the caller must migrate).
// Inserting an already-present line returns its existing slot.
func (s *Store) InsertLine(base arch.PhysAddr, line int) (addr arch.PhysAddr, full bool) {
	class := s.segClass[base]
	if class == NumClasses-1 {
		return base + arch.PhysAddr(line*arch.LineSize), false
	}
	if slot := s.slotPointer(base, line); slot != 0 {
		return base + arch.PhysAddr(slot*arch.LineSize), false
	}
	fv := s.freeVector(base)
	if fv == 0 {
		return 0, true
	}
	slot := 1
	for fv&1 == 0 {
		fv >>= 1
		slot++
	}
	s.setFreeVector(base, s.freeVector(base)&^(1<<uint(slot-1)))
	s.setSlotPointer(base, line, slot)
	return base + arch.PhysAddr(slot*arch.LineSize), false
}

// RemoveLine releases the slot held by page line `line` (no-op if absent).
func (s *Store) RemoveLine(base arch.PhysAddr, line int) {
	class := s.segClass[base]
	if class == NumClasses-1 {
		return
	}
	slot := s.slotPointer(base, line)
	if slot == 0 {
		return
	}
	s.setSlotPointer(base, line, 0)
	s.setFreeVector(base, s.freeVector(base)|1<<uint(slot-1))
}

// Migrate moves an overlay into a segment of the next size up, copying
// every present line (per obits) and freeing the old segment. It returns
// the new base.
func (s *Store) Migrate(base arch.PhysAddr, obits arch.OBitVector) (arch.PhysAddr, error) {
	oldClass := s.segClass[base]
	if oldClass >= NumClasses-1 {
		panic("oms: migrating a 4KB segment")
	}
	newBase, err := s.AllocSegment(oldClass + 1)
	if err != nil {
		return 0, err
	}
	buf := make([]byte, arch.LineSize)
	for _, line := range obits.Lines() {
		src, ok := s.LocateLine(base, line)
		if !ok {
			continue // line tracked in OBitVector but not yet written back
		}
		dst, full := s.InsertLine(newBase, line)
		if full {
			panic("oms: migration target full")
		}
		s.copyLine(dst, src, buf)
	}
	s.FreeSegment(base)
	if s.stats != nil {
		s.stats.Inc("oms.migrations")
	}
	return newBase, nil
}

func (s *Store) copyLine(dst, src arch.PhysAddr, buf []byte) {
	srcPPN, srcOff := s.metaPPN(src)
	dstPPN, dstOff := s.metaPPN(dst)
	for i := 0; i < arch.LineSize; i++ {
		buf[i] = s.memory.Read(srcPPN, srcOff+uint64(i))
	}
	for i := 0; i < arch.LineSize; i++ {
		s.memory.Write(dstPPN, dstOff+uint64(i), buf[i])
	}
}

// ReadLineData copies the 64 data bytes at addr into dst.
func (s *Store) ReadLineData(addr arch.PhysAddr, dst []byte) {
	ppn, off := s.metaPPN(addr)
	for i := 0; i < arch.LineSize; i++ {
		dst[i] = s.memory.Read(ppn, off+uint64(i))
	}
}

// WriteLineData stores 64 bytes at addr.
func (s *Store) WriteLineData(addr arch.PhysAddr, src []byte) {
	ppn, off := s.metaPPN(addr)
	for i := 0; i < arch.LineSize; i++ {
		s.memory.Write(ppn, off+uint64(i), src[i])
	}
}

// FreeSlots returns how many more lines the segment can accept.
func (s *Store) FreeSlots(base arch.PhysAddr) int {
	class := s.segClass[base]
	if class == NumClasses-1 {
		return arch.LinesPerPage // offsets are never contended
	}
	fv := s.freeVector(base)
	n := 0
	for fv != 0 {
		n += int(fv & 1)
		fv >>= 1
	}
	return n
}
