package oms

import (
	"math/rand"
	"testing"

	"repro/internal/arch"
	"repro/internal/mem"
	"repro/internal/sim"
)

func newStore(t *testing.T, frames, memPages int) (*Store, *sim.Stats, *mem.Memory) {
	t.Helper()
	m := mem.New(memPages)
	var st sim.Stats
	s, err := New(m, &st, frames)
	if err != nil {
		t.Fatal(err)
	}
	return s, &st, m
}

func TestClassGeometry(t *testing.T) {
	wantBytes := []int{256, 512, 1024, 2048, 4096}
	wantSlots := []int{3, 7, 15, 31, 64}
	for c := 0; c < NumClasses; c++ {
		if ClassBytes(c) != wantBytes[c] {
			t.Errorf("ClassBytes(%d) = %d, want %d", c, ClassBytes(c), wantBytes[c])
		}
		if ClassSlots(c) != wantSlots[c] {
			t.Errorf("ClassSlots(%d) = %d, want %d", c, ClassSlots(c), wantSlots[c])
		}
	}
}

func TestClassFor(t *testing.T) {
	tests := []struct{ lines, class int }{
		{0, 0}, {1, 0}, {3, 0}, {4, 1}, {7, 1}, {8, 2}, {15, 2}, {16, 3}, {31, 3}, {32, 4}, {64, 4},
	}
	for _, tc := range tests {
		if got := ClassFor(tc.lines); got != tc.class {
			t.Errorf("ClassFor(%d) = %d, want %d", tc.lines, got, tc.class)
		}
	}
}

func TestAllocSplitsDownFromFrames(t *testing.T) {
	s, st, _ := newStore(t, 1, 16)
	base, err := s.AllocSegment(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.SegmentClass(base); !ok {
		t.Fatal("segment not tracked")
	}
	// One 4 KB frame split to 2 KB → 1 KB → 512 B → 256 B: 4 splits.
	if st.Get("oms.segment_splits") != 4 {
		t.Fatalf("splits = %d, want 4", st.Get("oms.segment_splits"))
	}
	if s.BytesInUse() != 256 {
		t.Fatalf("BytesInUse = %d, want 256", s.BytesInUse())
	}
}

func TestAllocGrowsFromOSWhenDry(t *testing.T) {
	s, st, m := newStore(t, 1, 16)
	before := m.AllocatedPages()
	// Drain the single frame with 4 KB segments, then force a grow.
	if _, err := s.AllocSegment(4); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AllocSegment(4); err != nil {
		t.Fatal(err)
	}
	if m.AllocatedPages() <= before {
		t.Fatal("store did not request frames from the OS")
	}
	if st.Get("oms.frames_granted") < 2 {
		t.Fatalf("frames_granted = %d", st.Get("oms.frames_granted"))
	}
}

func TestAllocFailsWhenOSOutOfMemory(t *testing.T) {
	s, _, _ := newStore(t, 1, 2) // zero page + 1 frame, OS has nothing more
	if _, err := s.AllocSegment(4); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AllocSegment(4); err == nil {
		t.Fatal("expected allocation failure")
	}
}

func TestFreeSegmentRecycles(t *testing.T) {
	s, _, _ := newStore(t, 1, 16)
	base, _ := s.AllocSegment(2)
	inUse := s.BytesInUse()
	s.FreeSegment(base)
	if s.BytesInUse() != inUse-ClassBytes(2) {
		t.Fatal("BytesInUse not reduced")
	}
	base2, _ := s.AllocSegment(2)
	if base2 != base {
		t.Fatalf("expected recycled segment %#x, got %#x", uint64(base), uint64(base2))
	}
}

func TestFreeUnknownSegmentPanics(t *testing.T) {
	s, _, _ := newStore(t, 1, 16)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.FreeSegment(arch.PhysAddr(0x123000))
}

func TestInsertLocateRemove(t *testing.T) {
	s, _, _ := newStore(t, 1, 16)
	base, _ := s.AllocSegment(0) // 3 slots
	if _, ok := s.LocateLine(base, 0); ok {
		t.Fatal("empty segment located a line")
	}
	a0, full := s.InsertLine(base, 0)
	if full {
		t.Fatal("segment full too early")
	}
	a3, _ := s.InsertLine(base, 3)
	if a0 == a3 {
		t.Fatal("two lines share a slot")
	}
	got, ok := s.LocateLine(base, 3)
	if !ok || got != a3 {
		t.Fatalf("LocateLine(3) = %#x/%v, want %#x", uint64(got), ok, uint64(a3))
	}
	// Reinsert returns the same slot.
	again, _ := s.InsertLine(base, 3)
	if again != a3 {
		t.Fatal("reinsert moved the line")
	}
	s.RemoveLine(base, 3)
	if _, ok := s.LocateLine(base, 3); ok {
		t.Fatal("line still present after remove")
	}
	if s.FreeSlots(base) != 2 {
		t.Fatalf("FreeSlots = %d, want 2", s.FreeSlots(base))
	}
}

func TestInsertReportsFull(t *testing.T) {
	s, _, _ := newStore(t, 1, 16)
	base, _ := s.AllocSegment(0)
	for _, line := range []int{1, 2, 3} {
		if _, full := s.InsertLine(base, line); full {
			t.Fatal("premature full")
		}
	}
	if _, full := s.InsertLine(base, 4); !full {
		t.Fatal("expected full segment")
	}
}

func TestFigure7Scenario(t *testing.T) {
	// Figure 7: a 256 B segment holding the first and fourth cache lines
	// of the page, with slot pointers 1 and 2 and one free slot.
	s, _, _ := newStore(t, 1, 16)
	base, _ := s.AllocSegment(0)
	s.InsertLine(base, 0) // first line → slot 1
	s.InsertLine(base, 3) // fourth line → slot 2
	if s.slotPointer(base, 0) != 1 || s.slotPointer(base, 3) != 2 {
		t.Fatalf("slot pointers = %d,%d, want 1,2", s.slotPointer(base, 0), s.slotPointer(base, 3))
	}
	if s.FreeSlots(base) != 1 {
		t.Fatalf("free slots = %d, want 1", s.FreeSlots(base))
	}
	for line := 0; line < arch.LinesPerPage; line++ {
		if line != 0 && line != 3 && s.slotPointer(base, line) != 0 {
			t.Fatalf("line %d has spurious pointer", line)
		}
	}
}

func Test4KBSegmentUsesNaturalOffsets(t *testing.T) {
	s, _, _ := newStore(t, 1, 16)
	base, _ := s.AllocSegment(4)
	for _, line := range []int{0, 17, 63} {
		addr, full := s.InsertLine(base, line)
		if full {
			t.Fatal("4KB segment can never be full")
		}
		want := base + arch.PhysAddr(line*arch.LineSize)
		if addr != want {
			t.Fatalf("line %d at %#x, want natural offset %#x", line, uint64(addr), uint64(want))
		}
		if got, ok := s.LocateLine(base, line); !ok || got != want {
			t.Fatal("LocateLine disagrees")
		}
	}
}

func TestLineDataRoundTrip(t *testing.T) {
	s, _, _ := newStore(t, 1, 16)
	base, _ := s.AllocSegment(1)
	addr, _ := s.InsertLine(base, 9)
	src := make([]byte, arch.LineSize)
	for i := range src {
		src[i] = byte(i * 3)
	}
	s.WriteLineData(addr, src)
	dst := make([]byte, arch.LineSize)
	s.ReadLineData(addr, dst)
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("byte %d: %d != %d", i, dst[i], src[i])
		}
	}
}

func TestMigratePreservesData(t *testing.T) {
	s, st, _ := newStore(t, 1, 32)
	base, _ := s.AllocSegment(0)
	var obits arch.OBitVector
	payload := map[int]byte{}
	for i, line := range []int{5, 20, 40} {
		addr, _ := s.InsertLine(base, line)
		buf := make([]byte, arch.LineSize)
		buf[0] = byte(i + 1)
		s.WriteLineData(addr, buf)
		obits = obits.Set(line)
		payload[line] = byte(i + 1)
	}
	newBase, err := s.Migrate(base, obits)
	if err != nil {
		t.Fatal(err)
	}
	if newBase == base {
		t.Fatal("migration did not move")
	}
	if c, _ := s.SegmentClass(newBase); c != 1 {
		t.Fatalf("new class = %d, want 1", c)
	}
	if _, ok := s.SegmentClass(base); ok {
		t.Fatal("old segment still live")
	}
	buf := make([]byte, arch.LineSize)
	for line, want := range payload {
		addr, ok := s.LocateLine(newBase, line)
		if !ok {
			t.Fatalf("line %d lost in migration", line)
		}
		s.ReadLineData(addr, buf)
		if buf[0] != want {
			t.Fatalf("line %d data = %d, want %d", line, buf[0], want)
		}
	}
	if st.Get("oms.migrations") != 1 {
		t.Fatal("migration not counted")
	}
}

func TestMigrateChainToFullPage(t *testing.T) {
	// Insert 64 lines, migrating whenever full: must end in a 4 KB class.
	s, _, _ := newStore(t, 4, 64)
	base, _ := s.AllocSegment(0)
	var obits arch.OBitVector
	for line := 0; line < arch.LinesPerPage; line++ {
		addr, full := s.InsertLine(base, line)
		if full {
			nb, err := s.Migrate(base, obits)
			if err != nil {
				t.Fatal(err)
			}
			base = nb
			addr, full = s.InsertLine(base, line)
			if full {
				t.Fatalf("still full after migration at line %d", line)
			}
		}
		buf := make([]byte, arch.LineSize)
		buf[1] = byte(line)
		s.WriteLineData(addr, buf)
		obits = obits.Set(line)
	}
	if c, _ := s.SegmentClass(base); c != 4 {
		t.Fatalf("final class = %d, want 4", c)
	}
	buf := make([]byte, arch.LineSize)
	for line := 0; line < arch.LinesPerPage; line++ {
		addr, ok := s.LocateLine(base, line)
		if !ok {
			t.Fatalf("line %d missing", line)
		}
		s.ReadLineData(addr, buf)
		if buf[1] != byte(line) {
			t.Fatalf("line %d corrupted", line)
		}
	}
}

func TestSegmentsAreSizeAligned(t *testing.T) {
	s, _, _ := newStore(t, 2, 32)
	for c := 0; c < NumClasses; c++ {
		base, err := s.AllocSegment(c)
		if err != nil {
			t.Fatal(err)
		}
		if uint64(base)%uint64(ClassBytes(c)) != 0 {
			t.Fatalf("class %d segment at %#x not size-aligned", c, uint64(base))
		}
	}
}

func TestRandomisedSlotInvariant(t *testing.T) {
	// Property: at all times, distinct present lines occupy distinct
	// slots, and FreeSlots + presentLines == ClassSlots.
	s, _, _ := newStore(t, 2, 32)
	base, _ := s.AllocSegment(3) // 31 slots
	rng := rand.New(rand.NewSource(21))
	present := map[int]bool{}
	for step := 0; step < 2000; step++ {
		line := rng.Intn(arch.LinesPerPage)
		if present[line] && rng.Intn(2) == 0 {
			s.RemoveLine(base, line)
			delete(present, line)
		} else if len(present) < ClassSlots(3) {
			if _, full := s.InsertLine(base, line); full {
				t.Fatal("unexpected full")
			}
			present[line] = true
		}
		if s.FreeSlots(base)+len(present) != ClassSlots(3) {
			t.Fatalf("slot accounting broken at step %d: free=%d present=%d",
				step, s.FreeSlots(base), len(present))
		}
	}
	// Distinctness of slots.
	slots := map[arch.PhysAddr]int{}
	for line := range present {
		addr, ok := s.LocateLine(base, line)
		if !ok {
			t.Fatalf("line %d lost", line)
		}
		if other, dup := slots[addr]; dup {
			t.Fatalf("lines %d and %d share slot %#x", line, other, uint64(addr))
		}
		slots[addr] = line
	}
}

func TestBuddyCoalescing(t *testing.T) {
	s, st, _ := newStore(t, 1, 16)
	// Carve one frame fully into 256 B segments, then free them all: the
	// buddies must coalesce back into a single 4 KB segment.
	var bases []arch.PhysAddr
	for i := 0; i < 16; i++ {
		b, err := s.AllocSegment(0)
		if err != nil {
			t.Fatal(err)
		}
		bases = append(bases, b)
	}
	for _, b := range bases {
		s.FreeSegment(b)
	}
	if st.Get("oms.segment_coalesces") == 0 {
		t.Fatal("no coalescing happened")
	}
	// A 4 KB allocation must now succeed without asking the OS for frames.
	granted := st.Get("oms.frames_granted")
	if _, err := s.AllocSegment(NumClasses - 1); err != nil {
		t.Fatal(err)
	}
	if st.Get("oms.frames_granted") != granted {
		t.Fatal("coalescing failed: 4KB alloc had to grow the store")
	}
}

func TestCoalescingStopsAtLiveBuddy(t *testing.T) {
	s, _, _ := newStore(t, 1, 16)
	a, _ := s.AllocSegment(0)
	b, _ := s.AllocSegment(0) // a's buddy (split order pairs them)
	s.FreeSegment(a)
	// b is live: freeing a must not merge past it, and b must stay usable.
	if _, ok := s.SegmentClass(b); !ok {
		t.Fatal("live segment lost")
	}
	if _, full := s.InsertLine(b, 5); full {
		t.Fatal("live segment unusable after neighbour free")
	}
}
