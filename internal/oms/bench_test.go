package oms

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/mem"
	"repro/internal/sim"
)

// BenchmarkOMSAlloc measures the steady-state AllocSegment/FreeSegment
// cycle across all size classes, exercising split and buddy-coalesce on
// every free. CI gates on this benchmark reporting 0 allocs/op — the
// flat unit-table allocator must run entirely on the intrusive free
// lists, with no map probes and no per-operation heap allocation.
func BenchmarkOMSAlloc(b *testing.B) {
	m := mem.New(1 << 10)
	var st sim.Stats
	s, err := New(m, &st, 8)
	if err != nil {
		b.Fatal(err)
	}
	// Warm the free lists so the loop never asks the OS for frames.
	var warm [8]arch.PhysAddr
	for i := range warm {
		warm[i], _ = s.AllocSegment(i % (NumClasses - 1))
	}
	for _, base := range warm {
		s.FreeSegment(base)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		base, err := s.AllocSegment(n % (NumClasses - 1))
		if err != nil {
			b.Fatal(err)
		}
		s.FreeSegment(base)
	}
}

// BenchmarkOMSResolve measures the swizzled (resident) reference fast
// path: Resolve on a direct handle plus a LocateLine, the operations the
// memory controller performs on every overlay hierarchy miss. Gated at
// 0 allocs/op alongside BenchmarkOMSAlloc.
func BenchmarkOMSResolve(b *testing.B) {
	m := mem.New(1 << 10)
	var st sim.Stats
	s, err := New(m, &st, 8)
	if err != nil {
		b.Fatal(err)
	}
	base, err := s.AllocSegment(1)
	if err != nil {
		b.Fatal(err)
	}
	for line := 0; line < ClassSlots(1); line++ {
		if _, full := s.InsertLine(base, line); full {
			b.Fatal("segment full")
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		ref, _, err := s.Resolve(base)
		if err != nil {
			b.Fatal(err)
		}
		if _, ok := s.LocateLine(ref, n%ClassSlots(1)); !ok {
			b.Fatal("line missing")
		}
	}
}
