package oms

import (
	"repro/internal/arch"
	"repro/internal/sim"
)

// Snapshot support: the store's bookkeeping is flat arrays (the unit
// table carries the free lists, cooling queue and class tags
// intrusively), so a capture is a value copy of those arrays plus the
// footprint totals and the spill tier — free-list and cooling-queue
// order is preserved exactly (AllocSegment pops the tail and the clock
// sweeps from the head, so order is timing-relevant). Segment contents
// and metadata lines live in main memory and are covered by the mem
// package's copy-on-write snapshot; spilled segment images live host-
// side in the spill records and are deep-copied here.

// Snapshot is an immutable capture of a Store's bookkeeping.
type Snapshot struct {
	frames []arch.PPN
	units  []unit

	freeHead [NumClasses]int32
	freeTail [NumClasses]int32

	owned    int
	inUse    int
	liveSegs int

	capacity     int
	spill        bool
	spillLat     sim.Cycle
	spillLineLat sim.Cycle

	coolHead, coolTail int32
	coolLen            int

	spillRecs    []spillRec
	spillFree    []int32
	spilledBytes int
	spilledSegs  int
}

// Snapshot captures the store.
func (s *Store) Snapshot() *Snapshot {
	snap := &Snapshot{
		frames:       append([]arch.PPN(nil), s.frames...),
		units:        append([]unit(nil), s.units...),
		freeHead:     s.freeHead,
		freeTail:     s.freeTail,
		owned:        s.owned,
		inUse:        s.inUse,
		liveSegs:     s.liveSegs,
		capacity:     s.capacity,
		spill:        s.spill,
		spillLat:     s.spillLat,
		spillLineLat: s.spillLineLat,
		coolHead:     s.coolHead,
		coolTail:     s.coolTail,
		coolLen:      s.coolLen,
		spillFree:    append([]int32(nil), s.spillFree...),
		spilledBytes: s.spilledBytes,
		spilledSegs:  s.spilledSegs,
	}
	snap.spillRecs = make([]spillRec, len(s.spillRecs))
	for i, rec := range s.spillRecs {
		snap.spillRecs[i] = spillRec{
			data:  append([]byte(nil), rec.data...),
			owner: rec.owner,
			class: rec.class,
		}
	}
	return snap
}

// Restore loads the captured bookkeeping into this store (typically a
// freshly built one wired to a forked Memory). The evict hook and trace
// attachment are not part of the capture — the owner re-wires them.
func (s *Store) Restore(snap *Snapshot) {
	s.frames = append(s.frames[:0], snap.frames...)
	s.units = append(s.units[:0], snap.units...)
	for i := range s.frameSlot {
		s.frameSlot[i] = 0
	}
	for slot, ppn := range s.frames {
		s.frameSlot[ppn] = int32(slot) + 1
	}
	s.freeHead = snap.freeHead
	s.freeTail = snap.freeTail
	s.owned = snap.owned
	s.inUse = snap.inUse
	s.liveSegs = snap.liveSegs
	s.capacity = snap.capacity
	s.spill = snap.spill
	s.spillLat = snap.spillLat
	s.spillLineLat = snap.spillLineLat
	s.coolHead = snap.coolHead
	s.coolTail = snap.coolTail
	s.coolLen = snap.coolLen
	s.pinned = -1
	s.spillRecs = s.spillRecs[:0]
	for _, rec := range snap.spillRecs {
		s.spillRecs = append(s.spillRecs, spillRec{
			data:  append([]byte(nil), rec.data...),
			owner: rec.owner,
			class: rec.class,
		})
	}
	s.spillFree = append(s.spillFree[:0], snap.spillFree...)
	s.spilledBytes = snap.spilledBytes
	s.spilledSegs = snap.spilledSegs
	if s.capacity != 0 {
		s.bindCapacityCounters()
		s.syncGauges()
	}
}
