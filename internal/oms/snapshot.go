package oms

import "repro/internal/arch"

// Snapshot support: the store's bookkeeping (free lists in exact order
// — AllocSegment pops the tail, so order is timing-relevant — plus the
// class maps and footprint totals) is captured by value. Segment
// contents and metadata lines live in main memory and are covered by
// the mem package's copy-on-write snapshot.

// Snapshot is an immutable capture of a Store's bookkeeping.
type Snapshot struct {
	free      [NumClasses][]arch.PhysAddr
	freeClass map[arch.PhysAddr]int
	segClass  map[arch.PhysAddr]int
	owned     int
	inUse     int
}

// Snapshot captures the store.
func (s *Store) Snapshot() *Snapshot {
	snap := &Snapshot{
		freeClass: make(map[arch.PhysAddr]int, len(s.freeClass)),
		segClass:  make(map[arch.PhysAddr]int, len(s.segClass)),
		owned:     s.owned,
		inUse:     s.inUse,
	}
	for c := range s.free {
		snap.free[c] = append([]arch.PhysAddr(nil), s.free[c]...)
	}
	for k, v := range s.freeClass {
		snap.freeClass[k] = v
	}
	for k, v := range s.segClass {
		snap.segClass[k] = v
	}
	return snap
}

// Restore loads the captured bookkeeping into this store (typically a
// freshly built one wired to a forked Memory).
func (s *Store) Restore(snap *Snapshot) {
	for c := range s.free {
		s.free[c] = append(s.free[c][:0], snap.free[c]...)
	}
	s.freeClass = make(map[arch.PhysAddr]int, len(snap.freeClass))
	for k, v := range snap.freeClass {
		s.freeClass[k] = v
	}
	s.segClass = make(map[arch.PhysAddr]int, len(snap.segClass))
	for k, v := range snap.segClass {
		s.segClass[k] = v
	}
	s.owned = snap.owned
	s.inUse = snap.inUse
}
