package oms

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/arch"
	"repro/internal/mem"
	"repro/internal/sim"
)

// segTracker is the test-side reference holder: it plays the OMT's role,
// keeping one swizzled reference per live segment and letting the evict
// hook unswizzle them to cold references.
type segTracker struct {
	refs  map[uint64]arch.PhysAddr
	class map[uint64]int
	next  uint64
}

func newTracker(s *Store) *segTracker {
	tr := &segTracker{
		refs:  make(map[uint64]arch.PhysAddr),
		class: make(map[uint64]int),
		next:  1, // owner 0 means "unowned" to the store
	}
	s.SetEvictHook(func(owner uint64, cold arch.PhysAddr) {
		if _, ok := tr.refs[owner]; !ok {
			panic(fmt.Sprintf("evict hook for unknown owner %d", owner))
		}
		tr.refs[owner] = cold
	})
	return tr
}

func (tr *segTracker) add(s *Store, base arch.PhysAddr, class int) uint64 {
	owner := tr.next
	tr.next++
	tr.refs[owner] = base
	tr.class[owner] = class
	s.SetOwner(base, owner)
	return owner
}

// liveBytes sums the class bytes of every tracked live segment.
func (tr *segTracker) liveBytes() int {
	total := 0
	for owner := range tr.refs {
		total += ClassBytes(tr.class[owner])
	}
	return total
}

// checkConservation asserts the core residency property: resident bytes
// plus spilled bytes always equal the bytes of live segments.
func checkConservation(t *testing.T, s *Store, tr *segTracker) {
	t.Helper()
	if got, want := s.ResidentBytes()+s.SpilledBytes(), tr.liveBytes(); got != want {
		t.Fatalf("resident(%d) + spilled(%d) = %d bytes, want live %d",
			s.ResidentBytes(), s.SpilledBytes(), got, want)
	}
	if got, want := s.BytesInUse(), tr.liveBytes(); got != want {
		t.Fatalf("BytesInUse = %d, want %d", got, want)
	}
}

func newCapacityStore(t *testing.T, capFrames, memPages int) (*Store, *sim.Stats, *segTracker) {
	t.Helper()
	m := mem.New(memPages)
	var st sim.Stats
	s, err := New(m, &st, 0)
	if err != nil {
		t.Fatal(err)
	}
	tr := newTracker(s)
	s.SetCapacity(capFrames, true)
	return s, &st, tr
}

// TestCoolingEviction drives the store past its frame budget and checks
// that the cooling queue spills segments, cold references resolve back
// to live data, and every counter moves the right way.
func TestCoolingEviction(t *testing.T) {
	s, st, tr := newCapacityStore(t, 4, 256)

	// 4 frames hold 4 top-class segments; allocating 8 must spill.
	owners := make([]uint64, 0, 8)
	for i := 0; i < 8; i++ {
		base, err := s.AllocSegment(NumClasses - 1)
		if err != nil {
			t.Fatal(err)
		}
		owners = append(owners, tr.add(s, base, NumClasses-1))
		checkConservation(t, s, tr)
	}
	if s.FramesOwned() > 4 {
		t.Fatalf("store grew to %d frames past capacity 4", s.FramesOwned())
	}
	if st.Get("oms.evictions") == 0 || st.Get("oms.spills") == 0 {
		t.Fatalf("no evictions/spills recorded: evictions=%d spills=%d",
			st.Get("oms.evictions"), st.Get("oms.spills"))
	}
	if s.SpilledSegments() == 0 {
		t.Fatal("no segments in the spill tier")
	}

	// Every owner's reference must still resolve — cold ones via refill.
	for _, owner := range owners {
		ref := tr.refs[owner]
		base, penalty, err := s.Resolve(ref)
		if err != nil {
			t.Fatalf("resolve owner %d: %v", owner, err)
		}
		if ref.IsCold() && penalty == 0 {
			t.Fatalf("cold resolve of owner %d charged no penalty", owner)
		}
		if !ref.IsCold() && penalty != 0 {
			t.Fatalf("resident resolve of owner %d charged %d cycles", owner, penalty)
		}
		tr.refs[owner] = base
		checkConservation(t, s, tr)
	}
	if st.Get("oms.refills") == 0 {
		t.Fatal("no refills recorded")
	}
	if st.Get("oms.spill_penalty_cycles") == 0 {
		t.Fatal("no spill penalty cycles recorded")
	}

	// Free everything — through whatever reference is current — and check
	// the store drains to zero.
	for _, owner := range owners {
		s.FreeSegment(tr.refs[owner])
		delete(tr.refs, owner)
		delete(tr.class, owner)
		checkConservation(t, s, tr)
	}
	if s.LiveSegments() != 0 || s.SpilledSegments() != 0 || s.BytesInUse() != 0 {
		t.Fatalf("store not empty after frees: live=%d spilled=%d bytes=%d",
			s.LiveSegments(), s.SpilledSegments(), s.BytesInUse())
	}
}

// TestSecondChance checks the clock behaviour: a segment whose reference
// bit is set survives one eviction sweep at the expense of an untouched
// one.
func TestSecondChance(t *testing.T) {
	s, st, tr := newCapacityStore(t, 3, 256)

	alloc := func() uint64 {
		t.Helper()
		base, err := s.AllocSegment(NumClasses - 1)
		if err != nil {
			t.Fatal(err)
		}
		return tr.add(s, base, NumClasses-1)
	}

	// Fill the 3-frame budget: queue [A, B, C], all reference bits set.
	a, b, c := alloc(), alloc(), alloc()

	// D forces a sweep: A, B, C each spend their bit rotating (second
	// chances), then A — back at the head, bit now clear — is spilled.
	// Queue: [B(clear), C(clear), D(set)].
	d := alloc()
	if !tr.refs[a].IsCold() {
		t.Fatal("A not spilled by the first sweep")
	}
	if tr.refs[b].IsCold() || tr.refs[c].IsCold() {
		t.Fatal("B/C spilled prematurely")
	}
	if st.Get("oms.second_chances") < 3 {
		t.Fatalf("second_chances = %d, want >= 3", st.Get("oms.second_chances"))
	}

	// Touch only B: queue [B(set), C(clear), D(set)]. The next sweep must
	// grant B its second chance and spill the untouched C instead.
	if _, _, err := s.Resolve(tr.refs[b]); err != nil {
		t.Fatal(err)
	}
	alloc()
	if !tr.refs[c].IsCold() {
		t.Fatal("untouched C was not evicted")
	}
	if tr.refs[b].IsCold() {
		t.Fatal("recently touched B was evicted despite its reference bit")
	}
	if tr.refs[d].IsCold() {
		t.Fatal("D spilled out of order")
	}
}

// TestSpillDataIntegrity writes a distinctive pattern into every slot of
// a segment, forces it through the spill tier, and checks the refilled
// image byte-for-byte (metadata line included: the slot mapping must
// survive the round trip).
func TestSpillDataIntegrity(t *testing.T) {
	s, _, tr := newCapacityStore(t, 1, 256)

	base, err := s.AllocSegment(1) // 512 B, 7 slots
	if err != nil {
		t.Fatal(err)
	}
	owner := tr.add(s, base, 1)
	lines := []int{3, 17, 40, 63}
	var buf [arch.LineSize]byte
	for _, line := range lines {
		addr, full := s.InsertLine(base, line)
		if full {
			t.Fatal("segment full")
		}
		for i := range buf {
			buf[i] = byte(line + i)
		}
		s.WriteLineData(addr, buf[:])
	}

	// Churn until the segment spills.
	for i := 0; i < 8 && !tr.refs[owner].IsCold(); i++ {
		b2, errAlloc := s.AllocSegment(NumClasses - 1)
		if errAlloc != nil {
			t.Fatal(errAlloc)
		}
		o2 := tr.add(s, b2, NumClasses-1)
		s.FreeSegment(tr.refs[o2])
		delete(tr.refs, o2)
		delete(tr.class, o2)
	}
	if !tr.refs[owner].IsCold() {
		t.Fatal("segment never spilled")
	}

	newBase, penalty, err := s.Resolve(tr.refs[owner])
	if err != nil {
		t.Fatal(err)
	}
	if penalty == 0 {
		t.Fatal("refill charged no penalty")
	}
	tr.refs[owner] = newBase
	for _, line := range lines {
		addr, ok := s.LocateLine(newBase, line)
		if !ok {
			t.Fatalf("line %d lost across the spill round trip", line)
		}
		s.ReadLineData(addr, buf[:])
		for i := range buf {
			if buf[i] != byte(line+i) {
				t.Fatalf("line %d byte %d = %#x, want %#x", line, i, buf[i], byte(line+i))
			}
		}
	}
}

// churnStep is one op of the randomized churn: allocate a random class,
// or free / resolve / line-insert on a random live segment.
func churnStep(t *testing.T, rng *rand.Rand, s *Store, tr *segTracker, owners *[]uint64) {
	t.Helper()
	switch op := rng.Intn(10); {
	case op < 4 || len(*owners) == 0: // alloc
		class := rng.Intn(NumClasses)
		base, err := s.AllocSegment(class)
		if err != nil {
			t.Fatal(err)
		}
		*owners = append(*owners, tr.add(s, base, class))
	case op < 7: // free a random segment through its current reference
		i := rng.Intn(len(*owners))
		owner := (*owners)[i]
		s.FreeSegment(tr.refs[owner])
		delete(tr.refs, owner)
		delete(tr.class, owner)
		(*owners)[i] = (*owners)[len(*owners)-1]
		*owners = (*owners)[:len(*owners)-1]
	default: // resolve + touch lines of a random segment
		owner := (*owners)[rng.Intn(len(*owners))]
		base, _, err := s.Resolve(tr.refs[owner])
		if err != nil {
			t.Fatal(err)
		}
		tr.refs[owner] = base
		if class := tr.class[owner]; class < NumClasses-1 {
			if addr, full := s.InsertLine(base, rng.Intn(arch.LinesPerPage)); !full {
				var b [arch.LineSize]byte
				s.WriteLineData(addr, b[:])
			}
		}
	}
}

// TestChurnConservation runs randomized alloc/free/resolve churn with
// and without a capacity and checks, after every op, the property that
// resident + spilled bytes equal live bytes — and at the end, that
// freeing everything coalesces the store back to whole frames.
func TestChurnConservation(t *testing.T) {
	for _, capFrames := range []int{0, 3, 8} {
		capFrames := capFrames
		t.Run(fmt.Sprintf("capacity=%d", capFrames), func(t *testing.T) {
			m := mem.New(1 << 10)
			var st sim.Stats
			s, err := New(m, &st, 0)
			if err != nil {
				t.Fatal(err)
			}
			tr := newTracker(s)
			if capFrames > 0 {
				s.SetCapacity(capFrames, true)
			}
			rng := rand.New(rand.NewSource(42))
			var owners []uint64
			for i := 0; i < 4000; i++ {
				churnStep(t, rng, s, tr, &owners)
				checkConservation(t, s, tr)
			}
			if capFrames > 0 && st.Get("oms.spills") == 0 {
				t.Fatal("capacity churn produced no spills")
			}
			// Drain and verify full coalescing: every owned frame must be
			// one free top-class segment again.
			for _, owner := range owners {
				s.FreeSegment(tr.refs[owner])
				delete(tr.refs, owner)
				delete(tr.class, owner)
				checkConservation(t, s, tr)
			}
			if s.BytesInUse() != 0 || s.LiveSegments() != 0 || s.SpilledSegments() != 0 {
				t.Fatalf("store not empty: bytes=%d live=%d spilled=%d",
					s.BytesInUse(), s.LiveSegments(), s.SpilledSegments())
			}
			free := 0
			for base := s.freeHead[NumClasses-1]; base >= 0; base = s.units[base].next {
				free++
			}
			if free != s.FramesOwned() {
				t.Fatalf("after drain %d top-class free segments, want %d (coalescing failed)",
					free, s.FramesOwned())
			}
		})
	}
}

// TestCapacitySnapshotRestore snapshots a capacity-mode store mid-churn
// (cooling queue populated, segments in the spill tier) and checks that
// a restored store is observably identical: same footprint, same spill
// images, and the same behaviour for the same subsequent op sequence.
func TestCapacitySnapshotRestore(t *testing.T) {
	m := mem.New(1 << 10)
	var st sim.Stats
	s, err := New(m, &st, 0)
	if err != nil {
		t.Fatal(err)
	}
	tr := newTracker(s)
	s.SetCapacity(3, true)
	rng := rand.New(rand.NewSource(7))
	var owners []uint64
	for i := 0; i < 1500; i++ {
		churnStep(t, rng, s, tr, &owners)
	}
	if s.SpilledSegments() == 0 {
		t.Fatal("want spilled segments at the snapshot point")
	}

	// Snapshot both the store bookkeeping and the memory it lives in (the
	// same pairing core.Framework.Snapshot performs), then rebuild on a
	// copy-on-write fork of the memory so the two stores evolve
	// independently from identical state.
	snap := s.Snapshot()
	msnap := m.Snapshot()
	var st2 sim.Stats
	restored, err := New(mem.NewFromSnapshot(msnap), &st2, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The restored store shares the tracker: hooks from either store
	// update the same reference table, and the op streams below are
	// driven independently but identically.
	restored.SetEvictHook(func(owner uint64, cold arch.PhysAddr) { tr.refs[owner] = cold })
	restored.Restore(snap)

	checks := []struct {
		name      string
		got, want int
	}{
		{"FramesOwned", restored.FramesOwned(), s.FramesOwned()},
		{"BytesInUse", restored.BytesInUse(), s.BytesInUse()},
		{"ResidentBytes", restored.ResidentBytes(), s.ResidentBytes()},
		{"SpilledBytes", restored.SpilledBytes(), s.SpilledBytes()},
		{"LiveSegments", restored.LiveSegments(), s.LiveSegments()},
		{"SpilledSegments", restored.SpilledSegments(), s.SpilledSegments()},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Fatalf("restored %s = %d, want %d", c.name, c.got, c.want)
		}
	}

	// Same allocation stream from both stores must hand out the same
	// addresses (free lists and cooling queue restored in exact order).
	for i := 0; i < 64; i++ {
		class := i % NumClasses
		a, errA := s.AllocSegment(class)
		b, errB := restored.AllocSegment(class)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("alloc %d diverged: %v vs %v", i, errA, errB)
		}
		if a != b {
			t.Fatalf("alloc %d: original %#x, restored %#x", i, uint64(a), uint64(b))
		}
		s.FreeSegment(a)
		restored.FreeSegment(b)
	}
}

// TestSharedStriping hammers a lock-striped Shared store from many
// goroutines (run with -race in CI) and checks per-shard conservation
// afterwards.
func TestSharedStriping(t *testing.T) {
	const shards = 4
	stores := make([]*Store, shards)
	for i := range stores {
		m := mem.New(512)
		var st sim.Stats
		s, err := New(m, &st, 0)
		if err != nil {
			t.Fatal(err)
		}
		stores[i] = s
	}
	sh := NewShared(stores)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			live := make(map[uint64][]arch.PhysAddr)
			for i := 0; i < 2000; i++ {
				key := uint64(rng.Intn(shards * 2)) // collide across goroutines
				sh.With(key, func(s *Store) {
					if len(live[key]) == 0 || rng.Intn(2) == 0 {
						base, err := s.AllocSegment(rng.Intn(NumClasses))
						if err != nil {
							panic(err)
						}
						live[key] = append(live[key], base)
					} else {
						n := len(live[key])
						s.FreeSegment(live[key][n-1])
						live[key] = live[key][:n-1]
					}
				})
			}
			for key, bases := range live {
				for _, base := range bases {
					sh.With(key, func(s *Store) { s.FreeSegment(base) })
				}
			}
		}(int64(g))
	}
	wg.Wait()
	for i, s := range stores {
		if s.LiveSegments() != 0 || s.BytesInUse() != 0 {
			t.Fatalf("shard %d not drained: live=%d bytes=%d", i, s.LiveSegments(), s.BytesInUse())
		}
	}
}
