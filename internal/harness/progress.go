package harness

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// progress renders a live jobs-done/total line with an ETA estimated
// from the mean completion rate so far, and fans the same totals out to
// an optional structured callback. A nil *progress is disabled; all
// methods are safe to call concurrently from workers.
type progress struct {
	mu     sync.Mutex
	w      io.Writer
	fn     ProgressFunc
	label  string
	total  int
	done   int
	failed int
	start  time.Time
}

func newProgress(w io.Writer, fn ProgressFunc, label string, total int) *progress {
	if w == nil && fn == nil {
		return nil
	}
	if label != "" {
		label += ": "
	}
	return &progress{w: w, fn: fn, label: label, total: total, start: time.Now()}
}

// jobDone records one completion, rewrites the progress line, and
// notifies the structured callback.
func (p *progress) jobDone(err error) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done++
	if err != nil {
		p.failed++
	}
	if p.fn != nil {
		p.fn(p.done, p.total, p.failed)
	}
	if p.w == nil {
		return
	}
	fmt.Fprintf(p.w, "\r%s%d/%d jobs done", p.label, p.done, p.total)
	if p.failed > 0 {
		fmt.Fprintf(p.w, " (%d failed)", p.failed)
	}
	if p.done < p.total {
		elapsed := time.Since(p.start)
		eta := elapsed / time.Duration(p.done) * time.Duration(p.total-p.done)
		fmt.Fprintf(p.w, ", ETA %s", eta.Round(100*time.Millisecond))
	}
}

// finish terminates the progress line with a total-wall summary. The
// structured callback is not re-notified: it already saw the final
// (done == total) state from the last jobDone.
func (p *progress) finish() {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.w == nil {
		return
	}
	fmt.Fprintf(p.w, "\r%s%d/%d jobs in %s",
		p.label, p.done, p.total, time.Since(p.start).Round(time.Millisecond))
	if p.failed > 0 {
		fmt.Fprintf(p.w, " (%d failed)", p.failed)
	}
	fmt.Fprintln(p.w)
}
