// Package harness fans independent simulation jobs across a pool of
// worker goroutines. Every experiment in internal/exp is an
// embarrassingly parallel set of configurations — each job builds its
// own sim.Engine and memory system and shares no mutable state with its
// siblings — so the whole evaluation scales with GOMAXPROCS while the
// simulated metrics stay bit-identical to the sequential path.
//
// Determinism contract: results are collected by job index, never by
// completion order, and a job error does not cancel its siblings (all
// jobs run; Map reports the lowest-index failure). Parallel 1 therefore
// reproduces the sequential path exactly, and any Parallel N produces
// the same result slice as long as the jobs themselves are pure
// functions of their inputs — which simulator jobs are, because each
// owns its engine, memory system and seeded RNGs (see DESIGN.md
// "Parallel experiments").
package harness

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
)

// Job is one independent unit of work. A job must not share mutable
// state with other jobs; it may observe ctx to stop early when the
// sweep is cancelled or its per-job timeout expires.
type Job[T any] func(ctx context.Context) (T, error)

// Options configure one Run.
type Options struct {
	// Parallel is the number of worker goroutines. Zero or negative
	// selects GOMAXPROCS. Parallel 1 runs the jobs one at a time in
	// index order — the sequential path.
	Parallel int

	// Timeout bounds each job's wall clock (zero: unbounded). The
	// job's context is cancelled at the deadline; a job that ignores
	// its context still runs to completion and keeps its own result.
	Timeout time.Duration

	// Progress, when non-nil, receives a live "done/total, ETA" line
	// (\r-rewritten, so point it at a terminal-ish stream like
	// stderr) as jobs complete. Nil disables progress reporting.
	Progress io.Writer

	// OnProgress, when non-nil, is invoked after every job completes
	// with the pool's running totals. It is the structured counterpart
	// of Progress (which renders for humans): servers and UIs subscribe
	// here. Calls are serialised under the progress lock, so the
	// callback must be fast and must not re-enter the pool.
	OnProgress ProgressFunc

	// Label prefixes progress lines, e.g. "fork".
	Label string
}

// ProgressFunc observes pool progress: done jobs so far (out of total),
// of which failed returned an error.
type ProgressFunc func(done, total, failed int)

// Result is the outcome of one job, tagged with its input index.
type Result[T any] struct {
	Index int
	Value T
	Err   error
	Wall  time.Duration
}

// PanicError is a job panic converted into an error: the sweep reports
// the crashed configuration instead of dying with it.
type PanicError struct {
	Value interface{} // the recovered panic value
	Stack []byte      // the panicking goroutine's stack
}

func (e *PanicError) Error() string { return fmt.Sprintf("job panicked: %v", e.Value) }

// Run executes the jobs on a pool of Options.Parallel workers and
// returns one Result per job, in job order. When ctx is cancelled,
// in-flight jobs finish (or observe their context) and every job not
// yet started fails with ctx.Err(); Run still returns the full-length
// slice so completed work is not lost.
func Run[T any](ctx context.Context, opts Options, jobs []Job[T]) []Result[T] {
	results := make([]Result[T], len(jobs))
	for i := range results {
		results[i].Index = i
	}
	if len(jobs) == 0 {
		return results
	}
	workers := opts.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	prog := newProgress(opts.Progress, opts.OnProgress, opts.Label, len(jobs))
	indices := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indices {
				if err := ctx.Err(); err != nil {
					results[i].Err = err
				} else {
					results[i] = runJob(ctx, opts, i, jobs[i])
				}
				prog.jobDone(results[i].Err)
			}
		}()
	}
	for i := range jobs {
		select {
		case indices <- i:
		case <-ctx.Done():
			// Everything not yet handed to a worker is cancelled.
			for ; i < len(jobs); i++ {
				results[i].Err = ctx.Err()
				prog.jobDone(results[i].Err)
			}
			close(indices)
			wg.Wait()
			prog.finish()
			return results
		}
	}
	close(indices)
	wg.Wait()
	prog.finish()
	return results
}

// runJob executes one job with panic recovery and the per-job timeout.
// When the context carries an obs tracer the execution is wrapped in a
// "harness.job" span (the job sees the span's context, so experiment
// phases nest under it), and failures are reported through the
// context's structured logger.
func runJob[T any](ctx context.Context, opts Options, index int, job Job[T]) (res Result[T]) {
	res.Index = index
	if opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Timeout)
		defer cancel()
	}
	ctx, span := obs.StartSpan(ctx, "harness.job")
	if span != nil {
		if opts.Label != "" {
			span.SetAttr("label", opts.Label)
		}
		span.SetAttr("index", strconv.Itoa(index))
	}
	start := time.Now()
	defer func() {
		res.Wall = time.Since(start)
		if r := recover(); r != nil {
			res.Err = &PanicError{Value: r, Stack: debug.Stack()}
		}
		span.End()
		if res.Err != nil {
			obs.Log(ctx).Error("harness job failed",
				"label", opts.Label, "index", index,
				"wall_ms", res.Wall.Milliseconds(), "err", res.Err.Error())
		}
	}()
	res.Value, res.Err = job(ctx)
	return res
}

// FirstErr returns the lowest-index job error, wrapped with its index,
// or nil if every job succeeded. Index order makes the reported error
// independent of completion order.
func FirstErr[T any](results []Result[T]) error {
	for i := range results {
		if results[i].Err != nil {
			return fmt.Errorf("job %d: %w", i, results[i].Err)
		}
	}
	return nil
}

// Map runs fn over every item and returns the outputs in item order.
// A failing item does not cancel its siblings (each simulation is
// independent, and running the full set keeps the outcome
// deterministic); the lowest-index failure is returned after all jobs
// finish.
func Map[In, Out any](ctx context.Context, opts Options, items []In,
	fn func(ctx context.Context, item In, index int) (Out, error)) ([]Out, error) {
	jobs := make([]Job[Out], len(items))
	for i := range items {
		i := i
		jobs[i] = func(ctx context.Context) (Out, error) { return fn(ctx, items[i], i) }
	}
	results := Run(ctx, opts, jobs)
	if err := FirstErr(results); err != nil {
		return nil, err
	}
	out := make([]Out, len(results))
	for i := range results {
		out[i] = results[i].Value
	}
	return out, nil
}
