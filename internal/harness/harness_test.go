package harness

import (
	"log/slog"

	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"repro/internal/obs"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestDeterministicOrdering runs jobs with random per-job delays at
// high parallelism and asserts results land at their input index, not
// in completion order.
func TestDeterministicOrdering(t *testing.T) {
	const n = 64
	rng := rand.New(rand.NewSource(42))
	delays := make([]time.Duration, n)
	for i := range delays {
		delays[i] = time.Duration(rng.Intn(3000)) * time.Microsecond
	}
	jobs := make([]Job[int], n)
	for i := range jobs {
		i := i
		jobs[i] = func(context.Context) (int, error) {
			time.Sleep(delays[i])
			return i * i, nil
		}
	}
	results := Run(context.Background(), Options{Parallel: 8}, jobs)
	if len(results) != n {
		t.Fatalf("got %d results, want %d", len(results), n)
	}
	for i, r := range results {
		if r.Index != i || r.Value != i*i || r.Err != nil {
			t.Fatalf("result %d = {Index:%d Value:%d Err:%v}, want {%d %d nil}",
				i, r.Index, r.Value, r.Err, i, i*i)
		}
		if r.Wall < delays[i] {
			t.Errorf("result %d wall %v below the job's own %v", i, r.Wall, delays[i])
		}
	}
}

// TestMapOrdering covers the Map wrapper end to end.
func TestMapOrdering(t *testing.T) {
	items := []string{"a", "bb", "ccc", "dddd", "eeeee"}
	out, err := Map(context.Background(), Options{Parallel: 4}, items,
		func(_ context.Context, s string, i int) (int, error) {
			time.Sleep(time.Duration(5-i) * time.Millisecond) // finish in reverse
			return len(s), nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i+1 {
			t.Fatalf("out = %v, want lengths in item order", out)
		}
	}
}

// TestPanicBecomesError asserts a crashed job is reported as that
// job's error while its siblings complete normally.
func TestPanicBecomesError(t *testing.T) {
	jobs := []Job[int]{
		func(context.Context) (int, error) { return 1, nil },
		func(context.Context) (int, error) { panic("bad configuration") },
		func(context.Context) (int, error) { return 3, nil },
	}
	results := Run(context.Background(), Options{Parallel: 2}, jobs)
	if results[0].Err != nil || results[2].Err != nil {
		t.Fatalf("sibling jobs affected by panic: %v / %v", results[0].Err, results[2].Err)
	}
	var pe *PanicError
	if !errors.As(results[1].Err, &pe) {
		t.Fatalf("job 1 error = %v, want *PanicError", results[1].Err)
	}
	if pe.Value != "bad configuration" || len(pe.Stack) == 0 {
		t.Errorf("panic error lost its payload: value=%v stack=%d bytes", pe.Value, len(pe.Stack))
	}
	if !strings.Contains(pe.Error(), "bad configuration") {
		t.Errorf("Error() = %q", pe.Error())
	}
	// Map surfaces the lowest-index failure.
	if err := FirstErr(results); err == nil || !strings.Contains(err.Error(), "job 1") {
		t.Errorf("FirstErr = %v, want job 1 panic", err)
	}
}

// TestCancellationMidSweep cancels while the sweep is in flight: the
// started jobs observe their context, unstarted jobs are marked with
// ctx.Err(), and the full-length result slice still comes back.
func TestCancellationMidSweep(t *testing.T) {
	const n = 32
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	started := make(chan struct{}, n)
	var once sync.Once
	jobs := make([]Job[int], n)
	for i := range jobs {
		i := i
		jobs[i] = func(ctx context.Context) (int, error) {
			once.Do(cancel) // first job to run pulls the plug
			started <- struct{}{}
			select {
			case <-ctx.Done():
				return 0, ctx.Err()
			case <-time.After(5 * time.Second):
				return i, nil
			}
		}
	}
	results := Run(ctx, Options{Parallel: 4}, jobs)
	if len(results) != n {
		t.Fatalf("got %d results, want %d (completed work must not be lost)", len(results), n)
	}
	cancelled := 0
	for i, r := range results {
		if r.Index != i {
			t.Fatalf("result %d has index %d", i, r.Index)
		}
		if errors.Is(r.Err, context.Canceled) {
			cancelled++
		}
	}
	if cancelled == 0 {
		t.Error("no job reported cancellation")
	}
	if got := len(started); got >= n {
		t.Errorf("all %d jobs started despite cancellation", got)
	}
}

// TestCancelMidRunReleasesWorker is the serve-layer contract: a job
// cancelled while it is running must come back as a plain
// context.Canceled — not wrapped in a PanicError — and its worker slot
// must be released so the pool can run the next submission. The single
// worker here makes the slot reuse observable: if cancellation leaked
// the slot, the follow-up Run would never start.
func TestCancelMidRunReleasesWorker(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	running := make(chan struct{})
	jobs := []Job[int]{
		func(ctx context.Context) (int, error) {
			close(running)
			<-ctx.Done()
			return 0, ctx.Err()
		},
		func(ctx context.Context) (int, error) { return 1, nil },
		func(ctx context.Context) (int, error) { return 2, nil },
	}
	done := make(chan []Result[int], 1)
	go func() { done <- Run(ctx, Options{Parallel: 1}, jobs) }()
	<-running
	cancel()

	var results []Result[int]
	select {
	case results = <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after cancellation: worker slot leaked")
	}
	if len(results) != len(jobs) {
		t.Fatalf("got %d results, want %d", len(results), len(jobs))
	}
	for i, r := range results {
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("job %d error = %v, want context.Canceled", i, r.Err)
		}
		var pe *PanicError
		if errors.As(r.Err, &pe) {
			t.Errorf("job %d cancellation was panic-wrapped: %v", i, r.Err)
		}
	}

	// The pool is batch-scoped: a fresh Run on the same goroutine
	// budget must work immediately after the cancelled one drained.
	out, err := Map(context.Background(), Options{Parallel: 1}, []int{7},
		func(context.Context, int, int) (int, error) { return 42, nil })
	if err != nil || out[0] != 42 {
		t.Fatalf("follow-up run after cancellation: out=%v err=%v", out, err)
	}
}

// TestOnProgressHook verifies the structured progress callback: one
// call per completed job, monotonically increasing done counts, the
// final call at done == total, and failure counting — all without a
// Progress writer attached.
func TestOnProgressHook(t *testing.T) {
	const n = 6
	var mu sync.Mutex
	var calls [][3]int
	opts := Options{
		Parallel: 3,
		OnProgress: func(done, total, failed int) {
			mu.Lock()
			calls = append(calls, [3]int{done, total, failed})
			mu.Unlock()
		},
	}
	jobs := make([]Job[int], n)
	for i := range jobs {
		i := i
		jobs[i] = func(context.Context) (int, error) {
			if i%2 == 1 {
				return 0, errors.New("odd jobs fail")
			}
			return i, nil
		}
	}
	Run(context.Background(), opts, jobs)
	if len(calls) != n {
		t.Fatalf("callback ran %d times, want %d", len(calls), n)
	}
	for i, c := range calls {
		if c[0] != i+1 || c[1] != n {
			t.Errorf("call %d = %v, want done=%d total=%d", i, c, i+1, n)
		}
	}
	if last := calls[n-1]; last[0] != n || last[2] != n/2 {
		t.Errorf("final call = %v, want done=%d failed=%d", last, n, n/2)
	}
}

// TestPerJobTimeout bounds one slow job without touching the others.
func TestPerJobTimeout(t *testing.T) {
	jobs := []Job[string]{
		func(context.Context) (string, error) { return "fast", nil },
		func(ctx context.Context) (string, error) {
			select {
			case <-ctx.Done():
				return "", ctx.Err()
			case <-time.After(5 * time.Second):
				return "slow", nil
			}
		},
	}
	results := Run(context.Background(), Options{Parallel: 2, Timeout: 20 * time.Millisecond}, jobs)
	if results[0].Err != nil || results[0].Value != "fast" {
		t.Fatalf("fast job: %+v", results[0])
	}
	if !errors.Is(results[1].Err, context.DeadlineExceeded) {
		t.Fatalf("slow job error = %v, want deadline exceeded", results[1].Err)
	}
}

// TestProgressLine checks the live progress output reaches the writer
// and ends with the final count.
func TestProgressLine(t *testing.T) {
	var buf bytes.Buffer
	jobs := make([]Job[int], 5)
	for i := range jobs {
		jobs[i] = func(context.Context) (int, error) { return 0, nil }
	}
	Run(context.Background(), Options{Parallel: 2, Progress: &buf, Label: "demo"}, jobs)
	out := buf.String()
	if !strings.Contains(out, "demo: 5/5 jobs") {
		t.Errorf("progress output missing final count:\n%q", out)
	}
	if !strings.HasSuffix(out, "\n") {
		t.Error("progress output does not terminate its line")
	}
}

// TestParallelDefaultsAndEmpty covers Parallel<=0 (GOMAXPROCS) and the
// zero-job sweep.
func TestParallelDefaultsAndEmpty(t *testing.T) {
	if got := Run[int](context.Background(), Options{}, nil); len(got) != 0 {
		t.Fatalf("empty sweep returned %d results", len(got))
	}
	out, err := Map(context.Background(), Options{Parallel: -3}, []int{1, 2, 3},
		func(_ context.Context, v, _ int) (int, error) { return v * 10, nil })
	if err != nil || fmt.Sprint(out) != "[10 20 30]" {
		t.Fatalf("out=%v err=%v", out, err)
	}
}

// TestMapError propagates the lowest-index failure with its index.
func TestMapError(t *testing.T) {
	boom := errors.New("boom")
	_, err := Map(context.Background(), Options{Parallel: 4}, []int{0, 1, 2, 3},
		func(_ context.Context, v, _ int) (int, error) {
			if v >= 2 {
				return 0, fmt.Errorf("point %d: %w", v, boom)
			}
			return v, nil
		})
	if !errors.Is(err, boom) || !strings.Contains(err.Error(), "job 2") {
		t.Fatalf("err = %v, want lowest-index (job 2) failure", err)
	}
}

// TestJobSpansAndErrorLogging proves runJob wraps every job in a
// harness.job span (whose context the job inherits) and reports
// failures through the context's structured logger.
func TestJobSpansAndErrorLogging(t *testing.T) {
	tr := obs.NewTracer(obs.TraceID{}, 64)
	var logBuf bytes.Buffer
	ctx := obs.WithLogger(obs.NewContext(context.Background(), tr),
		obs.NewLogger(&logBuf, "json", slog.LevelInfo))

	results := Run(ctx, Options{Parallel: 2, Label: "fork"}, []Job[int]{
		func(jobCtx context.Context) (int, error) {
			if obs.SpanFromContext(jobCtx) == nil {
				t.Error("job context lacks the harness.job span")
			}
			return 1, nil
		},
		func(context.Context) (int, error) { return 0, errors.New("boom") },
	})
	if results[0].Err != nil || results[1].Err == nil {
		t.Fatalf("results = %+v", results)
	}

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("recorded %d spans, want 2", len(spans))
	}
	byIndex := map[string]obs.Span{}
	for _, sp := range spans {
		if sp.Name != "harness.job" {
			t.Fatalf("span name = %q", sp.Name)
		}
		attrs := map[string]string{}
		for _, a := range sp.Attrs {
			attrs[a.Key] = a.Value
		}
		if attrs["label"] != "fork" {
			t.Errorf("span attrs = %v, want label=fork", attrs)
		}
		byIndex[attrs["index"]] = sp
	}
	if _, ok := byIndex["0"]; !ok {
		t.Errorf("no span for job 0: %v", byIndex)
	}
	if !strings.Contains(logBuf.String(), `"msg":"harness job failed"`) ||
		!strings.Contains(logBuf.String(), `"err":"boom"`) {
		t.Errorf("failure not logged: %s", logBuf.String())
	}
}

// TestJobSpansDisabledAreFree proves the span guard costs nothing when
// the context carries no tracer.
func TestJobSpansDisabledAreFree(t *testing.T) {
	res := Run(context.Background(), Options{Parallel: 1}, []Job[int]{
		func(jobCtx context.Context) (int, error) {
			if obs.SpanFromContext(jobCtx) != nil {
				t.Error("span appeared without a tracer")
			}
			return 7, nil
		},
	})
	if res[0].Err != nil || res[0].Value != 7 {
		t.Fatalf("result = %+v", res[0])
	}
}
