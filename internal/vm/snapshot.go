package vm

import "repro/internal/arch"

// Snapshot support: the manager's process table (with deep-copied page
// tables), frame share counts and PID allocator are captured by value.
// Frame contents are covered by the mem package's copy-on-write
// snapshot; only the OS bookkeeping lives here.

func clonePTNode(n *ptNode) *ptNode {
	c := &ptNode{}
	if n.ptes != nil {
		c.ptes = append([]PTE(nil), n.ptes...)
	}
	for i, child := range n.children {
		if child != nil {
			c.children[i] = clonePTNode(child)
		}
	}
	return c
}

// Clone deep-copies the page table.
func (pt *PageTable) Clone() *PageTable {
	c := &PageTable{mapped: pt.mapped}
	if pt.root.ptes != nil {
		c.root.ptes = append([]PTE(nil), pt.root.ptes...)
	}
	for i, child := range pt.root.children {
		if child != nil {
			c.root.children[i] = clonePTNode(child)
		}
	}
	return c
}

// Snapshot is an immutable capture of a Manager's OS state.
type Snapshot struct {
	procs   map[arch.PID]*PageTable
	refs    map[arch.PPN]int
	nextPID arch.PID
}

// Snapshot captures the manager (page tables deep-copied).
func (mgr *Manager) Snapshot() *Snapshot {
	s := &Snapshot{
		procs:   make(map[arch.PID]*PageTable, len(mgr.procs)),
		refs:    make(map[arch.PPN]int, len(mgr.refs)),
		nextPID: mgr.nextPID,
	}
	for pid, p := range mgr.procs {
		s.procs[pid] = p.Table.Clone()
	}
	for k, v := range mgr.refs {
		s.refs[k] = v
	}
	return s
}

// Restore loads the captured OS state into this manager (typically a
// fresh one wired to a forked Memory), deep-copying the snapshot's page
// tables so concurrent forks stay independent.
func (mgr *Manager) Restore(s *Snapshot) {
	mgr.procs = make(map[arch.PID]*Process, len(s.procs))
	for pid, table := range s.procs {
		mgr.procs[pid] = &Process{PID: pid, Table: table.Clone()}
	}
	mgr.refs = make(map[arch.PPN]int, len(s.refs))
	for k, v := range s.refs {
		mgr.refs[k] = v
	}
	mgr.nextPID = s.nextPID
}
