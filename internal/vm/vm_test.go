package vm

import (
	"math/rand"
	"testing"

	"repro/internal/arch"
	"repro/internal/mem"
)

func newMgr(pages int) *Manager { return NewManager(mem.New(pages)) }

func TestPageTableMapLookupUnmap(t *testing.T) {
	pt := &PageTable{}
	if pt.Lookup(5) != nil {
		t.Fatal("lookup on empty table should return nil")
	}
	pt.Map(5, PTE{Present: true, PPN: 42, Writable: true})
	pte := pt.Lookup(5)
	if pte == nil || pte.PPN != 42 || !pte.Writable {
		t.Fatalf("lookup = %+v", pte)
	}
	if pt.Mapped() != 1 {
		t.Fatalf("Mapped = %d", pt.Mapped())
	}
	old, ok := pt.Unmap(5)
	if !ok || old.PPN != 42 {
		t.Fatal("unmap failed")
	}
	if pt.Lookup(5) != nil || pt.Mapped() != 0 {
		t.Fatal("entry survived unmap")
	}
}

func TestPageTableDoubleMapPanics(t *testing.T) {
	pt := &PageTable{}
	pt.Map(5, PTE{Present: true, PPN: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double map")
		}
	}()
	pt.Map(5, PTE{Present: true, PPN: 2})
}

func TestPageTableSparseVPNs(t *testing.T) {
	// VPNs spread across the full 36-bit VPN space must not collide.
	pt := &PageTable{}
	rng := rand.New(rand.NewSource(11))
	want := map[arch.VPN]arch.PPN{}
	for i := 0; i < 500; i++ {
		vpn := arch.VPN(rng.Int63n(1 << 36))
		if _, dup := want[vpn]; dup {
			continue
		}
		ppn := arch.PPN(i + 1)
		want[vpn] = ppn
		pt.Map(vpn, PTE{Present: true, PPN: ppn})
	}
	for vpn, ppn := range want {
		pte := pt.Lookup(vpn)
		if pte == nil || pte.PPN != ppn {
			t.Fatalf("vpn %#x: got %+v, want ppn %d", uint64(vpn), pte, ppn)
		}
	}
}

func TestPageTableRangeOrderAndCount(t *testing.T) {
	pt := &PageTable{}
	vpns := []arch.VPN{100, 5, 1 << 30, 7, 600}
	for i, v := range vpns {
		pt.Map(v, PTE{Present: true, PPN: arch.PPN(i + 1)})
	}
	var got []arch.VPN
	pt.Range(func(vpn arch.VPN, pte *PTE) bool {
		got = append(got, vpn)
		return true
	})
	if len(got) != len(vpns) {
		t.Fatalf("Range visited %d entries, want %d", len(got), len(vpns))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("Range out of order: %v", got)
		}
	}
}

func TestRangeEarlyStop(t *testing.T) {
	pt := &PageTable{}
	for i := 0; i < 10; i++ {
		pt.Map(arch.VPN(i), PTE{Present: true, PPN: arch.PPN(i + 1)})
	}
	n := 0
	pt.Range(func(arch.VPN, *PTE) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("visited %d, want 3", n)
	}
}

func TestMapAnonAllocatesDistinctFrames(t *testing.T) {
	mgr := newMgr(32)
	p := mgr.NewProcess()
	if err := mgr.MapAnon(p, 10, 4); err != nil {
		t.Fatal(err)
	}
	seen := map[arch.PPN]bool{}
	for i := arch.VPN(10); i < 14; i++ {
		pte := p.Table.Lookup(i)
		if pte == nil || !pte.Writable {
			t.Fatalf("vpn %d not mapped writable", i)
		}
		if seen[pte.PPN] {
			t.Fatal("duplicate frame")
		}
		seen[pte.PPN] = true
		if mgr.Refs(pte.PPN) != 1 {
			t.Fatalf("refs = %d, want 1", mgr.Refs(pte.PPN))
		}
	}
}

func TestMapZero(t *testing.T) {
	mgr := newMgr(8)
	p := mgr.NewProcess()
	mgr.MapZero(p, 0, 3, true)
	for i := arch.VPN(0); i < 3; i++ {
		pte := p.Table.Lookup(i)
		if pte.PPN != mem.ZeroPPN || pte.Writable || !pte.COW || !pte.Overlay {
			t.Fatalf("zero mapping wrong: %+v", pte)
		}
	}
	if mgr.Refs(mem.ZeroPPN) != 3 {
		t.Fatalf("zero refs = %d", mgr.Refs(mem.ZeroPPN))
	}
}

func TestForkSharesAndMarksCOW(t *testing.T) {
	mgr := newMgr(32)
	parent := mgr.NewProcess()
	mgr.MapAnon(parent, 0, 2)
	mgr.WriteBytes(parent, 0, []byte{1, 2, 3})
	before := mgr.Mem.AllocatedPages()
	child := mgr.Fork(parent, false)
	if mgr.Mem.AllocatedPages() != before {
		t.Fatal("fork must not allocate frames")
	}
	for _, p := range []*Process{parent, child} {
		pte := p.Table.Lookup(0)
		if pte.Writable || !pte.COW {
			t.Fatalf("pid %d pte not COW: %+v", p.PID, pte)
		}
	}
	pp := parent.Table.Lookup(0)
	cp := child.Table.Lookup(0)
	if pp.PPN != cp.PPN {
		t.Fatal("fork must share frames")
	}
	if mgr.Refs(pp.PPN) != 2 {
		t.Fatalf("refs = %d, want 2", mgr.Refs(pp.PPN))
	}
	// Child reads parent's data.
	buf := make([]byte, 3)
	mgr.ReadBytes(child, 0, buf)
	if buf[0] != 1 || buf[1] != 2 || buf[2] != 3 {
		t.Fatalf("child read %v", buf)
	}
}

func TestForkOverlayModeSetsOverlayBit(t *testing.T) {
	mgr := newMgr(32)
	parent := mgr.NewProcess()
	mgr.MapAnon(parent, 0, 1)
	child := mgr.Fork(parent, true)
	if !parent.Table.Lookup(0).Overlay || !child.Table.Lookup(0).Overlay {
		t.Fatal("overlay mode not recorded in PTEs")
	}
}

func TestCOWIsolationAfterWrite(t *testing.T) {
	mgr := newMgr(32)
	parent := mgr.NewProcess()
	mgr.MapAnon(parent, 0, 1)
	mgr.WriteBytes(parent, 100, []byte{7})
	child := mgr.Fork(parent, false)

	// Parent writes → its page is copied; child still sees old data.
	if err := mgr.WriteBytes(parent, 100, []byte{9}); err != nil {
		t.Fatal(err)
	}
	var pb, cb [1]byte
	mgr.ReadBytes(parent, 100, pb[:])
	mgr.ReadBytes(child, 100, cb[:])
	if pb[0] != 9 || cb[0] != 7 {
		t.Fatalf("isolation broken: parent %d child %d", pb[0], cb[0])
	}
	// Untouched bytes were copied too.
	mgr.WriteBytes(parent, 50, []byte{1})
	mgr.ReadBytes(child, 50, cb[:])
	if cb[0] != 0 {
		t.Fatal("child dirtied")
	}
}

func TestBreakCOWLastSharerSkipsCopy(t *testing.T) {
	mgr := newMgr(32)
	parent := mgr.NewProcess()
	mgr.MapAnon(parent, 0, 1)
	child := mgr.Fork(parent, false)
	oldPPN := parent.Table.Lookup(0).PPN

	// Parent breaks first → copy.
	ppn1, copied, err := mgr.BreakCOW(parent, 0)
	if err != nil || !copied || ppn1 == oldPPN {
		t.Fatalf("first break: ppn=%d copied=%v err=%v", ppn1, copied, err)
	}
	// Child is now sole sharer → no copy.
	ppn2, copied, err := mgr.BreakCOW(child, 0)
	if err != nil || copied || ppn2 != oldPPN {
		t.Fatalf("second break: ppn=%d copied=%v err=%v", ppn2, copied, err)
	}
}

func TestBreakCOWErrors(t *testing.T) {
	mgr := newMgr(8)
	p := mgr.NewProcess()
	if _, _, err := mgr.BreakCOW(p, 0); err == nil {
		t.Fatal("expected error on unmapped page")
	}
	mgr.MapAnon(p, 0, 1)
	if _, _, err := mgr.BreakCOW(p, 0); err == nil {
		t.Fatal("expected error on non-COW page")
	}
}

func TestExitReleasesFrames(t *testing.T) {
	mgr := newMgr(32)
	parent := mgr.NewProcess()
	mgr.MapAnon(parent, 0, 3)
	child := mgr.Fork(parent, false)
	base := mgr.Mem.AllocatedPages()
	mgr.Exit(child)
	if mgr.Mem.AllocatedPages() != base {
		t.Fatal("exit of sharing child must not free shared frames")
	}
	mgr.Exit(parent)
	if mgr.Mem.AllocatedPages() != 1 { // zero page only
		t.Fatalf("allocated after both exits = %d, want 1", mgr.Mem.AllocatedPages())
	}
}

func TestWriteToReadOnlyNonCOWFails(t *testing.T) {
	mgr := newMgr(8)
	p := mgr.NewProcess()
	ppn, _ := mgr.Mem.Alloc()
	p.Table.Map(0, PTE{Present: true, Writable: false, PPN: ppn})
	mgr.refs[ppn] = 1
	if err := mgr.WriteBytes(p, 0, []byte{1}); err == nil {
		t.Fatal("expected protection fault")
	}
}

func TestReadWriteAcrossPageBoundary(t *testing.T) {
	mgr := newMgr(32)
	p := mgr.NewProcess()
	mgr.MapAnon(p, 0, 2)
	data := []byte{1, 2, 3, 4}
	va := arch.VirtAddr(arch.PageSize - 2)
	if err := mgr.WriteBytes(p, va, data); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	mgr.ReadBytes(p, va, buf)
	for i := range data {
		if buf[i] != data[i] {
			t.Fatalf("cross-page round trip: %v", buf)
		}
	}
}

func TestForkOfForkChains(t *testing.T) {
	mgr := newMgr(64)
	p1 := mgr.NewProcess()
	mgr.MapAnon(p1, 0, 1)
	mgr.WriteBytes(p1, 0, []byte{5})
	p2 := mgr.Fork(p1, false)
	p3 := mgr.Fork(p2, false)
	ppn := p1.Table.Lookup(0).PPN
	if mgr.Refs(ppn) != 3 {
		t.Fatalf("refs = %d, want 3", mgr.Refs(ppn))
	}
	mgr.WriteBytes(p2, 0, []byte{6})
	var b [1]byte
	mgr.ReadBytes(p1, 0, b[:])
	if b[0] != 5 {
		t.Fatal("p1 corrupted")
	}
	mgr.ReadBytes(p3, 0, b[:])
	if b[0] != 5 {
		t.Fatal("p3 corrupted")
	}
	mgr.ReadBytes(p2, 0, b[:])
	if b[0] != 6 {
		t.Fatal("p2 lost its write")
	}
}
