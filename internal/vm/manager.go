package vm

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/mem"
)

// Process is one address space with a PID.
type Process struct {
	PID   arch.PID
	Table *PageTable
}

// Manager is the OS memory-management layer: it owns the frame pool,
// the process table, and per-frame share counts for copy-on-write.
type Manager struct {
	Mem     *mem.Memory
	procs   map[arch.PID]*Process
	refs    map[arch.PPN]int
	nextPID arch.PID
}

// NewManager creates a manager over the given memory.
func NewManager(m *mem.Memory) *Manager {
	return &Manager{
		Mem:     m,
		procs:   make(map[arch.PID]*Process),
		refs:    make(map[arch.PPN]int),
		nextPID: 1,
	}
}

// NewProcess creates an empty process.
func (mgr *Manager) NewProcess() *Process {
	p := &Process{PID: mgr.nextPID, Table: &PageTable{}}
	mgr.nextPID++
	mgr.procs[p.PID] = p
	return p
}

// Process looks up a process by PID.
func (mgr *Manager) Process(pid arch.PID) (*Process, bool) {
	p, ok := mgr.procs[pid]
	return p, ok
}

// Refs returns the share count of a frame (0 for unmapped frames).
func (mgr *Manager) Refs(ppn arch.PPN) int { return mgr.refs[ppn] }

// AddRef increments a frame's share count; callers use it when they copy
// a mapping into another address space outside Fork.
func (mgr *Manager) AddRef(ppn arch.PPN) {
	if mgr.refs[ppn] == 0 && ppn != mem.ZeroPPN {
		panic(fmt.Sprintf("vm: AddRef on unreferenced frame %#x", uint64(ppn)))
	}
	mgr.refs[ppn]++
}

// MapAnon maps n fresh zeroed frames starting at vpn, writable.
func (mgr *Manager) MapAnon(p *Process, vpn arch.VPN, n int) error {
	for i := 0; i < n; i++ {
		ppn, err := mgr.Mem.Alloc()
		if err != nil {
			return fmt.Errorf("vm: map anon at vpn %#x: %w", uint64(vpn)+uint64(i), err)
		}
		p.Table.Map(vpn+arch.VPN(i), PTE{Present: true, Writable: true, PPN: ppn})
		mgr.refs[ppn] = 1
	}
	return nil
}

// MapZero maps n virtual pages to the shared zero page. overlay selects
// whether writes should go to an overlay (the sparse-data-structure
// representation of §5.2) instead of breaking COW with a copy.
func (mgr *Manager) MapZero(p *Process, vpn arch.VPN, n int, overlay bool) {
	for i := 0; i < n; i++ {
		p.Table.Map(vpn+arch.VPN(i), PTE{
			Present: true, Writable: false, COW: true, Overlay: overlay, PPN: mem.ZeroPPN,
		})
		mgr.refs[mem.ZeroPPN]++
	}
}

// Unmap removes a mapping and releases the frame when its share count
// drops to zero.
func (mgr *Manager) Unmap(p *Process, vpn arch.VPN) error {
	pte, ok := p.Table.Unmap(vpn)
	if !ok {
		return fmt.Errorf("vm: unmap of unmapped vpn %#x", uint64(vpn))
	}
	mgr.release(pte.PPN)
	return nil
}

func (mgr *Manager) release(ppn arch.PPN) {
	mgr.refs[ppn]--
	if mgr.refs[ppn] > 0 {
		return
	}
	delete(mgr.refs, ppn)
	if ppn != mem.ZeroPPN {
		mgr.Mem.Free(ppn)
	}
}

// Fork clones parent into a new process. Every present page is shared;
// writable pages are downgraded to copy-on-write in BOTH address spaces.
// overlayMode marks the shared pages for overlay-on-write instead of
// conventional copy-on-write — this is the only OS-visible difference
// between the two mechanisms (§2.2).
func (mgr *Manager) Fork(parent *Process, overlayMode bool) *Process {
	child := mgr.NewProcess()
	parent.Table.Range(func(vpn arch.VPN, pte *PTE) bool {
		if pte.Writable || pte.COW {
			pte.Writable = false
			pte.COW = true
			pte.Overlay = pte.Overlay || overlayMode
		}
		child.Table.Map(vpn, *pte)
		mgr.refs[pte.PPN]++
		return true
	})
	return child
}

// BreakCOW resolves a conventional copy-on-write fault on (p, vpn): if the
// frame is still shared it allocates a new frame and copies the page;
// if this process is the last sharer it simply re-enables writes. It
// returns the (possibly new) PPN and whether a full page copy happened.
func (mgr *Manager) BreakCOW(p *Process, vpn arch.VPN) (arch.PPN, bool, error) {
	pte := p.Table.Lookup(vpn)
	if pte == nil {
		return 0, false, fmt.Errorf("vm: COW fault on unmapped vpn %#x", uint64(vpn))
	}
	if !pte.COW {
		return 0, false, fmt.Errorf("vm: COW fault on non-COW vpn %#x", uint64(vpn))
	}
	if mgr.refs[pte.PPN] == 1 && pte.PPN != mem.ZeroPPN {
		pte.COW = false
		pte.Writable = true
		return pte.PPN, false, nil
	}
	newPPN, err := mgr.Mem.Alloc()
	if err != nil {
		return 0, false, fmt.Errorf("vm: COW copy: %w", err)
	}
	mgr.Mem.CopyPage(newPPN, pte.PPN)
	mgr.release(pte.PPN)
	pte.PPN = newPPN
	pte.COW = false
	pte.Writable = true
	mgr.refs[newPPN] = 1
	return newPPN, true, nil
}

// ShareFrame remaps (p, vpn) onto an existing frame, releasing the page's
// old frame. The page becomes read-only copy-on-write; overlay selects
// overlay-on-write semantics for future writes. Fine-grained
// deduplication (§5.3.1) uses this to fold near-duplicate pages onto a
// single base page.
func (mgr *Manager) ShareFrame(p *Process, vpn arch.VPN, target arch.PPN, overlay bool) error {
	pte := p.Table.Lookup(vpn)
	if pte == nil {
		return fmt.Errorf("vm: ShareFrame on unmapped vpn %#x", uint64(vpn))
	}
	if mgr.refs[target] == 0 {
		return fmt.Errorf("vm: ShareFrame onto unreferenced frame %#x", uint64(target))
	}
	if pte.PPN == target {
		return nil
	}
	mgr.release(pte.PPN)
	pte.PPN = target
	pte.COW = true
	pte.Writable = false
	pte.Overlay = overlay
	mgr.refs[target]++
	return nil
}

// ReplaceFrame remaps vpn to a freshly allocated private frame (already
// populated by the caller), releasing the old frame's share. The page
// becomes writable and non-COW. Used by overlay promotion (§4.3.4).
func (mgr *Manager) ReplaceFrame(p *Process, vpn arch.VPN, newPPN arch.PPN) error {
	pte := p.Table.Lookup(vpn)
	if pte == nil {
		return fmt.Errorf("vm: ReplaceFrame on unmapped vpn %#x", uint64(vpn))
	}
	mgr.release(pte.PPN)
	pte.PPN = newPPN
	pte.COW = false
	pte.Writable = true
	mgr.refs[newPPN] = 1
	return nil
}

// Exit tears down a process, releasing every frame it maps.
func (mgr *Manager) Exit(p *Process) {
	p.Table.Range(func(vpn arch.VPN, pte *PTE) bool {
		mgr.release(pte.PPN)
		return true
	})
	delete(mgr.procs, p.PID)
	p.Table = &PageTable{}
}

// MappedPages counts the present PTEs across every live process —
// the page-table footprint translation backends charge metadata for.
func (mgr *Manager) MappedPages() int {
	n := 0
	for _, p := range mgr.procs {
		p.Table.Range(func(arch.VPN, *PTE) bool {
			n++
			return true
		})
	}
	return n
}

// ReadBytes copies length bytes starting at va out of the process's
// memory through the page tables (no overlays; internal/core layers
// overlay semantics on top).
func (mgr *Manager) ReadBytes(p *Process, va arch.VirtAddr, buf []byte) error {
	for n := 0; n < len(buf); {
		a := va + arch.VirtAddr(n)
		pte := p.Table.Lookup(a.Page())
		if pte == nil {
			return fmt.Errorf("vm: read fault at %#x", uint64(a))
		}
		span := int(arch.PageSize - a.Offset())
		if span > len(buf)-n {
			span = len(buf) - n
		}
		mgr.Mem.ReadSpan(pte.PPN, a.Offset(), buf[n:n+span])
		n += span
	}
	return nil
}

// WriteBytes writes through the page tables, resolving COW faults with
// conventional page copies. It is the no-overlay baseline write path.
func (mgr *Manager) WriteBytes(p *Process, va arch.VirtAddr, data []byte) error {
	for n := 0; n < len(data); {
		a := va + arch.VirtAddr(n)
		pte := p.Table.Lookup(a.Page())
		if pte == nil {
			return fmt.Errorf("vm: write fault at %#x", uint64(a))
		}
		if !pte.Writable {
			if !pte.COW {
				return fmt.Errorf("vm: write to read-only page %#x", uint64(a.Page()))
			}
			if _, _, err := mgr.BreakCOW(p, a.Page()); err != nil {
				return err
			}
			pte = p.Table.Lookup(a.Page())
		}
		span := int(arch.PageSize - a.Offset())
		if span > len(data)-n {
			span = len(data) - n
		}
		mgr.Mem.WriteSpan(pte.PPN, a.Offset(), data[n:n+span])
		n += span
	}
	return nil
}
