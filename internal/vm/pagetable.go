// Package vm implements the baseline virtual-memory substrate the overlay
// framework plugs into: 4-level radix page tables, per-process address
// spaces, anonymous and zero-page mappings, and fork with copy-on-write
// sharing. The overlay framework (internal/core) leaves all of this
// untouched — exactly the paper's point that overlays "largely retain the
// structure of the existing virtual memory framework" — and only consults
// the OverlayEnabled/COW bits the OS sets here.
package vm

import (
	"fmt"

	"repro/internal/arch"
)

// Page-table geometry: 48-bit virtual addresses, 4 levels of 9 bits.
const (
	ptLevels  = 4
	ptBits    = 9
	ptFanout  = 1 << ptBits
	ptIdxMask = ptFanout - 1
)

// PTE is a leaf page-table entry. The overlay framework adds no fields to
// it beyond the two OS-visible mode bits.
type PTE struct {
	Present  bool
	Writable bool
	COW      bool // copy-on-write: writes must not hit PPN in place
	Overlay  bool // OS opted this page into overlay-on-write / overlays
	Shadow   bool // overlay holds fine-grained metadata, not data (§5.3.4)
	PPN      arch.PPN
}

type ptNode struct {
	children [ptFanout]*ptNode // nil at leaf level
	ptes     []PTE             // non-nil only at leaf level
}

// PageTable is a 4-level radix table mapping VPN → PTE.
type PageTable struct {
	root     ptNode
	mapped   int
	walkCost int // interior nodes touched by the last Walk (test aid)
}

func levelIndex(vpn arch.VPN, level int) int {
	shift := uint(ptBits * (ptLevels - 1 - level))
	return int(uint64(vpn)>>shift) & ptIdxMask
}

// Lookup returns a pointer to the PTE for vpn, or nil if no leaf exists.
func (pt *PageTable) Lookup(vpn arch.VPN) *PTE {
	n := &pt.root
	pt.walkCost = 0
	for level := 0; level < ptLevels-1; level++ {
		pt.walkCost++
		n = n.children[levelIndex(vpn, level)]
		if n == nil {
			return nil
		}
	}
	if n.ptes == nil {
		return nil
	}
	pte := &n.ptes[levelIndex(vpn, ptLevels-1)]
	if !pte.Present {
		return nil
	}
	return pte
}

// Ensure returns the PTE slot for vpn, materialising interior nodes.
func (pt *PageTable) Ensure(vpn arch.VPN) *PTE {
	n := &pt.root
	for level := 0; level < ptLevels-1; level++ {
		idx := levelIndex(vpn, level)
		if n.children[idx] == nil {
			n.children[idx] = &ptNode{}
			if level == ptLevels-2 {
				n.children[idx].ptes = make([]PTE, ptFanout)
			}
		}
		n = n.children[idx]
	}
	return &n.ptes[levelIndex(vpn, ptLevels-1)]
}

// Map installs a mapping; it panics on double-map (an OS bug upstream).
func (pt *PageTable) Map(vpn arch.VPN, pte PTE) {
	slot := pt.Ensure(vpn)
	if slot.Present {
		panic(fmt.Sprintf("vm: vpn %#x already mapped", uint64(vpn)))
	}
	if !pte.Present {
		panic("vm: mapping a non-present PTE")
	}
	*slot = pte
	pt.mapped++
}

// Unmap removes the mapping and returns the old PTE; ok=false if absent.
func (pt *PageTable) Unmap(vpn arch.VPN) (PTE, bool) {
	pte := pt.Lookup(vpn)
	if pte == nil {
		return PTE{}, false
	}
	old := *pte
	*pte = PTE{}
	pt.mapped--
	return old, true
}

// Mapped returns the number of present leaf entries.
func (pt *PageTable) Mapped() int { return pt.mapped }

// Range calls fn for every present mapping in ascending VPN order within
// the materialised subtrees.
func (pt *PageTable) Range(fn func(vpn arch.VPN, pte *PTE) bool) {
	var walk func(n *ptNode, prefix uint64, level int) bool
	walk = func(n *ptNode, prefix uint64, level int) bool {
		if n.ptes != nil {
			for i := range n.ptes {
				if n.ptes[i].Present {
					vpn := arch.VPN(prefix<<ptBits | uint64(i))
					if !fn(vpn, &n.ptes[i]) {
						return false
					}
				}
			}
			return true
		}
		for i, c := range n.children {
			if c != nil {
				if !walk(c, prefix<<ptBits|uint64(i), level+1) {
					return false
				}
			}
		}
		return true
	}
	walk(&pt.root, 0, 0)
}
