package obs

import (
	"net/http"
	"testing"
)

func TestPropagateRoundTrip(t *testing.T) {
	sc := SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID()}
	h := make(http.Header)
	PropagateTraceparent(h, sc)
	got, ok := TraceparentFromHeader(h)
	if !ok || got != sc {
		t.Fatalf("round trip = %+v ok=%v, want %+v", got, ok, sc)
	}
}

func TestPropagateInvalidContextWritesNothing(t *testing.T) {
	h := make(http.Header)
	PropagateTraceparent(h, SpanContext{})
	if v := h.Get(TraceparentHeader); v != "" {
		t.Fatalf("invalid context wrote traceparent %q", v)
	}
	if _, ok := TraceparentFromHeader(h); ok {
		t.Fatalf("absent header parsed as valid context")
	}
}

func TestTraceparentFromHeaderRejectsMalformed(t *testing.T) {
	for _, v := range []string{
		"",
		"00-zz-zz-00",
		"01-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", // unknown version
		"00-00000000000000000000000000000000-b7ad6b7169203331-01", // zero trace ID
	} {
		h := make(http.Header)
		if v != "" {
			h.Set(TraceparentHeader, v)
		}
		if sc, ok := TraceparentFromHeader(h); ok {
			t.Errorf("header %q parsed as valid context %+v", v, sc)
		}
	}
}
