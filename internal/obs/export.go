package obs

// Span export formats: a nested JSON tree (the job service's trace
// endpoint), a compact JSONL span log (one object per line, grep- and
// jq-friendly), and Chrome trace_event records that merge with the
// simulator's event ring into one document for chrome://tracing and
// Perfetto. See docs/OBSERVABILITY.md for the span taxonomy.

import (
	"encoding/json"
	"io"
	"sort"
	"time"
)

// SpanNode is one span rendered for the nested trace document.
type SpanNode struct {
	Name     string            `json:"name"`
	SpanID   string            `json:"span_id"`
	ParentID string            `json:"parent_span_id,omitempty"`
	StartUS  int64             `json:"start_us"` // offset from the trace's first span
	DurUS    int64             `json:"dur_us"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Children []*SpanNode       `json:"children,omitempty"`
}

// BuildTree nests the spans by parentage: a span whose parent is
// absent from the set (a trace root, or a child of a remote span)
// becomes a top level node. Siblings are ordered by start time, then
// name; start offsets are microseconds since the earliest span start.
func BuildTree(spans []Span) []*SpanNode {
	if len(spans) == 0 {
		return nil
	}
	base := spans[0].Start
	for _, sp := range spans[1:] {
		if sp.Start.Before(base) {
			base = sp.Start
		}
	}
	nodes := make(map[SpanID]*SpanNode, len(spans))
	for i := range spans {
		nodes[spans[i].ID] = spanNode(&spans[i], base)
	}
	var roots []*SpanNode
	for i := range spans {
		sp := &spans[i]
		if parent, ok := nodes[sp.Parent]; ok && !sp.Parent.IsZero() && sp.Parent != sp.ID {
			parent.Children = append(parent.Children, nodes[sp.ID])
		} else {
			roots = append(roots, nodes[sp.ID])
		}
	}
	var sortNodes func(ns []*SpanNode)
	sortNodes = func(ns []*SpanNode) {
		sort.Slice(ns, func(i, j int) bool {
			if ns[i].StartUS != ns[j].StartUS {
				return ns[i].StartUS < ns[j].StartUS
			}
			return ns[i].Name < ns[j].Name
		})
		for _, n := range ns {
			sortNodes(n.Children)
		}
	}
	sortNodes(roots)
	return roots
}

func spanNode(sp *Span, base time.Time) *SpanNode {
	n := &SpanNode{
		Name:    sp.Name,
		SpanID:  sp.ID.String(),
		StartUS: sp.Start.Sub(base).Microseconds(),
		DurUS:   sp.Dur.Microseconds(),
	}
	if !sp.Parent.IsZero() {
		n.ParentID = sp.Parent.String()
	}
	if len(sp.Attrs) > 0 {
		n.Attrs = make(map[string]string, len(sp.Attrs))
		for _, a := range sp.Attrs {
			n.Attrs[a.Key] = a.Value
		}
	}
	return n
}

// spanLine is the JSONL form of one span (docs/OBSERVABILITY.md "Log
// and span schema").
type spanLine struct {
	TraceID  string            `json:"trace_id"`
	SpanID   string            `json:"span_id"`
	ParentID string            `json:"parent_span_id,omitempty"`
	Name     string            `json:"name"`
	Start    time.Time         `json:"start"`
	DurUS    int64             `json:"dur_us"`
	Attrs    map[string]string `json:"attrs,omitempty"`
}

// WriteSpansJSONL renders the spans one compact JSON object per line.
func WriteSpansJSONL(w io.Writer, spans []Span) error {
	enc := json.NewEncoder(w)
	for i := range spans {
		sp := &spans[i]
		line := spanLine{
			TraceID: sp.Trace.String(),
			SpanID:  sp.ID.String(),
			Name:    sp.Name,
			Start:   sp.Start,
			DurUS:   sp.Dur.Microseconds(),
		}
		if !sp.Parent.IsZero() {
			line.ParentID = sp.Parent.String()
		}
		if len(sp.Attrs) > 0 {
			line.Attrs = make(map[string]string, len(sp.Attrs))
			for _, a := range sp.Attrs {
				line.Attrs[a.Key] = a.Value
			}
		}
		if err := enc.Encode(line); err != nil {
			return err
		}
	}
	return nil
}

// chromeSpan is one complete ("ph":"X") trace_event record.
type chromeSpan struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	Ts   int64             `json:"ts"` // µs since the trace's first span
	Dur  int64             `json:"dur"`
	Pid  uint64            `json:"pid"`
	Tid  uint64            `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// ChromeSpanPid is the trace_event pid the span track uses. The
// simulator's event ring numbers its tracks from 1, so pid 0 keeps the
// host-span track separate when the two are merged into one document.
const ChromeSpanPid = 0

// ChromeRecords renders the spans as Chrome trace_event records:
// complete events ("ph":"X") on the host-span track, timestamps in
// microseconds since the trace's first span, plus a process_name
// metadata record labelling the track. Merge with the simulator ring's
// records via sim.WriteChromeTrace — the tracks are separate processes
// in the viewer because span time is host wall time while simulator
// time is cycles.
func ChromeRecords(spans []Span) ([]json.RawMessage, error) {
	if len(spans) == 0 {
		return nil, nil
	}
	base := spans[0].Start
	for _, sp := range spans[1:] {
		if sp.Start.Before(base) {
			base = sp.Start
		}
	}
	meta := map[string]interface{}{
		"name": "process_name",
		"ph":   "M",
		"pid":  uint64(ChromeSpanPid),
		"tid":  uint64(0),
		"args": map[string]string{"name": "host spans (µs wall)"},
	}
	raw, err := json.Marshal(meta)
	if err != nil {
		return nil, err
	}
	records := []json.RawMessage{raw}
	for i := range spans {
		sp := &spans[i]
		ce := chromeSpan{
			Name: sp.Name,
			Cat:  "span",
			Ph:   "X",
			Ts:   sp.Start.Sub(base).Microseconds(),
			Dur:  sp.Dur.Microseconds(),
			Pid:  ChromeSpanPid,
			Tid:  0,
		}
		if len(sp.Attrs) > 0 {
			ce.Args = make(map[string]string, len(sp.Attrs))
			for _, a := range sp.Attrs {
				ce.Args[a.Key] = a.Value
			}
		}
		raw, err := json.Marshal(ce)
		if err != nil {
			return nil, err
		}
		records = append(records, raw)
	}
	return records, nil
}
