// Package obs is the observability layer: a zero-dependency span
// tracer and structured-logging helpers threaded through every unit of
// work in the system — a CLI invocation, an HTTP job, a harness
// sub-job, an experiment phase. Each unit opens a Span carrying a
// W3C-style trace context (trace ID + parent span ID), recorded into a
// lock-free bounded span store and exported as Chrome trace_event JSON
// (mergeable with the simulator's event ring), as a compact JSONL span
// log, and as a nested JSON tree for the job service's trace endpoint.
//
// Spans wrap host-side work at experiment/phase granularity only —
// never per-event engine code — so the simulated-cycle hot path stays
// allocation-free and every simulated metric is bit-identical whether
// tracing is on or off. When no Tracer is installed in a context,
// StartSpan returns a nil *Span whose methods no-op; the disabled path
// costs one context lookup and zero allocations.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync/atomic"
	"time"
)

// TraceID identifies one end-to-end trace (16 bytes, hex on the wire),
// shared by every span of one traced unit of work and by all log
// records it emits.
type TraceID [16]byte

// IsZero reports whether the ID is the invalid all-zero value.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the ID as 32 lowercase hex digits.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// SpanID identifies one span within a trace (8 bytes, hex on the wire).
type SpanID [8]byte

// IsZero reports whether the ID is the invalid all-zero value.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the ID as 16 lowercase hex digits.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// NewTraceID returns a fresh random non-zero trace ID.
func NewTraceID() TraceID {
	var t TraceID
	for t.IsZero() {
		randRead(t[:])
	}
	return t
}

// NewSpanID returns a fresh random non-zero span ID.
func NewSpanID() SpanID {
	var s SpanID
	for s.IsZero() {
		randRead(s[:])
	}
	return s
}

// randRead fills b with cryptographically random bytes. crypto/rand
// documents that Read never fails on supported platforms.
func randRead(b []byte) {
	if _, err := rand.Read(b); err != nil {
		panic("obs: crypto/rand failed: " + err.Error())
	}
}

// SpanContext is the propagatable identity of a span: what crosses
// process boundaries in a traceparent header.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
}

// Valid reports whether the context carries a usable trace ID.
func (sc SpanContext) Valid() bool { return !sc.TraceID.IsZero() }

// Traceparent renders the context as a W3C traceparent header value:
// version 00, sampled flag set.
func (sc SpanContext) Traceparent() string {
	return "00-" + sc.TraceID.String() + "-" + sc.SpanID.String() + "-01"
}

// ParseTraceparent parses a W3C traceparent header value
// ("00-<32 hex>-<16 hex>-<2 hex>"). It returns ok=false for anything
// malformed, for an unknown version, and for all-zero trace or span
// IDs — callers treat a bad header as absent, per the spec.
func ParseTraceparent(s string) (SpanContext, bool) {
	var sc SpanContext
	if len(s) < 55 || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return sc, false
	}
	if s[0] != '0' || s[1] != '0' || len(s) != 55 {
		// Only version 00 (fixed length) is understood.
		return sc, false
	}
	if _, err := hex.Decode(sc.TraceID[:], []byte(s[3:35])); err != nil {
		return SpanContext{}, false
	}
	if _, err := hex.Decode(sc.SpanID[:], []byte(s[36:52])); err != nil {
		return SpanContext{}, false
	}
	var flags [1]byte
	if _, err := hex.Decode(flags[:], []byte(s[53:55])); err != nil {
		return SpanContext{}, false
	}
	if sc.TraceID.IsZero() || sc.SpanID.IsZero() {
		return SpanContext{}, false
	}
	return sc, true
}

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one timed unit of work. Fields are written by the goroutine
// that started the span and published to the tracer's store on End;
// a nil *Span (tracing disabled) no-ops every method.
type Span struct {
	Name   string
	Trace  TraceID
	ID     SpanID
	Parent SpanID // zero for a trace root
	Start  time.Time
	Dur    time.Duration
	Attrs  []Attr

	tracer *Tracer
	ended  bool
}

// SetAttr annotates the span. No-op on a nil span, so callers need not
// guard — but should skip expensive value formatting when the span is
// nil.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: value})
}

// Context returns the span's propagatable identity (zero when nil).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.Trace, SpanID: s.ID}
}

// End stamps the duration and publishes the span to its tracer's
// store. Safe on a nil span; a second End is a no-op.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	s.Dur = time.Since(s.Start)
	s.tracer.record(*s)
}

// DefaultSpanCap is the default per-tracer span capacity.
const DefaultSpanCap = 4096

// Tracer collects the finished spans of one trace into a lock-free
// bounded store: each span claims a slot with one atomic increment and
// publishes it with one atomic flag store, so concurrent harness
// workers record without contention and readers (the trace endpoint,
// exports) snapshot without stopping them. A full store drops further
// spans and counts them; a nil *Tracer is a disabled tracer.
type Tracer struct {
	traceID TraceID
	slots   []Span
	ready   []atomic.Uint32
	next    atomic.Uint64
	dropped atomic.Uint64
}

// NewTracer builds a tracer for one trace. A zero traceID draws a
// fresh random one; capacity <= 0 selects DefaultSpanCap.
func NewTracer(traceID TraceID, capacity int) *Tracer {
	if traceID.IsZero() {
		traceID = NewTraceID()
	}
	if capacity <= 0 {
		capacity = DefaultSpanCap
	}
	return &Tracer{
		traceID: traceID,
		slots:   make([]Span, capacity),
		ready:   make([]atomic.Uint32, capacity),
	}
}

// TraceID returns the trace this tracer collects (zero when nil).
func (t *Tracer) TraceID() TraceID {
	if t == nil {
		return TraceID{}
	}
	return t.traceID
}

// StartSpan opens a span as a child of parent (a zero parent starts a
// trace root; a remote parent from ParseTraceparent links the root
// under the caller's span). Nil-safe: a nil tracer returns a nil span.
func (t *Tracer) StartSpan(parent SpanContext, name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{
		Name:   name,
		Trace:  t.traceID,
		ID:     NewSpanID(),
		Parent: parent.SpanID,
		Start:  time.Now(),
		tracer: t,
	}
}

// record publishes one finished span into the store.
func (t *Tracer) record(sp Span) {
	if t == nil {
		return
	}
	i := t.next.Add(1) - 1
	if i >= uint64(len(t.slots)) {
		t.dropped.Add(1)
		return
	}
	sp.tracer = nil
	t.slots[i] = sp
	t.ready[i].Store(1)
}

// Dropped reports how many spans the full store discarded.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// Spans snapshots the finished spans in publication order. Safe to
// call while other goroutines are still recording; an in-flight,
// not-yet-published slot is skipped.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	n := t.next.Load()
	if n > uint64(len(t.slots)) {
		n = uint64(len(t.slots))
	}
	out := make([]Span, 0, n)
	for i := uint64(0); i < n; i++ {
		if t.ready[i].Load() == 1 {
			out = append(out, t.slots[i])
		}
	}
	return out
}

// Context plumbing. The tracer and the active span ride the context so
// any layer (harness, experiment phases) can open child spans without
// new parameters; absent keys mean tracing is disabled there.

type ctxKey int

const (
	tracerKey ctxKey = iota
	spanKey
	loggerKey
)

// NewContext installs the tracer. A nil tracer returns ctx unchanged.
func NewContext(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerKey, t)
}

// FromContext returns the installed tracer, or nil.
func FromContext(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey).(*Tracer)
	return t
}

// ContextWithSpan installs sp as the active span (the parent of the
// next StartSpan). A nil span returns ctx unchanged.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey, sp)
}

// SpanFromContext returns the active span, or nil.
func SpanFromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanKey).(*Span)
	return sp
}

// StartSpan opens a child of the context's active span on the
// context's tracer and returns a context carrying the new span. With
// no tracer installed it returns (ctx, nil) without allocating — the
// disabled path of every instrumented call site.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	t, _ := ctx.Value(tracerKey).(*Tracer)
	if t == nil {
		return ctx, nil
	}
	sp := t.StartSpan(SpanFromContext(ctx).Context(), name)
	return context.WithValue(ctx, spanKey, sp), sp
}
