package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// buildTrace fabricates job → (queue.wait, run → harness.job) with
// deterministic timing.
func buildTrace(t *testing.T) (*Tracer, []Span) {
	t.Helper()
	tr := NewTracer(TraceID{}, 16)
	base := time.Now()
	root := tr.StartSpan(SpanContext{}, "job")
	root.Start = base
	qs := tr.StartSpan(root.Context(), "queue.wait")
	qs.Start = base
	run := tr.StartSpan(root.Context(), "run")
	run.Start = base.Add(5 * time.Millisecond)
	hj := tr.StartSpan(run.Context(), "harness.job")
	hj.Start = base.Add(6 * time.Millisecond)
	hj.SetAttr("label", "fork")
	for _, sp := range []*Span{qs, hj, run, root} {
		sp.End()
	}
	return tr, tr.Spans()
}

func TestBuildTreeNesting(t *testing.T) {
	_, spans := buildTrace(t)
	roots := BuildTree(spans)
	if len(roots) != 1 || roots[0].Name != "job" {
		t.Fatalf("roots = %+v, want single job root", roots)
	}
	job := roots[0]
	if len(job.Children) != 2 {
		t.Fatalf("job has %d children, want 2 (queue.wait, run)", len(job.Children))
	}
	// Siblings ordered by start offset: queue.wait (0) before run (5ms).
	if job.Children[0].Name != "queue.wait" || job.Children[1].Name != "run" {
		t.Fatalf("children = %q, %q", job.Children[0].Name, job.Children[1].Name)
	}
	run := job.Children[1]
	if run.StartUS != 5000 {
		t.Fatalf("run start offset = %dµs, want 5000", run.StartUS)
	}
	if len(run.Children) != 1 || run.Children[0].Name != "harness.job" {
		t.Fatalf("run children = %+v", run.Children)
	}
	if run.Children[0].Attrs["label"] != "fork" {
		t.Fatalf("harness.job attrs = %+v", run.Children[0].Attrs)
	}
	if job.Children[0].ParentID != job.SpanID {
		t.Fatalf("queue.wait parent_span_id = %q, want %q",
			job.Children[0].ParentID, job.SpanID)
	}
}

func TestBuildTreeOrphansBecomeRoots(t *testing.T) {
	tr := NewTracer(TraceID{}, 8)
	// Parent of a remote span that is not in the set.
	remote := SpanContext{TraceID: tr.TraceID(), SpanID: NewSpanID()}
	tr.StartSpan(remote, "job").End()
	roots := BuildTree(tr.Spans())
	if len(roots) != 1 || roots[0].Name != "job" {
		t.Fatalf("remote-parented span did not surface as a root: %+v", roots)
	}
	if roots[0].ParentID != remote.SpanID.String() {
		t.Fatalf("root keeps parent_span_id = %q, want remote %s",
			roots[0].ParentID, remote.SpanID)
	}
	if BuildTree(nil) != nil {
		t.Fatalf("BuildTree(nil) != nil")
	}
}

func TestWriteSpansJSONL(t *testing.T) {
	tr, spans := buildTrace(t)
	var buf bytes.Buffer
	if err := WriteSpansJSONL(&buf, spans); err != nil {
		t.Fatalf("WriteSpansJSONL: %v", err)
	}
	sc := bufio.NewScanner(&buf)
	var names []string
	for sc.Scan() {
		var line struct {
			TraceID string `json:"trace_id"`
			SpanID  string `json:"span_id"`
			Name    string `json:"name"`
			DurUS   *int64 `json:"dur_us"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		if line.TraceID != tr.TraceID().String() || line.SpanID == "" || line.DurUS == nil {
			t.Fatalf("line %q lacks ids/duration", sc.Text())
		}
		names = append(names, line.Name)
	}
	if len(names) != 4 {
		t.Fatalf("wrote %d lines, want 4 (%v)", len(names), names)
	}
}

func TestChromeRecords(t *testing.T) {
	_, spans := buildTrace(t)
	records, err := ChromeRecords(spans)
	if err != nil {
		t.Fatalf("ChromeRecords: %v", err)
	}
	if len(records) != len(spans)+1 { // +1 metadata record
		t.Fatalf("got %d records, want %d", len(records), len(spans)+1)
	}
	var meta struct {
		Name string `json:"name"`
		Ph   string `json:"ph"`
	}
	if err := json.Unmarshal(records[0], &meta); err != nil ||
		meta.Name != "process_name" || meta.Ph != "M" {
		t.Fatalf("first record is not process_name metadata: %s", records[0])
	}
	for _, raw := range records[1:] {
		var ev struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Ts   *int64 `json:"ts"`
			Dur  *int64 `json:"dur"`
		}
		if err := json.Unmarshal(raw, &ev); err != nil {
			t.Fatalf("record %s: %v", raw, err)
		}
		if ev.Ph != "X" || ev.Ts == nil || ev.Dur == nil {
			t.Fatalf("record %s is not a complete event", raw)
		}
		if strings.Contains(ev.Name, "\n") {
			t.Fatalf("unescaped name in %s", raw)
		}
	}
	if rs, err := ChromeRecords(nil); rs != nil || err != nil {
		t.Fatalf("ChromeRecords(nil) = %v, %v", rs, err)
	}
}
