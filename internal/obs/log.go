package obs

// Structured logging built on log/slog. Every layer logs through a
// *slog.Logger carried in the context; the serving layer and the CLI
// install JSON or text handlers with the trace/span/job IDs attached,
// so one grep over the log stream follows one job end to end. A
// context without a logger yields Nop(), whose handler is disabled at
// every level — instrumented code logs unconditionally and costs
// almost nothing when nobody is listening.

import (
	"context"
	"io"
	"log/slog"
)

// NewLogger builds a leveled slog logger writing to w. format selects
// the handler: "json" (the service default — one object per line) or
// "text" (slog's key=value form, for humans).
func NewLogger(w io.Writer, format string, level slog.Leveler) *slog.Logger {
	opts := &slog.HandlerOptions{Level: level}
	if format == "text" {
		return slog.New(slog.NewTextHandler(w, opts))
	}
	return slog.New(slog.NewJSONHandler(w, opts))
}

// ParseLevel maps a -log-level flag value to a slog level. Unknown
// strings report ok=false.
func ParseLevel(s string) (slog.Level, bool) {
	switch s {
	case "debug":
		return slog.LevelDebug, true
	case "info":
		return slog.LevelInfo, true
	case "warn":
		return slog.LevelWarn, true
	case "error":
		return slog.LevelError, true
	}
	return slog.LevelInfo, false
}

// nopHandler drops every record.
type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (h nopHandler) WithAttrs([]slog.Attr) slog.Handler      { return h }
func (h nopHandler) WithGroup(string) slog.Handler           { return h }

var nop = slog.New(nopHandler{})

// Nop returns a logger whose handler is disabled at every level.
func Nop() *slog.Logger { return nop }

// WithLogger installs l as the context's logger. A nil l returns ctx
// unchanged.
func WithLogger(ctx context.Context, l *slog.Logger) context.Context {
	if l == nil {
		return ctx
	}
	return context.WithValue(ctx, loggerKey, l)
}

// Log returns the context's logger, or Nop() when none is installed.
func Log(ctx context.Context) *slog.Logger {
	if l, _ := ctx.Value(loggerKey).(*slog.Logger); l != nil {
		return l
	}
	return nop
}
