package obs

// Cross-process trace propagation. A span context crosses a process
// boundary as a W3C traceparent header: the CLI and the job service
// already accept and echo it, and the cluster coordinator forwards it
// on every hop so one job's span tree spans client → coordinator →
// worker under a single trace ID (docs/OBSERVABILITY.md).

import "net/http"

// TraceparentHeader is the canonical W3C trace-context header name.
const TraceparentHeader = "traceparent"

// PropagateTraceparent writes sc into h as a traceparent header. An
// invalid context (zero trace ID) propagates nothing, so callers can
// pass a disabled tracer's context unconditionally.
func PropagateTraceparent(h http.Header, sc SpanContext) {
	if !sc.Valid() {
		return
	}
	h.Set(TraceparentHeader, sc.Traceparent())
}

// TraceparentFromHeader extracts the remote span context from h. It
// returns ok=false — and a zero context, which adopts nothing — when
// the header is absent or malformed, per the trace-context spec.
func TraceparentFromHeader(h http.Header) (SpanContext, bool) {
	return ParseTraceparent(h.Get(TraceparentHeader))
}
