package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	sc := SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID()}
	hdr := sc.Traceparent()
	if len(hdr) != 55 || !strings.HasPrefix(hdr, "00-") {
		t.Fatalf("traceparent %q is not a 55-byte version-00 header", hdr)
	}
	got, ok := ParseTraceparent(hdr)
	if !ok || got != sc {
		t.Fatalf("round trip: got %+v ok=%v, want %+v", got, ok, sc)
	}
}

func TestParseTraceparentRejectsMalformed(t *testing.T) {
	valid := SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID()}.Traceparent()
	for _, bad := range []string{
		"",
		"00",
		valid[:54],       // truncated
		valid + "0",      // trailing garbage
		"01" + valid[2:], // unknown version
		strings.Replace(valid, "-", "_", 1),
		"00-" + strings.Repeat("0", 32) + "-" + valid[36:], // zero trace ID
		valid[:36] + strings.Repeat("0", 16) + valid[52:],  // zero span ID
		"00-" + strings.Repeat("zz", 16) + valid[35:],      // non-hex
	} {
		if sc, ok := ParseTraceparent(bad); ok {
			t.Errorf("ParseTraceparent(%q) accepted: %+v", bad, sc)
		}
	}
}

func TestSpanParentageAndRecording(t *testing.T) {
	tr := NewTracer(TraceID{}, 16)
	root := tr.StartSpan(SpanContext{}, "job")
	root.SetAttr("job_id", "job-000001")
	child := tr.StartSpan(root.Context(), "queue.wait")
	child.End()
	root.End()
	root.End() // double End must not record twice

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("recorded %d spans, want 2", len(spans))
	}
	// Publication order: child ended first.
	if spans[0].Name != "queue.wait" || spans[1].Name != "job" {
		t.Fatalf("span order = %q, %q", spans[0].Name, spans[1].Name)
	}
	if spans[0].Parent != spans[1].ID {
		t.Fatalf("child parent = %s, want root %s", spans[0].Parent, spans[1].ID)
	}
	if !spans[1].Parent.IsZero() {
		t.Fatalf("root parent = %s, want zero", spans[1].Parent)
	}
	if spans[0].Trace != tr.TraceID() || spans[1].Trace != tr.TraceID() {
		t.Fatalf("spans carry foreign trace IDs")
	}
	if len(spans[1].Attrs) != 1 || spans[1].Attrs[0] != (Attr{"job_id", "job-000001"}) {
		t.Fatalf("root attrs = %+v", spans[1].Attrs)
	}
}

func TestTracerAdoptsRemoteTraceID(t *testing.T) {
	remote := SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID()}
	tr := NewTracer(remote.TraceID, 8)
	root := tr.StartSpan(remote, "job")
	root.End()
	spans := tr.Spans()
	if len(spans) != 1 || spans[0].Trace != remote.TraceID || spans[0].Parent != remote.SpanID {
		t.Fatalf("remote-parented root = %+v, want trace %s parent %s",
			spans, remote.TraceID, remote.SpanID)
	}
}

func TestContextStartSpan(t *testing.T) {
	tr := NewTracer(TraceID{}, 8)
	ctx := NewContext(context.Background(), tr)
	ctx, outer := StartSpan(ctx, "outer")
	_, inner := StartSpan(ctx, "inner")
	inner.End()
	outer.End()
	if inner.Parent != outer.ID {
		t.Fatalf("inner parent = %s, want %s", inner.Parent, outer.ID)
	}
	if FromContext(ctx) != tr {
		t.Fatalf("FromContext lost the tracer")
	}
	if SpanFromContext(ctx) != outer {
		t.Fatalf("SpanFromContext != outer span")
	}
}

func TestStartSpanDisabledIsFreeAndNil(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := StartSpan(ctx, "anything")
	if sp != nil || ctx2 != ctx {
		t.Fatalf("disabled StartSpan returned span=%v, changed ctx=%v", sp, ctx2 != ctx)
	}
	// The disabled path must not allocate: spans guard phase-granular
	// host code, and the guard itself has to be free.
	allocs := testing.AllocsPerRun(100, func() {
		_, sp := StartSpan(ctx, "anything")
		sp.SetAttr("k", "v")
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled span path allocates %v per op, want 0", allocs)
	}
}

func TestTracerDropsWhenFull(t *testing.T) {
	tr := NewTracer(TraceID{}, 2)
	for i := 0; i < 5; i++ {
		tr.StartSpan(SpanContext{}, "s").End()
	}
	if got := len(tr.Spans()); got != 2 {
		t.Fatalf("retained %d spans, want 2", got)
	}
	if tr.Dropped() != 3 {
		t.Fatalf("dropped = %d, want 3", tr.Dropped())
	}
}

func TestTracerConcurrentRecording(t *testing.T) {
	tr := NewTracer(TraceID{}, 1024)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				sp := tr.StartSpan(SpanContext{}, "worker")
				sp.SetAttr("k", "v")
				sp.End()
				tr.Spans() // concurrent snapshot must be safe
			}
		}()
	}
	wg.Wait()
	if got := len(tr.Spans()); got != 800 {
		t.Fatalf("recorded %d spans, want 800", got)
	}
	if tr.Dropped() != 0 {
		t.Fatalf("dropped = %d, want 0", tr.Dropped())
	}
}

func TestNilTracerAndSpanAreNoops(t *testing.T) {
	var tr *Tracer
	sp := tr.StartSpan(SpanContext{}, "x")
	if sp != nil {
		t.Fatalf("nil tracer started a span")
	}
	sp.SetAttr("k", "v")
	sp.End()
	if tr.Spans() != nil || tr.Dropped() != 0 || !tr.TraceID().IsZero() {
		t.Fatalf("nil tracer is not inert")
	}
	if ctx := NewContext(context.Background(), nil); FromContext(ctx) != nil {
		t.Fatalf("NewContext(nil) installed a tracer")
	}
}

func TestParseLevel(t *testing.T) {
	for s, want := range map[string]string{
		"debug": "DEBUG", "info": "INFO", "warn": "WARN", "error": "ERROR",
	} {
		lv, ok := ParseLevel(s)
		if !ok || lv.String() != want {
			t.Errorf("ParseLevel(%q) = %v %v, want %s", s, lv, ok, want)
		}
	}
	if _, ok := ParseLevel("verbose"); ok {
		t.Errorf("ParseLevel accepted an unknown level")
	}
}

func TestSpanDurationIsMonotonic(t *testing.T) {
	tr := NewTracer(TraceID{}, 4)
	sp := tr.StartSpan(SpanContext{}, "timed")
	time.Sleep(2 * time.Millisecond)
	sp.End()
	if got := tr.Spans()[0].Dur; got < 2*time.Millisecond {
		t.Fatalf("span duration %v shorter than the slept 2ms", got)
	}
}
