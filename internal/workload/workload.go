// Package workload generates the synthetic benchmark suite used by the
// fork/copy-on-write experiments (Figures 8 and 9). The paper evaluates
// 15 SPEC CPU2006 benchmarks chosen for their write-working-set shapes;
// we reproduce each benchmark as a deterministic synthetic trace with the
// same three controlling properties:
//
//   - Type 1: low write working set — writes confined to a handful of
//     pages (bwaves, hmmer, libq, sphinx3, tonto);
//   - Type 2: dense writes — almost every cache line of every modified
//     page is updated (bzip2, cactus, lbm, leslie3d, soplex). cactus is
//     the paper's exception: its writes to a page cluster in time;
//   - Type 3: sparse writes — only a few lines per modified page are
//     updated, spread across many pages (astar, Gems, mcf, milc, omnet).
//
// Those properties are the only benchmark features the CoW-vs-OoW
// comparison depends on (see DESIGN.md's substitution table).
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/vm"
)

// Type classifies a benchmark's write working set.
type Type int

const (
	// Type1 has a small write working set.
	Type1 Type = 1
	// Type2 writes almost all lines of each modified page.
	Type2 Type = 2
	// Type3 writes only a few lines of each modified page.
	Type3 Type = 3
)

// Spec describes one synthetic benchmark.
type Spec struct {
	Name string
	Type Type

	Pages        int  // total data footprint, in pages
	WritePages   int  // pages in the write working set
	LinesPerPage int  // distinct lines written per modified page
	Clustered    bool // a page's lines are written back-to-back in time

	ComputePerMem int     // compute instructions between memory ops
	StoreShare    float64 // fraction of memory ops that are stores
	Seed          int64
}

// Suite returns the 15 benchmarks of Figures 8/9, grouped by type.
func Suite() []Spec {
	return []Spec{
		// Type 1: low write working set.
		{Name: "bwaves", Type: Type1, Pages: 1024, WritePages: 4, LinesPerPage: 16, Clustered: true, ComputePerMem: 2, StoreShare: 0.15, Seed: 101},
		{Name: "hmmer", Type: Type1, Pages: 256, WritePages: 2, LinesPerPage: 8, Clustered: true, ComputePerMem: 3, StoreShare: 0.10, Seed: 102},
		{Name: "libq", Type: Type1, Pages: 512, WritePages: 4, LinesPerPage: 32, ComputePerMem: 2, StoreShare: 0.10, Seed: 103},
		{Name: "sphinx3", Type: Type1, Pages: 768, WritePages: 2, LinesPerPage: 16, ComputePerMem: 3, StoreShare: 0.08, Seed: 104},
		{Name: "tonto", Type: Type1, Pages: 384, WritePages: 3, LinesPerPage: 8, Clustered: true, ComputePerMem: 4, StoreShare: 0.12, Seed: 105},

		// Type 2: dense writes.
		{Name: "bzip2", Type: Type2, Pages: 1024, WritePages: 320, LinesPerPage: 64, ComputePerMem: 2, StoreShare: 0.40, Seed: 201},
		{Name: "cactus", Type: Type2, Pages: 1024, WritePages: 256, LinesPerPage: 64, Clustered: true, ComputePerMem: 2, StoreShare: 0.35, Seed: 202},
		{Name: "lbm", Type: Type2, Pages: 2048, WritePages: 640, LinesPerPage: 64, ComputePerMem: 1, StoreShare: 0.50, Seed: 203},
		{Name: "leslie3d", Type: Type2, Pages: 1536, WritePages: 480, LinesPerPage: 64, ComputePerMem: 2, StoreShare: 0.40, Seed: 204},
		{Name: "soplex", Type: Type2, Pages: 1024, WritePages: 320, LinesPerPage: 64, ComputePerMem: 2, StoreShare: 0.30, Seed: 205},

		// Type 3: sparse writes.
		{Name: "astar", Type: Type3, Pages: 2048, WritePages: 512, LinesPerPage: 4, ComputePerMem: 2, StoreShare: 0.30, Seed: 301},
		{Name: "Gems", Type: Type3, Pages: 2048, WritePages: 640, LinesPerPage: 6, ComputePerMem: 2, StoreShare: 0.35, Seed: 302},
		{Name: "mcf", Type: Type3, Pages: 4096, WritePages: 1024, LinesPerPage: 2, ComputePerMem: 1, StoreShare: 0.30, Seed: 303},
		{Name: "milc", Type: Type3, Pages: 2048, WritePages: 576, LinesPerPage: 8, ComputePerMem: 2, StoreShare: 0.30, Seed: 304},
		{Name: "omnet", Type: Type3, Pages: 1536, WritePages: 448, LinesPerPage: 4, ComputePerMem: 2, StoreShare: 0.25, Seed: 305},
	}
}

// ByName returns the spec for a benchmark name.
func ByName(name string) (Spec, error) {
	for _, s := range Suite() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// MapFootprint maps the benchmark's data pages into the process.
func (s Spec) MapFootprint(f *core.Framework, p *vm.Process) error {
	return f.VM.MapAnon(p, 0, s.Pages)
}

// writeSequence builds the deterministic cyclic sequence of store targets
// that realises the benchmark's write working set.
func (s Spec) writeSequence() []arch.VirtAddr {
	rng := rand.New(rand.NewSource(s.Seed))
	pages := rng.Perm(s.Pages)[:s.WritePages]
	lines := make([][]int, s.WritePages)
	for i := range lines {
		lines[i] = rng.Perm(arch.LinesPerPage)[:s.LinesPerPage]
	}
	seq := make([]arch.VirtAddr, 0, s.WritePages*s.LinesPerPage)
	target := func(pi, li int) arch.VirtAddr {
		page := pages[pi]
		line := lines[pi][li]
		return arch.VirtAddr(page)*arch.PageSize + arch.VirtAddr(line*arch.LineSize)
	}
	if s.Clustered {
		for pi := 0; pi < s.WritePages; pi++ {
			for li := 0; li < s.LinesPerPage; li++ {
				seq = append(seq, target(pi, li))
			}
		}
	} else {
		// Spread: consecutive stores hit different pages; a page's next
		// line is revisited only after every other page has been touched.
		for li := 0; li < s.LinesPerPage; li++ {
			for pi := 0; pi < s.WritePages; pi++ {
				seq = append(seq, target(pi, li))
			}
		}
	}
	return seq
}

// trace is the benchmark's instruction stream.
type trace struct {
	spec     Spec
	rng      *rand.Rand
	writes   []arch.VirtAddr
	writePos int
	readLine int64
	phase    int // 0 → compute, 1 → memory op
}

// NewTrace builds the benchmark's (infinite) instruction stream; callers
// bound execution with the core's instruction limit.
func (s Spec) NewTrace() cpu.Trace {
	return &trace{
		spec:   s,
		rng:    rand.New(rand.NewSource(s.Seed ^ 0x5eed)),
		writes: s.writeSequence(),
	}
}

// Next implements cpu.Trace: a repeating [compute burst, memory op]
// pattern whose memory ops split between the write sequence and a
// mostly-sequential read scan of the footprint.
func (t *trace) Next() (cpu.Instr, bool) {
	if t.phase == 0 && t.spec.ComputePerMem > 0 {
		t.phase = 1
		return cpu.Instr{Kind: cpu.Compute, N: t.spec.ComputePerMem}, true
	}
	t.phase = 0
	if t.rng.Float64() < t.spec.StoreShare {
		va := t.writes[t.writePos]
		t.writePos = (t.writePos + 1) % len(t.writes)
		return cpu.Instr{Kind: cpu.Store, VA: va}, true
	}
	// Sequential read scan with occasional jumps — enough locality to keep
	// the prefetcher busy without making every access a hit.
	if t.rng.Intn(16) == 0 {
		t.readLine = t.rng.Int63n(int64(t.spec.Pages) * arch.LinesPerPage)
	} else {
		t.readLine = (t.readLine + 1) % (int64(t.spec.Pages) * arch.LinesPerPage)
	}
	return cpu.Instr{Kind: cpu.Load, VA: arch.VirtAddr(t.readLine * arch.LineSize)}, true
}
