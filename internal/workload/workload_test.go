package workload

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/cpu"
)

func TestSuiteShape(t *testing.T) {
	suite := Suite()
	if len(suite) != 15 {
		t.Fatalf("suite has %d benchmarks, want 15", len(suite))
	}
	counts := map[Type]int{}
	names := map[string]bool{}
	for _, s := range suite {
		counts[s.Type]++
		if names[s.Name] {
			t.Fatalf("duplicate benchmark %q", s.Name)
		}
		names[s.Name] = true
		if s.WritePages > s.Pages {
			t.Fatalf("%s: write working set larger than footprint", s.Name)
		}
		if s.LinesPerPage < 1 || s.LinesPerPage > arch.LinesPerPage {
			t.Fatalf("%s: bad LinesPerPage %d", s.Name, s.LinesPerPage)
		}
	}
	if counts[Type1] != 5 || counts[Type2] != 5 || counts[Type3] != 5 {
		t.Fatalf("type counts = %v, want 5 each", counts)
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("mcf")
	if err != nil || s.Name != "mcf" || s.Type != Type3 {
		t.Fatalf("ByName(mcf) = %+v, %v", s, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("expected error for unknown name")
	}
}

func TestWriteSequenceRespectsSpec(t *testing.T) {
	for _, s := range Suite() {
		seq := s.writeSequence()
		if len(seq) != s.WritePages*s.LinesPerPage {
			t.Fatalf("%s: sequence length %d, want %d", s.Name, len(seq), s.WritePages*s.LinesPerPage)
		}
		pages := map[arch.VPN]map[int]bool{}
		for _, va := range seq {
			if int(va.Page()) >= s.Pages {
				t.Fatalf("%s: write outside footprint", s.Name)
			}
			if pages[va.Page()] == nil {
				pages[va.Page()] = map[int]bool{}
			}
			pages[va.Page()][va.Line()] = true
		}
		if len(pages) != s.WritePages {
			t.Fatalf("%s: touched %d pages, want %d", s.Name, len(pages), s.WritePages)
		}
		for vpn, lines := range pages {
			if len(lines) != s.LinesPerPage {
				t.Fatalf("%s: page %d has %d lines, want %d", s.Name, vpn, len(lines), s.LinesPerPage)
			}
		}
	}
}

func TestClusteredOrdering(t *testing.T) {
	s, _ := ByName("cactus")
	seq := s.writeSequence()
	// Clustered: the first LinesPerPage writes all land on one page.
	first := seq[0].Page()
	for i := 1; i < s.LinesPerPage; i++ {
		if seq[i].Page() != first {
			t.Fatalf("clustered sequence switches page at %d", i)
		}
	}
}

func TestSpreadOrdering(t *testing.T) {
	s, _ := ByName("lbm")
	seq := s.writeSequence()
	// Spread: consecutive writes land on different pages.
	for i := 1; i < s.WritePages; i++ {
		if seq[i].Page() == seq[i-1].Page() {
			t.Fatalf("spread sequence repeats page at %d", i)
		}
	}
	// A page's second line comes only after all pages' first lines.
	if seq[s.WritePages].Page() != seq[0].Page() {
		t.Fatal("second sweep does not revisit in order")
	}
}

func TestTraceDeterminism(t *testing.T) {
	s, _ := ByName("astar")
	t1, t2 := s.NewTrace(), s.NewTrace()
	for i := 0; i < 10000; i++ {
		a, _ := t1.Next()
		b, _ := t2.Next()
		if a != b {
			t.Fatalf("traces diverge at %d: %+v vs %+v", i, a, b)
		}
	}
}

func TestTraceMix(t *testing.T) {
	s, _ := ByName("bzip2")
	tr := s.NewTrace()
	var computes, loads, stores, instrs int
	for instrs < 100000 {
		in, ok := tr.Next()
		if !ok {
			t.Fatal("trace ended")
		}
		switch in.Kind {
		case cpu.Compute:
			computes += in.N
			instrs += in.N
		case cpu.Load:
			loads++
			instrs++
		case cpu.Store:
			stores++
			instrs++
			if int(in.VA.Page()) >= s.Pages {
				t.Fatal("store outside footprint")
			}
		}
	}
	memOps := loads + stores
	storeShare := float64(stores) / float64(memOps)
	if storeShare < s.StoreShare-0.05 || storeShare > s.StoreShare+0.05 {
		t.Fatalf("store share = %v, want ≈%v", storeShare, s.StoreShare)
	}
	wantComputeFrac := float64(s.ComputePerMem) / float64(s.ComputePerMem+1)
	computeFrac := float64(computes) / float64(instrs)
	if computeFrac < wantComputeFrac-0.05 || computeFrac > wantComputeFrac+0.05 {
		t.Fatalf("compute fraction = %v, want ≈%v", computeFrac, wantComputeFrac)
	}
}

func TestTraceReadsStayInFootprint(t *testing.T) {
	s, _ := ByName("hmmer")
	tr := s.NewTrace()
	for i := 0; i < 50000; i++ {
		in, _ := tr.Next()
		if in.Kind == cpu.Load && int(in.VA.Page()) >= s.Pages {
			t.Fatalf("load outside footprint: %#x", uint64(in.VA))
		}
	}
}
