package tlb

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/sim"
)

// benchWalker resolves every miss to an identity mapping.
type benchWalker struct{}

func (benchWalker) Walk(pid arch.PID, vpn arch.VPN) (Entry, sim.Cycle, bool) {
	return Entry{PPN: arch.PPN(vpn), Writable: true}, DefaultConfig().WalkLatency, true
}

// BenchmarkTLBLookup measures translations against a warm two-level
// TLB: mostly L1 hits with a tail of L2 hits and walks, the mix the
// simulator's read/write paths pay on every access.
func BenchmarkTLBLookup(b *testing.B) {
	e := sim.NewEngine()
	t := New(DefaultConfig(), benchWalker{}, &e.Stats)
	const hot = 48   // fits in the 64-entry L1
	const warm = 768 // fits in the 1024-entry L2
	for v := 0; v < warm; v++ {
		t.Lookup(1, arch.VPN(v))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		v := arch.VPN(n % hot)
		if n&15 == 0 {
			v = arch.VPN(n % warm)
		}
		t.Lookup(1, v)
	}
}
