package tlb

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/sim"
)

// mapWalker is a Walker backed by a map.
type mapWalker struct {
	entries map[[2]uint64]Entry
	walks   int
}

func (w *mapWalker) put(pid arch.PID, vpn arch.VPN, e Entry) {
	if w.entries == nil {
		w.entries = map[[2]uint64]Entry{}
	}
	w.entries[[2]uint64{uint64(pid), uint64(vpn)}] = e
}

func (w *mapWalker) Walk(pid arch.PID, vpn arch.VPN) (Entry, sim.Cycle, bool) {
	w.walks++
	e, ok := w.entries[[2]uint64{uint64(pid), uint64(vpn)}]
	return e, DefaultConfig().WalkLatency, ok
}

func newTLB() (*TLB, *mapWalker, *sim.Stats) {
	w := &mapWalker{}
	var st sim.Stats
	return New(DefaultConfig(), w, &st), w, &st
}

func TestMissWalkThenHits(t *testing.T) {
	tl, w, st := newTLB()
	w.put(1, 10, Entry{PPN: 42, Writable: true})
	cfg := DefaultConfig()

	e, lat, ok := tl.Lookup(1, 10)
	if !ok || e.PPN != 42 {
		t.Fatalf("lookup failed: %+v ok=%v", e, ok)
	}
	if want := cfg.L1Latency + cfg.L2Latency + cfg.WalkLatency; lat != want {
		t.Fatalf("miss latency = %d, want %d", lat, want)
	}
	_, lat, ok = tl.Lookup(1, 10)
	if !ok || lat != cfg.L1Latency {
		t.Fatalf("L1 hit latency = %d, want %d", lat, cfg.L1Latency)
	}
	if w.walks != 1 {
		t.Fatalf("walks = %d, want 1", w.walks)
	}
	if st.Get("tlb.misses") != 1 || st.Get("tlb.l1_hits") != 1 {
		t.Fatalf("stats wrong: %v", st.Snapshot())
	}
}

func TestPageFault(t *testing.T) {
	tl, _, _ := newTLB()
	_, lat, ok := tl.Lookup(1, 99)
	if ok {
		t.Fatal("expected fault")
	}
	if lat == 0 {
		t.Fatal("failed walk must still cost cycles")
	}
	// Faulting entries must not be cached.
	if _, ok := tl.Peek(1, 99); ok {
		t.Fatal("fault cached")
	}
}

func TestL2HitAfterL1Eviction(t *testing.T) {
	tl, w, st := newTLB()
	cfg := DefaultConfig()
	// Fill pages that all collide in L1 set of vpn 0 but spread in L2.
	// L1: 16 sets; vpns 0, 16, 32, ... share L1 set 0 for pid 0.
	for i := 0; i < cfg.L1Ways+1; i++ {
		vpn := arch.VPN(i * 16)
		w.put(0, vpn, Entry{PPN: arch.PPN(i + 1)})
		tl.Lookup(0, vpn)
	}
	// vpn 0 was LRU in its L1 set → evicted, but still in L2.
	_, lat, ok := tl.Lookup(0, 0)
	if !ok {
		t.Fatal("lost mapping")
	}
	if want := cfg.L1Latency + cfg.L2Latency; lat != want {
		t.Fatalf("latency = %d, want L2 hit %d", lat, want)
	}
	if st.Get("tlb.l2_hits") != 1 {
		t.Fatalf("l2_hits = %d, want 1", st.Get("tlb.l2_hits"))
	}
}

func TestPIDsDoNotCollide(t *testing.T) {
	tl, w, _ := newTLB()
	w.put(1, 5, Entry{PPN: 100})
	w.put(2, 5, Entry{PPN: 200})
	e1, _, _ := tl.Lookup(1, 5)
	e2, _, _ := tl.Lookup(2, 5)
	if e1.PPN != 100 || e2.PPN != 200 {
		t.Fatalf("cross-pid confusion: %d %d", e1.PPN, e2.PPN)
	}
}

func TestShootdown(t *testing.T) {
	tl, w, st := newTLB()
	w.put(1, 10, Entry{PPN: 42})
	tl.Lookup(1, 10)
	cost := tl.Shootdown(1, 10)
	if cost != DefaultConfig().ShootdownLatency {
		t.Fatalf("cost = %d", cost)
	}
	if _, ok := tl.Peek(1, 10); ok {
		t.Fatal("entry survived shootdown")
	}
	if st.Get("tlb.shootdowns") != 1 {
		t.Fatal("shootdown not counted")
	}
	// Next lookup walks again.
	w.put(1, 10, Entry{PPN: 43})
	e, _, _ := tl.Lookup(1, 10)
	if e.PPN != 43 {
		t.Fatal("stale entry after shootdown")
	}
}

func TestUpdateLineSetsOBitWithoutShootdown(t *testing.T) {
	tl, w, st := newTLB()
	w.put(1, 10, Entry{PPN: 42})
	tl.Lookup(1, 10)
	if !tl.UpdateLine(1, 10, 17, true) {
		t.Fatal("UpdateLine found no entry")
	}
	e, ok := tl.Peek(1, 10)
	if !ok || !e.OBits.Has(17) || !e.HasOverlay {
		t.Fatalf("entry not updated: %+v", e)
	}
	if st.Get("tlb.shootdowns") != 0 {
		t.Fatal("line update must not shoot down")
	}
	if st.Get("tlb.line_updates") != 1 {
		t.Fatal("line update not counted")
	}
	// Clearing works too.
	tl.UpdateLine(1, 10, 17, false)
	e, _ = tl.Peek(1, 10)
	if e.OBits.Has(17) {
		t.Fatal("bit not cleared")
	}
}

func TestUpdateLineMissesQuietly(t *testing.T) {
	tl, _, _ := newTLB()
	if tl.UpdateLine(3, 3, 0, true) {
		t.Fatal("update of uncached page reported success")
	}
}

func TestUpdateLineReachesBothLevels(t *testing.T) {
	tl, w, _ := newTLB()
	cfg := DefaultConfig()
	// Install vpn 0, then evict it from L1 (it stays in L2).
	w.put(0, 0, Entry{PPN: 1})
	tl.Lookup(0, 0)
	for i := 1; i <= cfg.L1Ways; i++ {
		vpn := arch.VPN(i * 16)
		w.put(0, vpn, Entry{PPN: arch.PPN(i + 1)})
		tl.Lookup(0, vpn)
	}
	tl.UpdateLine(0, 0, 5, true)
	e, ok := tl.Peek(0, 0)
	if !ok || !e.OBits.Has(5) {
		t.Fatal("L2 copy not updated")
	}
}

func TestUpdateEntry(t *testing.T) {
	tl, w, _ := newTLB()
	w.put(1, 10, Entry{PPN: 42, HasOverlay: true, OBits: 0xff})
	tl.Lookup(1, 10)
	tl.UpdateEntry(1, 10, Entry{PPN: 77})
	e, _ := tl.Peek(1, 10)
	if e.PPN != 77 || e.HasOverlay || e.OBits != 0 {
		t.Fatalf("UpdateEntry failed: %+v", e)
	}
}

func TestFlushPID(t *testing.T) {
	tl, w, _ := newTLB()
	w.put(1, 10, Entry{PPN: 1})
	w.put(2, 10, Entry{PPN: 2})
	tl.Lookup(1, 10)
	tl.Lookup(2, 10)
	tl.FlushPID(1)
	if _, ok := tl.Peek(1, 10); ok {
		t.Fatal("pid 1 entry survived flush")
	}
	if _, ok := tl.Peek(2, 10); !ok {
		t.Fatal("pid 2 entry wrongly flushed")
	}
}

func TestCOWAndOverlayFlagsRoundTrip(t *testing.T) {
	tl, w, _ := newTLB()
	w.put(1, 10, Entry{PPN: 42, COW: true, HasOverlay: true, OBits: arch.OBitVector(0).Set(3)})
	e, _, _ := tl.Lookup(1, 10)
	if !e.COW || !e.HasOverlay || !e.OBits.Has(3) {
		t.Fatalf("flags lost: %+v", e)
	}
}
