// Package tlb models the two-level TLB of Table 2 (64-entry 4-way L1,
// 1 cycle; 1024-entry L2, 10 cycles; miss/page-walk = 1000 cycles), with
// each entry extended by the page's OBitVector (§4, change Ì in Fig. 6).
//
// The package also implements the two ways entries change under the
// overlay framework: whole-page shootdowns (the expensive path used by
// conventional copy-on-write remaps) and single-line OBitVector updates
// delivered through the cache-coherence network by the "overlaying read
// exclusive" message (§4.3.3), which avoid shootdowns entirely.
package tlb

import (
	"repro/internal/arch"
	"repro/internal/sim"
)

// Entry is one cached translation, extended with overlay state.
type Entry struct {
	PPN        arch.PPN
	OBits      arch.OBitVector
	HasOverlay bool // page has an overlay mapping
	COW        bool // page is marked copy-on-write in the page tables
	Writable   bool
}

// Walker resolves TLB misses from the page tables (and the OMT, for the
// OBitVector). It returns the filled entry plus the cycles the walk
// itself cost — translation backends with non-uniform walks (hashed
// restrictive sets, flat block tables) price each miss individually,
// while the conventional 4-level walk always reports Config.WalkLatency.
// ok=false means a page fault; the walk latency is still paid.
type Walker interface {
	Walk(pid arch.PID, vpn arch.VPN) (Entry, sim.Cycle, bool)
}

// Config sizes the TLB hierarchy.
type Config struct {
	L1Entries, L1Ways int
	L2Entries, L2Ways int
	L1Latency         sim.Cycle
	L2Latency         sim.Cycle
	WalkLatency       sim.Cycle
	ShootdownLatency  sim.Cycle // cost of a conventional full-page TLB shootdown
}

// DefaultConfig mirrors Table 2; the shootdown cost follows the ~6 µs
// figures reported for inter-processor-interrupt based shootdowns
// (Villavieja et al., PACT 2011), scaled to a single-socket victim.
func DefaultConfig() Config {
	return Config{
		L1Entries: 64, L1Ways: 4,
		L2Entries: 1024, L2Ways: 8,
		L1Latency:        1,
		L2Latency:        10,
		WalkLatency:      1000,
		ShootdownLatency: 4000,
	}
}

type key struct {
	pid arch.PID
	vpn arch.VPN
}

type way struct {
	valid bool
	key   key
	entry Entry
	stamp uint64
}

type level struct {
	sets  [][]way
	clock uint64
}

func newLevel(entries, ways int) *level {
	sets := entries / ways
	l := &level{sets: make([][]way, sets)}
	backing := make([]way, entries)
	for i := range l.sets {
		l.sets[i], backing = backing[:ways], backing[ways:]
	}
	return l
}

func (l *level) set(k key) []way {
	return l.sets[(uint64(k.vpn)^uint64(k.pid)<<4)%uint64(len(l.sets))]
}

func (l *level) lookup(k key) (*way, bool) {
	s := l.set(k)
	for i := range s {
		if s[i].valid && s[i].key == k {
			l.clock++
			s[i].stamp = l.clock
			return &s[i], true
		}
	}
	return nil, false
}

func (l *level) insert(k key, e Entry) {
	s := l.set(k)
	victim := 0
	for i := range s {
		if !s[i].valid {
			victim = i
			break
		}
		if s[i].stamp < s[victim].stamp {
			victim = i
		}
	}
	l.clock++
	s[victim] = way{valid: true, key: k, entry: e, stamp: l.clock}
}

func (l *level) invalidate(k key) bool {
	s := l.set(k)
	for i := range s {
		if s[i].valid && s[i].key == k {
			s[i] = way{}
			return true
		}
	}
	return false
}

func (l *level) update(k key, fn func(*Entry)) bool {
	s := l.set(k)
	for i := range s {
		if s[i].valid && s[i].key == k {
			fn(&s[i].entry)
			return true
		}
	}
	return false
}

func (l *level) flushPID(pid arch.PID) {
	for si := range l.sets {
		for wi := range l.sets[si] {
			if l.sets[si][wi].valid && l.sets[si][wi].key.pid == pid {
				l.sets[si][wi] = way{}
			}
		}
	}
}

// TLB is the two-level TLB.
type TLB struct {
	cfg       Config
	l1, l2    *level
	walker    Walker
	stats     *sim.Stats
	lookupLat *sim.Histogram // every translation's latency (hits and misses)
	walkLat   *sim.Histogram // miss path only: L1 + L2 probes + page walk

	l1Hits      *uint64
	l2Hits      *uint64
	misses      *uint64
	shootdowns  *uint64
	lineUpdates *uint64
}

// New builds a TLB backed by the walker.
func New(cfg Config, walker Walker, stats *sim.Stats) *TLB {
	return &TLB{
		cfg:         cfg,
		l1:          newLevel(cfg.L1Entries, cfg.L1Ways),
		l2:          newLevel(cfg.L2Entries, cfg.L2Ways),
		walker:      walker,
		stats:       stats,
		lookupLat:   stats.Histogram("tlb.lookup_cycles"),
		walkLat:     stats.Histogram("tlb.walk_cycles"),
		l1Hits:      stats.Counter("tlb.l1_hits"),
		l2Hits:      stats.Counter("tlb.l2_hits"),
		misses:      stats.Counter("tlb.misses"),
		shootdowns:  stats.Counter("tlb.shootdowns"),
		lineUpdates: stats.Counter("tlb.line_updates"),
	}
}

// Lookup translates (pid, vpn). It returns the entry, the lookup latency
// in cycles, and ok=false on a page fault (entry is zero then; the
// latency still covers the failed walk).
func (t *TLB) Lookup(pid arch.PID, vpn arch.VPN) (Entry, sim.Cycle, bool) {
	k := key{pid, vpn}
	if w, ok := t.l1.lookup(k); ok {
		*t.l1Hits++
		t.lookupLat.Observe(uint64(t.cfg.L1Latency))
		return w.entry, t.cfg.L1Latency, true
	}
	if w, ok := t.l2.lookup(k); ok {
		*t.l2Hits++
		e := w.entry
		t.l1.insert(k, e)
		t.lookupLat.Observe(uint64(t.cfg.L1Latency + t.cfg.L2Latency))
		return e, t.cfg.L1Latency + t.cfg.L2Latency, true
	}
	*t.misses++
	e, wlat, ok := t.walker.Walk(pid, vpn)
	lat := t.cfg.L1Latency + t.cfg.L2Latency + wlat
	t.lookupLat.Observe(uint64(lat))
	t.walkLat.Observe(uint64(lat))
	if !ok {
		return Entry{}, lat, false
	}
	t.l2.insert(k, e)
	t.l1.insert(k, e)
	return e, lat, true
}

// Peek returns the cached entry without latency accounting or fills
// (test/debug aid).
func (t *TLB) Peek(pid arch.PID, vpn arch.VPN) (Entry, bool) {
	k := key{pid, vpn}
	if w, ok := t.l1.lookup(k); ok {
		return w.entry, true
	}
	if w, ok := t.l2.lookup(k); ok {
		return w.entry, true
	}
	return Entry{}, false
}

// Shootdown invalidates the page's entry in both levels and returns the
// cost of the conventional shootdown protocol. Conventional CoW remaps
// pay this on the critical path (§2.2).
func (t *TLB) Shootdown(pid arch.PID, vpn arch.VPN) sim.Cycle {
	k := key{pid, vpn}
	t.l1.invalidate(k)
	t.l2.invalidate(k)
	*t.shootdowns++
	return t.cfg.ShootdownLatency
}

// Invalidate drops the entry without charging shootdown cost (used when
// the OS edits mappings off the critical path).
func (t *TLB) Invalidate(pid arch.PID, vpn arch.VPN) {
	k := key{pid, vpn}
	t.l1.invalidate(k)
	t.l2.invalidate(k)
}

// UpdateLine applies a single-line OBitVector change delivered by the
// overlaying-read-exclusive coherence message: cheap, no shootdown. It
// reports whether any cached entry was updated.
func (t *TLB) UpdateLine(pid arch.PID, vpn arch.VPN, lineIdx int, inOverlay bool) bool {
	k := key{pid, vpn}
	fn := func(e *Entry) {
		if inOverlay {
			e.OBits = e.OBits.Set(lineIdx)
			e.HasOverlay = true
		} else {
			e.OBits = e.OBits.Clear(lineIdx)
		}
	}
	u1 := t.l1.update(k, fn)
	u2 := t.l2.update(k, fn)
	if u1 || u2 {
		*t.lineUpdates++
	}
	return u1 || u2
}

// UpdateEntry rewrites a cached entry wholesale (promotion actions).
func (t *TLB) UpdateEntry(pid arch.PID, vpn arch.VPN, e Entry) {
	k := key{pid, vpn}
	t.l1.update(k, func(old *Entry) { *old = e })
	t.l2.update(k, func(old *Entry) { *old = e })
}

// FlushPID drops every entry of the process (context teardown).
func (t *TLB) FlushPID(pid arch.PID) {
	t.l1.flushPID(pid)
	t.l2.flushPID(pid)
}
