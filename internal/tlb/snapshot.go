package tlb

// Snapshot support: the TLB's structural state (both levels' ways and
// replacement clocks) can be captured and restored onto a freshly
// constructed TLB of the same configuration. Counters and histograms
// live in the shared sim.Stats registry and are restored there, not
// here.

// levelSnapshot is one level's captured ways (flattened) and clock.
type levelSnapshot struct {
	ways  []way
	clock uint64
}

func (l *level) snapshot() levelSnapshot {
	var flat []way
	for _, s := range l.sets {
		flat = append(flat, s...)
	}
	return levelSnapshot{ways: flat, clock: l.clock}
}

func (l *level) restore(s levelSnapshot) {
	i := 0
	for _, set := range l.sets {
		copy(set, s.ways[i:i+len(set)])
		i += len(set)
	}
	l.clock = s.clock
}

// Snapshot is an immutable capture of a TLB's cached translations.
type Snapshot struct {
	l1, l2 levelSnapshot
}

// Snapshot captures both levels.
func (t *TLB) Snapshot() *Snapshot {
	return &Snapshot{l1: t.l1.snapshot(), l2: t.l2.snapshot()}
}

// Restore loads the captured translations into this TLB, which must
// have the same geometry as the one that produced the snapshot.
func (t *TLB) Restore(s *Snapshot) {
	if len(s.l1.ways) != t.cfg.L1Entries || len(s.l2.ways) != t.cfg.L2Entries {
		panic("tlb: restore geometry mismatch")
	}
	t.l1.restore(s.l1)
	t.l2.restore(s.l2)
}
