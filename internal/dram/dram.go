// Package dram models the main-memory controller and DDR3-1066 timing of
// Table 2: a single channel/rank with 8 banks and 8 KB row buffers, an
// open-row policy, FR-FCFS scheduling with a 64-entry write buffer drained
// when full, and an 8-byte data bus with burst length 8 (one 64 B cache
// line per burst).
//
// The model is event-driven: callers enqueue line-granularity read/write
// requests; reads complete through a callback once the scheduler has
// issued them and the data burst finishes, writes complete immediately at
// acceptance (they are write-backs, off the critical path) and drain in
// the background.
package dram

import (
	"repro/internal/arch"
	"repro/internal/sim"
)

// Config holds controller geometry and timing. All latencies are in CPU
// cycles (2.67 GHz core, 533 MHz DDR3-1066 bus ⇒ 5 CPU cycles per bus
// cycle).
type Config struct {
	Banks        int       // banks per rank
	RowBytes     int       // row-buffer size in bytes
	WriteBufCap  int       // write-buffer entries; drain triggers when full
	TRCD         sim.Cycle // activate → column command
	TCL          sim.Cycle // column command → first data
	TRP          sim.Cycle // precharge
	TBurst       sim.Cycle // data burst occupancy of the channel
	TCmd         sim.Cycle // command-bus gap between successive commands
	WBForwardLat sim.Cycle // latency of a read forwarded from the write buffer
}

// DefaultConfig returns the Table 2 configuration: DDR3-1066 (CL 7),
// 1 channel, 1 rank, 8 banks, 8 KB row buffer, 64-entry write buffer.
func DefaultConfig() Config {
	return Config{
		Banks:        8,
		RowBytes:     8192,
		WriteBufCap:  64,
		TRCD:         35,
		TCL:          35,
		TRP:          35,
		TBurst:       20,
		TCmd:         5,
		WBForwardLat: 20,
	}
}

type request struct {
	addr    arch.PhysAddr // line-aligned main-memory address
	write   bool
	arrival sim.Cycle
	done    func()
}

type bank struct {
	openRow    int64     // -1 when no row is open
	readyAt    sim.Cycle // when the open row can accept column commands
	lastFinish sim.Cycle // when the bank's last data burst completes
}

// Controller is the memory controller front end.
type Controller struct {
	cfg       Config
	engine    *sim.Engine
	banks     []bank
	readQ     []*request
	writeBuf  []*request
	pendingWr map[arch.PhysAddr]int // line addr → count in write buffer
	busFreeAt sim.Cycle
	draining  bool
	kicked    bool // an issue event is already scheduled for this cycle

	queueLat *sim.Histogram // read queueing delay: arrival → scheduler pick
	readLat  *sim.Histogram // read service latency: arrival → data burst end
}

// New creates a controller attached to the engine.
func New(engine *sim.Engine, cfg Config) *Controller {
	if cfg.Banks <= 0 || cfg.RowBytes <= 0 {
		panic("dram: invalid config")
	}
	banks := make([]bank, cfg.Banks)
	for i := range banks {
		banks[i].openRow = -1
	}
	return &Controller{
		cfg:       cfg,
		engine:    engine,
		banks:     banks,
		pendingWr: make(map[arch.PhysAddr]int),
		queueLat:  engine.Stats.Histogram("dram.read_queue_cycles"),
		readLat:   engine.Stats.Histogram("dram.read_cycles"),
	}
}

// linesPerRow returns how many cache lines one row buffer holds.
func (c *Controller) linesPerRow() uint64 { return uint64(c.cfg.RowBytes / arch.LineSize) }

// mapAddr splits a line-aligned address into (bank, row). Columns within a
// row are contiguous so streaming accesses produce row-buffer hits.
func (c *Controller) mapAddr(addr arch.PhysAddr) (bankIdx int, row int64) {
	lineNum := uint64(addr) >> arch.LineShift
	colBits := lineNum / c.linesPerRow()
	bankIdx = int(colBits % uint64(c.cfg.Banks))
	row = int64(colBits / uint64(c.cfg.Banks))
	return bankIdx, row
}

// Read enqueues a line read; done fires when the data burst completes.
func (c *Controller) Read(addr arch.PhysAddr, done func()) {
	addr = addr.LineAligned()
	c.engine.Stats.Inc("dram.reads")
	if c.pendingWr[addr] > 0 {
		// Forward from the write buffer: the youngest matching write holds
		// the data, no DRAM access needed.
		c.engine.Stats.Inc("dram.write_buffer_forwards")
		c.queueLat.Observe(0)
		c.readLat.Observe(uint64(c.cfg.WBForwardLat))
		c.engine.Schedule(c.cfg.WBForwardLat, done)
		return
	}
	c.readQ = append(c.readQ, &request{addr: addr, arrival: c.engine.Now(), done: done})
	c.kick()
}

// Write enqueues a line write-back. It completes immediately from the
// caller's perspective; the controller drains the buffer per FR-FCFS
// drain-when-full.
func (c *Controller) Write(addr arch.PhysAddr, done func()) {
	addr = addr.LineAligned()
	c.engine.Stats.Inc("dram.writes")
	c.writeBuf = append(c.writeBuf, &request{addr: addr, write: true, arrival: c.engine.Now()})
	c.pendingWr[addr]++
	if len(c.writeBuf) >= c.cfg.WriteBufCap {
		if !c.draining {
			c.engine.Stats.Inc("dram.write_drains")
		}
		c.draining = true
	}
	if done != nil {
		c.engine.Schedule(0, done)
	}
	c.kick()
}

// Pending reports the number of requests not yet issued.
func (c *Controller) Pending() int { return len(c.readQ) + len(c.writeBuf) }

func (c *Controller) kick() {
	if c.kicked {
		return
	}
	c.kicked = true
	c.engine.Schedule(0, func() {
		c.kicked = false
		c.issue()
	})
}

// pool selects which queue the scheduler serves this round: reads unless
// we are draining, or opportunistically writes when no reads are waiting.
func (c *Controller) pool() []*request {
	if c.draining {
		return c.writeBuf
	}
	if len(c.readQ) == 0 && len(c.writeBuf) > 0 {
		return c.writeBuf
	}
	return c.readQ
}

// issue picks one request per FR-FCFS (row hits first, then oldest) and
// assigns it a bank/bus timeline, then reschedules itself for when the
// channel can accept the next request.
func (c *Controller) issue() {
	pool := c.pool()
	if len(pool) == 0 {
		if c.draining && len(c.writeBuf) == 0 {
			c.draining = false
		}
		return
	}
	now := c.engine.Now()
	best := -1
	for i, r := range pool {
		bankIdx, row := c.mapAddr(r.addr)
		hit := c.banks[bankIdx].openRow == row
		if best == -1 {
			best = i
			continue
		}
		bBank, bRow := c.mapAddr(pool[best].addr)
		bestHit := c.banks[bBank].openRow == bRow
		if hit && !bestHit {
			best = i
		} else if hit == bestHit && r.arrival < pool[best].arrival {
			best = i
		}
	}

	r := pool[best]
	bankIdx, row := c.mapAddr(r.addr)
	b := &c.banks[bankIdx]

	// Column commands to an open row pipeline behind each other (data
	// bursts are the limiter); activations and precharges must wait for
	// the bank's previous data burst to finish.
	var rowReady sim.Cycle
	switch {
	case b.openRow == row:
		rowReady = maxCycle(now, b.readyAt)
		c.engine.Stats.Inc("dram.row_hits")
	case b.openRow == -1:
		rowReady = maxCycle(now, b.lastFinish) + c.cfg.TRCD
		b.readyAt = rowReady
		c.engine.Stats.Inc("dram.row_closed")
	default:
		rowReady = maxCycle(now, b.lastFinish) + c.cfg.TRP + c.cfg.TRCD
		b.readyAt = rowReady
		c.engine.Stats.Inc("dram.row_conflicts")
	}
	dataStart := maxCycle(rowReady+c.cfg.TCL, c.busFreeAt)
	finish := dataStart + c.cfg.TBurst
	b.openRow = row
	b.lastFinish = finish
	c.busFreeAt = finish

	c.remove(pool, best)

	if r.write {
		c.pendingWr[r.addr]--
		if c.pendingWr[r.addr] == 0 {
			delete(c.pendingWr, r.addr)
		}
		if c.draining && len(c.writeBuf) == 0 {
			c.draining = false
		}
	} else {
		c.queueLat.Observe(uint64(now - r.arrival))
		c.readLat.Observe(uint64(finish - r.arrival))
		done := r.done
		c.engine.At(finish, done)
	}

	// The command bus can issue the next command shortly after this one,
	// letting other banks overlap their activations with this data burst.
	c.engine.Schedule(c.cfg.TCmd, c.issue)
}

// remove deletes index i from whichever queue pool aliases.
func (c *Controller) remove(pool []*request, i int) {
	target := pool[i]
	if len(c.readQ) > 0 && sliceContainsAt(c.readQ, target, i) {
		c.readQ = append(c.readQ[:i], c.readQ[i+1:]...)
		return
	}
	c.writeBuf = append(c.writeBuf[:i], c.writeBuf[i+1:]...)
}

func sliceContainsAt(q []*request, r *request, i int) bool {
	return i < len(q) && q[i] == r
}

func maxCycle(a, b sim.Cycle) sim.Cycle {
	if a > b {
		return a
	}
	return b
}
