// Package dram models the main-memory controller and DDR3-1066 timing of
// Table 2: a single channel/rank with 8 banks and 8 KB row buffers, an
// open-row policy, FR-FCFS scheduling with a 64-entry write buffer drained
// when full, and an 8-byte data bus with burst length 8 (one 64 B cache
// line per burst).
//
// The model is event-driven: callers enqueue line-granularity read/write
// requests; reads complete through a callback once the scheduler has
// issued them and the data burst finishes, writes complete immediately at
// acceptance (they are write-backs, off the critical path) and drain in
// the background.
//
// The controller is allocation-free in steady state: request structs are
// recycled through a free list, the bank/row decode is computed once at
// enqueue, the write-buffer membership check uses an open-addressing
// table instead of a Go map, and the scheduler's self-wakeup events are
// continuations bound once at construction.
package dram

import (
	"repro/internal/arch"
	"repro/internal/sim"
)

// Config holds controller geometry and timing. All latencies are in CPU
// cycles (2.67 GHz core, 533 MHz DDR3-1066 bus ⇒ 5 CPU cycles per bus
// cycle).
type Config struct {
	Banks        int       // banks per rank
	RowBytes     int       // row-buffer size in bytes
	WriteBufCap  int       // write-buffer entries; drain triggers when full
	TRCD         sim.Cycle // activate → column command
	TCL          sim.Cycle // column command → first data
	TRP          sim.Cycle // precharge
	TBurst       sim.Cycle // data burst occupancy of the channel
	TCmd         sim.Cycle // command-bus gap between successive commands
	WBForwardLat sim.Cycle // latency of a read forwarded from the write buffer
}

// DefaultConfig returns the Table 2 configuration: DDR3-1066 (CL 7),
// 1 channel, 1 rank, 8 banks, 8 KB row buffer, 64-entry write buffer.
func DefaultConfig() Config {
	return Config{
		Banks:        8,
		RowBytes:     8192,
		WriteBufCap:  64,
		TRCD:         35,
		TCL:          35,
		TRP:          35,
		TBurst:       20,
		TCmd:         5,
		WBForwardLat: 20,
	}
}

type request struct {
	addr    arch.PhysAddr // line-aligned main-memory address
	bank    int           // decoded once at enqueue
	row     int64
	write   bool
	arrival sim.Cycle
	done    sim.Cont
}

type bank struct {
	openRow    int64     // -1 when no row is open
	readyAt    sim.Cycle // when the open row can accept column commands
	lastFinish sim.Cycle // when the bank's last data burst completes
}

// Controller is the memory controller front end.
type Controller struct {
	cfg       Config
	engine    *sim.Engine
	banks     []bank
	readQ     []*request
	writeBuf  []*request
	pendingWr wrTable // line number → count in write buffer
	freeReq   []*request
	busFreeAt sim.Cycle
	draining  bool
	kicked    bool // an issue event is already scheduled for this cycle

	kickCont  sim.Cont // clears kicked, then issues
	issueCont sim.Cont // scheduler self-wakeup

	queueLat *sim.Histogram // read queueing delay: arrival → scheduler pick
	readLat  *sim.Histogram // read service latency: arrival → data burst end

	reads      *uint64
	writes     *uint64
	wbForwards *uint64
	wbDrains   *uint64
	rowHits    *uint64
	rowClosed  *uint64
	rowConfl   *uint64
}

// New creates a controller attached to the engine.
func New(engine *sim.Engine, cfg Config) *Controller {
	if cfg.Banks <= 0 || cfg.RowBytes <= 0 {
		panic("dram: invalid config")
	}
	banks := make([]bank, cfg.Banks)
	for i := range banks {
		banks[i].openRow = -1
	}
	c := &Controller{
		cfg:        cfg,
		engine:     engine,
		banks:      banks,
		queueLat:   engine.Stats.Histogram("dram.read_queue_cycles"),
		readLat:    engine.Stats.Histogram("dram.read_cycles"),
		reads:      engine.Stats.Counter("dram.reads"),
		writes:     engine.Stats.Counter("dram.writes"),
		wbForwards: engine.Stats.Counter("dram.write_buffer_forwards"),
		wbDrains:   engine.Stats.Counter("dram.write_drains"),
		rowHits:    engine.Stats.Counter("dram.row_hits"),
		rowClosed:  engine.Stats.Counter("dram.row_closed"),
		rowConfl:   engine.Stats.Counter("dram.row_conflicts"),
	}
	c.pendingWr.init(cfg.WriteBufCap)
	c.kickCont = sim.ContOf(func() {
		c.kicked = false
		c.issue()
	})
	c.issueCont = sim.ContOf(c.issue)
	return c
}

func (c *Controller) newRequest() *request {
	if n := len(c.freeReq); n > 0 {
		r := c.freeReq[n-1]
		c.freeReq[n-1] = nil
		c.freeReq = c.freeReq[:n-1]
		return r
	}
	return new(request)
}

func (c *Controller) freeRequest(r *request) {
	r.done = sim.Cont{}
	c.freeReq = append(c.freeReq, r)
}

// linesPerRow returns how many cache lines one row buffer holds.
func (c *Controller) linesPerRow() uint64 { return uint64(c.cfg.RowBytes / arch.LineSize) }

// mapAddr splits a line-aligned address into (bank, row). Columns within a
// row are contiguous so streaming accesses produce row-buffer hits.
func (c *Controller) mapAddr(addr arch.PhysAddr) (bankIdx int, row int64) {
	lineNum := uint64(addr) >> arch.LineShift
	colBits := lineNum / c.linesPerRow()
	bankIdx = int(colBits % uint64(c.cfg.Banks))
	row = int64(colBits / uint64(c.cfg.Banks))
	return bankIdx, row
}

// Read enqueues a line read; done fires when the data burst completes.
func (c *Controller) Read(addr arch.PhysAddr, done func()) {
	c.ReadCont(addr, sim.ContOf(done))
}

// ReadCont is the continuation form of Read.
func (c *Controller) ReadCont(addr arch.PhysAddr, done sim.Cont) {
	addr = addr.LineAligned()
	*c.reads++
	if c.pendingWr.get(uint64(addr)>>arch.LineShift) > 0 {
		// Forward from the write buffer: the youngest matching write holds
		// the data, no DRAM access needed.
		*c.wbForwards++
		c.queueLat.Observe(0)
		c.readLat.Observe(uint64(c.cfg.WBForwardLat))
		c.engine.ScheduleCont(c.cfg.WBForwardLat, done)
		return
	}
	r := c.newRequest()
	r.addr, r.write, r.arrival, r.done = addr, false, c.engine.Now(), done
	r.bank, r.row = c.mapAddr(addr)
	c.readQ = append(c.readQ, r)
	c.kick()
}

// Write enqueues a line write-back. It completes immediately from the
// caller's perspective; the controller drains the buffer per FR-FCFS
// drain-when-full.
func (c *Controller) Write(addr arch.PhysAddr, done func()) {
	addr = addr.LineAligned()
	*c.writes++
	r := c.newRequest()
	r.addr, r.write, r.arrival, r.done = addr, true, c.engine.Now(), sim.Cont{}
	r.bank, r.row = c.mapAddr(addr)
	c.writeBuf = append(c.writeBuf, r)
	c.pendingWr.inc(uint64(addr) >> arch.LineShift)
	if len(c.writeBuf) >= c.cfg.WriteBufCap {
		if !c.draining {
			*c.wbDrains++
		}
		c.draining = true
	}
	if done != nil {
		c.engine.Schedule(0, done)
	}
	c.kick()
}

// Pending reports the number of requests not yet issued.
func (c *Controller) Pending() int { return len(c.readQ) + len(c.writeBuf) }

func (c *Controller) kick() {
	if c.kicked {
		return
	}
	c.kicked = true
	c.engine.ScheduleCont(0, c.kickCont)
}

// pool selects which queue the scheduler serves this round: reads unless
// we are draining, or opportunistically writes when no reads are waiting.
func (c *Controller) pool() []*request {
	if c.draining {
		return c.writeBuf
	}
	if len(c.readQ) == 0 && len(c.writeBuf) > 0 {
		return c.writeBuf
	}
	return c.readQ
}

// issue picks one request per FR-FCFS (row hits first, then oldest) and
// assigns it a bank/bus timeline, then reschedules itself for when the
// channel can accept the next request.
func (c *Controller) issue() {
	pool := c.pool()
	if len(pool) == 0 {
		if c.draining && len(c.writeBuf) == 0 {
			c.draining = false
		}
		return
	}
	now := c.engine.Now()
	best := -1
	bestHit := false
	for i, r := range pool {
		hit := c.banks[r.bank].openRow == r.row
		if best == -1 {
			best, bestHit = i, hit
			continue
		}
		if hit && !bestHit {
			best, bestHit = i, hit
		} else if hit == bestHit && r.arrival < pool[best].arrival {
			best = i
		}
	}

	r := pool[best]
	b := &c.banks[r.bank]

	// Column commands to an open row pipeline behind each other (data
	// bursts are the limiter); activations and precharges must wait for
	// the bank's previous data burst to finish.
	var rowReady sim.Cycle
	switch {
	case b.openRow == r.row:
		rowReady = maxCycle(now, b.readyAt)
		*c.rowHits++
	case b.openRow == -1:
		rowReady = maxCycle(now, b.lastFinish) + c.cfg.TRCD
		b.readyAt = rowReady
		*c.rowClosed++
	default:
		rowReady = maxCycle(now, b.lastFinish) + c.cfg.TRP + c.cfg.TRCD
		b.readyAt = rowReady
		*c.rowConfl++
	}
	dataStart := maxCycle(rowReady+c.cfg.TCL, c.busFreeAt)
	finish := dataStart + c.cfg.TBurst
	b.openRow = r.row
	b.lastFinish = finish
	c.busFreeAt = finish

	c.remove(pool, best)

	if r.write {
		c.pendingWr.dec(uint64(r.addr) >> arch.LineShift)
		if c.draining && len(c.writeBuf) == 0 {
			c.draining = false
		}
		c.freeRequest(r)
	} else {
		c.queueLat.Observe(uint64(now - r.arrival))
		c.readLat.Observe(uint64(finish - r.arrival))
		c.engine.AtCont(finish, r.done)
		c.freeRequest(r)
	}

	// The command bus can issue the next command shortly after this one,
	// letting other banks overlap their activations with this data burst.
	c.engine.ScheduleCont(c.cfg.TCmd, c.issueCont)
}

// remove deletes index i from whichever queue pool aliases.
func (c *Controller) remove(pool []*request, i int) {
	target := pool[i]
	if len(c.readQ) > 0 && sliceContainsAt(c.readQ, target, i) {
		c.readQ = removeAt(c.readQ, i)
		return
	}
	c.writeBuf = removeAt(c.writeBuf, i)
}

// removeAt deletes index i preserving order, clearing the vacated tail
// slot so recycled requests are not retained through the queue's backing
// array.
func removeAt(q []*request, i int) []*request {
	n := len(q)
	copy(q[i:], q[i+1:])
	q[n-1] = nil
	return q[:n-1]
}

func sliceContainsAt(q []*request, r *request, i int) bool {
	return i < len(q) && q[i] == r
}

func maxCycle(a, b sim.Cycle) sim.Cycle {
	if a > b {
		return a
	}
	return b
}

// wrTable is a small open-addressing (linear probing) multiset of line
// numbers, tracking how many write-buffer entries cover each line. It
// replaces a map[PhysAddr]int on the per-read forwarding check. Deletion
// uses backward-shift so no tombstones accumulate.
type wrTable struct {
	keys   []uint64 // emptyKey marks a free slot
	counts []uint32
	used   int
	mask   uint64
}

const emptyKey = ^uint64(0)

func (t *wrTable) init(writeBufCap int) {
	size := 16
	for size < 4*writeBufCap {
		size <<= 1
	}
	t.grow(size)
}

func (t *wrTable) grow(size int) {
	oldKeys, oldCounts := t.keys, t.counts
	t.keys = make([]uint64, size)
	t.counts = make([]uint32, size)
	t.mask = uint64(size - 1)
	t.used = 0
	for i := range t.keys {
		t.keys[i] = emptyKey
	}
	for i, k := range oldKeys {
		if k != emptyKey {
			t.set(k, oldCounts[i])
		}
	}
}

// hash spreads line numbers (low-entropy sequential values) across slots.
func wrHash(key uint64) uint64 {
	key *= 0x9e3779b97f4a7c15 // Fibonacci hashing
	return key ^ (key >> 29)
}

func (t *wrTable) slot(key uint64) uint64 { return wrHash(key) & t.mask }

func (t *wrTable) get(key uint64) uint32 {
	for i := t.slot(key); ; i = (i + 1) & t.mask {
		switch t.keys[i] {
		case key:
			return t.counts[i]
		case emptyKey:
			return 0
		}
	}
}

func (t *wrTable) set(key uint64, count uint32) {
	for i := t.slot(key); ; i = (i + 1) & t.mask {
		if t.keys[i] == emptyKey {
			t.keys[i] = key
			t.counts[i] = count
			t.used++
			return
		}
		if t.keys[i] == key {
			t.counts[i] = count
			return
		}
	}
}

func (t *wrTable) inc(key uint64) {
	if t.used*2 >= len(t.keys) {
		t.grow(len(t.keys) * 2)
	}
	for i := t.slot(key); ; i = (i + 1) & t.mask {
		if t.keys[i] == key {
			t.counts[i]++
			return
		}
		if t.keys[i] == emptyKey {
			t.keys[i] = key
			t.counts[i] = 1
			t.used++
			return
		}
	}
}

func (t *wrTable) dec(key uint64) {
	for i := t.slot(key); ; i = (i + 1) & t.mask {
		if t.keys[i] == key {
			t.counts[i]--
			if t.counts[i] == 0 {
				t.del(i)
			}
			return
		}
		if t.keys[i] == emptyKey {
			return // not present (caller bug, but mirror map semantics)
		}
	}
}

// del empties slot i and backward-shifts the following cluster so every
// remaining key stays reachable from its home slot.
func (t *wrTable) del(i uint64) {
	t.keys[i] = emptyKey
	t.used--
	for j := (i + 1) & t.mask; t.keys[j] != emptyKey; j = (j + 1) & t.mask {
		home := t.slot(t.keys[j])
		// Shift back if j's key cannot be reached from its home slot once
		// slot i is empty (i.e. i lies within [home, j] on the ring).
		if (j-home)&t.mask >= (j-i)&t.mask {
			t.keys[i], t.counts[i] = t.keys[j], t.counts[j]
			t.keys[j] = emptyKey
			i = j
		}
	}
}
