package dram

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/sim"
)

// BenchmarkDRAMAccess measures a read plus a write-buffer write through
// the controller, including FR-FCFS scheduling, bank/row bookkeeping,
// and the pending-write line table, with addresses striding across rows
// and banks.
func BenchmarkDRAMAccess(b *testing.B) {
	e := sim.NewEngine()
	c := New(e, DefaultConfig())
	var sink int
	done := sim.ContOf(func() { sink++ })
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		// Stride by a prime number of lines so successive accesses walk
		// rows and banks instead of replaying one row buffer.
		addr := arch.PhysAddr(uint64(n) * 37 << arch.LineShift)
		c.ReadCont(addr, done)
		c.Write(addr, nil)
		e.Run()
	}
	if sink != b.N {
		b.Fatalf("completed %d reads, want %d", sink, b.N)
	}
}
