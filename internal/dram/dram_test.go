package dram

import (
	"math/rand"
	"testing"

	"repro/internal/arch"
	"repro/internal/sim"
)

func newTestController() (*sim.Engine, *Controller) {
	e := sim.NewEngine()
	return e, New(e, DefaultConfig())
}

// lineAddr builds a line-aligned address from a line number.
func lineAddr(n uint64) arch.PhysAddr { return arch.PhysAddr(n << arch.LineShift) }

func TestSingleReadLatency(t *testing.T) {
	e, c := newTestController()
	cfg := DefaultConfig()
	var doneAt sim.Cycle
	c.Read(lineAddr(0), func() { doneAt = e.Now() })
	e.Run()
	want := cfg.TRCD + cfg.TCL + cfg.TBurst // closed bank
	if doneAt != want {
		t.Fatalf("read latency = %d, want %d", doneAt, want)
	}
	if e.Stats.Get("dram.row_closed") != 1 {
		t.Fatal("expected a row-closed access")
	}
}

func TestRowHitIsFaster(t *testing.T) {
	e, c := newTestController()
	var first, second sim.Cycle
	c.Read(lineAddr(0), func() { first = e.Now() })
	c.Read(lineAddr(1), func() { second = e.Now() })
	e.Run()
	cfg := DefaultConfig()
	if second-first > cfg.TCL+cfg.TBurst {
		t.Fatalf("row hit latency %d too slow", second-first)
	}
	if e.Stats.Get("dram.row_hits") != 1 {
		t.Fatalf("row_hits = %d, want 1", e.Stats.Get("dram.row_hits"))
	}
}

func TestRowConflictIsSlower(t *testing.T) {
	e, c := newTestController()
	linesPerRow := uint64(DefaultConfig().RowBytes / arch.LineSize)
	banks := uint64(DefaultConfig().Banks)
	var first, second sim.Cycle
	c.Read(lineAddr(0), func() { first = e.Now() })
	// Same bank (stride = linesPerRow*banks), different row.
	c.Read(lineAddr(linesPerRow*banks), func() { second = e.Now() })
	e.Run()
	cfg := DefaultConfig()
	want := cfg.TRP + cfg.TRCD + cfg.TCL + cfg.TBurst
	if second-first < want {
		t.Fatalf("conflict latency %d, want >= %d", second-first, want)
	}
	if e.Stats.Get("dram.row_conflicts") != 1 {
		t.Fatalf("row_conflicts = %d, want 1", e.Stats.Get("dram.row_conflicts"))
	}
}

func TestBankParallelismOverlapsLatency(t *testing.T) {
	// Two reads to different banks should overlap their activations and
	// finish much sooner than strictly serialized accesses.
	e, c := newTestController()
	linesPerRow := uint64(DefaultConfig().RowBytes / arch.LineSize)
	var last sim.Cycle
	c.Read(lineAddr(0), func() { last = e.Now() })
	c.Read(lineAddr(linesPerRow), func() {
		if e.Now() > last {
			last = e.Now()
		}
	})
	e.Run()
	cfg := DefaultConfig()
	serialized := 2 * (cfg.TRCD + cfg.TCL + cfg.TBurst)
	if last >= serialized {
		t.Fatalf("no bank parallelism: finished at %d, serialized bound %d", last, serialized)
	}
}

func TestWriteCompletesImmediately(t *testing.T) {
	e, c := newTestController()
	var doneAt sim.Cycle = 999999
	c.Write(lineAddr(0), func() { doneAt = e.Now() })
	e.RunUntil(1)
	if doneAt != 0 {
		t.Fatalf("write ack at %d, want 0 (buffered)", doneAt)
	}
	e.Run()
	if e.Stats.Get("dram.writes") != 1 {
		t.Fatal("write not counted")
	}
}

func TestWriteBufferForwarding(t *testing.T) {
	e, c := newTestController()
	c.Write(lineAddr(7), nil)
	var doneAt sim.Cycle
	c.Read(lineAddr(7), func() { doneAt = e.Now() })
	e.RunUntil(DefaultConfig().WBForwardLat + 1)
	if doneAt != DefaultConfig().WBForwardLat {
		t.Fatalf("forwarded read at %d, want %d", doneAt, DefaultConfig().WBForwardLat)
	}
	if e.Stats.Get("dram.write_buffer_forwards") != 1 {
		t.Fatal("forward not counted")
	}
	e.Run()
}

func TestWriteDrainWhenFull(t *testing.T) {
	e, c := newTestController()
	cap := DefaultConfig().WriteBufCap
	for i := 0; i < cap; i++ {
		c.Write(lineAddr(uint64(i*997)), nil)
	}
	if e.Stats.Get("dram.write_drains") != 1 {
		t.Fatalf("drains = %d, want 1", e.Stats.Get("dram.write_drains"))
	}
	e.Run()
	if c.Pending() != 0 {
		t.Fatalf("pending = %d after drain, want 0", c.Pending())
	}
}

func TestDrainBlocksReads(t *testing.T) {
	// A read arriving during a full-buffer drain must wait for the drain.
	e, c := newTestController()
	cfg := DefaultConfig()
	for i := 0; i < cfg.WriteBufCap; i++ {
		c.Write(lineAddr(uint64(i)*uint64(cfg.RowBytes/arch.LineSize)*uint64(cfg.Banks)), nil)
	}
	var readDone sim.Cycle
	c.Read(lineAddr(1<<30), func() { readDone = e.Now() })
	e.Run()
	soloRead := cfg.TRCD + cfg.TCL + cfg.TBurst
	if readDone <= soloRead*2 {
		t.Fatalf("read finished at %d; expected it to wait behind the drain", readDone)
	}
}

func TestAllRequestsComplete(t *testing.T) {
	e, c := newTestController()
	const n = 500
	done := 0
	for i := 0; i < n; i++ {
		if i%3 == 0 {
			c.Write(lineAddr(uint64(i*13)), nil)
		} else {
			c.Read(lineAddr(uint64(i*29)), func() { done++ })
		}
	}
	e.Run()
	wantReads := 0
	for i := 0; i < n; i++ {
		if i%3 != 0 {
			wantReads++
		}
	}
	if done != wantReads {
		t.Fatalf("completed reads = %d, want %d", done, wantReads)
	}
	if c.Pending() != 0 {
		t.Fatalf("pending = %d, want 0", c.Pending())
	}
}

func TestFRFCFSPrefersRowHit(t *testing.T) {
	e, c := newTestController()
	linesPerRow := uint64(DefaultConfig().RowBytes / arch.LineSize)
	banks := uint64(DefaultConfig().Banks)
	// Open row 0 of bank 0.
	e2 := make(chan struct{}, 8)
	_ = e2
	order := []string{}
	c.Read(lineAddr(0), func() { order = append(order, "warm") })
	e.Run()
	// Now enqueue: first a conflict (row 1, bank 0), then a hit (row 0).
	c.Read(lineAddr(linesPerRow*banks), func() { order = append(order, "conflict") })
	c.Read(lineAddr(2), func() { order = append(order, "hit") })
	e.Run()
	if len(order) != 3 || order[1] != "hit" || order[2] != "conflict" {
		t.Fatalf("FR-FCFS order = %v, want hit before conflict", order)
	}
}

func TestMapAddrGeometry(t *testing.T) {
	_, c := newTestController()
	linesPerRow := uint64(DefaultConfig().RowBytes / arch.LineSize)
	b0, r0 := c.mapAddr(lineAddr(0))
	b1, r1 := c.mapAddr(lineAddr(linesPerRow - 1))
	if b0 != b1 || r0 != r1 {
		t.Fatal("lines within one row must map to the same (bank,row)")
	}
	b2, _ := c.mapAddr(lineAddr(linesPerRow))
	if b2 == b0 {
		t.Fatal("next row chunk should map to the next bank")
	}
}

func TestConservationUnderRandomTraffic(t *testing.T) {
	// Property: every read completes exactly once, no request is lost or
	// duplicated, and the queues drain, for arbitrary interleavings.
	e, c := newTestController()
	rng := rand.New(rand.NewSource(4242))
	completions := map[int]int{}
	reads := 0
	for i := 0; i < 3000; i++ {
		addr := lineAddr(uint64(rng.Intn(1 << 20)))
		if rng.Intn(3) == 0 {
			c.Write(addr, nil)
		} else {
			id := reads
			reads++
			c.Read(addr, func() { completions[id]++ })
		}
		if rng.Intn(8) == 0 {
			e.RunUntil(e.Now() + sim.Cycle(rng.Intn(200)))
		}
	}
	e.Run()
	if c.Pending() != 0 {
		t.Fatalf("pending = %d after drain", c.Pending())
	}
	if len(completions) != reads {
		t.Fatalf("completed %d distinct reads, want %d", len(completions), reads)
	}
	for id, n := range completions {
		if n != 1 {
			t.Fatalf("read %d completed %d times", id, n)
		}
	}
}

func TestBusNeverDoubleBooked(t *testing.T) {
	// Property: data bursts never overlap — total run time of N row-hit
	// reads is at least N × TBurst.
	e, c := newTestController()
	cfg := DefaultConfig()
	const n = 200
	done := 0
	for i := 0; i < n; i++ {
		c.Read(lineAddr(uint64(i)), func() { done++ })
	}
	end := e.Run()
	if done != n {
		t.Fatalf("done = %d", done)
	}
	if end < sim.Cycle(n)*cfg.TBurst {
		t.Fatalf("finished in %d cycles; %d bursts need ≥ %d — bus double-booked",
			end, n, sim.Cycle(n)*cfg.TBurst)
	}
}
