package dram

import "repro/internal/sim"

// Snapshot support: at a quiescence point the controller's read queue
// and write buffer have fully drained (issue self-reschedules while any
// request is pooled), so the only state that shapes future timing is
// the per-bank open rows / ready times and the data-bus horizon.

// Snapshot is an immutable capture of a drained controller.
type Snapshot struct {
	banks     []bank
	busFreeAt sim.Cycle
}

// Snapshot captures the bank and bus state. It panics if requests are
// still queued — snapshots are only taken after the engine drains.
func (c *Controller) Snapshot() *Snapshot {
	if len(c.readQ) != 0 || len(c.writeBuf) != 0 || c.draining {
		panic("dram: snapshot with queued requests")
	}
	return &Snapshot{
		banks:     append([]bank(nil), c.banks...),
		busFreeAt: c.busFreeAt,
	}
}

// Restore loads the captured bank/bus state into this controller, which
// must have the same bank count.
func (c *Controller) Restore(s *Snapshot) {
	if len(s.banks) != len(c.banks) {
		panic("dram: restore bank-count mismatch")
	}
	copy(c.banks, s.banks)
	c.busFreeAt = s.busFreeAt
}
