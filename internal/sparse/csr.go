package sparse

// CSR is the Compressed Sparse Row software representation the paper
// compares against (Intel MKL's three-array variant [26]): 8-byte values,
// 4-byte column indices, and a 4-byte row-pointer array.
type CSR struct {
	Vals   []float64
	Cols   []int32
	RowPtr []int32
	NCols  int
}

// NewCSR converts a matrix to CSR.
func NewCSR(m *Matrix) *CSR {
	c := &CSR{
		Vals:   make([]float64, 0, m.NNZ()),
		Cols:   make([]int32, 0, m.NNZ()),
		RowPtr: make([]int32, m.Rows+1),
		NCols:  m.Cols,
	}
	for r := 0; r < m.Rows; r++ {
		c.RowPtr[r] = int32(len(c.Vals))
		c.Vals = append(c.Vals, m.RowVals[r]...)
		c.Cols = append(c.Cols, m.RowCols[r]...)
	}
	c.RowPtr[m.Rows] = int32(len(c.Vals))
	return c
}

// Rows returns the row count.
func (c *CSR) Rows() int { return len(c.RowPtr) - 1 }

// NNZ returns the stored non-zero count.
func (c *CSR) NNZ() int { return len(c.Vals) }

// Multiply computes y = M·x.
func (c *CSR) Multiply(x []float64) []float64 {
	if len(x) != c.NCols {
		panic("sparse: dimension mismatch")
	}
	y := make([]float64, c.Rows())
	for r := 0; r < c.Rows(); r++ {
		var sum float64
		for i := c.RowPtr[r]; i < c.RowPtr[r+1]; i++ {
			sum += c.Vals[i] * x[c.Cols[i]]
		}
		y[r] = sum
	}
	return y
}

// MemoryBytes returns the representation's footprint: the paper's
// "roughly 1.5× the non-zero values" (8 B value + 4 B index per non-zero,
// plus the row pointers).
func (c *CSR) MemoryBytes() int {
	return len(c.Vals)*8 + len(c.Cols)*4 + len(c.RowPtr)*4
}

// Insert adds a new non-zero, demonstrating the dynamic-update cost the
// paper highlights: every array must shift, an O(nnz) operation (compare
// OverlayMatrix.Insert, which moves one cache line).
func (c *CSR) Insert(r int, col int32, v float64) {
	pos := c.RowPtr[r+1] // insert at end of row r
	for i := c.RowPtr[r]; i < c.RowPtr[r+1]; i++ {
		if c.Cols[i] == col {
			c.Vals[i] = v
			return
		}
		if c.Cols[i] > col {
			pos = i
			break
		}
	}
	c.Vals = append(c.Vals, 0)
	copy(c.Vals[pos+1:], c.Vals[pos:])
	c.Vals[pos] = v
	c.Cols = append(c.Cols, 0)
	copy(c.Cols[pos+1:], c.Cols[pos:])
	c.Cols[pos] = col
	for i := r + 1; i < len(c.RowPtr); i++ {
		c.RowPtr[i]++
	}
}
