package sparse

import (
	"fmt"
	"sort"
)

// SuiteSpec names one synthetic stand-in for a UF-collection matrix.
type SuiteSpec struct {
	Name      string
	Rows      int
	Cols      int
	TargetNNZ int
	TargetL   float64
	Seed      int64
}

// SuiteSize matches the paper: 87 large real-world matrices.
const SuiteSize = 87

// SuiteSpecs returns the 87-matrix suite. Target L values sweep 1.05–8.0
// (the paper's observed range; its extremes are poisson3Db at L ≈ 1.09
// and raefsky4 at L = 8), with sizes varied deterministically. Matrices
// are scaled to tens of thousands of non-zeros so a full sweep simulates
// in laptop time; both representations scale identically (DESIGN.md).
func SuiteSpecs() []SuiteSpec {
	specs := make([]SuiteSpec, 0, SuiteSize)
	for i := 0; i < SuiteSize; i++ {
		frac := float64(i) / float64(SuiteSize-1)
		targetL := 1.05 + frac*(8.0-1.05)
		name := fmt.Sprintf("synth%02d", i+1)
		switch i {
		case 0:
			name = "poisson3Db-like"
			targetL = 1.09
		case SuiteSize - 1:
			name = "raefsky4-like"
			targetL = 8.0
		}
		// Large matrices (32 MB dense) with ~12 non-zeros per row: the
		// same page-level sparsity regime as the UF collection's big
		// matrices, scaled ~60× down in non-zero count (DESIGN.md).
		rows := 2048
		nnz := rows * (10 + i%5)

		specs = append(specs, SuiteSpec{
			Name: name, Rows: rows, Cols: rows,
			TargetNNZ: nnz, TargetL: targetL, Seed: int64(7000 + i),
		})
	}
	return specs
}

// Build materialises the spec's matrix.
func (s SuiteSpec) Build() *Matrix {
	return Random(s.Name, s.Rows, s.Cols, s.TargetNNZ, s.TargetL, s.Seed)
}

// BuildSuite materialises all matrices, sorted by ascending measured L —
// the x-axis order of Figures 10 and 11.
func BuildSuite() []*Matrix {
	specs := SuiteSpecs()
	ms := make([]*Matrix, len(specs))
	for i, s := range specs {
		ms[i] = s.Build()
	}
	sort.SliceStable(ms, func(i, j int) bool { return ms[i].L() < ms[j].L() })
	return ms
}
