package sparse

import (
	"fmt"
	"math"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/vm"
)

// OverlayMatrix is the paper's hardware sparse representation (§5.2): the
// matrix occupies a dense virtual range whose pages all map to the zero
// physical page, and every cache line containing a non-zero value lives
// in the page's overlay. Software runs dense-matrix code; the hardware's
// overlay computation model iterates only the non-zero (overlay) lines.
type OverlayMatrix struct {
	F    *core.Framework
	Proc *vm.Process
	Base arch.VirtAddr // matrix origin (page aligned)
	Rows int
	Cols int
}

// BuildOverlay materialises m as an overlay matrix at base in proc's
// address space. base must be page aligned.
func BuildOverlay(f *core.Framework, proc *vm.Process, base arch.VirtAddr, m *Matrix) (*OverlayMatrix, error) {
	if base.Offset() != 0 {
		return nil, fmt.Errorf("sparse: base %#x not page aligned", uint64(base))
	}
	bytes := m.Rows * m.Cols * 8
	pages := (bytes + arch.PageSize - 1) / arch.PageSize
	f.VM.MapZero(proc, base.Page(), pages, true)
	o := &OverlayMatrix{F: f, Proc: proc, Base: base, Rows: m.Rows, Cols: m.Cols}
	for r := 0; r < m.Rows; r++ {
		for i, c := range m.RowCols[r] {
			if err := o.Insert(r, int(c), m.RowVals[r][i]); err != nil {
				return nil, err
			}
		}
	}
	return o, nil
}

// addr returns the virtual address of element (r, c) in the dense layout.
func (o *OverlayMatrix) addr(r, c int) arch.VirtAddr {
	return o.Base + arch.VirtAddr((r*o.Cols+c)*8)
}

// Insert sets element (r, c): a store that, on a fresh line, triggers a
// single overlaying write — the O(1) dynamic update the paper contrasts
// with CSR's array shifting.
func (o *OverlayMatrix) Insert(r, c int, v float64) error {
	return o.F.Store64(o.Proc.PID, o.addr(r, c), math.Float64bits(v))
}

// At reads element (r, c) through the overlay access semantics.
func (o *OverlayMatrix) At(r, c int) (float64, error) {
	bits, err := o.F.Load64(o.Proc.PID, o.addr(r, c))
	return math.Float64frombits(bits), err
}

// PageLines returns the page count of the matrix region and a callback
// iterating (vpn, OBitVector) for each page — the information the
// overlay-aware hardware uses to visit only non-zero lines.
func (o *OverlayMatrix) Pages() int {
	bytes := o.Rows * o.Cols * 8
	return (bytes + arch.PageSize - 1) / arch.PageSize
}

// OBitsOf returns the overlay bit vector of the i-th matrix page.
func (o *OverlayMatrix) OBitsOf(page int) arch.OBitVector {
	obits, _ := o.F.OverlayInfo(o.Proc.PID, o.Base.Page()+arch.VPN(page))
	return obits
}

// Multiply computes y = M·x functionally using the overlay computation
// model: only overlay (non-zero) lines are visited; every value in a
// visited line participates (zero padding contributes nothing).
func (o *OverlayMatrix) Multiply(x []float64) ([]float64, error) {
	if len(x) != o.Cols {
		return nil, fmt.Errorf("sparse: dimension mismatch")
	}
	y := make([]float64, o.Rows)
	linesPerRow := o.Cols / ValuesPerLine
	var buf [arch.LineSize]byte
	for page := 0; page < o.Pages(); page++ {
		obits := o.OBitsOf(page)
		if obits.Empty() {
			continue
		}
		pageVA := o.Base + arch.VirtAddr(page)*arch.PageSize
		for _, line := range obits.Lines() {
			va := pageVA + arch.VirtAddr(line*arch.LineSize)
			globalLine := int(uint64(va-o.Base) >> arch.LineShift)
			row := globalLine / linesPerRow
			firstCol := (globalLine % linesPerRow) * ValuesPerLine
			if err := o.F.Load(o.Proc.PID, va, buf[:]); err != nil {
				return nil, err
			}
			for k := 0; k < ValuesPerLine; k++ {
				bits := uint64(0)
				for b := 0; b < 8; b++ {
					bits |= uint64(buf[k*8+b]) << (8 * b)
				}
				v := math.Float64frombits(bits)
				if v != 0 {
					y[row] += v * x[firstCol+k]
				}
			}
		}
	}
	return y, nil
}

// MemoryBytes returns the representation's true footprint: the Overlay
// Memory Store segments backing the matrix pages (metadata lines and
// segment rounding included). The shared zero page is free.
func (o *OverlayMatrix) MemoryBytes() int {
	total := 0
	for page := 0; page < o.Pages(); page++ {
		_, b := o.F.OverlayInfo(o.Proc.PID, o.Base.Page()+arch.VPN(page))
		total += b
	}
	return total
}

// LineBytes returns the overlay data bytes alone — 64 B per non-zero
// line, the accounting Figure 10/11 of the paper uses (segment rounding
// and metadata excluded; MemoryBytes reports the full engineering cost).
func (o *OverlayMatrix) LineBytes() int {
	total := 0
	for page := 0; page < o.Pages(); page++ {
		obits, _ := o.F.OverlayInfo(o.Proc.PID, o.Base.Page()+arch.VPN(page))
		total += obits.Count() * arch.LineSize
	}
	return total
}
