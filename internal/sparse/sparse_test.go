package sparse

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/vm"
)

// Kind aliases keep the trace-count tests readable.
const (
	cpuLoad        = cpu.Load
	cpuStore       = cpu.Store
	cpuLoadOverlay = cpu.LoadOverlay
)

func approxEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9*(1+math.Abs(a[i])) {
			return false
		}
	}
	return true
}

func testVector(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

func smallMatrix() *Matrix {
	m := NewMatrix("small", 16, 32)
	m.Set(0, 0, 1.5)
	m.Set(0, 1, -2.0)
	m.Set(3, 31, 4.0)
	m.Set(7, 8, 0.5)
	m.Set(7, 9, 0.25)
	m.Set(15, 16, 3.0)
	return m
}

func TestMatrixSetAtNNZ(t *testing.T) {
	m := smallMatrix()
	if m.NNZ() != 6 {
		t.Fatalf("NNZ = %d", m.NNZ())
	}
	if m.At(0, 1) != -2.0 || m.At(1, 1) != 0 {
		t.Fatal("At wrong")
	}
	m.Set(0, 1, 9.0) // update in place
	if m.NNZ() != 6 || m.At(0, 1) != 9.0 {
		t.Fatal("update changed NNZ or lost value")
	}
}

func TestNNZBlocksAndL(t *testing.T) {
	m := NewMatrix("l", 8, 64)
	// Line 0 of row 0: 4 values; line 3 of row 1: 1 value.
	for c := 0; c < 4; c++ {
		m.Set(0, c, 1)
	}
	m.Set(1, 3*8, 1)
	if got := m.NNZBlocks(64); got != 2 {
		t.Fatalf("NNZBlocks(64) = %d, want 2", got)
	}
	if l := m.L(); l != 2.5 {
		t.Fatalf("L = %v, want 2.5", l)
	}
	// 16-byte blocks: row0 cols 0..3 → 2 blocks; the single value → 1.
	if got := m.NNZBlocks(16); got != 3 {
		t.Fatalf("NNZBlocks(16) = %d, want 3", got)
	}
	// Page-sized blocks: row 0 and 1 are in the same 4 KB block (64 B/row
	// × 8 rows = 512 B < 4 KB ⇒ 1 block).
	if got := m.NNZBlocks(4096); got != 1 {
		t.Fatalf("NNZBlocks(4096) = %d, want 1", got)
	}
}

func TestCSRMatchesDense(t *testing.T) {
	m := Random("r", 64, 64, 500, 3.0, 42)
	x := testVector(m.Cols, 1)
	want := m.MultiplyDense(x)
	got := NewCSR(m).Multiply(x)
	if !approxEqual(want, got) {
		t.Fatal("CSR SpMV diverges from dense reference")
	}
}

func TestCSRMemoryBytes(t *testing.T) {
	m := Random("r", 64, 64, 500, 3.0, 42)
	c := NewCSR(m)
	want := c.NNZ()*12 + (m.Rows+1)*4
	if c.MemoryBytes() != want {
		t.Fatalf("MemoryBytes = %d, want %d", c.MemoryBytes(), want)
	}
}

func TestCSRInsert(t *testing.T) {
	m := smallMatrix()
	c := NewCSR(m)
	c.Insert(3, 5, 7.5)
	m.Set(3, 5, 7.5)
	x := testVector(m.Cols, 2)
	if !approxEqual(m.MultiplyDense(x), c.Multiply(x)) {
		t.Fatal("insert broke CSR")
	}
}

func newSparseFW(t *testing.T) (*core.Framework, *vm.Process) {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.MemoryPages = 16384
	f, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f, f.VM.NewProcess()
}

func TestOverlayMatrixMatchesDense(t *testing.T) {
	f, proc := newSparseFW(t)
	m := Random("r", 64, 64, 400, 2.5, 7)
	o, err := BuildOverlay(f, proc, 0, m)
	if err != nil {
		t.Fatal(err)
	}
	x := testVector(m.Cols, 3)
	got, err := o.Multiply(x)
	if err != nil {
		t.Fatal(err)
	}
	if !approxEqual(m.MultiplyDense(x), got) {
		t.Fatal("overlay SpMV diverges from dense reference")
	}
}

func TestOverlayMatrixAt(t *testing.T) {
	f, proc := newSparseFW(t)
	m := smallMatrix()
	o, err := BuildOverlay(f, proc, 0, m)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			got, err := o.At(r, c)
			if err != nil {
				t.Fatal(err)
			}
			if got != m.At(r, c) {
				t.Fatalf("At(%d,%d) = %v, want %v", r, c, got, m.At(r, c))
			}
		}
	}
}

func TestOverlayDynamicInsert(t *testing.T) {
	f, proc := newSparseFW(t)
	m := smallMatrix()
	o, err := BuildOverlay(f, proc, 0, m)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Insert(5, 17, 2.25); err != nil {
		t.Fatal(err)
	}
	m.Set(5, 17, 2.25)
	x := testVector(m.Cols, 4)
	got, _ := o.Multiply(x)
	if !approxEqual(m.MultiplyDense(x), got) {
		t.Fatal("dynamic insert broke overlay matrix")
	}
}

func TestOverlayMemoryTracksNNZLines(t *testing.T) {
	f, proc := newSparseFW(t)
	m := Random("r", 128, 128, 600, 2.0, 9)
	o, err := BuildOverlay(f, proc, 0, m)
	if err != nil {
		t.Fatal(err)
	}
	bytes := o.MemoryBytes()
	if bytes == 0 {
		t.Fatal("overlay reports zero footprint")
	}
	// Footprint must be at least the non-zero lines and far less than the
	// dense layout for a sparse matrix.
	if bytes < m.NNZBlocks(64)*arch.LineSize {
		t.Fatalf("footprint %d below line floor %d", bytes, m.NNZBlocks(64)*64)
	}
	if bytes >= m.DenseBytes() {
		t.Fatalf("footprint %d not below dense %d", bytes, m.DenseBytes())
	}
}

func TestSuiteSpecs(t *testing.T) {
	specs := SuiteSpecs()
	if len(specs) != SuiteSize {
		t.Fatalf("suite = %d, want %d", len(specs), SuiteSize)
	}
	if specs[0].Name != "poisson3Db-like" || specs[SuiteSize-1].Name != "raefsky4-like" {
		t.Fatal("extreme matrices missing")
	}
}

func TestRandomHitsTargetL(t *testing.T) {
	for _, target := range []float64{1.09, 2.5, 4.5, 8.0} {
		m := Random("t", 512, 512, 10000, target, 99)
		l := m.L()
		if math.Abs(l-target) > 0.35 {
			t.Fatalf("target L %v produced %v", target, l)
		}
	}
}

func TestSuiteLSpreadAndOrder(t *testing.T) {
	ms := BuildSuite()
	if len(ms) != SuiteSize {
		t.Fatal("wrong suite size")
	}
	prev := 0.0
	for _, m := range ms {
		l := m.L()
		if l < prev {
			t.Fatal("suite not sorted by L")
		}
		prev = l
	}
	if ms[0].L() > 1.4 || ms[SuiteSize-1].L() < 7.2 {
		t.Fatalf("L range [%v, %v] too narrow", ms[0].L(), ms[SuiteSize-1].L())
	}
}

func TestTracesCoverExpectedTraffic(t *testing.T) {
	f, proc := newSparseFW(t)
	m := Random("t", 64, 64, 300, 3.0, 5)

	o, layout, err := MapOverlay(f, proc, m)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := OverlayTrace(o, layout)
	if err != nil {
		t.Fatal(err)
	}
	loads, overlayLoads, stores := 0, 0, 0
	for {
		in, ok := tr.Next()
		if !ok {
			break
		}
		switch in.Kind {
		case cpuLoad:
			loads++
		case cpuStore:
			stores++
		case cpuLoadOverlay:
			overlayLoads++
		}
	}
	// One overlay-model load per non-zero matrix line, one x load each.
	if overlayLoads != m.NNZBlocks(64) {
		t.Fatalf("overlay trace matrix loads = %d, want %d", overlayLoads, m.NNZBlocks(64))
	}
	if loads != m.NNZBlocks(64) {
		t.Fatalf("overlay trace x loads = %d, want %d", loads, m.NNZBlocks(64))
	}
	rowsWithData := 0
	for r := 0; r < m.Rows; r++ {
		if len(m.RowCols[r]) > 0 {
			rowsWithData++
		}
	}
	if stores != rowsWithData {
		t.Fatalf("overlay trace stores = %d, want %d", stores, rowsWithData)
	}
}

func TestDenseTraceLineCount(t *testing.T) {
	f, proc := newSparseFW(t)
	m := Random("t", 32, 64, 100, 2.0, 6)
	layout, err := MapDense(f, proc, m)
	if err != nil {
		t.Fatal(err)
	}
	tr := DenseTrace(m, layout)
	loads, stores := 0, 0
	for {
		in, ok := tr.Next()
		if !ok {
			break
		}
		switch in.Kind {
		case cpuLoad:
			loads++
		case cpuStore:
			stores++
		}
	}
	wantLoads := 2 * m.Rows * (m.Cols / ValuesPerLine)
	if loads != wantLoads || stores != m.Rows {
		t.Fatalf("dense trace loads=%d stores=%d, want %d/%d", loads, stores, wantLoads, m.Rows)
	}
}

func TestCSRTraceGathersPerNNZ(t *testing.T) {
	f, proc := newSparseFW(t)
	m := Random("t", 64, 64, 300, 3.0, 8)
	c := NewCSR(m)
	layout, err := MapCSR(f, proc, c)
	if err != nil {
		t.Fatal(err)
	}
	tr := CSRTrace(c, layout)
	var xGathers, stores int
	for {
		in, ok := tr.Next()
		if !ok {
			break
		}
		if in.Kind == cpuLoad && in.VA >= layout.XBase && in.VA < layout.YBase {
			xGathers++
		}
		if in.Kind == cpuStore {
			stores++
		}
	}
	if xGathers != c.NNZ() {
		t.Fatalf("x gathers = %d, want %d (one per non-zero)", xGathers, c.NNZ())
	}
	if stores != m.Rows {
		t.Fatalf("stores = %d, want %d", stores, m.Rows)
	}
}
