// Package sparse implements the sparse-data-structure study of §5.2:
// a reference sparse-matrix type, the CSR software representation the
// paper compares against, the overlay-based hardware representation
// (virtual pages mapped to the zero page with non-zero cache lines held
// in overlays), SpMV kernels over all three, timing-trace generators for
// the simulator, and a deterministic synthetic stand-in for the 87
// UF Sparse Matrix Collection matrices (see DESIGN.md).
package sparse

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/arch"
)

// ValuesPerLine is how many float64 values one 64 B cache line holds.
const ValuesPerLine = arch.LineSize / 8

// Matrix is a sparse matrix in per-row coordinate form, the neutral
// format every representation is built from. Cols must be a multiple of
// ValuesPerLine so cache lines never straddle rows in the dense layout.
type Matrix struct {
	Name       string
	Rows, Cols int
	RowCols    [][]int32   // sorted column indices per row
	RowVals    [][]float64 // values parallel to RowCols
	nnz        int
}

// NewMatrix creates an empty matrix.
func NewMatrix(name string, rows, cols int) *Matrix {
	if cols%ValuesPerLine != 0 {
		panic(fmt.Sprintf("sparse: cols %d not a multiple of %d", cols, ValuesPerLine))
	}
	return &Matrix{
		Name: name, Rows: rows, Cols: cols,
		RowCols: make([][]int32, rows),
		RowVals: make([][]float64, rows),
	}
}

// Set inserts or updates element (r, c). Setting zero is rejected — the
// type tracks structural non-zeros.
func (m *Matrix) Set(r, c int, v float64) {
	if v == 0 {
		panic("sparse: Set with zero value")
	}
	if r < 0 || r >= m.Rows || c < 0 || c >= m.Cols {
		panic(fmt.Sprintf("sparse: Set(%d,%d) out of range %dx%d", r, c, m.Rows, m.Cols))
	}
	cols := m.RowCols[r]
	i := sort.Search(len(cols), func(i int) bool { return cols[i] >= int32(c) })
	if i < len(cols) && cols[i] == int32(c) {
		m.RowVals[r][i] = v
		return
	}
	m.RowCols[r] = append(cols, 0)
	copy(m.RowCols[r][i+1:], m.RowCols[r][i:])
	m.RowCols[r][i] = int32(c)
	m.RowVals[r] = append(m.RowVals[r], 0)
	copy(m.RowVals[r][i+1:], m.RowVals[r][i:])
	m.RowVals[r][i] = v
	m.nnz++
}

// At returns element (r, c).
func (m *Matrix) At(r, c int) float64 {
	cols := m.RowCols[r]
	i := sort.Search(len(cols), func(i int) bool { return cols[i] >= int32(c) })
	if i < len(cols) && cols[i] == int32(c) {
		return m.RowVals[r][i]
	}
	return 0
}

// NNZ returns the number of structural non-zeros.
func (m *Matrix) NNZ() int { return m.nnz }

// NNZBlocks returns how many aligned blocks of blockBytes contain at
// least one non-zero, in the dense row-major float64 layout. With
// blockBytes = 64 this is the paper's "non-zero cache line" count; other
// sizes drive Figure 11.
func (m *Matrix) NNZBlocks(blockBytes int) int {
	if blockBytes%8 != 0 {
		panic("sparse: block size must hold whole float64s")
	}
	valuesPerBlock := blockBytes / 8
	count := 0
	rowBytes := m.Cols * 8
	if blockBytes >= rowBytes {
		// Blocks span whole rows.
		rowsPerBlock := blockBytes / rowBytes
		for r := 0; r < m.Rows; r += rowsPerBlock {
			hit := false
			for rr := r; rr < r+rowsPerBlock && rr < m.Rows; rr++ {
				if len(m.RowCols[rr]) > 0 {
					hit = true
					break
				}
			}
			if hit {
				count++
			}
		}
		return count
	}
	for r := 0; r < m.Rows; r++ {
		prev := -1
		for _, c := range m.RowCols[r] {
			b := int(c) / valuesPerBlock
			if b != prev {
				count++
				prev = b
			}
		}
	}
	return count
}

// L is the paper's non-zero value locality metric: the average number of
// non-zero values in each non-zero cache line (1 ≤ L ≤ 8).
func (m *Matrix) L() float64 {
	lines := m.NNZBlocks(arch.LineSize)
	if lines == 0 {
		return 0
	}
	return float64(m.nnz) / float64(lines)
}

// MultiplyDense computes y = M·x with a dense reference loop; the ground
// truth every representation is checked against.
func (m *Matrix) MultiplyDense(x []float64) []float64 {
	if len(x) != m.Cols {
		panic("sparse: dimension mismatch")
	}
	y := make([]float64, m.Rows)
	for r := 0; r < m.Rows; r++ {
		var sum float64
		for i, c := range m.RowCols[r] {
			sum += m.RowVals[r][i] * x[c]
		}
		y[r] = sum
	}
	return y
}

// DenseBytes returns the dense representation's footprint.
func (m *Matrix) DenseBytes() int { return m.Rows * m.Cols * 8 }

// IdealBytes returns the information-theoretic floor the paper's
// Figure 11 normalises against: the non-zero values alone.
func (m *Matrix) IdealBytes() int { return m.nnz * 8 }

// LineID returns the dense-layout cache-line number of element (r, c).
func (m *Matrix) LineID(r, c int) int {
	return r*(m.Cols/ValuesPerLine) + c/ValuesPerLine
}

// Random generates a matrix with ≈targetNNZ non-zeros whose non-zero
// value locality lands near targetL. Placement follows the structure of
// the UF collection's large PDE/graph matrices: non-zeros cluster into a
// limited set of "active" 4 KB pages (around ten non-zeros per touched
// page, as the paper's 53× page-granularity overhead implies), chosen
// from a diagonal band plus uniform scatter. Deterministic in seed.
func Random(name string, rows, cols, targetNNZ int, targetL float64, seed int64) *Matrix {
	if targetL < 1 || targetL > ValuesPerLine {
		panic(fmt.Sprintf("sparse: targetL %v out of [1,8]", targetL))
	}
	m := NewMatrix(name, rows, cols)
	rng := rand.New(rand.NewSource(seed))
	linesPerRow := cols / ValuesPerLine
	totalLines := rows * linesPerRow
	totalPages := (totalLines + arch.LinesPerPage - 1) / arch.LinesPerPage

	lineCount := int(float64(targetNNZ)/targetL + 0.5)
	if lineCount < 1 {
		lineCount = 1
	}
	if maxLines := totalLines * 7 / 10; lineCount > maxLines {
		lineCount = maxLines
	}

	// Active pages: non-zeros per touched page grows with L (high-L
	// matrices are block-dense, low-L ones scatter), ≈10 on average over
	// an L sweep — the regime behind the paper's ~53× page-granularity
	// overhead.
	density := 2 + int(seed%4) + int(1.5*targetL+0.5)
	activeWant := targetNNZ / density
	if activeWant < 1 {
		activeWant = 1
	}
	if activeWant > lineCount {
		activeWant = lineCount
	}
	if activeWant > totalPages*7/10 {
		activeWant = totalPages * 7 / 10
	}
	if activeWant < 1 {
		activeWant = 1
	}
	pagesPerRowSpan := totalPages / rows // pages per row of the dense layout
	if pagesPerRowSpan < 1 {
		pagesPerRowSpan = 1
	}
	active := make([]int, 0, activeWant)
	seenPage := make(map[int]bool, activeWant)
	for len(active) < activeWant {
		var page int
		if rng.Float64() < 0.6 {
			// Banded: a page near the diagonal of a random row.
			r := rng.Intn(rows)
			base := r * totalPages / rows
			page = base + rng.Intn(2*pagesPerRowSpan+1) - pagesPerRowSpan
			if page < 0 {
				page = 0
			}
			if page >= totalPages {
				page = totalPages - 1
			}
		} else {
			page = rng.Intn(totalPages)
		}
		if !seenPage[page] {
			seenPage[page] = true
			active = append(active, page)
		}
	}

	// Distribute the non-zero lines over the active pages: one per page
	// first, the rest at random (bounded by page capacity).
	pageLines := make([]arch.OBitVector, len(active))
	place := func(pi int) bool {
		free := arch.LinesPerPage - pageLines[pi].Count()
		if free == 0 {
			return false
		}
		for {
			l := rng.Intn(arch.LinesPerPage)
			if !pageLines[pi].Has(l) {
				pageLines[pi] = pageLines[pi].Set(l)
				return true
			}
		}
	}
	placed := 0
	for pi := range active {
		if placed >= lineCount {
			break
		}
		if place(pi) {
			placed++
		}
	}
	for placed < lineCount {
		if place(rng.Intn(len(active))) {
			placed++
			continue
		}
		// The random pick was full: scan for any page with space, or stop
		// if capacity is exhausted.
		found := false
		for pi := range active {
			if place(pi) {
				placed++
				found = true
				break
			}
		}
		if !found {
			break
		}
	}

	// Fill each chosen line with k values, k concentrated near targetL.
	for pi, page := range active {
		for _, l := range pageLines[pi].Lines() {
			globalLine := page*arch.LinesPerPage + l
			if globalLine >= totalLines {
				continue
			}
			r := globalLine / linesPerRow
			lb := globalLine % linesPerRow
			n := lineFill(rng, targetL)
			for _, ci := range rng.Perm(ValuesPerLine)[:n] {
				v := rng.NormFloat64()
				if v == 0 {
					v = 1
				}
				m.Set(r, lb*ValuesPerLine+ci, v)
			}
		}
	}
	return m
}

// ExactLines generates a matrix with exactly nnzLines fully dense
// non-zero cache lines (L = 8), chosen uniformly at random. The §5.2
// sparsity sweep uses it to dial the zero-line fraction from 0 % to
// nearly 100 % without the clustered suite generator's fill caps.
func ExactLines(name string, rows, cols, nnzLines int, seed int64) *Matrix {
	m := NewMatrix(name, rows, cols)
	rng := rand.New(rand.NewSource(seed))
	linesPerRow := cols / ValuesPerLine
	totalLines := rows * linesPerRow
	if nnzLines > totalLines {
		nnzLines = totalLines
	}
	for _, gl := range rng.Perm(totalLines)[:nnzLines] {
		r := gl / linesPerRow
		base := (gl % linesPerRow) * ValuesPerLine
		for k := 0; k < ValuesPerLine; k++ {
			v := rng.NormFloat64()
			if v == 0 {
				v = 1
			}
			m.Set(r, base+k, v)
		}
	}
	return m
}

// lineFill draws the number of non-zeros for one line so the mean tracks
// target: floor(target) or ceil(target) with the fractional probability.
func lineFill(rng *rand.Rand, target float64) int {
	lo := int(target)
	frac := target - float64(lo)
	n := lo
	if rng.Float64() < frac {
		n++
	}
	if n < 1 {
		n = 1
	}
	if n > ValuesPerLine {
		n = ValuesPerLine
	}
	return n
}
