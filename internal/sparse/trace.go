package sparse

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/vm"
)

// This file generates the simulator instruction traces for one SpMV
// iteration under each representation. The traces encode exactly the
// memory traffic each representation implies:
//
//   - dense: every cache line of the matrix is loaded;
//   - CSR: values, column indices and row pointers stream sequentially,
//     and every non-zero costs an x-vector gather;
//   - overlay: the hardware visits only overlay (non-zero) lines, which
//     the stream prefetcher can follow through the Overlay Address Space.

// Layout records where SpMV operands live in the process address space.
type Layout struct {
	MatBase arch.VirtAddr
	XBase   arch.VirtAddr
	YBase   arch.VirtAddr
	// CSR array bases (zero for dense/overlay layouts).
	ValsBase   arch.VirtAddr
	ColsBase   arch.VirtAddr
	RowPtrBase arch.VirtAddr
}

func pagesFor(bytes int) int { return (bytes + arch.PageSize - 1) / arch.PageSize }

// MapDense maps a dense matrix plus x and y vectors and returns the
// layout. The matrix pages are ordinary anonymous memory.
func MapDense(f *core.Framework, proc *vm.Process, m *Matrix) (Layout, error) {
	var l Layout
	next := arch.VPN(0)
	alloc := func(bytes int) (arch.VirtAddr, error) {
		va := next.Addr()
		n := pagesFor(bytes)
		if err := f.VM.MapAnon(proc, next, n); err != nil {
			return 0, err
		}
		next += arch.VPN(n)
		return va, nil
	}
	var err error
	if l.MatBase, err = alloc(m.Rows * m.Cols * 8); err != nil {
		return l, err
	}
	if l.XBase, err = alloc(m.Cols * 8); err != nil {
		return l, err
	}
	if l.YBase, err = alloc(m.Rows * 8); err != nil {
		return l, err
	}
	return l, nil
}

// MapOverlay builds the overlay representation of m plus x and y vectors.
func MapOverlay(f *core.Framework, proc *vm.Process, m *Matrix) (*OverlayMatrix, Layout, error) {
	var l Layout
	matPages := pagesFor(m.Rows * m.Cols * 8)
	o, err := BuildOverlay(f, proc, 0, m)
	if err != nil {
		return nil, l, err
	}
	l.MatBase = 0
	next := arch.VPN(matPages)
	if err := f.VM.MapAnon(proc, next, pagesFor(m.Cols*8)); err != nil {
		return nil, l, err
	}
	l.XBase = next.Addr()
	next += arch.VPN(pagesFor(m.Cols * 8))
	if err := f.VM.MapAnon(proc, next, pagesFor(m.Rows*8)); err != nil {
		return nil, l, err
	}
	l.YBase = next.Addr()
	return o, l, nil
}

// MapCSR maps the CSR arrays plus x and y vectors.
func MapCSR(f *core.Framework, proc *vm.Process, c *CSR) (Layout, error) {
	var l Layout
	next := arch.VPN(0)
	alloc := func(bytes int) (arch.VirtAddr, error) {
		va := next.Addr()
		n := pagesFor(bytes)
		if n == 0 {
			n = 1
		}
		if err := f.VM.MapAnon(proc, next, n); err != nil {
			return 0, err
		}
		next += arch.VPN(n)
		return va, nil
	}
	var err error
	if l.ValsBase, err = alloc(len(c.Vals) * 8); err != nil {
		return l, err
	}
	if l.ColsBase, err = alloc(len(c.Cols) * 4); err != nil {
		return l, err
	}
	if l.RowPtrBase, err = alloc(len(c.RowPtr) * 4); err != nil {
		return l, err
	}
	if l.XBase, err = alloc(c.NCols * 8); err != nil {
		return l, err
	}
	if l.YBase, err = alloc(c.Rows() * 8); err != nil {
		return l, err
	}
	return l, nil
}

// DenseTrace yields one dense SpMV iteration: for every matrix line, load
// the line and the matching x line, then 8 multiply-accumulates; one y
// store per row. This is both the dense baseline and (conceptually) the
// unmodified dense code the overlay model accelerates.
func DenseTrace(m *Matrix, l Layout) cpu.Trace {
	linesPerRow := m.Cols / ValuesPerLine
	r, lb := 0, 0
	var pending []cpu.Instr
	return cpu.FuncTrace(func() (cpu.Instr, bool) {
		for {
			if len(pending) > 0 {
				in := pending[0]
				pending = pending[1:]
				return in, true
			}
			if r >= m.Rows {
				return cpu.Instr{}, false
			}
			pending = append(pending,
				cpu.Instr{Kind: cpu.Load, VA: l.MatBase + arch.VirtAddr((r*linesPerRow+lb)*arch.LineSize)},
				cpu.Instr{Kind: cpu.Load, VA: l.XBase + arch.VirtAddr(lb*arch.LineSize)},
				cpu.Instr{Kind: cpu.Compute, N: ValuesPerLine},
			)
			lb++
			if lb >= linesPerRow {
				pending = append(pending, cpu.Instr{Kind: cpu.Store, VA: l.YBase + arch.VirtAddr(r*8)})
				lb = 0
				r++
			}
		}
	})
}

// CSRTrace yields one CSR SpMV iteration with the representation's extra
// index traffic: sequential val/col/rowptr streams plus one x gather per
// non-zero. The multiply-accumulates are batched per value line, matching
// a vectorised MKL-style inner loop.
func CSRTrace(c *CSR, l Layout) cpu.Trace {
	r, i := 0, 0
	fmasPending := 0
	var pending []cpu.Instr
	flushFMAs := func() {
		if fmasPending > 0 {
			pending = append(pending, cpu.Instr{Kind: cpu.Compute, N: fmasPending})
			fmasPending = 0
		}
	}
	return cpu.FuncTrace(func() (cpu.Instr, bool) {
		for {
			if len(pending) > 0 {
				in := pending[0]
				pending = pending[1:]
				return in, true
			}
			if r >= c.Rows() {
				return cpu.Instr{}, false
			}
			// Row prologue: the row-pointer line, amortised 16 rows/line.
			if i == int(c.RowPtr[r]) && r%16 == 0 {
				pending = append(pending, cpu.Instr{
					Kind: cpu.Load, VA: l.RowPtrBase + arch.VirtAddr(r*4),
				})
			}
			if i >= int(c.RowPtr[r+1]) {
				// Row epilogue: flush the row's tail FMAs, store y[r].
				flushFMAs()
				pending = append(pending, cpu.Instr{
					Kind: cpu.Store, VA: l.YBase + arch.VirtAddr(r*8),
				})
				r++
				continue
			}
			if i%ValuesPerLine == 0 {
				flushFMAs()
				pending = append(pending, cpu.Instr{Kind: cpu.Load, VA: l.ValsBase + arch.VirtAddr(i*8)})
			}
			if i%16 == 0 {
				pending = append(pending, cpu.Instr{Kind: cpu.Load, VA: l.ColsBase + arch.VirtAddr(i*4)})
			}
			col := int(c.Cols[i])
			pending = append(pending, cpu.Instr{Kind: cpu.Load, VA: l.XBase + arch.VirtAddr(col*8)})
			fmasPending++
			i++
		}
	})
}

// OverlayTrace yields one overlay SpMV iteration: the hardware walks only
// the overlay lines of each matrix page (their addresses form sequential
// streams in the Overlay Address Space, which the prefetcher follows),
// loading the matching x line and computing on all 8 values per line.
func OverlayTrace(o *OverlayMatrix, l Layout) (cpu.Trace, error) {
	if o.Cols%ValuesPerLine != 0 {
		return nil, fmt.Errorf("sparse: cols not line aligned")
	}
	linesPerRow := o.Cols / ValuesPerLine
	var lines []int // global line numbers within the matrix, in layout order
	for page := 0; page < o.Pages(); page++ {
		obits := o.OBitsOf(page)
		for _, li := range obits.Lines() {
			lines = append(lines, page*arch.LinesPerPage+li)
		}
	}
	idx := 0
	lastRow := -1
	flushed := false
	var pending []cpu.Instr
	return cpu.FuncTrace(func() (cpu.Instr, bool) {
		for {
			if len(pending) > 0 {
				in := pending[0]
				pending = pending[1:]
				return in, true
			}
			if idx >= len(lines) {
				if lastRow >= 0 && !flushed {
					flushed = true
					return cpu.Instr{Kind: cpu.Store, VA: l.YBase + arch.VirtAddr(lastRow*8)}, true
				}
				return cpu.Instr{}, false
			}
			gl := lines[idx]
			idx++
			row := gl / linesPerRow
			if lastRow != -1 && row != lastRow {
				pending = append(pending, cpu.Instr{Kind: cpu.Store, VA: l.YBase + arch.VirtAddr(lastRow*8)})
			}
			lastRow = row
			colLine := gl % linesPerRow
			pending = append(pending,
				// Matrix lines stream through the overlay computation
				// model (OBitVector-driven, no TLB); x is a normal load.
				cpu.Instr{Kind: cpu.LoadOverlay, VA: l.MatBase + arch.VirtAddr(gl*arch.LineSize)},
				cpu.Instr{Kind: cpu.Load, VA: l.XBase + arch.VirtAddr(colLine*arch.LineSize)},
				cpu.Instr{Kind: cpu.Compute, N: ValuesPerLine},
			)
		}
	}), nil
}
