package trace

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/cpu"
	"repro/internal/workload"
)

func roundTrip(t *testing.T, instrs []cpu.Instr) []cpu.Instr {
	t.Helper()
	var buf bytes.Buffer
	n, err := Record(&buf, cpu.NewSliceTrace(instrs), 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != uint64(len(instrs)) {
		t.Fatalf("recorded %d, want %d", n, len(instrs))
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var out []cpu.Instr
	for {
		in, ok := r.Next()
		if !ok {
			break
		}
		out = append(out, in)
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	return out
}

func TestRoundTripBasic(t *testing.T) {
	instrs := []cpu.Instr{
		{Kind: cpu.Compute, N: 7},
		{Kind: cpu.Load, VA: 0x1000},
		{Kind: cpu.Store, VA: 0x1040},
		{Kind: cpu.LoadOverlay, VA: 0x100},
		{Kind: cpu.Compute, N: 1},
		{Kind: cpu.Load, VA: 0xffffff000},
	}
	out := roundTrip(t, instrs)
	if len(out) != len(instrs) {
		t.Fatalf("got %d instrs", len(out))
	}
	for i := range instrs {
		want := instrs[i]
		if want.Kind == cpu.Compute && want.N < 1 {
			want.N = 1
		}
		if out[i] != want {
			t.Fatalf("instr %d: %+v != %+v", i, out[i], want)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64, count uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		instrs := make([]cpu.Instr, int(count)+1)
		for i := range instrs {
			switch rng.Intn(4) {
			case 0:
				instrs[i] = cpu.Instr{Kind: cpu.Compute, N: 1 + rng.Intn(32)}
			case 1:
				instrs[i] = cpu.Instr{Kind: cpu.Load, VA: arch.VirtAddr(rng.Int63n(1 << 47))}
			case 2:
				instrs[i] = cpu.Instr{Kind: cpu.Store, VA: arch.VirtAddr(rng.Int63n(1 << 47))}
			default:
				instrs[i] = cpu.Instr{Kind: cpu.LoadOverlay, VA: arch.VirtAddr(rng.Int63n(1 << 47))}
			}
		}
		out := roundTrip(t, instrs)
		if len(out) != len(instrs) {
			return false
		}
		for i := range instrs {
			if out[i] != instrs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRecordLimit(t *testing.T) {
	spec, _ := workload.ByName("hmmer")
	var buf bytes.Buffer
	n, err := Record(&buf, spec.NewTrace(), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1000 {
		t.Fatalf("recorded %d, want 1000", n)
	}
}

func TestWorkloadTraceRoundTrip(t *testing.T) {
	// Record a real benchmark prefix and replay it: byte-identical stream.
	spec, _ := workload.ByName("mcf")
	var buf bytes.Buffer
	if _, err := Record(&buf, spec.NewTrace(), 5000); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	ref := spec.NewTrace()
	for i := 0; i < 5000; i++ {
		want, _ := ref.Next()
		got, ok := r.Next()
		if !ok {
			t.Fatalf("replay ended early at %d", i)
		}
		if got != want {
			t.Fatalf("instr %d: %+v != %+v", i, got, want)
		}
	}
}

func TestCompression(t *testing.T) {
	// Delta encoding should keep sequential address streams near 2-3
	// bytes per record.
	var instrs []cpu.Instr
	for i := 0; i < 10000; i++ {
		instrs = append(instrs, cpu.Instr{Kind: cpu.Load, VA: arch.VirtAddr(i * 64)})
	}
	var buf bytes.Buffer
	Record(&buf, cpu.NewSliceTrace(instrs), 0)
	perRecord := float64(buf.Len()) / 10000
	if perRecord > 3.2 {
		t.Fatalf("encoding too fat: %.1f bytes/record", perRecord)
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("NOTATRACE"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := NewReader(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream accepted")
	}
}

func TestTruncatedStream(t *testing.T) {
	instrs := []cpu.Instr{{Kind: cpu.Load, VA: 0x123456}}
	var buf bytes.Buffer
	Record(&buf, cpu.NewSliceTrace(instrs), 0)
	trunc := buf.Bytes()[:buf.Len()-1]
	r, err := NewReader(bytes.NewReader(trunc))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Next(); ok {
		t.Fatal("truncated record decoded")
	}
	if r.Err() == nil {
		t.Fatal("truncation not reported")
	}
}
