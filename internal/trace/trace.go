// Package trace provides a compact binary record/replay format for
// simulator instruction streams. Recording a workload's trace decouples
// generation from simulation — the same byte-identical stream can be
// replayed across configuration sweeps (the ablation benches) or shipped
// to another machine, the role SimPoint traces play for the paper's
// simulator.
//
// Format: a 8-byte magic+version header, then one varint-encoded record
// per instruction:
//
//	kind     uvarint (cpu.Kind)
//	payload  Compute → N as uvarint
//	         Load/Store/LoadOverlay → VA delta from the previous VA,
//	         zig-zag varint (address streams are local, so deltas stay
//	         short)
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/arch"
	"repro/internal/cpu"
)

// magic identifies the stream and pins the format version.
var magic = [8]byte{'P', 'O', 'T', 'R', 'A', 'C', 'E', '1'}

// Writer encodes instructions to an io.Writer.
type Writer struct {
	w      *bufio.Writer
	lastVA arch.VirtAddr
	count  uint64
	err    error
}

// NewWriter writes the header and returns a Writer.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return nil, fmt.Errorf("trace: header: %w", err)
	}
	return &Writer{w: bw}, nil
}

// Append encodes one instruction.
func (t *Writer) Append(in cpu.Instr) error {
	if t.err != nil {
		return t.err
	}
	var buf [2 * binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(in.Kind))
	switch in.Kind {
	case cpu.Compute:
		v := in.N
		if v < 1 {
			v = 1
		}
		n += binary.PutUvarint(buf[n:], uint64(v))
	case cpu.Load, cpu.Store, cpu.LoadOverlay:
		delta := int64(in.VA) - int64(t.lastVA)
		n += binary.PutVarint(buf[n:], delta)
		t.lastVA = in.VA
	default:
		return fmt.Errorf("trace: unknown kind %d", in.Kind)
	}
	if _, err := t.w.Write(buf[:n]); err != nil {
		t.err = fmt.Errorf("trace: write: %w", err)
		return t.err
	}
	t.count++
	return nil
}

// Count returns the number of records appended.
func (t *Writer) Count() uint64 { return t.count }

// Flush drains buffered records to the underlying writer.
func (t *Writer) Flush() error {
	if t.err != nil {
		return t.err
	}
	return t.w.Flush()
}

// Record drains up to limit instructions (0 = all) from src into w.
func Record(w io.Writer, src cpu.Trace, limit uint64) (uint64, error) {
	tw, err := NewWriter(w)
	if err != nil {
		return 0, err
	}
	for limit == 0 || tw.Count() < limit {
		in, ok := src.Next()
		if !ok {
			break
		}
		if err := tw.Append(in); err != nil {
			return tw.Count(), err
		}
	}
	return tw.Count(), tw.Flush()
}

// Reader decodes a recorded stream; it implements cpu.Trace.
type Reader struct {
	r      *bufio.Reader
	lastVA arch.VirtAddr
	err    error
}

// NewReader validates the header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: header: %w", err)
	}
	if hdr != magic {
		return nil, errors.New("trace: bad magic (not a POTRACE1 stream)")
	}
	return &Reader{r: br}, nil
}

// Next implements cpu.Trace. The stream ends at EOF; decoding errors are
// surfaced through Err.
func (t *Reader) Next() (cpu.Instr, bool) {
	if t.err != nil {
		return cpu.Instr{}, false
	}
	kind, err := binary.ReadUvarint(t.r)
	if err == io.EOF {
		return cpu.Instr{}, false
	}
	if err != nil {
		t.err = fmt.Errorf("trace: kind: %w", err)
		return cpu.Instr{}, false
	}
	in := cpu.Instr{Kind: cpu.Kind(kind)}
	switch in.Kind {
	case cpu.Compute:
		n, err := binary.ReadUvarint(t.r)
		if err != nil {
			t.err = fmt.Errorf("trace: burst: %w", err)
			return cpu.Instr{}, false
		}
		in.N = int(n)
	case cpu.Load, cpu.Store, cpu.LoadOverlay:
		delta, err := binary.ReadVarint(t.r)
		if err != nil {
			t.err = fmt.Errorf("trace: delta: %w", err)
			return cpu.Instr{}, false
		}
		in.VA = arch.VirtAddr(int64(t.lastVA) + delta)
		t.lastVA = in.VA
	default:
		t.err = fmt.Errorf("trace: unknown kind %d", kind)
		return cpu.Instr{}, false
	}
	return in, true
}

// Err reports a decoding failure, if any (EOF is not an error).
func (t *Reader) Err() error { return t.err }
