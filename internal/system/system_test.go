package system

import (
	"strings"
	"testing"
)

func TestDescribeCoversTable2(t *testing.T) {
	var sb strings.Builder
	Describe(&sb, Default())
	out := sb.String()
	for _, want := range []string{
		"2.67 GHz", "64 entry instruction window",
		"64-entry 4-way associative L1 (1 cycle)", "1024-entry L2 (10 cycles)", "TLB miss = 1000 cycles",
		"64KB, 4-way", "512KB, 8-way", "2MB, 16-way", "DRRIP",
		"Stream prefetcher", "degree = 4", "distance = 24",
		"FR-FCFS drain when full", "64-entry write buffer", "64-entry OMT cache", "miss latency = 1000 cycles",
		"DDR3-1066", "8 banks", "8KB row buffer",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 output missing %q", want)
		}
	}
}

func TestDefaultMatchesPaperGeometry(t *testing.T) {
	cfg := Default()
	if cfg.Cache.L1.Size != 64<<10 || cfg.Cache.L2.Size != 512<<10 || cfg.Cache.L3.Size != 2<<20 {
		t.Fatal("cache sizes diverge from Table 2")
	}
	if cfg.TLB.L1Entries != 64 || cfg.TLB.L2Entries != 1024 || cfg.TLB.WalkLatency != 1000 {
		t.Fatal("TLB geometry diverges from Table 2")
	}
	if cfg.DRAM.Banks != 8 || cfg.DRAM.RowBytes != 8192 || cfg.DRAM.WriteBufCap != 64 {
		t.Fatal("DRAM geometry diverges from Table 2")
	}
	if cfg.OMTCache.Entries != 64 || cfg.OMTCache.MissLatency != 1000 {
		t.Fatal("OMT cache diverges from Table 2")
	}
	if cfg.Prefetch.Streams != 16 || cfg.Prefetch.Degree != 4 || cfg.Prefetch.Distance != 24 {
		t.Fatal("prefetcher diverges from Table 2")
	}
}

func TestHardwareCostMatchesPaper(t *testing.T) {
	// §4.5: 4 KB OMT cache + 8.5 KB TLB extension + 82 KB wider cache
	// tags = 94.5 KB overall.
	c := Cost(Default())
	if c.OMTCacheBytes != 4096 {
		t.Errorf("OMT cache = %d B, want 4096", c.OMTCacheBytes)
	}
	if c.TLBExtraBytes != (64+1024)*8 { // 8.5 KB with the paper's rounding
		t.Errorf("TLB extension = %d B, want 8704", c.TLBExtraBytes)
	}
	if c.TagExtraBytes != 82<<10 {
		t.Errorf("tag extension = %d B, want 82 KB", c.TagExtraBytes)
	}
	total := float64(c.OverheadsTotal) / 1024
	if total < 92 || total > 95 {
		t.Errorf("total = %.1f KB, paper says 94.5 KB", total)
	}
}
