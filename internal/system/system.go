// Package system describes the simulated machine: it owns the Table 2
// configuration (delegating the actual wiring to internal/core) and
// renders it in the paper's format so `overlaysim config` and the
// Table 2 bench can reproduce the configuration table.
package system

import (
	"fmt"
	"io"

	"repro/internal/core"
)

// Default returns the Table 2 system configuration.
func Default() core.Config { return core.DefaultConfig() }

// HardwareCost reproduces the §4.5 storage accounting: the bytes of new
// hardware state the overlay framework adds. For the paper's
// configuration this totals 94.5 KB (4 KB OMT cache + 8.5 KB of TLB
// OBitVectors + 82 KB of widened cache tags).
type HardwareCost struct {
	OMTCacheBytes  int // 512 bits per OMT cache entry
	TLBExtraBytes  int // 64-bit OBitVector per TLB entry
	TagExtraBytes  int // 16 extra tag bits per cache line
	OverheadsTotal int
}

// Cost computes the hardware overhead of a configuration.
func Cost(cfg core.Config) HardwareCost {
	var c HardwareCost
	// Each OMT cache entry: OPN (48) + OMS address (48) + OBitVector (64)
	// + 64 five-bit slot pointers (320) + free vector (32) = 512 bits.
	c.OMTCacheBytes = cfg.OMTCache.Entries * 512 / 8
	// Every L1 and L2 TLB entry gains a 64-bit OBitVector. The paper also
	// counts per-entry valid/aux bits, rounding 1088 entries to 8.5 KB.
	c.TLBExtraBytes = (cfg.TLB.L1Entries + cfg.TLB.L2Entries) * 8
	// Every cache tag widens by 16 bits for the overlay address space.
	lines := (cfg.Cache.L1.Size + cfg.Cache.L2.Size + cfg.Cache.L3.Size) / 64
	c.TagExtraBytes = lines * 2
	c.OverheadsTotal = c.OMTCacheBytes + c.TLBExtraBytes + c.TagExtraBytes
	return c
}

// Describe renders the configuration as the rows of Table 2.
func Describe(w io.Writer, cfg core.Config) {
	row := func(name, desc string) { fmt.Fprintf(w, "%-18s %s\n", name, desc) }
	row("Processor", "2.67 GHz, single issue, out-of-order, 64 entry instruction window, 64B cache lines")
	row("TLB", fmt.Sprintf("4K pages, %d-entry %d-way associative L1 (%d cycle), %d-entry L2 (%d cycles), TLB miss = %d cycles",
		cfg.TLB.L1Entries, cfg.TLB.L1Ways, cfg.TLB.L1Latency,
		cfg.TLB.L2Entries, cfg.TLB.L2Latency, cfg.TLB.WalkLatency))
	row("L1 Cache", fmt.Sprintf("%dKB, %d-way associative, hit latency = %d cycles, LRU policy",
		cfg.Cache.L1.Size>>10, cfg.Cache.L1.Ways, cfg.Cache.L1.HitLatency))
	row("L2 Cache", fmt.Sprintf("%dKB, %d-way associative, hit latency = %d cycles, LRU policy",
		cfg.Cache.L2.Size>>10, cfg.Cache.L2.Ways, cfg.Cache.L2.HitLatency))
	row("Prefetcher", fmt.Sprintf("Stream prefetcher, monitor L2 misses and prefetch into L3, %d entries, degree = %d, distance = %d",
		cfg.Prefetch.Streams, cfg.Prefetch.Degree, cfg.Prefetch.Distance))
	row("L3 Cache", fmt.Sprintf("%dMB, %d-way associative, hit latency = %d cycles, DRRIP policy",
		cfg.Cache.L3.Size>>20, cfg.Cache.L3.Ways, cfg.Cache.L3.HitLatency))
	row("DRAM Controller", fmt.Sprintf("Open row, FR-FCFS drain when full, %d-entry write buffer, %d-entry OMT cache, miss latency = %d cycles",
		cfg.DRAM.WriteBufCap, cfg.OMTCache.Entries, cfg.OMTCache.MissLatency))
	row("DRAM and Bus", fmt.Sprintf("DDR3-1066 MHz, 1 channel, 1 rank, %d banks, 8B-wide data bus, burst length = 8, %dKB row buffer",
		cfg.DRAM.Banks, cfg.DRAM.RowBytes>>10))
	fmt.Fprintf(w, "%-18s %d MB main memory, %d frames pre-granted to the Overlay Memory Store\n",
		"Memory", cfg.MemoryPages>>8, cfg.OMSInitialFrames)
	fmt.Fprintf(w, "%-18s overlaying-write remap = %d cycles, COW trap = %d cycles, TLB shootdown = %d cycles\n",
		"Overlay framework", cfg.OverlayRemapLatency, cfg.COWTrapLatency, cfg.TLB.ShootdownLatency)
	c := Cost(cfg)
	fmt.Fprintf(w, "%-18s %.1f KB total: OMT cache %.1f KB + TLB OBitVectors %.1f KB + wider cache tags %.1f KB (paper: 94.5 KB)\n",
		"Hardware cost", float64(c.OverheadsTotal)/1024, float64(c.OMTCacheBytes)/1024,
		float64(c.TLBExtraBytes)/1024, float64(c.TagExtraBytes)/1024)
}
