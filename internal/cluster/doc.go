// Package cluster shards overlaysim job execution across a fleet of
// serve processes (see docs/CLUSTER.md).
//
// A Coordinator fronts N workers — ordinary `overlaysim serve`
// processes — with the same /v1/jobs API a single node exposes.
// Each submission is routed by rendezvous-hashing its canonical spec
// digest (exp.JobSpec.Key) over the healthy workers, so identical
// specs land on the same shard and its in-memory caches; losing a
// worker re-ranks only that worker's keys. Progress streams back over
// the worker's SSE feed and is re-published on the coordinator's own
// /v1/jobs/{id}/events, so clients keep one connection even when a
// job is re-routed mid-flight.
//
// Three properties make sharding sound here: the simulator is
// deterministic (any worker computes bit-identical results for a
// spec), results are content-addressed by the spec digest (the same
// key names the coordinator's route, every worker's LRU slot and the
// persistent store entry), and completed results are immutable. A
// coordinator therefore never needs job affinity for correctness —
// only for cache locality — and re-running a lost job on another
// shard is always safe.
//
// FSStore is the package's persistent ResultStore: one directory,
// one file per digest, shared by any number of workers and
// coordinators on a common mount. It backs the server.Config.Store
// tier as well as the coordinator's own result cache, so completed
// work survives process restarts and is deduplicated fleet-wide.
package cluster
