package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/exp"
	"repro/internal/server"
	"repro/internal/sim"
)

// stubOutput fabricates a small deterministic result for a spec.
func stubOutput(spec exp.JobSpec) *exp.JobOutput {
	ex := sim.NewExport("stub-" + spec.Experiment)
	st := &sim.Stats{}
	st.Add("sim.stub_runs", 1)
	return &exp.JobOutput{Export: ex, Stats: st}
}

// countingRunner counts engine invocations across a worker fleet.
type countingRunner struct {
	mu   sync.Mutex
	runs int
}

func (c *countingRunner) run(ctx context.Context, spec exp.JobSpec, pool exp.Pool) (*exp.JobOutput, error) {
	c.mu.Lock()
	c.runs++
	c.mu.Unlock()
	return stubOutput(spec), nil
}

func (c *countingRunner) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.runs
}

// gatedRunner blocks every run until released (or the job is
// cancelled), so tests can hold jobs in flight deterministically.
type gatedRunner struct {
	countingRunner
	release chan struct{}
}

func newGatedRunner() *gatedRunner { return &gatedRunner{release: make(chan struct{})} }

func (g *gatedRunner) run(ctx context.Context, spec exp.JobSpec, pool exp.Pool) (*exp.JobOutput, error) {
	g.mu.Lock()
	g.runs++
	g.mu.Unlock()
	select {
	case <-g.release:
		return stubOutput(spec), nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// killableHandler lets a test simulate a worker crash without closing
// the httptest listener (Close would block on live SSE streams):
// once killed, every request — including in-flight streams, severed
// via panic — is aborted at the connection level.
type killableHandler struct {
	h    http.Handler
	mu   sync.Mutex
	dead bool
}

func (k *killableHandler) kill() {
	k.mu.Lock()
	k.dead = true
	k.mu.Unlock()
}

func (k *killableHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	k.mu.Lock()
	dead := k.dead
	k.mu.Unlock()
	if dead {
		panic(http.ErrAbortHandler)
	}
	k.h.ServeHTTP(w, r)
}

// newTestWorker starts one worker process-equivalent: a server.Server
// behind a killable handler.
func newTestWorker(t *testing.T, cfg server.Config) (*server.Server, *httptest.Server, *killableHandler) {
	t.Helper()
	s := server.New(cfg)
	kh := &killableHandler{h: s.Handler()}
	ts := httptest.NewServer(kh)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		s.Drain(ctx) //nolint:errcheck // best-effort cleanup
		kh.kill()    // sever streams so Close doesn't block on them
		ts.CloseClientConnections()
		ts.Close()
	})
	return s, ts, kh
}

func newTestCoordinator(t *testing.T, cfg Config) (*Coordinator, *httptest.Server) {
	t.Helper()
	if cfg.HealthInterval == 0 {
		cfg.HealthInterval = 50 * time.Millisecond
	}
	co := New(cfg)
	ts := httptest.NewServer(co.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		co.Drain(ctx) //nolint:errcheck // best-effort cleanup
		ts.CloseClientConnections()
		ts.Close()
	})
	return co, ts
}

func sweepSpec(rows int) string {
	return fmt.Sprintf(`{"experiment":"sweep","points":2,"rows":%d}`, rows)
}

func postSpec(t *testing.T, base, body string, wait bool) (int, server.JobDoc, http.Header) {
	t.Helper()
	url := base + "/v1/jobs"
	if wait {
		url += "?wait=true"
	}
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading response: %v", err)
	}
	var doc server.JobDoc
	if resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, &doc); err != nil {
			t.Fatalf("decoding job doc from %q: %v", raw, err)
		}
	}
	return resp.StatusCode, doc, resp.Header
}

func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading %s: %v", url, err)
	}
	return resp.StatusCode, raw
}

// TestCoordinatorRoutesAndMatchesWorkerBytes is the byte-identity
// chain inside the cluster: a job routed through the coordinator
// serves exactly the bytes the worker serves directly.
func TestCoordinatorRoutesAndMatchesWorkerBytes(t *testing.T) {
	runner := &countingRunner{}
	_, w1, _ := newTestWorker(t, server.Config{Workers: 1, Runner: runner.run})
	_, cts := newTestCoordinator(t, Config{Workers: []string{w1.URL}})

	status, doc, hdr := postSpec(t, cts.URL, sweepSpec(64), true)
	if status != http.StatusOK || doc.State != server.StateDone {
		t.Fatalf("submit via coordinator: status %d state %q error %q", status, doc.State, doc.Error)
	}
	if hdr.Get("X-Overlaysim-Cache") != "miss" {
		t.Fatalf("X-Overlaysim-Cache = %q, want miss", hdr.Get("X-Overlaysim-Cache"))
	}
	if doc.Worker != w1.URL {
		t.Fatalf("doc.worker = %q, want %q", doc.Worker, w1.URL)
	}
	if runner.count() != 1 {
		t.Fatalf("engine ran %d times, want 1", runner.count())
	}

	code, viaCoord := getBody(t, cts.URL+"/v1/jobs/"+doc.ID+"/result")
	if code != http.StatusOK {
		t.Fatalf("coordinator result: status %d", code)
	}
	// The worker's own record of the same job (the worker has exactly
	// one) must serve identical bytes.
	var listing struct {
		Jobs []server.JobDoc `json:"jobs"`
	}
	_, raw := getBody(t, w1.URL+"/v1/jobs")
	if err := json.Unmarshal(raw, &listing); err != nil || len(listing.Jobs) != 1 {
		t.Fatalf("worker listing: %v (%d jobs)", err, len(listing.Jobs))
	}
	_, direct := getBody(t, w1.URL+"/v1/jobs/"+listing.Jobs[0].ID+"/result")
	if string(viaCoord) != string(direct) {
		t.Fatalf("coordinator result differs from worker result:\n%d vs %d bytes",
			len(viaCoord), len(direct))
	}
}

// TestCoordinatorSingleFlight proves concurrent identical submissions
// collapse onto one routed job: the engine runs exactly once and both
// submitters get the same result.
func TestCoordinatorSingleFlight(t *testing.T) {
	runner := newGatedRunner()
	_, w1, _ := newTestWorker(t, server.Config{Workers: 1, Runner: runner.run})
	_, cts := newTestCoordinator(t, Config{Workers: []string{w1.URL}})

	status, first, _ := postSpec(t, cts.URL, sweepSpec(80), false)
	if status != http.StatusAccepted {
		t.Fatalf("leader submit: status %d", status)
	}

	type res struct {
		status int
		doc    server.JobDoc
		hdr    http.Header
	}
	joined := make(chan res, 1)
	go func() {
		s, d, h := postSpec(t, cts.URL, sweepSpec(80), true)
		joined <- res{s, d, h}
	}()

	// The duplicate is registered as a join before the gate opens.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, raw := getBody(t, cts.URL+"/metrics")
		if strings.Contains(string(raw), "overlaysim_coord_singleflight_hits 1") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("duplicate submission never joined the in-flight job")
		}
		time.Sleep(10 * time.Millisecond)
	}
	close(runner.release)

	r := <-joined
	if r.status != http.StatusOK || r.doc.State != server.StateDone {
		t.Fatalf("joined submit: status %d state %q error %q", r.status, r.doc.State, r.doc.Error)
	}
	if r.doc.ID != first.ID {
		t.Fatalf("joined job %s != leader job %s", r.doc.ID, first.ID)
	}
	if got := r.hdr.Get("X-Overlaysim-Singleflight"); got != first.ID {
		t.Fatalf("X-Overlaysim-Singleflight = %q, want %q", got, first.ID)
	}
	if runner.count() != 1 {
		t.Fatalf("engine ran %d times, want 1 (single-flight)", runner.count())
	}
}

// TestCoordinatorRestartServesFromStore proves completed results
// survive the coordinator: a fresh coordinator sharing only the
// persistent store — zero workers — answers the spec from disk.
func TestCoordinatorRestartServesFromStore(t *testing.T) {
	store, err := NewFSStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	runner := &countingRunner{}
	_, w1, _ := newTestWorker(t, server.Config{Workers: 1, Runner: runner.run})

	co1, cts1 := newTestCoordinator(t, Config{Workers: []string{w1.URL}, Store: store})
	status, doc, _ := postSpec(t, cts1.URL, sweepSpec(96), true)
	if status != http.StatusOK || doc.State != server.StateDone {
		t.Fatalf("first run: status %d state %q", status, doc.State)
	}
	_, original := getBody(t, cts1.URL+"/v1/jobs/"+doc.ID+"/result")
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := co1.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	// "Restart": a brand-new coordinator, same store directory, and —
	// to prove no engine can possibly run — no workers at all.
	_, cts2 := newTestCoordinator(t, Config{Store: store})
	status, doc2, hdr := postSpec(t, cts2.URL, sweepSpec(96), false)
	if status != http.StatusOK || !doc2.Cached || doc2.CacheSource != server.CacheStore {
		t.Fatalf("store hit: status %d cached %v source %q", status, doc2.Cached, doc2.CacheSource)
	}
	if hdr.Get("X-Overlaysim-Cache") != "hit-store" {
		t.Fatalf("X-Overlaysim-Cache = %q, want hit-store", hdr.Get("X-Overlaysim-Cache"))
	}
	_, replayed := getBody(t, cts2.URL+"/v1/jobs/"+doc2.ID+"/result")
	if string(replayed) != string(original) {
		t.Fatal("restarted coordinator served different bytes than the original run")
	}
	if runner.count() != 1 {
		t.Fatalf("engine ran %d times total, want 1", runner.count())
	}

	// An unknown spec, with no workers, is 503 — not a hang.
	status, _, _ = postSpec(t, cts2.URL, sweepSpec(97), false)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("submit with no workers: status %d, want 503", status)
	}
}

// TestWorkerLossReroutesPendingJobs kills a worker with jobs in its
// queue; every routed job re-forwards to the surviving worker and
// still succeeds.
func TestWorkerLossReroutesPendingJobs(t *testing.T) {
	gated := newGatedRunner() // worker 1 wedges every job
	runner2 := &countingRunner{}
	_, w1, kh1 := newTestWorker(t, server.Config{Workers: 1, Runner: gated.run})
	_, w2, _ := newTestWorker(t, server.Config{Workers: 1, Runner: runner2.run})

	co, cts := newTestCoordinator(t, Config{Workers: []string{w1.URL}})

	// Three jobs: one runs (wedged), two wait in worker 1's queue.
	var ids []string
	for i := 0; i < 3; i++ {
		status, doc, _ := postSpec(t, cts.URL, sweepSpec(100+i), false)
		if status != http.StatusAccepted {
			t.Fatalf("submit %d: status %d", i, status)
		}
		ids = append(ids, doc.ID)
	}

	co.RegisterWorker(w2.URL)
	kh1.kill()
	w1.CloseClientConnections() // sever the three SSE watches

	deadline := time.Now().Add(10 * time.Second)
	for _, id := range ids {
		for {
			_, raw := getBody(t, cts.URL+"/v1/jobs/"+id)
			var doc server.JobDoc
			if err := json.Unmarshal(raw, &doc); err != nil {
				t.Fatalf("decoding job %s: %v", id, err)
			}
			if doc.State == server.StateDone {
				if doc.Worker != w2.URL {
					t.Fatalf("job %s finished on %q, want rerouted to %q", id, doc.Worker, w2.URL)
				}
				break
			}
			if doc.State == server.StateFailed || doc.State == server.StateCancelled {
				t.Fatalf("job %s reached %s (%s) instead of rerouting", id, doc.State, doc.Error)
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s stuck in %s after worker loss", id, doc.State)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	if runner2.count() != 3 {
		t.Fatalf("surviving worker ran %d jobs, want 3", runner2.count())
	}
	// The results are intact and byte-identical to the survivor's.
	for _, id := range ids {
		code, body := getBody(t, cts.URL+"/v1/jobs/"+id+"/result")
		if code != http.StatusOK || len(body) == 0 {
			t.Fatalf("result for rerouted job %s: status %d, %d bytes", id, code, len(body))
		}
	}
}

// TestCoordinatorEventsStreamRelays proves a client watching the
// coordinator's SSE feed sees the terminal event of a routed job.
func TestCoordinatorEventsStreamRelays(t *testing.T) {
	runner := newGatedRunner()
	_, w1, _ := newTestWorker(t, server.Config{Workers: 1, Runner: runner.run})
	_, cts := newTestCoordinator(t, Config{Workers: []string{w1.URL}})

	status, doc, _ := postSpec(t, cts.URL, sweepSpec(120), false)
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d", status)
	}
	resp, err := http.Get(cts.URL + "/v1/jobs/" + doc.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	close(runner.release)

	events := newSSEReader(resp.Body)
	for {
		ev, err := events.next()
		if err != nil {
			t.Fatalf("stream broke before terminal event: %v", err)
		}
		if ev.name == server.StateDone {
			var final server.JobDoc
			if err := json.Unmarshal(ev.data, &final); err != nil {
				t.Fatalf("decoding terminal event: %v", err)
			}
			if final.ID != doc.ID || final.Worker != w1.URL {
				t.Fatalf("terminal doc = id %q worker %q", final.ID, final.Worker)
			}
			return
		}
		if ev.name == server.StateFailed || ev.name == server.StateCancelled {
			t.Fatalf("job reached %s", ev.name)
		}
	}
}

// TestFleetMetricsAggregate proves GET /metrics on the coordinator
// contains the sum of the workers' registries.
func TestFleetMetricsAggregate(t *testing.T) {
	r1, r2 := &countingRunner{}, &countingRunner{}
	_, w1, _ := newTestWorker(t, server.Config{Workers: 1, Runner: r1.run})
	_, w2, _ := newTestWorker(t, server.Config{Workers: 1, Runner: r2.run})
	_, cts := newTestCoordinator(t, Config{Workers: []string{w1.URL, w2.URL}})

	// Run jobs until both workers have executed at least one (the
	// rendezvous split of arbitrary keys over random ports is
	// deterministic but not known a priori).
	for i := 0; r1.count() == 0 || r2.count() == 0; i++ {
		if i > 50 {
			t.Fatalf("rendezvous never hit both workers (r1=%d r2=%d)", r1.count(), r2.count())
		}
		if status, doc, _ := postSpec(t, cts.URL, sweepSpec(200+i), true); status != http.StatusOK {
			t.Fatalf("submit %d: status %d (%s)", i, status, doc.Error)
		}
	}
	total := r1.count() + r2.count()

	_, raw := getBody(t, cts.URL+"/metrics")
	samples, _, err := sim.ParsePrometheus(strings.NewReader(string(raw)))
	if err != nil {
		t.Fatalf("coordinator /metrics is not parseable: %v", err)
	}
	byName := map[string]float64{}
	for _, s := range samples {
		if s.Label == "" {
			byName[s.Name] = s.Value
		}
	}
	if got := byName["overlaysim_server_engine_runs"]; got != float64(total) {
		t.Errorf("fleet engine_runs = %v, want %d (sum of workers)", got, total)
	}
	if got := byName["overlaysim_sim_stub_runs"]; got != float64(total) {
		t.Errorf("fleet sim_stub_runs = %v, want %d", got, total)
	}
	if got := byName["overlaysim_coord_jobs_forwarded"]; got != float64(total) {
		t.Errorf("coord_jobs_forwarded = %v, want %d", got, total)
	}
	if byName["overlaysim_coord_workers"] != 2 || byName["overlaysim_coord_scrape_errors"] != 0 {
		t.Errorf("fleet gauges: workers=%v scrape_errors=%v",
			byName["overlaysim_coord_workers"], byName["overlaysim_coord_scrape_errors"])
	}
}

// TestCoordinatorDrainRejectsSubmissions pins the drain contract.
func TestCoordinatorDrainRejectsSubmissions(t *testing.T) {
	runner := &countingRunner{}
	_, w1, _ := newTestWorker(t, server.Config{Workers: 1, Runner: runner.run})
	co, cts := newTestCoordinator(t, Config{Workers: []string{w1.URL}})

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := co.Drain(ctx); err != nil {
		t.Fatalf("drain of idle coordinator: %v", err)
	}
	status, _, _ := postSpec(t, cts.URL, sweepSpec(64), false)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: status %d, want 503", status)
	}
	if code, _ := getBody(t, cts.URL+"/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: status %d, want 503", code)
	}
}

// TestRegisterLoopAnnouncesWorker exercises the worker side of
// registration against a live coordinator.
func TestRegisterLoopAnnouncesWorker(t *testing.T) {
	runner := &countingRunner{}
	_, w1, _ := newTestWorker(t, server.Config{Workers: 1, Runner: runner.run})
	co, cts := newTestCoordinator(t, Config{})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go RegisterLoop(ctx, cts.URL, w1.URL, 20*time.Millisecond, co.cfg.Logger)

	deadline := time.Now().Add(5 * time.Second)
	for {
		docs := co.workerDocs()
		if len(docs) == 1 && docs[0].URL == w1.URL && docs[0].Healthy && docs[0].Registered {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker never registered: %+v", docs)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The registered fleet serves jobs.
	status, doc, _ := postSpec(t, cts.URL, sweepSpec(64), true)
	if status != http.StatusOK || doc.State != server.StateDone {
		t.Fatalf("submit after registration: status %d state %q", status, doc.State)
	}
}
