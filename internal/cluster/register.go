package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"time"
)

// Register announces one worker to a coordinator: POST /v1/workers
// with the worker's advertised base URL.
func Register(ctx context.Context, client *http.Client, coordinator, advertise string) error {
	body, err := json.Marshal(map[string]string{"url": advertise})
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		coordinator+"/v1/workers", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("registration: status %d", resp.StatusCode)
	}
	return nil
}

// RegisterLoop keeps a worker announced: one registration per
// interval until ctx is cancelled. Periodic re-registration is what
// lets a restarted coordinator re-learn its fleet without static
// configuration, and doubles as an availability hint ahead of the
// coordinator's own probes. Failures are logged and retried on the
// next tick — the worker serves fine unregistered, it just receives
// no routed jobs.
func RegisterLoop(ctx context.Context, coordinator, advertise string, interval time.Duration, logger *slog.Logger) {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	client := &http.Client{Timeout: interval}
	registered := false
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		if err := Register(ctx, client, coordinator, advertise); err != nil {
			if ctx.Err() != nil {
				return
			}
			registered = false
			logger.Warn("coordinator registration failed",
				"coordinator", coordinator, "advertise", advertise, "err", err.Error())
		} else if !registered {
			registered = true
			logger.Info("registered with coordinator",
				"coordinator", coordinator, "advertise", advertise)
		}
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}
