package cluster

import (
	"fmt"
	"testing"
)

func TestRankDeterministicTotalOrder(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:1", "http://c:1"}
	r1 := Rank("key-1", nodes)
	r2 := Rank("key-1", []string{nodes[2], nodes[0], nodes[1]})
	if len(r1) != 3 {
		t.Fatalf("rank dropped nodes: %v", r1)
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("ranking depends on input order: %v vs %v", r1, r2)
		}
	}
	if same := Rank("key-1", nodes); fmt.Sprint(same) != fmt.Sprint(r1) {
		t.Fatalf("ranking not deterministic: %v vs %v", same, r1)
	}
}

// TestRankMinimalDisruption is the rendezvous property: removing one
// node re-homes only the keys that lived there.
func TestRankMinimalDisruption(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	const lost = "http://b:1"
	survivors := []string{"http://a:1", "http://c:1", "http://d:1"}
	moved, kept := 0, 0
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("digest-%03d", i)
		before := Rank(key, nodes)[0]
		after := Rank(key, survivors)[0]
		switch {
		case before == lost:
			moved++
		case before != after:
			t.Fatalf("key %s moved from %s to %s though %s was lost", key, before, after, lost)
		default:
			kept++
		}
	}
	if moved == 0 || kept == 0 {
		t.Fatalf("degenerate distribution: moved=%d kept=%d", moved, kept)
	}
	// The failover target of a lost key is exactly its second choice.
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("digest-%03d", i)
		before := Rank(key, nodes)
		if before[0] != lost {
			continue
		}
		if after := Rank(key, survivors)[0]; after != before[1] {
			t.Fatalf("key %s failed over to %s, want its second choice %s", key, after, before[1])
		}
	}
}

func TestRankSpreadsKeys(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:1", "http://c:1"}
	byNode := map[string]int{}
	for i := 0; i < 300; i++ {
		byNode[Rank(fmt.Sprintf("digest-%03d", i), nodes)[0]]++
	}
	for _, n := range nodes {
		if byNode[n] == 0 {
			t.Fatalf("node %s received no keys: %v", n, byNode)
		}
	}
}
