package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/exp"
	"repro/internal/obs"
	"repro/internal/server"
)

// cjob is the coordinator-side record of one submission. All mutable
// fields are guarded by the Coordinator's mutex.
type cjob struct {
	id        string
	spec      exp.JobSpec
	key       string
	requestID string

	state    string // server.State* vocabulary
	cached   bool
	cacheSrc string
	worker   string // shard currently (or last) running the job
	remoteID string // the worker's job ID
	attempts int    // forwards consumed, including re-routes
	errMsg   string

	submitted time.Time
	started   time.Time
	finished  time.Time
	progress  server.ProgressEvent
	hasProg   bool
	result    []byte

	tracer *obs.Tracer
	span   *obs.Span // "coordinator.job" root; "forward" spans nest under it
	spans  []obs.Span

	cancel context.CancelFunc
	subs   map[chan struct{}]struct{}
	done   chan struct{}
}

func (j *cjob) terminal() bool {
	return j.state == server.StateDone || j.state == server.StateFailed ||
		j.state == server.StateCancelled
}

func (j *cjob) traceID() string {
	if j.tracer == nil {
		return ""
	}
	return j.tracer.TraceID().String()
}

func (j *cjob) notifySubs() {
	for ch := range j.subs {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// newJobLocked allocates and registers a job record with its trace.
// Caller holds the Coordinator mutex.
func (co *Coordinator) newJobLocked(spec exp.JobSpec, key, requestID string, remote obs.SpanContext) *cjob {
	co.seq++
	j := &cjob{
		id:        fmt.Sprintf("cjob-%06d", co.seq),
		spec:      spec,
		key:       key,
		requestID: requestID,
		state:     server.StateQueued,
		submitted: time.Now(),
		subs:      make(map[chan struct{}]struct{}),
		done:      make(chan struct{}),
	}
	if !co.cfg.DisableTracing {
		j.tracer = obs.NewTracer(remote.TraceID, co.cfg.TraceCap)
		j.span = j.tracer.StartSpan(remote, "coordinator.job")
		j.span.SetAttr("job_id", j.id)
		j.span.SetAttr("experiment", spec.Experiment)
		if requestID != "" {
			j.span.SetAttr("request_id", requestID)
		}
	}
	co.jobs[j.id] = j
	co.order = append(co.order, j)
	return j
}

// completeFromStoreLocked finishes a fresh record as a store hit.
// Caller holds the Coordinator mutex.
func (j *cjob) completeFromStoreLocked(result []byte) {
	now := time.Now()
	j.state = server.StateDone
	j.cached = true
	j.cacheSrc = server.CacheStore
	j.started, j.finished = now, now
	j.result = result
	j.span.SetAttr("cache", "hit-"+server.CacheStore)
	j.endTraceLocked()
	close(j.done)
}

// terminalizeLocked moves a job to a terminal state exactly once.
// Caller holds the Coordinator mutex.
func (co *Coordinator) terminalizeLocked(j *cjob, state, errMsg string) {
	if j.terminal() {
		return
	}
	delete(co.inflight, j.key)
	j.state = state
	j.errMsg = errMsg
	j.finished = time.Now()
	j.endTraceLocked()
	close(j.done)
	j.notifySubs()
}

// endTraceLocked closes the root span and snapshots the trace.
func (j *cjob) endTraceLocked() {
	if j.tracer == nil {
		return
	}
	j.span.End()
	j.spans = j.tracer.Spans()
}

// doc renders the job in the same wire shape a worker uses, with the
// routing fields filled in.
func (j *cjob) doc(withResult bool) server.JobDoc {
	d := server.JobDoc{
		ID:          j.id,
		State:       j.state,
		Cached:      j.cached,
		CacheSource: j.cacheSrc,
		Spec:        j.spec,
		Key:         j.key,
		Worker:      j.worker,
		Error:       j.errMsg,
		TraceID:     j.traceID(),
		RequestID:   j.requestID,
		SubmittedAt: j.submitted,
	}
	if len(j.spans) > 0 {
		base := j.spans[0].Start
		for _, sp := range j.spans {
			if sp.Start.Before(base) {
				base = sp.Start
			}
		}
		d.Spans = make([]server.SpanSummary, len(j.spans))
		for i, sp := range j.spans {
			d.Spans[i] = server.SpanSummary{
				Name:    sp.Name,
				StartUS: sp.Start.Sub(base).Microseconds(),
				DurUS:   sp.Dur.Microseconds(),
			}
		}
	}
	if !j.started.IsZero() {
		t := j.started
		d.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		d.FinishedAt = &t
	}
	if j.hasProg {
		p := j.progress
		d.Progress = &p
	}
	if withResult && j.result != nil {
		d.Result = json.RawMessage(j.result)
	}
	return d
}

// sseEvent is one parsed Server-Sent Event.
type sseEvent struct {
	name string
	data []byte
}

// sseReader incrementally parses the subset of the SSE wire format
// the worker emits: `event:` + `data:` lines separated by blank
// lines. Comments and id/retry fields are ignored.
type sseReader struct {
	r *bufio.Reader
}

func newSSEReader(r io.Reader) *sseReader {
	return &sseReader{r: bufio.NewReaderSize(r, 64<<10)}
}

// next blocks until one complete event arrives. io.EOF (or any read
// error) before a complete event reports the stream broken.
func (s *sseReader) next() (sseEvent, error) {
	var ev sseEvent
	var data bytes.Buffer
	for {
		line, err := s.r.ReadString('\n')
		if err != nil {
			return ev, err
		}
		line = trimEOL(line)
		switch {
		case line == "":
			if ev.name != "" || data.Len() > 0 {
				ev.data = append([]byte(nil), data.Bytes()...)
				return ev, nil
			}
		case bytes.HasPrefix([]byte(line), []byte("event:")):
			ev.name = trimFieldValue(line[len("event:"):])
		case bytes.HasPrefix([]byte(line), []byte("data:")):
			if data.Len() > 0 {
				data.WriteByte('\n')
			}
			data.WriteString(trimFieldValue(line[len("data:"):]))
		}
	}
}

func trimEOL(s string) string {
	for len(s) > 0 && (s[len(s)-1] == '\n' || s[len(s)-1] == '\r') {
		s = s[:len(s)-1]
	}
	return s
}

// trimFieldValue strips the single optional leading space the SSE
// format allows after the field colon.
func trimFieldValue(s string) string {
	if len(s) > 0 && s[0] == ' ' {
		return s[1:]
	}
	return s
}
