package cluster

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// FSStore is a filesystem server.ResultStore: rendered job exports,
// content-addressed by canonical spec digest, laid out as
//
//	dir/<key[:2]>/<key>.json
//
// (the two-hex-digit fan-out keeps any one directory small). Writes
// go through a same-directory temp file and rename, so a reader sees
// the old entry or the new one, never a torn write, and a crashed
// writer leaves only a *.tmp-* file behind. Because entries are keyed
// by the digest of what produced them and the simulator is
// deterministic, re-putting a key rewrites identical bytes — the
// store needs no locking between the processes sharing it.
type FSStore struct {
	dir string
}

// NewFSStore opens (creating if needed) a store rooted at dir.
func NewFSStore(dir string) (*FSStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("result store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("result store: %w", err)
	}
	return &FSStore{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *FSStore) Dir() string { return s.dir }

// validKey accepts exactly the 64-hex-digit digests exp.JobSpec.Key
// produces. Everything else is rejected before touching the
// filesystem — the key is about to become a path component.
func validKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (s *FSStore) path(key string) string {
	return filepath.Join(s.dir, key[:2], key+".json")
}

// Get reads the entry for key. A missing entry is (nil, false, nil);
// an entry that is not valid JSON is an error — the server treats it
// as a miss and the next completed run repairs it via Put.
func (s *FSStore) Get(key string) ([]byte, bool, error) {
	if !validKey(key) {
		return nil, false, fmt.Errorf("result store: invalid key %q", key)
	}
	b, err := os.ReadFile(s.path(key))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("result store: %w", err)
	}
	if !json.Valid(b) {
		return nil, false, fmt.Errorf("result store: corrupt entry for %s (%d bytes)", key, len(b))
	}
	return b, true, nil
}

// Put writes the entry for key atomically: temp file in the entry's
// own directory, fsync-free rename over the final name.
func (s *FSStore) Put(key string, result []byte) error {
	if !validKey(key) {
		return fmt.Errorf("result store: invalid key %q", key)
	}
	dst := s.path(key)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return fmt.Errorf("result store: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(dst), key+".tmp-*")
	if err != nil {
		return fmt.Errorf("result store: %w", err)
	}
	if _, err := tmp.Write(result); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("result store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("result store: %w", err)
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("result store: %w", err)
	}
	return nil
}

// Len counts stored entries — an operator convenience for the
// coordinator's worker listing and tests, not a hot path.
func (s *FSStore) Len() int {
	n := 0
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return 0
	}
	for _, e := range entries {
		if !e.IsDir() || len(e.Name()) != 2 {
			continue
		}
		files, err := os.ReadDir(filepath.Join(s.dir, e.Name()))
		if err != nil {
			continue
		}
		for _, f := range files {
			if filepath.Ext(f.Name()) == ".json" {
				n++
			}
		}
	}
	return n
}
