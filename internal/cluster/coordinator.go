package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"repro/internal/exp"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/sim"
)

// Config sizes a Coordinator. The zero value is usable except for
// Workers/registration: a coordinator with no workers answers 503
// until one registers.
type Config struct {
	// Workers seeds the shard set with static worker base URLs
	// (e.g. http://127.0.0.1:8391). Workers may also self-register at
	// runtime via POST /v1/workers — the two sources merge.
	Workers []string

	// Store is the persistent result tier (nil = none): every
	// completed result is written through to it, and a submission
	// whose digest is already stored answers without touching a
	// worker. Point workers at the same store to dedupe fleet-wide.
	Store server.ResultStore

	// HealthInterval is the /readyz probe period (0 = 2s).
	HealthInterval time.Duration

	// RetryAfter is the backpressure hint returned with 429 when
	// every reachable shard is saturated (0 = 2s).
	RetryAfter time.Duration

	// ForwardAttempts bounds how many shards one job may be routed to
	// before failing — the initial forward plus re-routes after a
	// worker dies mid-job (0 = 3).
	ForwardAttempts int

	// ForwardTimeout caps one forwarding POST or result fetch
	// (0 = 30s). The SSE watch itself is unbounded — jobs run as long
	// as they run.
	ForwardTimeout time.Duration

	// Logger receives structured records for routing decisions, health
	// transitions and HTTP requests (nil = discarded).
	Logger *slog.Logger

	// TraceCap bounds each job's span buffer (0 = 512);
	// DisableTracing turns the coordinator's spans off entirely.
	TraceCap       int
	DisableTracing bool

	// Client overrides the HTTP client used to talk to workers (nil =
	// a default with no global timeout; per-call contexts bound the
	// non-streaming requests).
	Client *http.Client
}

func (c Config) withDefaults() Config {
	if c.HealthInterval <= 0 {
		c.HealthInterval = 2 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 2 * time.Second
	}
	if c.ForwardAttempts <= 0 {
		c.ForwardAttempts = 3
	}
	if c.ForwardTimeout <= 0 {
		c.ForwardTimeout = 30 * time.Second
	}
	if c.Logger == nil {
		c.Logger = obs.Nop()
	}
	if c.TraceCap <= 0 {
		c.TraceCap = 512
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	return c
}

// workerState is one shard as the coordinator sees it.
type workerState struct {
	url        string
	healthy    bool
	registered bool // arrived via POST /v1/workers (vs static config)
	lastSeen   time.Time
	jobs       uint64 // jobs this coordinator routed here
}

// WorkerDoc is the wire form of a shard in GET /v1/workers.
type WorkerDoc struct {
	URL        string    `json:"url"`
	Healthy    bool      `json:"healthy"`
	Registered bool      `json:"registered"`
	LastSeen   time.Time `json:"last_seen,omitempty"`
	Jobs       uint64    `json:"jobs"`
}

// Coordinator routes jobs across a worker fleet. Construct with New
// (the health loop starts immediately), serve its Handler, stop with
// Drain.
type Coordinator struct {
	cfg    Config
	client *http.Client

	baseCtx    context.Context
	baseCancel context.CancelFunc

	// statsMu guards the telemetry registry plus the labelled tallies
	// rendered beside it (HTTP statuses, per-worker routing counts).
	statsMu      sync.Mutex
	stats        *sim.Stats
	statusCounts map[int]uint64

	mu       sync.Mutex
	workers  map[string]*workerState
	jobs     map[string]*cjob
	order    []*cjob
	inflight map[string]*cjob // digest → routed, not yet terminal
	draining bool
	seq      int

	wg sync.WaitGroup
}

// New builds the coordinator and starts its health-check loop.
func New(cfg Config) *Coordinator {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	co := &Coordinator{
		cfg:          cfg,
		client:       cfg.Client,
		baseCtx:      ctx,
		baseCancel:   cancel,
		stats:        &sim.Stats{},
		statusCounts: make(map[int]uint64),
		workers:      make(map[string]*workerState),
		jobs:         make(map[string]*cjob),
		inflight:     make(map[string]*cjob),
	}
	for _, u := range cfg.Workers {
		// Statically configured workers start healthy and are corrected
		// by the first probe; jobs submitted before it complete their
		// own liveness discovery by failing over.
		co.workers[u] = &workerState{url: u, healthy: true}
	}
	co.wg.Add(1)
	go co.healthLoop()
	return co
}

func (co *Coordinator) addStat(name string, n uint64) {
	co.statsMu.Lock()
	co.stats.Add(name, n)
	co.statsMu.Unlock()
}

// RegisterWorker adds (or refreshes) a shard. A re-registration marks
// the worker healthy immediately — it is how a restarted worker
// announces it is back, and how a restarted coordinator re-learns a
// fleet it forgot.
func (co *Coordinator) RegisterWorker(url string) {
	co.mu.Lock()
	defer co.mu.Unlock()
	w, ok := co.workers[url]
	if !ok {
		w = &workerState{url: url, registered: true}
		co.workers[url] = w
		co.cfg.Logger.Info("worker registered", "worker", url, "fleet", len(co.workers))
	}
	if !w.healthy {
		co.cfg.Logger.Info("worker healthy", "worker", url, "via", "registration")
	}
	w.healthy = true
	w.registered = true
	w.lastSeen = time.Now()
}

// workerDocs snapshots the fleet for the API.
func (co *Coordinator) workerDocs() []WorkerDoc {
	co.mu.Lock()
	defer co.mu.Unlock()
	docs := make([]WorkerDoc, 0, len(co.workers))
	for _, w := range co.workers {
		docs = append(docs, WorkerDoc{
			URL: w.url, Healthy: w.healthy, Registered: w.registered,
			LastSeen: w.lastSeen, Jobs: w.jobs,
		})
	}
	return docs
}

// healthyWorkers snapshots the URLs currently believed routable.
// Caller holds the mutex.
func (co *Coordinator) healthyWorkersLocked() []string {
	urls := make([]string, 0, len(co.workers))
	for _, w := range co.workers {
		if w.healthy {
			urls = append(urls, w.url)
		}
	}
	return urls
}

// markUnhealthy records a failed probe or forward. The worker stays in
// the set — a later probe or re-registration revives it.
func (co *Coordinator) markUnhealthy(url, why string) {
	co.mu.Lock()
	defer co.mu.Unlock()
	w, ok := co.workers[url]
	if !ok || !w.healthy {
		return
	}
	w.healthy = false
	co.addStat("coord.worker_down", 1)
	co.cfg.Logger.Warn("worker unhealthy", "worker", url, "why", why)
}

// healthLoop probes every worker's /readyz each interval. A worker
// that answers 200 is routable; anything else — including a draining
// worker's 503 — takes it out of the rendezvous ranking until it
// recovers.
func (co *Coordinator) healthLoop() {
	defer co.wg.Done()
	t := time.NewTicker(co.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-co.baseCtx.Done():
			return
		case <-t.C:
		}
		co.mu.Lock()
		urls := make([]string, 0, len(co.workers))
		for u := range co.workers {
			urls = append(urls, u)
		}
		co.mu.Unlock()
		for _, u := range urls {
			healthy := co.probe(u)
			co.mu.Lock()
			w, ok := co.workers[u]
			if ok {
				if healthy {
					if !w.healthy {
						co.cfg.Logger.Info("worker healthy", "worker", u, "via", "probe")
					}
					w.healthy = true
					w.lastSeen = time.Now()
				} else if w.healthy {
					w.healthy = false
					co.addStat("coord.worker_down", 1)
					co.cfg.Logger.Warn("worker unhealthy", "worker", u, "why", "readyz probe failed")
				}
			}
			co.mu.Unlock()
		}
	}
}

// probe is one readiness check.
func (co *Coordinator) probe(url string) bool {
	ctx, cancel := context.WithTimeout(co.baseCtx, co.cfg.HealthInterval)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/readyz", nil)
	if err != nil {
		return false
	}
	resp, err := co.client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// Submission outcomes forward() distinguishes for the HTTP layer.
var (
	errAllSaturated   = errors.New("every reachable shard is saturated; retry shortly")
	errNoWorkers      = errors.New("no healthy workers")
	errDraining       = errors.New("coordinator is draining; not accepting jobs")
	errAttemptsSpent  = errors.New("job re-routed too many times")
	errWorkerRejected = errors.New("worker rejected the spec")
)

// submit registers a submission, answering from the persistent store
// or joining an in-flight duplicate when possible; otherwise it
// forwards the job to its rendezvous shard synchronously and hands
// the accepted job to a watcher goroutine. The returned status is the
// HTTP status to answer with; joined marks a single-flight join.
func (co *Coordinator) submit(spec exp.JobSpec, requestID string, remote obs.SpanContext) (j *cjob, status int, joined bool, err error) {
	key := spec.Key()
	co.mu.Lock()
	co.addStat("coord.jobs_submitted", 1)
	if co.draining {
		co.mu.Unlock()
		return nil, http.StatusServiceUnavailable, false, errDraining
	}
	if dup, ok := co.inflight[key]; ok {
		// Single-flight: identical concurrent submissions collapse onto
		// the routed job; one engine run serves them all.
		co.addStat("coord.singleflight_hits", 1)
		co.cfg.Logger.Info("job joined in-flight duplicate",
			"job_id", dup.id, "request_id", requestID, "experiment", spec.Experiment)
		co.mu.Unlock()
		return dup, http.StatusAccepted, true, nil
	}
	if co.cfg.Store != nil {
		switch result, ok, serr := co.cfg.Store.Get(key); {
		case serr != nil:
			co.addStat("coord.store_errors", 1)
			co.cfg.Logger.Warn("result store read failed",
				"key", key, "request_id", requestID, "err", serr.Error())
		case ok:
			co.addStat("coord.store_hits", 1)
			j := co.newJobLocked(spec, key, requestID, remote)
			j.completeFromStoreLocked(result)
			co.cfg.Logger.Info("job served from store",
				"job_id", j.id, "request_id", requestID, "experiment", spec.Experiment)
			co.mu.Unlock()
			return j, http.StatusOK, false, nil
		}
	}
	j = co.newJobLocked(spec, key, requestID, remote)
	co.inflight[key] = j
	co.mu.Unlock()

	// First forward happens on the submitter's request so saturation
	// (429) and fleet loss (503) surface synchronously with the right
	// status; after acceptance a watcher owns the job.
	ctx, cancel := context.WithCancel(co.baseCtx)
	co.mu.Lock()
	j.cancel = cancel
	co.mu.Unlock()
	worker, remoteID, ferr := co.forward(ctx, j)
	if ferr != nil {
		cancel()
		co.fail(j, ferr)
		switch {
		case errors.Is(ferr, errAllSaturated):
			return j, http.StatusTooManyRequests, false, ferr
		case errors.Is(ferr, errWorkerRejected):
			return j, http.StatusBadGateway, false, ferr
		default:
			return j, http.StatusServiceUnavailable, false, ferr
		}
	}
	co.wg.Add(1)
	go func() {
		defer co.wg.Done()
		defer cancel()
		co.watch(ctx, j, worker, remoteID)
	}()
	return j, http.StatusAccepted, false, nil
}

// forward routes one job to the best healthy shard: rendezvous order,
// skipping workers that refuse. A connection error or 5xx marks the
// worker unhealthy and moves on; 429 notes saturation and moves on.
// On acceptance the worker's job ID is returned for watching.
func (co *Coordinator) forward(ctx context.Context, j *cjob) (worker, remoteID string, err error) {
	body, err := json.Marshal(j.spec)
	if err != nil {
		return "", "", fmt.Errorf("encoding spec: %w", err)
	}
	co.mu.Lock()
	candidates := Rank(j.key, co.healthyWorkersLocked())
	attempt := j.attempts
	co.mu.Unlock()
	if len(candidates) == 0 {
		return "", "", errNoWorkers
	}
	saturated := false
	for _, w := range candidates {
		if attempt >= co.cfg.ForwardAttempts {
			return "", "", errAttemptsSpent
		}
		attempt++
		doc, status, ferr := co.postJob(ctx, w, body, j)
		co.mu.Lock()
		j.attempts = attempt
		co.mu.Unlock()
		switch {
		case ferr != nil:
			if ctx.Err() != nil {
				return "", "", ctx.Err()
			}
			co.markUnhealthy(w, ferr.Error())
			continue
		case status == http.StatusOK || status == http.StatusAccepted:
			co.mu.Lock()
			j.worker = w
			j.remoteID = doc.ID
			if j.state == server.StateQueued {
				j.state = server.StateRunning
				j.started = time.Now()
			}
			j.notifySubs()
			if ws, ok := co.workers[w]; ok {
				ws.jobs++
			}
			co.mu.Unlock()
			co.addStat("coord.jobs_forwarded", 1)
			co.cfg.Logger.Info("job forwarded",
				"job_id", j.id, "worker", w, "remote_id", doc.ID,
				"attempt", attempt, "cached", doc.Cached)
			return w, doc.ID, nil
		case status == http.StatusTooManyRequests:
			saturated = true
			co.cfg.Logger.Info("worker saturated", "job_id", j.id, "worker", w)
			continue
		case status == http.StatusServiceUnavailable:
			co.markUnhealthy(w, "draining")
			continue
		case status == http.StatusBadRequest:
			// The coordinator validated this spec; a worker 400 means
			// version skew, and another worker may be newer.
			co.cfg.Logger.Warn("worker rejected spec",
				"job_id", j.id, "worker", w, "err", doc.Error)
			err = fmt.Errorf("%w: %s", errWorkerRejected, doc.Error)
			continue
		default:
			co.markUnhealthy(w, fmt.Sprintf("unexpected status %d", status))
			continue
		}
	}
	switch {
	case saturated:
		return "", "", errAllSaturated
	case err != nil:
		return "", "", err
	default:
		return "", "", errNoWorkers
	}
}

// postJob submits the spec to one worker. The forward span's
// traceparent rides along, so the worker's job trace joins the
// coordinator's; the worker's error body (if any) is decoded into the
// returned doc's Error.
func (co *Coordinator) postJob(ctx context.Context, worker string, body []byte, j *cjob) (server.JobDoc, int, error) {
	var doc server.JobDoc
	ctx, cancel := context.WithTimeout(ctx, co.cfg.ForwardTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		worker+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return doc, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if j.requestID != "" {
		req.Header.Set("X-Request-ID", j.requestID)
	}
	co.mu.Lock()
	fwd := j.tracer.StartSpan(j.span.Context(), "forward")
	fwd.SetAttr("worker", worker)
	co.mu.Unlock()
	obs.PropagateTraceparent(req.Header, fwd.Context())
	resp, err := co.client.Do(req)
	fwd.End()
	if err != nil {
		return doc, 0, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return doc, 0, err
	}
	if resp.StatusCode >= 300 {
		var eb struct {
			Error string `json:"error"`
		}
		json.Unmarshal(raw, &eb) //nolint:errcheck // best-effort detail
		doc.Error = eb.Error
		return doc, resp.StatusCode, nil
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return doc, 0, fmt.Errorf("decoding job doc from %s: %w", worker, err)
	}
	return doc, resp.StatusCode, nil
}

// watch follows one routed job to completion: it consumes the
// worker's SSE stream, republishes progress, and on the terminal
// event fetches the raw result bytes (the stream's embedded copy is
// re-compacted by the worker's JSON encoder — only GET .../result
// preserves the CLI-identical bytes). A broken stream before the
// terminal event means the worker died: it is marked unhealthy and
// the job re-forwards to the next shard in rendezvous order, which is
// safe because the simulation is deterministic.
func (co *Coordinator) watch(ctx context.Context, j *cjob, worker, remoteID string) {
	for {
		state, doc, err := co.follow(ctx, j, worker, remoteID)
		if err == nil {
			switch state {
			case server.StateDone:
				result, rerr := co.fetchResult(ctx, worker, remoteID)
				if rerr != nil {
					// Completed on the worker but unretrievable (it died
					// between the event and the fetch): re-run elsewhere.
					co.cfg.Logger.Warn("result fetch failed",
						"job_id", j.id, "worker", worker, "err", rerr.Error())
					co.markUnhealthy(worker, "result fetch failed")
				} else {
					co.complete(j, result)
					return
				}
			case server.StateFailed:
				co.fail(j, errors.New(doc.Error))
				return
			case server.StateCancelled:
				co.mu.Lock()
				co.terminalizeLocked(j, server.StateCancelled, doc.Error)
				co.mu.Unlock()
				co.addStat("coord.jobs_cancelled", 1)
				return
			}
		}
		if ctx.Err() != nil {
			// Cancelled coordinator-side (DELETE or drain): tell the
			// worker, best-effort, and finish.
			co.cancelRemote(worker, remoteID)
			co.mu.Lock()
			co.terminalizeLocked(j, server.StateCancelled, context.Canceled.Error())
			co.mu.Unlock()
			co.addStat("coord.jobs_cancelled", 1)
			return
		}
		if err != nil {
			co.markUnhealthy(worker, fmt.Sprintf("event stream broke: %v", err))
		}
		co.addStat("coord.forward_retries", 1)
		co.cfg.Logger.Warn("re-routing job", "job_id", j.id, "lost_worker", worker)
		var ferr error
		worker, remoteID, ferr = co.forward(ctx, j)
		if ferr != nil {
			co.fail(j, fmt.Errorf("re-routing after worker loss: %w", ferr))
			return
		}
	}
}

// follow consumes one worker's SSE stream for the job until a
// terminal event or a stream error. Progress events update the local
// record; the terminal event's state and doc are returned.
func (co *Coordinator) follow(ctx context.Context, j *cjob, worker, remoteID string) (string, server.JobDoc, error) {
	var doc server.JobDoc
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		worker+"/v1/jobs/"+remoteID+"/events", nil)
	if err != nil {
		return "", doc, err
	}
	resp, err := co.client.Do(req)
	if err != nil {
		return "", doc, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		return "", doc, fmt.Errorf("event stream: status %d", resp.StatusCode)
	}
	events := newSSEReader(resp.Body)
	for {
		ev, err := events.next()
		if err != nil {
			return "", doc, err
		}
		switch ev.name {
		case "progress":
			var p server.ProgressEvent
			if json.Unmarshal(ev.data, &p) == nil {
				co.mu.Lock()
				j.progress, j.hasProg = p, true
				j.notifySubs()
				co.mu.Unlock()
			}
		case server.StateDone, server.StateFailed, server.StateCancelled:
			if err := json.Unmarshal(ev.data, &doc); err != nil {
				return "", doc, fmt.Errorf("decoding terminal event: %w", err)
			}
			return ev.name, doc, nil
		}
	}
}

// fetchResult retrieves the raw result bytes for a completed remote
// job — exactly what the worker would serve any client.
func (co *Coordinator) fetchResult(ctx context.Context, worker, remoteID string) ([]byte, error) {
	ctx, cancel := context.WithTimeout(ctx, co.cfg.ForwardTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		worker+"/v1/jobs/"+remoteID+"/result", nil)
	if err != nil {
		return nil, err
	}
	resp, err := co.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		return nil, fmt.Errorf("result: status %d", resp.StatusCode)
	}
	return io.ReadAll(io.LimitReader(resp.Body, 64<<20))
}

// cancelRemote forwards a cancellation, best-effort.
func (co *Coordinator) cancelRemote(worker, remoteID string) {
	ctx, cancel := context.WithTimeout(context.Background(), co.cfg.ForwardTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete,
		worker+"/v1/jobs/"+remoteID, nil)
	if err != nil {
		return
	}
	if resp, err := co.client.Do(req); err == nil {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
	}
}

// complete finishes a job with its result: write-through to the
// store, then publish.
func (co *Coordinator) complete(j *cjob, result []byte) {
	if co.cfg.Store != nil {
		if serr := co.cfg.Store.Put(j.key, result); serr != nil {
			co.addStat("coord.store_errors", 1)
			co.cfg.Logger.Warn("result store write failed", "key", j.key, "err", serr.Error())
		} else {
			co.addStat("coord.store_puts", 1)
		}
	}
	co.mu.Lock()
	j.result = result
	co.terminalizeLocked(j, server.StateDone, "")
	co.mu.Unlock()
	co.addStat("coord.jobs_completed", 1)
	co.cfg.Logger.Info("job finished", "job_id", j.id, "worker", j.worker,
		"state", server.StateDone, "attempts", j.attempts)
}

// fail finishes a job with an error.
func (co *Coordinator) fail(j *cjob, err error) {
	co.mu.Lock()
	co.terminalizeLocked(j, server.StateFailed, err.Error())
	co.mu.Unlock()
	co.addStat("coord.jobs_failed", 1)
	co.cfg.Logger.Error("job failed", "job_id", j.id, "err", err.Error())
}

// cancelJob cancels a routed job. The watcher observes the context
// cancellation, forwards DELETE to the worker and terminalizes.
func (co *Coordinator) cancelJob(id string) (*cjob, error) {
	co.mu.Lock()
	defer co.mu.Unlock()
	j, ok := co.jobs[id]
	if !ok {
		return nil, errNoSuchJob
	}
	if j.terminal() {
		return j, fmt.Errorf("job %s is already %s", id, j.state)
	}
	if j.cancel != nil {
		j.cancel()
	}
	return j, nil
}

var errNoSuchJob = errors.New("no such job")

// Drain stops intake, cancels the health loop, and gives routed jobs
// until ctx expires to finish before cancelling them.
func (co *Coordinator) Drain(ctx context.Context) error {
	co.mu.Lock()
	co.draining = true
	co.mu.Unlock()

	done := make(chan struct{})
	go func() {
		co.waitJobs()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		co.mu.Lock()
		forced := 0
		for _, j := range co.order {
			if !j.terminal() && j.cancel != nil {
				j.cancel()
				forced++
			}
		}
		co.mu.Unlock()
		err = fmt.Errorf("drain grace period expired; cancelled %d routed jobs", forced)
	}
	co.baseCancel()
	co.wg.Wait()
	return err
}

// waitJobs blocks until every registered job is terminal.
func (co *Coordinator) waitJobs() {
	for {
		co.mu.Lock()
		var pending *cjob
		for _, j := range co.order {
			if !j.terminal() {
				pending = j
				break
			}
		}
		co.mu.Unlock()
		if pending == nil {
			return
		}
		<-pending.done
	}
}

// Draining reports whether Drain has begun.
func (co *Coordinator) Draining() bool {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.draining
}
