package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"time"

	"repro/internal/exp"
	"repro/internal/obs"
	"repro/internal/server"
)

// maxSpecBytes bounds a job-spec request body (same limit as a
// worker's).
const maxSpecBytes = 1 << 20

// Handler returns the coordinator's HTTP routes: the single-node
// /v1/jobs surface, plus the fleet endpoints (see docs/CLUSTER.md).
func Handler(co *Coordinator) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", co.handleHealth)
	mux.HandleFunc("GET /readyz", co.handleReady)
	mux.HandleFunc("GET /metrics", co.handleMetrics)
	mux.HandleFunc("POST /v1/jobs", co.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", co.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", co.handleGet)
	mux.HandleFunc("GET /v1/jobs/{id}/result", co.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/events", co.handleEvents)
	mux.HandleFunc("DELETE /v1/jobs/{id}", co.handleCancel)
	mux.HandleFunc("GET /v1/workers", co.handleWorkers)
	mux.HandleFunc("POST /v1/workers", co.handleRegister)
	return co.instrument(mux)
}

// Handler is the method form of the package-level Handler.
func (co *Coordinator) Handler() http.Handler { return Handler(co) }

// statusWriter captures the response status; Flush is forwarded so
// SSE keeps streaming through the wrap.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

type requestIDKey struct{}

func requestID(r *http.Request) string {
	id, _ := r.Context().Value(requestIDKey{}).(string)
	return id
}

// instrument assigns (or adopts) the request ID, counts every
// response by status, and logs one record per request — the same
// contract a worker's middleware keeps.
func (co *Coordinator) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reqID := r.Header.Get("X-Request-ID")
		if reqID == "" {
			reqID = obs.NewSpanID().String()
		}
		w.Header().Set("X-Request-ID", reqID)
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		co.addStat("coord.http_requests", 1)
		ctx := context.WithValue(r.Context(), requestIDKey{}, reqID)
		next.ServeHTTP(sw, r.WithContext(ctx))
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		co.statsMu.Lock()
		co.statusCounts[sw.status]++
		co.statsMu.Unlock()
		co.cfg.Logger.Info("http request",
			"method", r.Method, "path", r.URL.Path, "status", sw.status,
			"request_id", reqID, "dur_ms", time.Since(start).Milliseconds())
	})
}

type errorBody struct {
	Error    string   `json:"error"`
	Problems []string `json:"problems,omitempty"`
	JobID    string   `json:"job_id,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone; nothing to do
}

func writeError(w http.ResponseWriter, status int, err error, jobID string) {
	body := errorBody{Error: err.Error(), JobID: jobID}
	var ve *exp.ValidationError
	if errors.As(err, &ve) {
		body.Problems = ve.Problems
	}
	writeJSON(w, status, body)
}

// healthDoc reports the coordinator's live state: fleet size and
// routed-job counts by phase.
type healthDoc struct {
	Status         string `json:"status"`
	Workers        int    `json:"workers"`
	HealthyWorkers int    `json:"healthy_workers"`
	Running        int    `json:"running"`
	Draining       bool   `json:"draining"`
}

func (co *Coordinator) health() healthDoc {
	co.mu.Lock()
	defer co.mu.Unlock()
	d := healthDoc{Status: "ok", Workers: len(co.workers), Draining: co.draining}
	for _, w := range co.workers {
		if w.healthy {
			d.HealthyWorkers++
		}
	}
	for _, j := range co.order {
		if !j.terminal() {
			d.Running++
		}
	}
	if co.draining {
		d.Status = "draining"
	}
	return d
}

func (co *Coordinator) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, co.health())
}

// handleReady answers 503 while draining or while no worker is
// routable — a load balancer in front of several coordinators should
// skip one that cannot place jobs.
func (co *Coordinator) handleReady(w http.ResponseWriter, r *http.Request) {
	doc := co.health()
	if doc.Draining || doc.HealthyWorkers == 0 {
		writeJSON(w, http.StatusServiceUnavailable, doc)
		return
	}
	writeJSON(w, http.StatusOK, doc)
}

// handleSubmit mirrors a worker's POST /v1/jobs contract over the
// fleet: the spec's canonical digest picks the shard, the persistent
// store answers repeats (X-Overlaysim-Cache: hit-store), concurrent
// identical submissions single-flight onto one routed job
// (X-Overlaysim-Singleflight), 429 + Retry-After when every reachable
// shard is saturated, and 503 when none is reachable. ?wait=true
// defers the response until the routed job is terminal.
func (co *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	spec, err := exp.ParseJobSpec(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, err, "")
		return
	}
	remote, _ := obs.TraceparentFromHeader(r.Header)
	j, status, joined, err := co.submit(spec, requestID(r), remote)
	if err != nil {
		if status == http.StatusTooManyRequests {
			w.Header().Set("Retry-After",
				strconv.Itoa(int((co.cfg.RetryAfter+time.Second-1)/time.Second)))
		}
		jobID := ""
		if j != nil {
			jobID = j.id
		}
		writeError(w, status, err, jobID)
		return
	}
	co.mu.Lock()
	sc := j.span.Context()
	cached := j.cached
	co.mu.Unlock()
	obs.PropagateTraceparent(w.Header(), sc)
	if cached {
		w.Header().Set("X-Overlaysim-Cache", "hit-store")
	} else {
		w.Header().Set("X-Overlaysim-Cache", "miss")
	}
	if joined {
		w.Header().Set("X-Overlaysim-Singleflight", j.id)
	}
	if status == http.StatusAccepted && wantWait(r) {
		select {
		case <-j.done:
			status = http.StatusOK
		case <-r.Context().Done():
			return // client gave up; the routed job keeps running
		}
	}
	co.mu.Lock()
	doc := j.doc(true)
	co.mu.Unlock()
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	writeJSON(w, status, doc)
}

func wantWait(r *http.Request) bool {
	switch r.URL.Query().Get("wait") {
	case "1", "true", "yes":
		return true
	}
	return false
}

func (co *Coordinator) handleList(w http.ResponseWriter, r *http.Request) {
	co.mu.Lock()
	docs := make([]interface{}, 0, len(co.order))
	for _, j := range co.order {
		docs = append(docs, j.doc(false))
	}
	co.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]interface{}{"jobs": docs})
}

func (co *Coordinator) lookup(w http.ResponseWriter, r *http.Request) (*cjob, bool) {
	co.mu.Lock()
	j, ok := co.jobs[r.PathValue("id")]
	co.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such job %q", r.PathValue("id")), "")
	}
	return j, ok
}

func (co *Coordinator) handleGet(w http.ResponseWriter, r *http.Request) {
	j, ok := co.lookup(w, r)
	if !ok {
		return
	}
	co.mu.Lock()
	doc := j.doc(true)
	co.mu.Unlock()
	writeJSON(w, http.StatusOK, doc)
}

// handleResult serves the raw result bytes — exactly what the worker
// served the coordinator, which is exactly what the CLI's -json would
// have written. 409 until done.
func (co *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := co.lookup(w, r)
	if !ok {
		return
	}
	co.mu.Lock()
	state := j.state
	result := j.result
	co.mu.Unlock()
	if state != server.StateDone {
		writeError(w, http.StatusConflict,
			fmt.Errorf("job %s is %s; no result to serve", j.id, state), j.id)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(result) //nolint:errcheck
}

func (co *Coordinator) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, err := co.cancelJob(r.PathValue("id"))
	if errors.Is(err, errNoSuchJob) {
		writeError(w, http.StatusNotFound, err, "")
		return
	}
	if err != nil {
		writeError(w, http.StatusConflict, err, j.id)
		return
	}
	co.mu.Lock()
	doc := j.doc(false)
	co.mu.Unlock()
	writeJSON(w, http.StatusAccepted, doc)
}

// handleEvents re-publishes a routed job's lifecycle as the
// coordinator's own SSE stream. The client's connection survives a
// worker loss: progress resumes from the replacement shard on the
// same stream.
func (co *Coordinator) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := co.lookup(w, r)
	if !ok {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError,
			errors.New("streaming unsupported by this connection"), j.id)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush() // release the headers before the first event arrives

	sub := make(chan struct{}, 1)
	co.mu.Lock()
	j.subs[sub] = struct{}{}
	co.mu.Unlock()
	defer func() {
		co.mu.Lock()
		delete(j.subs, sub)
		co.mu.Unlock()
	}()

	type progressPayload struct {
		server.ProgressEvent
		JobID     string `json:"job_id"`
		Worker    string `json:"worker,omitempty"`
		TraceID   string `json:"trace_id,omitempty"`
		RequestID string `json:"request_id,omitempty"`
	}

	var sent server.ProgressEvent
	sentAny := false
	for {
		co.mu.Lock()
		prog, hasProg := j.progress, j.hasProg
		worker := j.worker
		terminal := j.terminal()
		var finalDoc server.JobDoc
		var state string
		if terminal {
			finalDoc = j.doc(true)
			state = j.state
		}
		co.mu.Unlock()

		if hasProg && (!sentAny || prog != sent) {
			payload := progressPayload{
				ProgressEvent: prog, JobID: j.id, Worker: worker,
				TraceID: j.traceID(), RequestID: j.requestID,
			}
			if err := writeSSE(w, "progress", payload); err != nil {
				return
			}
			sent, sentAny = prog, true
			fl.Flush()
		}
		if terminal {
			if writeSSE(w, state, finalDoc) == nil {
				fl.Flush()
			}
			return
		}
		select {
		case <-sub:
		case <-r.Context().Done():
			return
		}
	}
}

func writeSSE(w http.ResponseWriter, event string, data interface{}) error {
	b, err := json.Marshal(data)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, b)
	return err
}

// handleWorkers lists the fleet, stable by URL.
func (co *Coordinator) handleWorkers(w http.ResponseWriter, r *http.Request) {
	docs := co.workerDocs()
	sort.Slice(docs, func(i, k int) bool { return docs[i].URL < docs[k].URL })
	writeJSON(w, http.StatusOK, map[string]interface{}{"workers": docs})
}

// handleRegister accepts a worker announcement: {"url": "http://..."}.
// Registration is idempotent and doubles as a keep-alive.
func (co *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var body struct {
		URL string `json:"url"`
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding registration: %w", err), "")
		return
	}
	if body.URL == "" {
		writeError(w, http.StatusBadRequest, errors.New("registration needs a url"), "")
		return
	}
	co.RegisterWorker(body.URL)
	writeJSON(w, http.StatusOK, map[string]string{"status": "registered", "url": body.URL})
}
