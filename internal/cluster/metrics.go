package cluster

import (
	"context"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"

	"repro/internal/sim"
)

// handleMetrics renders the coordinator's own registry (routing
// counters, HTTP statuses, per-worker job tallies, fleet gauges)
// followed by the fleet aggregate: every worker's /metrics scraped,
// parsed and merged — counters summed, histogram buckets re-cumulated
// over the union of bounds — so one scrape of the coordinator equals
// the sum of the worker registries. An unreachable worker is skipped
// and counted in overlaysim_coord_scrape_errors; the aggregate then
// covers the workers that answered.
func (co *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")

	co.mu.Lock()
	workers := make([]string, 0, len(co.workers))
	healthy := 0
	perWorkerJobs := make(map[string]uint64, len(co.workers))
	for u, ws := range co.workers {
		workers = append(workers, u)
		if ws.healthy {
			healthy++
		}
		perWorkerJobs[u] = ws.jobs
	}
	co.mu.Unlock()
	sort.Strings(workers)

	fmt.Fprintf(w, "# HELP overlaysim_coord_workers registered shards\n"+
		"# TYPE overlaysim_coord_workers gauge\noverlaysim_coord_workers %d\n", len(workers))
	fmt.Fprintf(w, "# HELP overlaysim_coord_workers_healthy shards passing readiness probes\n"+
		"# TYPE overlaysim_coord_workers_healthy gauge\noverlaysim_coord_workers_healthy %d\n", healthy)
	if len(workers) > 0 {
		const m = "overlaysim_coord_worker_jobs_total"
		fmt.Fprintf(w, "# HELP %s jobs routed per shard\n# TYPE %s counter\n", m, m)
		for _, u := range workers {
			fmt.Fprintf(w, "%s{worker=\"%s\"} %d\n", m, sim.PromEscapeLabel(u), perWorkerJobs[u])
		}
	}
	co.statsMu.Lock()
	if len(co.statusCounts) > 0 {
		const m = "overlaysim_coord_http_responses_total"
		fmt.Fprintf(w, "# HELP %s HTTP responses by status code\n# TYPE %s counter\n", m, m)
		codes := make([]int, 0, len(co.statusCounts))
		for code := range co.statusCounts {
			codes = append(codes, code)
		}
		sort.Ints(codes)
		for _, code := range codes {
			fmt.Fprintf(w, "%s{code=\"%s\"} %d\n",
				m, sim.PromEscapeLabel(strconv.Itoa(code)), co.statusCounts[code])
		}
	}
	sim.WritePrometheus(w, "overlaysim_", co.stats) //nolint:errcheck // client gone
	co.statsMu.Unlock()

	// Fleet aggregate: scrape, merge, render.
	scrapes := make([]scrape, 0, len(workers))
	errs := 0
	for _, u := range workers {
		sc, err := co.scrapeWorker(r.Context(), u)
		if err != nil {
			errs++
			fmt.Fprintf(w, "# fleet scrape failed: %s\n", u)
			continue
		}
		scrapes = append(scrapes, sc)
	}
	fmt.Fprintf(w, "# HELP overlaysim_coord_scrape_errors workers that failed this fleet scrape\n"+
		"# TYPE overlaysim_coord_scrape_errors gauge\noverlaysim_coord_scrape_errors %d\n", errs)
	writeMerged(w, mergeScrapes(scrapes))
}

// scrape is one worker's parsed /metrics exposition.
type scrape struct {
	samples []sim.PromSample
	types   map[string]string
}

func (co *Coordinator) scrapeWorker(ctx context.Context, worker string) (scrape, error) {
	ctx, cancel := context.WithTimeout(ctx, co.cfg.ForwardTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, worker+"/metrics", nil)
	if err != nil {
		return scrape{}, err
	}
	resp, err := co.client.Do(req)
	if err != nil {
		return scrape{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		return scrape{}, fmt.Errorf("status %d", resp.StatusCode)
	}
	samples, types, err := sim.ParsePrometheus(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return scrape{}, err
	}
	return scrape{samples: samples, types: types}, nil
}

// mergedSeries is one output series after the merge.
type mergedSeries struct {
	name     string
	label    string
	labelVal string
	value    float64
}

// merged is the fleet aggregate ready to render.
type merged struct {
	series []mergedSeries
	types  map[string]string
}

// mergeScrapes sums worker expositions per series. Plain samples —
// counters, gauges, histogram _sum/_count — sum directly, keyed by
// (name, label, value). Histogram le-buckets are cumulative, and
// workers emit only their own non-empty buckets, so summing the
// cumulative values per le would under-count wherever bucket sets
// differ; instead each worker's buckets are de-cumulated to per-bucket
// deltas, the deltas summed, and the merged buckets re-cumulated over
// the union of bounds (ascending, +Inf last).
func mergeScrapes(scrapes []scrape) merged {
	m := merged{types: make(map[string]string)}
	plain := make(map[string]*mergedSeries)     // key → sum
	hist := make(map[string]map[string]float64) // metric → le → delta sum
	var plainOrder []string
	var histOrder []string

	for _, sc := range scrapes {
		for name, t := range sc.types {
			m.types[name] = t
		}
		prevCum := make(map[string]float64) // per-scrape cumulative walker
		for _, s := range sc.samples {
			if s.Le != "" {
				buckets, ok := hist[s.Name]
				if !ok {
					buckets = make(map[string]float64)
					hist[s.Name] = buckets
					histOrder = append(histOrder, s.Name)
				}
				buckets[s.Le] += s.Value - prevCum[s.Name]
				prevCum[s.Name] = s.Value
				continue
			}
			key := s.Name + "\x00" + s.Label + "\x00" + s.LabelVal
			series, ok := plain[key]
			if !ok {
				series = &mergedSeries{name: s.Name, label: s.Label, labelVal: s.LabelVal}
				plain[key] = series
				plainOrder = append(plainOrder, key)
			}
			series.value += s.Value
		}
	}

	sort.Strings(plainOrder)
	for _, key := range plainOrder {
		m.series = append(m.series, *plain[key])
	}
	sort.Strings(histOrder)
	for _, name := range histOrder {
		buckets := hist[name]
		les := make([]string, 0, len(buckets))
		for le := range buckets {
			les = append(les, le)
		}
		sort.Slice(les, func(i, j int) bool { return leBound(les[i]) < leBound(les[j]) })
		cum := 0.0
		for _, le := range les {
			cum += buckets[le]
			m.series = append(m.series, mergedSeries{
				name: name, label: "le", labelVal: le, value: cum,
			})
		}
	}
	return m
}

// leBound orders le label values numerically with +Inf last.
func leBound(le string) float64 {
	if le == "+Inf" {
		return math.Inf(1)
	}
	v, err := strconv.ParseFloat(le, 64)
	if err != nil {
		return math.Inf(1)
	}
	return v
}

// writeMerged renders the aggregate, one TYPE comment per metric name
// (a histogram's _bucket/_sum/_count series may not be adjacent in the
// output, so emitted declarations are tracked by name, not position).
func writeMerged(w io.Writer, m merged) {
	typed := make(map[string]bool)
	for _, s := range m.series {
		base := s.name
		// A histogram's _bucket/_sum/_count share one TYPE declaration
		// under the base name.
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if len(base) > len(suffix) && base[len(base)-len(suffix):] == suffix {
				if t, ok := m.types[base[:len(base)-len(suffix)]]; ok && t == "histogram" {
					base = base[:len(base)-len(suffix)]
				}
				break
			}
		}
		if !typed[base] {
			if t, ok := m.types[base]; ok {
				fmt.Fprintf(w, "# HELP %s fleet aggregate of %s\n# TYPE %s %s\n", base, base, base, t)
			}
			typed[base] = true
		}
		if s.label != "" {
			fmt.Fprintf(w, "%s{%s=\"%s\"} %s\n",
				s.name, s.label, sim.PromEscapeLabel(s.labelVal), formatPromValue(s.value))
			continue
		}
		fmt.Fprintf(w, "%s %s\n", s.name, formatPromValue(s.value))
	}
}

// formatPromValue renders integral values without an exponent or
// trailing zeros, matching what the workers emitted.
func formatPromValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
