package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
)

// rendezvousScore is the highest-random-weight score binding key to
// node: the first eight bytes of sha256(key "|" node) as a big-endian
// integer. Every observer that knows the node set computes the same
// ranking from nothing but the key, so routing needs no shared state
// and no coordination.
func rendezvousScore(key, node string) uint64 {
	h := sha256.New()
	h.Write([]byte(key))
	h.Write([]byte{'|'})
	h.Write([]byte(node))
	var sum [sha256.Size]byte
	return binary.BigEndian.Uint64(h.Sum(sum[:0])[:8])
}

// Rank orders nodes for key by descending rendezvous score (ties break
// on node name, so the order is total and deterministic). The first
// element is the key's home shard; the remainder is its failover
// order. Removing a node from the input removes exactly that node
// from the output — every other key keeps its home — which is the
// property that makes worker loss cheap: only the lost shard's keys
// re-home, and they re-home to what was already their second choice.
func Rank(key string, nodes []string) []string {
	ranked := append([]string(nil), nodes...)
	scores := make(map[string]uint64, len(ranked))
	for _, n := range ranked {
		scores[n] = rendezvousScore(key, n)
	}
	sort.Slice(ranked, func(i, j int) bool {
		si, sj := scores[ranked[i]], scores[ranked[j]]
		if si != sj {
			return si > sj
		}
		return ranked[i] < ranked[j]
	})
	return ranked
}
