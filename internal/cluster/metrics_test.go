package cluster

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sim"
)

func parseExposition(t *testing.T, text string) scrape {
	t.Helper()
	samples, types, err := sim.ParsePrometheus(strings.NewReader(text))
	if err != nil {
		t.Fatalf("parsing exposition: %v\n%s", err, text)
	}
	return scrape{samples: samples, types: types}
}

// TestMergeScrapesSumsCounters proves the fleet aggregate is the sum
// of worker registries, including labelled series.
func TestMergeScrapesSumsCounters(t *testing.T) {
	a := parseExposition(t, `# TYPE overlaysim_server_engine_runs counter
overlaysim_server_engine_runs 3
# TYPE overlaysim_server_http_responses_total counter
overlaysim_server_http_responses_total{code="200"} 5
overlaysim_server_http_responses_total{code="429"} 1
`)
	b := parseExposition(t, `# TYPE overlaysim_server_engine_runs counter
overlaysim_server_engine_runs 4
# TYPE overlaysim_server_http_responses_total counter
overlaysim_server_http_responses_total{code="200"} 7
`)
	var out bytes.Buffer
	writeMerged(&out, mergeScrapes([]scrape{a, b}))
	merged := parseExposition(t, out.String())

	got := map[string]float64{}
	for _, s := range merged.samples {
		got[s.Name+"{"+s.LabelVal+"}"] = s.Value
	}
	want := map[string]float64{
		"overlaysim_server_engine_runs{}":             7,
		"overlaysim_server_http_responses_total{200}": 12,
		"overlaysim_server_http_responses_total{429}": 1,
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("%s = %v, want %v\n%s", k, got[k], v, out.String())
		}
	}
	if merged.types["overlaysim_server_engine_runs"] != "counter" {
		t.Errorf("TYPE declaration lost: %v", merged.types)
	}
}

// TestMergeScrapesRecumulatesHistograms is the subtle case: workers
// emit only their own non-empty cumulative buckets, so the merge must
// de-cumulate, sum, and re-cumulate over the union of bounds. Worker
// A has 2 samples ≤4; worker B has 3 samples ≤8 (none ≤4). A naive
// per-le sum would report le="8" as 3, silently losing A's samples
// from that bound.
func TestMergeScrapesRecumulatesHistograms(t *testing.T) {
	a := parseExposition(t, `# TYPE overlaysim_server_queue_wait_ms histogram
overlaysim_server_queue_wait_ms_bucket{le="4"} 2
overlaysim_server_queue_wait_ms_bucket{le="+Inf"} 2
overlaysim_server_queue_wait_ms_sum 6
overlaysim_server_queue_wait_ms_count 2
`)
	b := parseExposition(t, `# TYPE overlaysim_server_queue_wait_ms histogram
overlaysim_server_queue_wait_ms_bucket{le="8"} 3
overlaysim_server_queue_wait_ms_bucket{le="+Inf"} 3
overlaysim_server_queue_wait_ms_sum 18
overlaysim_server_queue_wait_ms_count 3
`)
	var out bytes.Buffer
	writeMerged(&out, mergeScrapes([]scrape{a, b}))
	merged := parseExposition(t, out.String())

	buckets := map[string]float64{}
	var sum, count float64
	for _, s := range merged.samples {
		switch {
		case s.Le != "":
			buckets[s.Le] = s.Value
		case strings.HasSuffix(s.Name, "_sum"):
			sum = s.Value
		case strings.HasSuffix(s.Name, "_count"):
			count = s.Value
		}
	}
	if buckets["4"] != 2 || buckets["8"] != 5 || buckets["+Inf"] != 5 {
		t.Errorf("buckets = %v, want le4=2 le8=5 +Inf=5\n%s", buckets, out.String())
	}
	if sum != 24 || count != 5 {
		t.Errorf("sum/count = %v/%v, want 24/5", sum, count)
	}
	// Cumulative bucket order in the output: ascending, +Inf last.
	text := out.String()
	i4 := strings.Index(text, `le="4"`)
	i8 := strings.Index(text, `le="8"`)
	iInf := strings.Index(text, `le="+Inf"`)
	if i4 < 0 || i8 < 0 || iInf < 0 || !(i4 < i8 && i8 < iInf) {
		t.Errorf("bucket order wrong in output:\n%s", text)
	}
}

func TestMergeScrapesSingleWorkerIsIdentity(t *testing.T) {
	a := parseExposition(t, `# TYPE overlaysim_sim_stub_runs counter
overlaysim_sim_stub_runs 9
# TYPE overlaysim_server_job_wall_ms histogram
overlaysim_server_job_wall_ms_bucket{le="16"} 1
overlaysim_server_job_wall_ms_bucket{le="+Inf"} 4
overlaysim_server_job_wall_ms_sum 100
overlaysim_server_job_wall_ms_count 4
`)
	var out bytes.Buffer
	writeMerged(&out, mergeScrapes([]scrape{a}))
	merged := parseExposition(t, out.String())
	got := map[string]float64{}
	for _, s := range merged.samples {
		got[s.Name+"{"+s.LabelVal+"}"] = s.Value
	}
	for k, v := range map[string]float64{
		"overlaysim_sim_stub_runs{}":                 9,
		"overlaysim_server_job_wall_ms_bucket{16}":   1,
		"overlaysim_server_job_wall_ms_bucket{+Inf}": 4,
		"overlaysim_server_job_wall_ms_sum{}":        100,
		"overlaysim_server_job_wall_ms_count{}":      4,
	} {
		if got[k] != v {
			t.Errorf("%s = %v, want %v\n%s", k, got[k], v, out.String())
		}
	}
}
