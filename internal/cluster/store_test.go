package cluster

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/exp"
)

func testKey(t *testing.T) string {
	t.Helper()
	return exp.JobSpec{Experiment: "sweep"}.Key()
}

func TestFSStoreRoundTrip(t *testing.T) {
	s, err := NewFSStore(filepath.Join(t.TempDir(), "results"))
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(t)
	if _, ok, err := s.Get(key); ok || err != nil {
		t.Fatalf("Get on empty store = (%v, %v), want miss", ok, err)
	}
	want := `{"command":"sweep"}`
	if err := s.Put(key, []byte(want)); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get(key)
	if err != nil || !ok || string(got) != want {
		t.Fatalf("Get = (%q, %v, %v), want stored bytes", got, ok, err)
	}
	// Layout: dir/<key[:2]>/<key>.json — pinned because operators and
	// docs/CLUSTER.md rely on it.
	if _, err := os.Stat(filepath.Join(s.Dir(), key[:2], key+".json")); err != nil {
		t.Fatalf("expected disk layout missing: %v", err)
	}
	if n := s.Len(); n != 1 {
		t.Fatalf("Len = %d, want 1", n)
	}
	// Re-put is idempotent.
	if err := s.Put(key, []byte(want)); err != nil {
		t.Fatal(err)
	}
	if n := s.Len(); n != 1 {
		t.Fatalf("Len after re-put = %d, want 1", n)
	}
}

func TestFSStoreSurvivesReopen(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "results")
	s1, err := NewFSStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(t)
	if err := s1.Put(key, []byte(`{"x":1}`)); err != nil {
		t.Fatal(err)
	}
	s2, err := NewFSStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok, err := s2.Get(key)
	if err != nil || !ok || string(got) != `{"x":1}` {
		t.Fatalf("reopened Get = (%q, %v, %v)", got, ok, err)
	}
}

func TestFSStoreRejectsBadKeys(t *testing.T) {
	s, err := NewFSStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"", "short", strings.Repeat("g", 64), "../../../../etc/passwd",
		strings.Repeat("A", 64), // upper-case hex is not what Key emits
	} {
		if _, _, err := s.Get(key); err == nil {
			t.Errorf("Get(%q) accepted an invalid key", key)
		}
		if err := s.Put(key, []byte("{}")); err == nil {
			t.Errorf("Put(%q) accepted an invalid key", key)
		}
	}
}

func TestFSStoreCorruptEntryIsError(t *testing.T) {
	s, err := NewFSStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(t)
	if err := s.Put(key, []byte(`{"ok":true}`)); err != nil {
		t.Fatal(err)
	}
	// Truncate the entry behind the store's back.
	if err := os.WriteFile(filepath.Join(s.Dir(), key[:2], key+".json"),
		[]byte(`{"ok":tr`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Get(key); err == nil || ok {
		t.Fatalf("corrupt entry Get = (ok=%v, err=%v), want error", ok, err)
	}
	// Put repairs it.
	if err := s.Put(key, []byte(`{"ok":true}`)); err != nil {
		t.Fatal(err)
	}
	if got, ok, err := s.Get(key); err != nil || !ok || string(got) != `{"ok":true}` {
		t.Fatalf("repaired Get = (%q, %v, %v)", got, ok, err)
	}
	// No temp litter from normal operation.
	files, _ := os.ReadDir(filepath.Join(s.Dir(), key[:2]))
	for _, f := range files {
		if strings.Contains(f.Name(), ".tmp-") {
			t.Errorf("leftover temp file %s", f.Name())
		}
	}
}
