package core

import (
	"fmt"
	"sort"

	"repro/internal/arch"
	"repro/internal/sim"
	"repro/internal/tlb"
	"repro/internal/vm"
)

// TranslationBackend is the pluggable translation mechanism behind the
// framework. It covers every point where an address-translation design
// touches the simulated system: the TLB's miss path (Walk), the timed
// per-access translation on the core side (ReadTarget/WriteLatency), the
// structural resolution of stores (Write plus the functional
// ResolveRead/ResolveWrite pair shared with the untimed path), the memory
// controller's view of LLC misses and write-backs (Fetch/WriteBack and
// the prefetcher feed OnMiss), and the OS-level sharing mechanism used at
// fork time. MetadataBytes models the translation-metadata footprint the
// design carries for the currently mapped state; SnapshotState and
// RestoreState carry any backend-private structures across
// Snapshot/NewFromSnapshot.
//
// Four implementations are registered: "overlay" (the paper's page
// overlays — the default, bit-identical to the pre-refactor framework),
// "baseline" (conventional 4-level walks plus trap-and-copy COW, the
// control), "vbi" (the Virtual Block Interface: virtually-tagged caches
// with translation delegated to a memory-translation layer at the
// controller), and "utopia" (hybrid restrictive/flexible mappings: a
// hash-claimed restrictive set makes most walks cheap, the rest fall
// back to the conventional walk).
type TranslationBackend interface {
	// Name returns the backend's registered name.
	Name() string

	// Walk resolves a TLB miss; the returned latency is the walk cost
	// (the TLB adds its own probe latencies on top).
	Walk(pid arch.PID, vpn arch.VPN) (tlb.Entry, sim.Cycle, bool)

	// ReadTarget translates a timed load: the cache-tag address the
	// access is issued at and the translation latency preceding it. It
	// panics on a true fault — workloads map their footprints.
	ReadTarget(p *Port, pid arch.PID, va arch.VirtAddr) (arch.PhysAddr, sim.Cycle)

	// WriteLatency returns the translation latency a timed store pays
	// before its structural resolution runs.
	WriteLatency(p *Port, pid arch.PID, va arch.VirtAddr) sim.Cycle

	// Write continues a timed store after translation: it performs the
	// structural resolution and issues the hierarchy access (plus any
	// remap, trap, or copy machinery on the critical path), invoking done
	// when the store completes at the L1.
	Write(p *Port, pid arch.PID, va arch.VirtAddr, done sim.Cont)

	// ResolveRead locates the bytes a load must return (functional path,
	// shared with the timed path so the two can never diverge).
	ResolveRead(proc *vm.Process, vpn arch.VPN, line int) (lineLoc, error)

	// ResolveWrite performs the structural state changes a store
	// requires and reports what happened. It does not write the payload.
	ResolveWrite(proc *vm.Process, vpn arch.VPN, line int) (writeResolution, error)

	// Fetch resolves an LLC miss at the memory controller.
	Fetch(addr arch.PhysAddr, done sim.Cont)

	// WriteBack accepts a dirty line evicted from the LLC.
	WriteBack(addr arch.PhysAddr)

	// OnMiss observes L2 demand misses (prefetcher feeding and any
	// controller-side metadata priming).
	OnMiss(addr arch.PhysAddr)

	// Fork clones the process under the backend's sharing mechanism.
	// overlayMode selects overlay-on-write where the backend supports it
	// and is ignored otherwise.
	Fork(parent *vm.Process, overlayMode bool) *vm.Process

	// MetadataBytes models the translation-metadata footprint (page
	// tables, OMT entries, block tables, restrictive-set tags) for the
	// currently mapped state.
	MetadataBytes() int

	// SnapshotState captures backend-private state (nil if the backend
	// keeps none outside the shared components).
	SnapshotState() any

	// RestoreState restores a SnapshotState capture into a freshly
	// assembled backend.
	RestoreState(state any)
}

// backendRegistry maps names to constructors. Backends self-register
// from init functions in their own files.
var backendRegistry = map[string]func(*Framework) TranslationBackend{}

// RegisterBackend adds a backend constructor under name. It panics on
// duplicates — registration is an init-time, programmer-error path.
func RegisterBackend(name string, mk func(*Framework) TranslationBackend) {
	if _, dup := backendRegistry[name]; dup {
		panic("core: duplicate backend " + name)
	}
	backendRegistry[name] = mk
}

// DefaultBackend is the backend an empty Config.Backend selects.
const DefaultBackend = "overlay"

// Backends returns the registered backend names, sorted.
func Backends() []string {
	names := make([]string, 0, len(backendRegistry))
	for name := range backendRegistry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ValidBackend reports whether name selects a registered backend (the
// empty string selects the default). The error lists the valid names.
func ValidBackend(name string) error {
	if name == "" {
		return nil
	}
	if _, ok := backendRegistry[name]; !ok {
		return fmt.Errorf("unknown backend %q (valid: %v)", name, Backends())
	}
	return nil
}

// BackendName resolves the config's backend selection to a concrete name.
func (c Config) BackendName() string {
	if c.Backend == "" {
		return DefaultBackend
	}
	return c.Backend
}

// Backend returns the framework's translation backend.
func (f *Framework) Backend() TranslationBackend { return f.backend }

// MetadataBytes reports the backend's modeled translation-metadata
// footprint for the currently mapped state.
func (f *Framework) MetadataBytes() int { return f.backend.MetadataBytes() }
