package core_test

// Backend registry and cross-backend behavior: every registered
// translation backend must provide working fork isolation, deterministic
// timed execution, and snapshot round-trips. The overlay backend's
// bit-identity to the pre-refactor framework is covered by the golden
// tests; these tests hold the other backends to the same structural
// contract.

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/cpu"
)

func TestBackendRegistry(t *testing.T) {
	want := []string{"baseline", "overlay", "utopia", "vbi"}
	if got := core.Backends(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Backends() = %v, want %v", got, want)
	}
	for _, name := range append(core.Backends(), "") {
		if err := core.ValidBackend(name); err != nil {
			t.Errorf("ValidBackend(%q) = %v, want nil", name, err)
		}
	}
	err := core.ValidBackend("nope")
	if err == nil {
		t.Fatal("ValidBackend accepted an unknown backend")
	}
	for _, name := range core.Backends() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("ValidBackend error %q does not list %q", err, name)
		}
	}
	var cfg core.Config
	if got := cfg.BackendName(); got != core.DefaultBackend {
		t.Errorf("empty Config.BackendName() = %q, want %q", got, core.DefaultBackend)
	}
	cfg.Backend = "vbi"
	if got := cfg.BackendName(); got != "vbi" {
		t.Errorf("Config.BackendName() = %q, want %q", got, "vbi")
	}
	cfg.Backend = "nope"
	if _, err := core.New(cfg); err == nil {
		t.Error("core.New accepted an unknown backend")
	}
}

// backendConfig is the small-memory config the per-backend tests share.
func backendConfig(name string) core.Config {
	cfg := core.DefaultConfig()
	cfg.MemoryPages = 4096
	cfg.OMSInitialFrames = 4
	cfg.Backend = name
	return cfg
}

// nativeMode returns the overlayMode flag a backend's own sharing
// mechanism uses at fork time: overlay-on-write for the overlay backend,
// copy-on-write everywhere else.
func nativeMode(name string) bool { return name == core.DefaultBackend }

func TestBackendForkIsolation(t *testing.T) {
	const pages = 8
	for _, name := range core.Backends() {
		t.Run(name, func(t *testing.T) {
			f, err := core.New(backendConfig(name))
			if err != nil {
				t.Fatal(err)
			}
			parent := f.VM.NewProcess()
			if err := f.VM.MapAnon(parent, 0, pages); err != nil {
				t.Fatal(err)
			}
			fill := make([]byte, pages*arch.PageSize)
			for i := range fill {
				fill[i] = byte(i * 13)
			}
			if err := f.Store(parent.PID, 0, fill); err != nil {
				t.Fatal(err)
			}
			if f.MetadataBytes() <= 0 {
				t.Errorf("MetadataBytes() = %d for a mapped footprint, want > 0", f.MetadataBytes())
			}
			if got := f.Backend().Name(); got != name {
				t.Errorf("Backend().Name() = %q, want %q", got, name)
			}

			child := f.Fork(parent, nativeMode(name))

			// The child observes the parent's pre-fork contents.
			got := make([]byte, pages*arch.PageSize)
			if err := f.Load(child.PID, 0, got); err != nil {
				t.Fatal(err)
			}
			if string(got) != string(fill) {
				t.Error("child does not observe the parent's pre-fork contents")
			}

			// A child write stays private to the child.
			if err := f.Store(child.PID, 3*arch.PageSize+7, []byte{0xAB}); err != nil {
				t.Fatal(err)
			}
			b := make([]byte, 1)
			if err := f.Load(parent.PID, 3*arch.PageSize+7, b); err != nil {
				t.Fatal(err)
			}
			if b[0] != fill[3*arch.PageSize+7] {
				t.Errorf("child write leaked into parent: %#x", b[0])
			}

			// A parent write stays private to the parent.
			if err := f.Store(parent.PID, 5*arch.PageSize+1, []byte{0xCD}); err != nil {
				t.Fatal(err)
			}
			if err := f.Load(child.PID, 5*arch.PageSize+1, b); err != nil {
				t.Fatal(err)
			}
			if b[0] != fill[5*arch.PageSize+1] {
				t.Errorf("parent write leaked into child: %#x", b[0])
			}
		})
	}
}

// TestBackendTimedDeterminism runs the same timed trace twice on fresh
// frameworks per backend and requires identical cycles and counters.
func TestBackendTimedDeterminism(t *testing.T) {
	const pages = 16
	instrs := equivTrace(pages)
	runOnce := func(name string) (sim uint64, stats string) {
		t.Helper()
		f, err := core.New(backendConfig(name))
		if err != nil {
			t.Fatal(err)
		}
		p := f.VM.NewProcess()
		if err := f.VM.MapAnon(p, 0, pages); err != nil {
			t.Fatal(err)
		}
		c := cpu.New(f.Engine, f.NewPort(), p.PID, cpu.NewSliceTrace(instrs))
		c.Run(0, nil)
		f.Engine.Run()
		return uint64(c.Cycles()), f.Engine.Stats.String()
	}
	for _, name := range core.Backends() {
		t.Run(name, func(t *testing.T) {
			c1, s1 := runOnce(name)
			c2, s2 := runOnce(name)
			if c1 != c2 {
				t.Errorf("cycles diverge across identical runs: %d vs %d", c1, c2)
			}
			if s1 != s2 {
				t.Errorf("counter registries diverge across identical runs\nfirst:\n%s\nsecond:\n%s", s1, s2)
			}
			if c1 == 0 {
				t.Error("timed run retired no cycles")
			}
		})
	}
}

// TestBackendSnapshotEquivalence parameterizes the fork-matches-parent
// check over every backend: a framework captured at a quiescence point
// and resumed via NewFromSnapshot must replay the parent's remaining
// execution exactly, including backend-private state carried through
// SnapshotState/RestoreState.
func TestBackendSnapshotEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("snapshot equivalence sweep is not short")
	}
	const pages = 16
	instrs := equivTrace(pages)
	for _, name := range core.Backends() {
		t.Run(name, func(t *testing.T) {
			cfg := backendConfig(name)
			build := func() (*core.Framework, *cpu.Core, arch.PID) {
				f, err := core.New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				p := f.VM.NewProcess()
				if err := f.VM.MapAnon(p, 0, pages); err != nil {
					t.Fatal(err)
				}
				fill := make([]byte, pages*arch.PageSize)
				for i := range fill {
					fill[i] = byte(i * 31)
				}
				if err := f.Store(p.PID, 0, fill); err != nil {
					t.Fatal(err)
				}
				return f, cpu.New(f.Engine, f.NewPort(), p.PID, cpu.NewSliceTrace(instrs)), p.PID
			}

			pf, pc, pid := build()
			pc.Run(1500, nil)
			pf.Engine.Run()
			snap := pf.Snapshot()
			cpuSnap := pc.Snapshot()
			fetched := pc.Fetched()
			pc.Run(0, nil)
			pf.Engine.Run()

			ff := core.NewFromSnapshot(snap)
			trace := cpu.NewSliceTrace(instrs)
			for i := uint64(0); i < fetched; i++ {
				trace.Next()
			}
			fc := cpu.New(ff.Engine, ff.Port(0), pid, trace)
			fc.Restore(cpuSnap)
			fc.Run(0, nil)
			ff.Engine.Run()

			if pc.Cycles() != fc.Cycles() {
				t.Errorf("cycles diverge: parent %d, fork %d", pc.Cycles(), fc.Cycles())
			}
			if p, f := pf.Engine.Stats.String(), ff.Engine.Stats.String(); p != f {
				t.Errorf("registries diverge\nparent:\n%s\nfork:\n%s", p, f)
			}
			if pf.MetadataBytes() != ff.MetadataBytes() {
				t.Errorf("metadata footprint diverges: parent %d, fork %d",
					pf.MetadataBytes(), ff.MetadataBytes())
			}
		})
	}
}
