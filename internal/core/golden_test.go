package core

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/arch"
	"repro/internal/vm"
)

// The golden-model test drives the framework with random operation
// sequences — stores, loads, overlay-on-write and conventional forks,
// process exits, and promotions — and checks every load against a flat
// reference model (one byte slice per process). Any divergence between
// the overlay machinery (OBitVectors, OMS segments, migrations, COW
// copies, promotions) and simple copy-on-fork semantics is caught here.

const goldenPages = 6

type goldenProc struct {
	proc *vm.Process
	mem  []byte
}

func TestGoldenModelRandomOps(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(string(rune('A'+seed-1)), func(t *testing.T) {
			runGolden(t, seed, 1500)
		})
	}
}

func runGolden(t *testing.T, seed int64, steps int) {
	cfg := testConfig()
	cfg.MemoryPages = 8192
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))

	root := f.VM.NewProcess()
	if err := f.VM.MapAnon(root, 0, goldenPages); err != nil {
		t.Fatal(err)
	}
	procs := []*goldenProc{{proc: root, mem: make([]byte, goldenPages*arch.PageSize)}}

	randVA := func() arch.VirtAddr {
		return arch.VirtAddr(rng.Intn(goldenPages * arch.PageSize))
	}

	for step := 0; step < steps; step++ {
		g := procs[rng.Intn(len(procs))]
		switch op := rng.Intn(10); {
		case op < 4: // store a small random run
			va := randVA()
			n := 1 + rng.Intn(100)
			if int(va)+n > len(g.mem) {
				n = len(g.mem) - int(va)
			}
			data := make([]byte, n)
			rng.Read(data)
			if err := f.Store(g.proc.PID, va, data); err != nil {
				t.Fatalf("step %d: store: %v", step, err)
			}
			copy(g.mem[va:], data)

		case op < 8: // load and compare
			va := randVA()
			n := 1 + rng.Intn(200)
			if int(va)+n > len(g.mem) {
				n = len(g.mem) - int(va)
			}
			buf := make([]byte, n)
			if err := f.Load(g.proc.PID, va, buf); err != nil {
				t.Fatalf("step %d: load: %v", step, err)
			}
			if !bytes.Equal(buf, g.mem[va:int(va)+n]) {
				t.Fatalf("step %d seed %d: divergence at pid %d va %#x",
					step, seed, g.proc.PID, uint64(va))
			}

		case op == 8: // fork (mixed overlay / conventional) or exit
			if len(procs) >= 6 || (len(procs) > 1 && rng.Intn(4) == 0) {
				// Exit a non-root process; its memory must vanish without
				// corrupting anyone else.
				idx := 1 + rng.Intn(len(procs)-1)
				f.Exit(procs[idx].proc)
				procs = append(procs[:idx], procs[idx+1:]...)
				continue
			}
			child := f.Fork(g.proc, rng.Intn(2) == 0)
			cm := make([]byte, len(g.mem))
			copy(cm, g.mem)
			procs = append(procs, &goldenProc{proc: child, mem: cm})

		default: // promote a random page if it has an overlay
			vpn := arch.VPN(rng.Intn(goldenPages))
			if obits, _ := f.OverlayInfo(g.proc.PID, vpn); !obits.Empty() {
				if err := f.Promote(g.proc, vpn, CopyAndCommit); err != nil {
					t.Fatalf("step %d: promote: %v", step, err)
				}
			}
		}
	}

	// Final full sweep: every byte of every process must match.
	for _, g := range procs {
		buf := make([]byte, len(g.mem))
		if err := f.Load(g.proc.PID, 0, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, g.mem) {
			for i := range buf {
				if buf[i] != g.mem[i] {
					t.Fatalf("seed %d: final sweep divergence pid %d at offset %#x: got %#x want %#x",
						seed, g.proc.PID, i, buf[i], g.mem[i])
				}
			}
		}
	}
}

// TestGoldenTimedAndFunctionalMix interleaves timed port writes with
// functional stores and checks the functional view stays consistent.
func TestGoldenTimedAndFunctionalMix(t *testing.T) {
	cfg := testConfig()
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	port := f.NewPort()
	rng := rand.New(rand.NewSource(99))

	parent := f.VM.NewProcess()
	if err := f.VM.MapAnon(parent, 0, 4); err != nil {
		t.Fatal(err)
	}
	ref := make([]byte, 4*arch.PageSize)
	for i := range ref {
		ref[i] = byte(i * 7)
	}
	if err := f.Store(parent.PID, 0, ref); err != nil {
		t.Fatal(err)
	}
	f.Fork(parent, true)

	// Timed writes change structure (create overlays) but not data; the
	// reference is only updated by functional stores.
	for i := 0; i < 300; i++ {
		va := arch.VirtAddr(rng.Intn(len(ref)))
		if rng.Intn(2) == 0 {
			port.Write(parent.PID, va, nil)
			f.Engine.Run()
		} else {
			b := byte(rng.Intn(256))
			if err := f.Store(parent.PID, va, []byte{b}); err != nil {
				t.Fatal(err)
			}
			ref[va] = b
		}
	}
	got := make([]byte, len(ref))
	if err := f.Load(parent.PID, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, ref) {
		t.Fatal("timed/functional mix diverged from reference")
	}
}
