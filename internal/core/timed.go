package core

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/sim"
)

// This file implements the timed memory-access operations of §4.3 as seen
// by a CPU port: TLB translation, the three write flavours (plain/simple,
// overlaying, conventional COW), and the read path. Structural state
// changes are shared with the functional path via resolveWrite, so the
// timed simulation and functional contents can never diverge.
//
// Per-access state (issue cycle, completion continuation, resolved
// target) lives in the framework's portAccess slab; the translation and
// completion events are pre-bound ArgEvent continuations carrying the
// slab index, so issuing an access allocates nothing.

// Read performs a timed load of the line containing va; done fires when
// the data reaches the core. It panics on a true fault (unmapped page) —
// workloads are expected to map their footprints.
func (p *Port) Read(pid arch.PID, va arch.VirtAddr, done func()) {
	p.ReadCont(pid, va, sim.ContOf(done))
}

// ReadCont is the continuation form of Read. Translation (target tag and
// latency) is the backend's; the access bookkeeping is shared.
func (p *Port) ReadCont(pid arch.PID, va arch.VirtAddr, done sim.Cont) {
	f := p.f
	target, lat := f.backend.ReadTarget(p, pid, va)
	idx, a := f.newAccess()
	a.start, a.done, a.target = f.Engine.Now(), done, target
	f.Engine.ScheduleArg(lat, f.readFireFn, uint64(idx))
}

// ReadOverlay performs a timed load of the overlay line containing va
// through the overlay computation model of §5.2: the access is generated
// by hardware that is already iterating the page's OBitVector, so it
// addresses the Overlay Address Space directly and pays only the OMT
// cache's hit latency instead of a TLB translation. The line must be in
// the page's overlay.
func (p *Port) ReadOverlay(pid arch.PID, va arch.VirtAddr, done func()) {
	p.ReadOverlayCont(pid, va, sim.ContOf(done))
}

// ReadOverlayCont is the continuation form of ReadOverlay.
func (p *Port) ReadOverlayCont(pid arch.PID, va arch.VirtAddr, done sim.Cont) {
	f := p.f
	opn := arch.OverlayPage(pid, va.Page())
	if !f.OMTTable.Get(opn).OBits.Has(va.Line()) {
		panic(fmt.Sprintf("core: ReadOverlay of line outside overlay at pid %d va %#x", pid, uint64(va)))
	}
	// The streaming engine reads a page's OBitVector once, when the walk
	// enters the page; subsequent lines of the same page pay nothing.
	var lat sim.Cycle
	if opn != p.lastOverlayOPN {
		_, lat = f.OMTCache.Lookup(opn)
		p.lastOverlayOPN = opn
	}
	target := opn.LineAddr(va.Line())
	// The overlay computation model knows the OBitVector it is iterating:
	// stream the upcoming overlay lines and prime the next page's OMT
	// entry ahead of the walk.
	p.extendOverlayPrefetch(opn, va.Line())
	f.primeNextOMTEntry(opn)
	idx, a := f.newAccess()
	a.start, a.done, a.target = f.Engine.Now(), done, target
	f.Engine.ScheduleArg(lat, f.readFireFn, uint64(idx))
}

// Write performs a timed store to the line containing va; done fires when
// the store completes at the L1 (after any overlaying-write remap or COW
// resolution on its critical path).
func (p *Port) Write(pid arch.PID, va arch.VirtAddr, done func()) {
	p.WriteCont(pid, va, sim.ContOf(done))
}

// WriteCont is the continuation form of Write. The backend charges the
// translation latency here and resolves the store structurally when the
// pre-bound writeFireFn fires.
func (p *Port) WriteCont(pid arch.PID, va arch.VirtAddr, done sim.Cont) {
	f := p.f
	lat := f.backend.WriteLatency(p, pid, va)
	idx, a := f.newAccess()
	a.start, a.done, a.port, a.pid, a.va = f.Engine.Now(), done, p, pid, va
	f.Engine.ScheduleArg(lat, f.writeFireFn, uint64(idx))
}

// shootdownAll invalidates (pid, vpn) in every port's TLB and returns the
// critical-path cost of the shootdown protocol (paid once).
func (p *Port) shootdownAll(pid arch.PID, vpn arch.VPN) sim.Cycle {
	var cost sim.Cycle
	for _, port := range p.f.ports {
		c := port.TLB.Shootdown(pid, vpn)
		if c > cost {
			cost = c
		}
	}
	return cost
}
