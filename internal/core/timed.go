package core

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/sim"
)

// This file implements the timed memory-access operations of §4.3 as seen
// by a CPU port: TLB translation, the three write flavours (plain/simple,
// overlaying, conventional COW), and the read path. Structural state
// changes are shared with the functional path via resolveWrite, so the
// timed simulation and functional contents can never diverge.
//
// Per-access state (issue cycle, completion continuation, resolved
// target) lives in the framework's portAccess slab; the translation and
// completion events are pre-bound ArgEvent continuations carrying the
// slab index, so issuing an access allocates nothing.

// Read performs a timed load of the line containing va; done fires when
// the data reaches the core. It panics on a true fault (unmapped page) —
// workloads are expected to map their footprints.
func (p *Port) Read(pid arch.PID, va arch.VirtAddr, done func()) {
	p.ReadCont(pid, va, sim.ContOf(done))
}

// ReadCont is the continuation form of Read.
func (p *Port) ReadCont(pid arch.PID, va arch.VirtAddr, done sim.Cont) {
	f := p.f
	entry, lat, ok := p.TLB.Lookup(pid, va.Page())
	if !ok {
		panic(fmt.Sprintf("core: timed read fault at pid %d va %#x", pid, uint64(va)))
	}
	line := va.Line()
	var target arch.PhysAddr
	if entry.HasOverlay && entry.OBits.Has(line) {
		target = arch.OverlayPage(pid, va.Page()).LineAddr(line)
	} else {
		target = arch.PhysAddrOf(entry.PPN, uint64(line)<<arch.LineShift)
	}
	idx, a := f.newAccess()
	a.start, a.done, a.target = f.Engine.Now(), done, target
	f.Engine.ScheduleArg(lat, f.readFireFn, uint64(idx))
}

// ReadOverlay performs a timed load of the overlay line containing va
// through the overlay computation model of §5.2: the access is generated
// by hardware that is already iterating the page's OBitVector, so it
// addresses the Overlay Address Space directly and pays only the OMT
// cache's hit latency instead of a TLB translation. The line must be in
// the page's overlay.
func (p *Port) ReadOverlay(pid arch.PID, va arch.VirtAddr, done func()) {
	p.ReadOverlayCont(pid, va, sim.ContOf(done))
}

// ReadOverlayCont is the continuation form of ReadOverlay.
func (p *Port) ReadOverlayCont(pid arch.PID, va arch.VirtAddr, done sim.Cont) {
	f := p.f
	opn := arch.OverlayPage(pid, va.Page())
	if !f.OMTTable.Get(opn).OBits.Has(va.Line()) {
		panic(fmt.Sprintf("core: ReadOverlay of line outside overlay at pid %d va %#x", pid, uint64(va)))
	}
	// The streaming engine reads a page's OBitVector once, when the walk
	// enters the page; subsequent lines of the same page pay nothing.
	var lat sim.Cycle
	if opn != p.lastOverlayOPN {
		_, lat = f.OMTCache.Lookup(opn)
		p.lastOverlayOPN = opn
	}
	target := opn.LineAddr(va.Line())
	// The overlay computation model knows the OBitVector it is iterating:
	// stream the upcoming overlay lines and prime the next page's OMT
	// entry ahead of the walk.
	p.extendOverlayPrefetch(opn, va.Line())
	f.primeNextOMTEntry(opn)
	idx, a := f.newAccess()
	a.start, a.done, a.target = f.Engine.Now(), done, target
	f.Engine.ScheduleArg(lat, f.readFireFn, uint64(idx))
}

// Write performs a timed store to the line containing va; done fires when
// the store completes at the L1 (after any overlaying-write remap or COW
// resolution on its critical path).
func (p *Port) Write(pid arch.PID, va arch.VirtAddr, done func()) {
	p.WriteCont(pid, va, sim.ContOf(done))
}

// WriteCont is the continuation form of Write.
func (p *Port) WriteCont(pid arch.PID, va arch.VirtAddr, done sim.Cont) {
	f := p.f
	_, lat, ok := p.TLB.Lookup(pid, va.Page())
	if !ok {
		panic(fmt.Sprintf("core: timed write fault at pid %d va %#x", pid, uint64(va)))
	}
	idx, a := f.newAccess()
	a.start, a.done, a.port, a.pid, a.va = f.Engine.Now(), done, p, pid, va
	f.Engine.ScheduleArg(lat, f.writeFireFn, uint64(idx))
}

func (p *Port) writeAfterTranslate(pid arch.PID, va arch.VirtAddr, done sim.Cont) {
	f := p.f
	proc, ok := f.VM.Process(pid)
	if !ok {
		panic(fmt.Sprintf("core: no process %d", pid))
	}
	vpn, line := va.Page(), va.Line()
	res, err := f.resolveWrite(proc, vpn, line)
	if err != nil {
		panic(err)
	}
	switch res.kind {
	case writePlain, writeSimpleOverlay:
		f.Hier.AccessCont(res.loc.cacheAddr, true, done)

	case writeOverlaying:
		// §4.3.3: fetch the source line (read-for-ownership), retag the
		// block into the Overlay Address Space, pay the coherence round,
		// then the store completes. The fetch is the application's own
		// write-allocate miss; the remap adds OverlayRemapLatency. The
		// remaining write flavours are off the hot path, so plain closures
		// are fine here.
		f.Hier.Access(res.srcCacheAddr, true, func() {
			f.Hier.Retag(res.srcCacheAddr, res.loc.cacheAddr)
			f.Engine.ScheduleCont(f.Config.OverlayRemapLatency, done)
		})

	case writeCOWCopy:
		// Conventional copy-on-write (§2.2): trap into the OS, copy all 64
		// lines of the page (reads issued with full memory-level
		// parallelism; destination lines are produced into the cache),
		// shoot down the TLBs, then retry the store on the new page.
		srcPage := res.srcCacheAddr.PageAligned()
		dstPage := res.loc.cacheAddr.PageAligned()
		f.Engine.Schedule(f.Config.COWTrapLatency, func() {
			remaining := arch.LinesPerPage
			for i := 0; i < arch.LinesPerPage; i++ {
				i := i
				src := srcPage + arch.PhysAddr(i<<arch.LineShift)
				f.Hier.Access(src, false, func() {
					f.Hier.Install(dstPage+arch.PhysAddr(i<<arch.LineShift), true)
					remaining--
					if remaining == 0 {
						cost := p.shootdownAll(pid, vpn)
						f.Engine.Schedule(cost, func() {
							f.Hier.AccessCont(res.loc.cacheAddr, true, done)
						})
					}
				})
			}
		})

	case writeCOWReuse:
		// Last sharer: the OS only flips permissions, but still traps and
		// shoots down stale TLB entries.
		f.Engine.Schedule(f.Config.COWTrapLatency, func() {
			cost := p.shootdownAll(pid, vpn)
			f.Engine.Schedule(cost, func() {
				f.Hier.AccessCont(res.loc.cacheAddr, true, done)
			})
		})

	default:
		panic("core: unknown write kind")
	}
}

// shootdownAll invalidates (pid, vpn) in every port's TLB and returns the
// critical-path cost of the shootdown protocol (paid once).
func (p *Port) shootdownAll(pid arch.PID, vpn arch.VPN) sim.Cycle {
	var cost sim.Cycle
	for _, port := range p.f.ports {
		c := port.TLB.Shootdown(pid, vpn)
		if c > cost {
			cost = c
		}
	}
	return cost
}
