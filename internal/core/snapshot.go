package core

import (
	"repro/internal/arch"
	"repro/internal/cache"
	"repro/internal/dram"
	"repro/internal/mem"
	"repro/internal/oms"
	"repro/internal/omt"
	"repro/internal/prefetch"
	"repro/internal/sim"
	"repro/internal/tlb"
	"repro/internal/vm"
)

// Snapshot support: a framework at a quiescence point (engine drained,
// no in-flight port accesses or overlay requests) is pure data. The
// capture pairs the copy-on-write memory snapshot with by-value copies
// of every component's structural state plus the full stats registry;
// NewFromSnapshot rebuilds the framework through the same assemble path
// as New, so every pre-bound continuation and counter handle is wired
// against the fork's own engine before the data is restored.

// portSnapshot captures one CPU port: its TLB plus the overlay-walk
// cursor scalars.
type portSnapshot struct {
	tlb            *tlb.Snapshot
	lastOverlayOPN arch.OPN
	pfCur          arch.OPN
	pfLine         int
	pfAhead        int
}

// Snapshot is an immutable capture of a quiescent framework. Any number
// of forks can be created from one snapshot, concurrently; the snapshot
// itself is never mutated (memory pages are shared copy-on-write with
// both the parent and every fork).
type Snapshot struct {
	cfg   Config
	clock sim.Clock
	stats *sim.StatsSnapshot

	mem      *mem.Snapshot
	vm       *vm.Snapshot
	oms      *oms.Snapshot
	omtTable *omt.Table
	omtCache *omt.CacheSnapshot
	dram     *dram.Snapshot
	hier     *cache.HierarchySnapshot
	prefetch *prefetch.Snapshot
	ports    []portSnapshot
	backend  any // backend-private state (TranslationBackend.SnapshotState)
}

// Snapshot captures the framework. It panics if any access is still in
// flight — call it only after the engine has drained.
func (f *Framework) Snapshot() *Snapshot {
	if len(f.accFree) != len(f.acc) {
		panic("core: snapshot with in-flight port accesses")
	}
	if len(f.ovlFree) != len(f.ovl) {
		panic("core: snapshot with in-flight overlay requests")
	}
	s := &Snapshot{
		cfg:      f.Config,
		clock:    f.Engine.SaveClock(),
		stats:    f.Engine.Stats.Capture(),
		mem:      f.Mem.Snapshot(),
		vm:       f.VM.Snapshot(),
		oms:      f.OMS.Snapshot(),
		omtTable: f.OMTTable.Clone(),
		omtCache: f.OMTCache.Snapshot(),
		dram:     f.DRAM.Snapshot(),
		hier:     f.Hier.Snapshot(),
		prefetch: f.Prefetch.Snapshot(),
		backend:  f.backend.SnapshotState(),
	}
	for _, p := range f.ports {
		s.ports = append(s.ports, portSnapshot{
			tlb:            p.TLB.Snapshot(),
			lastOverlayOPN: p.lastOverlayOPN,
			pfCur:          p.pfCur,
			pfLine:         p.pfLine,
			pfAhead:        p.pfAhead,
		})
	}
	return s
}

// Port returns the i-th CPU port in creation order. Forks resumed via
// NewFromSnapshot use it to reach the recreated ports.
func (f *Framework) Port(i int) *Port { return f.ports[i] }

// NewFromSnapshot builds an independent framework resuming from the
// capture: same config, same simulated clock, same warm state, with
// memory pages shared copy-on-write until first write. The fork has the
// same number of ports as the snapshotted framework, in creation order.
func NewFromSnapshot(s *Snapshot) *Framework {
	engine := sim.NewEngine()
	memory := mem.NewFromSnapshot(s.mem)
	// Zero initial frames: the restored allocator already owns the OMS's
	// frames; Restore below brings the bookkeeping across.
	store, err := oms.New(memory, &engine.Stats, 0)
	if err != nil {
		panic("core: oms rebuild failed: " + err.Error())
	}
	table := s.omtTable.Clone()
	f := assemble(s.cfg, engine, memory, store, table)
	f.VM.Restore(s.vm)
	f.OMS.Restore(s.oms)
	f.OMTCache.Restore(s.omtCache, table)
	f.DRAM.Restore(s.dram)
	f.Hier.Restore(s.hier)
	f.Prefetch.Restore(s.prefetch)
	f.backend.RestoreState(s.backend)
	for _, ps := range s.ports {
		p := f.NewPort()
		p.TLB.Restore(ps.tlb)
		p.lastOverlayOPN = ps.lastOverlayOPN
		p.pfCur, p.pfLine, p.pfAhead = ps.pfCur, ps.pfLine, ps.pfAhead
	}
	// Clock and stats last: component construction above must not leave
	// residue in either (counters registered during assemble are
	// overwritten wholesale by Restore).
	engine.LoadClock(s.clock)
	engine.Stats.Restore(s.stats)
	return f
}
