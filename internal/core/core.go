// Package core implements the paper's primary contribution: the page
// overlay framework (§3–§4). It ties the unchanged virtual-memory
// substrate (internal/vm) to the overlay machinery — the direct
// virtual-to-overlay mapping, OBitVector-extended TLBs, the Overlay
// Mapping Table with its controller cache, and the compact Overlay Memory
// Store — and implements the three memory-access operations of §4.3
// (read, simple write, overlaying write), the promotion actions of
// §4.3.4, and the coherence-based single-line TLB update of §4.3.3.
//
// The framework is both functional and timed. Functional state (page and
// overlay bytes, OBitVectors, segment metadata) is updated eagerly so
// every technique built on top can be checked for value-correctness;
// timing flows through the TLB → L1 → L2 → L3 → DRAM chain with the
// Overlay Memory Store touched only on hierarchy misses and write-backs.
// One deliberate deviation from the paper is documented in DESIGN.md:
// OMS slots are allocated eagerly in zero simulated time rather than on
// the first dirty write-back; the paper's lazy allocation is a timing
// optimisation that our model preserves by charging no cycles for
// allocation.
package core

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/cache"
	"repro/internal/dram"
	"repro/internal/mem"
	"repro/internal/oms"
	"repro/internal/omt"
	"repro/internal/prefetch"
	"repro/internal/sim"
	"repro/internal/tlb"
	"repro/internal/vm"
)

// Config collects every knob of the simulated system (Table 2 defaults).
type Config struct {
	MemoryPages      int // physical frames backing main memory
	OMSInitialFrames int // frames granted to the Overlay Memory Store at boot

	// OMSCapacityFrames bounds the frames the Overlay Memory Store may
	// own: at the budget, allocations evict cooling segments to the spill
	// tier instead of growing the store. 0 = unlimited (the paper's
	// configuration; the pre-buffer-manager behaviour, bit-identical).
	OMSCapacityFrames int
	// OMSSpill enables the spill tier when a capacity is set: evicted
	// segments stay live behind cold OMT references and are refilled on
	// demand, paying a modeled slow-store latency.
	OMSSpill bool

	TLB      tlb.Config
	Cache    cache.HierarchyConfig
	DRAM     dram.Config
	OMTCache omt.CacheConfig
	Prefetch prefetch.Config

	// OverlayRemapLatency is the critical-path cost of an overlaying
	// write's remap: the cache-tag update plus the overlaying-read-
	// exclusive coherence round (§4.3.3). It replaces the full TLB
	// shootdown a conventional remap would need.
	OverlayRemapLatency sim.Cycle
	// COWTrapLatency is the OS entry/exit overhead of a conventional
	// copy-on-write page fault.
	COWTrapLatency sim.Cycle

	// Backend selects the translation backend ("" = "overlay"). See
	// TranslationBackend and Backends() for the registered designs.
	Backend string

	// VBI models the Virtual Block Interface's memory translation layer
	// (MTL) at the controller: a small mapping cache in front of the flat
	// per-block tables, plus the controller-side remap that replaces the
	// OS COW trap (caches are virtually tagged, so no core is disturbed).
	VBIMTLEntries     int       // MTL mapping-cache capacity (translations)
	VBIMTLHitLatency  sim.Cycle // MTL cache hit
	VBIMTLMissLatency sim.Cycle // flat block-table walk on MTL miss
	VBIRemapLatency   sim.Cycle // critical-path cost of a controller-side COW remap

	// Utopia's RestSeg: a hash-indexed restrictive set whose members
	// translate with a cheap computed walk; everything else falls back to
	// the conventional flexible walk (TLB.WalkLatency).
	UtopiaRestSets        int       // RestSeg sets
	UtopiaRestWays        int       // RestSeg associativity
	UtopiaRestWalkLatency sim.Cycle // walk cost for RestSeg-resident pages
}

// DefaultConfig returns the Table 2 system with 64 Ki frames (256 MB).
func DefaultConfig() Config {
	return Config{
		MemoryPages:         64 << 10,
		OMSInitialFrames:    8,
		TLB:                 tlb.DefaultConfig(),
		Cache:               cache.DefaultHierarchyConfig(),
		DRAM:                dram.DefaultConfig(),
		OMTCache:            omt.DefaultCacheConfig(),
		Prefetch:            prefetch.DefaultConfig(),
		OverlayRemapLatency: 50,
		COWTrapLatency:      1500,

		VBIMTLEntries:     1024,
		VBIMTLHitLatency:  10,
		VBIMTLMissLatency: 500,
		VBIRemapLatency:   200,

		UtopiaRestSets:        1024,
		UtopiaRestWays:        4,
		UtopiaRestWalkLatency: 150,
	}
}

// Framework is the assembled overlay-enabled memory system.
type Framework struct {
	Engine *sim.Engine
	Config Config

	Mem      *mem.Memory
	VM       *vm.Manager
	OMS      *oms.Store
	OMTTable *omt.Table
	OMTCache *omt.Cache
	DRAM     *dram.Controller
	Hier     *cache.Hierarchy
	Prefetch *prefetch.Prefetcher

	// backend is the pluggable translation mechanism every translation-
	// touching path below routes through (see TranslationBackend).
	backend TranslationBackend

	// accessLat collects the end-to-end latency of every timed port
	// access (translation through cache/DRAM completion).
	accessLat *sim.Histogram

	ports []*Port

	// In-flight timed port accesses live in a slab indexed by the packed
	// argument of the pre-bound continuations below, so the per-access
	// path of Read/Write schedules zero closures.
	acc     []portAccess
	accFree []uint32

	readFireFn  sim.ArgEvent // translation done → issue hierarchy access
	writeFireFn sim.ArgEvent // translation done → resolve + issue store
	accDoneFn   sim.ArgEvent // hierarchy access done → observe + complete

	// In-flight overlay miss resolutions (backend side), same scheme.
	ovl        []ovlReq
	ovlFree    []uint32
	ovlFetchFn sim.ArgEvent
	ovlWBFn    sim.ArgEvent

	ovlZeroFills *uint64
	ovlStaleWBs  *uint64
	readExcl     *uint64

	// Write-kind counters bumped by resolveWrite on every store.
	simpleOvlWrites *uint64
	overlayingWr    *uint64
	plainWrites     *uint64
	cowCopies       *uint64
	cowReuses       *uint64
}

// portAccess is one in-flight timed access between translation and
// hierarchy completion.
type portAccess struct {
	start  sim.Cycle
	done   sim.Cont
	target arch.PhysAddr
	port   *Port // write path only
	pid    arch.PID
	va     arch.VirtAddr
}

// ovlReq is one overlay fetch/write-back waiting out its OMT-cache
// latency before being located in the Overlay Memory Store.
type ovlReq struct {
	entry *omt.Entry
	line  int
	done  sim.Cont
}

// New assembles a framework. It panics only on programmer error; resource
// exhaustion is reported as an error.
func New(cfg Config) (*Framework, error) {
	if err := ValidBackend(cfg.Backend); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	engine := sim.NewEngine()
	memory := mem.New(cfg.MemoryPages)
	store, err := oms.New(memory, &engine.Stats, cfg.OMSInitialFrames)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return assemble(cfg, engine, memory, store, &omt.Table{}), nil
}

// assemble wires a framework around pre-built bottom components. New
// feeds it fresh ones; NewFromSnapshot feeds it components rebuilt from
// a capture (the restore happens after wiring, so every stats handle
// bound here stays live).
func assemble(cfg Config, engine *sim.Engine, memory *mem.Memory, store *oms.Store, table *omt.Table) *Framework {
	manager := vm.NewManager(memory)
	f := &Framework{
		Engine:   engine,
		Config:   cfg,
		Mem:      memory,
		VM:       manager,
		OMS:      store,
		OMTTable: table,
	}
	// Unswizzle hook: when the store spills a segment, rewrite its owner's
	// OMT entry to the cold reference. Ref returns the authoritative entry
	// pointer (the OMT cache hands out the same pointers), so cached
	// copies observe the rewrite immediately.
	store.SetEvictHook(func(owner uint64, cold arch.PhysAddr) {
		f.OMTTable.Ref(arch.OPN(owner)).SegBase = cold
	})
	if cfg.OMSCapacityFrames > 0 {
		store.SetCapacity(cfg.OMSCapacityFrames, cfg.OMSSpill)
	}
	f.OMTCache = omt.NewCache(cfg.OMTCache, f.OMTTable, &engine.Stats)
	f.DRAM = dram.New(engine, cfg.DRAM)
	f.Hier = cache.NewHierarchy(engine, cfg.Cache, (*memCtrl)(f))
	f.Prefetch = prefetch.New(cfg.Prefetch, f.Hier, &engine.Stats)
	f.Hier.SetPrefetcher((*missDispatcher)(f))
	f.accessLat = engine.Stats.Histogram("core.access_cycles")
	f.ovlZeroFills = engine.Stats.Counter("core.overlay_zero_fills")
	f.ovlStaleWBs = engine.Stats.Counter("core.overlay_stale_writebacks")
	f.readExcl = engine.Stats.Counter("core.overlaying_read_exclusive")
	f.simpleOvlWrites = engine.Stats.Counter("core.simple_overlay_writes")
	f.overlayingWr = engine.Stats.Counter("core.overlaying_writes")
	f.plainWrites = engine.Stats.Counter("core.plain_writes")
	f.cowCopies = engine.Stats.Counter("core.cow_page_copies")
	f.cowReuses = engine.Stats.Counter("core.cow_reuses")
	f.readFireFn = func(idx uint64) {
		target := f.acc[idx].target
		f.Hier.AccessCont(target, false, sim.Bind(f.accDoneFn, idx))
	}
	f.writeFireFn = func(idx uint64) {
		a := &f.acc[idx]
		f.backend.Write(a.port, a.pid, a.va, sim.Bind(f.accDoneFn, idx))
	}
	f.accDoneFn = func(idx uint64) {
		a := f.acc[idx] // copy: done may start accesses that reuse the slot
		f.freeAccess(uint32(idx))
		f.accessLat.Observe(uint64(f.Engine.Now() - a.start))
		a.done.Invoke()
	}
	f.ovlFetchFn = func(idx uint64) {
		r := f.ovl[idx]
		f.freeOvl(uint32(idx))
		target, penalty, ok := f.locateOverlayLine(r.entry, r.line)
		if !ok {
			// No backing slot: the line's data never left the caches (or
			// a prefetcher ran past the overlay). Zero-fill, no DRAM trip.
			*f.ovlZeroFills++
			r.done.Invoke()
			return
		}
		if penalty > 0 {
			// The segment was refilled from the spill tier: the DRAM access
			// waits out the slow-store latency. Off the hot path (capacity
			// mode only), so a closure is fine.
			done := r.done
			f.Engine.Schedule(penalty, func() { f.DRAM.ReadCont(target, done) })
			return
		}
		f.DRAM.ReadCont(target, r.done)
	}
	f.ovlWBFn = func(idx uint64) {
		r := f.ovl[idx]
		f.freeOvl(uint32(idx))
		target, penalty, ok := f.locateOverlayLine(r.entry, r.line)
		if !ok {
			// Promotion discarded the overlay while the dirty line was in
			// flight; drop the write-back.
			*f.ovlStaleWBs++
			return
		}
		if penalty > 0 {
			f.Engine.Schedule(penalty, func() { f.DRAM.Write(target, nil) })
			return
		}
		f.DRAM.Write(target, nil)
	}
	mk, ok := backendRegistry[cfg.BackendName()]
	if !ok {
		panic("core: unknown backend " + cfg.BackendName())
	}
	f.backend = mk(f)
	return f
}

// newAccess claims a slab slot for an in-flight port access. The returned
// pointer is valid only until the next newAccess call (the slab may grow).
func (f *Framework) newAccess() (uint32, *portAccess) {
	if n := len(f.accFree); n > 0 {
		idx := f.accFree[n-1]
		f.accFree = f.accFree[:n-1]
		return idx, &f.acc[idx]
	}
	f.acc = append(f.acc, portAccess{})
	return uint32(len(f.acc) - 1), &f.acc[len(f.acc)-1]
}

func (f *Framework) freeAccess(idx uint32) {
	f.acc[idx] = portAccess{}
	f.accFree = append(f.accFree, idx)
}

func (f *Framework) newOvl() (uint32, *ovlReq) {
	if n := len(f.ovlFree); n > 0 {
		idx := f.ovlFree[n-1]
		f.ovlFree = f.ovlFree[:n-1]
		return idx, &f.ovl[idx]
	}
	f.ovl = append(f.ovl, ovlReq{})
	return uint32(len(f.ovl) - 1), &f.ovl[len(f.ovl)-1]
}

func (f *Framework) freeOvl(idx uint32) {
	f.ovl[idx] = ovlReq{}
	f.ovlFree = append(f.ovlFree, idx)
}

// SetTrace enables structured event tracing for the framework: the
// engine's trace pointer is set and every component that emits events
// without an engine reference (the Overlay Memory Store) is wired to the
// same log. Pass nil to disable tracing again.
func (f *Framework) SetTrace(t *sim.TraceLog) {
	f.Engine.Trace = t
	if t == nil {
		f.OMS.AttachTrace(nil, nil)
		return
	}
	f.OMS.AttachTrace(t, f.Engine.Now)
}

// missDispatcher routes the hierarchy's L2 demand-miss notifications to
// the translation backend (prefetcher feeding plus any controller-side
// metadata priming the backend does).
type missDispatcher Framework

func (d *missDispatcher) OnMiss(addr arch.PhysAddr) {
	(*Framework)(d).backend.OnMiss(addr)
}

// omtPrimeScan bounds how far the controller looks ahead for the next
// overlay-bearing page when priming its OMT cache (the hierarchical OMT
// makes skipping dead entries cheap).
const omtPrimeScan = 128

func (f *Framework) primeNextOMTEntry(opn arch.OPN) {
	pid, vpn := arch.SplitOverlayPage(opn)
	for i := arch.VPN(1); i <= omtPrimeScan; i++ {
		next := arch.OverlayPage(pid, vpn+i)
		if f.OMTTable.Get(next).Empty() {
			continue
		}
		if !f.OMTCache.Contains(next) {
			f.OMTCache.Lookup(next)
		}
		break
	}
}

// MustNew is New for tests and examples that treat failure as fatal.
func MustNew(cfg Config) *Framework {
	f, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return f
}

// Port is one CPU's view of the memory system: its own two-level TLB in
// front of the shared hierarchy.
type Port struct {
	f   *Framework
	TLB *tlb.TLB

	// lastOverlayOPN tracks the overlay page the port's streaming engine
	// is currently iterating; the OMT-cache charge of ReadOverlay applies
	// only when crossing into a new page (the OBitVector is read once per
	// page, not per line).
	lastOverlayOPN arch.OPN

	// The overlay computation model's prefetch cursor: the walker resumes
	// from where it last stopped instead of rescanning the OBitVector on
	// every access, and keeps at most Prefetch.Distance fresh lines in
	// flight ahead of demand.
	pfCur   arch.OPN
	pfLine  int
	pfAhead int
}

// extendOverlayPrefetch advances the overlay walk's prefetch cursor from
// the demand point (opn, line), issuing prefetches for upcoming overlay
// lines (crossing page boundaries via the OMT) until Prefetch.Distance
// fresh lines are in flight.
func (p *Port) extendOverlayPrefetch(opn arch.OPN, line int) {
	f := p.f
	if f.Config.Prefetch.Distance <= 0 {
		return
	}
	// The walker knows every line it will visit (the OBitVector is the
	// itinerary), so it runs further ahead than the blind stream
	// prefetcher's Table 2 distance.
	distance := f.Config.Prefetch.Distance * 3
	if p.pfAhead > 0 {
		p.pfAhead-- // this demand consumed one prefetched line
	}
	// If demand caught up with (or jumped past) the cursor, restart there.
	if opn > p.pfCur || (opn == p.pfCur && line >= p.pfLine) {
		p.pfCur, p.pfLine, p.pfAhead = opn, line, 0
	}
	want := distance - p.pfAhead
	if want <= 0 {
		return
	}
	issued := 0
	emptyRun := 0
	cur, l := p.pfCur, p.pfLine
	for hop := 0; hop < 64 && issued < want && emptyRun < 16; hop++ {
		bits := f.OMTTable.Get(cur).OBits
		if bits.Empty() {
			emptyRun++
		} else {
			emptyRun = 0
			for l++; l < arch.LinesPerPage; l++ {
				if bits.Has(l) && f.Hier.Prefetch(cur.LineAddr(l)) {
					issued++
					if issued >= want {
						p.pfCur, p.pfLine, p.pfAhead = cur, l, p.pfAhead+issued
						return
					}
				}
			}
		}
		pid, vpn := arch.SplitOverlayPage(cur)
		cur = arch.OverlayPage(pid, vpn+1)
		l = -1
	}
	p.pfCur, p.pfLine, p.pfAhead = cur, l, p.pfAhead+issued
}

// NewPort creates a CPU port. All ports observe overlaying-read-exclusive
// coherence messages (single-line OBitVector updates).
func (f *Framework) NewPort() *Port {
	p := &Port{f: f, TLB: tlb.New(f.Config.TLB, (*walker)(f), &f.Engine.Stats)}
	f.ports = append(f.ports, p)
	return p
}

// walker adapts the framework to the TLB's page-walk interface; the
// concrete walk (conventional tables, OMT-augmented, RestSeg-hashed) is
// the translation backend's.
type walker Framework

func (w *walker) Walk(pid arch.PID, vpn arch.VPN) (tlb.Entry, sim.Cycle, bool) {
	return (*Framework)(w).backend.Walk(pid, vpn)
}

// memCtrl adapts the framework to the cache hierarchy's miss interface:
// the memory controller of Fig. 6. How an LLC miss or write-back is
// located in main memory is the translation backend's decision.
type memCtrl Framework

func (m *memCtrl) Fetch(addr arch.PhysAddr, done sim.Cont) {
	(*Framework)(m).backend.Fetch(addr, done)
}

func (m *memCtrl) WriteBack(addr arch.PhysAddr) {
	(*Framework)(m).backend.WriteBack(addr)
}

// locateOverlayLine resolves (entry, line) to a main-memory address,
// guarding against segments freed while a request was in flight. A cold
// (spilled) segment reference is resolved first — the segment is
// refilled, the entry re-swizzled to the direct handle, and the returned
// penalty carries the modeled slow-store latency of the refill.
func (f *Framework) locateOverlayLine(entry *omt.Entry, line int) (arch.PhysAddr, sim.Cycle, bool) {
	if entry.SegBase == 0 {
		return 0, 0, false
	}
	var penalty sim.Cycle
	if entry.SegBase.IsCold() {
		base, p, err := f.OMS.Resolve(entry.SegBase)
		if err != nil {
			return 0, 0, false
		}
		entry.SegBase = base
		penalty = p
	}
	if _, live := f.OMS.SegmentClass(entry.SegBase); !live {
		return 0, 0, false
	}
	addr, ok := f.OMS.LocateLine(entry.SegBase, line)
	return addr, penalty, ok
}

// broadcastLineUpdate delivers the overlaying-read-exclusive message to
// every TLB (and, via the shared table pointer, the OMT): the single-line
// remap that replaces a TLB shootdown.
func (f *Framework) broadcastLineUpdate(pid arch.PID, vpn arch.VPN, line int, inOverlay bool) {
	for _, p := range f.ports {
		p.TLB.UpdateLine(pid, vpn, line, inOverlay)
	}
	*f.readExcl++
	if tr := f.Engine.Trace; tr != nil {
		in := uint64(0)
		if inOverlay {
			in = 1
		}
		tr.Emit(f.Engine.Now(), "overlay", "read-exclusive",
			sim.TraceArg{Key: "pid", Val: uint64(pid)},
			sim.TraceArg{Key: "vpn", Val: uint64(vpn)},
			sim.TraceArg{Key: "line", Val: uint64(line)},
			sim.TraceArg{Key: "in_overlay", Val: in})
	}
}
