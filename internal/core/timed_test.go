package core

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/sim"
	"repro/internal/vm"
)

// run executes fn and returns the cycles it took to complete.
func run(f *Framework, fn func(done func())) sim.Cycle {
	start := f.Engine.Now()
	var end sim.Cycle
	completed := false
	fn(func() { end = f.Engine.Now(); completed = true })
	f.Engine.Run()
	if !completed {
		panic("timed op never completed")
	}
	return end - start
}

func setupForkPair(t *testing.T, overlayMode bool) (*Framework, *Port, *vm.Process) {
	t.Helper()
	f := newFW(t)
	port := f.NewPort()
	parent := f.VM.NewProcess()
	mustMap(t, f, parent, 0, 8)
	f.Fork(parent, overlayMode)
	return f, port, parent
}

func TestTimedReadCompletes(t *testing.T) {
	f := newFW(t)
	port := f.NewPort()
	p := f.VM.NewProcess()
	mustMap(t, f, p, 0, 1)
	lat := run(f, func(done func()) { port.Read(p.PID, 0, done) })
	if lat == 0 {
		t.Fatal("read took zero cycles")
	}
	// Second read is much faster (TLB + L1 hits).
	lat2 := run(f, func(done func()) { port.Read(p.PID, 0, done) })
	if lat2 >= lat {
		t.Fatalf("second read (%d) not faster than first (%d)", lat2, lat)
	}
	if lat2 != f.Config.TLB.L1Latency+f.Config.Cache.L1.HitLatency {
		t.Fatalf("hot read latency = %d", lat2)
	}
}

func TestTimedOverlayingWriteCheaperThanCOW(t *testing.T) {
	fo, po, parento := setupForkPair(t, true)
	oLat := run(fo, func(done func()) { po.Write(parento.PID, 0, done) })

	fc, pc, parentc := setupForkPair(t, false)
	cLat := run(fc, func(done func()) { pc.Write(parentc.PID, 0, done) })

	if oLat >= cLat {
		t.Fatalf("overlaying write (%d) not cheaper than COW fault (%d)", oLat, cLat)
	}
	// The COW fault must at least pay trap + shootdown.
	min := fc.Config.COWTrapLatency + fc.Config.TLB.ShootdownLatency
	if cLat < min {
		t.Fatalf("COW fault latency %d below floor %d", cLat, min)
	}
}

func TestCOWCopyUsesMemoryLevelParallelism(t *testing.T) {
	f, port, parent := setupForkPair(t, false)
	lat := run(f, func(done func()) { port.Write(parent.PID, 0, done) })
	// 64 serialized DRAM reads would cost far more than 64 overlapped
	// ones. A fully serialized copy is ≥ 64 × (TRCD+TCL+TBurst) = 64×90.
	serialized := sim.Cycle(64 * 90)
	if lat-f.Config.COWTrapLatency-f.Config.TLB.ShootdownLatency >= serialized {
		t.Fatalf("page copy latency %d suggests no MLP", lat)
	}
	if f.Engine.Stats.Get("core.cow_page_copies") != 1 {
		t.Fatal("no page copy recorded")
	}
}

func TestCOWCopyWarmsDestinationCache(t *testing.T) {
	f, port, parent := setupForkPair(t, false)
	run(f, func(done func()) { port.Write(parent.PID, 0, done) })
	// The first post-fault access repays the TLB entry the shootdown
	// removed, but the cache line itself is an L1 hit: the copy installed
	// every destination line.
	tcfg := f.Config.TLB
	lat := run(f, func(done func()) { port.Write(parent.PID, 33*arch.LineSize, done) })
	want := tcfg.L1Latency + tcfg.L2Latency + tcfg.WalkLatency + f.Config.Cache.L1.HitLatency
	if lat != want {
		t.Fatalf("post-copy write latency = %d, want TLB refill + L1 hit = %d", lat, want)
	}
	// With the TLB warm, further writes to the copied page are pure hits.
	lat = run(f, func(done func()) { port.Write(parent.PID, 34*arch.LineSize, done) })
	if want := tcfg.L1Latency + f.Config.Cache.L1.HitLatency; lat != want {
		t.Fatalf("warm post-copy write latency = %d, want %d", lat, want)
	}
}

func TestOverlayWriteThenReadHitsOverlayLine(t *testing.T) {
	f, port, parent := setupForkPair(t, true)
	run(f, func(done func()) { port.Write(parent.PID, 0, done) })
	// The overlay line is in L1 under its overlay address: a read of the
	// same line is an L1 hit.
	lat := run(f, func(done func()) { port.Read(parent.PID, 0, done) })
	want := f.Config.TLB.L1Latency + f.Config.Cache.L1.HitLatency
	if lat != want {
		t.Fatalf("overlay read latency = %d, want %d", lat, want)
	}
}

func TestOverlayMissGoesThroughOMT(t *testing.T) {
	f, port, parent := setupForkPair(t, true)
	run(f, func(done func()) { port.Write(parent.PID, 0, done) })
	// Force the overlay line out of the hierarchy, then read it back:
	// the fetch must consult the OMT cache and the OMS via DRAM.
	opn := arch.OverlayPage(parent.PID, 0)
	f.Hier.Invalidate(opn.LineAddr(0))
	missesBefore := f.Engine.Stats.Get("omt.cache_misses") + f.Engine.Stats.Get("omt.cache_hits")
	dramBefore := f.Engine.Stats.Get("dram.reads")
	run(f, func(done func()) { port.Read(parent.PID, 0, done) })
	if f.Engine.Stats.Get("omt.cache_misses")+f.Engine.Stats.Get("omt.cache_hits") == missesBefore {
		t.Fatal("overlay fetch bypassed the OMT cache")
	}
	if f.Engine.Stats.Get("dram.reads") == dramBefore {
		t.Fatal("overlay fetch never reached DRAM")
	}
}

func TestOverlayingWriteUpdatesAllTLBs(t *testing.T) {
	f := newFW(t)
	port0 := f.NewPort()
	port1 := f.NewPort()
	parent := f.VM.NewProcess()
	mustMap(t, f, parent, 0, 1)
	f.Fork(parent, true)

	// Warm both TLBs with the page.
	run(f, func(done func()) { port0.Read(parent.PID, 0, done) })
	run(f, func(done func()) { port1.Read(parent.PID, 0, done) })

	shootBefore := f.Engine.Stats.Get("tlb.shootdowns")
	run(f, func(done func()) { port0.Write(parent.PID, 0, done) })
	if f.Engine.Stats.Get("tlb.shootdowns") != shootBefore {
		t.Fatal("overlaying write must not shoot down TLBs")
	}
	e, ok := port1.TLB.Peek(parent.PID, 0)
	if !ok || !e.OBits.Has(0) {
		t.Fatal("other core's TLB missed the coherence update")
	}
	if f.Engine.Stats.Get("core.overlaying_read_exclusive") == 0 {
		t.Fatal("no coherence message recorded")
	}
}

func TestConventionalCOWShootsDownTLBs(t *testing.T) {
	f, port, parent := setupForkPair(t, false)
	run(f, func(done func()) { port.Write(parent.PID, 0, done) })
	if f.Engine.Stats.Get("tlb.shootdowns") == 0 {
		t.Fatal("COW remap must shoot down the TLB")
	}
}

func TestDirtyOverlayLineWritesBackToOMS(t *testing.T) {
	f, port, parent := setupForkPair(t, true)
	run(f, func(done func()) { port.Write(parent.PID, 0, done) })
	opn := arch.OverlayPage(parent.PID, 0)
	dramWrites := f.Engine.Stats.Get("dram.writes")
	// Evict the dirty overlay line from every level: it must be written
	// back through the OMT to its OMS slot.
	present, dirty := f.Hier.Invalidate(opn.LineAddr(0))
	if !present || !dirty {
		t.Fatalf("expected dirty overlay line in cache (present=%v dirty=%v)", present, dirty)
	}
	// Invalidate drops it without writeback; instead use the backend path:
	(*memCtrl)(f).WriteBack(opn.LineAddr(0))
	f.Engine.Run()
	if f.Engine.Stats.Get("dram.writes") == dramWrites {
		t.Fatal("overlay write-back never reached DRAM")
	}
}

func TestTimedSimpleOverlayWriteIsCheap(t *testing.T) {
	f, port, parent := setupForkPair(t, true)
	run(f, func(done func()) { port.Write(parent.PID, 0, done) })
	lat := run(f, func(done func()) { port.Write(parent.PID, 8, done) })
	want := f.Config.TLB.L1Latency + f.Config.Cache.L1.HitLatency
	if lat != want {
		t.Fatalf("simple overlay write = %d cycles, want %d", lat, want)
	}
}

func TestTimedWritePanicsOnUnmapped(t *testing.T) {
	f := newFW(t)
	port := f.NewPort()
	p := f.VM.NewProcess()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	port.Write(p.PID, 0, func() {})
}

func TestTimedAndFunctionalPathsAgree(t *testing.T) {
	// A timed overlaying write followed by a functional load must see the
	// structural overlay created by the timed path.
	f, port, parent := setupForkPair(t, true)
	run(f, func(done func()) { port.Write(parent.PID, 3*arch.LineSize, done) })
	obits, _ := f.OverlayInfo(parent.PID, 0)
	if !obits.Has(3) {
		t.Fatal("timed write did not create the overlay line")
	}
	// Functional store to the same line is a simple overlay write.
	before := f.Engine.Stats.Get("core.overlaying_writes")
	f.Store(parent.PID, 3*arch.LineSize, []byte{1})
	if f.Engine.Stats.Get("core.overlaying_writes") != before {
		t.Fatal("functional store re-created the overlay line")
	}
}
