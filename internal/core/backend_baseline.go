package core

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/sim"
	"repro/internal/tlb"
	"repro/internal/vm"
)

// baselineBackend is the conventional virtual-memory control (§2.2 of
// the paper): 4-level page walks, physically tagged caches, and trap-
// and-copy copy-on-write with full TLB shootdowns. It is exactly the
// overlay backend with the overlay machinery removed — pages marked for
// overlays behave as ordinary COW pages — so compare runs isolate what
// the overlay (or any rival) mechanism buys.
type baselineBackend struct {
	f *Framework
}

func init() {
	RegisterBackend("baseline", func(f *Framework) TranslationBackend {
		return &baselineBackend{f: f}
	})
}

func (b *baselineBackend) Name() string { return "baseline" }

func (b *baselineBackend) Walk(pid arch.PID, vpn arch.VPN) (tlb.Entry, sim.Cycle, bool) {
	e, ok := b.f.conventionalWalk(pid, vpn)
	return e, b.f.Config.TLB.WalkLatency, ok
}

func (b *baselineBackend) ReadTarget(p *Port, pid arch.PID, va arch.VirtAddr) (arch.PhysAddr, sim.Cycle) {
	entry, lat, ok := p.TLB.Lookup(pid, va.Page())
	if !ok {
		panic(fmt.Sprintf("core: timed read fault at pid %d va %#x", pid, uint64(va)))
	}
	return arch.PhysAddrOf(entry.PPN, uint64(va.Line())<<arch.LineShift), lat
}

func (b *baselineBackend) WriteLatency(p *Port, pid arch.PID, va arch.VirtAddr) sim.Cycle {
	_, lat, ok := p.TLB.Lookup(pid, va.Page())
	if !ok {
		panic(fmt.Sprintf("core: timed write fault at pid %d va %#x", pid, uint64(va)))
	}
	return lat
}

func (b *baselineBackend) Write(p *Port, pid arch.PID, va arch.VirtAddr, done sim.Cont) {
	f := b.f
	proc, ok := f.VM.Process(pid)
	if !ok {
		panic(fmt.Sprintf("core: no process %d", pid))
	}
	vpn, line := va.Page(), va.Line()
	res, err := f.conventionalResolveWrite(proc, vpn, line)
	if err != nil {
		panic(err)
	}
	switch res.kind {
	case writePlain:
		f.Hier.AccessCont(res.loc.cacheAddr, true, done)
	case writeCOWCopy, writeCOWReuse:
		f.timedCOWWrite(p, pid, vpn, res, done)
	default:
		panic("core: unknown write kind")
	}
}

func (b *baselineBackend) ResolveRead(proc *vm.Process, vpn arch.VPN, line int) (lineLoc, error) {
	return b.f.conventionalResolveRead(proc, vpn, line)
}

func (b *baselineBackend) ResolveWrite(proc *vm.Process, vpn arch.VPN, line int) (writeResolution, error) {
	return b.f.conventionalResolveWrite(proc, vpn, line)
}

// Fetch and WriteBack see only regular physical addresses (nothing tags
// lines into the Overlay Address Space under this backend).
func (b *baselineBackend) Fetch(addr arch.PhysAddr, done sim.Cont) {
	b.f.DRAM.ReadCont(addr, done)
}

func (b *baselineBackend) WriteBack(addr arch.PhysAddr) {
	b.f.DRAM.Write(addr, nil)
}

func (b *baselineBackend) OnMiss(addr arch.PhysAddr) {
	b.f.Prefetch.OnMiss(addr)
}

// Fork always shares copy-on-write — the conventional system has no
// overlay-on-write to offer.
func (b *baselineBackend) Fork(parent *vm.Process, overlayMode bool) *vm.Process {
	return b.f.conventionalFork(parent)
}

// MetadataBytes is the page tables alone: 8 B per mapped PTE.
func (b *baselineBackend) MetadataBytes() int {
	return b.f.VM.MappedPages() * 8
}

func (b *baselineBackend) SnapshotState() any { return nil }

func (b *baselineBackend) RestoreState(any) {}
