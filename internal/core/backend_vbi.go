package core

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/sim"
	"repro/internal/tlb"
	"repro/internal/vm"
)

// vbiBackend models the Virtual Block Interface (Hajinazar et al., ISCA
// 2020): caches are virtually tagged, so cores perform no translation at
// all — a load pays only the permission check folded into the L1 access.
// Translation is delegated to the memory translation layer (MTL) at the
// memory controller, which resolves LLC misses through a small mapping
// cache in front of flat per-block tables. Because tags never change
// when a block moves between physical frames, copy-on-write resolves as
// a controller-side remap: no OS trap, no TLB shootdown, no cache retag
// — the new frame is populated by a background copy that only costs
// DRAM bandwidth.
//
// The simulator reuses the Overlay Address Space encoding (pid, vpn,
// line packed under a tag bit) as VBI's virtual block tags: every cache
// access under this backend is tagged OverlayPage(pid, vpn).LineAddr(l),
// and the controller is the only place those tags meet physical frames.
type vbiBackend struct {
	f *Framework

	// mtl is the controller's mapping cache: set-associative exact-LRU
	// over (pid, vpn) → PPN.
	mtl      [][]mtlWay
	mtlClock uint64

	mtlHits      *uint64
	mtlMisses    *uint64
	blockCopies  *uint64
	remapReuses  *uint64
	staleFetches *uint64
}

type mtlWay struct {
	valid bool
	pid   arch.PID
	vpn   arch.VPN
	ppn   arch.PPN
	stamp uint64
}

const mtlWays = 8

func init() {
	RegisterBackend("vbi", func(f *Framework) TranslationBackend {
		b := &vbiBackend{
			f:            f,
			mtlHits:      f.Engine.Stats.Counter("vbi.mtl_hits"),
			mtlMisses:    f.Engine.Stats.Counter("vbi.mtl_misses"),
			blockCopies:  f.Engine.Stats.Counter("vbi.block_copies"),
			remapReuses:  f.Engine.Stats.Counter("vbi.remap_reuses"),
			staleFetches: f.Engine.Stats.Counter("vbi.stale_fetches"),
		}
		sets := f.Config.VBIMTLEntries / mtlWays
		if sets < 1 {
			sets = 1
		}
		b.mtl = make([][]mtlWay, sets)
		backing := make([]mtlWay, sets*mtlWays)
		for i := range b.mtl {
			b.mtl[i], backing = backing[:mtlWays], backing[mtlWays:]
		}
		return b
	})
}

func (b *vbiBackend) Name() string { return "vbi" }

func vbiTag(pid arch.PID, vpn arch.VPN, line int) arch.PhysAddr {
	return arch.OverlayPage(pid, vpn).LineAddr(line)
}

func (b *vbiBackend) mtlSet(pid arch.PID, vpn arch.VPN) []mtlWay {
	h := (uint64(vpn) ^ uint64(pid)<<4) % uint64(len(b.mtl))
	return b.mtl[h]
}

func (b *vbiBackend) mtlLookup(pid arch.PID, vpn arch.VPN) (arch.PPN, bool) {
	s := b.mtlSet(pid, vpn)
	for i := range s {
		if s[i].valid && s[i].pid == pid && s[i].vpn == vpn {
			b.mtlClock++
			s[i].stamp = b.mtlClock
			return s[i].ppn, true
		}
	}
	return 0, false
}

// mtlInsert installs (or refreshes) a mapping, evicting the set's LRU.
func (b *vbiBackend) mtlInsert(pid arch.PID, vpn arch.VPN, ppn arch.PPN) {
	s := b.mtlSet(pid, vpn)
	victim := 0
	for i := range s {
		if s[i].valid && s[i].pid == pid && s[i].vpn == vpn {
			victim = i
			break
		}
		if !s[i].valid {
			victim = i
			break
		}
		if s[i].stamp < s[victim].stamp {
			victim = i
		}
	}
	b.mtlClock++
	s[victim] = mtlWay{valid: true, pid: pid, vpn: vpn, ppn: ppn, stamp: b.mtlClock}
}

// Walk exists for interface completeness: no TLB miss ever reaches it
// because VBI cores do not translate. It answers conventionally.
func (b *vbiBackend) Walk(pid arch.PID, vpn arch.VPN) (tlb.Entry, sim.Cycle, bool) {
	e, ok := b.f.conventionalWalk(pid, vpn)
	return e, b.f.Config.TLB.WalkLatency, ok
}

// ReadTarget tags the access virtually; the only core-side cost is the
// permission check riding the L1 probe. Faults surface at the controller
// (an unmapped block has no translation when its miss arrives).
func (b *vbiBackend) ReadTarget(p *Port, pid arch.PID, va arch.VirtAddr) (arch.PhysAddr, sim.Cycle) {
	return vbiTag(pid, va.Page(), va.Line()), b.f.Config.TLB.L1Latency
}

func (b *vbiBackend) WriteLatency(p *Port, pid arch.PID, va arch.VirtAddr) sim.Cycle {
	return b.f.Config.TLB.L1Latency
}

func (b *vbiBackend) Write(p *Port, pid arch.PID, va arch.VirtAddr, done sim.Cont) {
	f := b.f
	proc, ok := f.VM.Process(pid)
	if !ok {
		panic(fmt.Sprintf("core: no process %d", pid))
	}
	vpn, line := va.Page(), va.Line()
	res, err := b.ResolveWrite(proc, vpn, line)
	if err != nil {
		panic(err)
	}
	target := vbiTag(pid, vpn, line)
	switch res.kind {
	case writePlain:
		f.Hier.AccessCont(target, true, done)

	case writeVBIRemap:
		// The controller remaps the block: the store stalls only for the
		// MTL update round-trip. The old frame's contents move to the new
		// frame in the background — the copy costs DRAM write bandwidth
		// (64 line writes) but never blocks the core, and the virtual tags
		// mean no cached line moves or invalidates.
		if res.srcCacheAddr != res.loc.cacheAddr { // full copy, not a last-sharer reuse
			dstPage := res.loc.cacheAddr.PageAligned()
			for i := 0; i < arch.LinesPerPage; i++ {
				f.DRAM.Write(dstPage+arch.PhysAddr(i<<arch.LineShift), nil)
			}
		}
		f.Engine.Schedule(f.Config.VBIRemapLatency, func() {
			f.Hier.AccessCont(target, true, done)
		})

	default:
		panic("core: unknown write kind")
	}
}

func (b *vbiBackend) ResolveRead(proc *vm.Process, vpn arch.VPN, line int) (lineLoc, error) {
	return b.f.conventionalResolveRead(proc, vpn, line)
}

// ResolveWrite resolves stores through the flat block tables: writable
// blocks store in place; shared (COW) blocks are remapped by the
// controller with a background copy — VBI's no-trap, no-shootdown CoW.
func (b *vbiBackend) ResolveWrite(proc *vm.Process, vpn arch.VPN, line int) (writeResolution, error) {
	f := b.f
	pte := proc.Table.Lookup(vpn)
	if pte == nil {
		return writeResolution{}, fmt.Errorf("core: write fault at pid %d vpn %#x", proc.PID, uint64(vpn))
	}
	if pte.Writable {
		*f.plainWrites++
		return writeResolution{kind: writePlain, loc: physLineLoc(pte.PPN, line)}, nil
	}
	if pte.COW {
		oldPPN := pte.PPN
		_, copied, err := f.VM.BreakCOW(proc, vpn)
		if err != nil {
			return writeResolution{}, err
		}
		pte = proc.Table.Lookup(vpn)
		// The controller performed the remap; its mapping cache holds the
		// fresh translation.
		b.mtlInsert(proc.PID, vpn, pte.PPN)
		res := writeResolution{
			kind:         writeVBIRemap,
			loc:          physLineLoc(pte.PPN, line),
			srcCacheAddr: arch.PhysAddrOf(oldPPN, 0),
		}
		if copied {
			*b.blockCopies++
		} else {
			*b.remapReuses++
			res.srcCacheAddr = res.loc.cacheAddr // reuse: nothing to copy
		}
		return res, nil
	}
	return writeResolution{}, fmt.Errorf("core: protection fault: write to read-only pid %d vpn %#x", proc.PID, uint64(vpn))
}

// Fetch translates a virtual-block miss at the controller: MTL cache
// probe, then a flat block-table walk on a miss.
func (b *vbiBackend) Fetch(addr arch.PhysAddr, done sim.Cont) {
	f := b.f
	if !addr.IsOverlay() {
		f.DRAM.ReadCont(addr, done)
		return
	}
	opn := arch.OverlayPageOf(addr)
	pid, vpn := arch.SplitOverlayPage(opn)
	ppn, hit := b.mtlLookup(pid, vpn)
	lat := f.Config.VBIMTLHitLatency
	if hit {
		*b.mtlHits++
	} else {
		*b.mtlMisses++
		lat = f.Config.VBIMTLMissLatency
		var ok bool
		ppn, ok = b.tableWalk(pid, vpn)
		if !ok {
			// Block unmapped (e.g. the owner exited with lines in flight):
			// zero-fill after the failed walk.
			*b.staleFetches++
			f.Engine.ScheduleCont(lat, done)
			return
		}
		b.mtlInsert(pid, vpn, ppn)
	}
	target := arch.PhysAddrOf(ppn, uint64(addr.Line())<<arch.LineShift)
	f.Engine.Schedule(lat, func() {
		f.DRAM.ReadCont(target, done)
	})
}

func (b *vbiBackend) WriteBack(addr arch.PhysAddr) {
	f := b.f
	if !addr.IsOverlay() {
		f.DRAM.Write(addr, nil)
		return
	}
	opn := arch.OverlayPageOf(addr)
	pid, vpn := arch.SplitOverlayPage(opn)
	ppn, hit := b.mtlLookup(pid, vpn)
	if hit {
		*b.mtlHits++
	} else {
		*b.mtlMisses++
		var ok bool
		ppn, ok = b.tableWalk(pid, vpn)
		if !ok {
			*b.staleFetches++
			return
		}
		b.mtlInsert(pid, vpn, ppn)
	}
	f.DRAM.Write(arch.PhysAddrOf(ppn, uint64(addr.Line())<<arch.LineShift), nil)
}

func (b *vbiBackend) tableWalk(pid arch.PID, vpn arch.VPN) (arch.PPN, bool) {
	proc, ok := b.f.VM.Process(pid)
	if !ok {
		return 0, false
	}
	pte := proc.Table.Lookup(vpn)
	if pte == nil {
		return 0, false
	}
	return pte.PPN, true
}

// OnMiss feeds the stream prefetcher directly: VBI streams run in the
// virtual block space, which is exactly where unit strides live.
func (b *vbiBackend) OnMiss(addr arch.PhysAddr) {
	b.f.Prefetch.OnMiss(addr)
}

// Fork shares every page copy-on-write. No TLB flush is needed — cores
// hold no translations — and the parent's cached lines stay valid
// because their tags are virtual.
func (b *vbiBackend) Fork(parent *vm.Process, overlayMode bool) *vm.Process {
	return b.f.VM.Fork(parent, false)
}

// MetadataBytes models VBI's flat per-block tables (4 B per mapped
// block) plus the MTL mapping cache's tag store (16 B per entry).
func (b *vbiBackend) MetadataBytes() int {
	return b.f.VM.MappedPages()*4 + len(b.mtl)*mtlWays*16
}

// vbiSnapshot carries the MTL across Snapshot/NewFromSnapshot.
type vbiSnapshot struct {
	mtl      [][]mtlWay
	mtlClock uint64
}

func (b *vbiBackend) SnapshotState() any {
	s := &vbiSnapshot{mtlClock: b.mtlClock, mtl: make([][]mtlWay, len(b.mtl))}
	backing := make([]mtlWay, len(b.mtl)*mtlWays)
	for i := range b.mtl {
		s.mtl[i], backing = backing[:mtlWays], backing[mtlWays:]
		copy(s.mtl[i], b.mtl[i])
	}
	return s
}

func (b *vbiBackend) RestoreState(state any) {
	if state == nil {
		return
	}
	s := state.(*vbiSnapshot)
	b.mtlClock = s.mtlClock
	for i := range s.mtl {
		copy(b.mtl[i], s.mtl[i])
	}
}
