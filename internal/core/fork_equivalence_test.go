package core_test

// Timed fork equivalence: a framework captured at a quiescence point and
// resumed via NewFromSnapshot must replay the exact event order of the
// parent continuing — same cycles, same counters, same memory contents.

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/cpu"
)

// equivTrace builds a deterministic mixed trace over n mapped pages.
func equivTrace(n int) []cpu.Instr {
	var instrs []cpu.Instr
	for i := 0; i < 4000; i++ {
		va := arch.VirtAddr((i * 7919) % (n * arch.PageSize))
		switch i % 3 {
		case 0:
			instrs = append(instrs, cpu.Instr{Kind: cpu.Compute, N: 1 + i%5})
		case 1:
			instrs = append(instrs, cpu.Instr{Kind: cpu.Load, VA: va})
		default:
			instrs = append(instrs, cpu.Instr{Kind: cpu.Store, VA: va})
		}
	}
	return instrs
}

func TestForkMatchesParentContinuation(t *testing.T) {
	const pages = 16
	cfg := core.DefaultConfig()
	cfg.MemoryPages = 4096
	cfg.OMSInitialFrames = 4
	instrs := equivTrace(pages)

	build := func() (*core.Framework, *cpu.Core, arch.PID) {
		f, err := core.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		p := f.VM.NewProcess()
		if err := f.VM.MapAnon(p, 0, pages); err != nil {
			t.Fatal(err)
		}
		// Materialise the footprint with a pattern so the snapshot has
		// real frame contents to share copy-on-write.
		fill := make([]byte, pages*arch.PageSize)
		for i := range fill {
			fill[i] = byte(i * 31)
		}
		if err := f.Store(p.PID, 0, fill); err != nil {
			t.Fatal(err)
		}
		port := f.NewPort()
		return f, cpu.New(f.Engine, port, p.PID, cpu.NewSliceTrace(instrs)), p.PID
	}

	// Parent: warm, capture, then continue to completion.
	pf, pc, pid := build()
	pc.Run(1500, nil)
	pf.Engine.Run()
	snap := pf.Snapshot()
	cpuSnap := pc.Snapshot()
	fetched := pc.Fetched()
	pc.Run(0, nil)
	pf.Engine.Run()

	// Fork: resume from the capture and run the same remainder.
	ff := core.NewFromSnapshot(snap)
	trace := cpu.NewSliceTrace(instrs)
	for i := uint64(0); i < fetched; i++ {
		trace.Next()
	}
	fc := cpu.New(ff.Engine, ff.Port(0), pid, trace)
	fc.Restore(cpuSnap)
	fc.Run(0, nil)
	ff.Engine.Run()

	if pc.Cycles() != fc.Cycles() {
		t.Errorf("cycles diverge: parent %d, fork %d", pc.Cycles(), fc.Cycles())
	}
	if pc.Retired() != fc.Retired() {
		t.Errorf("retired diverge: parent %d, fork %d", pc.Retired(), fc.Retired())
	}
	if p, f := pf.Engine.Stats.String(), ff.Engine.Stats.String(); p != f {
		t.Errorf("registries diverge\nparent:\n%s\nfork:\n%s", p, f)
	}
	// Memory contents must match too: the fork's copy-on-write writes
	// land in private frames with the same values.
	pb, fb := make([]byte, pages*arch.PageSize), make([]byte, pages*arch.PageSize)
	if err := pf.Load(pid, 0, pb); err != nil {
		t.Fatal(err)
	}
	if err := ff.Load(pid, 0, fb); err != nil {
		t.Fatal(err)
	}
	if string(pb) != string(fb) {
		t.Error("memory contents diverge between parent and fork")
	}
	// A functional write in the fork privatises exactly one frame and
	// never leaks into the parent.
	base := ff.Mem.BytesCopied()
	if err := ff.Store(pid, 5, []byte{0xEE}); err != nil {
		t.Fatal(err)
	}
	if got := ff.Mem.BytesCopied() - base; got != arch.PageSize {
		t.Errorf("fork write privatised %d bytes, want %d", got, arch.PageSize)
	}
	if err := pf.Load(pid, 5, pb[:1]); err != nil {
		t.Fatal(err)
	}
	if pb[0] != byte(5*31) {
		t.Errorf("fork write leaked into parent: %#x", pb[0])
	}
}

func TestSnapshotPanicsMidFlight(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.MemoryPages = 4096
	cfg.OMSInitialFrames = 4
	f, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := f.VM.NewProcess()
	if err := f.VM.MapAnon(p, 0, 1); err != nil {
		t.Fatal(err)
	}
	port := f.NewPort()
	c := cpu.New(f.Engine, port, p.PID, cpu.NewSliceTrace([]cpu.Instr{{Kind: cpu.Load}}))
	c.Run(0, nil)
	// The engine has pending events: capture must refuse.
	defer func() {
		if recover() == nil {
			t.Error("Snapshot() of a mid-flight framework did not panic")
		}
	}()
	f.Snapshot()
}
