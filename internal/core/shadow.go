package core

import (
	"fmt"

	"repro/internal/arch"
)

// Shadow-memory support (§5.3.4): for a page mapped with the Shadow mode
// bit, the Overlay Address Space serves as shadow memory for the virtual
// address space. Regular loads and stores access the data page and ignore
// the overlay entirely; the metadata load/store "instructions" below
// access the overlay. Overlay lines are created on first metadata store
// and read back as zeroes when absent — no metadata-specific hardware
// beyond the overlay framework itself.

// ShadowStore writes metadata bytes at (pid, va) into the page's overlay.
// The page must be mapped with the Shadow bit.
func (f *Framework) ShadowStore(pid arch.PID, va arch.VirtAddr, data []byte) error {
	proc, ok := f.VM.Process(pid)
	if !ok {
		return fmt.Errorf("core: no process %d", pid)
	}
	for n := 0; n < len(data); {
		a := va + arch.VirtAddr(n)
		pte := proc.Table.Lookup(a.Page())
		if pte == nil {
			return fmt.Errorf("core: shadow store fault at %#x", uint64(a))
		}
		if !pte.Shadow {
			return fmt.Errorf("core: shadow store to non-shadow page %#x", uint64(a.Page()))
		}
		entry := f.OMTTable.Ref(arch.OverlayPage(pid, a.Page()))
		loc, err := f.overlayInsert(pid, a.Page(), entry, a.Line(), nil)
		if err != nil {
			return err
		}
		span := int(arch.LineSize - a.LineOffset())
		if span > len(data)-n {
			span = len(data) - n
		}
		f.Mem.WriteSpan(loc.ppn, loc.off+a.LineOffset(), data[n:n+span])
		n += span
	}
	f.Engine.Stats.Inc("core.shadow_stores")
	return nil
}

// ShadowLoad reads metadata bytes at (pid, va) from the page's overlay;
// lines with no metadata yet read as zeroes.
func (f *Framework) ShadowLoad(pid arch.PID, va arch.VirtAddr, buf []byte) error {
	proc, ok := f.VM.Process(pid)
	if !ok {
		return fmt.Errorf("core: no process %d", pid)
	}
	for n := 0; n < len(buf); {
		a := va + arch.VirtAddr(n)
		pte := proc.Table.Lookup(a.Page())
		if pte == nil {
			return fmt.Errorf("core: shadow load fault at %#x", uint64(a))
		}
		if !pte.Shadow {
			return fmt.Errorf("core: shadow load from non-shadow page %#x", uint64(a.Page()))
		}
		span := int(arch.LineSize - a.LineOffset())
		if span > len(buf)-n {
			span = len(buf) - n
		}
		opn := arch.OverlayPage(pid, a.Page())
		entry := f.OMTTable.Get(opn)
		if entry.OBits.Has(a.Line()) {
			loc, err := f.overlayLineLoc(opn, f.OMTTable.Ref(opn), a.Line())
			if err != nil {
				return err
			}
			f.Mem.ReadSpan(loc.ppn, loc.off+a.LineOffset(), buf[n:n+span])
		} else {
			for i := 0; i < span; i++ {
				buf[n+i] = 0
			}
		}
		n += span
	}
	f.Engine.Stats.Inc("core.shadow_loads")
	return nil
}
