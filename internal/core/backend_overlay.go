package core

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/sim"
	"repro/internal/tlb"
	"repro/internal/vm"
)

// overlayBackend is the paper's page-overlay framework (§3–§4): the
// direct virtual-to-overlay mapping, OBitVector-extended TLB entries, the
// Overlay Mapping Table with its controller cache, and the compact
// Overlay Memory Store. It is the default backend and is bit-identical to
// the pre-refactor framework — every method body here was moved, not
// rewritten.
type overlayBackend struct {
	f *Framework
}

func init() {
	RegisterBackend("overlay", func(f *Framework) TranslationBackend {
		return &overlayBackend{f: f}
	})
}

func (b *overlayBackend) Name() string { return "overlay" }

// Walk implements the TLB's page-walk interface: the 1000-cycle walk
// reads the page tables and, for overlay-enabled pages, the OMT entry
// that supplies the OBitVector.
func (b *overlayBackend) Walk(pid arch.PID, vpn arch.VPN) (tlb.Entry, sim.Cycle, bool) {
	f := b.f
	lat := f.Config.TLB.WalkLatency
	proc, ok := f.VM.Process(pid)
	if !ok {
		return tlb.Entry{}, lat, false
	}
	pte := proc.Table.Lookup(vpn)
	if pte == nil {
		return tlb.Entry{}, lat, false
	}
	e := tlb.Entry{
		PPN:        pte.PPN,
		COW:        pte.COW,
		Writable:   pte.Writable,
		HasOverlay: pte.Overlay,
	}
	if pte.Overlay || pte.Shadow {
		e.OBits = f.OMTTable.Get(arch.OverlayPage(pid, vpn)).OBits
	}
	return e, lat, true
}

// ReadTarget translates a timed load: lines present in the page's
// overlay are tagged in the Overlay Address Space, everything else at the
// regular physical address.
func (b *overlayBackend) ReadTarget(p *Port, pid arch.PID, va arch.VirtAddr) (arch.PhysAddr, sim.Cycle) {
	entry, lat, ok := p.TLB.Lookup(pid, va.Page())
	if !ok {
		panic(fmt.Sprintf("core: timed read fault at pid %d va %#x", pid, uint64(va)))
	}
	line := va.Line()
	var target arch.PhysAddr
	if entry.HasOverlay && entry.OBits.Has(line) {
		target = arch.OverlayPage(pid, va.Page()).LineAddr(line)
	} else {
		target = arch.PhysAddrOf(entry.PPN, uint64(line)<<arch.LineShift)
	}
	return target, lat
}

func (b *overlayBackend) WriteLatency(p *Port, pid arch.PID, va arch.VirtAddr) sim.Cycle {
	_, lat, ok := p.TLB.Lookup(pid, va.Page())
	if !ok {
		panic(fmt.Sprintf("core: timed write fault at pid %d va %#x", pid, uint64(va)))
	}
	return lat
}

// Write implements the three write flavours of §4.3 on the timed path.
func (b *overlayBackend) Write(p *Port, pid arch.PID, va arch.VirtAddr, done sim.Cont) {
	f := b.f
	proc, ok := f.VM.Process(pid)
	if !ok {
		panic(fmt.Sprintf("core: no process %d", pid))
	}
	vpn, line := va.Page(), va.Line()
	res, err := b.ResolveWrite(proc, vpn, line)
	if err != nil {
		panic(err)
	}
	switch res.kind {
	case writePlain, writeSimpleOverlay:
		f.Hier.AccessCont(res.loc.cacheAddr, true, done)

	case writeOverlaying:
		// §4.3.3: fetch the source line (read-for-ownership), retag the
		// block into the Overlay Address Space, pay the coherence round,
		// then the store completes. The fetch is the application's own
		// write-allocate miss; the remap adds OverlayRemapLatency. The
		// remaining write flavours are off the hot path, so plain closures
		// are fine here.
		f.Hier.Access(res.srcCacheAddr, true, func() {
			f.Hier.Retag(res.srcCacheAddr, res.loc.cacheAddr)
			f.Engine.ScheduleCont(f.Config.OverlayRemapLatency, done)
		})

	case writeCOWCopy, writeCOWReuse:
		f.timedCOWWrite(p, pid, vpn, res, done)

	default:
		panic("core: unknown write kind")
	}
}

// ResolveRead locates the bytes a load of (pid, vpn, line) must return.
func (b *overlayBackend) ResolveRead(proc *vm.Process, vpn arch.VPN, line int) (lineLoc, error) {
	f := b.f
	pte := proc.Table.Lookup(vpn)
	if pte == nil {
		return lineLoc{}, fmt.Errorf("core: read fault at pid %d vpn %#x", proc.PID, uint64(vpn))
	}
	if pte.Overlay && !pte.Shadow {
		opn := arch.OverlayPage(proc.PID, vpn)
		entry := f.OMTTable.Get(opn)
		if entry.OBits.Has(line) {
			return f.overlayLineLoc(opn, f.OMTTable.Ref(opn), line)
		}
	}
	return physLineLoc(pte.PPN, line), nil
}

// ResolveWrite performs the structural state changes a store to
// (proc, vpn, line) requires — overlay creation, OMT/TLB updates, or a
// conventional COW page copy — and reports what happened. It does not
// write the payload bytes.
func (b *overlayBackend) ResolveWrite(proc *vm.Process, vpn arch.VPN, line int) (writeResolution, error) {
	f := b.f
	pte := proc.Table.Lookup(vpn)
	if pte == nil {
		return writeResolution{}, fmt.Errorf("core: write fault at pid %d vpn %#x", proc.PID, uint64(vpn))
	}
	opn := arch.OverlayPage(proc.PID, vpn)

	if pte.Overlay && !pte.Shadow {
		entry := f.OMTTable.Ref(opn)
		if entry.OBits.Has(line) {
			loc, err := f.overlayLineLoc(opn, entry, line)
			if err != nil {
				return writeResolution{}, err
			}
			*f.simpleOvlWrites++
			return writeResolution{kind: writeSimpleOverlay, loc: loc}, nil
		}
		if pte.COW || !pte.Writable {
			// Overlaying write: copy the line into a fresh overlay slot and
			// remap it with a single-line coherence update.
			src := physLineLoc(pte.PPN, line)
			loc, err := f.overlayInsert(proc.PID, vpn, entry, line, &pte.PPN)
			if err != nil {
				return writeResolution{}, err
			}
			*f.overlayingWr++
			return writeResolution{kind: writeOverlaying, loc: loc, srcCacheAddr: src.cacheAddr}, nil
		}
		// Overlay-enabled but writable and line not in overlay: plain.
		*f.plainWrites++
		return writeResolution{kind: writePlain, loc: physLineLoc(pte.PPN, line)}, nil
	}

	return f.conventionalResolveWriteTail(proc, pte, vpn, line)
}

// Fetch implements the memory controller of Fig. 6: regular addresses go
// straight to DRAM; overlay addresses are resolved through the OMT cache
// and the Overlay Memory Store's segment metadata.
func (b *overlayBackend) Fetch(addr arch.PhysAddr, done sim.Cont) {
	f := b.f
	if !addr.IsOverlay() {
		f.DRAM.ReadCont(addr, done)
		return
	}
	opn := arch.OverlayPageOf(addr)
	entry, lat := f.OMTCache.Lookup(opn)
	idx, r := f.newOvl()
	r.entry, r.line, r.done = entry, addr.Line(), done
	f.Engine.ScheduleArg(lat, f.ovlFetchFn, uint64(idx))
}

func (b *overlayBackend) WriteBack(addr arch.PhysAddr) {
	f := b.f
	if !addr.IsOverlay() {
		f.DRAM.Write(addr, nil)
		return
	}
	opn := arch.OverlayPageOf(addr)
	entry, lat := f.OMTCache.Lookup(opn)
	idx, r := f.newOvl()
	r.entry, r.line, r.done = entry, addr.Line(), sim.Cont{}
	f.Engine.ScheduleArg(lat, f.ovlWBFn, uint64(idx))
}

// OnMiss feeds L2 demand misses to the stream prefetcher (for both
// regular and overlay addresses — overlay lines form streams in the
// Overlay Address Space just as well) and, for overlay misses, primes the
// memory controller's OMT cache with the next overlay-bearing page so
// page-sequential overlay traffic never exposes the 1000-cycle OMT walk
// on demand. The OBitVector-walking prefetcher of the overlay computation
// model is driven from Port.ReadOverlay instead (§5.2 accesses only).
func (b *overlayBackend) OnMiss(addr arch.PhysAddr) {
	f := b.f
	if !addr.IsOverlay() {
		f.Prefetch.OnMiss(addr)
		return
	}
	// Overlay miss: the controller holds the page's OBitVector, so it
	// feeds the stream prefetcher only when the overlay is dense enough
	// for unit-stride streams to be real lines — on sparse overlays a
	// blind stream would fetch mostly absent (zero-fill) lines and
	// pollute the L3. Sparse overlays are covered by the OBitVector
	// walker on the §5.2 path instead.
	opn := arch.OverlayPageOf(addr)
	if f.OMTTable.Get(opn).OBits.Count() >= arch.LinesPerPage*3/4 {
		f.Prefetch.OnMiss(addr)
	}
	f.primeNextOMTEntry(opn)
}

// Fork clones the process with either conventional copy-on-write
// (overlayMode=false) or overlay-on-write (overlayMode=true) semantics,
// flushing the parent's now-stale TLB entries. Because no two virtual
// pages may share an overlay (§4.1), any overlay lines the parent already
// has are copied into per-child overlays so the child observes the
// parent's full fork-time contents.
func (b *overlayBackend) Fork(parent *vm.Process, overlayMode bool) *vm.Process {
	f := b.f
	child := f.VM.Fork(parent, overlayMode)
	var copyErr error
	parent.Table.Range(func(vpn arch.VPN, pte *vm.PTE) bool {
		srcOPN := arch.OverlayPage(parent.PID, vpn)
		src := f.OMTTable.Get(srcOPN)
		if src.OBits.Empty() {
			return true
		}
		dstEntry := f.OMTTable.Ref(arch.OverlayPage(child.PID, vpn))
		var buf [arch.LineSize]byte
		for _, line := range src.OBits.Lines() {
			// Re-read the parent's segment handle every iteration and copy
			// the line out before inserting into the child: the child's
			// insert may allocate, and at capacity an allocation can spill
			// the parent's segment (unswizzling srcOPN to a cold reference).
			segBase := f.OMTTable.Get(srcOPN).SegBase
			if segBase.IsCold() {
				resolved, _, err := f.OMS.Resolve(segBase)
				if err != nil {
					copyErr = err
					return false
				}
				f.OMTTable.Ref(srcOPN).SegBase = resolved
				segBase = resolved
			}
			slot, ok := f.OMS.LocateLine(segBase, line)
			if !ok {
				continue
			}
			f.OMS.ReadLineData(slot, buf[:])
			loc, err := f.overlayInsert(child.PID, vpn, dstEntry, line, nil)
			if err != nil {
				copyErr = err
				return false
			}
			f.Mem.WriteLine(loc.ppn, int(loc.off>>arch.LineShift), buf[:])
		}
		return true
	})
	if copyErr != nil {
		panic(fmt.Sprintf("core: fork overlay copy: %v", copyErr))
	}
	for _, p := range f.ports {
		p.TLB.FlushPID(parent.PID)
	}
	return child
}

// MetadataBytes models page tables (8 B per mapped PTE) plus the OMT
// (16 B per live entry: OBitVector + segment base).
func (b *overlayBackend) MetadataBytes() int {
	return b.f.VM.MappedPages()*8 + b.f.OMTTable.Count()*16
}

// SnapshotState returns nil: all overlay state lives in the shared
// components (OMT table, OMT cache, OMS, port cursors) that the
// framework snapshot already captures.
func (b *overlayBackend) SnapshotState() any { return nil }

func (b *overlayBackend) RestoreState(any) {}
