package core

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/sim"
	"repro/internal/tlb"
	"repro/internal/vm"
)

// Conventional-translation helpers shared between backends: the overlay
// backend's non-overlay tail, the baseline control, and Utopia (which
// changes only the walk) all resolve stores through trap-and-copy COW
// and loads through the page tables. Keeping one copy here guarantees
// the control path can never drift from the overlay backend's own
// conventional arm.

// conventionalWalk fills a TLB entry from the page tables alone — no
// OBitVector, no overlay flag, whatever the PTE says about overlays.
func (f *Framework) conventionalWalk(pid arch.PID, vpn arch.VPN) (tlb.Entry, bool) {
	proc, ok := f.VM.Process(pid)
	if !ok {
		return tlb.Entry{}, false
	}
	pte := proc.Table.Lookup(vpn)
	if pte == nil {
		return tlb.Entry{}, false
	}
	return tlb.Entry{PPN: pte.PPN, COW: pte.COW, Writable: pte.Writable}, true
}

// conventionalResolveRead reads through the page tables: the bytes always
// live in the mapped frame.
func (f *Framework) conventionalResolveRead(proc *vm.Process, vpn arch.VPN, line int) (lineLoc, error) {
	pte := proc.Table.Lookup(vpn)
	if pte == nil {
		return lineLoc{}, fmt.Errorf("core: read fault at pid %d vpn %#x", proc.PID, uint64(vpn))
	}
	return physLineLoc(pte.PPN, line), nil
}

// conventionalResolveWriteTail is the no-overlay arm of write resolution:
// plain stores to writable pages, trap-and-copy (or last-sharer reuse)
// for COW pages, protection fault otherwise. The overlay backend funnels
// its non-overlay pages through the same code.
func (f *Framework) conventionalResolveWriteTail(proc *vm.Process, pte *vm.PTE, vpn arch.VPN, line int) (writeResolution, error) {
	if pte.Writable {
		*f.plainWrites++
		return writeResolution{kind: writePlain, loc: physLineLoc(pte.PPN, line)}, nil
	}
	if pte.COW {
		oldPPN := pte.PPN
		_, copied, err := f.VM.BreakCOW(proc, vpn)
		if err != nil {
			return writeResolution{}, err
		}
		pte = proc.Table.Lookup(vpn)
		res := writeResolution{
			loc:          physLineLoc(pte.PPN, line),
			srcCacheAddr: arch.PhysAddrOf(oldPPN, 0),
		}
		if copied {
			res.kind = writeCOWCopy
			*f.cowCopies++
		} else {
			res.kind = writeCOWReuse
			*f.cowReuses++
		}
		return res, nil
	}
	return writeResolution{}, fmt.Errorf("core: protection fault: write to read-only pid %d vpn %#x", proc.PID, uint64(vpn))
}

// conventionalResolveWrite is the full conventional write resolution:
// page-table lookup plus the shared tail.
func (f *Framework) conventionalResolveWrite(proc *vm.Process, vpn arch.VPN, line int) (writeResolution, error) {
	pte := proc.Table.Lookup(vpn)
	if pte == nil {
		return writeResolution{}, fmt.Errorf("core: write fault at pid %d vpn %#x", proc.PID, uint64(vpn))
	}
	return f.conventionalResolveWriteTail(proc, pte, vpn, line)
}

// timedCOWWrite models the conventional copy-on-write resolutions on the
// timed path (§2.2): an OS trap, the page copy with full memory-level
// parallelism (writeCOWCopy only), a TLB shootdown, then the retried
// store. Shared by every backend whose stores can hit COW pages through
// conventional control (overlay's non-overlay pages, baseline, utopia).
func (f *Framework) timedCOWWrite(p *Port, pid arch.PID, vpn arch.VPN, res writeResolution, done sim.Cont) {
	switch res.kind {
	case writeCOWCopy:
		// Conventional copy-on-write (§2.2): trap into the OS, copy all 64
		// lines of the page (reads issued with full memory-level
		// parallelism; destination lines are produced into the cache),
		// shoot down the TLBs, then retry the store on the new page.
		srcPage := res.srcCacheAddr.PageAligned()
		dstPage := res.loc.cacheAddr.PageAligned()
		f.Engine.Schedule(f.Config.COWTrapLatency, func() {
			remaining := arch.LinesPerPage
			for i := 0; i < arch.LinesPerPage; i++ {
				i := i
				src := srcPage + arch.PhysAddr(i<<arch.LineShift)
				f.Hier.Access(src, false, func() {
					f.Hier.Install(dstPage+arch.PhysAddr(i<<arch.LineShift), true)
					remaining--
					if remaining == 0 {
						cost := p.shootdownAll(pid, vpn)
						f.Engine.Schedule(cost, func() {
							f.Hier.AccessCont(res.loc.cacheAddr, true, done)
						})
					}
				})
			}
		})

	case writeCOWReuse:
		// Last sharer: the OS only flips permissions, but still traps and
		// shoots down stale TLB entries.
		f.Engine.Schedule(f.Config.COWTrapLatency, func() {
			cost := p.shootdownAll(pid, vpn)
			f.Engine.Schedule(cost, func() {
				f.Hier.AccessCont(res.loc.cacheAddr, true, done)
			})
		})

	default:
		panic("core: timedCOWWrite on non-COW resolution")
	}
}

// conventionalFork is fork under conventional sharing: every page goes
// copy-on-write and the parent's stale TLB entries are flushed.
func (f *Framework) conventionalFork(parent *vm.Process) *vm.Process {
	child := f.VM.Fork(parent, false)
	for _, p := range f.ports {
		p.TLB.FlushPID(parent.PID)
	}
	return child
}
