package core

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/vm"
)

// testConfig shrinks memory so tests run fast.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.MemoryPages = 4096
	cfg.OMSInitialFrames = 4
	return cfg
}

func newFW(t *testing.T) *Framework {
	t.Helper()
	f, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func mustMap(t *testing.T, f *Framework, p *vm.Process, vpn arch.VPN, n int) {
	t.Helper()
	if err := f.VM.MapAnon(p, vpn, n); err != nil {
		t.Fatal(err)
	}
}

func TestPlainLoadStoreRoundTrip(t *testing.T) {
	f := newFW(t)
	p := f.VM.NewProcess()
	mustMap(t, f, p, 0, 2)
	data := []byte("the quick brown fox jumps over the lazy dog")
	if err := f.Store(p.PID, 100, data); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(data))
	if err := f.Load(p.PID, 100, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != string(data) {
		t.Fatalf("round trip = %q", buf)
	}
}

func TestLoadFaults(t *testing.T) {
	f := newFW(t)
	p := f.VM.NewProcess()
	if err := f.Load(p.PID, 0, make([]byte, 1)); err == nil {
		t.Fatal("expected fault")
	}
	if err := f.Store(99, 0, []byte{1}); err == nil {
		t.Fatal("expected no-process error")
	}
}

func TestOverlayOnWriteCreatesOverlayNotCopy(t *testing.T) {
	f := newFW(t)
	parent := f.VM.NewProcess()
	mustMap(t, f, parent, 0, 1)
	f.Store(parent.PID, 0, []byte{1, 2, 3})
	child := f.Fork(parent, true)

	framesBefore := f.Mem.AllocatedPages()
	if err := f.Store(parent.PID, 0, []byte{9}); err != nil {
		t.Fatal(err)
	}
	if f.Mem.AllocatedPages() != framesBefore {
		t.Fatal("overlay-on-write must not allocate a full frame")
	}
	if f.Engine.Stats.Get("core.overlaying_writes") != 1 {
		t.Fatalf("overlaying_writes = %d", f.Engine.Stats.Get("core.overlaying_writes"))
	}
	obits, bytes := f.OverlayInfo(parent.PID, 0)
	if obits.Count() != 1 || !obits.Has(0) {
		t.Fatalf("OBits = %s", obits)
	}
	if bytes != 256 {
		t.Fatalf("overlay segment = %d bytes, want 256", bytes)
	}

	// Parent sees the new value; child sees the original.
	var pb, cb [3]byte
	f.Load(parent.PID, 0, pb[:])
	f.Load(child.PID, 0, cb[:])
	if pb != [3]byte{9, 2, 3} {
		t.Fatalf("parent = %v", pb)
	}
	if cb != [3]byte{1, 2, 3} {
		t.Fatalf("child = %v", cb)
	}
}

func TestOverlayingWritePreservesRestOfLine(t *testing.T) {
	// The overlaying write copies the source line before the store lands:
	// untouched bytes of the same line must keep their pre-fork values.
	f := newFW(t)
	parent := f.VM.NewProcess()
	mustMap(t, f, parent, 0, 1)
	line := make([]byte, arch.LineSize)
	for i := range line {
		line[i] = byte(i + 1)
	}
	f.Store(parent.PID, 0, line)
	f.Fork(parent, true)
	f.Store(parent.PID, 5, []byte{0xaa})

	got := make([]byte, arch.LineSize)
	f.Load(parent.PID, 0, got)
	for i := range got {
		want := byte(i + 1)
		if i == 5 {
			want = 0xaa
		}
		if got[i] != want {
			t.Fatalf("byte %d = %#x, want %#x", i, got[i], want)
		}
	}
}

func TestSimpleWriteAfterOverlaying(t *testing.T) {
	f := newFW(t)
	parent := f.VM.NewProcess()
	mustMap(t, f, parent, 0, 1)
	f.Fork(parent, true)
	f.Store(parent.PID, 0, []byte{1})
	f.Store(parent.PID, 1, []byte{2}) // same line → simple write
	if f.Engine.Stats.Get("core.overlaying_writes") != 1 {
		t.Fatal("second store should not re-overlay")
	}
	if f.Engine.Stats.Get("core.simple_overlay_writes") != 1 {
		t.Fatal("second store should be a simple overlay write")
	}
	var b [2]byte
	f.Load(parent.PID, 0, b[:])
	if b != [2]byte{1, 2} {
		t.Fatalf("loaded %v", b)
	}
}

func TestConventionalCOWStillWorks(t *testing.T) {
	f := newFW(t)
	parent := f.VM.NewProcess()
	mustMap(t, f, parent, 0, 1)
	f.Store(parent.PID, 64, []byte{7})
	child := f.Fork(parent, false)

	framesBefore := f.Mem.AllocatedPages()
	f.Store(parent.PID, 64, []byte{8})
	if f.Mem.AllocatedPages() != framesBefore+1 {
		t.Fatal("conventional COW must copy a full frame")
	}
	if f.Engine.Stats.Get("core.cow_page_copies") != 1 {
		t.Fatal("copy not counted")
	}
	var pb, cb [1]byte
	f.Load(parent.PID, 64, pb[:])
	f.Load(child.PID, 64, cb[:])
	if pb[0] != 8 || cb[0] != 7 {
		t.Fatalf("isolation: parent=%d child=%d", pb[0], cb[0])
	}
}

func TestOverlayGrowsAcrossSegmentSizes(t *testing.T) {
	f := newFW(t)
	parent := f.VM.NewProcess()
	mustMap(t, f, parent, 0, 1)
	base := make([]byte, arch.PageSize)
	for i := range base {
		base[i] = byte(i % 251)
	}
	f.Store(parent.PID, 0, base)
	f.Fork(parent, true)

	// Touch every line: overlay must migrate 256B → … → 4KB and keep data.
	for line := 0; line < arch.LinesPerPage; line++ {
		f.Store(parent.PID, arch.VirtAddr(line*arch.LineSize), []byte{byte(line)})
	}
	obits, bytes := f.OverlayInfo(parent.PID, 0)
	if !obits.Full() {
		t.Fatalf("OBits not full: %s", obits)
	}
	if bytes != arch.PageSize {
		t.Fatalf("segment bytes = %d, want 4096", bytes)
	}
	got := make([]byte, arch.PageSize)
	f.Load(parent.PID, 0, got)
	for i := range got {
		want := byte(i % 251)
		if i%arch.LineSize == 0 {
			want = byte(i / arch.LineSize)
		}
		if got[i] != want {
			t.Fatalf("byte %d = %d, want %d", i, got[i], want)
		}
	}
}

func TestSparseZeroPageOverlay(t *testing.T) {
	// §5.2: map pages to the zero page with overlays for non-zero lines.
	f := newFW(t)
	p := f.VM.NewProcess()
	f.VM.MapZero(p, 0, 4, true)

	// Reads of untouched pages are all zero and allocate nothing.
	buf := make([]byte, 128)
	f.Load(p.PID, 3*arch.PageSize, buf)
	for _, b := range buf {
		if b != 0 {
			t.Fatal("zero mapping returned non-zero")
		}
	}
	frames := f.Mem.AllocatedPages()
	f.Store(p.PID, 2*arch.PageSize+300, []byte{42})
	if f.Mem.AllocatedPages() != frames {
		t.Fatal("sparse write allocated a frame")
	}
	var b [1]byte
	f.Load(p.PID, 2*arch.PageSize+300, b[:])
	if b[0] != 42 {
		t.Fatalf("read back %d", b[0])
	}
	// Neighbouring bytes in the same line are zero (copied from zero page).
	f.Load(p.PID, 2*arch.PageSize+301, b[:])
	if b[0] != 0 {
		t.Fatal("neighbour byte dirty")
	}
}

func TestPromoteCopyAndCommit(t *testing.T) {
	f := newFW(t)
	parent := f.VM.NewProcess()
	mustMap(t, f, parent, 0, 1)
	f.Store(parent.PID, 0, []byte{1, 1, 1})
	child := f.Fork(parent, true)
	f.Store(parent.PID, 0, []byte{9})
	f.Store(parent.PID, 200, []byte{8})

	if err := f.Promote(parent, 0, CopyAndCommit); err != nil {
		t.Fatal(err)
	}
	obits, bytes := f.OverlayInfo(parent.PID, 0)
	if obits != 0 || bytes != 0 {
		t.Fatal("overlay state not cleared")
	}
	// Data preserved: overlay values on top of pre-fork values.
	var b [3]byte
	f.Load(parent.PID, 0, b[:])
	if b != [3]byte{9, 1, 1} {
		t.Fatalf("parent after promote = %v", b)
	}
	var c [1]byte
	f.Load(parent.PID, 200, c[:])
	if c[0] != 8 {
		t.Fatal("overlay line lost")
	}
	// Child untouched.
	f.Load(child.PID, 0, b[:])
	if b != [3]byte{1, 1, 1} {
		t.Fatalf("child = %v", b)
	}
	// Parent is now writable in place: further stores are plain.
	f.Store(parent.PID, 0, []byte{5})
	if f.Engine.Stats.Get("core.plain_writes") == 0 {
		t.Fatal("post-promote store not plain")
	}
}

func TestPromoteCommitAndDiscard(t *testing.T) {
	f := newFW(t)
	p := f.VM.NewProcess()
	mustMap(t, f, p, 0, 1)
	f.Store(p.PID, 0, []byte{1})

	// Speculation-style: mark the private page COW+Overlay.
	pte := p.Table.Lookup(0)
	pte.COW = true
	pte.Writable = false
	pte.Overlay = true

	f.Store(p.PID, 0, []byte{2}) // buffered in overlay
	var b [1]byte
	f.Load(p.PID, 0, b[:])
	if b[0] != 2 {
		t.Fatal("overlay value not visible")
	}

	// Discard: revert to 1.
	if err := f.Promote(p, 0, Discard); err != nil {
		t.Fatal(err)
	}
	f.Load(p.PID, 0, b[:])
	if b[0] != 1 {
		t.Fatalf("after discard = %d, want 1", b[0])
	}

	// Again with commit: value persists onto the physical page.
	pte = p.Table.Lookup(0)
	pte.COW = true
	pte.Writable = false
	pte.Overlay = true
	f.Store(p.PID, 0, []byte{3})
	if err := f.Promote(p, 0, Commit); err != nil {
		t.Fatal(err)
	}
	f.Load(p.PID, 0, b[:])
	if b[0] != 3 {
		t.Fatalf("after commit = %d, want 3", b[0])
	}
	if _, bytes := f.OverlayInfo(p.PID, 0); bytes != 0 {
		t.Fatal("segment not freed")
	}
}

func TestPromoteErrors(t *testing.T) {
	f := newFW(t)
	p := f.VM.NewProcess()
	if err := f.Promote(p, 0, Commit); err == nil {
		t.Fatal("promote of unmapped page must fail")
	}
	mustMap(t, f, p, 0, 1)
	if err := f.Promote(p, 0, Commit); err == nil {
		t.Fatal("commit with no overlay must fail")
	}
	if err := f.Promote(p, 0, Discard); err == nil {
		t.Fatal("discard with no overlay must fail")
	}
	// Commit onto a shared page is rejected.
	f.Fork(p, true)
	f.Store(p.PID, 0, []byte{1})
	if err := f.Promote(p, 0, Commit); err == nil {
		t.Fatal("commit onto shared page must fail")
	}
	// CopyAndCommit succeeds there.
	if err := f.Promote(p, 0, CopyAndCommit); err != nil {
		t.Fatal(err)
	}
}

func TestShadowMetadata(t *testing.T) {
	f := newFW(t)
	p := f.VM.NewProcess()
	mustMap(t, f, p, 0, 1)
	pte := p.Table.Lookup(0)
	pte.Shadow = true

	f.Store(p.PID, 0, []byte{7}) // data write, plain
	var meta [4]byte
	if err := f.ShadowLoad(p.PID, 0, meta[:]); err != nil {
		t.Fatal(err)
	}
	if meta != [4]byte{} {
		t.Fatal("unwritten metadata must read zero")
	}
	if err := f.ShadowStore(p.PID, 0, []byte{0xff, 0xee}); err != nil {
		t.Fatal(err)
	}
	f.ShadowLoad(p.PID, 0, meta[:])
	if meta[0] != 0xff || meta[1] != 0xee || meta[2] != 0 {
		t.Fatalf("metadata = %v", meta)
	}
	// Data is unaffected by metadata writes and vice versa.
	var b [1]byte
	f.Load(p.PID, 0, b[:])
	if b[0] != 7 {
		t.Fatalf("data = %d, want 7", b[0])
	}
	f.Store(p.PID, 0, []byte{8})
	f.ShadowLoad(p.PID, 0, meta[:1])
	if meta[0] != 0xff {
		t.Fatal("data write clobbered metadata")
	}
}

func TestShadowRejectsNonShadowPages(t *testing.T) {
	f := newFW(t)
	p := f.VM.NewProcess()
	mustMap(t, f, p, 0, 1)
	if err := f.ShadowStore(p.PID, 0, []byte{1}); err == nil {
		t.Fatal("expected error on non-shadow page")
	}
	if err := f.ShadowLoad(p.PID, 0, make([]byte, 1)); err == nil {
		t.Fatal("expected error on non-shadow page")
	}
}

func TestStoreAcrossLineAndPageBoundaries(t *testing.T) {
	f := newFW(t)
	parent := f.VM.NewProcess()
	mustMap(t, f, parent, 0, 2)
	f.Fork(parent, true)
	data := make([]byte, 200)
	for i := range data {
		data[i] = byte(i)
	}
	va := arch.VirtAddr(arch.PageSize - 100)
	if err := f.Store(parent.PID, va, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 200)
	f.Load(parent.PID, va, got)
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("byte %d: %d != %d", i, got[i], data[i])
		}
	}
	// Both pages have overlays now.
	o0, _ := f.OverlayInfo(parent.PID, 0)
	o1, _ := f.OverlayInfo(parent.PID, 1)
	if o0 == 0 || o1 == 0 {
		t.Fatal("expected overlays on both pages")
	}
}

func TestForkFlushesParentTLB(t *testing.T) {
	f := newFW(t)
	port := f.NewPort()
	parent := f.VM.NewProcess()
	mustMap(t, f, parent, 0, 1)

	done := false
	port.Write(parent.PID, 0, func() { done = true })
	f.Engine.Run()
	if !done {
		t.Fatal("write never completed")
	}
	e, ok := port.TLB.Peek(parent.PID, 0)
	if !ok || !e.Writable {
		t.Fatal("expected cached writable entry")
	}
	f.Fork(parent, true)
	if _, ok := port.TLB.Peek(parent.PID, 0); ok {
		t.Fatal("stale TLB entry survived fork")
	}
}

func TestForkCopiesParentOverlay(t *testing.T) {
	// §4.1: no two virtual pages share an overlay, so fork must copy the
	// parent's overlay lines into a per-child overlay — the child sees
	// the parent's fork-time contents, including overlaid lines.
	f := newFW(t)
	gen1 := f.VM.NewProcess()
	mustMap(t, f, gen1, 0, 1)
	f.Store(gen1.PID, 0, []byte{1})
	f.Fork(gen1, true)
	f.Store(gen1.PID, 0, []byte{2}) // now in gen1's overlay

	gen3 := f.Fork(gen1, true)
	obits, _ := f.OverlayInfo(gen3.PID, 0)
	if !obits.Has(0) {
		t.Fatal("child did not inherit the parent's overlay line")
	}
	var b [1]byte
	f.Load(gen3.PID, 0, b[:])
	if b[0] != 2 {
		t.Fatalf("child sees %d, want the parent's overlaid value 2", b[0])
	}
	// Divergence after the fork stays isolated in both directions.
	f.Store(gen1.PID, 0, []byte{3})
	f.Load(gen3.PID, 0, b[:])
	if b[0] != 2 {
		t.Fatal("parent's post-fork write leaked into child")
	}
	f.Store(gen3.PID, 0, []byte{4})
	f.Load(gen1.PID, 0, b[:])
	if b[0] != 3 {
		t.Fatal("child's write leaked into parent")
	}
}

func TestExitReleasesOverlays(t *testing.T) {
	f := newFW(t)
	parent := f.VM.NewProcess()
	mustMap(t, f, parent, 0, 2)
	child := f.Fork(parent, true)
	f.Store(child.PID, 0, []byte{1})
	f.Store(child.PID, arch.PageSize, []byte{2})
	if f.OMS.LiveSegments() == 0 {
		t.Fatal("expected live overlay segments")
	}
	f.Exit(child)
	if f.OMS.LiveSegments() != 0 {
		t.Fatalf("exit leaked %d overlay segments", f.OMS.LiveSegments())
	}
	// Parent still intact.
	var b [1]byte
	f.Load(parent.PID, 0, b[:])
	if b[0] != 0 {
		t.Fatal("parent corrupted by child exit")
	}
}
