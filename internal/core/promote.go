package core

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/vm"
)

// PromoteAction selects how an overlay is converted back to a regular
// physical page (§4.3.4).
type PromoteAction int

const (
	// CopyAndCommit copies the regular physical page to a fresh page,
	// applies the overlay on top, and remaps the virtual page there.
	// Overlay-on-write uses this when an overlay grows too dense.
	CopyAndCommit PromoteAction = iota
	// Commit applies the overlay lines onto the regular physical page in
	// place (speculation success, checkpoint commit).
	Commit
	// Discard drops the overlay; the page reverts to the regular physical
	// page's contents (speculation abort).
	Discard
)

func (a PromoteAction) String() string {
	switch a {
	case CopyAndCommit:
		return "copy-and-commit"
	case Commit:
		return "commit"
	case Discard:
		return "discard"
	}
	return fmt.Sprintf("PromoteAction(%d)", int(a))
}

// Promote applies the chosen action to (proc, vpn)'s overlay and clears
// all overlay state for the page: the OMT entry, the OMT cache, every
// TLB's OBitVector, the Overlay Memory Store segment, and any overlay
// lines in the cache hierarchy. Promoting a page with no overlay is an
// error for Commit/Discard and permitted for CopyAndCommit (it degrades
// to a plain COW break).
func (f *Framework) Promote(proc *vm.Process, vpn arch.VPN, action PromoteAction) error {
	pte := proc.Table.Lookup(vpn)
	if pte == nil {
		return fmt.Errorf("core: promote of unmapped vpn %#x", uint64(vpn))
	}
	opn := arch.OverlayPage(proc.PID, vpn)
	entry := f.OMTTable.Get(opn)
	if tr := f.Engine.Trace; tr != nil {
		tr.Emit(f.Engine.Now(), "promote", action.String(),
			sim.TraceArg{Key: "pid", Val: uint64(proc.PID)},
			sim.TraceArg{Key: "vpn", Val: uint64(vpn)},
			sim.TraceArg{Key: "lines", Val: uint64(entry.OBits.Count())})
	}

	switch action {
	case CopyAndCommit:
		newPPN, err := f.Mem.Alloc()
		if err != nil {
			return fmt.Errorf("core: promote: %w", err)
		}
		f.Mem.CopyPage(newPPN, pte.PPN)
		f.applyOverlayOnto(opn, newPPN)
		if err := f.VM.ReplaceFrame(proc, vpn, newPPN); err != nil {
			return err
		}
		f.Engine.Stats.Inc("core.promote_copy_and_commit")

	case Commit:
		if entry.Empty() {
			return fmt.Errorf("core: commit of vpn %#x with no overlay", uint64(vpn))
		}
		if f.VM.Refs(pte.PPN) > 1 || pte.PPN == mem.ZeroPPN {
			return fmt.Errorf("core: commit onto shared page vpn %#x", uint64(vpn))
		}
		f.applyOverlayOnto(opn, pte.PPN)
		pte.COW = false
		pte.Writable = true
		f.Engine.Stats.Inc("core.promote_commit")

	case Discard:
		if entry.Empty() {
			return fmt.Errorf("core: discard of vpn %#x with no overlay", uint64(vpn))
		}
		f.Engine.Stats.Inc("core.promote_discard")

	default:
		return fmt.Errorf("core: unknown promote action %v", action)
	}

	f.clearOverlay(proc.PID, vpn)
	return nil
}

// applyOverlayOnto copies every overlay line's bytes onto the frame.
func (f *Framework) applyOverlayOnto(opn arch.OPN, dst arch.PPN) {
	entry := f.OMTTable.Get(opn)
	if entry.SegBase == 0 {
		return
	}
	if entry.SegBase.IsCold() {
		base, _, err := f.OMS.Resolve(entry.SegBase)
		if err != nil {
			panic(fmt.Sprintf("core: promote refill for opn %#x: %v", uint64(opn), err))
		}
		f.OMTTable.Ref(opn).SegBase = base
		entry.SegBase = base
	}
	var buf [arch.LineSize]byte
	for _, line := range entry.OBits.Lines() {
		slot, ok := f.OMS.LocateLine(entry.SegBase, line)
		if !ok {
			continue
		}
		f.OMS.ReadLineData(slot, buf[:])
		f.Mem.WriteLine(dst, line, buf[:])
	}
}

// clearOverlay releases every piece of overlay state for the page.
func (f *Framework) clearOverlay(pid arch.PID, vpn arch.VPN) {
	opn := arch.OverlayPage(pid, vpn)
	entry := f.OMTTable.Get(opn)
	for _, line := range entry.OBits.Lines() {
		f.Hier.Invalidate(opn.LineAddr(line))
		for _, p := range f.ports {
			p.TLB.UpdateLine(pid, vpn, line, false)
		}
	}
	if entry.SegBase != 0 {
		f.OMS.FreeSegment(entry.SegBase)
	}
	f.OMTTable.Delete(opn)
	f.OMTCache.Invalidate(opn)
	for _, p := range f.ports {
		p.TLB.Invalidate(pid, vpn)
	}
}
