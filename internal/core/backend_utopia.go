package core

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/sim"
	"repro/internal/tlb"
	"repro/internal/vm"
)

// utopiaBackend models Utopia (Kanellopoulos et al., MICRO 2023): a
// hybrid address space in which most pages live in a restrictive set
// (RestSeg) whose physical location is computable from a hash of the
// virtual address — a TLB miss there costs a short computed walk instead
// of the 4-level table walk — while pages that cannot claim a RestSeg
// slot fall back to conventional flexible mappings and pay the full
// walk. Utopia changes nothing about the data path or copy-on-write
// mechanics: stores, COW traps, and shootdowns are exactly the baseline
// control's. What it accelerates is translation, so its wins show up in
// TLB-miss-heavy phases (fresh address spaces after fork, sparse walks).
//
// The model claims a RestSeg slot the first time a page is walked
// (set-associative by hash, first-come first-served, never evicted) and
// prices every later walk of that page at UtopiaRestWalkLatency.
type utopiaBackend struct {
	f *Framework

	rest    [][]restWay
	claimed int // live RestSeg entries (metadata accounting)

	restWalks *uint64
	flexWalks *uint64
	claims    *uint64
}

type restWay struct {
	valid bool
	pid   arch.PID
	vpn   arch.VPN
}

func init() {
	RegisterBackend("utopia", func(f *Framework) TranslationBackend {
		b := &utopiaBackend{
			f:         f,
			restWalks: f.Engine.Stats.Counter("utopia.rest_walks"),
			flexWalks: f.Engine.Stats.Counter("utopia.flex_walks"),
			claims:    f.Engine.Stats.Counter("utopia.restseg_claims"),
		}
		sets, ways := f.Config.UtopiaRestSets, f.Config.UtopiaRestWays
		if sets < 1 {
			sets = 1
		}
		if ways < 1 {
			ways = 1
		}
		b.rest = make([][]restWay, sets)
		backing := make([]restWay, sets*ways)
		for i := range b.rest {
			b.rest[i], backing = backing[:ways], backing[ways:]
		}
		return b
	})
}

func (b *utopiaBackend) Name() string { return "utopia" }

func (b *utopiaBackend) restSet(pid arch.PID, vpn arch.VPN) []restWay {
	h := (uint64(vpn) ^ uint64(pid)<<4) % uint64(len(b.rest))
	return b.rest[h]
}

// restWalkCost reports whether (pid, vpn) translates through the
// RestSeg, claiming a slot on the page's first walk if one is free.
func (b *utopiaBackend) restResident(pid arch.PID, vpn arch.VPN) bool {
	s := b.restSet(pid, vpn)
	for i := range s {
		if s[i].valid && s[i].pid == pid && s[i].vpn == vpn {
			return true
		}
	}
	for i := range s {
		if !s[i].valid {
			s[i] = restWay{valid: true, pid: pid, vpn: vpn}
			b.claimed++
			*b.claims++
			return true
		}
	}
	return false
}

// Walk resolves conventionally but prices the walk by where the page
// lives: RestSeg residents pay the short computed walk, the rest the
// full flexible walk.
func (b *utopiaBackend) Walk(pid arch.PID, vpn arch.VPN) (tlb.Entry, sim.Cycle, bool) {
	f := b.f
	e, ok := f.conventionalWalk(pid, vpn)
	if !ok {
		return tlb.Entry{}, f.Config.TLB.WalkLatency, false
	}
	if b.restResident(pid, vpn) {
		*b.restWalks++
		return e, f.Config.UtopiaRestWalkLatency, true
	}
	*b.flexWalks++
	return e, f.Config.TLB.WalkLatency, true
}

func (b *utopiaBackend) ReadTarget(p *Port, pid arch.PID, va arch.VirtAddr) (arch.PhysAddr, sim.Cycle) {
	entry, lat, ok := p.TLB.Lookup(pid, va.Page())
	if !ok {
		panic(fmt.Sprintf("core: timed read fault at pid %d va %#x", pid, uint64(va)))
	}
	return arch.PhysAddrOf(entry.PPN, uint64(va.Line())<<arch.LineShift), lat
}

func (b *utopiaBackend) WriteLatency(p *Port, pid arch.PID, va arch.VirtAddr) sim.Cycle {
	_, lat, ok := p.TLB.Lookup(pid, va.Page())
	if !ok {
		panic(fmt.Sprintf("core: timed write fault at pid %d va %#x", pid, uint64(va)))
	}
	return lat
}

func (b *utopiaBackend) Write(p *Port, pid arch.PID, va arch.VirtAddr, done sim.Cont) {
	f := b.f
	proc, ok := f.VM.Process(pid)
	if !ok {
		panic(fmt.Sprintf("core: no process %d", pid))
	}
	vpn, line := va.Page(), va.Line()
	res, err := f.conventionalResolveWrite(proc, vpn, line)
	if err != nil {
		panic(err)
	}
	switch res.kind {
	case writePlain:
		f.Hier.AccessCont(res.loc.cacheAddr, true, done)
	case writeCOWCopy, writeCOWReuse:
		f.timedCOWWrite(p, pid, vpn, res, done)
	default:
		panic("core: unknown write kind")
	}
}

func (b *utopiaBackend) ResolveRead(proc *vm.Process, vpn arch.VPN, line int) (lineLoc, error) {
	return b.f.conventionalResolveRead(proc, vpn, line)
}

func (b *utopiaBackend) ResolveWrite(proc *vm.Process, vpn arch.VPN, line int) (writeResolution, error) {
	return b.f.conventionalResolveWrite(proc, vpn, line)
}

func (b *utopiaBackend) Fetch(addr arch.PhysAddr, done sim.Cont) {
	b.f.DRAM.ReadCont(addr, done)
}

func (b *utopiaBackend) WriteBack(addr arch.PhysAddr) {
	b.f.DRAM.Write(addr, nil)
}

func (b *utopiaBackend) OnMiss(addr arch.PhysAddr) {
	b.f.Prefetch.OnMiss(addr)
}

func (b *utopiaBackend) Fork(parent *vm.Process, overlayMode bool) *vm.Process {
	return b.f.conventionalFork(parent)
}

// MetadataBytes models the flexible page tables (8 B per mapped PTE)
// plus the RestSeg tag store (4 B per claimed entry).
func (b *utopiaBackend) MetadataBytes() int {
	return b.f.VM.MappedPages()*8 + b.claimed*4
}

// utopiaSnapshot carries the RestSeg claims across Snapshot/
// NewFromSnapshot.
type utopiaSnapshot struct {
	rest    [][]restWay
	claimed int
}

func (b *utopiaBackend) SnapshotState() any {
	ways := len(b.rest[0])
	s := &utopiaSnapshot{claimed: b.claimed, rest: make([][]restWay, len(b.rest))}
	backing := make([]restWay, len(b.rest)*ways)
	for i := range b.rest {
		s.rest[i], backing = backing[:ways], backing[ways:]
		copy(s.rest[i], b.rest[i])
	}
	return s
}

func (b *utopiaBackend) RestoreState(state any) {
	if state == nil {
		return
	}
	s := state.(*utopiaSnapshot)
	b.claimed = s.claimed
	for i := range s.rest {
		copy(b.rest[i], s.rest[i])
	}
}
