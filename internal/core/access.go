package core

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/mem"
	"repro/internal/oms"
	"repro/internal/omt"
	"repro/internal/sim"
	"repro/internal/vm"
)

// This file implements the framework's functional access semantics
// (Figure 2): a cache line present in a page's overlay is accessed from
// the overlay; every other line is accessed from the regular physical
// page. The structural helpers here are shared with the timed path in
// timed.go, so timed and functional accesses observe identical state.

// lineLoc describes where one cache line's bytes live.
type lineLoc struct {
	cacheAddr arch.PhysAddr // address as tagged in the processor caches
	ppn       arch.PPN      // main-memory frame holding the bytes
	off       uint64        // byte offset of the line within that frame
	overlay   bool
}

func physLineLoc(ppn arch.PPN, line int) lineLoc {
	off := uint64(line) << arch.LineShift
	return lineLoc{cacheAddr: arch.PhysAddrOf(ppn, off), ppn: ppn, off: off}
}

func (f *Framework) overlayLineLoc(opn arch.OPN, entry *omt.Entry, line int) (lineLoc, error) {
	slot, ok := f.OMS.LocateLine(entry.SegBase, line)
	if !ok {
		return lineLoc{}, fmt.Errorf("core: overlay line %d of opn %#x has no slot", line, uint64(opn))
	}
	return lineLoc{
		cacheAddr: opn.LineAddr(line),
		ppn:       arch.PPN(slot.Page()),
		off:       uint64(slot) & arch.PageMask,
		overlay:   true,
	}, nil
}

// resolveRead locates the bytes a load of (pid, vpn, line) must return.
func (f *Framework) resolveRead(proc *vm.Process, vpn arch.VPN, line int) (lineLoc, error) {
	pte := proc.Table.Lookup(vpn)
	if pte == nil {
		return lineLoc{}, fmt.Errorf("core: read fault at pid %d vpn %#x", proc.PID, uint64(vpn))
	}
	if pte.Overlay && !pte.Shadow {
		opn := arch.OverlayPage(proc.PID, vpn)
		entry := f.OMTTable.Get(opn)
		if entry.OBits.Has(line) {
			return f.overlayLineLoc(opn, f.OMTTable.Ref(opn), line)
		}
	}
	return physLineLoc(pte.PPN, line), nil
}

// writeKind classifies what a store to a line required (§4.3).
type writeKind int

const (
	// writePlain hits a writable page with no overlay involvement.
	writePlain writeKind = iota
	// writeSimpleOverlay updates a line already in the overlay (§4.3.2).
	writeSimpleOverlay
	// writeOverlaying remaps the line into the overlay (§4.3.3).
	writeOverlaying
	// writeCOWCopy is the conventional copy-on-write resolution: full page
	// copy plus remap plus TLB shootdown (§2.2).
	writeCOWCopy
	// writeCOWReuse is a conventional COW fault where this process was the
	// last sharer, so only permissions change.
	writeCOWReuse
)

// writeResolution reports where a store landed and what it cost.
type writeResolution struct {
	kind writeKind
	loc  lineLoc
	// srcCacheAddr is set for writeOverlaying (the regular physical line
	// the data was remapped from) and writeCOWCopy (line 0 of the source
	// page; the timed path reads all 64 lines of that page).
	srcCacheAddr arch.PhysAddr
}

// resolveWrite performs the structural state changes a store to
// (proc, vpn, line) requires — overlay creation, OMT/TLB updates, or a
// conventional COW page copy — and reports what happened. It does not
// write the payload bytes.
func (f *Framework) resolveWrite(proc *vm.Process, vpn arch.VPN, line int) (writeResolution, error) {
	pte := proc.Table.Lookup(vpn)
	if pte == nil {
		return writeResolution{}, fmt.Errorf("core: write fault at pid %d vpn %#x", proc.PID, uint64(vpn))
	}
	opn := arch.OverlayPage(proc.PID, vpn)

	if pte.Overlay && !pte.Shadow {
		entry := f.OMTTable.Ref(opn)
		if entry.OBits.Has(line) {
			loc, err := f.overlayLineLoc(opn, entry, line)
			if err != nil {
				return writeResolution{}, err
			}
			*f.simpleOvlWrites++
			return writeResolution{kind: writeSimpleOverlay, loc: loc}, nil
		}
		if pte.COW || !pte.Writable {
			// Overlaying write: copy the line into a fresh overlay slot and
			// remap it with a single-line coherence update.
			src := physLineLoc(pte.PPN, line)
			loc, err := f.overlayInsert(proc.PID, vpn, entry, line, &pte.PPN)
			if err != nil {
				return writeResolution{}, err
			}
			*f.overlayingWr++
			return writeResolution{kind: writeOverlaying, loc: loc, srcCacheAddr: src.cacheAddr}, nil
		}
		// Overlay-enabled but writable and line not in overlay: plain.
		*f.plainWrites++
		return writeResolution{kind: writePlain, loc: physLineLoc(pte.PPN, line)}, nil
	}

	if pte.Writable {
		*f.plainWrites++
		return writeResolution{kind: writePlain, loc: physLineLoc(pte.PPN, line)}, nil
	}
	if pte.COW {
		oldPPN := pte.PPN
		_, copied, err := f.VM.BreakCOW(proc, vpn)
		if err != nil {
			return writeResolution{}, err
		}
		pte = proc.Table.Lookup(vpn)
		res := writeResolution{
			loc:          physLineLoc(pte.PPN, line),
			srcCacheAddr: arch.PhysAddrOf(oldPPN, 0),
		}
		if copied {
			res.kind = writeCOWCopy
			*f.cowCopies++
		} else {
			res.kind = writeCOWReuse
			*f.cowReuses++
		}
		return res, nil
	}
	return writeResolution{}, fmt.Errorf("core: protection fault: write to read-only pid %d vpn %#x", proc.PID, uint64(vpn))
}

// overlayInsert adds `line` to the page's overlay: it allocates or grows
// the Overlay Memory Store segment, optionally initialises the slot from
// the regular physical page, sets the OBitVector bit in the OMT, and
// broadcasts the single-line TLB update. Idempotent for present lines.
func (f *Framework) overlayInsert(pid arch.PID, vpn arch.VPN, entry *omt.Entry, line int, initFrom *arch.PPN) (lineLoc, error) {
	opn := arch.OverlayPage(pid, vpn)
	if entry.OBits.Has(line) {
		return f.overlayLineLoc(opn, entry, line)
	}
	if entry.SegBase == 0 {
		if tr := f.Engine.Trace; tr != nil {
			tr.Emit(f.Engine.Now(), "overlay", "create",
				sim.TraceArg{Key: "pid", Val: uint64(pid)},
				sim.TraceArg{Key: "vpn", Val: uint64(vpn)})
		}
		base, err := f.OMS.AllocSegment(oms.ClassFor(1))
		if err != nil {
			return lineLoc{}, fmt.Errorf("core: overlay alloc: %w", err)
		}
		entry.SegBase = base
	}
	slot, full := f.OMS.InsertLine(entry.SegBase, line)
	if full {
		newBase, err := f.OMS.Migrate(entry.SegBase, entry.OBits)
		if err != nil {
			return lineLoc{}, fmt.Errorf("core: overlay migrate: %w", err)
		}
		entry.SegBase = newBase
		slot, full = f.OMS.InsertLine(entry.SegBase, line)
		if full {
			return lineLoc{}, fmt.Errorf("core: segment still full after migration")
		}
	}
	if initFrom != nil {
		var buf [arch.LineSize]byte
		f.Mem.ReadLine(*initFrom, line, buf[:])
		f.OMS.WriteLineData(slot, buf[:])
	}
	entry.OBits = entry.OBits.Set(line)
	f.broadcastLineUpdate(pid, vpn, line, true)
	return lineLoc{
		cacheAddr: opn.LineAddr(line),
		ppn:       arch.PPN(slot.Page()),
		off:       uint64(slot) & arch.PageMask,
		overlay:   true,
	}, nil
}

// Load copies len(buf) bytes at (pid, va) into buf under overlay
// semantics. It is the functional (untimed) read path.
func (f *Framework) Load(pid arch.PID, va arch.VirtAddr, buf []byte) error {
	proc, ok := f.VM.Process(pid)
	if !ok {
		return fmt.Errorf("core: no process %d", pid)
	}
	for n := 0; n < len(buf); {
		a := va + arch.VirtAddr(n)
		loc, err := f.resolveRead(proc, a.Page(), a.Line())
		if err != nil {
			return err
		}
		span := int(arch.LineSize - a.LineOffset())
		if span > len(buf)-n {
			span = len(buf) - n
		}
		f.Mem.ReadSpan(loc.ppn, loc.off+a.LineOffset(), buf[n:n+span])
		n += span
	}
	return nil
}

// Store writes data at (pid, va) under overlay semantics, creating
// overlays or breaking COW exactly as the hardware/OS would. It is the
// functional (untimed) write path.
func (f *Framework) Store(pid arch.PID, va arch.VirtAddr, data []byte) error {
	proc, ok := f.VM.Process(pid)
	if !ok {
		return fmt.Errorf("core: no process %d", pid)
	}
	for n := 0; n < len(data); {
		a := va + arch.VirtAddr(n)
		res, err := f.resolveWrite(proc, a.Page(), a.Line())
		if err != nil {
			return err
		}
		span := int(arch.LineSize - a.LineOffset())
		if span > len(data)-n {
			span = len(data) - n
		}
		if res.loc.ppn == mem.ZeroPPN {
			return fmt.Errorf("core: write resolved to the zero page at %#x", uint64(a))
		}
		f.Mem.WriteSpan(res.loc.ppn, res.loc.off+a.LineOffset(), data[n:n+span])
		n += span
	}
	return nil
}

// Load64 and Store64 are word-sized conveniences used heavily by the
// sparse-matrix engine.
func (f *Framework) Load64(pid arch.PID, va arch.VirtAddr) (uint64, error) {
	var buf [8]byte
	if err := f.Load(pid, va, buf[:]); err != nil {
		return 0, err
	}
	var v uint64
	for i := uint(0); i < 8; i++ {
		v |= uint64(buf[i]) << (8 * i)
	}
	return v, nil
}

func (f *Framework) Store64(pid arch.PID, va arch.VirtAddr, v uint64) error {
	var buf [8]byte
	for i := uint(0); i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
	}
	return f.Store(pid, va, buf[:])
}

// Fork clones the process with either conventional copy-on-write
// (overlayMode=false) or overlay-on-write (overlayMode=true) semantics,
// flushing the parent's now-stale TLB entries. Because no two virtual
// pages may share an overlay (§4.1), any overlay lines the parent already
// has are copied into per-child overlays so the child observes the
// parent's full fork-time contents.
func (f *Framework) Fork(parent *vm.Process, overlayMode bool) *vm.Process {
	child := f.VM.Fork(parent, overlayMode)
	var copyErr error
	parent.Table.Range(func(vpn arch.VPN, pte *vm.PTE) bool {
		srcOPN := arch.OverlayPage(parent.PID, vpn)
		src := f.OMTTable.Get(srcOPN)
		if src.OBits.Empty() {
			return true
		}
		dstEntry := f.OMTTable.Ref(arch.OverlayPage(child.PID, vpn))
		var buf [arch.LineSize]byte
		for _, line := range src.OBits.Lines() {
			slot, ok := f.OMS.LocateLine(src.SegBase, line)
			if !ok {
				continue
			}
			loc, err := f.overlayInsert(child.PID, vpn, dstEntry, line, nil)
			if err != nil {
				copyErr = err
				return false
			}
			f.OMS.ReadLineData(slot, buf[:])
			f.Mem.WriteLine(loc.ppn, int(loc.off>>arch.LineShift), buf[:])
		}
		return true
	})
	if copyErr != nil {
		panic(fmt.Sprintf("core: fork overlay copy: %v", copyErr))
	}
	for _, p := range f.ports {
		p.TLB.FlushPID(parent.PID)
	}
	return child
}

// Exit tears down a process: every page overlay is released, then the
// address space itself.
func (f *Framework) Exit(proc *vm.Process) {
	proc.Table.Range(func(vpn arch.VPN, pte *vm.PTE) bool {
		if !f.OMTTable.Get(arch.OverlayPage(proc.PID, vpn)).Empty() {
			f.clearOverlay(proc.PID, vpn)
		}
		return true
	})
	f.VM.Exit(proc)
	for _, p := range f.ports {
		p.TLB.FlushPID(proc.PID)
	}
}

// OverlayInfo reports a page's overlay state: its OBitVector and the
// bytes of Overlay Memory Store backing it (0 if none).
func (f *Framework) OverlayInfo(pid arch.PID, vpn arch.VPN) (arch.OBitVector, int) {
	entry := f.OMTTable.Get(arch.OverlayPage(pid, vpn))
	bytes := 0
	if entry.SegBase != 0 {
		if class, ok := f.OMS.SegmentClass(entry.SegBase); ok {
			bytes = oms.ClassBytes(class)
		}
	}
	return entry.OBits, bytes
}
