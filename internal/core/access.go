package core

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/mem"
	"repro/internal/oms"
	"repro/internal/omt"
	"repro/internal/sim"
	"repro/internal/vm"
)

// This file implements the framework's functional access semantics
// (Figure 2): a cache line present in a page's overlay is accessed from
// the overlay; every other line is accessed from the regular physical
// page. The structural helpers here are shared with the timed path in
// timed.go, so timed and functional accesses observe identical state.

// lineLoc describes where one cache line's bytes live.
type lineLoc struct {
	cacheAddr arch.PhysAddr // address as tagged in the processor caches
	ppn       arch.PPN      // main-memory frame holding the bytes
	off       uint64        // byte offset of the line within that frame
	overlay   bool
}

func physLineLoc(ppn arch.PPN, line int) lineLoc {
	off := uint64(line) << arch.LineShift
	return lineLoc{cacheAddr: arch.PhysAddrOf(ppn, off), ppn: ppn, off: off}
}

func (f *Framework) overlayLineLoc(opn arch.OPN, entry *omt.Entry, line int) (lineLoc, error) {
	if entry.SegBase.IsCold() {
		base, _, err := f.OMS.Resolve(entry.SegBase)
		if err != nil {
			return lineLoc{}, fmt.Errorf("core: overlay refill for opn %#x: %w", uint64(opn), err)
		}
		entry.SegBase = base
	}
	slot, ok := f.OMS.LocateLine(entry.SegBase, line)
	if !ok {
		return lineLoc{}, fmt.Errorf("core: overlay line %d of opn %#x has no slot", line, uint64(opn))
	}
	return lineLoc{
		cacheAddr: opn.LineAddr(line),
		ppn:       arch.PPN(slot.Page()),
		off:       uint64(slot) & arch.PageMask,
		overlay:   true,
	}, nil
}

// resolveRead locates the bytes a load of (pid, vpn, line) must return
// under the framework's translation backend.
func (f *Framework) resolveRead(proc *vm.Process, vpn arch.VPN, line int) (lineLoc, error) {
	return f.backend.ResolveRead(proc, vpn, line)
}

// writeKind classifies what a store to a line required (§4.3).
type writeKind int

const (
	// writePlain hits a writable page with no overlay involvement.
	writePlain writeKind = iota
	// writeSimpleOverlay updates a line already in the overlay (§4.3.2).
	writeSimpleOverlay
	// writeOverlaying remaps the line into the overlay (§4.3.3).
	writeOverlaying
	// writeCOWCopy is the conventional copy-on-write resolution: full page
	// copy plus remap plus TLB shootdown (§2.2).
	writeCOWCopy
	// writeCOWReuse is a conventional COW fault where this process was the
	// last sharer, so only permissions change.
	writeCOWReuse
	// writeVBIRemap is the Virtual Block Interface's COW resolution: the
	// controller's translation layer remaps the block to a fresh frame and
	// copies it in the background — no OS trap, no shootdown, and no cache
	// retag (tags are virtual).
	writeVBIRemap
)

// writeResolution reports where a store landed and what it cost.
type writeResolution struct {
	kind writeKind
	loc  lineLoc
	// srcCacheAddr is set for writeOverlaying (the regular physical line
	// the data was remapped from) and writeCOWCopy (line 0 of the source
	// page; the timed path reads all 64 lines of that page).
	srcCacheAddr arch.PhysAddr
}

// resolveWrite performs the structural state changes a store to
// (proc, vpn, line) requires under the framework's translation backend —
// overlay creation, OMT/TLB updates, a conventional COW page copy, or a
// controller-side remap — and reports what happened. It does not write
// the payload bytes.
func (f *Framework) resolveWrite(proc *vm.Process, vpn arch.VPN, line int) (writeResolution, error) {
	return f.backend.ResolveWrite(proc, vpn, line)
}

// overlayInsert adds `line` to the page's overlay: it allocates or grows
// the Overlay Memory Store segment, optionally initialises the slot from
// the regular physical page, sets the OBitVector bit in the OMT, and
// broadcasts the single-line TLB update. Idempotent for present lines.
func (f *Framework) overlayInsert(pid arch.PID, vpn arch.VPN, entry *omt.Entry, line int, initFrom *arch.PPN) (lineLoc, error) {
	opn := arch.OverlayPage(pid, vpn)
	if entry.OBits.Has(line) {
		return f.overlayLineLoc(opn, entry, line)
	}
	if entry.SegBase == 0 {
		if tr := f.Engine.Trace; tr != nil {
			tr.Emit(f.Engine.Now(), "overlay", "create",
				sim.TraceArg{Key: "pid", Val: uint64(pid)},
				sim.TraceArg{Key: "vpn", Val: uint64(vpn)})
		}
		base, err := f.OMS.AllocSegment(oms.ClassFor(1))
		if err != nil {
			return lineLoc{}, fmt.Errorf("core: overlay alloc: %w", err)
		}
		entry.SegBase = base
		f.OMS.SetOwner(base, uint64(opn))
	} else if entry.SegBase.IsCold() {
		base, _, err := f.OMS.Resolve(entry.SegBase)
		if err != nil {
			return lineLoc{}, fmt.Errorf("core: overlay refill for opn %#x: %w", uint64(opn), err)
		}
		entry.SegBase = base
	}
	slot, full := f.OMS.InsertLine(entry.SegBase, line)
	if full {
		newBase, err := f.OMS.Migrate(entry.SegBase, entry.OBits)
		if err != nil {
			return lineLoc{}, fmt.Errorf("core: overlay migrate: %w", err)
		}
		entry.SegBase = newBase
		slot, full = f.OMS.InsertLine(entry.SegBase, line)
		if full {
			return lineLoc{}, fmt.Errorf("core: segment still full after migration")
		}
	}
	if initFrom != nil {
		var buf [arch.LineSize]byte
		f.Mem.ReadLine(*initFrom, line, buf[:])
		f.OMS.WriteLineData(slot, buf[:])
	}
	entry.OBits = entry.OBits.Set(line)
	f.broadcastLineUpdate(pid, vpn, line, true)
	return lineLoc{
		cacheAddr: opn.LineAddr(line),
		ppn:       arch.PPN(slot.Page()),
		off:       uint64(slot) & arch.PageMask,
		overlay:   true,
	}, nil
}

// Load copies len(buf) bytes at (pid, va) into buf under overlay
// semantics. It is the functional (untimed) read path.
func (f *Framework) Load(pid arch.PID, va arch.VirtAddr, buf []byte) error {
	proc, ok := f.VM.Process(pid)
	if !ok {
		return fmt.Errorf("core: no process %d", pid)
	}
	for n := 0; n < len(buf); {
		a := va + arch.VirtAddr(n)
		loc, err := f.resolveRead(proc, a.Page(), a.Line())
		if err != nil {
			return err
		}
		span := int(arch.LineSize - a.LineOffset())
		if span > len(buf)-n {
			span = len(buf) - n
		}
		f.Mem.ReadSpan(loc.ppn, loc.off+a.LineOffset(), buf[n:n+span])
		n += span
	}
	return nil
}

// Store writes data at (pid, va) under overlay semantics, creating
// overlays or breaking COW exactly as the hardware/OS would. It is the
// functional (untimed) write path.
func (f *Framework) Store(pid arch.PID, va arch.VirtAddr, data []byte) error {
	proc, ok := f.VM.Process(pid)
	if !ok {
		return fmt.Errorf("core: no process %d", pid)
	}
	for n := 0; n < len(data); {
		a := va + arch.VirtAddr(n)
		res, err := f.resolveWrite(proc, a.Page(), a.Line())
		if err != nil {
			return err
		}
		span := int(arch.LineSize - a.LineOffset())
		if span > len(data)-n {
			span = len(data) - n
		}
		if res.loc.ppn == mem.ZeroPPN {
			return fmt.Errorf("core: write resolved to the zero page at %#x", uint64(a))
		}
		f.Mem.WriteSpan(res.loc.ppn, res.loc.off+a.LineOffset(), data[n:n+span])
		n += span
	}
	return nil
}

// Load64 and Store64 are word-sized conveniences used heavily by the
// sparse-matrix engine.
func (f *Framework) Load64(pid arch.PID, va arch.VirtAddr) (uint64, error) {
	var buf [8]byte
	if err := f.Load(pid, va, buf[:]); err != nil {
		return 0, err
	}
	var v uint64
	for i := uint(0); i < 8; i++ {
		v |= uint64(buf[i]) << (8 * i)
	}
	return v, nil
}

func (f *Framework) Store64(pid arch.PID, va arch.VirtAddr, v uint64) error {
	var buf [8]byte
	for i := uint(0); i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
	}
	return f.Store(pid, va, buf[:])
}

// Fork clones the process under the translation backend's sharing
// mechanism. For the overlay backend, overlayMode selects overlay-on-
// write (true) versus conventional copy-on-write (false) semantics;
// backends without overlays share every page copy-on-write and ignore
// the flag.
func (f *Framework) Fork(parent *vm.Process, overlayMode bool) *vm.Process {
	return f.backend.Fork(parent, overlayMode)
}

// Exit tears down a process: every page overlay is released, then the
// address space itself.
func (f *Framework) Exit(proc *vm.Process) {
	proc.Table.Range(func(vpn arch.VPN, pte *vm.PTE) bool {
		if !f.OMTTable.Get(arch.OverlayPage(proc.PID, vpn)).Empty() {
			f.clearOverlay(proc.PID, vpn)
		}
		return true
	})
	f.VM.Exit(proc)
	for _, p := range f.ports {
		p.TLB.FlushPID(proc.PID)
	}
}

// OverlayInfo reports a page's overlay state: its OBitVector and the
// bytes of Overlay Memory Store backing it (0 if none).
func (f *Framework) OverlayInfo(pid arch.PID, vpn arch.VPN) (arch.OBitVector, int) {
	entry := f.OMTTable.Get(arch.OverlayPage(pid, vpn))
	bytes := 0
	if entry.SegBase != 0 {
		if class, ok := f.OMS.SegmentClass(entry.SegBase); ok {
			bytes = oms.ClassBytes(class)
		}
	}
	return entry.OBits, bytes
}
