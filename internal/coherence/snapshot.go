package coherence

import "repro/internal/cache"

// Snapshot support: at a quiescence point the directory has no in-flight
// transactions (the busy map drains with the event queue), so the
// capture is the per-page directory/state tables plus each core's L1
// tag+replacement state.

// Snapshot is an immutable capture of a drained coherent domain.
type Snapshot struct {
	pages map[uint64]*pageCoh
	l1    []*cache.Snapshot
}

// Snapshot captures the directory and private caches. It panics if any
// line transaction is still in flight — snapshots are only taken after
// the engine drains.
func (d *Domain) Snapshot() *Snapshot {
	if len(d.busy) != 0 {
		panic("coherence: snapshot with in-flight transactions")
	}
	s := &Snapshot{pages: make(map[uint64]*pageCoh, len(d.pages))}
	for pn, pc := range d.pages {
		c := &pageCoh{dir: pc.dir, st: append([]State(nil), pc.st...)}
		s.pages[pn] = c
	}
	for _, l1 := range d.l1 {
		s.l1 = append(s.l1, l1.Snapshot())
	}
	return s
}

// Restore loads the captured directory and cache state into this
// domain, which must have the same core count. The snapshot's page
// tables are deep-copied again so several forks can restore from one
// snapshot independently.
func (d *Domain) Restore(s *Snapshot) {
	if len(s.l1) != len(d.l1) {
		panic("coherence: restore core-count mismatch")
	}
	d.pages = make(map[uint64]*pageCoh, len(s.pages))
	for pn, pc := range s.pages {
		d.pages[pn] = &pageCoh{dir: pc.dir, st: append([]State(nil), pc.st...)}
	}
	d.lastPN, d.lastPC = 0, nil
	for i, l1 := range d.l1 {
		l1.Restore(s.l1[i])
	}
}
