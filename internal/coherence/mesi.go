// Package coherence implements a MESI invalidation protocol over
// per-core private L1 caches with a directory at the shared-L2 boundary.
// The paper's overlaying write rides exactly this network: the
// overlaying-read-exclusive message (§4.3.3) is an ordinary
// read-for-ownership that additionally carries a single-line OBitVector
// update to every sharer's TLB, which is why it avoids a full shootdown.
//
// The protocol here is the substrate for the multi-core experiments
// (both processes running after a fork); the single-core figures use the
// plain hierarchy in internal/cache.
//
// Directory and per-core state are flat per-page arrays indexed by line
// number (one pageCoh per 4 KB page holds 64 lineDir entries and a
// cores×64 state table), so the per-access lookups that used to probe
// two Go maps are an index computation plus one page-map probe, with the
// last-touched page cached.
package coherence

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/cache"
	"repro/internal/sim"
)

// State is a MESI line state.
type State uint8

const (
	// Invalid: not present.
	Invalid State = iota
	// Shared: clean, possibly in several L1s.
	Shared
	// Exclusive: clean, only this L1.
	Exclusive
	// Modified: dirty, only this L1.
	Modified
)

func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// LineListener observes coherence events for a line (the overlay
// framework registers one to deliver OBitVector updates alongside
// overlaying-read-exclusive requests).
type LineListener interface {
	// OnReadExclusive fires when a core gains exclusive ownership of the
	// line, after all other copies have been invalidated.
	OnReadExclusive(core int, addr arch.PhysAddr)
}

// Config sizes the private caches and protocol latencies.
type Config struct {
	Cores      int
	L1Size     int
	L1Ways     int
	L1Hit      sim.Cycle // private-cache hit latency
	DirLookup  sim.Cycle // directory access at the shared boundary
	Invalidate sim.Cycle // invalidation round-trip to one sharer
	Forward    sim.Cycle // cache-to-cache transfer of a Modified line
	SharedHit  sim.Cycle // latency of the shared level below the directory
}

// DefaultConfig returns a 4-core arrangement matching the Table 2 L1.
func DefaultConfig() Config {
	return Config{
		Cores:      4,
		L1Size:     64 << 10,
		L1Ways:     4,
		L1Hit:      2,
		DirLookup:  10,
		Invalidate: 20,
		Forward:    30,
		SharedHit:  34,
	}
}

// Memory is what sits below the coherent domain.
type Memory interface {
	Fetch(addr arch.PhysAddr, done func())
	WriteBack(addr arch.PhysAddr)
}

// lineDir is one line's directory entry.
type lineDir struct {
	sharers uint64 // bitmap of cores with a copy
	owner   int8   // core holding M/E, -1 if none
}

// pageCoh is all coherence state for one physical (or overlay) page:
// 64 directory entries and a dense cores×64 MESI state table.
type pageCoh struct {
	dir [arch.LinesPerPage]lineDir
	st  []State // index core*arch.LinesPerPage + line
}

func (pc *pageCoh) state(core, line int) State {
	return pc.st[core*arch.LinesPerPage+line]
}

// Domain is the coherent multi-core cache domain.
type Domain struct {
	engine *sim.Engine
	cfg    Config
	l1     []*cache.Cache
	pages  map[uint64]*pageCoh // page number (addr >> PageShift) → state
	lastPN uint64              // last-touched page cache
	lastPC *pageCoh
	mem    Memory

	// The directory serialises transactions per line, exactly as real
	// directories do: a second request to a busy line queues behind the
	// first. Without this, in-flight installs and invalidations interleave
	// and break the single-writer invariant.
	busy map[arch.PhysAddr][]pendingOp

	listener LineListener

	lineConfl  *uint64
	l1Hits     *uint64
	readMisses *uint64
	writeMiss  *uint64
	ownerWBs   *uint64
	readExcl   *uint64
	invals     *uint64
}

// New builds a coherent domain of cfg.Cores private L1s over mem.
func New(engine *sim.Engine, cfg Config, mem Memory) *Domain {
	if cfg.Cores < 1 || cfg.Cores > 64 {
		panic("coherence: cores must be 1..64")
	}
	d := &Domain{
		engine:     engine,
		cfg:        cfg,
		mem:        mem,
		pages:      make(map[uint64]*pageCoh),
		busy:       make(map[arch.PhysAddr][]pendingOp),
		lineConfl:  engine.Stats.Counter("coherence.line_conflicts"),
		l1Hits:     engine.Stats.Counter("coherence.l1_hits"),
		readMisses: engine.Stats.Counter("coherence.read_misses"),
		writeMiss:  engine.Stats.Counter("coherence.write_misses"),
		ownerWBs:   engine.Stats.Counter("coherence.owner_writebacks"),
		readExcl:   engine.Stats.Counter("coherence.overlaying_read_exclusive"),
		invals:     engine.Stats.Counter("coherence.invalidations"),
	}
	for i := 0; i < cfg.Cores; i++ {
		d.l1 = append(d.l1, cache.New(fmt.Sprintf("l1.%d", i), cfg.L1Size, cfg.L1Ways, cache.NewLRU))
	}
	return d
}

// SetListener registers the coherence-event observer.
func (d *Domain) SetListener(l LineListener) { d.listener = l }

// Cores returns the number of cores in the domain.
func (d *Domain) Cores() int { return d.cfg.Cores }

// pageFor resolves the line-aligned address to its page's coherence state
// and line index, optionally creating the page. Returns a nil page only
// when create is false and the page was never touched.
func (d *Domain) pageFor(addr arch.PhysAddr, create bool) (*pageCoh, int) {
	pn := uint64(addr) >> arch.PageShift
	line := addr.Line()
	if d.lastPC != nil && d.lastPN == pn {
		return d.lastPC, line
	}
	pc := d.pages[pn]
	if pc == nil {
		if !create {
			return nil, line
		}
		pc = &pageCoh{st: make([]State, d.cfg.Cores*arch.LinesPerPage)}
		for i := range pc.dir {
			pc.dir[i].owner = -1
		}
		d.pages[pn] = pc
	}
	d.lastPN, d.lastPC = pn, pc
	return pc, line
}

// StateOf reports core's MESI state for the line (test/debug aid).
func (d *Domain) StateOf(core int, addr arch.PhysAddr) State {
	pc, line := d.pageFor(addr.LineAligned(), false)
	if pc == nil {
		return Invalid
	}
	return pc.state(core, line)
}

// pendingOp is a directory transaction awaiting its line.
type pendingOp func(release func())

// acquire serialises transactions per line: op runs immediately if the
// line is idle, else it queues behind the in-flight transaction.
func (d *Domain) acquire(addr arch.PhysAddr, op pendingOp) {
	if _, inFlight := d.busy[addr]; inFlight {
		d.busy[addr] = append(d.busy[addr], op)
		*d.lineConfl++
		return
	}
	d.busy[addr] = nil
	d.run(addr, op)
}

func (d *Domain) run(addr arch.PhysAddr, op pendingOp) {
	op(func() {
		q := d.busy[addr]
		if len(q) == 0 {
			delete(d.busy, addr)
			return
		}
		next := q[0]
		d.busy[addr] = q[1:]
		d.engine.Schedule(0, func() { d.run(addr, next) })
	})
}

// Read performs a coherent load by `core`; done fires at completion.
func (d *Domain) Read(core int, addr arch.PhysAddr, done func()) {
	if done == nil {
		done = func() {}
	}
	addr = addr.LineAligned()
	d.acquire(addr, func(release func()) {
		d.doRead(core, addr, func() { release(); done() })
	})
}

func (d *Domain) doRead(core int, addr arch.PhysAddr, done func()) {
	pc, line := d.pageFor(addr, true)
	if s := pc.state(core, line); s != Invalid {
		*d.l1Hits++
		d.touch(core, addr, false)
		d.engine.Schedule(d.cfg.L1Hit, done)
		return
	}
	*d.readMisses++
	e := &pc.dir[line]
	lat := d.cfg.L1Hit + d.cfg.DirLookup
	if e.owner >= 0 && int(e.owner) != core {
		// Modified or Exclusive elsewhere: fetch cache-to-cache; the owner
		// downgrades to Shared (writing back if Modified).
		owner := int(e.owner)
		if pc.state(owner, line) == Modified {
			d.mem.WriteBack(addr)
			*d.ownerWBs++
		}
		d.setState(pc, owner, addr, line, Shared)
		e.owner = -1
		e.sharers |= 1 << uint(owner)
		lat += d.cfg.Forward
		d.finishRead(core, addr, e, lat, done)
		return
	}
	if e.sharers != 0 {
		// Clean copies exist below/beside: serve from the shared level.
		lat += d.cfg.SharedHit
		d.finishRead(core, addr, e, lat, done)
		return
	}
	// Nobody has it: fetch from memory, first reader gets Exclusive.
	d.engine.Schedule(lat, func() {
		d.mem.Fetch(addr, func() {
			d.install(core, addr, Exclusive)
			e.owner = int8(core)
			done()
		})
	})
}

func (d *Domain) finishRead(core int, addr arch.PhysAddr, e *lineDir, lat sim.Cycle, done func()) {
	d.engine.Schedule(lat, func() {
		d.install(core, addr, Shared)
		e.sharers |= 1 << uint(core)
		done()
	})
}

// Write performs a coherent store by `core` (read-for-ownership +
// upgrade); done fires when the core owns the line in Modified state.
func (d *Domain) Write(core int, addr arch.PhysAddr, done func()) {
	if done == nil {
		done = func() {}
	}
	addr = addr.LineAligned()
	d.acquire(addr, func(release func()) {
		d.doWrite(core, addr, func() { release(); done() })
	})
}

func (d *Domain) doWrite(core int, addr arch.PhysAddr, done func()) {
	pc, line := d.pageFor(addr, true)
	switch pc.state(core, line) {
	case Modified:
		*d.l1Hits++
		d.touch(core, addr, true)
		d.engine.Schedule(d.cfg.L1Hit, done)
		return
	case Exclusive:
		// Silent upgrade E→M.
		*d.l1Hits++
		d.setState(pc, core, addr, line, Modified)
		d.touch(core, addr, true)
		d.engine.Schedule(d.cfg.L1Hit, done)
		return
	}
	*d.writeMiss++
	d.readExclusive(core, addr, done)
}

// ReadExclusive issues the overlaying-read-exclusive request (§4.3.3):
// it gains ownership of the line and notifies the listener once every
// other copy is invalidated — the hook the overlay framework uses to
// update all TLBs' OBitVectors without a shootdown.
func (d *Domain) ReadExclusive(core int, addr arch.PhysAddr, done func()) {
	if done == nil {
		done = func() {}
	}
	addr = addr.LineAligned()
	*d.readExcl++
	d.acquire(addr, func(release func()) {
		d.readExclusive(core, addr, func() { release(); done() })
	})
}

func (d *Domain) readExclusive(core int, addr arch.PhysAddr, done func()) {
	pc, line := d.pageFor(addr, true)
	e := &pc.dir[line]
	lat := d.cfg.L1Hit + d.cfg.DirLookup

	// Invalidate every other copy; each sharer costs one round.
	if e.owner >= 0 && int(e.owner) != core {
		if pc.state(int(e.owner), line) == Modified {
			d.mem.WriteBack(addr)
			*d.ownerWBs++
		}
		d.setState(pc, int(e.owner), addr, line, Invalid)
		lat += d.cfg.Forward
		e.owner = -1
	}
	invalidated := 0
	for c := 0; c < d.cfg.Cores; c++ {
		if c != core && e.sharers&(1<<uint(c)) != 0 {
			d.setState(pc, c, addr, line, Invalid)
			invalidated++
		}
	}
	if invalidated > 0 {
		lat += d.cfg.Invalidate // rounds overlap; one exposure
		*d.invals += uint64(invalidated)
	}
	e.sharers = 0

	needData := pc.state(core, line) == Invalid
	finish := func() {
		d.install(core, addr, Modified)
		e.owner = int8(core)
		e.sharers = 0
		if d.listener != nil {
			d.listener.OnReadExclusive(core, addr)
		}
		done()
	}
	if needData {
		d.engine.Schedule(lat, func() { d.mem.Fetch(addr, finish) })
	} else {
		d.engine.Schedule(lat, finish)
	}
}

// install places the line in core's L1 with the given state, handling
// evictions of displaced lines (write back Modified victims).
func (d *Domain) install(core int, addr arch.PhysAddr, s State) {
	ev, evicted := d.l1[core].Fill(addr, s == Modified)
	if evicted {
		d.dropLine(core, ev.Addr, ev.Dirty)
	}
	pc, line := d.pageFor(addr, true)
	d.setState(pc, core, addr, line, s)
}

// touch refreshes LRU state for a hit.
func (d *Domain) touch(core int, addr arch.PhysAddr, write bool) {
	d.l1[core].Lookup(addr, write)
}

// dropLine handles a capacity eviction from core's L1.
func (d *Domain) dropLine(core int, addr arch.PhysAddr, dirty bool) {
	if dirty {
		d.mem.WriteBack(addr)
	}
	pc, line := d.pageFor(addr, false)
	if pc == nil {
		return
	}
	pc.st[core*arch.LinesPerPage+line] = Invalid
	e := &pc.dir[line]
	e.sharers &^= 1 << uint(core)
	if int(e.owner) == core {
		e.owner = -1
	}
}

// setState updates both the state table and, for Invalid, the L1 tags.
func (d *Domain) setState(pc *pageCoh, core int, addr arch.PhysAddr, line int, s State) {
	pc.st[core*arch.LinesPerPage+line] = s
	if s == Invalid {
		d.l1[core].Invalidate(addr)
	}
}

// CheckInvariants verifies the single-writer/multi-reader property for
// every tracked line; tests call it after random operation storms.
func (d *Domain) CheckInvariants() error {
	for pn, pc := range d.pages {
		for line := 0; line < arch.LinesPerPage; line++ {
			owners, sharers := 0, 0
			for c := 0; c < d.cfg.Cores; c++ {
				switch pc.state(c, line) {
				case Modified, Exclusive:
					owners++
				case Shared:
					sharers++
				}
			}
			addr := arch.PhysAddr(pn<<arch.PageShift | uint64(line)<<arch.LineShift)
			if owners > 1 {
				return fmt.Errorf("coherence: line %#x has %d owners", uint64(addr), owners)
			}
			if owners == 1 && sharers > 0 {
				return fmt.Errorf("coherence: line %#x owned and shared", uint64(addr))
			}
		}
	}
	return nil
}
