// Package coherence implements a MESI invalidation protocol over
// per-core private L1 caches with a directory at the shared-L2 boundary.
// The paper's overlaying write rides exactly this network: the
// overlaying-read-exclusive message (§4.3.3) is an ordinary
// read-for-ownership that additionally carries a single-line OBitVector
// update to every sharer's TLB, which is why it avoids a full shootdown.
//
// The protocol here is the substrate for the multi-core experiments
// (both processes running after a fork); the single-core figures use the
// plain hierarchy in internal/cache.
package coherence

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/cache"
	"repro/internal/sim"
)

// State is a MESI line state.
type State uint8

const (
	// Invalid: not present.
	Invalid State = iota
	// Shared: clean, possibly in several L1s.
	Shared
	// Exclusive: clean, only this L1.
	Exclusive
	// Modified: dirty, only this L1.
	Modified
)

func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// LineListener observes coherence events for a line (the overlay
// framework registers one to deliver OBitVector updates alongside
// overlaying-read-exclusive requests).
type LineListener interface {
	// OnReadExclusive fires when a core gains exclusive ownership of the
	// line, after all other copies have been invalidated.
	OnReadExclusive(core int, addr arch.PhysAddr)
}

// Config sizes the private caches and protocol latencies.
type Config struct {
	Cores      int
	L1Size     int
	L1Ways     int
	L1Hit      sim.Cycle // private-cache hit latency
	DirLookup  sim.Cycle // directory access at the shared boundary
	Invalidate sim.Cycle // invalidation round-trip to one sharer
	Forward    sim.Cycle // cache-to-cache transfer of a Modified line
	SharedHit  sim.Cycle // latency of the shared level below the directory
}

// DefaultConfig returns a 4-core arrangement matching the Table 2 L1.
func DefaultConfig() Config {
	return Config{
		Cores:      4,
		L1Size:     64 << 10,
		L1Ways:     4,
		L1Hit:      2,
		DirLookup:  10,
		Invalidate: 20,
		Forward:    30,
		SharedHit:  34,
	}
}

// Memory is what sits below the coherent domain.
type Memory interface {
	Fetch(addr arch.PhysAddr, done func())
	WriteBack(addr arch.PhysAddr)
}

type dirEntry struct {
	sharers uint64 // bitmap of cores with a copy
	owner   int    // core holding M/E, -1 if none
}

// Domain is the coherent multi-core cache domain.
type Domain struct {
	engine *sim.Engine
	cfg    Config
	l1     []*cache.Cache
	state  []map[arch.PhysAddr]State // per-core line states
	dir    map[arch.PhysAddr]*dirEntry
	mem    Memory

	// The directory serialises transactions per line, exactly as real
	// directories do: a second request to a busy line queues behind the
	// first. Without this, in-flight installs and invalidations interleave
	// and break the single-writer invariant.
	busy map[arch.PhysAddr][]pendingOp

	listener LineListener
}

// New builds a coherent domain of cfg.Cores private L1s over mem.
func New(engine *sim.Engine, cfg Config, mem Memory) *Domain {
	if cfg.Cores < 1 || cfg.Cores > 64 {
		panic("coherence: cores must be 1..64")
	}
	d := &Domain{
		engine: engine,
		cfg:    cfg,
		mem:    mem,
		dir:    make(map[arch.PhysAddr]*dirEntry),
		busy:   make(map[arch.PhysAddr][]pendingOp),
	}
	for i := 0; i < cfg.Cores; i++ {
		d.l1 = append(d.l1, cache.New(fmt.Sprintf("l1.%d", i), cfg.L1Size, cfg.L1Ways, cache.NewLRU))
		d.state = append(d.state, make(map[arch.PhysAddr]State))
	}
	return d
}

// SetListener registers the coherence-event observer.
func (d *Domain) SetListener(l LineListener) { d.listener = l }

// Cores returns the number of cores in the domain.
func (d *Domain) Cores() int { return d.cfg.Cores }

// StateOf reports core's MESI state for the line (test/debug aid).
func (d *Domain) StateOf(core int, addr arch.PhysAddr) State {
	return d.state[core][addr.LineAligned()]
}

func (d *Domain) entry(addr arch.PhysAddr) *dirEntry {
	e := d.dir[addr]
	if e == nil {
		e = &dirEntry{owner: -1}
		d.dir[addr] = e
	}
	return e
}

// pendingOp is a directory transaction awaiting its line.
type pendingOp func(release func())

// acquire serialises transactions per line: op runs immediately if the
// line is idle, else it queues behind the in-flight transaction.
func (d *Domain) acquire(addr arch.PhysAddr, op pendingOp) {
	if _, inFlight := d.busy[addr]; inFlight {
		d.busy[addr] = append(d.busy[addr], op)
		d.engine.Stats.Inc("coherence.line_conflicts")
		return
	}
	d.busy[addr] = nil
	d.run(addr, op)
}

func (d *Domain) run(addr arch.PhysAddr, op pendingOp) {
	op(func() {
		q := d.busy[addr]
		if len(q) == 0 {
			delete(d.busy, addr)
			return
		}
		next := q[0]
		d.busy[addr] = q[1:]
		d.engine.Schedule(0, func() { d.run(addr, next) })
	})
}

// Read performs a coherent load by `core`; done fires at completion.
func (d *Domain) Read(core int, addr arch.PhysAddr, done func()) {
	if done == nil {
		done = func() {}
	}
	addr = addr.LineAligned()
	d.acquire(addr, func(release func()) {
		d.doRead(core, addr, func() { release(); done() })
	})
}

func (d *Domain) doRead(core int, addr arch.PhysAddr, done func()) {
	if s := d.state[core][addr]; s != Invalid {
		d.engine.Stats.Inc("coherence.l1_hits")
		d.touch(core, addr, false)
		d.engine.Schedule(d.cfg.L1Hit, done)
		return
	}
	d.engine.Stats.Inc("coherence.read_misses")
	e := d.entry(addr)
	lat := d.cfg.L1Hit + d.cfg.DirLookup
	if e.owner >= 0 && e.owner != core {
		// Modified or Exclusive elsewhere: fetch cache-to-cache; the owner
		// downgrades to Shared (writing back if Modified).
		owner := e.owner
		if d.state[owner][addr] == Modified {
			d.mem.WriteBack(addr)
			d.engine.Stats.Inc("coherence.owner_writebacks")
		}
		d.setState(owner, addr, Shared)
		e.owner = -1
		e.sharers |= 1 << uint(owner)
		lat += d.cfg.Forward
		d.finishRead(core, addr, e, lat, done)
		return
	}
	if e.sharers != 0 {
		// Clean copies exist below/beside: serve from the shared level.
		lat += d.cfg.SharedHit
		d.finishRead(core, addr, e, lat, done)
		return
	}
	// Nobody has it: fetch from memory, first reader gets Exclusive.
	d.engine.Schedule(lat, func() {
		d.mem.Fetch(addr, func() {
			d.install(core, addr, Exclusive)
			e.owner = core
			done()
		})
	})
}

func (d *Domain) finishRead(core int, addr arch.PhysAddr, e *dirEntry, lat sim.Cycle, done func()) {
	d.engine.Schedule(lat, func() {
		d.install(core, addr, Shared)
		e.sharers |= 1 << uint(core)
		done()
	})
}

// Write performs a coherent store by `core` (read-for-ownership +
// upgrade); done fires when the core owns the line in Modified state.
func (d *Domain) Write(core int, addr arch.PhysAddr, done func()) {
	if done == nil {
		done = func() {}
	}
	addr = addr.LineAligned()
	d.acquire(addr, func(release func()) {
		d.doWrite(core, addr, func() { release(); done() })
	})
}

func (d *Domain) doWrite(core int, addr arch.PhysAddr, done func()) {
	switch d.state[core][addr] {
	case Modified:
		d.engine.Stats.Inc("coherence.l1_hits")
		d.touch(core, addr, true)
		d.engine.Schedule(d.cfg.L1Hit, done)
		return
	case Exclusive:
		// Silent upgrade E→M.
		d.engine.Stats.Inc("coherence.l1_hits")
		d.setState(core, addr, Modified)
		d.touch(core, addr, true)
		d.engine.Schedule(d.cfg.L1Hit, done)
		return
	}
	d.engine.Stats.Inc("coherence.write_misses")
	d.readExclusive(core, addr, done)
}

// ReadExclusive issues the overlaying-read-exclusive request (§4.3.3):
// it gains ownership of the line and notifies the listener once every
// other copy is invalidated — the hook the overlay framework uses to
// update all TLBs' OBitVectors without a shootdown.
func (d *Domain) ReadExclusive(core int, addr arch.PhysAddr, done func()) {
	if done == nil {
		done = func() {}
	}
	addr = addr.LineAligned()
	d.engine.Stats.Inc("coherence.overlaying_read_exclusive")
	d.acquire(addr, func(release func()) {
		d.readExclusive(core, addr, func() { release(); done() })
	})
}

func (d *Domain) readExclusive(core int, addr arch.PhysAddr, done func()) {
	e := d.entry(addr)
	lat := d.cfg.L1Hit + d.cfg.DirLookup

	// Invalidate every other copy; each sharer costs one round.
	if e.owner >= 0 && e.owner != core {
		if d.state[e.owner][addr] == Modified {
			d.mem.WriteBack(addr)
			d.engine.Stats.Inc("coherence.owner_writebacks")
		}
		d.setState(e.owner, addr, Invalid)
		lat += d.cfg.Forward
		e.owner = -1
	}
	invalidated := 0
	for c := 0; c < d.cfg.Cores; c++ {
		if c != core && e.sharers&(1<<uint(c)) != 0 {
			d.setState(c, addr, Invalid)
			invalidated++
		}
	}
	if invalidated > 0 {
		lat += d.cfg.Invalidate // rounds overlap; one exposure
		d.engine.Stats.Add("coherence.invalidations", uint64(invalidated))
	}
	e.sharers = 0

	needData := d.state[core][addr] == Invalid
	finish := func() {
		d.install(core, addr, Modified)
		e.owner = core
		e.sharers = 0
		if d.listener != nil {
			d.listener.OnReadExclusive(core, addr)
		}
		done()
	}
	if needData {
		d.engine.Schedule(lat, func() { d.mem.Fetch(addr, finish) })
	} else {
		d.engine.Schedule(lat, finish)
	}
}

// install places the line in core's L1 with the given state, handling
// evictions of displaced lines (write back Modified victims).
func (d *Domain) install(core int, addr arch.PhysAddr, s State) {
	ev, evicted := d.l1[core].Fill(addr, s == Modified)
	if evicted {
		d.dropLine(core, ev.Addr, ev.Dirty)
	}
	d.setState(core, addr, s)
}

// touch refreshes LRU state for a hit.
func (d *Domain) touch(core int, addr arch.PhysAddr, write bool) {
	d.l1[core].Lookup(addr, write)
}

// dropLine handles a capacity eviction from core's L1.
func (d *Domain) dropLine(core int, addr arch.PhysAddr, dirty bool) {
	if dirty {
		d.mem.WriteBack(addr)
	}
	st := d.state[core][addr]
	delete(d.state[core], addr)
	e := d.dir[addr]
	if e == nil {
		return
	}
	e.sharers &^= 1 << uint(core)
	if e.owner == core {
		e.owner = -1
	}
	_ = st
}

// setState updates both the state map and, for Invalid, the L1 tags.
func (d *Domain) setState(core int, addr arch.PhysAddr, s State) {
	if s == Invalid {
		delete(d.state[core], addr)
		d.l1[core].Invalidate(addr)
		return
	}
	d.state[core][addr] = s
}

// CheckInvariants verifies the single-writer/multi-reader property for
// every tracked line; tests call it after random operation storms.
func (d *Domain) CheckInvariants() error {
	lines := map[arch.PhysAddr]bool{}
	for c := 0; c < d.cfg.Cores; c++ {
		for a := range d.state[c] {
			lines[a] = true
		}
	}
	for a := range lines {
		owners, sharers := 0, 0
		for c := 0; c < d.cfg.Cores; c++ {
			switch d.state[c][a] {
			case Modified, Exclusive:
				owners++
			case Shared:
				sharers++
			}
		}
		if owners > 1 {
			return fmt.Errorf("coherence: line %#x has %d owners", uint64(a), owners)
		}
		if owners == 1 && sharers > 0 {
			return fmt.Errorf("coherence: line %#x owned and shared", uint64(a))
		}
	}
	return nil
}
