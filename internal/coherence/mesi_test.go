package coherence

import (
	"math/rand"
	"testing"

	"repro/internal/arch"
	"repro/internal/sim"
)

type fakeMem struct {
	engine     *sim.Engine
	latency    sim.Cycle
	fetches    int
	writebacks int
}

func (m *fakeMem) Fetch(addr arch.PhysAddr, done func()) {
	m.fetches++
	m.engine.Schedule(m.latency, done)
}
func (m *fakeMem) WriteBack(arch.PhysAddr) { m.writebacks++ }

func newDomain(cores int) (*sim.Engine, *Domain, *fakeMem) {
	e := sim.NewEngine()
	mem := &fakeMem{engine: e, latency: 100}
	cfg := DefaultConfig()
	cfg.Cores = cores
	return e, New(e, cfg, mem), mem
}

func la(n uint64) arch.PhysAddr { return arch.PhysAddr(n << arch.LineShift) }

func run(e *sim.Engine, fn func(done func())) sim.Cycle {
	start := e.Now()
	var end sim.Cycle
	ok := false
	fn(func() { end = e.Now(); ok = true })
	e.Run()
	if !ok {
		panic("op never completed")
	}
	return end - start
}

func TestFirstReadGetsExclusive(t *testing.T) {
	e, d, mem := newDomain(4)
	run(e, func(done func()) { d.Read(0, la(1), done) })
	if d.StateOf(0, la(1)) != Exclusive {
		t.Fatalf("state = %v, want E", d.StateOf(0, la(1)))
	}
	if mem.fetches != 1 {
		t.Fatalf("fetches = %d", mem.fetches)
	}
}

func TestSecondReaderDowngradesToShared(t *testing.T) {
	e, d, _ := newDomain(4)
	run(e, func(done func()) { d.Read(0, la(1), done) })
	run(e, func(done func()) { d.Read(1, la(1), done) })
	if d.StateOf(0, la(1)) != Shared || d.StateOf(1, la(1)) != Shared {
		t.Fatalf("states = %v/%v, want S/S", d.StateOf(0, la(1)), d.StateOf(1, la(1)))
	}
}

func TestExclusiveUpgradesSilently(t *testing.T) {
	e, d, mem := newDomain(4)
	run(e, func(done func()) { d.Read(0, la(1), done) })
	lat := run(e, func(done func()) { d.Write(0, la(1), done) })
	if d.StateOf(0, la(1)) != Modified {
		t.Fatal("E→M upgrade failed")
	}
	if lat != DefaultConfig().L1Hit {
		t.Fatalf("silent upgrade cost %d cycles, want L1 hit", lat)
	}
	if mem.fetches != 1 {
		t.Fatal("upgrade should not refetch")
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	e, d, _ := newDomain(4)
	for c := 0; c < 3; c++ {
		run(e, func(done func()) { d.Read(c, la(1), done) })
	}
	run(e, func(done func()) { d.Write(0, la(1), done) })
	if d.StateOf(0, la(1)) != Modified {
		t.Fatal("writer not Modified")
	}
	for c := 1; c < 3; c++ {
		if d.StateOf(c, la(1)) != Invalid {
			t.Fatalf("core %d still has the line", c)
		}
	}
	if e.Stats.Get("coherence.invalidations") == 0 {
		t.Fatal("no invalidations counted")
	}
}

func TestDirtyForwarding(t *testing.T) {
	e, d, mem := newDomain(2)
	run(e, func(done func()) { d.Write(0, la(1), done) })
	wb := mem.writebacks
	run(e, func(done func()) { d.Read(1, la(1), done) })
	if mem.writebacks != wb+1 {
		t.Fatal("dirty owner must write back on downgrade")
	}
	if d.StateOf(0, la(1)) != Shared || d.StateOf(1, la(1)) != Shared {
		t.Fatal("downgrade failed")
	}
}

func TestWriteAfterWriteMigratesOwnership(t *testing.T) {
	e, d, _ := newDomain(2)
	run(e, func(done func()) { d.Write(0, la(1), done) })
	run(e, func(done func()) { d.Write(1, la(1), done) })
	if d.StateOf(1, la(1)) != Modified || d.StateOf(0, la(1)) != Invalid {
		t.Fatalf("states = %v/%v", d.StateOf(0, la(1)), d.StateOf(1, la(1)))
	}
}

type recListener struct {
	cores []int
	addrs []arch.PhysAddr
}

func (r *recListener) OnReadExclusive(core int, addr arch.PhysAddr) {
	r.cores = append(r.cores, core)
	r.addrs = append(r.addrs, addr)
}

func TestOverlayingReadExclusiveNotifiesListener(t *testing.T) {
	e, d, _ := newDomain(4)
	l := &recListener{}
	d.SetListener(l)
	// Spread the line across cores first.
	for c := 0; c < 3; c++ {
		run(e, func(done func()) { d.Read(c, la(7), done) })
	}
	run(e, func(done func()) { d.ReadExclusive(3, la(7), done) })
	if len(l.cores) == 0 || l.cores[len(l.cores)-1] != 3 {
		t.Fatalf("listener events: %v", l.cores)
	}
	if e.Stats.Get("coherence.overlaying_read_exclusive") != 1 {
		t.Fatal("message not counted")
	}
	// All other copies gone, requester owns it.
	for c := 0; c < 3; c++ {
		if d.StateOf(c, la(7)) != Invalid {
			t.Fatalf("core %d survived read-exclusive", c)
		}
	}
	if d.StateOf(3, la(7)) != Modified {
		t.Fatal("requester not Modified")
	}
}

func TestEvictionWritesBackModified(t *testing.T) {
	e, d, mem := newDomain(1)
	cfg := DefaultConfig()
	setsLines := cfg.L1Size / arch.LineSize / cfg.L1Ways // lines per way-set
	// Fill one set beyond capacity with writes.
	victim := la(0)
	run(e, func(done func()) { d.Write(0, victim, done) })
	for i := 1; i <= cfg.L1Ways; i++ {
		run(e, func(done func()) { d.Write(0, la(uint64(i*setsLines)), done) })
	}
	if mem.writebacks == 0 {
		t.Fatal("modified victim never written back")
	}
	if d.StateOf(0, victim) != Invalid {
		t.Fatal("victim state lingered")
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRandomStormKeepsInvariants(t *testing.T) {
	e, d, _ := newDomain(4)
	rng := rand.New(rand.NewSource(77))
	pendingDone := 0
	for i := 0; i < 5000; i++ {
		core := rng.Intn(4)
		addr := la(uint64(rng.Intn(256)))
		pendingDone++
		cb := func() { pendingDone-- }
		switch rng.Intn(3) {
		case 0:
			d.Read(core, addr, cb)
		case 1:
			d.Write(core, addr, cb)
		default:
			d.ReadExclusive(core, addr, cb)
		}
		if i%16 == 0 {
			e.Run()
		}
	}
	e.Run()
	if pendingDone != 0 {
		t.Fatalf("%d operations never completed", pendingDone)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReadExclusiveLatencyScalesWithSharers(t *testing.T) {
	// An upgrade with sharers costs at least a directory lookup plus an
	// invalidation round — far less than a 4000-cycle shootdown.
	e, d, _ := newDomain(4)
	for c := 0; c < 4; c++ {
		run(e, func(done func()) { d.Read(c, la(9), done) })
	}
	lat := run(e, func(done func()) { d.ReadExclusive(0, la(9), done) })
	cfg := DefaultConfig()
	min := cfg.L1Hit + cfg.DirLookup + cfg.Invalidate
	if lat < min {
		t.Fatalf("latency %d below protocol floor %d", lat, min)
	}
	if lat > 500 {
		t.Fatalf("latency %d way above a coherence round", lat)
	}
}
