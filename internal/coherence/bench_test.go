package coherence

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/sim"
)

// syncMem serves fetches instantly; the benchmark measures protocol and
// table costs, not the memory below.
type syncMem struct{}

func (syncMem) Fetch(addr arch.PhysAddr, done func()) { done() }
func (syncMem) WriteBack(addr arch.PhysAddr)          {}

// BenchmarkMESILookup measures a coherent read against a warm domain:
// the flat per-page state/directory lookup plus the protocol's hit
// path, across a working set large enough to step through many pages.
func BenchmarkMESILookup(b *testing.B) {
	e := sim.NewEngine()
	d := New(e, DefaultConfig(), syncMem{})
	const pages = 64
	const lines = pages * arch.LinesPerPage
	addr := func(i int) arch.PhysAddr {
		return arch.PhysAddr(i%lines) << arch.LineShift
	}
	for i := 0; i < lines; i++ {
		d.Read(i%d.Cores(), addr(i), nil)
	}
	e.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		d.Read(n%d.Cores(), addr(n), nil)
		e.Run()
	}
}
