package cpu

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/vm"
)

func newSystem(t *testing.T) (*core.Framework, *core.Port, *vm.Process) {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.MemoryPages = 4096
	f, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	port := f.NewPort()
	p := f.VM.NewProcess()
	if err := f.VM.MapAnon(p, 0, 64); err != nil {
		t.Fatal(err)
	}
	return f, port, p
}

func runCore(f *core.Framework, c *Core, limit uint64) {
	done := false
	c.Run(limit, func() { done = true })
	f.Engine.Run()
	if !done {
		panic("core did not finish")
	}
}

func TestComputeOnlyCPIApproachesOne(t *testing.T) {
	f, port, p := newSystem(t)
	instrs := make([]Instr, 1000)
	for i := range instrs {
		instrs[i] = Instr{Kind: Compute, N: 1}
	}
	c := New(f.Engine, port, p.PID, NewSliceTrace(instrs))
	runCore(f, c, 0)
	if c.Retired() != 1000 {
		t.Fatalf("retired = %d", c.Retired())
	}
	if cpi := c.CPI(); cpi < 0.99 || cpi > 1.2 {
		t.Fatalf("compute-only CPI = %v, want ≈1", cpi)
	}
}

func TestComputeBurstsRetireAllInstructions(t *testing.T) {
	f, port, p := newSystem(t)
	c := New(f.Engine, port, p.PID, NewSliceTrace([]Instr{
		{Kind: Compute, N: 10}, {Kind: Compute, N: 5}, {Kind: Compute, N: 1},
	}))
	runCore(f, c, 0)
	if c.Retired() != 16 {
		t.Fatalf("retired = %d, want 16", c.Retired())
	}
}

func TestLimitStopsEarly(t *testing.T) {
	f, port, p := newSystem(t)
	instrs := make([]Instr, 1000)
	for i := range instrs {
		instrs[i] = Instr{Kind: Compute, N: 1}
	}
	c := New(f.Engine, port, p.PID, NewSliceTrace(instrs))
	runCore(f, c, 100)
	if c.Retired() < 100 || c.Retired() > 110 {
		t.Fatalf("retired = %d, want ≈100", c.Retired())
	}
}

func TestLoadsStallWhenDependentWindowFull(t *testing.T) {
	// A single cold load among computes: CPI impact bounded by the miss
	// latency amortised over the window, not serialized per instruction.
	f, port, p := newSystem(t)
	var instrs []Instr
	instrs = append(instrs, Instr{Kind: Load, VA: 0})
	for i := 0; i < 200; i++ {
		instrs = append(instrs, Instr{Kind: Compute, N: 1})
	}
	c := New(f.Engine, port, p.PID, NewSliceTrace(instrs))
	runCore(f, c, 0)
	if c.Retired() != 201 {
		t.Fatalf("retired = %d", c.Retired())
	}
	// The load's ~1200-cycle cold latency is overlapped with dispatching
	// the window behind it, but retirement is in-order, so total cycles ≈
	// miss latency + remaining computes.
	if c.Cycles() < 1000 {
		t.Fatalf("cycles = %d, too fast for a cold TLB+DRAM miss", c.Cycles())
	}
	if c.Cycles() > 2500 {
		t.Fatalf("cycles = %d, load appears serialized", c.Cycles())
	}
}

func TestIndependentLoadsOverlap(t *testing.T) {
	// Two cores each issue 8 loads to distinct pages. MLP: total time must
	// be far less than 8 sequential cold misses.
	f, port, p := newSystem(t)
	var instrs []Instr
	for i := 0; i < 8; i++ {
		instrs = append(instrs, Instr{Kind: Load, VA: arch.VirtAddr(i * arch.PageSize)})
	}
	c := New(f.Engine, port, p.PID, NewSliceTrace(instrs))
	runCore(f, c, 0)
	// One cold access ≈ TLB walk (1011) + L1/L2/L3 tags + DRAM (~100).
	// Eight serialized ≈ 9000+. Overlapped should be well under half.
	if c.Cycles() > 4500 {
		t.Fatalf("cycles = %d, no overlap between independent loads", c.Cycles())
	}
}

func TestStoresRetire(t *testing.T) {
	f, port, p := newSystem(t)
	var instrs []Instr
	for i := 0; i < 50; i++ {
		instrs = append(instrs, Instr{Kind: Store, VA: arch.VirtAddr(i * arch.LineSize)})
		instrs = append(instrs, Instr{Kind: Compute, N: 2})
	}
	c := New(f.Engine, port, p.PID, NewSliceTrace(instrs))
	runCore(f, c, 0)
	if c.Retired() != 150 {
		t.Fatalf("retired = %d, want 150", c.Retired())
	}
	if f.Engine.Stats.Get("cpu.instructions") != 150 {
		t.Fatal("stats not recorded")
	}
}

func TestRunTwicePanics(t *testing.T) {
	f, port, p := newSystem(t)
	c := New(f.Engine, port, p.PID, NewSliceTrace([]Instr{{Kind: Compute, N: 1}}))
	c.Run(0, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Run(0, nil)
	_ = f
}

func TestFuncTrace(t *testing.T) {
	n := 0
	tr := FuncTrace(func() (Instr, bool) {
		if n >= 5 {
			return Instr{}, false
		}
		n++
		return Instr{Kind: Compute, N: 1}, true
	})
	f, port, p := newSystem(t)
	c := New(f.Engine, port, p.PID, tr)
	runCore(f, c, 0)
	if c.Retired() != 5 {
		t.Fatalf("retired = %d", c.Retired())
	}
}

func TestHotLoopCPINearOne(t *testing.T) {
	// Warm data: repeated loads of the same line plus computes — after
	// warm-up, CPI should sit near 1 (every op is a hit).
	f, port, p := newSystem(t)
	var instrs []Instr
	for i := 0; i < 500; i++ {
		instrs = append(instrs, Instr{Kind: Load, VA: 0})
		instrs = append(instrs, Instr{Kind: Compute, N: 3})
	}
	c := New(f.Engine, port, p.PID, NewSliceTrace(instrs))
	runCore(f, c, 0)
	if cpi := c.CPI(); cpi > 2.0 {
		t.Fatalf("hot-loop CPI = %v, want near 1", cpi)
	}
}
