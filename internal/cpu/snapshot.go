package cpu

// Snapshot support: between runs the core is quiescent — no tick event
// pending, every occupied window slot completed (in-flight completions
// drain with the engine) — so its state is the window ring, the
// dispatch cursors, and the trace position. The trace itself is not
// captured (workload generators wrap unexportable RNG state); callers
// rebuild one and replay Fetched() records to reposition it.

// Snapshot is an immutable capture of an idle core.
type Snapshot struct {
	window     [WindowSize]slot
	head, tail uint64
	fetched    uint64
}

// Snapshot captures the window and cursors. It panics if the core is
// running or any slot has an operation in flight — snapshots are only
// taken after the engine drains.
func (c *Core) Snapshot() *Snapshot {
	if c.running || c.ticking {
		panic("cpu: snapshot of a running core")
	}
	for i := c.head; i != c.tail; i++ {
		s := c.window[i%WindowSize]
		if s.outstanding || !s.done {
			panic("cpu: snapshot with incomplete window slot")
		}
	}
	return &Snapshot{window: c.window, head: c.head, tail: c.tail, fetched: c.fetched}
}

// Restore loads the captured window state into this core, which must
// have been built with a trace already repositioned past s's fetched
// count.
func (c *Core) Restore(s *Snapshot) {
	if c.running || c.ticking {
		panic("cpu: restore into a running core")
	}
	c.window = s.window
	c.head, c.tail = s.head, s.tail
	c.fetched = s.fetched
}
