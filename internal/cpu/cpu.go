// Package cpu models the processor core of Table 2: a 2.67 GHz,
// single-issue, out-of-order core with a 64-entry instruction window.
// The core is trace-driven — it dispatches one instruction per cycle into
// the window, issues memory operations to its port of the memory system
// as they dispatch (so independent misses overlap, giving the
// memory-level parallelism the paper's copy-vs-overlay analysis hinges
// on), and retires instructions in order from the head of the window.
package cpu

import (
	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/sim"
)

// Kind is the class of a trace instruction.
type Kind uint8

const (
	// Compute is an ALU burst of N instructions, one cycle each.
	Compute Kind = iota
	// Load reads the cache line containing VA.
	Load
	// Store writes the cache line containing VA.
	Store
	// LoadOverlay reads the overlay cache line containing VA through the
	// overlay computation model (§5.2): the hardware iterates overlay
	// lines straight from the OMT's OBitVector, so the access skips the
	// TLB and addresses the Overlay Address Space directly.
	LoadOverlay
)

// Instr is one trace record. N is the burst length for Compute (≥ 1) and
// ignored for memory operations.
type Instr struct {
	Kind Kind
	VA   arch.VirtAddr
	N    int
}

// Trace supplies instructions. ok=false ends the program.
type Trace interface {
	Next() (Instr, bool)
}

// WindowSize is the instruction-window capacity (Table 2).
const WindowSize = 64

// ringMask extracts a ring index from a completion argument's low bits.
const ringMask = WindowSize - 1

type slot struct {
	count       int  // instructions this slot retires as
	done        bool // completed execution
	outstanding bool // memory op in flight
}

// Core is one simulated CPU. The instruction window is a fixed ring of
// slot values addressed by dispatch order; completion events are
// pre-bound continuations carrying the ring index, so the steady-state
// dispatch/retire loop performs no allocations.
type Core struct {
	engine *sim.Engine
	port   *core.Port
	pid    arch.PID
	trace  Trace

	window    [WindowSize]slot
	head      uint64 // dispatch number of the window's oldest slot
	tail      uint64 // dispatch number of the next slot to fill
	fetched   uint64 // trace records consumed over the core's lifetime
	retired   uint64
	limit     uint64
	started   sim.Cycle
	finished  sim.Cycle
	running   bool
	exhausted bool
	onDone    func()
	ticking   bool

	tickCont      sim.Cont     // clears ticking, then ticks
	computeDoneFn sim.ArgEvent // arg = dispatch number
	memDoneFn     sim.ArgEvent // arg = dispatch number
}

// New creates a core executing trace on behalf of process pid through the
// given memory port.
func New(engine *sim.Engine, port *core.Port, pid arch.PID, trace Trace) *Core {
	c := &Core{engine: engine, port: port, pid: pid, trace: trace}
	c.tickCont = sim.ContOf(func() {
		c.ticking = false
		c.tick()
	})
	// Completions carry the instruction's dispatch number, which is
	// monotonic across runs (a limit-based finish can leave completions in
	// flight that drain during the next run, exactly as the window's
	// leftover contents carry over). A ring slot is only reused once its
	// instruction retires, and retiring requires the completion to have
	// fired, so the dispatch number's ring index always names the right
	// in-flight slot.
	c.computeDoneFn = func(arg uint64) {
		c.window[arg&ringMask].done = true
		c.scheduleTick(0)
	}
	c.memDoneFn = func(arg uint64) {
		s := &c.window[arg&ringMask]
		s.outstanding = false
		s.done = true
		c.scheduleTick(0)
	}
	return c
}

// size returns the window occupancy.
func (c *Core) size() int { return int(c.tail - c.head) }

// headSlot returns the oldest dispatched slot.
func (c *Core) headSlot() *slot { return &c.window[c.head%WindowSize] }

// Run starts execution and stops once `limit` instructions have retired
// (or the trace ends). onDone fires at completion. Drive the engine
// (engine.Run or RunWhile) to make progress.
func (c *Core) Run(limit uint64, onDone func()) {
	if c.running {
		panic("cpu: core already running")
	}
	c.running = true
	c.exhausted = false
	c.retired = 0
	c.limit = limit
	c.onDone = onDone
	c.started = c.engine.Now()
	c.scheduleTick(0)
}

// Retired returns instructions retired in the current/last run.
func (c *Core) Retired() uint64 { return c.retired }

// Fetched returns the number of trace records consumed over the core's
// lifetime. A forked core replays this many records of a fresh trace to
// reposition it before restoring window state.
func (c *Core) Fetched() uint64 { return c.fetched }

// Cycles returns the cycles consumed by the last completed run.
func (c *Core) Cycles() sim.Cycle { return c.finished - c.started }

// CPI returns cycles per instruction for the last completed run.
func (c *Core) CPI() float64 {
	if c.retired == 0 {
		return 0
	}
	return float64(c.finished-c.started) / float64(c.retired)
}

// Running reports whether the core still has work.
func (c *Core) Running() bool { return c.running }

func (c *Core) scheduleTick(delay sim.Cycle) {
	if c.ticking {
		return
	}
	c.ticking = true
	c.engine.ScheduleCont(delay, c.tickCont)
}

func (c *Core) tick() {
	if !c.running {
		return
	}
	// Retire from the head, in order; one slot per cycle (a compute burst
	// retires as a unit — it spent its N cycles executing).
	if c.size() > 0 && c.headSlot().done {
		c.retired += uint64(c.headSlot().count)
		c.head++
	}
	if c.limitReached() {
		c.finish()
		return
	}

	// Dispatch one instruction per cycle into the window.
	if c.size() < WindowSize && !c.exhausted {
		instr, ok := c.trace.Next()
		if !ok {
			c.exhausted = true
		} else {
			c.fetched++
			c.dispatch(instr)
		}
	}
	if c.exhausted && c.size() == 0 {
		c.finish()
		return
	}

	// Keep ticking while forward progress is possible next cycle; when the
	// core is stalled (window full or drained, head incomplete), sleep
	// until a completion callback re-arms the tick.
	canDispatch := c.size() < WindowSize && !c.exhausted
	canRetire := c.size() > 0 && c.headSlot().done
	if canDispatch || canRetire {
		c.scheduleTick(1)
	}
}

func (c *Core) limitReached() bool { return c.limit > 0 && c.retired >= c.limit }

func (c *Core) finish() {
	if !c.running {
		return
	}
	c.running = false
	c.finished = c.engine.Now()
	c.engine.Stats.Add("cpu.instructions", c.retired)
	if c.onDone != nil {
		c.onDone()
	}
}

func (c *Core) dispatch(instr Instr) {
	idx := c.tail % WindowSize
	s := &c.window[idx]
	*s = slot{count: 1}
	arg := c.tail
	c.tail++
	switch instr.Kind {
	case Compute:
		n := instr.N
		if n < 1 {
			n = 1
		}
		s.count = n
		c.engine.ScheduleArg(sim.Cycle(n), c.computeDoneFn, arg)
	case Load:
		s.outstanding = true
		c.port.ReadCont(c.pid, instr.VA, sim.Bind(c.memDoneFn, arg))
	case LoadOverlay:
		s.outstanding = true
		c.port.ReadOverlayCont(c.pid, instr.VA, sim.Bind(c.memDoneFn, arg))
	case Store:
		s.outstanding = true
		c.port.WriteCont(c.pid, instr.VA, sim.Bind(c.memDoneFn, arg))
	default:
		panic("cpu: unknown instruction kind")
	}
}

// SliceTrace adapts a []Instr to the Trace interface.
type SliceTrace struct {
	instrs []Instr
	pos    int
}

// NewSliceTrace wraps a fixed instruction sequence.
func NewSliceTrace(instrs []Instr) *SliceTrace { return &SliceTrace{instrs: instrs} }

// Next implements Trace.
func (t *SliceTrace) Next() (Instr, bool) {
	if t.pos >= len(t.instrs) {
		return Instr{}, false
	}
	i := t.instrs[t.pos]
	t.pos++
	return i, true
}

// FuncTrace adapts a generator function to the Trace interface.
type FuncTrace func() (Instr, bool)

// Next implements Trace.
func (f FuncTrace) Next() (Instr, bool) { return f() }
