// Package cpu models the processor core of Table 2: a 2.67 GHz,
// single-issue, out-of-order core with a 64-entry instruction window.
// The core is trace-driven — it dispatches one instruction per cycle into
// the window, issues memory operations to its port of the memory system
// as they dispatch (so independent misses overlap, giving the
// memory-level parallelism the paper's copy-vs-overlay analysis hinges
// on), and retires instructions in order from the head of the window.
package cpu

import (
	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/sim"
)

// Kind is the class of a trace instruction.
type Kind uint8

const (
	// Compute is an ALU burst of N instructions, one cycle each.
	Compute Kind = iota
	// Load reads the cache line containing VA.
	Load
	// Store writes the cache line containing VA.
	Store
	// LoadOverlay reads the overlay cache line containing VA through the
	// overlay computation model (§5.2): the hardware iterates overlay
	// lines straight from the OMT's OBitVector, so the access skips the
	// TLB and addresses the Overlay Address Space directly.
	LoadOverlay
)

// Instr is one trace record. N is the burst length for Compute (≥ 1) and
// ignored for memory operations.
type Instr struct {
	Kind Kind
	VA   arch.VirtAddr
	N    int
}

// Trace supplies instructions. ok=false ends the program.
type Trace interface {
	Next() (Instr, bool)
}

// WindowSize is the instruction-window capacity (Table 2).
const WindowSize = 64

type slot struct {
	count       int  // instructions this slot retires as
	done        bool // completed execution
	outstanding bool // memory op in flight
}

// Core is one simulated CPU.
type Core struct {
	engine *sim.Engine
	port   *core.Port
	pid    arch.PID
	trace  Trace

	window    []*slot
	retired   uint64
	limit     uint64
	started   sim.Cycle
	finished  sim.Cycle
	running   bool
	exhausted bool
	onDone    func()
	ticking   bool
}

// New creates a core executing trace on behalf of process pid through the
// given memory port.
func New(engine *sim.Engine, port *core.Port, pid arch.PID, trace Trace) *Core {
	return &Core{engine: engine, port: port, pid: pid, trace: trace}
}

// Run starts execution and stops once `limit` instructions have retired
// (or the trace ends). onDone fires at completion. Drive the engine
// (engine.Run or RunWhile) to make progress.
func (c *Core) Run(limit uint64, onDone func()) {
	if c.running {
		panic("cpu: core already running")
	}
	c.running = true
	c.exhausted = false
	c.retired = 0
	c.limit = limit
	c.onDone = onDone
	c.started = c.engine.Now()
	c.scheduleTick(0)
}

// Retired returns instructions retired in the current/last run.
func (c *Core) Retired() uint64 { return c.retired }

// Cycles returns the cycles consumed by the last completed run.
func (c *Core) Cycles() sim.Cycle { return c.finished - c.started }

// CPI returns cycles per instruction for the last completed run.
func (c *Core) CPI() float64 {
	if c.retired == 0 {
		return 0
	}
	return float64(c.finished-c.started) / float64(c.retired)
}

// Running reports whether the core still has work.
func (c *Core) Running() bool { return c.running }

func (c *Core) scheduleTick(delay sim.Cycle) {
	if c.ticking {
		return
	}
	c.ticking = true
	c.engine.Schedule(delay, func() {
		c.ticking = false
		c.tick()
	})
}

func (c *Core) tick() {
	if !c.running {
		return
	}
	// Retire from the head, in order; one slot per cycle (a compute burst
	// retires as a unit — it spent its N cycles executing).
	if len(c.window) > 0 && c.window[0].done {
		c.retired += uint64(c.window[0].count)
		c.window = c.window[1:]
	}
	if c.limitReached() {
		c.finish()
		return
	}

	// Dispatch one instruction per cycle into the window.
	if len(c.window) < WindowSize && !c.exhausted {
		instr, ok := c.trace.Next()
		if !ok {
			c.exhausted = true
		} else {
			c.dispatch(instr)
		}
	}
	if c.exhausted && len(c.window) == 0 {
		c.finish()
		return
	}

	// Keep ticking while forward progress is possible next cycle; when the
	// core is stalled (window full or drained, head incomplete), sleep
	// until a completion callback re-arms the tick.
	canDispatch := len(c.window) < WindowSize && !c.exhausted
	canRetire := len(c.window) > 0 && c.window[0].done
	if canDispatch || canRetire {
		c.scheduleTick(1)
	}
}

func (c *Core) limitReached() bool { return c.limit > 0 && c.retired >= c.limit }

func (c *Core) finish() {
	if !c.running {
		return
	}
	c.running = false
	c.finished = c.engine.Now()
	c.engine.Stats.Add("cpu.instructions", c.retired)
	if c.onDone != nil {
		c.onDone()
	}
}

func (c *Core) dispatch(instr Instr) {
	s := &slot{count: 1}
	c.window = append(c.window, s)
	switch instr.Kind {
	case Compute:
		n := instr.N
		if n < 1 {
			n = 1
		}
		s.count = n
		c.engine.Schedule(sim.Cycle(n), func() { s.done = true; c.scheduleTick(0) })
	case Load:
		s.outstanding = true
		c.port.Read(c.pid, instr.VA, func() {
			s.outstanding = false
			s.done = true
			c.scheduleTick(0)
		})
	case LoadOverlay:
		s.outstanding = true
		c.port.ReadOverlay(c.pid, instr.VA, func() {
			s.outstanding = false
			s.done = true
			c.scheduleTick(0)
		})
	case Store:
		s.outstanding = true
		c.port.Write(c.pid, instr.VA, func() {
			s.outstanding = false
			s.done = true
			c.scheduleTick(0)
		})
	default:
		panic("cpu: unknown instruction kind")
	}
}

// SliceTrace adapts a []Instr to the Trace interface.
type SliceTrace struct {
	instrs []Instr
	pos    int
}

// NewSliceTrace wraps a fixed instruction sequence.
func NewSliceTrace(instrs []Instr) *SliceTrace { return &SliceTrace{instrs: instrs} }

// Next implements Trace.
func (t *SliceTrace) Next() (Instr, bool) {
	if t.pos >= len(t.instrs) {
		return Instr{}, false
	}
	i := t.instrs[t.pos]
	t.pos++
	return i, true
}

// FuncTrace adapts a generator function to the Trace interface.
type FuncTrace func() (Instr, bool)

// Next implements Trace.
func (f FuncTrace) Next() (Instr, bool) { return f() }
