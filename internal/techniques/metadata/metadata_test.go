package metadata

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/vm"
)

func setup(t *testing.T, pages int) (*core.Framework, *vm.Process, *Shadow) {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.MemoryPages = 4096
	f, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := f.VM.NewProcess()
	if err := f.VM.MapAnon(p, 0, pages); err != nil {
		t.Fatal(err)
	}
	s, err := Attach(f, p, 0, pages)
	if err != nil {
		t.Fatal(err)
	}
	return f, p, s
}

func TestMetadataIndependentOfData(t *testing.T) {
	f, p, s := setup(t, 1)
	f.Store(p.PID, 64, []byte{0xaa})
	if err := s.Set(64, []byte{0x01}); err != nil {
		t.Fatal(err)
	}
	var data, meta [1]byte
	f.Load(p.PID, 64, data[:])
	s.Get(64, meta[:])
	if data[0] != 0xaa || meta[0] != 0x01 {
		t.Fatalf("data=%#x meta=%#x", data[0], meta[0])
	}
	// Overwriting data leaves metadata alone.
	f.Store(p.PID, 64, []byte{0xbb})
	s.Get(64, meta[:])
	if meta[0] != 0x01 {
		t.Fatal("data store clobbered metadata")
	}
}

func TestUnsetMetadataIsZero(t *testing.T) {
	_, _, s := setup(t, 1)
	buf := make([]byte, 256)
	if err := s.Get(512, buf); err != nil {
		t.Fatal(err)
	}
	for _, b := range buf {
		if b != 0 {
			t.Fatal("unset metadata non-zero")
		}
	}
}

func TestTaintLifecycle(t *testing.T) {
	_, _, s := setup(t, 2)
	if err := s.TaintRange(100, 16, 0x7); err != nil {
		t.Fatal(err)
	}
	tainted, label, err := s.Tainted(100, 16)
	if err != nil || !tainted || label != 0x7 {
		t.Fatalf("tainted=%v label=%#x err=%v", tainted, label, err)
	}
	// Byte granularity: the neighbour is clean.
	tainted, _, _ = s.Tainted(116, 4)
	if tainted {
		t.Fatal("neighbouring bytes tainted")
	}
	s.ClearTaint(100, 16)
	tainted, _, _ = s.Tainted(100, 16)
	if tainted {
		t.Fatal("clear failed")
	}
}

func TestTaintZeroLabelRejected(t *testing.T) {
	_, _, s := setup(t, 1)
	if err := s.TaintRange(0, 4, 0); err == nil {
		t.Fatal("zero label accepted")
	}
}

func TestPropagateTaint(t *testing.T) {
	_, _, s := setup(t, 2)
	s.TaintRange(0, 8, 0x1)
	s.TaintRange(64, 8, 0x2)
	if err := s.PropagateTaint(4096, 8, 0, 64); err != nil {
		t.Fatal(err)
	}
	tainted, label, _ := s.Tainted(4096, 8)
	if !tainted || label != 0x3 {
		t.Fatalf("propagated label = %#x, want OR = 0x3", label)
	}
	// Propagating from clean sources untaints the destination.
	if err := s.PropagateTaint(4096, 8, 128, 256); err != nil {
		t.Fatal(err)
	}
	tainted, _, _ = s.Tainted(4096, 8)
	if tainted {
		t.Fatal("clean propagation left taint")
	}
}

func TestTaintCrossesPages(t *testing.T) {
	_, _, s := setup(t, 2)
	if err := s.TaintRange(arch.PageSize-8, 16, 0x5); err != nil {
		t.Fatal(err)
	}
	tainted, _, _ := s.Tainted(arch.PageSize-8, 16)
	if !tainted {
		t.Fatal("cross-page taint lost")
	}
}

func TestShadowBytesProportionalToUse(t *testing.T) {
	_, _, s := setup(t, 8)
	if s.ShadowBytes(0, 8) != 0 {
		t.Fatal("untouched shadow consumes memory")
	}
	s.TaintRange(0, 4, 1)
	used := s.ShadowBytes(0, 8)
	if used == 0 || used > 512 {
		t.Fatalf("one tainted line costs %d bytes", used)
	}
	// Full data footprint would be 8 pages; shadow is tiny.
	if used >= 8*arch.PageSize {
		t.Fatal("shadow not fine-grained")
	}
}

func TestAttachRequiresMappedPages(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.MemoryPages = 256
	f, _ := core.New(cfg)
	p := f.VM.NewProcess()
	if _, err := Attach(f, p, 0, 1); err == nil {
		t.Fatal("attach on unmapped pages must fail")
	}
}
