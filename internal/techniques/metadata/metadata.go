// Package metadata implements fine-grained metadata management (§5.3.4):
// the Overlay Address Space serves as shadow memory for a process's data
// pages. Regular loads and stores see only the data; the metadata
// load/store operations (the paper's proposed new instructions, here the
// ShadowLoad/ShadowStore framework calls) see only the overlay. One byte
// of shadow per data byte supports taint tracking, access-watch bits, or
// word-granularity protection with no metadata-specific hardware.
package metadata

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/vm"
)

// Shadow manages the shadow space of one process region.
type Shadow struct {
	f    *core.Framework
	proc *vm.Process
}

// Attach enables shadow mode on [baseVPN, baseVPN+pages).
func Attach(f *core.Framework, proc *vm.Process, baseVPN arch.VPN, pages int) (*Shadow, error) {
	for i := 0; i < pages; i++ {
		pte := proc.Table.Lookup(baseVPN + arch.VPN(i))
		if pte == nil {
			return nil, fmt.Errorf("metadata: vpn %#x unmapped", uint64(baseVPN)+uint64(i))
		}
		pte.Shadow = true
	}
	return &Shadow{f: f, proc: proc}, nil
}

// Set writes metadata bytes for the data at va.
func (s *Shadow) Set(va arch.VirtAddr, meta []byte) error {
	return s.f.ShadowStore(s.proc.PID, va, meta)
}

// Get reads metadata bytes for the data at va (zero when never set).
func (s *Shadow) Get(va arch.VirtAddr, buf []byte) error {
	return s.f.ShadowLoad(s.proc.PID, va, buf)
}

// Taint-tracking convenience layer: one shadow byte per data byte,
// non-zero meaning tainted (the FlexiTaint/memcheck use case).

// TaintRange marks [va, va+n) tainted with the given label (non-zero).
func (s *Shadow) TaintRange(va arch.VirtAddr, n int, label byte) error {
	if label == 0 {
		return fmt.Errorf("metadata: taint label must be non-zero")
	}
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = label
	}
	return s.Set(va, buf)
}

// ClearTaint untaints [va, va+n).
func (s *Shadow) ClearTaint(va arch.VirtAddr, n int) error {
	return s.Set(va, make([]byte, n))
}

// Tainted reports whether any byte in [va, va+n) is tainted, and the
// first label found.
func (s *Shadow) Tainted(va arch.VirtAddr, n int) (bool, byte, error) {
	buf := make([]byte, n)
	if err := s.Get(va, buf); err != nil {
		return false, 0, err
	}
	for _, b := range buf {
		if b != 0 {
			return true, b, nil
		}
	}
	return false, 0, nil
}

// PropagateTaint implements the canonical taint rule for a move/ALU op:
// dst's taint becomes the OR of the sources' taints.
func (s *Shadow) PropagateTaint(dst arch.VirtAddr, n int, srcs ...arch.VirtAddr) error {
	out := make([]byte, n)
	tmp := make([]byte, n)
	for _, src := range srcs {
		if err := s.Get(src, tmp); err != nil {
			return err
		}
		for i := range out {
			out[i] |= tmp[i]
		}
	}
	return s.Set(dst, out)
}

// ShadowBytes reports the Overlay Memory Store bytes consumed by the
// region's metadata — proportional to metadata actually written, not to
// the data footprint.
func (s *Shadow) ShadowBytes(baseVPN arch.VPN, pages int) int {
	total := 0
	for i := 0; i < pages; i++ {
		_, b := s.f.OverlayInfo(s.proc.PID, baseVPN+arch.VPN(i))
		total += b
	}
	return total
}
