package superpage

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/vm"
)

func setup(t *testing.T) (*core.Framework, *vm.Process, *SuperPage) {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.MemoryPages = 2048
	f, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := f.VM.NewProcess()
	sp, err := Alloc(f, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	return f, p, sp
}

func TestAllocRequiresAlignment(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.MemoryPages = 2048
	f, _ := core.New(cfg)
	p := f.VM.NewProcess()
	if _, err := Alloc(f, p, 7); err == nil {
		t.Fatal("unaligned super-page accepted")
	}
}

func TestOwnerReadWrite(t *testing.T) {
	_, p, sp := setup(t)
	if err := sp.Write(p, 123456, []byte{9}); err != nil {
		t.Fatal(err)
	}
	var b [1]byte
	sp.Read(p, 123456, b[:])
	if b[0] != 9 {
		t.Fatalf("read back %d", b[0])
	}
	if sp.EntriesNeeded(p) != 1 {
		t.Fatalf("owner needs %d entries, want 1", sp.EntriesNeeded(p))
	}
}

func TestShareCOWSegmentGranularity(t *testing.T) {
	f, p, sp := setup(t)
	sp.Write(p, 5*arch.PageSize+8, []byte{1})
	child := f.VM.NewProcess()
	if err := sp.Share(child); err != nil {
		t.Fatal(err)
	}
	framesBefore := f.Mem.AllocatedPages()

	// Child writes one segment: exactly one 4 KB copy, not 2 MB.
	if err := sp.Write(child, 5*arch.PageSize+8, []byte{2}); err != nil {
		t.Fatal(err)
	}
	if got := f.Mem.AllocatedPages() - framesBefore; got != 1 {
		t.Fatalf("share write copied %d frames, want 1", got)
	}
	var b [1]byte
	sp.Read(p, 5*arch.PageSize+8, b[:])
	if b[0] != 1 {
		t.Fatal("owner saw child's write")
	}
	sp.Read(child, 5*arch.PageSize+8, b[:])
	if b[0] != 2 {
		t.Fatal("child lost its write")
	}
	if sp.DivertedSegments(child) != 1 {
		t.Fatalf("diverted = %d", sp.DivertedSegments(child))
	}
	if sp.EntriesNeeded(child) != 2 { // super-page + 1 diverted segment
		t.Fatalf("entries = %d, want 2", sp.EntriesNeeded(child))
	}
	if f.Engine.Stats.Get("superpage.segment_diversions") != 1 {
		t.Fatal("diversion not counted")
	}
}

func TestEntriesNeededVsShatter(t *testing.T) {
	f, p, sp := setup(t)
	child := f.VM.NewProcess()
	sp.Share(child)
	for i := 0; i < 10; i++ {
		if err := sp.Write(child, arch.VirtAddr(i)*arch.PageSize, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	entries := sp.EntriesNeeded(child)
	if entries != 11 {
		t.Fatalf("entries = %d, want 11", entries)
	}
	if entries >= SegmentsPerSuperPage {
		t.Fatal("no benefit over shattering")
	}
	_ = p
}

func TestProtectSegment(t *testing.T) {
	f, p, sp := setup(t)
	if err := sp.ProtectSegment(p, 3); err != nil {
		t.Fatal(err)
	}
	if err := f.Store(p.PID, 3*arch.PageSize, []byte{1}); err == nil {
		t.Fatal("write to protected segment succeeded")
	}
	// Other segments still writable.
	if err := sp.Write(p, 4*arch.PageSize, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if sp.EntriesNeeded(p) != 2 {
		t.Fatalf("entries = %d, want 2 (superpage + protected segment)", sp.EntriesNeeded(p))
	}
}

func TestWriteOutsideRangeRejected(t *testing.T) {
	_, p, sp := setup(t)
	if err := sp.Write(p, arch.VirtAddr(SegmentsPerSuperPage)*arch.PageSize, []byte{1}); err == nil {
		t.Fatal("out-of-range write accepted")
	}
}

func TestForeignProcessRejected(t *testing.T) {
	f, _, sp := setup(t)
	stranger := f.VM.NewProcess()
	if err := sp.Write(stranger, 0, []byte{1}); err == nil {
		t.Fatal("foreign write accepted")
	}
}
