// Package superpage implements flexible super-pages (§5.3.5): applying
// the overlay idea one level up the page-table hierarchy. A 2 MB
// super-page is one TLB entry; an overlay at the PMD level remaps
// individual 4 KB segments, so the OS can copy-on-write or re-protect a
// segment without shattering the whole super-page into 512 base pages.
//
// The package models the super-page as a contiguous 512-frame run plus a
// 512-bit segment OBitVector: segments with the bit clear translate
// through the super-page mapping; set bits divert to per-segment frames
// (the "overlay at the higher-level page table"). The TLB-reach benefit
// is captured by EntriesNeeded: 1 entry for the super-page plus its
// diverted segments, versus 512 after a conventional shatter.
package superpage

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/vm"
)

// SegmentsPerSuperPage is 2 MB / 4 KB.
const SegmentsPerSuperPage = 512

// SuperPage is one 2 MB mapping with segment-grained overlays.
type SuperPage struct {
	f       *core.Framework
	BaseVPN arch.VPN

	owner    *vm.Process
	sharers  []*vm.Process
	diverted map[arch.PID]*segSet
}

type segSet struct {
	bits [SegmentsPerSuperPage / 64]uint64
}

func (s *segSet) has(i int) bool { return s.bits[i/64]>>(uint(i)%64)&1 != 0 }
func (s *segSet) set(i int)      { s.bits[i/64] |= 1 << (uint(i) % 64) }
func (s *segSet) count() int {
	n := 0
	for _, w := range s.bits {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// Alloc maps a 2 MB super-page for proc at a 2 MB-aligned base VPN.
func Alloc(f *core.Framework, proc *vm.Process, baseVPN arch.VPN) (*SuperPage, error) {
	if uint64(baseVPN)%SegmentsPerSuperPage != 0 {
		return nil, fmt.Errorf("superpage: base vpn %#x not 2MB aligned", uint64(baseVPN))
	}
	if err := f.VM.MapAnon(proc, baseVPN, SegmentsPerSuperPage); err != nil {
		return nil, err
	}
	return &SuperPage{
		f: f, BaseVPN: baseVPN, owner: proc,
		diverted: map[arch.PID]*segSet{proc.PID: {}},
	}, nil
}

// Share maps the super-page copy-on-write into dst — the capability the
// paper notes no conventional system provides without shattering. Every
// segment is shared read-only; writes divert one segment at a time.
func (sp *SuperPage) Share(dst *vm.Process) error {
	for i := 0; i < SegmentsPerSuperPage; i++ {
		vpn := sp.BaseVPN + arch.VPN(i)
		pte := sp.owner.Table.Lookup(vpn)
		if pte == nil {
			return fmt.Errorf("superpage: segment %d unmapped", i)
		}
		pte.Writable = false
		pte.COW = true
		dst.Table.Map(vpn, *pte)
		sp.f.VM.AddRef(pte.PPN)
	}
	sp.sharers = append(sp.sharers, dst)
	sp.diverted[dst.PID] = &segSet{}
	return nil
}

// Write stores data at va on behalf of proc; a first write to a shared
// segment diverts just that segment (one 4 KB copy), never the whole
// 2 MB region.
func (sp *SuperPage) Write(proc *vm.Process, va arch.VirtAddr, data []byte) error {
	seg := int(va.Page() - sp.BaseVPN)
	if seg < 0 || seg >= SegmentsPerSuperPage {
		return fmt.Errorf("superpage: va %#x outside super-page", uint64(va))
	}
	set := sp.diverted[proc.PID]
	if set == nil {
		return fmt.Errorf("superpage: pid %d does not map this super-page", proc.PID)
	}
	pte := proc.Table.Lookup(va.Page())
	wasCOW := pte.COW
	if err := sp.f.Store(proc.PID, va, data); err != nil {
		return err
	}
	if wasCOW {
		set.set(seg)
		sp.f.Engine.Stats.Inc("superpage.segment_diversions")
	}
	return nil
}

// Read loads from the super-page on behalf of proc.
func (sp *SuperPage) Read(proc *vm.Process, va arch.VirtAddr, buf []byte) error {
	return sp.f.Load(proc.PID, va, buf)
}

// ProtectSegment makes one segment read-only for proc — multiple
// protection domains within a single super-page.
func (sp *SuperPage) ProtectSegment(proc *vm.Process, seg int) error {
	if seg < 0 || seg >= SegmentsPerSuperPage {
		return fmt.Errorf("superpage: segment %d out of range", seg)
	}
	pte := proc.Table.Lookup(sp.BaseVPN + arch.VPN(seg))
	if pte == nil {
		return fmt.Errorf("superpage: segment %d unmapped", seg)
	}
	pte.Writable = false
	pte.COW = false
	sp.diverted[proc.PID].set(seg)
	return nil
}

// EntriesNeeded returns the TLB entries proc needs for this region under
// flexible super-pages: one for the super-page plus one per diverted
// segment. A conventional shatter would need all 512.
func (sp *SuperPage) EntriesNeeded(proc *vm.Process) int {
	set := sp.diverted[proc.PID]
	if set == nil {
		return 0
	}
	return 1 + set.count()
}

// DivertedSegments returns how many of proc's segments have diverged from
// the super-page mapping.
func (sp *SuperPage) DivertedSegments(proc *vm.Process) int {
	set := sp.diverted[proc.PID]
	if set == nil {
		return 0
	}
	return set.count()
}
