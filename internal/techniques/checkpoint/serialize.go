package checkpoint

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/arch"
)

// Binary backing-store format for one checkpoint: §5.3.2's "only these
// overlays need to be written to the backing store".
//
//	magic   "POCKPT1\n"
//	seq     uvarint
//	count   uvarint
//	records count × { vpn uvarint, line uvarint, data [64]byte }

var ckptMagic = [8]byte{'P', 'O', 'C', 'K', 'P', 'T', '1', '\n'}

// WriteTo serialises the checkpoint; the byte count is the backing-store
// write bandwidth the mechanism consumes.
func (c *Checkpoint) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	written := int64(0)
	n, err := bw.Write(ckptMagic[:])
	written += int64(n)
	if err != nil {
		return written, fmt.Errorf("checkpoint: write magic: %w", err)
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		k := binary.PutUvarint(buf[:], v)
		n, err := bw.Write(buf[:k])
		written += int64(n)
		return err
	}
	if err := putUvarint(uint64(c.Seq)); err != nil {
		return written, err
	}
	if err := putUvarint(uint64(len(c.Deltas))); err != nil {
		return written, err
	}
	for _, d := range c.Deltas {
		if err := putUvarint(uint64(d.VPN)); err != nil {
			return written, err
		}
		if err := putUvarint(uint64(d.Line)); err != nil {
			return written, err
		}
		n, err := bw.Write(d.Data[:])
		written += int64(n)
		if err != nil {
			return written, fmt.Errorf("checkpoint: write delta: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return written, err
	}
	return written, nil
}

// ReadCheckpoint deserialises one checkpoint from the backing store.
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) {
	br := bufio.NewReader(r)
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("checkpoint: read magic: %w", err)
	}
	if hdr != ckptMagic {
		return nil, errors.New("checkpoint: bad magic (not a POCKPT1 stream)")
	}
	seq, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: seq: %w", err)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: count: %w", err)
	}
	cp := &Checkpoint{Seq: int(seq)}
	pages := map[arch.VPN]bool{}
	for i := uint64(0); i < count; i++ {
		var d Delta
		vpn, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("checkpoint: delta %d vpn: %w", i, err)
		}
		line, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("checkpoint: delta %d line: %w", i, err)
		}
		if line >= arch.LinesPerPage {
			return nil, fmt.Errorf("checkpoint: delta %d has line %d out of range", i, line)
		}
		d.VPN = arch.VPN(vpn)
		d.Line = int(line)
		if _, err := io.ReadFull(br, d.Data[:]); err != nil {
			return nil, fmt.Errorf("checkpoint: delta %d data: %w", i, err)
		}
		cp.Deltas = append(cp.Deltas, d)
		pages[d.VPN] = true
	}
	cp.PagesDirty = len(pages)
	return cp, nil
}
