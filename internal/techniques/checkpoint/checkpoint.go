// Package checkpoint implements overlay-based incremental checkpointing
// (§5.3.2): between checkpoints, all updates to the protected region
// collect in page overlays; taking a checkpoint writes only those
// overlays to the backing store and commits them, so each checkpoint
// captures precisely the delta since the last one. This reduces backing-
// store write bandwidth versus page-granularity checkpointing by the
// ratio of written lines to written pages.
package checkpoint

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/vm"
)

// Delta is one modified cache line captured by a checkpoint.
type Delta struct {
	VPN  arch.VPN
	Line int
	Data [arch.LineSize]byte
}

// Checkpoint is one incremental checkpoint.
type Checkpoint struct {
	Seq        int
	Deltas     []Delta
	PagesDirty int
}

// Bytes returns the backing-store bytes this checkpoint cost (line data;
// per-line headers are negligible and elided).
func (c *Checkpoint) Bytes() int { return len(c.Deltas) * arch.LineSize }

// FullPageBytes returns what a page-granularity checkpoint of the same
// dirty set would have written.
func (c *Checkpoint) FullPageBytes() int { return c.PagesDirty * arch.PageSize }

// Checkpointer protects a contiguous region of one process.
type Checkpointer struct {
	f       *core.Framework
	proc    *vm.Process
	baseVPN arch.VPN
	pages   int

	snapshot map[arch.VPN]*[arch.PageSize]byte
	history  []*Checkpoint
	armed    bool
}

// New creates a checkpointer over [baseVPN, baseVPN+pages). Begin must be
// called to arm it.
func New(f *core.Framework, proc *vm.Process, baseVPN arch.VPN, pages int) *Checkpointer {
	return &Checkpointer{f: f, proc: proc, baseVPN: baseVPN, pages: pages}
}

// Begin snapshots the region (the recovery baseline) and arms overlay
// capture: every page becomes read-only copy-on-write with overlays, so
// subsequent writes land in overlays.
func (c *Checkpointer) Begin() error {
	if c.armed {
		return fmt.Errorf("checkpoint: already armed")
	}
	c.snapshot = make(map[arch.VPN]*[arch.PageSize]byte, c.pages)
	for i := 0; i < c.pages; i++ {
		vpn := c.baseVPN + arch.VPN(i)
		pte := c.proc.Table.Lookup(vpn)
		if pte == nil {
			return fmt.Errorf("checkpoint: vpn %#x unmapped", uint64(vpn))
		}
		if c.f.VM.Refs(pte.PPN) != 1 {
			return fmt.Errorf("checkpoint: vpn %#x shares its frame", uint64(vpn))
		}
		var snap [arch.PageSize]byte
		if err := c.f.Load(c.proc.PID, vpn.Addr(), snap[:]); err != nil {
			return err
		}
		c.snapshot[vpn] = &snap
		c.arm(pte)
	}
	c.armed = true
	return nil
}

func (c *Checkpointer) arm(pte *vm.PTE) {
	pte.COW = true
	pte.Writable = false
	pte.Overlay = true
}

// Take captures a checkpoint: it serialises every overlay line written
// since the previous checkpoint, commits the overlays onto the physical
// pages, and re-arms capture.
func (c *Checkpointer) Take() (*Checkpoint, error) {
	if !c.armed {
		return nil, fmt.Errorf("checkpoint: not armed")
	}
	cp := &Checkpoint{Seq: len(c.history) + 1}
	for i := 0; i < c.pages; i++ {
		vpn := c.baseVPN + arch.VPN(i)
		obits, _ := c.f.OverlayInfo(c.proc.PID, vpn)
		if obits.Empty() {
			continue
		}
		cp.PagesDirty++
		for _, line := range obits.Lines() {
			var d Delta
			d.VPN = vpn
			d.Line = line
			va := vpn.Addr() + arch.VirtAddr(uint64(line)<<arch.LineShift)
			if err := c.f.Load(c.proc.PID, va, d.Data[:]); err != nil {
				return nil, err
			}
			cp.Deltas = append(cp.Deltas, d)
		}
		if err := c.f.Promote(c.proc, vpn, core.Commit); err != nil {
			return nil, err
		}
		// Re-arm the page for the next interval.
		c.arm(c.proc.Table.Lookup(vpn))
	}
	c.history = append(c.history, cp)
	c.f.Engine.Stats.Inc("checkpoint.taken")
	return cp, nil
}

// History returns the checkpoints taken so far.
func (c *Checkpointer) History() []*Checkpoint { return c.history }

// RestoreTo rolls the region back to the state as of checkpoint seq
// (0 restores the Begin snapshot). Pending uncheckpointed updates are
// discarded.
func (c *Checkpointer) RestoreTo(seq int) error {
	if seq < 0 || seq > len(c.history) {
		return fmt.Errorf("checkpoint: no checkpoint %d", seq)
	}
	// Drop uncheckpointed overlays.
	for i := 0; i < c.pages; i++ {
		vpn := c.baseVPN + arch.VPN(i)
		if obits, _ := c.f.OverlayInfo(c.proc.PID, vpn); !obits.Empty() {
			if err := c.f.Promote(c.proc, vpn, core.Discard); err != nil {
				return err
			}
			c.arm(c.proc.Table.Lookup(vpn))
		}
	}
	// Rebuild: snapshot, then replay deltas 1..seq.
	for vpn, snap := range c.snapshot {
		pte := c.proc.Table.Lookup(vpn)
		// Write the baseline directly; capture must not record recovery.
		c.disarm(pte)
		if err := c.f.Store(c.proc.PID, vpn.Addr(), snap[:]); err != nil {
			return err
		}
	}
	for _, cp := range c.history[:seq] {
		for _, d := range cp.Deltas {
			va := d.VPN.Addr() + arch.VirtAddr(uint64(d.Line)<<arch.LineShift)
			if err := c.f.Store(c.proc.PID, va, d.Data[:]); err != nil {
				return err
			}
		}
	}
	c.history = c.history[:seq]
	for i := 0; i < c.pages; i++ {
		c.arm(c.proc.Table.Lookup(c.baseVPN + arch.VPN(i)))
	}
	return nil
}

func (c *Checkpointer) disarm(pte *vm.PTE) {
	pte.COW = false
	pte.Writable = true
	pte.Overlay = false
}
