package checkpoint

import (
	"bytes"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/vm"
)

func newRegion(t *testing.T, pages int) (*core.Framework, *vm.Process, *Checkpointer) {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.MemoryPages = 4096
	f, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := f.VM.NewProcess()
	if err := f.VM.MapAnon(p, 0, pages); err != nil {
		t.Fatal(err)
	}
	return f, p, New(f, p, 0, pages)
}

func TestTakeCapturesOnlyDeltas(t *testing.T) {
	f, p, c := newRegion(t, 8)
	f.Store(p.PID, 0, []byte{1}) // pre-Begin state
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	// Touch 3 lines on 2 pages.
	f.Store(p.PID, 0, []byte{2})
	f.Store(p.PID, 5*arch.LineSize, []byte{3})
	f.Store(p.PID, arch.PageSize+100, []byte{4})

	cp, err := c.Take()
	if err != nil {
		t.Fatal(err)
	}
	if len(cp.Deltas) != 3 {
		t.Fatalf("deltas = %d, want 3", len(cp.Deltas))
	}
	if cp.PagesDirty != 2 {
		t.Fatalf("dirty pages = %d, want 2", cp.PagesDirty)
	}
	if cp.Bytes() != 3*arch.LineSize {
		t.Fatalf("bytes = %d", cp.Bytes())
	}
	if cp.FullPageBytes() != 2*arch.PageSize {
		t.Fatalf("full-page bytes = %d", cp.FullPageBytes())
	}
	if cp.Bytes() >= cp.FullPageBytes() {
		t.Fatal("overlay checkpoint not smaller than page checkpoint")
	}
}

func TestSuccessiveCheckpointsArePreciseDeltas(t *testing.T) {
	f, p, c := newRegion(t, 4)
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	f.Store(p.PID, 0, []byte{1})
	cp1, _ := c.Take()
	// Same line again plus a new one.
	f.Store(p.PID, 0, []byte{2})
	f.Store(p.PID, arch.LineSize, []byte{3})
	cp2, err := c.Take()
	if err != nil {
		t.Fatal(err)
	}
	if len(cp1.Deltas) != 1 || len(cp2.Deltas) != 2 {
		t.Fatalf("delta counts = %d,%d, want 1,2", len(cp1.Deltas), len(cp2.Deltas))
	}
	// An interval with no writes produces an empty checkpoint.
	cp3, _ := c.Take()
	if len(cp3.Deltas) != 0 {
		t.Fatalf("idle checkpoint has %d deltas", len(cp3.Deltas))
	}
}

func TestDataIntactAfterTake(t *testing.T) {
	f, p, c := newRegion(t, 2)
	c.Begin()
	f.Store(p.PID, 100, []byte{42})
	c.Take()
	var b [1]byte
	f.Load(p.PID, 100, b[:])
	if b[0] != 42 {
		t.Fatal("commit lost the data")
	}
	// Writes continue to be captured after Take re-arms.
	f.Store(p.PID, 100, []byte{43})
	cp, _ := c.Take()
	if len(cp.Deltas) != 1 {
		t.Fatal("re-arm failed")
	}
}

func TestRestoreToBaseline(t *testing.T) {
	f, p, c := newRegion(t, 2)
	f.Store(p.PID, 0, []byte{10})
	c.Begin()
	f.Store(p.PID, 0, []byte{11})
	c.Take()
	f.Store(p.PID, 0, []byte{12})
	c.Take()
	if err := c.RestoreTo(0); err != nil {
		t.Fatal(err)
	}
	var b [1]byte
	f.Load(p.PID, 0, b[:])
	if b[0] != 10 {
		t.Fatalf("baseline restore = %d, want 10", b[0])
	}
	if len(c.History()) != 0 {
		t.Fatal("history not truncated")
	}
}

func TestRestoreToIntermediate(t *testing.T) {
	f, p, c := newRegion(t, 2)
	f.Store(p.PID, 0, []byte{10})
	c.Begin()
	f.Store(p.PID, 0, []byte{11})
	f.Store(p.PID, 999, []byte{1})
	c.Take() // seq 1
	f.Store(p.PID, 0, []byte{12})
	c.Take()                      // seq 2
	f.Store(p.PID, 0, []byte{13}) // uncheckpointed

	if err := c.RestoreTo(1); err != nil {
		t.Fatal(err)
	}
	var b [1]byte
	f.Load(p.PID, 0, b[:])
	if b[0] != 11 {
		t.Fatalf("restore(1) = %d, want 11", b[0])
	}
	f.Load(p.PID, 999, b[:])
	if b[0] != 1 {
		t.Fatal("restore lost sibling line")
	}
	// Capture still works after restore.
	f.Store(p.PID, 0, []byte{20})
	cp, err := c.Take()
	if err != nil {
		t.Fatal(err)
	}
	if len(cp.Deltas) == 0 {
		t.Fatal("capture dead after restore")
	}
}

func TestErrors(t *testing.T) {
	f, p, c := newRegion(t, 2)
	if _, err := c.Take(); err == nil {
		t.Fatal("Take before Begin must fail")
	}
	if err := c.RestoreTo(5); err == nil {
		t.Fatal("RestoreTo past history must fail")
	}
	c.Begin()
	if err := c.Begin(); err == nil {
		t.Fatal("double Begin must fail")
	}
	_ = p
	_ = f
}

func TestBeginRejectsSharedPages(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.MemoryPages = 4096
	f, _ := core.New(cfg)
	p := f.VM.NewProcess()
	f.VM.MapAnon(p, 0, 1)
	f.Fork(p, false)
	c := New(f, p, 0, 1)
	if err := c.Begin(); err == nil {
		t.Fatal("Begin on shared pages must fail")
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	f, p, c := newRegion(t, 4)
	c.Begin()
	f.Store(p.PID, 0, []byte{1, 2, 3})
	f.Store(p.PID, 3*arch.PageSize+999, []byte{9})
	cp, err := c.Take()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := cp.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	// Backing-store cost ≈ line data plus a few header bytes.
	if buf.Len() > cp.Bytes()+64 {
		t.Fatalf("serialised %d bytes for %d bytes of deltas", buf.Len(), cp.Bytes())
	}
	got, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != cp.Seq || len(got.Deltas) != len(cp.Deltas) || got.PagesDirty != cp.PagesDirty {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, cp)
	}
	for i := range cp.Deltas {
		if got.Deltas[i] != cp.Deltas[i] {
			t.Fatalf("delta %d differs", i)
		}
	}
}

func TestReadCheckpointRejectsGarbage(t *testing.T) {
	if _, err := ReadCheckpoint(bytes.NewReader([]byte("not a checkpoint stream"))); err == nil {
		t.Fatal("garbage accepted")
	}
	// Truncated stream after valid header.
	var buf bytes.Buffer
	cp := &Checkpoint{Seq: 1, Deltas: []Delta{{VPN: 1, Line: 2}}}
	cp.WriteTo(&buf)
	trunc := buf.Bytes()[:buf.Len()-10]
	if _, err := ReadCheckpoint(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated stream accepted")
	}
}
