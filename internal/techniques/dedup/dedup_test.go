package dedup

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/vm"
)

func newFW(t *testing.T) *core.Framework {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.MemoryPages = 4096
	f, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// fillPage writes a recognisable pattern, then patches `diff` lines.
func fillPage(t *testing.T, f *core.Framework, p *vm.Process, vpn arch.VPN, pattern byte, diffLines []int) {
	t.Helper()
	buf := make([]byte, arch.PageSize)
	for i := range buf {
		buf[i] = pattern
	}
	for _, line := range diffLines {
		for i := 0; i < arch.LineSize; i++ {
			buf[line*arch.LineSize+i] = pattern ^ 0xff
		}
	}
	if err := f.Store(p.PID, vpn.Addr(), buf); err != nil {
		t.Fatal(err)
	}
}

func TestDiffLines(t *testing.T) {
	f := newFW(t)
	p := f.VM.NewProcess()
	f.VM.MapAnon(p, 0, 2)
	fillPage(t, f, p, 0, 0x11, nil)
	fillPage(t, f, p, 1, 0x11, []int{3, 40})
	d := New(f, 16)
	diff, err := d.DiffLines(Page{p, 0}, Page{p, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(diff) != 2 || diff[0] != 3 || diff[1] != 40 {
		t.Fatalf("diff = %v", diff)
	}
}

func TestFoldSavesMemoryAndPreservesContents(t *testing.T) {
	f := newFW(t)
	p := f.VM.NewProcess()
	f.VM.MapAnon(p, 0, 2)
	fillPage(t, f, p, 0, 0x22, nil)
	fillPage(t, f, p, 1, 0x22, []int{7})

	framesBefore := f.Mem.AllocatedPages()
	d := New(f, 16)
	ok, err := d.Fold(Page{p, 0}, Page{p, 1})
	if err != nil || !ok {
		t.Fatalf("fold: ok=%v err=%v", ok, err)
	}
	// One frame released (the dup page's).
	if f.Mem.AllocatedPages() >= framesBefore {
		t.Fatal("fold released no frame")
	}
	// Both pages read back exactly as before.
	var b [arch.LineSize]byte
	f.Load(p.PID, arch.PageSize+7*arch.LineSize, b[:])
	for _, x := range b {
		if x != 0x22^0xff {
			t.Fatalf("dup's differing line corrupted: %#x", x)
		}
	}
	f.Load(p.PID, arch.PageSize, b[:])
	for _, x := range b {
		if x != 0x22 {
			t.Fatalf("dup's shared line corrupted: %#x", x)
		}
	}
	f.Load(p.PID, 7*arch.LineSize, b[:])
	for _, x := range b {
		if x != 0x22 {
			t.Fatalf("base corrupted: %#x", x)
		}
	}
	if d.FoldedPages != 1 || d.BytesSaved <= 0 {
		t.Fatalf("stats: %+v", d)
	}
}

func TestFoldedPagesDivergeOnWrite(t *testing.T) {
	f := newFW(t)
	p := f.VM.NewProcess()
	f.VM.MapAnon(p, 0, 2)
	fillPage(t, f, p, 0, 0x33, nil)
	fillPage(t, f, p, 1, 0x33, nil)
	d := New(f, 16)
	if ok, err := d.Fold(Page{p, 0}, Page{p, 1}); !ok || err != nil {
		t.Fatalf("fold failed: %v %v", ok, err)
	}
	// Write to the base page after folding: must not leak into dup.
	if err := f.Store(p.PID, 100, []byte{0x99}); err != nil {
		t.Fatal(err)
	}
	var b [1]byte
	f.Load(p.PID, arch.PageSize+100, b[:])
	if b[0] != 0x33 {
		t.Fatalf("dup observed base's write: %#x", b[0])
	}
	f.Load(p.PID, 100, b[:])
	if b[0] != 0x99 {
		t.Fatal("base lost its write")
	}
}

func TestFoldRejectsTooDifferent(t *testing.T) {
	f := newFW(t)
	p := f.VM.NewProcess()
	f.VM.MapAnon(p, 0, 2)
	fillPage(t, f, p, 0, 0x44, nil)
	fillPage(t, f, p, 1, 0x44, []int{0, 1, 2, 3, 4})
	d := New(f, 3)
	ok, err := d.Fold(Page{p, 0}, Page{p, 1})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("fold accepted a page above the diff threshold")
	}
}

func TestScanAndFold(t *testing.T) {
	f := newFW(t)
	p := f.VM.NewProcess()
	f.VM.MapAnon(p, 0, 4)
	fillPage(t, f, p, 0, 0x55, nil)
	fillPage(t, f, p, 1, 0x55, []int{1})  // folds onto 0
	fillPage(t, f, p, 2, 0xaa, nil)       // new base
	fillPage(t, f, p, 3, 0x55, []int{60}) // folds onto 0
	d := New(f, 8)
	folds, err := d.ScanAndFold([]Page{{p, 0}, {p, 1}, {p, 2}, {p, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if folds != 2 {
		t.Fatalf("folds = %d, want 2", folds)
	}
	if f.Engine.Stats.Get("dedup.folds") != 2 {
		t.Fatal("stat mismatch")
	}
}

func TestFoldAcrossProcesses(t *testing.T) {
	// The VM-deduplication use case: same guest pages in two processes.
	f := newFW(t)
	p1 := f.VM.NewProcess()
	p2 := f.VM.NewProcess()
	f.VM.MapAnon(p1, 0, 1)
	f.VM.MapAnon(p2, 0, 1)
	fillPage(t, f, p1, 0, 0x66, nil)
	fillPage(t, f, p2, 0, 0x66, []int{12})
	d := New(f, 16)
	ok, err := d.Fold(Page{p1, 0}, Page{p2, 0})
	if !ok || err != nil {
		t.Fatalf("cross-process fold: %v %v", ok, err)
	}
	var b [1]byte
	f.Load(p2.PID, 12*arch.LineSize, b[:])
	if b[0] != 0x66^0xff {
		t.Fatal("p2's difference lost")
	}
}
