// Package dedup implements fine-grained memory deduplication on top of
// the page-overlay framework (§5.3.1). Like the Difference Engine, pages
// with mostly identical contents are folded onto a single base physical
// page; unlike the software Difference Engine, the differing cache lines
// live in each page's overlay, so patched pages remain directly
// accessible — no software patching on the access path.
package dedup

import (
	"bytes"
	"fmt"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/vm"
)

// Page identifies one virtual page of one process.
type Page struct {
	Proc *vm.Process
	VPN  arch.VPN
}

// Deduplicator folds near-duplicate pages.
type Deduplicator struct {
	f *core.Framework
	// MaxDiffLines bounds how different a page may be from its base and
	// still be folded (the paper's "mostly same data").
	MaxDiffLines int

	FoldedPages int
	BytesSaved  int
}

// New creates a deduplicator. maxDiffLines of 16 folds pages that share
// at least 75 % of their lines.
func New(f *core.Framework, maxDiffLines int) *Deduplicator {
	return &Deduplicator{f: f, MaxDiffLines: maxDiffLines}
}

// DiffLines returns the indices of cache lines on which the two pages
// currently differ (through overlay semantics).
func (d *Deduplicator) DiffLines(a, b Page) ([]int, error) {
	var la, lb [arch.LineSize]byte
	var diff []int
	for line := 0; line < arch.LinesPerPage; line++ {
		va := arch.VirtAddr(uint64(line) << arch.LineShift)
		if err := d.f.Load(a.Proc.PID, a.VPN.Addr()+va, la[:]); err != nil {
			return nil, err
		}
		if err := d.f.Load(b.Proc.PID, b.VPN.Addr()+va, lb[:]); err != nil {
			return nil, err
		}
		if !bytes.Equal(la[:], lb[:]) {
			diff = append(diff, line)
		}
	}
	return diff, nil
}

// Fold deduplicates dup against base: if they differ in at most
// MaxDiffLines lines, dup is remapped onto base's physical page with its
// differing lines stored in dup's overlay. Both pages become
// copy-on-write so later writes diverge safely through overlays.
func (d *Deduplicator) Fold(base, dup Page) (bool, error) {
	basePTE := base.Proc.Table.Lookup(base.VPN)
	dupPTE := dup.Proc.Table.Lookup(dup.VPN)
	if basePTE == nil || dupPTE == nil {
		return false, fmt.Errorf("dedup: unmapped page")
	}
	if basePTE.PPN == dupPTE.PPN {
		return false, nil // already share a frame
	}
	obits, _ := d.f.OverlayInfo(dup.Proc.PID, dup.VPN)
	if !obits.Empty() {
		return false, fmt.Errorf("dedup: dup page already has an overlay")
	}
	diff, err := d.DiffLines(base, dup)
	if err != nil {
		return false, err
	}
	if len(diff) > d.MaxDiffLines {
		return false, nil
	}

	// Capture dup's differing lines before the remap changes what reads
	// return.
	patches := make(map[int][arch.LineSize]byte, len(diff))
	for _, line := range diff {
		var buf [arch.LineSize]byte
		va := dup.VPN.Addr() + arch.VirtAddr(uint64(line)<<arch.LineShift)
		if err := d.f.Load(dup.Proc.PID, va, buf[:]); err != nil {
			return false, err
		}
		patches[line] = buf
	}

	// Fold: dup shares base's frame; base itself becomes COW so its owner
	// cannot mutate shared data in place.
	if err := d.f.VM.ShareFrame(dup.Proc, dup.VPN, basePTE.PPN, true); err != nil {
		return false, err
	}
	basePTE.COW = true
	basePTE.Writable = false
	basePTE.Overlay = true

	// Store the differences: each store is an overlaying write into dup's
	// overlay.
	for _, line := range diff {
		buf := patches[line]
		va := dup.VPN.Addr() + arch.VirtAddr(uint64(line)<<arch.LineShift)
		if err := d.f.Store(dup.Proc.PID, va, buf[:]); err != nil {
			return false, err
		}
	}

	d.FoldedPages++
	d.BytesSaved += arch.PageSize - segmentBytesFor(len(diff))
	d.f.Engine.Stats.Inc("dedup.folds")
	return true, nil
}

// ScanAndFold greedily folds every page in the set onto the first page it
// matches, returning the number of folds.
func (d *Deduplicator) ScanAndFold(pages []Page) (int, error) {
	folds := 0
	var bases []Page
	for _, p := range pages {
		folded := false
		for _, b := range bases {
			ok, err := d.Fold(b, p)
			if err != nil {
				return folds, err
			}
			if ok {
				folds++
				folded = true
				break
			}
		}
		if !folded {
			bases = append(bases, p)
		}
	}
	return folds, nil
}

// segmentBytesFor approximates the OMS cost of an overlay with n lines.
func segmentBytesFor(n int) int {
	if n == 0 {
		return 0
	}
	size := 256
	for size < arch.PageSize && (size/arch.LineSize-1) < n {
		size *= 2
	}
	return size
}
