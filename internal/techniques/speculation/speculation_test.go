package speculation

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/vm"
)

func setup(t *testing.T, pages int) (*core.Framework, *vm.Process) {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.MemoryPages = 8192
	f, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := f.VM.NewProcess()
	if err := f.VM.MapAnon(p, 0, pages); err != nil {
		t.Fatal(err)
	}
	return f, p
}

func TestCommitMakesUpdatesArchitectural(t *testing.T) {
	f, p := setup(t, 2)
	f.Store(p.PID, 0, []byte{1})
	r, err := Begin(f, p, []arch.VPN{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	f.Store(p.PID, 0, []byte{2})
	f.Store(p.PID, arch.PageSize, []byte{3})
	if r.SpeculativeLines() != 2 {
		t.Fatalf("speculative lines = %d", r.SpeculativeLines())
	}
	if err := r.Commit(); err != nil {
		t.Fatal(err)
	}
	var b [1]byte
	f.Load(p.PID, 0, b[:])
	if b[0] != 2 {
		t.Fatalf("committed value = %d", b[0])
	}
	// Page is writable again; stores are plain.
	if err := f.Store(p.PID, 0, []byte{5}); err != nil {
		t.Fatal(err)
	}
	if obits, _ := f.OverlayInfo(p.PID, 0); !obits.Empty() {
		t.Fatal("overlay lingered after commit")
	}
	if r.State() != Committed {
		t.Fatal("state wrong")
	}
}

func TestAbortDiscardsUpdates(t *testing.T) {
	f, p := setup(t, 1)
	f.Store(p.PID, 0, []byte{7})
	r, _ := Begin(f, p, []arch.VPN{0})
	f.Store(p.PID, 0, []byte{8})
	var b [1]byte
	f.Load(p.PID, 0, b[:])
	if b[0] != 8 {
		t.Fatal("speculative value not visible inside region")
	}
	if err := r.Abort(); err != nil {
		t.Fatal(err)
	}
	f.Load(p.PID, 0, b[:])
	if b[0] != 7 {
		t.Fatalf("abort left value %d, want 7", b[0])
	}
	if r.State() != Aborted {
		t.Fatal("state wrong")
	}
}

func TestUnboundedSpeculationSpillsToOMS(t *testing.T) {
	// Write far more lines than any cache-resident speculation could
	// buffer: many full pages of speculative state.
	const pages = 32
	f, p := setup(t, pages)
	vpns := make([]arch.VPN, pages)
	for i := range vpns {
		vpns[i] = arch.VPN(i)
	}
	r, err := Begin(f, p, vpns)
	if err != nil {
		t.Fatal(err)
	}
	for pg := 0; pg < pages; pg++ {
		for line := 0; line < arch.LinesPerPage; line++ {
			va := arch.VirtAddr(pg*arch.PageSize + line*arch.LineSize)
			if err := f.Store(p.PID, va, []byte{byte(pg), byte(line)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if got := r.SpeculativeLines(); got != pages*arch.LinesPerPage {
		t.Fatalf("speculative lines = %d, want %d", got, pages*arch.LinesPerPage)
	}
	if f.OMS.BytesInUse() == 0 {
		t.Fatal("speculative state never reached the OMS")
	}
	if err := r.Commit(); err != nil {
		t.Fatal(err)
	}
	var b [2]byte
	f.Load(p.PID, 31*arch.PageSize+63*arch.LineSize, b[:])
	if b[0] != 31 || b[1] != 63 {
		t.Fatalf("committed data wrong: %v", b)
	}
}

func TestBeginRejectsSharedAndOverlaidPages(t *testing.T) {
	f, p := setup(t, 2)
	f.Fork(p, true)
	if _, err := Begin(f, p, []arch.VPN{0}); err == nil {
		t.Fatal("Begin on shared page must fail")
	}
}

func TestDoubleFinishFails(t *testing.T) {
	f, p := setup(t, 1)
	r, _ := Begin(f, p, []arch.VPN{0})
	f.Store(p.PID, 0, []byte{1})
	if err := r.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := r.Abort(); err == nil {
		t.Fatal("finish after finish must fail")
	}
}

func TestSequentialRegions(t *testing.T) {
	f, p := setup(t, 1)
	for i := byte(0); i < 5; i++ {
		r, err := Begin(f, p, []arch.VPN{0})
		if err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		f.Store(p.PID, 0, []byte{i})
		if i%2 == 0 {
			r.Commit()
		} else {
			r.Abort()
		}
	}
	var b [1]byte
	f.Load(p.PID, 0, b[:])
	if b[0] != 4 { // last committed value
		t.Fatalf("final value = %d, want 4", b[0])
	}
}
