// Package speculation virtualises hardware speculation with page overlays
// (§5.3.3): speculative memory updates are buffered in the overlays of
// the pages a region covers, so speculation is bounded by Overlay Memory
// Store capacity rather than cache capacity — evicting a speculatively
// written line spills it to the OMS instead of aborting (the limitation
// of cache-based transactional memory the paper cites). Commit and abort
// map directly onto the framework's commit/discard promotion actions.
package speculation

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/vm"
)

// State tracks a region's lifecycle.
type State int

const (
	// Active means speculative updates are being buffered.
	Active State = iota
	// Committed means updates were made architectural.
	Committed
	// Aborted means updates were discarded.
	Aborted
)

type savedFlags struct {
	writable bool
	cow      bool
	overlay  bool
}

// Region is one speculative execution scope over a set of pages.
type Region struct {
	f     *core.Framework
	proc  *vm.Process
	vpns  []arch.VPN
	saved map[arch.VPN]savedFlags
	state State
}

// Begin opens a speculative region over the given pages, which must be
// private (unshared) and writable.
func Begin(f *core.Framework, proc *vm.Process, vpns []arch.VPN) (*Region, error) {
	r := &Region{f: f, proc: proc, vpns: vpns, saved: make(map[arch.VPN]savedFlags)}
	for _, vpn := range vpns {
		pte := proc.Table.Lookup(vpn)
		if pte == nil {
			return nil, fmt.Errorf("speculation: vpn %#x unmapped", uint64(vpn))
		}
		if f.VM.Refs(pte.PPN) != 1 {
			return nil, fmt.Errorf("speculation: vpn %#x shares its frame", uint64(vpn))
		}
		if obits, _ := f.OverlayInfo(proc.PID, vpn); !obits.Empty() {
			return nil, fmt.Errorf("speculation: vpn %#x already has an overlay", uint64(vpn))
		}
		r.saved[vpn] = savedFlags{writable: pte.Writable, cow: pte.COW, overlay: pte.Overlay}
		pte.Writable = false
		pte.COW = true
		pte.Overlay = true
	}
	f.Engine.Stats.Inc("speculation.begins")
	return r, nil
}

// SpeculativeLines returns how many cache lines the region has buffered.
func (r *Region) SpeculativeLines() int {
	n := 0
	for _, vpn := range r.vpns {
		obits, _ := r.f.OverlayInfo(r.proc.PID, vpn)
		n += obits.Count()
	}
	return n
}

// State returns the region's lifecycle state.
func (r *Region) State() State { return r.state }

// Commit makes the buffered updates architectural.
func (r *Region) Commit() error { return r.finish(core.Commit, Committed) }

// Abort discards the buffered updates; the pages revert to their
// pre-speculation contents.
func (r *Region) Abort() error { return r.finish(core.Discard, Aborted) }

func (r *Region) finish(action core.PromoteAction, next State) error {
	if r.state != Active {
		return fmt.Errorf("speculation: region already finished")
	}
	for _, vpn := range r.vpns {
		if obits, _ := r.f.OverlayInfo(r.proc.PID, vpn); !obits.Empty() {
			if err := r.f.Promote(r.proc, vpn, action); err != nil {
				return err
			}
		}
		pte := r.proc.Table.Lookup(vpn)
		flags := r.saved[vpn]
		pte.Writable = flags.writable
		pte.COW = flags.cow
		pte.Overlay = flags.overlay
	}
	r.state = next
	if next == Committed {
		r.f.Engine.Stats.Inc("speculation.commits")
	} else {
		r.f.Engine.Stats.Inc("speculation.aborts")
	}
	return nil
}
