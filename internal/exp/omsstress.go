package exp

// This file implements the `omsstress` experiment: a multi-tenant churn
// workload against the Overlay Memory Store's buffer-manager mode. Each
// tenant drives a private store (or a stripe of one lock-striped shared
// store) through a deterministic seeded mix of segment allocs, frees,
// line inserts and migrations, with the frame capacity set well below
// the working set so the cooling queue and the beyond-DRAM spill tier
// carry the overflow. Every read is verified against the deterministic
// byte pattern the tenant wrote, so a segment that round-trips through
// the spill tier with corrupted data or a broken slot mapping fails the
// run rather than skewing a counter. Tenant streams are independent and
// seeded from the tenant index, so results are bit-identical at any
// harness worker count and identical between private and shared mode.

import (
	"context"
	"fmt"
	"io"
	"math/rand"

	"repro/internal/arch"
	"repro/internal/harness"
	"repro/internal/mem"
	"repro/internal/oms"
	"repro/internal/sim"
)

// OMSStressParams sizes the churn workload.
type OMSStressParams struct {
	Tenants  int  `json:"tenants"`
	Ops      int  `json:"ops"`      // operations per tenant
	Segments int  `json:"segments"` // overlay slots per tenant (working-set bound)
	Capacity int  `json:"capacity"` // frame budget per tenant store; 0 = unlimited
	Spill    bool `json:"spill"`    // evict cold segments to the spill tier
	Shared   bool `json:"-"`        // route tenants through one lock-striped store (execution hint)
}

// DefaultOMSStressParams is the CLI default: four tenants whose ~192
// segment working sets far exceed the 32-frame budget, forcing steady
// eviction and refill traffic.
func DefaultOMSStressParams() OMSStressParams {
	return OMSStressParams{Tenants: 4, Ops: 24000, Segments: 192, Capacity: 32, Spill: true}
}

// OMSStressResult is one tenant's deterministic outcome: the store's
// counter deltas plus the final occupancy. All fields are simulated
// quantities and compare exactly across machines and worker counts.
type OMSStressResult struct {
	Tenant          int    `json:"tenant"`
	Allocs          uint64 `json:"segment_allocs"`
	Frees           uint64 `json:"segment_frees"`
	Splits          uint64 `json:"segment_splits"`
	Coalesces       uint64 `json:"segment_coalesces"`
	Migrations      uint64 `json:"migrations"`
	Evictions       uint64 `json:"evictions"`
	Spills          uint64 `json:"spills"`
	Refills         uint64 `json:"refills"`
	SecondChances   uint64 `json:"second_chances"`
	Overruns        uint64 `json:"capacity_overruns"`
	PenaltyCycles   uint64 `json:"spill_penalty_cycles"`
	LineChecks      uint64 `json:"line_checks"` // pattern-verified line reads
	FramesOwned     int    `json:"frames_owned"`
	LiveSegments    int    `json:"live_segments"`
	SpilledSegments int    `json:"spilled_segments"`
	ResidentBytes   int    `json:"resident_bytes"`
	SpilledBytes    int    `json:"spilled_bytes"`
}

// stressTenant is one tenant's store plus the reference state the churn
// loop tracks: the current (possibly cold) handle, class and written
// lines per overlay slot. The evict hook rewrites refs in place exactly
// as the OMT's swizzled SegBase pointers are rewritten in the framework.
type stressTenant struct {
	st    *oms.Store
	stats *sim.Stats
	sh    *oms.Shared // nil in private mode
	key   uint64

	refs    []arch.PhysAddr
	classes []int
	lines   []arch.OBitVector
}

// with runs fn against the tenant's store, taking the stripe lock in
// shared mode — every store operation goes through here so the locking
// granularity matches what a shared deployment would pay.
func (t *stressTenant) with(fn func(*oms.Store)) {
	if t.sh != nil {
		t.sh.With(t.key, fn)
		return
	}
	fn(t.st)
}

// stressPattern is the deterministic byte each tenant writes at (slot,
// line, offset); reads verify against it after any number of spill
// round trips.
func stressPattern(tenant, slot, line, i int) byte {
	return byte(tenant*97 + slot*131 + line*7 + i)
}

func newStressTenant(tenant int, p OMSStressParams) (*stressTenant, error) {
	// The working set is at most Segments top-class frames; capacity mode
	// bounds residency, unlimited mode needs the full span plus growth
	// slack for the buddy allocator's doubling.
	pages := 4 * p.Segments
	if pages < 256 {
		pages = 256
	}
	m := mem.New(pages)
	stats := &sim.Stats{}
	st, err := oms.New(m, stats, 4)
	if err != nil {
		return nil, err
	}
	t := &stressTenant{
		st:      st,
		stats:   stats,
		key:     uint64(tenant),
		refs:    make([]arch.PhysAddr, p.Segments),
		classes: make([]int, p.Segments),
		lines:   make([]arch.OBitVector, p.Segments),
	}
	// Owner tokens are slot+1 (0 means unowned); on eviction the store
	// hands back the cold reference and the tenant unswizzles its handle.
	st.SetEvictHook(func(owner uint64, cold arch.PhysAddr) {
		t.refs[owner-1] = cold
	})
	if p.Capacity > 0 {
		st.SetCapacity(p.Capacity, p.Spill)
	}
	return t, nil
}

// churn runs the tenant's deterministic op stream. Verification errors
// abort the run; they indicate spill-tier data corruption, not workload
// variance.
func (t *stressTenant) churn(tenant int, p OMSStressParams) error {
	rng := rand.New(rand.NewSource(int64(tenant) + 1))
	var buf [arch.LineSize]byte
	var opErr error
	for op := 0; op < p.Ops && opErr == nil; op++ {
		slot := rng.Intn(p.Segments)
		switch {
		case t.refs[slot] == 0:
			// Empty slot: allocate a small segment and write its first line.
			class := rng.Intn(oms.NumClasses - 1)
			line := rng.Intn(arch.LinesPerPage)
			t.with(func(s *oms.Store) {
				base, err := s.AllocSegment(class)
				if err != nil {
					opErr = err
					return
				}
				s.SetOwner(base, uint64(slot)+1)
				t.refs[slot] = base
				t.classes[slot] = class
				t.lines[slot] = 0
				opErr = t.writeLine(s, slot, line, buf[:], tenant)
			})

		case rng.Intn(10) < 3:
			// Free: cold references release their spill record directly.
			t.with(func(s *oms.Store) {
				s.FreeSegment(t.refs[slot])
			})
			t.refs[slot] = 0
			t.lines[slot] = 0

		default:
			// Touch: resolve (refilling if spilled), verify a line already
			// written, then insert another — migrating up a class when the
			// segment is full.
			line := rng.Intn(arch.LinesPerPage)
			var pick int = -1
			if present := t.lines[slot].Lines(); len(present) > 0 {
				pick = present[rng.Intn(len(present))]
			}
			t.with(func(s *oms.Store) {
				base, _, err := s.Resolve(t.refs[slot])
				if err != nil {
					opErr = err
					return
				}
				t.refs[slot] = base
				if pick >= 0 {
					if opErr = t.verifyLine(s, slot, pick, buf[:], tenant); opErr != nil {
						return
					}
				}
				if !t.lines[slot].Has(line) {
					opErr = t.writeLine(s, slot, line, buf[:], tenant)
				}
			})
		}
	}
	if opErr != nil {
		return fmt.Errorf("omsstress tenant %d: %w", tenant, opErr)
	}
	return nil
}

// writeLine inserts `line` into the slot's segment (migrating to the
// next class when full) and writes the tenant's pattern bytes.
func (t *stressTenant) writeLine(s *oms.Store, slot, line int, buf []byte, tenant int) error {
	addr, full := s.InsertLine(t.refs[slot], line)
	if full {
		if t.classes[slot] >= oms.NumClasses-1 {
			return nil // 4 KB segments are direct-mapped and never full
		}
		newBase, err := s.Migrate(t.refs[slot], t.lines[slot])
		if err != nil {
			return err
		}
		t.refs[slot] = newBase
		t.classes[slot]++
		if addr, full = s.InsertLine(newBase, line); full {
			return fmt.Errorf("segment full after migration (slot %d class %d)", slot, t.classes[slot])
		}
	}
	for i := range buf {
		buf[i] = stressPattern(tenant, slot, line, i)
	}
	s.WriteLineData(addr, buf)
	t.lines[slot] = t.lines[slot].Set(line)
	return nil
}

// verifyLine reads a previously written line back and checks every byte.
func (t *stressTenant) verifyLine(s *oms.Store, slot, line int, buf []byte, tenant int) error {
	addr, ok := s.LocateLine(t.refs[slot], line)
	if !ok {
		return fmt.Errorf("slot %d line %d lost its segment slot", slot, line)
	}
	s.ReadLineData(addr, buf)
	for i := range buf {
		if want := stressPattern(tenant, slot, line, i); buf[i] != want {
			return fmt.Errorf("slot %d line %d byte %d: got %#x want %#x (data corrupted across spill)",
				slot, line, i, buf[i], want)
		}
	}
	t.stats.Inc("omsstress.line_checks")
	return nil
}

// result reduces the tenant's registry and final occupancy to the
// deterministic row, checking the conservation invariant on the way:
// resident plus spilled bytes must equal the bytes of every live
// segment the reference state still holds.
func (t *stressTenant) result(tenant int) (OMSStressResult, error) {
	var r OMSStressResult
	var invErr error
	t.with(func(s *oms.Store) {
		live := 0
		for slot, ref := range t.refs {
			if ref != 0 {
				live += oms.ClassBytes(t.classes[slot])
			}
		}
		if got := s.BytesInUse(); got != live {
			invErr = fmt.Errorf("omsstress tenant %d: store holds %d bytes, reference state %d", tenant, got, live)
			return
		}
		if s.ResidentBytes()+s.SpilledBytes() != s.BytesInUse() {
			invErr = fmt.Errorf("omsstress tenant %d: resident %d + spilled %d != in use %d",
				tenant, s.ResidentBytes(), s.SpilledBytes(), s.BytesInUse())
			return
		}
		r = OMSStressResult{
			Tenant:          tenant,
			Allocs:          t.stats.Get("oms.segment_allocs"),
			Frees:           t.stats.Get("oms.segment_frees"),
			Splits:          t.stats.Get("oms.segment_splits"),
			Coalesces:       t.stats.Get("oms.segment_coalesces"),
			Migrations:      t.stats.Get("oms.migrations"),
			Evictions:       t.stats.Get("oms.evictions"),
			Spills:          t.stats.Get("oms.spills"),
			Refills:         t.stats.Get("oms.refills"),
			SecondChances:   t.stats.Get("oms.second_chances"),
			Overruns:        t.stats.Get("oms.capacity_overruns"),
			PenaltyCycles:   t.stats.Get("oms.spill_penalty_cycles"),
			LineChecks:      t.stats.Get("omsstress.line_checks"),
			FramesOwned:     s.FramesOwned(),
			LiveSegments:    s.LiveSegments(),
			SpilledSegments: s.SpilledSegments(),
			ResidentBytes:   s.ResidentBytes(),
			SpilledBytes:    s.SpilledBytes(),
		}
	})
	return r, invErr
}

// RunOMSStressPool runs every tenant's churn as one harness job and
// returns the per-tenant rows plus the merged stats registry. In shared
// mode all tenant stores are wrapped in one lock-striped oms.Shared
// (one stripe per tenant) before the jobs launch; because the op
// streams are private per stripe, the metrics are bit-identical to
// private mode — Shared only changes what the locks cost.
func RunOMSStressPool(ctx context.Context, pool Pool, p OMSStressParams) ([]OMSStressResult, *sim.Stats, error) {
	if p.Tenants <= 0 || p.Ops <= 0 || p.Segments <= 0 {
		return nil, nil, fmt.Errorf("omsstress: tenants, ops and segments must be positive")
	}
	tenants := make([]*stressTenant, p.Tenants)
	for i := range tenants {
		t, err := newStressTenant(i, p)
		if err != nil {
			return nil, nil, fmt.Errorf("omsstress tenant %d: %w", i, err)
		}
		tenants[i] = t
	}
	if p.Shared {
		stores := make([]*oms.Store, p.Tenants)
		for i, t := range tenants {
			stores[i] = t.st
		}
		sh := oms.NewShared(stores)
		for _, t := range tenants {
			t.sh = sh
		}
	}
	idx := make([]int, p.Tenants)
	for i := range idx {
		idx[i] = i
	}
	results, err := harness.Map(ctx, pool.opts("omsstress"), idx,
		func(_ context.Context, tenant int, _ int) (OMSStressResult, error) {
			t := tenants[tenant]
			if err := t.churn(tenant, p); err != nil {
				return OMSStressResult{}, err
			}
			return t.result(tenant)
		})
	if err != nil {
		return nil, nil, err
	}
	merged := &sim.Stats{}
	for _, t := range tenants {
		merged.Merge(t.stats)
	}
	return results, merged, nil
}

// PrintOMSStress renders the per-tenant table and totals.
func PrintOMSStress(w io.Writer, p OMSStressParams, results []OMSStressResult) {
	mode := "private stores"
	if p.Shared {
		mode = "lock-striped shared store"
	}
	capacity := "unlimited"
	if p.Capacity > 0 {
		capacity = fmt.Sprintf("%d frames", p.Capacity)
		if p.Spill {
			capacity += " + spill tier"
		}
	}
	fmt.Fprintf(w, "OMS buffer-manager stress: %d tenants x %d ops over %d segments (%s, %s)\n",
		p.Tenants, p.Ops, p.Segments, capacity, mode)
	fmt.Fprintf(w, "%-7s %8s %8s %8s %8s %8s %8s %10s %12s %12s\n",
		"tenant", "allocs", "migr", "evict", "spills", "refills", "2nd-ch", "checks", "resident", "spilled")
	var tot OMSStressResult
	for _, r := range results {
		fmt.Fprintf(w, "%-7d %8d %8d %8d %8d %8d %8d %10d %10.1fKB %10.1fKB\n",
			r.Tenant, r.Allocs, r.Migrations, r.Evictions, r.Spills, r.Refills,
			r.SecondChances, r.LineChecks, float64(r.ResidentBytes)/1024, float64(r.SpilledBytes)/1024)
		tot.Allocs += r.Allocs
		tot.Migrations += r.Migrations
		tot.Evictions += r.Evictions
		tot.Spills += r.Spills
		tot.Refills += r.Refills
		tot.SecondChances += r.SecondChances
		tot.LineChecks += r.LineChecks
		tot.PenaltyCycles += r.PenaltyCycles
		tot.ResidentBytes += r.ResidentBytes
		tot.SpilledBytes += r.SpilledBytes
	}
	fmt.Fprintf(w, "%-7s %8d %8d %8d %8d %8d %8d %10d %10.1fKB %10.1fKB\n",
		"total", tot.Allocs, tot.Migrations, tot.Evictions, tot.Spills, tot.Refills,
		tot.SecondChances, tot.LineChecks, float64(tot.ResidentBytes)/1024, float64(tot.SpilledBytes)/1024)
	fmt.Fprintf(w, "spill penalty: %d modeled cycles across all tenants; every line read verified against its write pattern\n",
		tot.PenaltyCycles)
}
