package exp

import (
	"context"
	"fmt"
	"io"
	"math"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/harness"
	"repro/internal/sparse"
	"repro/internal/vm"
)

// SpMVResult is one Figure 10 data point: one matrix, one SpMV iteration
// under each representation.
type SpMVResult struct {
	Matrix string
	L      float64
	NNZ    int

	OverlayCycles uint64
	CSRCycles     uint64
	DenseCycles   uint64 // zero unless the dense baseline was requested

	OverlayBytes    int // paper accounting: 64 B per non-zero line
	OverlaySegBytes int // true OMS footprint incl. segment rounding/metadata
	CSRBytes        int
	DenseBytes      int
	IdealBytes      int
}

// RelPerf is overlay performance relative to CSR (> 1: overlays faster).
func (r SpMVResult) RelPerf() float64 {
	if r.OverlayCycles == 0 {
		return 0
	}
	return float64(r.CSRCycles) / float64(r.OverlayCycles)
}

// RelMem is overlay memory relative to CSR (< 1: overlays smaller).
func (r SpMVResult) RelMem() float64 {
	if r.CSRBytes == 0 {
		return 0
	}
	return float64(r.OverlayBytes) / float64(r.CSRBytes)
}

// spmvConfig sizes a framework for a matrix of the given dense footprint.
func spmvConfig(denseBytes int) core.Config {
	cfg := core.DefaultConfig()
	pages := denseBytes/4096 + 8192
	cfg.MemoryPages = pages * 2
	return cfg
}

// pristineFamily is a configuration family's framework capture taken
// right after construction — the engine has never run, so the capture
// is trivially quiescent. Forking it is bit-equivalent to building the
// same config from scratch but far cheaper: the fork shares the zeroed
// memory frames copy-on-write instead of re-allocating them.
type pristineFamily struct {
	snap   *core.Snapshot
	warmUS uint64 // wall clock the build+capture cost (≈ saved per reuse)

	// resumes counts forks taken from this family over its lifetime;
	// every resume past the first skipped a framework build that the
	// cold path would have run.
	resumes atomic.Uint64
}

// warmPristineFamily builds one framework of the given config and
// captures it ("fork.snapshot" span).
func warmPristineFamily(ctx context.Context, key string, cfg core.Config) (*pristineFamily, error) {
	start := time.Now()
	f, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	sp := snapSpan(ctx, "fork.snapshot", key)
	fam := &pristineFamily{snap: f.Snapshot()}
	sp.End()
	fam.warmUS = uint64(time.Since(start).Microseconds())
	return fam, nil
}

// fork resumes one framework from the family ("fork.resume" span). The
// returned func tallies the pool's reuse stats; call it once the
// simulation completes, when the copy-on-write byte count is final.
func (fam *pristineFamily) fork(ctx context.Context, pool Pool, key string) (*core.Framework, func(*core.Framework)) {
	sp := snapSpan(ctx, "fork.resume", key)
	f := core.NewFromSnapshot(fam.snap)
	sp.End()
	done := func(f *core.Framework) {
		pool.Snap.addFork(f.Mem.BytesCopied(), fam.resumes.Add(1) > 1, fam.warmUS)
	}
	return f, done
}

// simulateTrace runs one trace to completion on a fresh core and returns
// the cycles it took.
func simulateTrace(f *core.Framework, proc *vm.Process, trace cpu.Trace) (uint64, error) {
	port := f.NewPort()
	c := cpu.New(f.Engine, port, proc.PID, trace)
	done := false
	c.Run(0, func() { done = true })
	f.Engine.Run()
	if !done {
		return 0, fmt.Errorf("exp: SpMV trace never finished")
	}
	return uint64(c.Cycles()), nil
}

// RunSpMV measures one matrix under the overlay and CSR representations
// (and optionally the dense baseline), verifying along the way that all
// representations compute the same product. Every representation runs
// on a framework built from scratch; RunFigure10Pool's default path
// measures the same thing on frameworks forked from a shared pristine
// capture.
func RunSpMV(m *sparse.Matrix, withDense bool) (SpMVResult, error) {
	return runSpMV(func() (*core.Framework, func(*core.Framework), error) {
		f, err := core.New(spmvConfig(m.DenseBytes()))
		return f, nil, err
	}, m, withDense)
}

// runSpMV measures one matrix with each representation simulated on its
// own framework drawn from newFramework. The optional func returned
// alongside a framework is called after that representation's
// simulation completes (the snapshot path tallies reuse stats there).
func runSpMV(newFramework func() (*core.Framework, func(*core.Framework), error), m *sparse.Matrix, withDense bool) (SpMVResult, error) {
	res := SpMVResult{Matrix: m.Name, L: m.L(), NNZ: m.NNZ(), IdealBytes: m.IdealBytes()}

	// Functional cross-check.
	x := make([]float64, m.Cols)
	for i := range x {
		x[i] = 1.0 + float64(i%7)
	}
	want := m.MultiplyDense(x)

	// Overlay representation.
	{
		f, done, err := newFramework()
		if err != nil {
			return res, err
		}
		proc := f.VM.NewProcess()
		o, layout, err := sparse.MapOverlay(f, proc, m)
		if err != nil {
			return res, err
		}
		got, err := o.Multiply(x)
		if err != nil {
			return res, err
		}
		if !vectorsEqual(want, got) {
			return res, fmt.Errorf("exp: overlay SpMV result diverges for %s", m.Name)
		}
		trace, err := sparse.OverlayTrace(o, layout)
		if err != nil {
			return res, err
		}
		res.OverlayBytes = o.LineBytes()
		res.OverlaySegBytes = o.MemoryBytes()
		res.OverlayCycles, err = simulateTrace(f, proc, trace)
		if err != nil {
			return res, err
		}
		if done != nil {
			done(f)
		}
	}

	// CSR representation.
	{
		c := sparse.NewCSR(m)
		if !vectorsEqual(want, c.Multiply(x)) {
			return res, fmt.Errorf("exp: CSR SpMV result diverges for %s", m.Name)
		}
		f, done, err := newFramework()
		if err != nil {
			return res, err
		}
		proc := f.VM.NewProcess()
		layout, err := sparse.MapCSR(f, proc, c)
		if err != nil {
			return res, err
		}
		res.CSRBytes = c.MemoryBytes()
		res.CSRCycles, err = simulateTrace(f, proc, sparse.CSRTrace(c, layout))
		if err != nil {
			return res, err
		}
		if done != nil {
			done(f)
		}
	}

	if withDense {
		f, done, err := newFramework()
		if err != nil {
			return res, err
		}
		proc := f.VM.NewProcess()
		layout, err := sparse.MapDense(f, proc, m)
		if err != nil {
			return res, err
		}
		res.DenseBytes = m.DenseBytes()
		res.DenseCycles, err = simulateTrace(f, proc, sparse.DenseTrace(m, layout))
		if err != nil {
			return res, err
		}
		if done != nil {
			done(f)
		}
	}
	return res, nil
}

func vectorsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9*(1+math.Abs(a[i])) {
			return false
		}
	}
	return true
}

// RunFigure10 sweeps the matrix suite (limit ≤ 0 runs all 87), sorted by
// ascending L as in the paper's x-axis. It is RunFigure10Pool at
// Parallel 1.
func RunFigure10(limit int, withDense bool) ([]SpMVResult, error) {
	return RunFigure10Pool(context.Background(), Pool{Parallel: 1}, limit, withDense)
}

// RunFigure10Pool sweeps the matrix suite with one job per matrix
// fanned across the pool; the result order (ascending L) is fixed by
// the suite, not by completion order.
//
// By default every simulation forks its framework from a pristine
// capture shared by all matrices of the same footprint (the whole suite
// is one configuration family today: every matrix is 2048×2048), built
// lazily by the first job to need it. Cycle counts are bit-identical to
// the cold path; pool.Cold builds every framework from scratch instead.
func RunFigure10Pool(ctx context.Context, pool Pool, limit int, withDense bool) ([]SpMVResult, error) {
	ms := suiteSubset(limit)
	if pool.Cold {
		return harness.Map(ctx, pool.opts("spmv"), ms,
			func(_ context.Context, m *sparse.Matrix, _ int) (SpMVResult, error) {
				return RunSpMV(m, withDense)
			})
	}
	snaps := pool.Snapshots
	if snaps == nil {
		snaps = NewSnapshotCache(8) // run-local: one entry per distinct footprint
	}
	return harness.Map(ctx, pool.opts("spmv"), ms,
		func(jobCtx context.Context, m *sparse.Matrix, _ int) (SpMVResult, error) {
			cfg := spmvConfig(m.DenseBytes())
			key := fmt.Sprintf("spmv/pages=%d", cfg.MemoryPages)
			v, err := snaps.getOrBuild(key, func() (any, error) {
				pool.Snap.addFamily()
				return warmPristineFamily(jobCtx, key, cfg)
			})
			if err != nil {
				return SpMVResult{}, err
			}
			fam := v.(*pristineFamily)
			return runSpMV(func() (*core.Framework, func(*core.Framework), error) {
				f, done := fam.fork(jobCtx, pool, key)
				return f, done, nil
			}, m, withDense)
		})
}

// PrintFigure10 renders the SpMV comparison (Figure 10) plus the paper's
// headline aggregates.
func PrintFigure10(w io.Writer, results []SpMVResult) {
	fmt.Fprintln(w, "Figure 10: SpMV with overlays, relative to CSR (x-axis sorted by L)")
	fmt.Fprintf(w, "%-18s %6s %8s %12s %12s\n", "matrix", "L", "nnz", "rel perf", "rel memory")
	wins := 0
	var winPerf, winMem float64
	for _, r := range results {
		marker := ""
		if r.RelPerf() > 1 {
			wins++
			winPerf += r.RelPerf()
			winMem += r.RelMem()
			marker = "  <- overlay wins"
		}
		fmt.Fprintf(w, "%-18s %6.2f %8d %12.2f %12.2f%s\n",
			r.Matrix, r.L, r.NNZ, r.RelPerf(), r.RelMem(), marker)
	}
	fmt.Fprintf(w, "\noverlay outperforms CSR on %d of %d matrices (paper: 34 of 87, all with L > 4.5)\n",
		wins, len(results))
	if wins > 0 {
		fmt.Fprintf(w, "on winning matrices: mean perf %.2fx, mean memory %.2fx of CSR (paper: +27%% perf, -8%% memory)\n",
			winPerf/float64(wins), winMem/float64(wins))
	}
	if len(results) > 1 {
		lo, hi := results[0], results[len(results)-1]
		fmt.Fprintf(w, "extremes: %s (L=%.2f) perf %.2fx mem %.2fx | %s (L=%.2f) perf %.2fx mem %.2fx\n",
			lo.Matrix, lo.L, lo.RelPerf(), lo.RelMem(),
			hi.Matrix, hi.L, hi.RelPerf(), hi.RelMem())
		fmt.Fprintln(w, "(paper extremes: L=1.09 -> 4.83x memory, 0.30x perf; L=8 -> 0.66x memory, 1.92x perf)")
	}
}
