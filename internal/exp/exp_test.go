package exp

import (
	"context"
	"strings"
	"testing"

	"repro/internal/sparse"
	"repro/internal/workload"
)

func TestForkBenchmarkShapes(t *testing.T) {
	// One benchmark per type at quick scale: the qualitative Figure 8/9
	// relationships must hold even in a short window.
	params := QuickForkParams()

	type1, err := RunForkBenchmark(context.Background(), mustSpec(t, "hmmer"), params)
	if err != nil {
		t.Fatal(err)
	}
	// Type 1: tiny additional memory under both mechanisms.
	if type1.CoW.AddedBytes > 64<<10 {
		t.Errorf("type1 CoW added %d bytes, expected tiny", type1.CoW.AddedBytes)
	}

	type2, err := RunForkBenchmark(context.Background(), mustSpec(t, "lbm"), params)
	if err != nil {
		t.Fatal(err)
	}
	// Type 2: both mechanisms converge to similar memory (dense writes)…
	ratio := float64(type2.OoW.AddedBytes) / float64(type2.CoW.AddedBytes)
	if ratio < 0.8 || ratio > 1.3 {
		t.Errorf("type2 memory ratio = %.2f, want ≈1", ratio)
	}
	// …but overlays win on performance for spread-out writes.
	if type2.Speedup() < 1.0 {
		t.Errorf("type2 spread speedup = %.2f, want > 1", type2.Speedup())
	}

	type3, err := RunForkBenchmark(context.Background(), mustSpec(t, "mcf"), params)
	if err != nil {
		t.Fatal(err)
	}
	// Type 3: overlays slash additional memory and improve performance.
	if type3.MemoryReduction() < 0.5 {
		t.Errorf("type3 memory reduction = %.2f, want > 0.5", type3.MemoryReduction())
	}
	if type3.Speedup() < 1.0 {
		t.Errorf("type3 speedup = %.2f, want > 1", type3.Speedup())
	}
	if type3.CoW.PageCopies == 0 || type3.OoW.Overlaying == 0 {
		t.Error("mechanism counters empty")
	}
}

func mustSpec(t *testing.T, name string) workload.Spec {
	t.Helper()
	s, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRunForkSuiteSubset(t *testing.T) {
	results, err := RunForkSuite(QuickForkParams(), []string{"bwaves", "astar"})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || results[0].Benchmark != "bwaves" {
		t.Fatalf("results = %+v", results)
	}
	var sb strings.Builder
	PrintFigure8(&sb, results)
	PrintFigure9(&sb, results)
	out := sb.String()
	for _, want := range []string{"Figure 8", "Figure 9", "bwaves", "astar", "mean"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunForkSuiteUnknownName(t *testing.T) {
	if _, err := RunForkSuite(QuickForkParams(), []string{"nope"}); err == nil {
		t.Fatal("expected error")
	}
}

func TestSpMVCrossesOverWithL(t *testing.T) {
	// Low-L matrix: CSR wins. High-L matrix: overlays win. The functional
	// cross-check inside RunSpMV also validates all three kernels.
	low := sparse.Random("low", 512, 512, 512*100, 1.3, 31)
	high := sparse.Random("high", 512, 512, 512*100, 7.8, 32)

	rLow, err := RunSpMV(low, false)
	if err != nil {
		t.Fatal(err)
	}
	rHigh, err := RunSpMV(high, false)
	if err != nil {
		t.Fatal(err)
	}
	if rLow.RelPerf() >= 1 {
		t.Errorf("low-L rel perf = %.2f, want < 1 (CSR should win)", rLow.RelPerf())
	}
	if rHigh.RelPerf() <= 1 {
		t.Errorf("high-L rel perf = %.2f, want > 1 (overlay should win)", rHigh.RelPerf())
	}
	if rLow.RelMem() <= rHigh.RelMem() {
		t.Error("relative memory should fall as L rises")
	}
	// Segment-rounded footprint is never below the line-byte accounting.
	if rHigh.OverlaySegBytes < rHigh.OverlayBytes {
		t.Error("segment footprint below line bytes")
	}
}

func TestFigure10Sampling(t *testing.T) {
	results, err := RunFigure10(3, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	// Sorted by L, covering a spread.
	if results[0].L >= results[2].L {
		t.Fatal("subsample lost the L ordering/spread")
	}
	var sb strings.Builder
	PrintFigure10(&sb, results)
	if !strings.Contains(sb.String(), "Figure 10") {
		t.Fatal("print output malformed")
	}
}

func TestFigure11Shapes(t *testing.T) {
	results := RunFigure11(10)
	if len(results) != 10 {
		t.Fatalf("got %d results", len(results))
	}
	for _, r := range results {
		// Overhead grows monotonically with block size and is ≥ 1.
		prev := 0.0
		for _, sz := range LineSizes {
			o := r.Overheads[sz]
			if o < 1.0 {
				t.Fatalf("%s: overhead %.2f below ideal at %dB", r.Matrix, o, sz)
			}
			if o < prev {
				t.Fatalf("%s: overhead shrank with larger blocks", r.Matrix)
			}
			prev = o
		}
		// CSR is ≈1.5× ideal.
		if r.CSR < 1.4 || r.CSR > 1.7 {
			t.Fatalf("%s: CSR overhead %.2f, want ≈1.5", r.Matrix, r.CSR)
		}
	}
	// Page granularity is dramatically worse than line granularity.
	var page, line float64
	for _, r := range results {
		page += r.Overheads[4096]
		line += r.Overheads[64]
	}
	if page < 5*line {
		t.Errorf("4KB overhead (%.1f) not ≫ 64B overhead (%.1f)", page/10, line/10)
	}
	var sb strings.Builder
	PrintFigure11(&sb, results)
	if !strings.Contains(sb.String(), "granularity") {
		t.Fatal("print output malformed")
	}
}

func TestSparsitySweepMonotone(t *testing.T) {
	results, err := RunSparsitySweep(4, 128)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("got %d points", len(results))
	}
	// Overlay is at worst at parity with dense (within the ~10 % OMS
	// fragmentation cost visible only at exactly 0 % zero lines — see
	// EXPERIMENTS.md), and the advantage grows with sparsity.
	for i, r := range results {
		if r.Speedup() < 0.9 {
			t.Errorf("point %d: overlay slower than dense (%.2fx)", i, r.Speedup())
		}
	}
	if results[len(results)-1].Speedup() <= results[0].Speedup() {
		t.Error("speedup should grow with the zero-line fraction")
	}
	var sb strings.Builder
	PrintSweep(&sb, results)
	if !strings.Contains(sb.String(), "Sparsity sweep") {
		t.Fatal("print output malformed")
	}
}

func TestSweepNeedsTwoPoints(t *testing.T) {
	if _, err := RunSparsitySweep(1, 64); err == nil {
		t.Fatal("expected error")
	}
}

func TestRunWithStats(t *testing.T) {
	spec := mustSpec(t, "hmmer")
	cfg := spmvConfig(0)
	cfg.MemoryPages = spec.Pages*2 + 16384
	out, err := RunWithStats(spec, cfg, QuickForkParams(), true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "cpi") || !strings.Contains(out, "tlb.l1_hits") {
		t.Fatalf("stats dump malformed:\n%s", out)
	}
}

func TestDualCoreDivergence(t *testing.T) {
	oow := RunDualCoreDivergence(true)
	cow := RunDualCoreDivergence(false)
	if oow.Shootdowns != 0 {
		t.Fatalf("overlay mechanism shot down TLBs %d times", oow.Shootdowns)
	}
	if oow.LineUpdates == 0 {
		t.Fatal("overlay mechanism delivered no line updates")
	}
	if cow.Shootdowns == 0 {
		t.Fatal("conventional mechanism never shot down")
	}
	if oow.WriterCycles >= cow.WriterCycles {
		t.Errorf("overlay writer (%d) not faster than copy+shootdown (%d)",
			oow.WriterCycles, cow.WriterCycles)
	}
	var sb strings.Builder
	PrintDualCore(&sb, []DualCoreResult{oow, cow})
	if !strings.Contains(sb.String(), "MESI") {
		t.Fatal("print malformed")
	}
}
