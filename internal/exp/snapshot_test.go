package exp

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/workload"
)

// comparableExport renders the parts of an export that must be
// bit-identical between a cold and a forked run: results, config,
// counters, histograms and series. Host provenance (Meta) and the
// warm-state reuse tallies are excluded — they document how the run
// executed, not what it simulated.
func comparableExport(t *testing.T, out *JobOutput) []byte {
	t.Helper()
	ex := *out.Export
	ex.Meta = nil
	if ex.Counters != nil {
		c := make(map[string]uint64, len(ex.Counters))
		for k, v := range ex.Counters {
			c[k] = v
		}
		delete(c, SnapForksCounter)
		delete(c, SnapBytesCounter)
		delete(c, SnapWarmupsCounter)
		ex.Counters = c
	}
	b, err := json.MarshalIndent(&ex, "", " ")
	if err != nil {
		t.Fatalf("marshal export: %v", err)
	}
	return b
}

// runPair executes one spec cold and forked on a small worker pool.
func runPair(t *testing.T, spec JobSpec) (cold, forked *JobOutput) {
	t.Helper()
	ctx := context.Background()
	spec.Cold = true
	cold, err := spec.Run(ctx, Pool{Parallel: 2})
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}
	spec.Cold = false
	forked, err = spec.Run(ctx, Pool{Parallel: 2})
	if err != nil {
		t.Fatalf("forked run: %v", err)
	}
	return cold, forked
}

// TestForkedMatchesCold is the bit-identity property: for every
// experiment with a warm-state reuse path, a run resumed from family
// snapshots must produce the exact export a from-scratch run produces —
// every cycle count, counter and histogram. The specs are drawn from a
// seeded RNG so successive PRs exercise shifting corners of the space
// deterministically.
func TestForkedMatchesCold(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-experiment equivalence sweep is slow")
	}
	rng := rand.New(rand.NewSource(0x5eed))
	benches := workload.Suite()
	bench := benches[rng.Intn(len(benches))].Name
	specs := []JobSpec{
		{Experiment: "fork", Bench: bench,
			Warm:    uint64(30_000 + rng.Intn(3)*10_000),
			Measure: uint64(60_000 + rng.Intn(3)*20_000)},
		{Experiment: "spmv", Matrices: 2 + rng.Intn(2), Dense: true},
		{Experiment: "linesize", Matrices: 2 + rng.Intn(3)},
		{Experiment: "sweep", Points: 3 + rng.Intn(2), Rows: 64 * (1 + rng.Intn(2))},
	}
	// The property must hold per backend: every non-default backend gets
	// its own fork leg (the plain fork spec above covers overlay), and the
	// cross-backend compare experiment must resume bit-identically too.
	for _, b := range core.Backends() {
		if b == core.DefaultBackend {
			continue
		}
		specs = append(specs, JobSpec{Experiment: "fork", Bench: bench, Backend: b,
			Warm: 30_000, Measure: 60_000})
	}
	specs = append(specs, JobSpec{Experiment: "compare", Bench: bench,
		Warm: 30_000, Measure: 60_000, Matrices: 2})
	for _, spec := range specs {
		spec := spec
		name := spec.Experiment
		if spec.Backend != "" {
			name += "/" + spec.Backend
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cold, forked := runPair(t, spec)
			cb, fb := comparableExport(t, cold), comparableExport(t, forked)
			if !bytes.Equal(cb, fb) {
				t.Errorf("forked export diverges from cold\ncold:\n%s\nforked:\n%s", cb, fb)
			}
			for _, k := range []string{SnapForksCounter, SnapBytesCounter, SnapWarmupsCounter} {
				if _, ok := cold.Export.Counters[k]; ok {
					t.Errorf("cold export carries reuse counter %s", k)
				}
			}
		})
	}
}

// TestForkedMatchesColdPerRunStats drills into the fork experiment: not
// just the merged export, but every individual run's full registry —
// all counters and histogram dumps — must match between a cold run and
// a fork resumed from the family snapshot.
func TestForkedMatchesColdPerRunStats(t *testing.T) {
	spec := JobSpec{Experiment: "fork", Bench: "mcf", Warm: 30_000, Measure: 60_000}
	cold, forked := runPair(t, spec)
	cr, ok := cold.Export.Results.([]ForkResult)
	if !ok {
		t.Fatalf("cold results have type %T", cold.Export.Results)
	}
	fr := forked.Export.Results.([]ForkResult)
	if len(cr) != len(fr) {
		t.Fatalf("result count: cold %d, forked %d", len(cr), len(fr))
	}
	for i := range cr {
		for _, m := range []struct {
			name         string
			cold, forked *MechanismResult
		}{
			{"cow", &cr[i].CoW, &fr[i].CoW},
			{"oow", &cr[i].OoW, &fr[i].OoW},
		} {
			if c, f := m.cold.Stats.String(), m.forked.Stats.String(); c != f {
				t.Errorf("%s/%s registry diverges\ncold:\n%s\nforked:\n%s",
					cr[i].Benchmark, m.name, c, f)
			}
		}
	}
	// Reuse accounting for one benchmark: one family, two forks, one
	// warm-up skipped.
	if got := forked.Export.Counters[SnapForksCounter]; got != 2 {
		t.Errorf("forks counter = %d, want 2", got)
	}
	if got := forked.Export.Counters[SnapWarmupsCounter]; got != 1 {
		t.Errorf("warmups_reused counter = %d, want 1", got)
	}
}

// TestSweepReuseAccounting checks the sweep's family shape: one family,
// one dense-baseline fork plus one fork per point, every point's
// warm-up skipped.
func TestSweepReuseAccounting(t *testing.T) {
	spec := JobSpec{Experiment: "sweep", Points: 3, Rows: 64}
	out, err := spec.Run(context.Background(), Pool{Parallel: 2})
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if got := out.Export.Counters[SnapForksCounter]; got != 4 {
		t.Errorf("forks counter = %d, want 4 (dense baseline + 3 points)", got)
	}
	if got := out.Export.Counters[SnapWarmupsCounter]; got != 3 {
		t.Errorf("warmups_reused counter = %d, want 3", got)
	}
	if out.Stats == nil || out.Stats.Get(SnapForksCounter) != 4 {
		t.Errorf("output registry missing reuse counters for /metrics aggregation")
	}
}

// TestForkResumeSteadyStateAllocs bounds the steady-state allocation
// rate of a resumed fork: once the first measurement chunk has
// materialised its hot copy-on-write pages and grown the event slabs,
// continuing to run must not allocate per instruction.
func TestForkResumeSteadyStateAllocs(t *testing.T) {
	spec, err := workload.ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	fam, err := warmForkFamily(context.Background(), spec, ForkParams{WarmInstructions: 30_000})
	if err != nil {
		t.Fatal(err)
	}
	f := core.NewFromSnapshot(fam.snap)
	trace := spec.NewTrace()
	for i := uint64(0); i < fam.fetched; i++ {
		if _, ok := trace.Next(); !ok {
			t.Fatal("trace exhausted during replay")
		}
	}
	c := cpu.New(f.Engine, f.Port(0), fam.pid, trace)
	c.Restore(fam.cpu)

	// Prime: materialise the workload's hot pages and event slabs.
	c.Run(30_000, nil)
	f.Engine.Run()

	const chunk = 2_000
	allocs := testing.AllocsPerRun(5, func() {
		c.Run(chunk, nil)
		f.Engine.Run()
	})
	// The budget covers stragglers (cold pages materialised late, slab
	// growth); the point is that it does not scale with instructions.
	if allocs > 64 {
		t.Errorf("fork-resume steady state allocates %.0f per %d-instruction chunk, want <= 64", allocs, chunk)
	}
}

func TestSnapshotCache(t *testing.T) {
	c := NewSnapshotCache(2)
	builds := 0
	build := func(v string) func() (any, error) {
		return func() (any, error) { builds++; return v, nil }
	}
	if v, _ := c.getOrBuild("a", build("A")); v != "A" {
		t.Fatalf("got %v", v)
	}
	if v, _ := c.getOrBuild("a", build("A2")); v != "A" {
		t.Fatalf("cached build rebuilt: %v", v)
	}
	if builds != 1 || c.Hits() != 1 || c.Misses() != 1 {
		t.Fatalf("builds=%d hits=%d misses=%d", builds, c.Hits(), c.Misses())
	}
	// Fill past the bound; "a" (recently used) survives, "b" does not.
	c.getOrBuild("b", build("B"))
	c.getOrBuild("a", build("A3"))
	c.getOrBuild("c", build("C"))
	if c.Len() != 2 {
		t.Fatalf("len=%d, want 2", c.Len())
	}
	before := builds
	c.getOrBuild("a", build("A4"))
	if builds != before {
		t.Fatal("LRU evicted the recently used entry")
	}
	c.getOrBuild("b", build("B2"))
	if builds != before+1 {
		t.Fatal("evicted entry was not rebuilt")
	}
}

func TestSnapshotCacheFailedBuildRetries(t *testing.T) {
	c := NewSnapshotCache(4)
	if _, err := c.getOrBuild("k", func() (any, error) {
		return nil, fmt.Errorf("transient")
	}); err == nil {
		t.Fatal("want build error")
	}
	v, err := c.getOrBuild("k", func() (any, error) { return "ok", nil })
	if err != nil || v != "ok" {
		t.Fatalf("retry after failed build: v=%v err=%v", v, err)
	}
}
