// Package exp contains the experiment harness: one runner per table or
// figure in the paper's evaluation (§5), producing the same rows/series
// the paper reports. See DESIGN.md's per-experiment index.
package exp

import (
	"context"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/vm"
	"repro/internal/workload"
)

// ForkParams sizes the Figures 8/9 experiment. The paper warms for 200 M
// instructions and measures 300 M after the fork; the defaults here are
// scaled down 100× (DESIGN.md discusses why the shapes are preserved).
type ForkParams struct {
	WarmInstructions    uint64
	MeasureInstructions uint64

	// Backend selects the translation backend ("" = core.DefaultBackend).
	// Non-overlay backends have no overlay-on-write to offer, so their
	// CoW and OoW arms coincide.
	Backend string `json:"backend,omitempty"`

	// SeriesEpoch is the sampling period of the post-fork counter
	// time-series in cycles (0 selects sim.DefaultEpoch).
	SeriesEpoch sim.Cycle

	// Trace, when non-nil, receives structured simulator events from
	// every run (each run gets its own track in the log).
	Trace *sim.TraceLog `json:"-"`
}

// forkSeriesCounters are the counters every fork run samples per epoch:
// the overlay-vs-COW divergence signals plus the memory-system pressure
// they induce.
var forkSeriesCounters = []string{
	"core.overlaying_writes",
	"core.simple_overlay_writes",
	"core.cow_page_copies",
	"oms.segment_allocs",
	"oms.frames_granted",
	"dram.reads",
	"tlb.misses",
}

// DefaultForkParams returns the scaled-down default window.
func DefaultForkParams() ForkParams {
	return ForkParams{WarmInstructions: 2_000_000, MeasureInstructions: 3_000_000}
}

// QuickForkParams is small enough for tests and smoke benches.
func QuickForkParams() ForkParams {
	return ForkParams{WarmInstructions: 60_000, MeasureInstructions: 150_000}
}

// MechanismResult holds one (benchmark, mechanism) measurement.
type MechanismResult struct {
	AddedBytes int     // additional memory consumed after the fork
	CPI        float64 // cycles per instruction after the fork
	Cycles     uint64
	PageCopies uint64
	Overlaying uint64

	// Stats is the run's full counter/histogram registry; Series is the
	// post-fork epoch time-series. Both are telemetry side-channels, not
	// part of the figure data, so they stay out of the JSON results.
	Stats  *sim.Stats  `json:"-"`
	Series *sim.Series `json:"-"`
}

// ForkResult is one Figure 8/9 row: a benchmark measured under
// conventional copy-on-write and under overlay-on-write.
type ForkResult struct {
	Benchmark string
	Type      workload.Type
	CoW       MechanismResult
	OoW       MechanismResult
}

// MemoryReduction returns 1 − OoW/CoW added memory (the Figure 8 claim).
func (r ForkResult) MemoryReduction() float64 {
	if r.CoW.AddedBytes == 0 {
		return 0
	}
	return 1 - float64(r.OoW.AddedBytes)/float64(r.CoW.AddedBytes)
}

// Speedup returns CoW CPI / OoW CPI (> 1 means overlays are faster).
func (r ForkResult) Speedup() float64 {
	if r.OoW.CPI == 0 {
		return 0
	}
	return r.CoW.CPI / r.OoW.CPI
}

// mechName labels a fork mechanism in series/trace output.
func mechName(overlayMode bool) string {
	if overlayMode {
		return "oow"
	}
	return "cow"
}

// runMechanism executes one benchmark under one fork mechanism.
func runMechanism(ctx context.Context, spec workload.Spec, params ForkParams, overlayMode bool) (MechanismResult, error) {
	cfg := core.DefaultConfig()
	// Footprint + room for COW copies + generous OMS headroom.
	cfg.MemoryPages = spec.Pages*2 + 16384
	cfg.Backend = params.Backend
	return runMechanismCfg(ctx, spec, cfg, params, overlayMode)
}

// backendName resolves an experiment's backend selection ("" = default).
func backendName(b string) string {
	if b == "" {
		return core.DefaultBackend
	}
	return b
}

// phaseSpan opens one experiment-phase span ("fork.warmup",
// "fork.measure") as a child of whatever span the context carries —
// under a served job that is the worker's harness.job span. Nil-safe
// and free when tracing is disabled.
func phaseSpan(ctx context.Context, name string, spec workload.Spec, overlayMode bool) *obs.Span {
	_, span := obs.StartSpan(ctx, name)
	if span != nil {
		span.SetAttr("bench", spec.Name)
		span.SetAttr("mechanism", mechName(overlayMode))
	}
	return span
}

// runMechanismCfg is runMechanism with an explicit framework config:
// the cold path — build, warm, fork, measure, all in one framework.
func runMechanismCfg(ctx context.Context, spec workload.Spec, cfg core.Config, params ForkParams, overlayMode bool) (MechanismResult, error) {
	f, err := core.New(cfg)
	if err != nil {
		return MechanismResult{}, err
	}
	if params.Trace != nil {
		params.Trace.BeginTrack(spec.Name + "/" + mechName(overlayMode))
		f.SetTrace(params.Trace)
	}
	proc := f.VM.NewProcess()
	if err := spec.MapFootprint(f, proc); err != nil {
		return MechanismResult{}, err
	}
	port := f.NewPort()
	c := cpu.New(f.Engine, port, proc.PID, spec.NewTrace())

	// Warm-up: run the pre-fork region of the benchmark.
	warm := phaseSpan(ctx, "fork.warmup", spec, overlayMode)
	warmDone := false
	c.Run(params.WarmInstructions, func() { warmDone = true })
	f.Engine.Run()
	warm.End()
	if !warmDone {
		return MechanismResult{}, fmt.Errorf("exp: warm-up never finished")
	}
	return measureMechanism(ctx, spec, params, overlayMode, f, c, proc)
}

// measureMechanism forks the warmed process and measures the post-fork
// region. It is shared by the cold path (the warming framework keeps
// running) and the snapshot path (a fork resumed from a family
// capture); both hand it a quiescent framework positioned exactly at
// the fork point, so the measured region is bit-identical between them.
func measureMechanism(ctx context.Context, spec workload.Spec, params ForkParams, overlayMode bool, f *core.Framework, c *cpu.Core, proc *vm.Process) (MechanismResult, error) {
	// Checkpoint-style fork; the child idles (as in the paper's setup).
	f.Fork(proc, overlayMode)
	framesBase := f.Mem.AllocatedPages()
	omsFramesBase := f.OMS.FramesOwned()
	omsBase := f.OMS.BytesInUse()
	copiesBase := f.Engine.Stats.Get("core.cow_page_copies")
	overlayingBase := f.Engine.Stats.Get("core.overlaying_writes")

	// Sample the divergence counters every epoch of the measured region.
	series := sim.NewSeries(spec.Name+"/"+mechName(overlayMode),
		params.SeriesEpoch, forkSeriesCounters...)
	f.Engine.Attach(series)

	measure := phaseSpan(ctx, "fork.measure", spec, overlayMode)
	measureDone := false
	c.Run(params.MeasureInstructions, func() { measureDone = true })
	f.Engine.Run()
	f.Engine.CloseSeries(series)
	measure.End()
	if !measureDone {
		return MechanismResult{}, fmt.Errorf("exp: measurement never finished")
	}

	// Additional memory = new regular frames (page copies) plus the bytes
	// of Overlay Memory Store segments in use. Frames the OMS acquired
	// from the OS are excluded from the frame delta — they are accounted
	// compactly through BytesInUse, which is the overlay design's whole
	// point.
	regularFrames := f.Mem.AllocatedPages() - framesBase - (f.OMS.FramesOwned() - omsFramesBase)
	added := regularFrames*arch.PageSize + (f.OMS.BytesInUse() - omsBase)
	stats := &sim.Stats{}
	stats.Merge(&f.Engine.Stats)
	return MechanismResult{
		AddedBytes: added,
		CPI:        c.CPI(),
		Cycles:     uint64(c.Cycles()),
		PageCopies: f.Engine.Stats.Get("core.cow_page_copies") - copiesBase,
		Overlaying: f.Engine.Stats.Get("core.overlaying_writes") - overlayingBase,
		Stats:      stats,
		Series:     series,
	}, nil
}

// forkFamily is one benchmark's warmed state: everything needed to
// resume any number of measurement runs from the fork point without
// re-running the warm-up. The capture is immutable; concurrent forks
// share its memory pages copy-on-write.
type forkFamily struct {
	spec    workload.Spec
	snap    *core.Snapshot
	cpu     *cpu.Snapshot
	fetched uint64 // trace records the warm-up consumed
	pid     arch.PID
	warmUS  uint64 // wall clock the warm-up cost (≈ saved per reuse)

	// resumes counts forks taken from this family over its lifetime;
	// every resume past the first skipped a warm-up that the cold path
	// would have run.
	resumes atomic.Uint64
}

// forkFamilyKey canonicalises the knobs that shape a fork family's warm
// state (the benchmark and the warm window; the measured window does
// not affect it), mirroring the job cache's canonical-spec discipline.
func forkFamilyKey(spec workload.Spec, params ForkParams) string {
	return fmt.Sprintf("fork/%s/%s/warm=%d", backendName(params.Backend), spec.Name, params.WarmInstructions)
}

// warmForkFamily builds a framework, runs the shared pre-fork region
// once, and captures the quiescent state ("fork.snapshot" span).
func warmForkFamily(ctx context.Context, spec workload.Spec, params ForkParams) (*forkFamily, error) {
	cfg := core.DefaultConfig()
	cfg.MemoryPages = spec.Pages*2 + 16384
	cfg.Backend = params.Backend
	f, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	proc := f.VM.NewProcess()
	if err := spec.MapFootprint(f, proc); err != nil {
		return nil, err
	}
	port := f.NewPort()
	c := cpu.New(f.Engine, port, proc.PID, spec.NewTrace())

	warm := phaseSpan(ctx, "fork.warmup", spec, false)
	if warm != nil {
		warm.SetAttr("mechanism", "shared")
	}
	start := time.Now()
	warmDone := false
	c.Run(params.WarmInstructions, func() { warmDone = true })
	f.Engine.Run()
	warmUS := uint64(time.Since(start).Microseconds())
	warm.End()
	if !warmDone {
		return nil, fmt.Errorf("exp: warm-up never finished")
	}

	snapSp := snapSpan(ctx, "fork.snapshot", forkFamilyKey(spec, params))
	fam := &forkFamily{
		spec:    spec,
		snap:    f.Snapshot(),
		cpu:     c.Snapshot(),
		fetched: c.Fetched(),
		pid:     proc.PID,
		warmUS:  warmUS,
	}
	snapSp.End()
	return fam, nil
}

// resumeMechanism rebuilds an independent framework from the family
// capture ("fork.resume" span) and measures one mechanism from the
// shared fork point.
func resumeMechanism(ctx context.Context, pool Pool, fam *forkFamily, params ForkParams, overlayMode bool) (MechanismResult, error) {
	resume := snapSpan(ctx, "fork.resume", forkFamilyKey(fam.spec, params))
	if resume != nil {
		resume.SetAttr("mechanism", mechName(overlayMode))
	}
	f := core.NewFromSnapshot(fam.snap)
	// The workload trace wraps RNG state that cannot be captured;
	// rebuild it and replay the records the warm-up consumed.
	trace := fam.spec.NewTrace()
	for i := uint64(0); i < fam.fetched; i++ {
		if _, ok := trace.Next(); !ok {
			resume.End()
			return MechanismResult{}, fmt.Errorf("exp: trace exhausted during replay")
		}
	}
	c := cpu.New(f.Engine, f.Port(0), fam.pid, trace)
	c.Restore(fam.cpu)
	proc, ok := f.VM.Process(fam.pid)
	if !ok {
		resume.End()
		return MechanismResult{}, fmt.Errorf("exp: warmed process lost in snapshot")
	}
	resume.End()

	r, err := measureMechanism(ctx, fam.spec, params, overlayMode, f, c, proc)
	if err != nil {
		return MechanismResult{}, err
	}
	pool.Snap.addFork(f.Mem.BytesCopied(), fam.resumes.Add(1) > 1, fam.warmUS)
	return r, nil
}

// RunForkBenchmark measures one benchmark under both mechanisms. The
// context carries cancellation plus the optional obs tracer/logger;
// phase spans (fork.warmup, fork.measure) nest under its active span.
func RunForkBenchmark(ctx context.Context, spec workload.Spec, params ForkParams) (ForkResult, error) {
	cow, err := runMechanism(ctx, spec, params, false)
	if err != nil {
		return ForkResult{}, fmt.Errorf("%s/cow: %w", spec.Name, err)
	}
	oow, err := runMechanism(ctx, spec, params, true)
	if err != nil {
		return ForkResult{}, fmt.Errorf("%s/oow: %w", spec.Name, err)
	}
	return ForkResult{Benchmark: spec.Name, Type: spec.Type, CoW: cow, OoW: oow}, nil
}

// RunForkSuite measures every benchmark (or the named subset)
// sequentially. It is RunForkSuitePool at Parallel 1.
func RunForkSuite(params ForkParams, names []string) ([]ForkResult, error) {
	return RunForkSuitePool(context.Background(), Pool{Parallel: 1}, params, names)
}

// RunForkSuitePool measures every benchmark (or the named subset).
//
// By default each benchmark's warm-up runs once: stage one fans the
// per-benchmark family warm-ups across the pool and captures a
// core.Snapshot at the fork point; stage two fans one fork per
// (benchmark, mechanism), each resuming an independent framework from
// its family's capture with copy-on-write memory. Results are
// bit-identical to the cold path at any worker count (the fork point
// is a quiescence point, so resuming reproduces the exact event
// order); pool.Cold — or a trace log, which must observe whole runs —
// falls back to one cold job per benchmark. A shared trace log cannot
// record interleaved runs (tracks are sequential), so params.Trace
// also forces Parallel 1.
func RunForkSuitePool(ctx context.Context, pool Pool, params ForkParams, names []string) ([]ForkResult, error) {
	var specs []workload.Spec
	if len(names) == 0 {
		specs = workload.Suite()
	} else {
		for _, n := range names {
			s, err := workload.ByName(n)
			if err != nil {
				return nil, err
			}
			specs = append(specs, s)
		}
	}
	if params.Trace != nil {
		pool.Parallel = 1
	}
	if pool.Cold || params.Trace != nil {
		return harness.Map(ctx, pool.opts("fork"), specs,
			func(jobCtx context.Context, s workload.Spec, _ int) (ForkResult, error) {
				// jobCtx carries the worker's harness.job span, so the
				// per-mechanism phase spans nest under it.
				return RunForkBenchmark(jobCtx, s, params)
			})
	}

	// Stage one: warm each benchmark family once (via the cross-run
	// cache when the serving layer wires one).
	families, err := harness.Map(ctx, pool.opts("fork.warm"), specs,
		func(jobCtx context.Context, s workload.Spec, _ int) (*forkFamily, error) {
			v, err := pool.Snapshots.getOrBuild(forkFamilyKey(s, params), func() (any, error) {
				pool.Snap.addFamily()
				return warmForkFamily(jobCtx, s, params)
			})
			if err != nil {
				return nil, fmt.Errorf("%s/warm: %w", s.Name, err)
			}
			return v.(*forkFamily), nil
		})
	if err != nil {
		return nil, err
	}

	// Stage two: fork each family once per mechanism.
	type forkJob struct {
		fam     *forkFamily
		overlay bool
	}
	var jobs []forkJob
	for _, fam := range families {
		jobs = append(jobs, forkJob{fam, false}, forkJob{fam, true})
	}
	mechs, err := harness.Map(ctx, pool.opts("fork"), jobs,
		func(jobCtx context.Context, j forkJob, _ int) (MechanismResult, error) {
			r, err := resumeMechanism(jobCtx, pool, j.fam, params, j.overlay)
			if err != nil {
				return MechanismResult{}, fmt.Errorf("%s/%s: %w", j.fam.spec.Name, mechName(j.overlay), err)
			}
			return r, nil
		})
	if err != nil {
		return nil, err
	}
	results := make([]ForkResult, len(specs))
	for i, s := range specs {
		results[i] = ForkResult{
			Benchmark: s.Name, Type: s.Type,
			CoW: mechs[2*i], OoW: mechs[2*i+1],
		}
	}
	return results, nil
}

// RunForkCPI runs one benchmark under one mechanism with a custom config
// and returns the post-fork CPI (ablation studies use this to sweep
// framework parameters).
func RunForkCPI(spec workload.Spec, cfg core.Config, params ForkParams, overlayMode bool) (float64, error) {
	f, c, err := runToFork(spec, cfg, params, overlayMode)
	if err != nil {
		return 0, err
	}
	c.Run(params.MeasureInstructions, nil)
	f.Engine.Run()
	return c.CPI(), nil
}

// RunWithStats runs one benchmark under one mechanism with the given
// config and returns the engine's full counter dump (debug/CLI aid).
func RunWithStats(spec workload.Spec, cfg core.Config, params ForkParams, overlayMode bool) (string, error) {
	out, _, err := RunStatsExport(context.Background(), spec, cfg, params, overlayMode)
	return out, err
}

// RunStatsExport runs one benchmark under one mechanism and returns both
// the printable counter dump and the machine-readable export (counters,
// histograms, post-fork series; plus the trace if params.Trace is set).
func RunStatsExport(ctx context.Context, spec workload.Spec, cfg core.Config, params ForkParams, overlayMode bool) (string, *sim.Export, error) {
	r, err := runMechanismCfg(ctx, spec, cfg, params, overlayMode)
	if err != nil {
		return "", nil, err
	}
	ex := sim.ExportFrom("stats", r.Stats, r.Series)
	ex.Config = params
	ex.Results = r
	return fmt.Sprintf("cpi %.3f\n%s", r.CPI, r.Stats.String()), ex, nil
}

// ForkExport bundles a fork-suite run into one machine-readable export:
// counters and histograms merged across every (benchmark, mechanism) run,
// one post-fork series per run, and the Figure 8/9 rows as results.
func ForkExport(params ForkParams, results []ForkResult) *sim.Export {
	merged := &sim.Stats{}
	var series []*sim.Series
	for i := range results {
		for _, m := range []*MechanismResult{&results[i].CoW, &results[i].OoW} {
			merged.Merge(m.Stats)
			if m.Series != nil {
				series = append(series, m.Series)
			}
		}
	}
	ex := sim.ExportFrom("fork", merged, series...)
	ex.Config = params
	ex.Results = results
	return ex
}

// runToFork builds the system, warms the benchmark, and forks.
func runToFork(spec workload.Spec, cfg core.Config, params ForkParams, overlayMode bool) (*core.Framework, *cpu.Core, error) {
	f, err := core.New(cfg)
	if err != nil {
		return nil, nil, err
	}
	proc := f.VM.NewProcess()
	if err := spec.MapFootprint(f, proc); err != nil {
		return nil, nil, err
	}
	port := f.NewPort()
	c := cpu.New(f.Engine, port, proc.PID, spec.NewTrace())
	c.Run(params.WarmInstructions, nil)
	f.Engine.Run()
	f.Fork(proc, overlayMode)
	return f, c, nil
}

// PrintFigure8 renders the additional-memory comparison (Figure 8).
func PrintFigure8(w io.Writer, results []ForkResult) {
	fmt.Fprintln(w, "Figure 8: Additional memory consumed after a fork")
	fmt.Fprintf(w, "%-10s %-5s %15s %15s %12s\n", "benchmark", "type", "cow (KB)", "overlay (KB)", "reduction")
	var totCow, totOow float64
	for _, r := range results {
		fmt.Fprintf(w, "%-10s %-5d %15.1f %15.1f %11.1f%%\n",
			r.Benchmark, r.Type,
			float64(r.CoW.AddedBytes)/1024, float64(r.OoW.AddedBytes)/1024,
			100*r.MemoryReduction())
		totCow += float64(r.CoW.AddedBytes)
		totOow += float64(r.OoW.AddedBytes)
	}
	mean := 0.0
	if totCow > 0 {
		mean = 100 * (1 - totOow/totCow)
	}
	fmt.Fprintf(w, "%-10s %-5s %15.1f %15.1f %11.1f%%   (paper: 53%%)\n",
		"mean", "-", totCow/1024/float64(len(results)), totOow/1024/float64(len(results)), mean)
}

// PrintFigure9 renders the post-fork CPI comparison (Figure 9).
func PrintFigure9(w io.Writer, results []ForkResult) {
	fmt.Fprintln(w, "Figure 9: Cycles per instruction after a fork (lower is better)")
	fmt.Fprintf(w, "%-10s %-5s %10s %10s %10s\n", "benchmark", "type", "cow CPI", "ovl CPI", "speedup")
	var sumSpeedup float64
	for _, r := range results {
		fmt.Fprintf(w, "%-10s %-5d %10.3f %10.3f %9.1f%%\n",
			r.Benchmark, r.Type, r.CoW.CPI, r.OoW.CPI, 100*(r.Speedup()-1))
		sumSpeedup += r.Speedup()
	}
	fmt.Fprintf(w, "%-10s %-5s %10s %10s %9.1f%%   (paper: 15%%)\n",
		"mean", "-", "", "", 100*(sumSpeedup/float64(len(results))-1))
}
