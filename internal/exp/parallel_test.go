package exp

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"
)

// TestSweepParallelBitIdentical is the core determinism claim: the
// sparsity sweep produces bit-identical results at -parallel 1 and
// -parallel 8, because every point owns its engine and seeded RNGs.
func TestSweepParallelBitIdentical(t *testing.T) {
	seq, err := RunSparsitySweepPool(context.Background(), Pool{Parallel: 1}, 6, 128)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunSparsitySweepPool(context.Background(), Pool{Parallel: 8}, 6, 128)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("sweep diverges across worker counts:\nseq: %+v\npar: %+v", seq, par)
	}
}

// TestForkSuiteParallelBitIdentical compares the simulated fork
// metrics between the sequential wrapper and an 4-worker pool run.
func TestForkSuiteParallelBitIdentical(t *testing.T) {
	params := QuickForkParams()
	names := []string{"hmmer", "mcf"}
	seq, err := RunForkSuite(params, names)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunForkSuitePool(context.Background(), Pool{Parallel: 4}, params, names)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("result counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		s, p := seq[i], par[i]
		if s.Benchmark != p.Benchmark {
			t.Fatalf("result %d ordering differs: %s vs %s", i, s.Benchmark, p.Benchmark)
		}
		for _, m := range []struct {
			name     string
			seq, par MechanismResult
		}{{"cow", s.CoW, p.CoW}, {"oow", s.OoW, p.OoW}} {
			if m.seq.Cycles != m.par.Cycles || m.seq.AddedBytes != m.par.AddedBytes ||
				m.seq.PageCopies != m.par.PageCopies || m.seq.Overlaying != m.par.Overlaying ||
				m.seq.CPI != m.par.CPI {
				t.Errorf("%s/%s metrics diverge across worker counts:\nseq: %+v\npar: %+v",
					s.Benchmark, m.name, m.seq, m.par)
			}
		}
	}
}

// TestFigure10and11PoolMatchSequential checks the SpMV sweep and the
// analytic line-size sweep keep their ordering and values under the
// pool.
func TestFigure10and11PoolMatchSequential(t *testing.T) {
	seq10, err := RunFigure10(3, false)
	if err != nil {
		t.Fatal(err)
	}
	par10, err := RunFigure10Pool(context.Background(), Pool{Parallel: 8}, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq10, par10) {
		t.Errorf("Figure 10 diverges across worker counts")
	}

	seq11 := RunFigure11(8)
	par11, err := RunFigure11Pool(context.Background(), Pool{Parallel: 8}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq11, par11) {
		t.Errorf("Figure 11 diverges across worker counts")
	}
}

// TestDualCorePoolMatchesDirect checks the pooled dual-core runner
// returns the same two mechanisms in print order.
func TestDualCorePoolMatchesDirect(t *testing.T) {
	pooled, err := RunDualCorePool(context.Background(), Pool{Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	direct := []DualCoreResult{RunDualCoreDivergence(true), RunDualCoreDivergence(false)}
	if !reflect.DeepEqual(pooled, direct) {
		t.Fatalf("dual-core diverges:\npooled: %+v\ndirect: %+v", pooled, direct)
	}
}

// TestSweepPoolCancelled verifies a cancelled context aborts the sweep
// with a context error instead of hanging or panicking.
func TestSweepPoolCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunSparsitySweepPool(ctx, Pool{Parallel: 2}, 4, 64)
	if err == nil || !strings.Contains(err.Error(), "context canceled") {
		t.Fatalf("err = %v, want context cancellation", err)
	}
}

// TestPoolProgressReporting checks the live progress line reaches the
// pool's writer.
func TestPoolProgressReporting(t *testing.T) {
	var buf bytes.Buffer
	if _, err := RunSparsitySweepPool(context.Background(), Pool{Parallel: 2, Progress: &buf}, 3, 64); err != nil {
		t.Fatal(err)
	}
	if out := buf.String(); !strings.Contains(out, "sweep: 3/3 jobs") {
		t.Errorf("progress output missing:\n%q", out)
	}
}
