package exp

// Warm-state reuse plumbing: experiments that repeat the same expensive
// setup (a fork warm-up, a pristine framework for a sweep family) build
// it once, capture a core.Snapshot, and resume every measurement run
// from the capture with copy-on-write memory sharing. Forked runs are
// bit-identical to cold runs — the equivalence is enforced by tests and
// a CI gate — so reuse is purely an execution optimisation, like the
// harness's worker count. Pool.Cold switches it off.

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Telemetry counter names for warm-state reuse. They are deliberately
// kept out of every per-run framework registry (which must stay
// bit-identical between cold and forked runs) and attached post hoc to
// exports and server telemetry.
const (
	SnapForksCounter   = "sim.snapshot.forks"
	SnapBytesCounter   = "sim.snapshot.bytes_copied"
	SnapWarmupsCounter = "sim.snapshot.warmups_reused"
)

// SnapshotStats tallies warm-state reuse across one experiment run.
// All fields are updated atomically; a nil *SnapshotStats is a valid
// no-op sink.
type SnapshotStats struct {
	families      atomic.Uint64
	forks         atomic.Uint64
	warmupsReused atomic.Uint64
	bytesCopied   atomic.Uint64
	warmupSavedUS atomic.Uint64 // microseconds of warm-up wall clock skipped
}

func (s *SnapshotStats) addFamily() {
	if s != nil {
		s.families.Add(1)
	}
}

func (s *SnapshotStats) addFork(bytesCopied uint64, reusedWarmup bool, warmupSavedUS uint64) {
	if s == nil {
		return
	}
	s.forks.Add(1)
	s.bytesCopied.Add(bytesCopied)
	if reusedWarmup {
		s.warmupsReused.Add(1)
		s.warmupSavedUS.Add(warmupSavedUS)
	}
}

// Provenance reduces the tallies to their exported form.
func (s *SnapshotStats) Provenance() SnapshotProvenance {
	if s == nil {
		return SnapshotProvenance{}
	}
	return SnapshotProvenance{
		Families:      s.families.Load(),
		Forks:         s.forks.Load(),
		WarmupsReused: s.warmupsReused.Load(),
		BytesCopied:   s.bytesCopied.Load(),
		WarmupMSSaved: float64(s.warmupSavedUS.Load()) / 1000,
	}
}

// SnapshotProvenance is the exported warm-state-reuse record: how many
// family snapshots were built, how many runs resumed from one, and what
// the reuse cost (copy-on-write bytes) and saved (warm-up wall clock).
type SnapshotProvenance struct {
	Families      uint64  `json:"families"`
	Forks         uint64  `json:"forks"`
	WarmupsReused uint64  `json:"warmups_reused"`
	BytesCopied   uint64  `json:"bytes_copied"`
	WarmupMSSaved float64 `json:"warmup_ms_saved"`
}

// Empty reports whether no reuse happened (cold run or degenerate
// experiment).
func (p SnapshotProvenance) Empty() bool {
	return p.Families == 0 && p.Forks == 0
}

// accumulate sums another record into this one (bench report totals).
func (p *SnapshotProvenance) accumulate(q SnapshotProvenance) {
	p.Families += q.Families
	p.Forks += q.Forks
	p.WarmupsReused += q.WarmupsReused
	p.BytesCopied += q.BytesCopied
	p.WarmupMSSaved += q.WarmupMSSaved
}

// AttachCounters adds the deterministic reuse tallies (counts and
// simulated bytes; never wall clock) to an export's counter map, so
// CLI -json documents and served jobs expose identical telemetry.
func (p SnapshotProvenance) AttachCounters(ex *sim.Export) {
	if ex == nil || p.Empty() {
		return
	}
	if ex.Counters == nil {
		ex.Counters = make(map[string]uint64, 3)
	}
	ex.Counters[SnapForksCounter] = p.Forks
	ex.Counters[SnapBytesCounter] = p.BytesCopied
	ex.Counters[SnapWarmupsCounter] = p.WarmupsReused
}

// AttachStats adds the same tallies to a stats registry (the serving
// layer merges per-job registries into its /metrics telemetry).
func (p SnapshotProvenance) AttachStats(stats *sim.Stats) {
	if stats == nil || p.Empty() {
		return
	}
	stats.Add(SnapForksCounter, p.Forks)
	stats.Add(SnapBytesCounter, p.BytesCopied)
	stats.Add(SnapWarmupsCounter, p.WarmupsReused)
}

// SnapshotCache is a bounded LRU of family snapshots keyed by a
// canonical family descriptor (experiment plus every knob that shapes
// the warm state — the same canonicalisation discipline as the job
// result cache's spec digest). Entries are immutable once built, so a
// cached family can be forked by any number of concurrent jobs; the
// bound exists only to cap memory. Safe for concurrent use.
type SnapshotCache struct {
	mu      sync.Mutex
	max     int
	ll      *list.List // front = most recently used
	entries map[string]*list.Element
	hits    atomic.Uint64
	misses  atomic.Uint64
}

type snapCacheEntry struct {
	key   string
	once  sync.Once
	value any
	err   error
}

// NewSnapshotCache builds a cache bounded to max families (max <= 0
// disables caching: every lookup builds).
func NewSnapshotCache(max int) *SnapshotCache {
	return &SnapshotCache{max: max, ll: list.New(), entries: make(map[string]*list.Element)}
}

// Hits and Misses report the cache's lifetime lookup tallies.
func (c *SnapshotCache) Hits() uint64   { return c.hits.Load() }
func (c *SnapshotCache) Misses() uint64 { return c.misses.Load() }

// Len reports the number of cached families.
func (c *SnapshotCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// getOrBuild returns the family stored under key, building it at most
// once per residency (concurrent callers for the same key share one
// build). A nil cache or a non-positive bound degrades to a plain
// build. A failed build is not cached.
func (c *SnapshotCache) getOrBuild(key string, build func() (any, error)) (any, error) {
	if c == nil || c.max <= 0 {
		return build()
	}
	c.mu.Lock()
	el, ok := c.entries[key]
	if ok {
		c.ll.MoveToFront(el)
	} else {
		el = c.ll.PushFront(&snapCacheEntry{key: key})
		c.entries[key] = el
		for c.ll.Len() > c.max {
			oldest := c.ll.Back()
			c.ll.Remove(oldest)
			delete(c.entries, oldest.Value.(*snapCacheEntry).key)
		}
	}
	entry := el.Value.(*snapCacheEntry)
	c.mu.Unlock()

	built := false
	entry.once.Do(func() {
		built = true
		entry.value, entry.err = build()
	})
	if built {
		c.misses.Add(1)
	} else {
		c.hits.Add(1)
	}
	if entry.err != nil {
		// Do not let a transient failure poison the key: drop the entry
		// so the next lookup retries.
		c.mu.Lock()
		if cur, ok := c.entries[entry.key]; ok && cur == el {
			c.ll.Remove(el)
			delete(c.entries, entry.key)
		}
		c.mu.Unlock()
		return nil, entry.err
	}
	return entry.value, nil
}

// snapSpan opens one warm-state phase span ("fork.snapshot" around a
// capture, "fork.resume" around a fork's reconstruction) as a child of
// the context's active span. Nil-safe and free when tracing is off.
func snapSpan(ctx context.Context, name, family string) *obs.Span {
	_, span := obs.StartSpan(ctx, name)
	if span != nil {
		span.SetAttr("family", family)
	}
	return span
}
