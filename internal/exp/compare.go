package exp

// `overlaysim compare`: the cross-backend experiment. The same two
// workloads — a fork divergence window and an SpMV sweep subset — run
// under every registered translation backend, and the report puts the
// per-backend cycles, TLB/OMT behaviour, and memory overhead side by
// side. Backends fan across the pool like any other suite (one job per
// backend), compose with warm-state snapshots (family keys are
// backend-qualified), and are bit-identical at any worker count.

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/sparse"
	"repro/internal/workload"
)

// CompareParams selects what one compare run measures. The zero value
// normalises to every registered backend, the default benchmark, the
// quick fork window, and a small SpMV subset.
type CompareParams struct {
	// Backends are the translation backends to run (empty = all
	// registered, in sorted order).
	Backends []string `json:"backends"`

	// Bench is the fork benchmark each backend runs.
	Bench string `json:"bench"`

	// Warm and Measure size the fork window in instructions.
	Warm    uint64 `json:"warm"`
	Measure uint64 `json:"measure"`

	// Matrices is the SpMV suite subset each backend runs.
	Matrices int `json:"matrices"`
}

// DefaultCompareParams is the quick cross-backend matrix: every
// registered backend over one write-heavy benchmark and four matrices.
func DefaultCompareParams() CompareParams {
	q := QuickForkParams()
	return CompareParams{
		Bench:    "mcf",
		Warm:     q.WarmInstructions,
		Measure:  q.MeasureInstructions,
		Matrices: 4,
	}
}

// normalize fills zero fields with the defaults.
func (p CompareParams) normalize() CompareParams {
	d := DefaultCompareParams()
	if len(p.Backends) == 0 {
		p.Backends = core.Backends()
	}
	if p.Bench == "" {
		p.Bench = d.Bench
	}
	if p.Warm == 0 {
		p.Warm = d.Warm
	}
	if p.Measure == 0 {
		p.Measure = d.Measure
	}
	if p.Matrices == 0 {
		p.Matrices = d.Matrices
	}
	return p
}

// CompareForkLeg is one backend's fork measurement: the backend's
// native mechanism (overlay-on-write for overlay, trap-free remap for
// VBI, conventional copy-on-write otherwise) measured over the
// post-fork window.
type CompareForkLeg struct {
	Bench      string  `json:"bench"`
	Mechanism  string  `json:"mechanism"` // "oow" (overlay) or "cow"
	Cycles     uint64  `json:"cycles"`
	CPI        float64 `json:"cpi"`
	AddedBytes int     `json:"added_bytes"`
	PageCopies uint64  `json:"page_copies"`
	Overlaying uint64  `json:"overlaying_writes"`
}

// CompareSpMVLeg is one backend's SpMV measurement: total cycles over
// the matrix subset under the CSR representation (which every backend
// can run), plus the overlay representation's total when the backend
// supports it.
type CompareSpMVLeg struct {
	Matrices      int    `json:"matrices"`
	CSRCycles     uint64 `json:"csr_cycles"`
	OverlayCycles uint64 `json:"overlay_cycles,omitempty"`
}

// CompareBackendResult is one backend's row of the cross-backend
// report.
type CompareBackendResult struct {
	Backend string         `json:"backend"`
	Fork    CompareForkLeg `json:"fork"`
	SpMV    CompareSpMVLeg `json:"spmv"`

	// MetadataBytes is the backend's translation-metadata footprint
	// (page tables, OMT, MTL, RestSeg tags) probed after mapping and
	// forking the benchmark's footprint.
	MetadataBytes int `json:"metadata_bytes"`

	// Counters are the fork leg's translation-relevant counters (tlb.*,
	// omt.*, core.*, plus the backend's own namespace).
	Counters map[string]uint64 `json:"counters"`
}

// CompareReport is the cross-backend report `overlaysim compare` emits
// (docs/schema/compare.schema.json describes the JSON form).
type CompareReport struct {
	Bench    string                 `json:"bench"`
	Warm     uint64                 `json:"warm"`
	Measure  uint64                 `json:"measure"`
	Matrices int                    `json:"matrices"`
	Backends []CompareBackendResult `json:"backends"`
}

// compareCounterPrefixes selects which registry counters each backend's
// report row carries.
var compareCounterPrefixes = []string{"tlb.", "omt.", "core.", "vbi.", "utopia."}

// nativeOverlayMode reports whether the backend's native fork mechanism
// is overlay-on-write. Only the overlay backend has one; every rival
// forks copy-on-write (the overlayMode argument is a no-op for them).
func nativeOverlayMode(backend string) bool {
	return backendName(backend) == "overlay"
}

// RunCompare is RunComparePool at Parallel 1.
func RunCompare(params CompareParams) (*CompareReport, error) {
	return RunComparePool(context.Background(), Pool{Parallel: 1}, params)
}

// RunComparePool measures every requested backend, one pool job per
// backend. Each job's work nests under a "compare.<backend>" span, so
// traces and span summaries name the backend they timed.
func RunComparePool(ctx context.Context, pool Pool, params CompareParams) (*CompareReport, error) {
	params = params.normalize()
	spec, err := workload.ByName(params.Bench)
	if err != nil {
		return nil, err
	}
	for i, b := range params.Backends {
		if err := core.ValidBackend(b); err != nil {
			return nil, err
		}
		params.Backends[i] = backendName(b)
	}
	if pool.Snapshots == nil {
		pool.Snapshots = NewSnapshotCache(16) // run-local: fork + spmv family per backend
	}
	results, err := harness.Map(ctx, pool.opts("compare"), params.Backends,
		func(jobCtx context.Context, backend string, _ int) (CompareBackendResult, error) {
			r, err := runBackendCompare(jobCtx, pool, params, spec, backend)
			if err != nil {
				return CompareBackendResult{}, fmt.Errorf("%s: %w", backend, err)
			}
			return r, nil
		})
	if err != nil {
		return nil, err
	}
	return &CompareReport{
		Bench:    params.Bench,
		Warm:     params.Warm,
		Measure:  params.Measure,
		Matrices: params.Matrices,
		Backends: results,
	}, nil
}

// runBackendCompare measures one backend: the fork leg, the SpMV leg,
// and the metadata probe, all under one "compare.<backend>" span.
func runBackendCompare(ctx context.Context, pool Pool, params CompareParams, spec workload.Spec, backend string) (CompareBackendResult, error) {
	ctx, span := obs.StartSpan(ctx, "compare."+backend)
	if span != nil {
		span.SetAttr("backend", backend)
		span.SetAttr("bench", spec.Name)
	}
	defer span.End()

	res := CompareBackendResult{Backend: backend}

	fp := ForkParams{
		WarmInstructions:    params.Warm,
		MeasureInstructions: params.Measure,
		Backend:             backend,
		SeriesEpoch:         sim.DefaultEpoch,
	}
	overlayMode := nativeOverlayMode(backend)
	mech, err := compareForkLeg(ctx, pool, spec, fp, overlayMode)
	if err != nil {
		return res, fmt.Errorf("fork leg: %w", err)
	}
	res.Fork = CompareForkLeg{
		Bench:      spec.Name,
		Mechanism:  mechName(overlayMode),
		Cycles:     mech.Cycles,
		CPI:        mech.CPI,
		AddedBytes: mech.AddedBytes,
		PageCopies: mech.PageCopies,
		Overlaying: mech.Overlaying,
	}
	res.Counters = compareCounters(mech.Stats)

	res.SpMV, err = compareSpMVLeg(ctx, pool, backend, params.Matrices)
	if err != nil {
		return res, fmt.Errorf("spmv leg: %w", err)
	}

	res.MetadataBytes, err = metadataProbe(backend, spec)
	if err != nil {
		return res, fmt.Errorf("metadata probe: %w", err)
	}
	return res, nil
}

// compareForkLeg measures the fork window under one backend, through
// the warm-state snapshot path unless the pool asked for cold runs.
// The family key is backend-qualified, so backends never share warm
// state.
func compareForkLeg(ctx context.Context, pool Pool, spec workload.Spec, fp ForkParams, overlayMode bool) (MechanismResult, error) {
	if pool.Cold {
		return runMechanism(ctx, spec, fp, overlayMode)
	}
	v, err := pool.Snapshots.getOrBuild(forkFamilyKey(spec, fp), func() (any, error) {
		pool.Snap.addFamily()
		return warmForkFamily(ctx, spec, fp)
	})
	if err != nil {
		return MechanismResult{}, err
	}
	return resumeMechanism(ctx, pool, v.(*forkFamily), fp, overlayMode)
}

// compareSpMVLeg runs the matrix subset under one backend. The CSR
// representation maps to regular pages and runs everywhere; the overlay
// representation needs the Overlay Memory Store, so only the overlay
// backend measures it.
func compareSpMVLeg(ctx context.Context, pool Pool, backend string, limit int) (CompareSpMVLeg, error) {
	ms := suiteSubset(limit)
	leg := CompareSpMVLeg{Matrices: len(ms)}
	for _, m := range ms {
		cfg := spmvConfig(m.DenseBytes())
		cfg.Backend = backend
		newFramework := func() (*core.Framework, func(*core.Framework), error) {
			if pool.Cold {
				f, err := core.New(cfg)
				return f, nil, err
			}
			key := fmt.Sprintf("compare/%s/pages=%d", backend, cfg.MemoryPages)
			v, err := pool.Snapshots.getOrBuild(key, func() (any, error) {
				pool.Snap.addFamily()
				return warmPristineFamily(ctx, key, cfg)
			})
			if err != nil {
				return nil, nil, err
			}
			f, done := v.(*pristineFamily).fork(ctx, pool, key)
			return f, done, nil
		}

		c := sparse.NewCSR(m)
		f, done, err := newFramework()
		if err != nil {
			return leg, err
		}
		proc := f.VM.NewProcess()
		layout, err := sparse.MapCSR(f, proc, c)
		if err != nil {
			return leg, err
		}
		cycles, err := simulateTrace(f, proc, sparse.CSRTrace(c, layout))
		if err != nil {
			return leg, err
		}
		leg.CSRCycles += cycles
		if done != nil {
			done(f)
		}

		if backend == "overlay" {
			f, done, err := newFramework()
			if err != nil {
				return leg, err
			}
			proc := f.VM.NewProcess()
			o, layout, err := sparse.MapOverlay(f, proc, m)
			if err != nil {
				return leg, err
			}
			trace, err := sparse.OverlayTrace(o, layout)
			if err != nil {
				return leg, err
			}
			cycles, err := simulateTrace(f, proc, trace)
			if err != nil {
				return leg, err
			}
			leg.OverlayCycles += cycles
			if done != nil {
				done(f)
			}
		}
	}
	return leg, nil
}

// metadataProbe maps the benchmark's footprint under one backend,
// forks, and reads the backend's translation-metadata accounting. The
// probe is untimed (nothing runs on the engine), so it adds no
// simulated work to the report.
func metadataProbe(backend string, spec workload.Spec) (int, error) {
	cfg := core.DefaultConfig()
	cfg.MemoryPages = spec.Pages*2 + 16384
	cfg.Backend = backend
	f, err := core.New(cfg)
	if err != nil {
		return 0, err
	}
	proc := f.VM.NewProcess()
	if err := spec.MapFootprint(f, proc); err != nil {
		return 0, err
	}
	f.Fork(proc, nativeOverlayMode(backend))
	return f.MetadataBytes(), nil
}

// compareCounters extracts the translation-relevant counters from a
// run's registry, in sorted order (the map is re-marshalled sorted by
// encoding/json anyway; sorting here keeps iteration deterministic for
// callers that range).
func compareCounters(stats *sim.Stats) map[string]uint64 {
	if stats == nil {
		return nil
	}
	names := stats.Names()
	sort.Strings(names)
	out := make(map[string]uint64)
	for _, n := range names {
		for _, p := range compareCounterPrefixes {
			if strings.HasPrefix(n, p) {
				out[n] = stats.Get(n)
				break
			}
		}
	}
	return out
}

// CompareExport bundles a compare run into the machine-readable export.
func CompareExport(params CompareParams, report *CompareReport) *sim.Export {
	ex := sim.NewExport("compare")
	ex.Config = params.normalize()
	ex.Results = report
	return ex
}

// PrintCompare renders the human-readable cross-backend table.
func PrintCompare(w io.Writer, r *CompareReport) {
	fmt.Fprintf(w, "Cross-backend comparison: fork(%s, warm=%d, measure=%d) + spmv(%d matrices)\n",
		r.Bench, r.Warm, r.Measure, r.Matrices)
	fmt.Fprintf(w, "%-10s %-5s %12s %8s %12s %14s %14s %12s\n",
		"backend", "mech", "fork cycles", "cpi", "added KB", "spmv csr cyc", "spmv ovl cyc", "metadata KB")
	for _, b := range r.Backends {
		ovl := "-"
		if b.SpMV.OverlayCycles != 0 {
			ovl = fmt.Sprintf("%d", b.SpMV.OverlayCycles)
		}
		fmt.Fprintf(w, "%-10s %-5s %12d %8.3f %12.1f %14d %14s %12.1f\n",
			b.Backend, b.Fork.Mechanism, b.Fork.Cycles, b.Fork.CPI,
			float64(b.Fork.AddedBytes)/1024, b.SpMV.CSRCycles, ovl,
			float64(b.MetadataBytes)/1024)
	}
	var base *CompareBackendResult
	for i := range r.Backends {
		if r.Backends[i].Backend == "baseline" {
			base = &r.Backends[i]
			break
		}
	}
	if base != nil && base.Fork.Cycles > 0 {
		fmt.Fprintln(w, "\nrelative to baseline (fork cycles; < 1.00 is faster):")
		for _, b := range r.Backends {
			if b.Backend == "baseline" || b.Fork.Cycles == 0 {
				continue
			}
			fmt.Fprintf(w, "  %-10s %.3fx cycles, %+d KB metadata\n",
				b.Backend, float64(b.Fork.Cycles)/float64(base.Fork.Cycles),
				(b.MetadataBytes-base.MetadataBytes)/1024)
		}
	}
}
