package exp

import (
	"context"
	"fmt"
	"io"
	"sort"

	"repro/internal/harness"
	"repro/internal/sparse"
)

// LineSizes are the block granularities Figure 11 sweeps, from sub-line
// management to whole-page (the "practical today" point the paper shows
// costs 53× over ideal).
var LineSizes = []int{16, 32, 64, 256, 1024, 4096}

// LineSizeResult is one Figure 11 column: one matrix's memory overhead at
// each management granularity, normalised to the ideal store (8 B per
// non-zero), plus CSR's overhead for the crossover markers.
type LineSizeResult struct {
	Matrix    string
	L         float64
	Overheads map[int]float64
	CSR       float64
}

// RunFigure11 computes the line-size sensitivity for the suite (limit ≤ 0
// runs all 87 matrices). Purely analytic — no simulation needed, exactly
// as in the paper. It is RunFigure11Pool at Parallel 1.
func RunFigure11(limit int) []LineSizeResult {
	results, _ := RunFigure11Pool(context.Background(), Pool{Parallel: 1}, limit)
	return results
}

// RunFigure11Pool computes the per-matrix overheads with one job per
// matrix fanned across the pool, then applies the same stable sort by
// L as the sequential path (jobs are collected by index, so the
// pre-sort order — and therefore the sorted output — is identical at
// any worker count). The only possible error is pool cancellation.
func RunFigure11Pool(ctx context.Context, pool Pool, limit int) ([]LineSizeResult, error) {
	results, err := harness.Map(ctx, pool.opts("linesize"), suiteSubset(limit),
		func(_ context.Context, m *sparse.Matrix, _ int) (LineSizeResult, error) {
			r := LineSizeResult{Matrix: m.Name, L: m.L(), Overheads: make(map[int]float64, len(LineSizes))}
			ideal := float64(m.IdealBytes())
			for _, sz := range LineSizes {
				r.Overheads[sz] = float64(m.NNZBlocks(sz)*sz) / ideal
			}
			csr := sparse.NewCSR(m)
			r.CSR = float64(csr.MemoryBytes()) / ideal
			return r, nil
		})
	if err != nil {
		return nil, err
	}
	sort.SliceStable(results, func(i, j int) bool { return results[i].L < results[j].L })
	return results, nil
}

// PrintFigure11 renders the sweep with the paper's aggregate: the mean
// overhead of page-granularity management and, per line size, how many
// matrices beat CSR (the circled crossovers).
func PrintFigure11(w io.Writer, results []LineSizeResult) {
	fmt.Fprintln(w, "Figure 11: Memory overhead vs ideal (non-zero values only)")
	fmt.Fprintf(w, "%-18s %6s %7s", "matrix", "L", "CSR")
	for _, sz := range LineSizes {
		fmt.Fprintf(w, " %7dB", sz)
	}
	fmt.Fprintln(w)
	sums := make(map[int]float64, len(LineSizes))
	beatCSR := make(map[int]int, len(LineSizes))
	for _, r := range results {
		fmt.Fprintf(w, "%-18s %6.2f %7.2f", r.Matrix, r.L, r.CSR)
		for _, sz := range LineSizes {
			fmt.Fprintf(w, " %8.2f", r.Overheads[sz])
			sums[sz] += r.Overheads[sz]
			if r.Overheads[sz] < r.CSR {
				beatCSR[sz]++
			}
		}
		fmt.Fprintln(w)
	}
	n := float64(len(results))
	fmt.Fprintf(w, "%-18s %6s %7s", "mean", "-", "-")
	for _, sz := range LineSizes {
		fmt.Fprintf(w, " %8.2f", sums[sz]/n)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "\npage (4KB) granularity costs %.0fx over ideal on average (paper: 53x)\n", sums[4096]/n)
	fmt.Fprint(w, "matrices beating CSR on memory, by granularity:")
	for _, sz := range LineSizes {
		fmt.Fprintf(w, "  %dB:%d", sz, beatCSR[sz])
	}
	fmt.Fprintf(w, " of %d (finer granularity crosses CSR on more matrices)\n", len(results))
}
