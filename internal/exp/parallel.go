package exp

// Parallelism plumbing: every suite/sweep runner fans its independent
// simulations through internal/harness. Each job builds its own
// framework (engine, memory system, seeded RNGs), so simulated metrics
// are bit-identical at any worker count; see DESIGN.md "Parallel
// experiments" for the determinism argument.

import (
	"io"

	"repro/internal/harness"
	"repro/internal/sparse"
)

// Pool carries the fan-out settings every suite/sweep runner accepts:
// how many worker goroutines to use and where to report live progress.
type Pool struct {
	// Parallel is the worker count (0: GOMAXPROCS, 1: sequential).
	Parallel int

	// Progress, when non-nil, receives the harness's live
	// jobs-done/ETA line (typically stderr).
	Progress io.Writer

	// OnProgress, when non-nil, receives structured per-job completion
	// totals (done, total, failed) — the serve layer streams these to
	// clients as SSE events.
	OnProgress harness.ProgressFunc

	// Cold disables warm-state snapshot reuse: every simulation is
	// built and warmed from scratch, as the runners did before the
	// snapshot layer existed. Results are bit-identical either way (the
	// CI equivalence gate diffs the two); Cold exists for that gate and
	// for debugging.
	Cold bool

	// Snap, when non-nil, receives the run's warm-state reuse tallies
	// (families built, forks resumed, bytes copied, warm-up time saved).
	Snap *SnapshotStats

	// Snapshots, when non-nil, caches family snapshots across runs —
	// the serving layer wires one cache across jobs so repeated specs
	// with a common configuration family skip the warm-up entirely.
	// With a nil cache every run builds its own families.
	Snapshots *SnapshotCache
}

// opts builds the harness options for one labelled sweep.
func (p Pool) opts(label string) harness.Options {
	return harness.Options{
		Parallel:   p.Parallel,
		Progress:   p.Progress,
		OnProgress: p.OnProgress,
		Label:      label,
	}
}

// suiteSubset returns the matrix suite, evenly subsampled to limit
// entries (limit <= 0 keeps all 87) so the L range stays covered.
func suiteSubset(limit int) []*sparse.Matrix {
	ms := sparse.BuildSuite()
	if limit > 0 && limit < len(ms) {
		sub := make([]*sparse.Matrix, 0, limit)
		for i := 0; i < limit; i++ {
			sub = append(sub, ms[i*len(ms)/limit])
		}
		ms = sub
	}
	return ms
}
