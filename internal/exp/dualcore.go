package exp

import (
	"context"
	"fmt"
	"io"

	"repro/internal/arch"
	"repro/internal/coherence"
	"repro/internal/harness"
	"repro/internal/sim"
	"repro/internal/tlb"
)

// This file holds the multi-core extension experiment: the paper's
// Figures 8/9 idle the forked child, so the single-line TLB update of
// §4.3.3 is never stressed by a *running* sharer. Here both processes run
// on separate cores of a MESI domain. The writer diverges a shared page
// line by line while the reader keeps accessing it; we compare the
// overlaying-read-exclusive protocol (coherence-delivered OBitVector
// updates) against conventional remaps (full TLB shootdowns that also
// stall the reader).

// DualCoreResult compares one divergence of a 64-line shared page.
type DualCoreResult struct {
	Mechanism     string
	WriterCycles  sim.Cycle // writer's time to diverge all 64 lines
	ReaderCycles  sim.Cycle // reader's time for its interleaved reads
	Shootdowns    uint64
	LineUpdates   uint64
	Invalidations uint64
}

type dualMem struct {
	engine *sim.Engine
	lat    sim.Cycle
}

func (m *dualMem) Fetch(addr arch.PhysAddr, done func()) { m.engine.Schedule(m.lat, done) }
func (m *dualMem) WriteBack(arch.PhysAddr)               {}

// tlbUpdater delivers OBitVector updates on overlaying-read-exclusive.
type tlbUpdater struct {
	tlbs []*tlb.TLB
	pid  arch.PID
	vpn  arch.VPN
}

func (u *tlbUpdater) OnReadExclusive(core int, addr arch.PhysAddr) {
	if !addr.IsOverlay() {
		return
	}
	for _, t := range u.tlbs {
		t.UpdateLine(u.pid, u.vpn, addr.Line(), true)
	}
}

type staticWalker struct {
	entry tlb.Entry
	lat   sim.Cycle
}

func (w staticWalker) Walk(arch.PID, arch.VPN) (tlb.Entry, sim.Cycle, bool) {
	return w.entry, w.lat, true
}

// RunDualCoreDivergence runs the divergence scenario under one mechanism.
// overlay=true uses overlaying-read-exclusive; false models the
// conventional remap: a page copy plus a TLB shootdown that stalls both
// cores, after which the reader's TLB refills with a page walk.
func RunDualCoreDivergence(overlay bool) DualCoreResult {
	engine := sim.NewEngine()
	ccfg := coherence.DefaultConfig()
	ccfg.Cores = 2
	mem := &dualMem{engine: engine, lat: 100}
	domain := coherence.New(engine, ccfg, mem)

	tcfg := tlb.DefaultConfig()
	const (
		pid arch.PID = 1
		vpn arch.VPN = 0x40
		ppn arch.PPN = 0x80
	)
	walker := staticWalker{
		entry: tlb.Entry{PPN: ppn, COW: true, HasOverlay: overlay},
		lat:   tcfg.WalkLatency,
	}
	tlbs := []*tlb.TLB{
		tlb.New(tcfg, walker, &engine.Stats),
		tlb.New(tcfg, walker, &engine.Stats),
	}
	if overlay {
		domain.SetListener(&tlbUpdater{tlbs: tlbs, pid: pid, vpn: vpn})
	}
	opn := arch.OverlayPage(pid, vpn)
	physLine := func(l int) arch.PhysAddr { return arch.PhysAddrOf(ppn, uint64(l)<<arch.LineShift) }

	// Both cores warm the shared page.
	pending := 0
	for _, t := range tlbs {
		t.Lookup(pid, vpn)
	}
	for l := 0; l < arch.LinesPerPage; l++ {
		for c := 0; c < 2; c++ {
			pending++
			domain.Read(c, physLine(l), func() { pending-- })
		}
	}
	engine.Run()

	var writerEnd, readerEnd sim.Cycle
	start := engine.Now()

	// Writer (core 0) diverges every line; reader (core 1) touches the
	// page between writes. Both issue their next op when the previous
	// completes — a tight producer/consumer interleaving.
	writerLine, readerOps := 0, 0
	var writeNext, readNext func()
	writeNext = func() {
		if writerLine >= arch.LinesPerPage {
			writerEnd = engine.Now() - start
			return
		}
		l := writerLine
		writerLine++
		if overlay {
			// Overlaying write: gain exclusive ownership of the source
			// line, retag to the overlay address, update TLBs via the
			// coherence message (listener), then continue.
			domain.ReadExclusive(0, physLine(l), func() {
				domain.Write(0, opn.LineAddr(l), writeNext)
			})
			return
		}
		// Conventional: first write triggers copy (once per page) — here
		// already paid — then every line write is a plain coherent write,
		// but the initial remap shot down both TLBs.
		if l == 0 {
			// Page copy: read all 64 source lines (overlapped), then
			// shoot down both TLBs; the reader will re-walk.
			remaining := arch.LinesPerPage
			for i := 0; i < arch.LinesPerPage; i++ {
				domain.Read(0, physLine(i), func() {
					remaining--
					if remaining == 0 {
						var cost sim.Cycle
						for _, t := range tlbs {
							if c := t.Shootdown(pid, vpn); c > cost {
								cost = c
							}
						}
						engine.Schedule(cost, func() {
							domain.Write(0, physLine(l)+arch.PhysAddr(1<<20), writeNext)
						})
					}
				})
			}
			return
		}
		domain.Write(0, physLine(l)+arch.PhysAddr(1<<20), writeNext)
	}
	readNext = func() {
		if writerLine >= arch.LinesPerPage && readerOps > 0 {
			readerEnd = engine.Now() - start
			return
		}
		readerOps++
		l := readerOps % arch.LinesPerPage
		// The reader translates first: after a shootdown this is a 1000+
		// cycle walk; after a line update it is an L1 TLB hit.
		_, lat, _ := tlbs[1].Lookup(pid, vpn)
		engine.Schedule(lat, func() {
			domain.Read(1, physLine(l), readNext)
		})
	}
	writeNext()
	readNext()
	engine.Run()
	if readerEnd == 0 {
		readerEnd = engine.Now() - start
	}

	name := "overlay-read-exclusive"
	if !overlay {
		name = "copy+shootdown"
	}
	return DualCoreResult{
		Mechanism:     name,
		WriterCycles:  writerEnd,
		ReaderCycles:  readerEnd,
		Shootdowns:    engine.Stats.Get("tlb.shootdowns"),
		LineUpdates:   engine.Stats.Get("tlb.line_updates"),
		Invalidations: engine.Stats.Get("coherence.invalidations"),
	}
}

// RunDualCorePool runs both divergence mechanisms (overlay
// read-exclusive first, then copy+shootdown — the order PrintDualCore
// expects) as two pool jobs; each builds its own engine and MESI
// domain.
func RunDualCorePool(ctx context.Context, pool Pool) ([]DualCoreResult, error) {
	return harness.Map(ctx, pool.opts("dualcore"), []bool{true, false},
		func(_ context.Context, overlay bool, _ int) (DualCoreResult, error) {
			return RunDualCoreDivergence(overlay), nil
		})
}

// PrintDualCore renders the extension experiment.
func PrintDualCore(w io.Writer, results []DualCoreResult) {
	fmt.Fprintln(w, "Extension: page divergence with BOTH processes running (2-core MESI domain)")
	fmt.Fprintf(w, "%-24s %14s %14s %11s %12s\n", "mechanism", "writer cycles", "reader cycles", "shootdowns", "line updates")
	for _, r := range results {
		fmt.Fprintf(w, "%-24s %14d %14d %11d %12d\n",
			r.Mechanism, r.WriterCycles, r.ReaderCycles, r.Shootdowns, r.LineUpdates)
	}
	fmt.Fprintln(w, "(§4.3.3: the coherence-delivered OBitVector update replaces the TLB shootdown)")
}
