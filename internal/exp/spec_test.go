package exp

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// TestSpecRoundTrip feeds specs through CLIArgs → SpecFromArgs and
// asserts the normalized spec survives unchanged.
func TestSpecRoundTrip(t *testing.T) {
	specs := []JobSpec{
		{Experiment: "fork", Bench: "hmmer", Warm: 20000, Measure: 50000},
		{Experiment: "fork"},
		{Experiment: "spmv", Matrices: 6, Dense: true, Parallel: 4},
		{Experiment: "linesize", Matrices: 10},
		{Experiment: "sweep", Points: 8, Rows: 128},
		{Experiment: "sweep"},
		{Experiment: "dualcore", Parallel: 2},
		{Experiment: "omsstress"},
		{Experiment: "omsstress", Tenants: 2, Ops: 4000, Segments: 48, OMSCapacity: 8, Parallel: 2},
		{Experiment: "omsstress", OMSCapacity: -1, NoSpill: true, Shared: true},
	}
	for _, s := range specs {
		args := s.CLIArgs()
		back, err := SpecFromArgs(args)
		if err != nil {
			t.Errorf("%v: SpecFromArgs(%v): %v", s, args, err)
			continue
		}
		if back != s.Normalized() {
			t.Errorf("round trip drifted:\n spec %+v\n args %v\n back %+v", s.Normalized(), args, back)
		}
	}
}

// TestSpecValidation exercises the flag-table checks: unknown
// experiments, inapplicable fields, and the CLI's value constraints.
func TestSpecValidation(t *testing.T) {
	cases := []struct {
		name string
		spec JobSpec
		want string // substring of the validation error ("" = valid)
	}{
		{"ok fork", JobSpec{Experiment: "fork", Bench: "mcf"}, ""},
		{"ok dualcore", JobSpec{Experiment: "dualcore"}, ""},
		{"ok sweep defaults", JobSpec{Experiment: "sweep"}, ""},
		{"unknown experiment", JobSpec{Experiment: "warp"}, "unknown experiment"},
		{"fork with rows", JobSpec{Experiment: "fork", Rows: 64}, `"rows" does not apply`},
		{"fork unknown bench", JobSpec{Experiment: "fork", Bench: "nope"}, "nope"},
		{"spmv with warm", JobSpec{Experiment: "spmv", Warm: 5}, `"warm" does not apply`},
		{"dualcore with dense", JobSpec{Experiment: "dualcore", Dense: true}, `"dense" does not apply`},
		{"negative parallel", JobSpec{Experiment: "spmv", Parallel: -1}, "parallel"},
		{"negative matrices", JobSpec{Experiment: "linesize", Matrices: -2}, "matrices"},
		{"sweep one point", JobSpec{Experiment: "sweep", Points: 1}, "at least 2 sweep points"},
		{"sweep tiny rows", JobSpec{Experiment: "sweep", Rows: 4}, "cache line"},
		{"ok omsstress", JobSpec{Experiment: "omsstress", OMSCapacity: 8, Shared: true}, ""},
		{"omsstress with bench", JobSpec{Experiment: "omsstress", Bench: "mcf"}, `"bench" does not apply`},
		{"omsstress with cold", JobSpec{Experiment: "omsstress", Cold: true}, `"cold" does not apply`},
		{"omsstress bad capacity", JobSpec{Experiment: "omsstress", OMSCapacity: -2}, "oms_capacity"},
		{"omsstress bad tenants", JobSpec{Experiment: "omsstress", Tenants: -1}, "tenants"},
		{"fork with tenants", JobSpec{Experiment: "fork", Tenants: 2}, `"tenants" does not apply`},
		{"sweep with shared", JobSpec{Experiment: "sweep", Shared: true}, `"shared" does not apply`},
		{"spmv with nospill", JobSpec{Experiment: "spmv", NoSpill: true}, `"nospill" does not apply`},
	}
	for _, c := range cases {
		err := c.spec.Validate()
		if c.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %v, want substring %q", c.name, err, c.want)
		}
		var ve *ValidationError
		if err != nil && !errors.As(err, &ve) {
			t.Errorf("%s: error is %T, want *ValidationError", c.name, err)
		}
	}
}

// TestSpecValidationCollectsAll asserts one bad spec reports every
// problem, not just the first.
func TestSpecValidationCollectsAll(t *testing.T) {
	s := JobSpec{Experiment: "sweep", Points: 1, Rows: 4, Parallel: -3, Dense: true}
	err := s.Validate()
	var ve *ValidationError
	if !errors.As(err, &ve) {
		t.Fatalf("error = %v, want *ValidationError", err)
	}
	if len(ve.Problems) != 4 {
		t.Errorf("got %d problems, want 4: %v", len(ve.Problems), ve.Problems)
	}
}

// TestSpecKey pins the cache-key semantics: defaults and explicit
// defaults collide, Parallel never matters, and distinct work diverges.
func TestSpecKey(t *testing.T) {
	base := JobSpec{Experiment: "sweep"}
	explicit := JobSpec{Experiment: "sweep", Points: 11, Rows: 256}
	if base.Key() != explicit.Key() {
		t.Error("spec with explicit defaults has a different key than the bare spec")
	}
	par := JobSpec{Experiment: "sweep", Parallel: 8}
	if base.Key() != par.Key() {
		t.Error("parallel hint changed the cache key; metrics are identical at any worker count")
	}
	other := JobSpec{Experiment: "sweep", Points: 8}
	if base.Key() == other.Key() {
		t.Error("different sweep sizes share a cache key")
	}
	if k := base.Key(); len(k) != 64 {
		t.Errorf("key %q is not a hex sha256", k)
	}
}

// TestSpecKeyIgnoresExecutionHints is the digest-agreement regression
// for the result tiers (LRU cache, persistent store, coordinator shard
// routing): every execution-only field — parallel, cold, shared — must
// be invisible to Key, individually and combined, or identical work
// would land in different cache slots depending on how it was launched.
func TestSpecKeyIgnoresExecutionHints(t *testing.T) {
	cases := []struct {
		name          string
		base, variant JobSpec
	}{
		{"parallel", JobSpec{Experiment: "omsstress"}, JobSpec{Experiment: "omsstress", Parallel: 7}},
		{"shared", JobSpec{Experiment: "omsstress"}, JobSpec{Experiment: "omsstress", Shared: true}},
		{"cold", JobSpec{Experiment: "dualcore"}, JobSpec{Experiment: "dualcore", Cold: true}},
		{"all combined",
			JobSpec{Experiment: "omsstress", Tenants: 3, Ops: 500},
			JobSpec{Experiment: "omsstress", Tenants: 3, Ops: 500, Parallel: 4, Shared: true}},
	}
	for _, tc := range cases {
		if tc.base.Key() != tc.variant.Key() {
			t.Errorf("%s: execution hint changed the digest\n base    %s\n variant %s",
				tc.name, tc.base.Key(), tc.variant.Key())
		}
		if string(tc.base.CanonicalJSON()) != string(tc.variant.CanonicalJSON()) {
			t.Errorf("%s: canonical JSON diverged: %s vs %s",
				tc.name, tc.base.CanonicalJSON(), tc.variant.CanonicalJSON())
		}
	}
	// Simulation-relevant omsstress fields still diverge.
	a := JobSpec{Experiment: "omsstress", Tenants: 2}
	b := JobSpec{Experiment: "omsstress", Tenants: 3}
	if a.Key() == b.Key() {
		t.Error("different tenant counts share a digest")
	}
}

// TestParseJobSpec covers strict decoding: unknown fields and invalid
// specs are rejected with ValidationError.
func TestParseJobSpec(t *testing.T) {
	good := `{"experiment":"fork","bench":"hmmer","warm":20000,"measure":50000}`
	s, err := ParseJobSpec(strings.NewReader(good))
	if err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	if s.Bench != "hmmer" || s.Warm != 20000 {
		t.Errorf("parsed spec = %+v", s)
	}
	for name, body := range map[string]string{
		"unknown field":   `{"experiment":"fork","turbo":true}`,
		"not json":        `experiment=fork`,
		"bad experiment":  `{"experiment":"warp"}`,
		"field mismatch":  `{"experiment":"dualcore","rows":64}`,
		"negative number": `{"experiment":"spmv","matrices":-1}`,
	} {
		if _, err := ParseJobSpec(strings.NewReader(body)); err == nil {
			t.Errorf("%s: accepted %s", name, body)
		}
	}
}

// TestSpecRunMatchesDirectRunner runs a tiny sweep through JobSpec.Run
// and through the underlying pool runner directly; the simulated cycle
// counts must agree (the serve layer adds no simulation of its own).
func TestSpecRunMatchesDirectRunner(t *testing.T) {
	spec := JobSpec{Experiment: "sweep", Points: 2, Rows: 64}
	out, err := spec.Run(context.Background(), Pool{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	if out.Export == nil || out.Export.Command != "sweep" {
		t.Fatalf("export = %+v", out.Export)
	}
	direct, err := RunSparsitySweepPool(context.Background(), Pool{Parallel: 1}, 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := out.Export.Results.([]SweepResult)
	if !ok {
		t.Fatalf("export results have type %T", out.Export.Results)
	}
	if len(got) != len(direct) {
		t.Fatalf("got %d results, want %d", len(got), len(direct))
	}
	for i := range got {
		if got[i] != direct[i] {
			t.Errorf("point %d: spec run %+v != direct run %+v", i, got[i], direct[i])
		}
	}
}

// TestSpecRunCancelled asserts a pre-cancelled context surfaces as
// ctx.Err, not a partial result.
func TestSpecRunCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := JobSpec{Experiment: "dualcore"}.Run(ctx, Pool{Parallel: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
