package exp

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"testing"

	"repro/internal/core"
)

// quickCompareParams is the small cross-backend matrix the tests run:
// every backend, one benchmark, a short fork window, one matrix.
func quickCompareParams() CompareParams {
	return CompareParams{Bench: "mcf", Warm: 20_000, Measure: 40_000, Matrices: 1}
}

func TestCompareReportShape(t *testing.T) {
	report, err := RunComparePool(context.Background(), Pool{Parallel: 2}, quickCompareParams())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(report.Backends), len(core.Backends()); got != want {
		t.Fatalf("report covers %d backends, want %d", got, want)
	}
	for i, b := range report.Backends {
		if b.Backend != core.Backends()[i] {
			t.Errorf("backend %d = %q, want sorted order %q", i, b.Backend, core.Backends()[i])
		}
		if b.Fork.Cycles == 0 {
			t.Errorf("%s: fork leg retired no cycles", b.Backend)
		}
		if b.SpMV.CSRCycles == 0 {
			t.Errorf("%s: spmv CSR leg retired no cycles", b.Backend)
		}
		if b.MetadataBytes <= 0 {
			t.Errorf("%s: metadata_bytes = %d, want > 0", b.Backend, b.MetadataBytes)
		}
		// Each backend's translation machinery must show activity: VBI
		// has no core-side TLB (virtually-tagged caches), so its MTL
		// stands in for it.
		translated := b.Counters["tlb.l1_hits"]
		if b.Backend == "vbi" {
			translated = b.Counters["vbi.mtl_hits"]
		}
		if len(b.Counters) == 0 || translated == 0 {
			t.Errorf("%s: counters missing translation activity: %v", b.Backend, b.Counters)
		}
		wantMech := "cow"
		if b.Backend == core.DefaultBackend {
			wantMech = "oow"
		}
		if b.Fork.Mechanism != wantMech {
			t.Errorf("%s: mechanism %q, want %q", b.Backend, b.Fork.Mechanism, wantMech)
		}
		// Only the overlay backend can run the overlay representation.
		if has := b.SpMV.OverlayCycles != 0; has != (b.Backend == core.DefaultBackend) {
			t.Errorf("%s: overlay_cycles = %d", b.Backend, b.SpMV.OverlayCycles)
		}
	}
}

// TestCompareParallelDeterminism is the worker-count half of the
// bit-identity property: the same compare spec must export identical
// bytes whether the backends run one at a time or fanned across four
// workers (and whether warm state is shared or rebuilt cold).
func TestCompareParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-backend determinism sweep is slow")
	}
	q := quickCompareParams()
	spec := JobSpec{Experiment: "compare", Bench: q.Bench,
		Warm: q.Warm, Measure: q.Measure, Matrices: q.Matrices}
	var exports [][]byte
	for _, pool := range []Pool{{Parallel: 1}, {Parallel: 4}, {Parallel: 4, Cold: true}} {
		out, err := spec.Run(context.Background(), pool)
		if err != nil {
			t.Fatalf("parallel=%d cold=%v: %v", pool.Parallel, pool.Cold, err)
		}
		exports = append(exports, comparableExport(t, out))
	}
	for i, b := range exports[1:] {
		if !bytes.Equal(exports[0], b) {
			t.Errorf("export %d diverges from the parallel=1 run\nfirst:\n%s\nother:\n%s",
				i+1, exports[0], b)
		}
	}
}

// TestCompareExportMatchesSchema validates a compare export against the
// checked-in JSON schema (docs/schema/compare.schema.json). By default
// it validates an in-process run, which pins the schema to the code; CI
// sets COMPARE_JSON to re-validate each backend's emitted report file.
func TestCompareExportMatchesSchema(t *testing.T) {
	schema := loadSchema(t, "../../docs/schema/compare.schema.json")
	var doc any
	if path := os.Getenv("COMPARE_JSON"); path != "" {
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(b, &doc); err != nil {
			t.Fatalf("decode %s: %v", path, err)
		}
	} else {
		params := quickCompareParams()
		report, err := RunComparePool(context.Background(), Pool{Parallel: 2}, params)
		if err != nil {
			t.Fatal(err)
		}
		ex := CompareExport(params, report)
		b, err := json.Marshal(ex)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(b, &doc); err != nil {
			t.Fatal(err)
		}
	}
	if errs := validateSchema(schema, doc, "$"); len(errs) > 0 {
		for _, e := range errs {
			t.Error(e)
		}
	}
}

func loadSchema(t *testing.T, path string) map[string]any {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var schema map[string]any
	if err := json.Unmarshal(b, &schema); err != nil {
		t.Fatalf("decode schema: %v", err)
	}
	return schema
}

// validateSchema checks doc against the subset of JSON Schema the
// checked-in schemas use: type, enum, properties, required,
// additionalProperties (false or a schema), items, minItems, minimum.
// It returns every violation with a JSONPath-style location. A tiny
// in-tree validator keeps the schema load-bearing without pulling in a
// dependency.
func validateSchema(schema map[string]any, doc any, at string) []string {
	var errs []string
	fail := func(format string, args ...any) {
		errs = append(errs, at+": "+fmt.Sprintf(format, args...))
	}

	if enum, ok := schema["enum"].([]any); ok {
		match := false
		for _, v := range enum {
			if v == doc {
				match = true
				break
			}
		}
		if !match {
			fail("value %v not in enum %v", doc, enum)
		}
		return errs
	}

	switch schema["type"] {
	case "object":
		obj, ok := doc.(map[string]any)
		if !ok {
			return append(errs, fmt.Sprintf("%s: want object, got %T", at, doc))
		}
		if req, ok := schema["required"].([]any); ok {
			for _, k := range req {
				if _, present := obj[k.(string)]; !present {
					fail("missing required property %q", k)
				}
			}
		}
		props, _ := schema["properties"].(map[string]any)
		for k, v := range obj {
			sub, known := props[k]
			if known {
				errs = append(errs, validateSchema(sub.(map[string]any), v, at+"."+k)...)
				continue
			}
			switch ap := schema["additionalProperties"].(type) {
			case bool:
				if !ap {
					fail("unexpected property %q", k)
				}
			case map[string]any:
				errs = append(errs, validateSchema(ap, v, at+"."+k)...)
			}
		}
	case "array":
		arr, ok := doc.([]any)
		if !ok {
			return append(errs, fmt.Sprintf("%s: want array, got %T", at, doc))
		}
		if min, ok := schema["minItems"].(float64); ok && float64(len(arr)) < min {
			fail("array has %d items, want >= %.0f", len(arr), min)
		}
		if items, ok := schema["items"].(map[string]any); ok {
			for i, v := range arr {
				errs = append(errs, validateSchema(items, v, fmt.Sprintf("%s[%d]", at, i))...)
			}
		}
	case "integer", "number":
		n, ok := doc.(float64)
		if !ok {
			return append(errs, fmt.Sprintf("%s: want %s, got %T", at, schema["type"], doc))
		}
		if schema["type"] == "integer" && n != math.Trunc(n) {
			fail("want integer, got %v", n)
		}
		if min, ok := schema["minimum"].(float64); ok && n < min {
			fail("%v below minimum %v", n, min)
		}
	case "string":
		if _, ok := doc.(string); !ok {
			fail("want string, got %T", doc)
		}
	case "boolean":
		if _, ok := doc.(bool); !ok {
			fail("want boolean, got %T", doc)
		}
	case nil:
		// No type constraint: nothing to check.
	default:
		fail("schema uses unsupported type %v", schema["type"])
	}
	return errs
}
