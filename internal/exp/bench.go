package exp

// This file implements `overlaysim bench`: a fixed job matrix over all
// five experiments that doubles as (a) the parallel-harness
// verification — every experiment runs once sequentially and once at
// the requested worker count, and the simulated metrics must match
// bit for bit — and (b) the CI regression gate: the report is written
// as a schema-versioned export, checked in as BENCH_harness.json, and
// CheckBench fails the build when simulated cycles drift (the
// simulator is deterministic, so the comparison is exact) or the
// short-mode wall clock regresses beyond the tolerance.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
)

// BenchPlan fixes the job matrix one bench run executes. The zero
// value of any field falls back to the corresponding ShortBenchPlan
// setting, so CLI overrides can shrink individual experiments without
// respecifying the whole plan.
type BenchPlan struct {
	ForkNames        []string   `json:"fork_names"`
	ForkParams       ForkParams `json:"fork_params"`
	SpMVMatrices     int        `json:"spmv_matrices"`
	LineSizeMatrices int        `json:"linesize_matrices"`
	SweepPoints      int        `json:"sweep_points"`
	SweepRows        int        `json:"sweep_rows"`
}

// ShortBenchPlan is the quick matrix CI runs on every push: one fork
// benchmark per workload type, a small SpMV subsample, and the
// sparsity sweep at reduced dimension.
func ShortBenchPlan() BenchPlan {
	return BenchPlan{
		ForkNames:        []string{"hmmer", "lbm", "mcf"},
		ForkParams:       QuickForkParams(),
		SpMVMatrices:     6,
		LineSizeMatrices: 10,
		SweepPoints:      8,
		SweepRows:        128,
	}
}

// DefaultBenchPlan is the fuller matrix for local runs: six fork
// benchmarks (two per type) at a longer window, more matrices, and
// the paper-sized sparsity sweep (11 points, 256×256).
func DefaultBenchPlan() BenchPlan {
	return BenchPlan{
		ForkNames:        []string{"hmmer", "tonto", "lbm", "soplex", "mcf", "astar"},
		ForkParams:       ForkParams{WarmInstructions: 120_000, MeasureInstructions: 300_000},
		SpMVMatrices:     12,
		LineSizeMatrices: 20,
		SweepPoints:      11,
		SweepRows:        256,
	}
}

// normalize fills zero fields from the short plan.
func (p BenchPlan) normalize() BenchPlan {
	short := ShortBenchPlan()
	if len(p.ForkNames) == 0 {
		p.ForkNames = short.ForkNames
	}
	if p.ForkParams.WarmInstructions == 0 {
		p.ForkParams.WarmInstructions = short.ForkParams.WarmInstructions
	}
	if p.ForkParams.MeasureInstructions == 0 {
		p.ForkParams.MeasureInstructions = short.ForkParams.MeasureInstructions
	}
	if p.SpMVMatrices == 0 {
		p.SpMVMatrices = short.SpMVMatrices
	}
	if p.LineSizeMatrices == 0 {
		p.LineSizeMatrices = short.LineSizeMatrices
	}
	if p.SweepPoints == 0 {
		p.SweepPoints = short.SweepPoints
	}
	if p.SweepRows == 0 {
		p.SweepRows = short.SweepRows
	}
	return p
}

// BenchExperiment is one experiment's row in the bench report.
type BenchExperiment struct {
	Name      string            `json:"name"`
	Jobs      int               `json:"jobs"`
	SeqWallMS float64           `json:"seq_wall_ms"` // harness at Parallel 1
	ParWallMS float64           `json:"par_wall_ms"` // harness at report Parallel
	Speedup   float64           `json:"speedup"`     // SeqWallMS / ParWallMS
	Metrics   map[string]uint64 `json:"metrics"`     // simulated, machine-independent

	// Snapshot records the experiment's warm-state reuse (from the
	// parallel phase; the sequential phase reuses identically). Absent
	// for experiments with no snapshot path. Like the wall-clock
	// fields, the warmup_ms_saved component is host-dependent.
	Snapshot *SnapshotProvenance `json:"snapshot,omitempty"`
}

// BenchReport is the machine-readable bench baseline. Metrics are
// purely simulated quantities (cycles, bytes, counter deltas) and so
// compare exactly across machines; the wall-clock fields are
// host-dependent and only compared against baselines recorded on
// comparable hardware.
type BenchReport struct {
	Parallel    int                `json:"parallel"`
	SeqWallMS   float64            `json:"seq_wall_ms"`
	ParWallMS   float64            `json:"par_wall_ms"`
	Speedup     float64            `json:"speedup"`
	Snapshot    SnapshotProvenance `json:"snapshot"` // summed across experiments
	Experiments []BenchExperiment  `json:"experiments"`
}

// benchCase is one experiment of the matrix: run executes it over the
// given pool and reduces the outcome to the deterministic metric map.
type benchCase struct {
	name string
	jobs int
	run  func(ctx context.Context, pool Pool) (map[string]uint64, error)
}

func (p BenchPlan) cases() []benchCase {
	return []benchCase{
		{
			name: "fork",
			jobs: len(p.ForkNames),
			run: func(ctx context.Context, pool Pool) (map[string]uint64, error) {
				results, err := RunForkSuitePool(ctx, pool, p.ForkParams, p.ForkNames)
				if err != nil {
					return nil, err
				}
				m := make(map[string]uint64, 4*len(results))
				for _, r := range results {
					m[r.Benchmark+".cow.cycles"] = r.CoW.Cycles
					m[r.Benchmark+".oow.cycles"] = r.OoW.Cycles
					m[r.Benchmark+".cow.added_bytes"] = uint64(r.CoW.AddedBytes)
					m[r.Benchmark+".oow.added_bytes"] = uint64(r.OoW.AddedBytes)
				}
				return m, nil
			},
		},
		{
			name: "spmv",
			jobs: p.SpMVMatrices,
			run: func(ctx context.Context, pool Pool) (map[string]uint64, error) {
				results, err := RunFigure10Pool(ctx, pool, p.SpMVMatrices, false)
				if err != nil {
					return nil, err
				}
				m := make(map[string]uint64, 2*len(results))
				for _, r := range results {
					m[r.Matrix+".overlay.cycles"] = r.OverlayCycles
					m[r.Matrix+".csr.cycles"] = r.CSRCycles
				}
				return m, nil
			},
		},
		{
			name: "linesize",
			jobs: p.LineSizeMatrices,
			run: func(ctx context.Context, pool Pool) (map[string]uint64, error) {
				results, err := RunFigure11Pool(ctx, pool, p.LineSizeMatrices)
				if err != nil {
					return nil, err
				}
				// Analytic overheads are float ratios; scale to milli-units
				// so the export stays integral. Same inputs → same floats →
				// same rounding, so the comparison is still exact.
				m := make(map[string]uint64, (len(LineSizes)+1)*len(results))
				for _, r := range results {
					for _, sz := range LineSizes {
						m[fmt.Sprintf("%s.overhead_milli.%d", r.Matrix, sz)] = uint64(r.Overheads[sz]*1000 + 0.5)
					}
					m[r.Matrix+".csr_milli"] = uint64(r.CSR*1000 + 0.5)
				}
				return m, nil
			},
		},
		{
			name: "sweep",
			jobs: p.SweepPoints,
			run: func(ctx context.Context, pool Pool) (map[string]uint64, error) {
				results, err := RunSparsitySweepPool(ctx, pool, p.SweepPoints, p.SweepRows)
				if err != nil {
					return nil, err
				}
				m := make(map[string]uint64, 2*len(results))
				for i, r := range results {
					m[fmt.Sprintf("point%02d.overlay.cycles", i)] = r.OverlayCycles
					m[fmt.Sprintf("point%02d.dense.cycles", i)] = r.DenseCycles
				}
				return m, nil
			},
		},
		{
			name: "compare",
			jobs: len(core.Backends()),
			run: func(ctx context.Context, pool Pool) (map[string]uint64, error) {
				params := CompareParams{
					Bench:    p.ForkNames[0],
					Warm:     p.ForkParams.WarmInstructions,
					Measure:  p.ForkParams.MeasureInstructions,
					Matrices: 2,
				}
				report, err := RunComparePool(ctx, pool, params)
				if err != nil {
					return nil, err
				}
				m := make(map[string]uint64, 5*len(report.Backends))
				for _, b := range report.Backends {
					m[b.Backend+".fork.cycles"] = b.Fork.Cycles
					m[b.Backend+".fork.added_bytes"] = uint64(b.Fork.AddedBytes)
					m[b.Backend+".spmv.csr_cycles"] = b.SpMV.CSRCycles
					m[b.Backend+".metadata_bytes"] = uint64(b.MetadataBytes)
					if b.SpMV.OverlayCycles != 0 {
						m[b.Backend+".spmv.overlay_cycles"] = b.SpMV.OverlayCycles
					}
				}
				return m, nil
			},
		},
		{
			name: "omsstress",
			jobs: 4,
			run: func(ctx context.Context, pool Pool) (map[string]uint64, error) {
				// Fixed short-plan sizing: 96 segments per tenant against a
				// 16-frame budget keeps the cooling queue and spill tier under
				// steady pressure without dominating the matrix's wall clock.
				params := OMSStressParams{Tenants: 4, Ops: 8000, Segments: 96, Capacity: 16, Spill: true}
				results, _, err := RunOMSStressPool(ctx, pool, params)
				if err != nil {
					return nil, err
				}
				m := make(map[string]uint64, 6*len(results))
				for _, r := range results {
					key := fmt.Sprintf("tenant%d", r.Tenant)
					m[key+".evictions"] = r.Evictions
					m[key+".spills"] = r.Spills
					m[key+".refills"] = r.Refills
					m[key+".spill_penalty_cycles"] = r.PenaltyCycles
					m[key+".resident_bytes"] = uint64(r.ResidentBytes)
					m[key+".spilled_bytes"] = uint64(r.SpilledBytes)
				}
				return m, nil
			},
		},
		{
			name: "dualcore",
			jobs: 2,
			run: func(ctx context.Context, pool Pool) (map[string]uint64, error) {
				results, err := RunDualCorePool(ctx, pool)
				if err != nil {
					return nil, err
				}
				m := make(map[string]uint64, 4*len(results))
				for _, r := range results {
					m[r.Mechanism+".writer.cycles"] = uint64(r.WriterCycles)
					m[r.Mechanism+".reader.cycles"] = uint64(r.ReaderCycles)
					m[r.Mechanism+".shootdowns"] = r.Shootdowns
					m[r.Mechanism+".line_updates"] = r.LineUpdates
				}
				return m, nil
			},
		},
	}
}

// RunBench executes the plan twice per experiment — once at Parallel 1
// and once at the requested worker count — verifies the simulated
// metrics are bit-identical between the two, and reports per-
// experiment and total wall clock plus the parallel speedup.
func RunBench(ctx context.Context, plan BenchPlan, parallel int, progress io.Writer) (*BenchReport, error) {
	plan = plan.normalize()
	report := &BenchReport{Parallel: parallel}
	for _, c := range plan.cases() {
		seqStart := time.Now()
		seq, err := c.run(ctx, Pool{Parallel: 1, Progress: progress})
		if err != nil {
			return nil, fmt.Errorf("bench %s (sequential): %w", c.name, err)
		}
		seqWall := time.Since(seqStart)

		parSnap := &SnapshotStats{}
		parStart := time.Now()
		par, err := c.run(ctx, Pool{Parallel: parallel, Progress: progress, Snap: parSnap})
		if err != nil {
			return nil, fmt.Errorf("bench %s (parallel %d): %w", c.name, parallel, err)
		}
		parWall := time.Since(parStart)

		if diffs := diffMetrics(seq, par); len(diffs) > 0 {
			return nil, fmt.Errorf("bench %s: parallel %d diverges from the sequential path (simulator nondeterminism): %s",
				c.name, parallel, diffs[0])
		}
		e := BenchExperiment{
			Name:      c.name,
			Jobs:      c.jobs,
			SeqWallMS: float64(seqWall.Microseconds()) / 1000,
			ParWallMS: float64(parWall.Microseconds()) / 1000,
			Metrics:   seq,
		}
		if e.ParWallMS > 0 {
			e.Speedup = e.SeqWallMS / e.ParWallMS
		}
		if prov := parSnap.Provenance(); !prov.Empty() {
			e.Snapshot = &prov
			report.Snapshot.accumulate(prov)
		}
		report.Experiments = append(report.Experiments, e)
		report.SeqWallMS += e.SeqWallMS
		report.ParWallMS += e.ParWallMS
	}
	if report.ParWallMS > 0 {
		report.Speedup = report.SeqWallMS / report.ParWallMS
	}
	return report, nil
}

// LoadBenchBaseline parses a recorded bench export (the Results field
// of the schema-versioned JSON `overlaysim bench -json` writes).
func LoadBenchBaseline(r io.Reader) (*BenchReport, error) {
	var doc struct {
		SchemaVersion int         `json:"schema_version"`
		Command       string      `json:"command"`
		Results       BenchReport `json:"results"`
	}
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("bench baseline: %w", err)
	}
	if doc.SchemaVersion != sim.SchemaVersion {
		return nil, fmt.Errorf("bench baseline: schema version %d, want %d", doc.SchemaVersion, sim.SchemaVersion)
	}
	if doc.Command != "bench" {
		return nil, fmt.Errorf("bench baseline: export is for command %q, want \"bench\"", doc.Command)
	}
	if len(doc.Results.Experiments) == 0 {
		return nil, fmt.Errorf("bench baseline: no experiments recorded")
	}
	return &doc.Results, nil
}

// diffMetrics describes every key whose value differs (or exists on
// only one side), in sorted key order.
func diffMetrics(want, got map[string]uint64) []string {
	keys := make(map[string]bool, len(want)+len(got))
	for k := range want {
		keys[k] = true
	}
	for k := range got {
		keys[k] = true
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	var diffs []string
	for _, k := range sorted {
		w, wok := want[k]
		g, gok := got[k]
		switch {
		case !wok:
			diffs = append(diffs, fmt.Sprintf("%s: unexpected metric (got %d)", k, g))
		case !gok:
			diffs = append(diffs, fmt.Sprintf("%s: missing metric (want %d)", k, w))
		case w != g:
			diffs = append(diffs, fmt.Sprintf("%s: want %d, got %d", k, w, g))
		}
	}
	return diffs
}

// CheckBench compares a fresh report against the recorded baseline:
// simulated metrics must match exactly (per experiment, per key), and
// when wallTol > 0 the total parallel wall clock may not exceed the
// baseline by more than that fraction (0.25 = +25 %). Wall clock is
// host-dependent, so pass wallTol 0 when comparing across machines.
func CheckBench(baseline, got *BenchReport, wallTol float64) error {
	if baseline.Parallel != got.Parallel {
		return fmt.Errorf("bench: baseline recorded at -parallel %d, this run used -parallel %d",
			baseline.Parallel, got.Parallel)
	}
	base := make(map[string]BenchExperiment, len(baseline.Experiments))
	for _, e := range baseline.Experiments {
		base[e.Name] = e
	}
	seen := make(map[string]bool, len(got.Experiments))
	for _, e := range got.Experiments {
		seen[e.Name] = true
		b, ok := base[e.Name]
		if !ok {
			return fmt.Errorf("bench: experiment %q not in baseline", e.Name)
		}
		if diffs := diffMetrics(b.Metrics, e.Metrics); len(diffs) > 0 {
			limit := diffs
			if len(limit) > 5 {
				limit = limit[:5]
			}
			return fmt.Errorf("bench: %s simulated metrics drifted from baseline (%d keys):\n  %s",
				e.Name, len(diffs), joinLines(limit))
		}
	}
	for name := range base {
		if !seen[name] {
			return fmt.Errorf("bench: baseline experiment %q missing from this run", name)
		}
	}
	if wallTol > 0 && got.ParWallMS > baseline.ParWallMS*(1+wallTol) {
		return fmt.Errorf("bench: wall clock regressed: %.0f ms vs baseline %.0f ms (tolerance +%.0f%%)",
			got.ParWallMS, baseline.ParWallMS, wallTol*100)
	}
	return nil
}

func joinLines(lines []string) string {
	out := ""
	for i, l := range lines {
		if i > 0 {
			out += "\n  "
		}
		out += l
	}
	return out
}

// PrintBench renders the human-readable bench summary.
func PrintBench(w io.Writer, r *BenchReport) {
	fmt.Fprintf(w, "Bench matrix at -parallel %d (simulated metrics verified bit-identical vs -parallel 1)\n", r.Parallel)
	fmt.Fprintf(w, "%-10s %6s %12s %12s %9s %9s\n", "experiment", "jobs", "seq wall", "par wall", "speedup", "metrics")
	for _, e := range r.Experiments {
		fmt.Fprintf(w, "%-10s %6d %10.0fms %10.0fms %8.2fx %9d\n",
			e.Name, e.Jobs, e.SeqWallMS, e.ParWallMS, e.Speedup, len(e.Metrics))
	}
	fmt.Fprintf(w, "%-10s %6s %10.0fms %10.0fms %8.2fx\n", "total", "-", r.SeqWallMS, r.ParWallMS, r.Speedup)
	if s := r.Snapshot; s.Forks > 0 {
		fmt.Fprintf(w, "warm-state reuse: %d families, %d forks, %d warm-ups skipped, %.1f KB copied, ~%.0f ms warm-up saved\n",
			s.Families, s.Forks, s.WarmupsReused, float64(s.BytesCopied)/1024, s.WarmupMSSaved)
	}
}
