package exp

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/sparse"
)

// SweepResult is one point of the §5.2 in-text experiment: randomly
// generated matrices with varying sparsity, overlay representation versus
// the dense baseline.
type SweepResult struct {
	ZeroLineFrac float64 // fraction of cache lines that are entirely zero
	OverlayCycles,
	DenseCycles uint64
}

// Speedup is dense/overlay cycles (≥ 1 expected at any sparsity).
func (r SweepResult) Speedup() float64 {
	if r.OverlayCycles == 0 {
		return 0
	}
	return float64(r.DenseCycles) / float64(r.OverlayCycles)
}

// RunSparsitySweep measures `points` sparsity levels from dense (0 % zero
// lines) to nearly empty, on rows×rows matrices. It is
// RunSparsitySweepPool at Parallel 1.
func RunSparsitySweep(points, rows int) ([]SweepResult, error) {
	return RunSparsitySweepPool(context.Background(), Pool{Parallel: 1}, points, rows)
}

// sweepMatrix generates point i's matrix from its point-indexed seed.
// Fully dense lines (L = 8) isolate the zero-line-skipping effect; the
// exact generator reaches 0 % zero lines, which the clustered suite
// generator deliberately cannot.
func sweepMatrix(i, points, rows int) *sparse.Matrix {
	totalLines := rows * rows / sparse.ValuesPerLine
	frac := float64(i) / float64(points-1) // fraction of zero lines
	nnzLines := int(float64(totalLines) * (1 - frac))
	if nnzLines < 1 {
		nnzLines = 1
	}
	return sparse.ExactLines(fmt.Sprintf("sweep%02d", i), rows, rows, nnzLines, int64(900+i))
}

// runSweepOverlay maps the matrix as an overlay on f, cross-checks the
// product against the dense multiply, and simulates one SpMV iteration.
func runSweepOverlay(f *core.Framework, m *sparse.Matrix) (uint64, error) {
	x := make([]float64, m.Cols)
	for i := range x {
		x[i] = 1.0 + float64(i%7)
	}
	want := m.MultiplyDense(x)
	proc := f.VM.NewProcess()
	o, layout, err := sparse.MapOverlay(f, proc, m)
	if err != nil {
		return 0, err
	}
	got, err := o.Multiply(x)
	if err != nil {
		return 0, err
	}
	if !vectorsEqual(want, got) {
		return 0, fmt.Errorf("exp: overlay SpMV result diverges for %s", m.Name)
	}
	trace, err := sparse.OverlayTrace(o, layout)
	if err != nil {
		return 0, err
	}
	return simulateTrace(f, proc, trace)
}

// runSweepDense maps the matrix densely on f and simulates one SpMV
// iteration. The dense trace's address stream depends only on the
// matrix dimensions, never on its values, so every point of a sweep
// has the same dense cycle count.
func runSweepDense(f *core.Framework, m *sparse.Matrix) (uint64, error) {
	proc := f.VM.NewProcess()
	layout, err := sparse.MapDense(f, proc, m)
	if err != nil {
		return 0, err
	}
	return simulateTrace(f, proc, sparse.DenseTrace(m, layout))
}

// sweepFamily is one sweep's shared warm state: the pristine framework
// capture every point forks, plus the dense baseline measured once
// (identical for every point, see runSweepDense).
type sweepFamily struct {
	pristineFamily
	denseCycles uint64
}

// sweepFamilyKey canonicalises the knob that shapes a sweep family's
// state (the matrix dimension fixes both the framework config and the
// dense baseline).
func sweepFamilyKey(rows int) string {
	return fmt.Sprintf("sweep/rows=%d", rows)
}

// warmSweepFamily captures a pristine framework for the sweep's
// configuration and measures the dense baseline once, on a fork of
// that capture — exactly what the cold path measures per point.
func warmSweepFamily(ctx context.Context, pool Pool, points, rows int) (*sweepFamily, error) {
	key := sweepFamilyKey(rows)
	start := time.Now()
	f, err := core.New(spmvConfig(rows * rows * 8))
	if err != nil {
		return nil, err
	}
	sp := snapSpan(ctx, "fork.snapshot", key)
	fam := &sweepFamily{pristineFamily: pristineFamily{snap: f.Snapshot()}}
	sp.End()

	df, done := fam.fork(ctx, pool, key)
	fam.denseCycles, err = runSweepDense(df, sweepMatrix(0, points, rows))
	if err != nil {
		return nil, err
	}
	done(df)
	fam.warmUS = uint64(time.Since(start).Microseconds())
	return fam, nil
}

// RunSparsitySweepPool measures the sparsity sweep with one job per
// point fanned across the pool. Each job generates its own matrix from
// a point-indexed seed, so the sweep is deterministic at any worker
// count.
//
// By default the sweep builds one family: a pristine framework capture
// every point forks for its overlay run, plus the dense baseline
// simulated once (every point's dense trace touches the same address
// stream). Results are bit-identical to pool.Cold, which builds fresh
// frameworks and re-measures the dense baseline at every point.
func RunSparsitySweepPool(ctx context.Context, pool Pool, points, rows int) ([]SweepResult, error) {
	if points < 2 {
		return nil, fmt.Errorf("exp: need at least 2 sweep points")
	}
	totalLines := rows * rows / sparse.ValuesPerLine
	indices := make([]int, points)
	for i := range indices {
		indices[i] = i
	}

	if pool.Cold {
		return harness.Map(ctx, pool.opts("sweep"), indices,
			func(_ context.Context, i, _ int) (SweepResult, error) {
				m := sweepMatrix(i, points, rows)
				fo, err := core.New(spmvConfig(m.DenseBytes()))
				if err != nil {
					return SweepResult{}, err
				}
				overlay, err := runSweepOverlay(fo, m)
				if err != nil {
					return SweepResult{}, err
				}
				fd, err := core.New(spmvConfig(m.DenseBytes()))
				if err != nil {
					return SweepResult{}, err
				}
				dense, err := runSweepDense(fd, m)
				if err != nil {
					return SweepResult{}, err
				}
				return SweepResult{
					ZeroLineFrac:  1 - float64(m.NNZBlocks(64))/float64(totalLines),
					OverlayCycles: overlay,
					DenseCycles:   dense,
				}, nil
			})
	}

	v, err := pool.Snapshots.getOrBuild(sweepFamilyKey(rows), func() (any, error) {
		pool.Snap.addFamily()
		return warmSweepFamily(ctx, pool, points, rows)
	})
	if err != nil {
		return nil, err
	}
	fam := v.(*sweepFamily)
	return harness.Map(ctx, pool.opts("sweep"), indices,
		func(jobCtx context.Context, i, _ int) (SweepResult, error) {
			m := sweepMatrix(i, points, rows)
			f, done := fam.fork(jobCtx, pool, sweepFamilyKey(rows))
			overlay, err := runSweepOverlay(f, m)
			if err != nil {
				return SweepResult{}, err
			}
			done(f)
			return SweepResult{
				ZeroLineFrac:  1 - float64(m.NNZBlocks(64))/float64(totalLines),
				OverlayCycles: overlay,
				DenseCycles:   fam.denseCycles,
			}, nil
		})
}

// PrintSweep renders the sparsity sweep (§5.2 in-text claim: overlays
// outperform the dense representation at all sparsity levels, with the
// gap growing linearly in the zero-line fraction).
func PrintSweep(w io.Writer, results []SweepResult) {
	fmt.Fprintln(w, "Sparsity sweep: overlay vs dense representation (one SpMV iteration)")
	fmt.Fprintf(w, "%12s %15s %15s %10s\n", "zero lines", "overlay cycles", "dense cycles", "speedup")
	for _, r := range results {
		fmt.Fprintf(w, "%11.0f%% %15d %15d %9.2fx\n",
			100*r.ZeroLineFrac, r.OverlayCycles, r.DenseCycles, r.Speedup())
	}
	fmt.Fprintln(w, "(paper: overlay outperforms dense at all sparsity levels; gap grows with zero-line fraction)")
}
