package exp

import (
	"context"
	"fmt"
	"io"

	"repro/internal/harness"
	"repro/internal/sparse"
)

// SweepResult is one point of the §5.2 in-text experiment: randomly
// generated matrices with varying sparsity, overlay representation versus
// the dense baseline.
type SweepResult struct {
	ZeroLineFrac float64 // fraction of cache lines that are entirely zero
	OverlayCycles,
	DenseCycles uint64
}

// Speedup is dense/overlay cycles (≥ 1 expected at any sparsity).
func (r SweepResult) Speedup() float64 {
	if r.OverlayCycles == 0 {
		return 0
	}
	return float64(r.DenseCycles) / float64(r.OverlayCycles)
}

// RunSparsitySweep measures `points` sparsity levels from dense (0 % zero
// lines) to nearly empty, on rows×rows matrices. It is
// RunSparsitySweepPool at Parallel 1.
func RunSparsitySweep(points, rows int) ([]SweepResult, error) {
	return RunSparsitySweepPool(context.Background(), Pool{Parallel: 1}, points, rows)
}

// RunSparsitySweepPool measures the sparsity sweep with one job per
// point fanned across the pool. Each job generates its own matrix from
// a point-indexed seed, so the sweep is deterministic at any worker
// count.
func RunSparsitySweepPool(ctx context.Context, pool Pool, points, rows int) ([]SweepResult, error) {
	if points < 2 {
		return nil, fmt.Errorf("exp: need at least 2 sweep points")
	}
	totalLines := rows * rows / sparse.ValuesPerLine
	indices := make([]int, points)
	for i := range indices {
		indices[i] = i
	}
	return harness.Map(ctx, pool.opts("sweep"), indices,
		func(_ context.Context, i, _ int) (SweepResult, error) {
			frac := float64(i) / float64(points-1) // fraction of zero lines
			nnzLines := int(float64(totalLines) * (1 - frac))
			if nnzLines < 1 {
				nnzLines = 1
			}
			// Fully dense lines (L = 8) isolate the zero-line-skipping effect;
			// the exact generator reaches 0 % zero lines, which the clustered
			// suite generator deliberately cannot.
			m := sparse.ExactLines(fmt.Sprintf("sweep%02d", i), rows, rows, nnzLines, int64(900+i))
			r, err := RunSpMV(m, true)
			if err != nil {
				return SweepResult{}, err
			}
			return SweepResult{
				ZeroLineFrac:  1 - float64(m.NNZBlocks(64))/float64(totalLines),
				OverlayCycles: r.OverlayCycles,
				DenseCycles:   r.DenseCycles,
			}, nil
		})
}

// PrintSweep renders the sparsity sweep (§5.2 in-text claim: overlays
// outperform the dense representation at all sparsity levels, with the
// gap growing linearly in the zero-line fraction).
func PrintSweep(w io.Writer, results []SweepResult) {
	fmt.Fprintln(w, "Sparsity sweep: overlay vs dense representation (one SpMV iteration)")
	fmt.Fprintf(w, "%12s %15s %15s %10s\n", "zero lines", "overlay cycles", "dense cycles", "speedup")
	for _, r := range results {
		fmt.Fprintf(w, "%11.0f%% %15d %15d %9.2fx\n",
			100*r.ZeroLineFrac, r.OverlayCycles, r.DenseCycles, r.Speedup())
	}
	fmt.Fprintln(w, "(paper: overlay outperforms dense at all sparsity levels; gap grows with zero-line fraction)")
}
