package exp

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/sim"
)

// tinyBenchPlan keeps the full five-experiment matrix but shrinks every
// knob so the test runs in seconds.
func tinyBenchPlan() BenchPlan {
	return BenchPlan{
		ForkNames:        []string{"hmmer"},
		ForkParams:       ForkParams{WarmInstructions: 20_000, MeasureInstructions: 40_000},
		SpMVMatrices:     2,
		LineSizeMatrices: 3,
		SweepPoints:      2,
		SweepRows:        64,
	}
}

// TestRunBenchShape runs the tiny matrix end to end: all seven
// experiments present, deterministic metrics recorded, wall clocks and
// speedups populated.
func TestRunBenchShape(t *testing.T) {
	report, err := RunBench(context.Background(), tinyBenchPlan(), 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"fork", "spmv", "linesize", "sweep", "compare", "omsstress", "dualcore"}
	if len(report.Experiments) != len(want) {
		t.Fatalf("got %d experiments, want %d", len(report.Experiments), len(want))
	}
	for i, e := range report.Experiments {
		if e.Name != want[i] {
			t.Errorf("experiment %d = %q, want %q", i, e.Name, want[i])
		}
		if len(e.Metrics) == 0 {
			t.Errorf("%s: no metrics recorded", e.Name)
		}
		if e.SeqWallMS <= 0 || e.ParWallMS <= 0 || e.Speedup <= 0 {
			t.Errorf("%s: wall/speedup not populated: %+v", e.Name, e)
		}
	}
	if report.Parallel != 2 || report.SeqWallMS <= 0 || report.Speedup <= 0 {
		t.Errorf("report totals not populated: %+v", report)
	}
	// Spot-check a simulated metric that must exist.
	if report.Experiments[0].Metrics["hmmer.cow.cycles"] == 0 {
		t.Error("fork metrics missing hmmer.cow.cycles")
	}

	// A second run reproduces the simulated metrics exactly.
	again, err := RunBench(context.Background(), tinyBenchPlan(), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range report.Experiments {
		if diffs := diffMetrics(report.Experiments[i].Metrics, again.Experiments[i].Metrics); len(diffs) > 0 {
			t.Errorf("%s metrics not reproducible: %v", report.Experiments[i].Name, diffs)
		}
	}
}

// TestCheckBench exercises the regression gate: exact-match metrics,
// wall-clock tolerance, and structural mismatches.
func TestCheckBench(t *testing.T) {
	base := &BenchReport{
		Parallel:  4,
		ParWallMS: 1000,
		Experiments: []BenchExperiment{
			{Name: "fork", Metrics: map[string]uint64{"a.cycles": 100, "b.cycles": 200}},
			{Name: "sweep", Metrics: map[string]uint64{"p0": 7}},
		},
	}
	clone := func(mutate func(*BenchReport)) *BenchReport {
		r := &BenchReport{Parallel: base.Parallel, ParWallMS: base.ParWallMS}
		for _, e := range base.Experiments {
			m := make(map[string]uint64, len(e.Metrics))
			for k, v := range e.Metrics {
				m[k] = v
			}
			e.Metrics = m
			r.Experiments = append(r.Experiments, e)
		}
		mutate(r)
		return r
	}

	if err := CheckBench(base, clone(func(*BenchReport) {}), 0.25); err != nil {
		t.Fatalf("identical report failed the gate: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*BenchReport)
		want   string
	}{
		{"cycle drift", func(r *BenchReport) { r.Experiments[0].Metrics["a.cycles"] = 101 }, "drifted"},
		{"missing metric", func(r *BenchReport) { delete(r.Experiments[0].Metrics, "b.cycles") }, "drifted"},
		{"extra metric", func(r *BenchReport) { r.Experiments[0].Metrics["new"] = 1 }, "drifted"},
		{"missing experiment", func(r *BenchReport) { r.Experiments = r.Experiments[:1] }, "missing from this run"},
		{"extra experiment", func(r *BenchReport) {
			r.Experiments = append(r.Experiments, BenchExperiment{Name: "mystery"})
		}, "not in baseline"},
		{"wall regression", func(r *BenchReport) { r.ParWallMS = 1300 }, "wall clock regressed"},
		{"parallel mismatch", func(r *BenchReport) { r.Parallel = 1 }, "-parallel"},
	}
	for _, c := range cases {
		err := CheckBench(base, clone(c.mutate), 0.25)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.want)
		}
	}
	// Tolerance 0 disables the wall-clock gate entirely.
	if err := CheckBench(base, clone(func(r *BenchReport) { r.ParWallMS = 99999 }), 0); err != nil {
		t.Errorf("wallTol 0 still gated wall clock: %v", err)
	}
}

// TestLoadBenchBaseline round-trips a report through the export format
// and rejects malformed documents.
func TestLoadBenchBaseline(t *testing.T) {
	report := &BenchReport{
		Parallel:    4,
		ParWallMS:   12,
		Experiments: []BenchExperiment{{Name: "fork", Metrics: map[string]uint64{"x": 1}}},
	}
	ex := sim.NewExport("bench")
	ex.Meta = sim.NewRunMeta(4)
	ex.Results = report
	var buf bytes.Buffer
	if err := ex.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBenchBaseline(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Parallel != 4 || len(got.Experiments) != 1 || got.Experiments[0].Metrics["x"] != 1 {
		t.Fatalf("round trip lost data: %+v", got)
	}

	for name, doc := range map[string]string{
		"not json":       "nope",
		"wrong command":  `{"schema_version":1,"command":"fork","results":{"experiments":[{"name":"x"}]}}`,
		"wrong schema":   `{"schema_version":99,"command":"bench","results":{"experiments":[{"name":"x"}]}}`,
		"no experiments": `{"schema_version":1,"command":"bench","results":{}}`,
	} {
		if _, err := LoadBenchBaseline(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: baseline accepted", name)
		}
	}
}

// TestBenchPlanNormalize fills zero fields from the short plan.
func TestBenchPlanNormalize(t *testing.T) {
	p := BenchPlan{SweepPoints: 3}.normalize()
	short := ShortBenchPlan()
	if p.SweepPoints != 3 {
		t.Errorf("explicit field overwritten: %+v", p)
	}
	if len(p.ForkNames) == 0 || p.SpMVMatrices != short.SpMVMatrices || p.SweepRows != short.SweepRows {
		t.Errorf("zero fields not defaulted: %+v", p)
	}
}
