package exp

import (
	"context"
	"testing"
)

// tinyStressParams keeps the working set well above the frame budget so
// every run exercises eviction, spill and refill, while staying fast.
func tinyStressParams() OMSStressParams {
	return OMSStressParams{Tenants: 2, Ops: 3000, Segments: 48, Capacity: 8, Spill: true}
}

func runStress(t *testing.T, p OMSStressParams, parallel int) []OMSStressResult {
	t.Helper()
	results, stats, err := RunOMSStressPool(context.Background(), Pool{Parallel: parallel}, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != p.Tenants {
		t.Fatalf("got %d results, want %d", len(results), p.Tenants)
	}
	if stats == nil {
		t.Fatal("no merged stats registry")
	}
	return results
}

// TestOMSStressSpillsUnderPressure asserts the acceptance-criteria
// scenario: a capacity below the working set completes correctly with
// nonzero eviction/spill/refill traffic, verified reads, and the merged
// registry carrying the counters the serving layer exports.
func TestOMSStressSpillsUnderPressure(t *testing.T) {
	p := tinyStressParams()
	results, stats, err := RunOMSStressPool(context.Background(), Pool{Parallel: 2}, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Evictions == 0 || r.Spills == 0 || r.Refills == 0 {
			t.Errorf("tenant %d: no spill traffic: %+v", r.Tenant, r)
		}
		if r.LineChecks == 0 {
			t.Errorf("tenant %d: no verified line reads", r.Tenant)
		}
		if r.FramesOwned > p.Capacity {
			t.Errorf("tenant %d: owns %d frames, budget %d", r.Tenant, r.FramesOwned, p.Capacity)
		}
		if r.PenaltyCycles == 0 {
			t.Errorf("tenant %d: refills charged no spill penalty", r.Tenant)
		}
	}
	for _, name := range []string{"oms.evictions", "oms.spills", "oms.refills", "oms.resident_bytes"} {
		if stats.Get(name) == 0 {
			t.Errorf("merged registry missing %s", name)
		}
	}
}

// TestOMSStressDeterministic asserts bit-identical results across runs
// and worker counts — the property that lets omsstress join the bench
// regression matrix.
func TestOMSStressDeterministic(t *testing.T) {
	p := tinyStressParams()
	a := runStress(t, p, 1)
	b := runStress(t, p, 2)
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("tenant %d diverged across worker counts:\n seq %+v\n par %+v", i, a[i], b[i])
		}
	}
}

// TestOMSStressSharedMatchesPrivate asserts the lock-striped shared
// store is an execution hint only: per-tenant op streams are private
// per stripe, so the simulated metrics are bit-identical to private
// stores. This is what justifies stripping Shared from the cache key.
func TestOMSStressSharedMatchesPrivate(t *testing.T) {
	p := tinyStressParams()
	private := runStress(t, p, 2)
	p.Shared = true
	shared := runStress(t, p, 2)
	for i := range private {
		if private[i] != shared[i] {
			t.Errorf("tenant %d diverged between private and shared mode:\n private %+v\n shared  %+v",
				i, private[i], shared[i])
		}
	}
	base := JobSpec{Experiment: "omsstress"}
	hinted := JobSpec{Experiment: "omsstress", Shared: true, Parallel: 4}
	if base.Key() != hinted.Key() {
		t.Error("shared/parallel hints changed the omsstress cache key")
	}
}

// TestOMSStressUnlimitedNeverSpills pins the unlimited-capacity mode:
// no budget means no cooling queue and no spill traffic.
func TestOMSStressUnlimitedNeverSpills(t *testing.T) {
	p := tinyStressParams()
	p.Capacity = 0
	for _, r := range runStress(t, p, 2) {
		if r.Evictions != 0 || r.Spills != 0 || r.Refills != 0 || r.SpilledBytes != 0 {
			t.Errorf("tenant %d: unlimited store produced spill traffic: %+v", r.Tenant, r)
		}
	}
}

// TestOMSStressSpecRun drives the experiment through JobSpec.Run and
// checks it matches the direct runner, including the -1 = unlimited
// capacity encoding.
func TestOMSStressSpecRun(t *testing.T) {
	spec := JobSpec{Experiment: "omsstress", Tenants: 2, Ops: 3000, Segments: 48, OMSCapacity: 8}
	out, err := spec.Run(context.Background(), Pool{Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	direct := runStress(t, tinyStressParams(), 1)
	got, ok := out.Export.Results.([]OMSStressResult)
	if !ok {
		t.Fatalf("export results are %T", out.Export.Results)
	}
	for i := range direct {
		if got[i] != direct[i] {
			t.Errorf("tenant %d: spec run diverged from direct runner:\n spec   %+v\n direct %+v",
				i, got[i], direct[i])
		}
	}
	if out.Stats == nil || out.Stats.Get("oms.spills") == 0 {
		t.Error("spec run output carries no oms.spills in its stats registry")
	}

	unlimited := JobSpec{Experiment: "omsstress", Tenants: 2, Ops: 1000, Segments: 24, OMSCapacity: -1}
	uout, err := unlimited.Run(context.Background(), Pool{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range uout.Export.Results.([]OMSStressResult) {
		if r.Spills != 0 {
			t.Errorf("oms_capacity -1 still spilled: %+v", r)
		}
	}
}
