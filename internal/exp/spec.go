package exp

// This file defines the canonical job spec: the JSON document `overlaysim
// serve` accepts over HTTP, validated against the same flag tables the
// CLI subcommands expose. A spec round-trips to a CLI invocation
// (CLIArgs ↔ SpecFromArgs), normalises to the CLI's defaults, and hashes
// to a cache key that identifies the simulated result — the simulator is
// deterministic and the harness is bit-identical at any worker count, so
// two specs with the same key have the same result by construction.

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Experiments lists the experiment names a JobSpec may carry, in the
// order the CLI documents them.
var Experiments = []string{"fork", "spmv", "linesize", "sweep", "dualcore", "compare", "omsstress"}

// JobSpec is one experiment request in canonical form: the experiment
// name plus exactly the flags the matching CLI subcommand accepts.
// Fields that do not apply to the chosen experiment must be zero — a
// spec carrying them is rejected, the same way the CLI rejects an
// unknown flag.
type JobSpec struct {
	// Experiment selects the runner: fork, spmv, linesize, sweep or
	// dualcore.
	Experiment string `json:"experiment"`

	// Parallel is the harness worker count (0 = GOMAXPROCS). It is an
	// execution hint only: simulated metrics are bit-identical at any
	// worker count, so Parallel is excluded from the cache key.
	Parallel int `json:"parallel,omitempty"`

	// Cold disables warm-state snapshot reuse for this run. Like
	// Parallel it is an execution hint only — results are bit-identical
	// either way — so it too is excluded from the cache key.
	Cold bool `json:"cold,omitempty"`

	// Bench restricts a fork run to one benchmark (empty = all 15), or
	// selects the compare experiment's fork benchmark (empty = mcf).
	Bench string `json:"bench,omitempty"`

	// Backend selects the translation backend. For fork it is the
	// backend simulated (empty = overlay, filled in by Normalized so the
	// backend name joins the cache key); for compare it restricts the
	// run to one backend (empty = all registered).
	Backend string `json:"backend,omitempty"`

	// Warm and Measure size the fork window in instructions
	// (0 = the CLI defaults).
	Warm    uint64 `json:"warm,omitempty"`
	Measure uint64 `json:"measure,omitempty"`

	// Matrices limits the spmv/linesize suite (0 = all 87) or sizes the
	// compare experiment's SpMV subset (0 = 4).
	Matrices int `json:"matrices,omitempty"`

	// Dense also runs the spmv dense baseline.
	Dense bool `json:"dense,omitempty"`

	// Points and Rows size the sparsity sweep (0 = the CLI defaults:
	// 11 points, 256 rows).
	Points int `json:"points,omitempty"`
	Rows   int `json:"rows,omitempty"`

	// Tenants, Ops and Segments size the omsstress churn workload
	// (0 = the CLI defaults: 4 tenants, 24000 ops, 192 segments).
	Tenants  int `json:"tenants,omitempty"`
	Ops      int `json:"ops,omitempty"`
	Segments int `json:"segments,omitempty"`

	// OMSCapacity is each tenant store's frame budget for omsstress:
	// 0 = the CLI default (32), -1 = unlimited (no eviction).
	OMSCapacity int `json:"oms_capacity,omitempty"`

	// NoSpill disables the beyond-DRAM spill tier for omsstress; a
	// capped store then grants overflow frames and counts overruns
	// instead of evicting.
	NoSpill bool `json:"nospill,omitempty"`

	// Shared routes omsstress tenants through one lock-striped shared
	// store. Like Parallel it is an execution hint only — per-tenant op
	// streams are private per stripe, so simulated metrics are
	// bit-identical either way — and is excluded from the cache key.
	Shared bool `json:"shared,omitempty"`
}

// JobOutput is what running a spec produces: the same schema-versioned
// export the CLI's -json flag writes, plus the run's merged stats
// registry when the experiment exposes one (fork does; the analytic and
// figure-only runners do not), so a serving layer can aggregate
// simulator telemetry across jobs.
type JobOutput struct {
	Export *sim.Export
	Stats  *sim.Stats
}

// ValidationError collects every problem found in a job spec so clients
// see all of them at once, not one per round trip.
type ValidationError struct {
	Problems []string
}

func (e *ValidationError) Error() string {
	return "invalid job spec: " + strings.Join(e.Problems, "; ")
}

// ParseJobSpec decodes and validates one JSON job spec. Unknown fields
// are rejected — the spec is a flag table, and the CLI rejects unknown
// flags too.
func ParseJobSpec(r io.Reader) (JobSpec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s JobSpec
	if err := dec.Decode(&s); err != nil {
		return JobSpec{}, &ValidationError{Problems: []string{err.Error()}}
	}
	if err := s.Validate(); err != nil {
		return JobSpec{}, err
	}
	return s, nil
}

// specDefaults returns the CLI defaults for the spec's experiment.
func specDefaults(experiment string) JobSpec {
	d := JobSpec{Experiment: experiment}
	switch experiment {
	case "fork":
		p := DefaultForkParams()
		d.Warm, d.Measure = p.WarmInstructions, p.MeasureInstructions
		d.Backend = core.DefaultBackend
	case "sweep":
		d.Points, d.Rows = 11, 256
	case "compare":
		p := DefaultCompareParams()
		d.Bench = p.Bench
		d.Warm, d.Measure = p.Warm, p.Measure
		d.Matrices = p.Matrices
	case "omsstress":
		p := DefaultOMSStressParams()
		d.Tenants, d.Ops, d.Segments = p.Tenants, p.Ops, p.Segments
		d.OMSCapacity = p.Capacity
	}
	return d
}

// Normalized fills zero fields with the CLI defaults for the spec's
// experiment. It does not validate.
func (s JobSpec) Normalized() JobSpec {
	d := specDefaults(s.Experiment)
	if s.Bench == "" {
		s.Bench = d.Bench
	}
	if s.Backend == "" {
		s.Backend = d.Backend
	}
	if s.Warm == 0 {
		s.Warm = d.Warm
	}
	if s.Measure == 0 {
		s.Measure = d.Measure
	}
	if s.Matrices == 0 {
		s.Matrices = d.Matrices
	}
	if s.Points == 0 {
		s.Points = d.Points
	}
	if s.Rows == 0 {
		s.Rows = d.Rows
	}
	if s.Tenants == 0 {
		s.Tenants = d.Tenants
	}
	if s.Ops == 0 {
		s.Ops = d.Ops
	}
	if s.Segments == 0 {
		s.Segments = d.Segments
	}
	if s.OMSCapacity == 0 {
		s.OMSCapacity = d.OMSCapacity
	}
	return s
}

// Validate checks the spec against its experiment's flag table: the
// experiment must exist, inapplicable fields must be zero, and value
// constraints mirror the CLI's usage errors exactly.
func (s JobSpec) Validate() error {
	var problems []string
	known := false
	for _, e := range Experiments {
		if s.Experiment == e {
			known = true
			break
		}
	}
	if !known {
		problems = append(problems, fmt.Sprintf("unknown experiment %q (want one of %s)",
			s.Experiment, strings.Join(Experiments, ", ")))
		return &ValidationError{Problems: problems}
	}

	reject := func(field string, set bool) {
		if set {
			problems = append(problems,
				fmt.Sprintf("field %q does not apply to experiment %q", field, s.Experiment))
		}
	}
	switch s.Experiment {
	case "fork":
		reject("matrices", s.Matrices != 0)
		reject("dense", s.Dense)
		reject("points", s.Points != 0)
		reject("rows", s.Rows != 0)
		if s.Bench != "" {
			if _, err := workload.ByName(s.Bench); err != nil {
				problems = append(problems, err.Error())
			}
		}
		if err := core.ValidBackend(s.Backend); err != nil {
			problems = append(problems, err.Error())
		}
	case "spmv":
		reject("bench", s.Bench != "")
		reject("backend", s.Backend != "")
		reject("warm", s.Warm != 0)
		reject("measure", s.Measure != 0)
		reject("points", s.Points != 0)
		reject("rows", s.Rows != 0)
	case "linesize":
		reject("bench", s.Bench != "")
		reject("backend", s.Backend != "")
		reject("warm", s.Warm != 0)
		reject("measure", s.Measure != 0)
		reject("dense", s.Dense)
		reject("points", s.Points != 0)
		reject("rows", s.Rows != 0)
	case "sweep":
		reject("bench", s.Bench != "")
		reject("backend", s.Backend != "")
		reject("warm", s.Warm != 0)
		reject("measure", s.Measure != 0)
		reject("matrices", s.Matrices != 0)
		reject("dense", s.Dense)
	case "dualcore":
		reject("bench", s.Bench != "")
		reject("backend", s.Backend != "")
		reject("warm", s.Warm != 0)
		reject("measure", s.Measure != 0)
		reject("matrices", s.Matrices != 0)
		reject("dense", s.Dense)
		reject("points", s.Points != 0)
		reject("rows", s.Rows != 0)
		reject("cold", s.Cold)
	case "compare":
		reject("dense", s.Dense)
		reject("points", s.Points != 0)
		reject("rows", s.Rows != 0)
		if s.Bench != "" {
			if _, err := workload.ByName(s.Bench); err != nil {
				problems = append(problems, err.Error())
			}
		}
		if err := core.ValidBackend(s.Backend); err != nil {
			problems = append(problems, err.Error())
		}
	case "omsstress":
		reject("bench", s.Bench != "")
		reject("backend", s.Backend != "")
		reject("warm", s.Warm != 0)
		reject("measure", s.Measure != 0)
		reject("matrices", s.Matrices != 0)
		reject("dense", s.Dense)
		reject("points", s.Points != 0)
		reject("rows", s.Rows != 0)
		reject("cold", s.Cold)
	}
	if s.Experiment != "omsstress" {
		reject("tenants", s.Tenants != 0)
		reject("ops", s.Ops != 0)
		reject("segments", s.Segments != 0)
		reject("oms_capacity", s.OMSCapacity != 0)
		reject("nospill", s.NoSpill)
		reject("shared", s.Shared)
	}

	if s.Parallel < 0 {
		problems = append(problems, fmt.Sprintf("invalid parallel %d: must be >= 0", s.Parallel))
	}
	if s.Matrices < 0 {
		problems = append(problems, fmt.Sprintf("invalid matrices %d: must be >= 0", s.Matrices))
	}
	n := s.Normalized()
	if s.Experiment == "sweep" {
		if n.Points < 2 {
			problems = append(problems, fmt.Sprintf("invalid points %d: need at least 2 sweep points", n.Points))
		}
		if n.Rows < 8 {
			problems = append(problems, fmt.Sprintf("invalid rows %d: need at least one cache line of values", n.Rows))
		}
	}
	if s.Experiment == "omsstress" {
		if n.Tenants < 1 {
			problems = append(problems, fmt.Sprintf("invalid tenants %d: need at least 1", n.Tenants))
		}
		if n.Ops < 1 {
			problems = append(problems, fmt.Sprintf("invalid ops %d: need at least 1", n.Ops))
		}
		if n.Segments < 1 {
			problems = append(problems, fmt.Sprintf("invalid segments %d: need at least 1", n.Segments))
		}
		if n.OMSCapacity < -1 {
			problems = append(problems, fmt.Sprintf("invalid oms_capacity %d: want a frame count, 0 for the default, or -1 for unlimited", n.OMSCapacity))
		}
	}
	if len(problems) > 0 {
		return &ValidationError{Problems: problems}
	}
	return nil
}

// CanonicalJSON renders the result-identity form of the spec: normalized
// (defaults filled in) with the execution-only Parallel hint stripped,
// marshalled with the fixed field order of the struct. Two specs with
// equal CanonicalJSON simulate the same thing.
func (s JobSpec) CanonicalJSON() []byte {
	c := s.Normalized()
	c.Parallel = 0
	c.Cold = false
	c.Shared = false
	b, err := json.Marshal(c)
	if err != nil {
		// JobSpec is a plain struct of marshalable fields; Marshal
		// cannot fail on it.
		panic(err)
	}
	return b
}

// Key is the result cache key: the hex SHA-256 of CanonicalJSON.
func (s JobSpec) Key() string {
	sum := sha256.Sum256(s.CanonicalJSON())
	return hex.EncodeToString(sum[:])
}

// CLIArgs renders the spec as the equivalent overlaysim invocation —
// subcommand first, then one flag per non-default field. Feeding the
// result back through SpecFromArgs yields the normalized spec; running
// it through the CLI with -json yields a byte-identical export.
func (s JobSpec) CLIArgs() []string {
	args := []string{s.Experiment}
	d := specDefaults(s.Experiment)
	n := s.Normalized()
	switch s.Experiment {
	case "fork":
		if n.Bench != "" {
			args = append(args, "-bench="+n.Bench)
		}
		if n.Backend != d.Backend {
			args = append(args, "-backend="+n.Backend)
		}
		if n.Warm != d.Warm {
			args = append(args, fmt.Sprintf("-warm=%d", n.Warm))
		}
		if n.Measure != d.Measure {
			args = append(args, fmt.Sprintf("-measure=%d", n.Measure))
		}
	case "compare":
		if n.Bench != d.Bench {
			args = append(args, "-bench="+n.Bench)
		}
		if n.Backend != "" {
			args = append(args, "-backend="+n.Backend)
		}
		if n.Warm != d.Warm {
			args = append(args, fmt.Sprintf("-warm=%d", n.Warm))
		}
		if n.Measure != d.Measure {
			args = append(args, fmt.Sprintf("-measure=%d", n.Measure))
		}
		if n.Matrices != d.Matrices {
			args = append(args, fmt.Sprintf("-matrices=%d", n.Matrices))
		}
	case "spmv":
		if n.Matrices != 0 {
			args = append(args, fmt.Sprintf("-matrices=%d", n.Matrices))
		}
		if n.Dense {
			args = append(args, "-dense")
		}
	case "linesize":
		if n.Matrices != 0 {
			args = append(args, fmt.Sprintf("-matrices=%d", n.Matrices))
		}
	case "sweep":
		if n.Points != d.Points {
			args = append(args, fmt.Sprintf("-points=%d", n.Points))
		}
		if n.Rows != d.Rows {
			args = append(args, fmt.Sprintf("-rows=%d", n.Rows))
		}
	case "omsstress":
		if n.Tenants != d.Tenants {
			args = append(args, fmt.Sprintf("-tenants=%d", n.Tenants))
		}
		if n.Ops != d.Ops {
			args = append(args, fmt.Sprintf("-ops=%d", n.Ops))
		}
		if n.Segments != d.Segments {
			args = append(args, fmt.Sprintf("-segments=%d", n.Segments))
		}
		if n.OMSCapacity != d.OMSCapacity {
			args = append(args, fmt.Sprintf("-oms-capacity=%d", n.OMSCapacity))
		}
		if n.NoSpill {
			args = append(args, "-oms-spill=false")
		}
		if n.Shared {
			args = append(args, "-shared")
		}
	}
	if n.Cold && n.Experiment != "dualcore" && n.Experiment != "omsstress" {
		args = append(args, "-cold")
	}
	if n.Parallel != 0 {
		args = append(args, fmt.Sprintf("-parallel=%d", n.Parallel))
	}
	return args
}

// SpecFromArgs parses an overlaysim experiment invocation (subcommand
// followed by its flags) back into a validated JobSpec — the inverse of
// CLIArgs. The flag set registered per experiment is the same table the
// CLI subcommand exposes, so any invocation the CLI accepts for these
// experiments parses here too.
func SpecFromArgs(args []string) (JobSpec, error) {
	if len(args) == 0 {
		return JobSpec{}, &ValidationError{Problems: []string{"empty invocation"}}
	}
	s := JobSpec{Experiment: args[0]}
	fs := flag.NewFlagSet(s.Experiment, flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	omsSpill := true
	switch s.Experiment {
	case "fork":
		fs.StringVar(&s.Bench, "bench", "", "")
		fs.StringVar(&s.Backend, "backend", "", "")
		fs.Uint64Var(&s.Warm, "warm", 0, "")
		fs.Uint64Var(&s.Measure, "measure", 0, "")
	case "compare":
		fs.StringVar(&s.Bench, "bench", "", "")
		fs.StringVar(&s.Backend, "backend", "", "")
		fs.Uint64Var(&s.Warm, "warm", 0, "")
		fs.Uint64Var(&s.Measure, "measure", 0, "")
		fs.IntVar(&s.Matrices, "matrices", 0, "")
	case "spmv":
		fs.IntVar(&s.Matrices, "matrices", 0, "")
		fs.BoolVar(&s.Dense, "dense", false, "")
	case "linesize":
		fs.IntVar(&s.Matrices, "matrices", 0, "")
	case "sweep":
		fs.IntVar(&s.Points, "points", 0, "")
		fs.IntVar(&s.Rows, "rows", 0, "")
	case "dualcore":
		// only the shared flags
	case "omsstress":
		fs.IntVar(&s.Tenants, "tenants", 0, "")
		fs.IntVar(&s.Ops, "ops", 0, "")
		fs.IntVar(&s.Segments, "segments", 0, "")
		fs.IntVar(&s.OMSCapacity, "oms-capacity", 0, "")
		fs.BoolVar(&omsSpill, "oms-spill", true, "")
		fs.BoolVar(&s.Shared, "shared", false, "")
	default:
		return JobSpec{}, &ValidationError{Problems: []string{
			fmt.Sprintf("unknown experiment %q", s.Experiment)}}
	}
	if s.Experiment != "dualcore" && s.Experiment != "omsstress" {
		fs.BoolVar(&s.Cold, "cold", false, "")
	}
	fs.IntVar(&s.Parallel, "parallel", 0, "")
	if err := fs.Parse(args[1:]); err != nil {
		return JobSpec{}, &ValidationError{Problems: []string{err.Error()}}
	}
	if fs.NArg() > 0 {
		return JobSpec{}, &ValidationError{Problems: []string{
			fmt.Sprintf("unexpected arguments %v", fs.Args())}}
	}
	if s.Experiment == "omsstress" && !omsSpill {
		s.NoSpill = true
	}
	if err := s.Validate(); err != nil {
		return JobSpec{}, err
	}
	return s.Normalized(), nil
}

// Run executes the spec on the pool and returns the same export the
// matching CLI subcommand writes with -json — byte for byte, so a
// served job and a CLI run of CLIArgs() are interchangeable. The pool's
// Parallel is overridden by the spec's when set. A context cancelled
// mid-run surfaces as ctx.Err() even when the underlying sweep had
// already finished its in-flight simulations.
func (s JobSpec) Run(ctx context.Context, pool Pool) (*JobOutput, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	n := s.Normalized()
	if n.Parallel != 0 {
		pool.Parallel = n.Parallel
	}
	if n.Cold {
		pool.Cold = true
	}
	if pool.Snap == nil {
		pool.Snap = &SnapshotStats{}
	}
	out := &JobOutput{}
	switch n.Experiment {
	case "fork":
		params := ForkParams{
			WarmInstructions:    n.Warm,
			MeasureInstructions: n.Measure,
			Backend:             n.Backend,
			SeriesEpoch:         sim.DefaultEpoch,
		}
		// The default backend renders as the empty string so the export's
		// config block is byte-identical to a CLI run without -backend.
		if params.Backend == core.DefaultBackend {
			params.Backend = ""
		}
		var names []string
		if n.Bench != "" {
			names = []string{n.Bench}
		}
		results, err := RunForkSuitePool(ctx, pool, params, names)
		if err != nil {
			return nil, err
		}
		// ForkExport bundles the merged registry and per-run series
		// exactly as the CLI does; re-merge the stats here so the
		// caller gets live histograms, not just their summaries.
		out.Export = ForkExport(params, results)
		merged := &sim.Stats{}
		for i := range results {
			merged.Merge(results[i].CoW.Stats)
			merged.Merge(results[i].OoW.Stats)
		}
		out.Stats = merged
	case "spmv":
		results, err := RunFigure10Pool(ctx, pool, n.Matrices, n.Dense)
		if err != nil {
			return nil, err
		}
		out.Export = sim.NewExport("spmv")
		out.Export.Results = results
	case "linesize":
		results, err := RunFigure11Pool(ctx, pool, n.Matrices)
		if err != nil {
			return nil, err
		}
		out.Export = sim.NewExport("linesize")
		out.Export.Results = results
	case "sweep":
		results, err := RunSparsitySweepPool(ctx, pool, n.Points, n.Rows)
		if err != nil {
			return nil, err
		}
		out.Export = sim.NewExport("sweep")
		out.Export.Results = results
	case "dualcore":
		results, err := RunDualCorePool(ctx, pool)
		if err != nil {
			return nil, err
		}
		out.Export = sim.NewExport("dualcore")
		out.Export.Results = results
	case "compare":
		params := CompareParams{
			Bench:    n.Bench,
			Warm:     n.Warm,
			Measure:  n.Measure,
			Matrices: n.Matrices,
		}
		if n.Backend != "" {
			params.Backends = []string{n.Backend}
		}
		report, err := RunComparePool(ctx, pool, params)
		if err != nil {
			return nil, err
		}
		out.Export = CompareExport(params, report)
	case "omsstress":
		params := OMSStressParams{
			Tenants:  n.Tenants,
			Ops:      n.Ops,
			Segments: n.Segments,
			Capacity: n.OMSCapacity,
			Spill:    !n.NoSpill,
			Shared:   n.Shared,
		}
		if params.Capacity < 0 {
			params.Capacity = 0 // -1 in the spec means unlimited
		}
		results, stats, err := RunOMSStressPool(ctx, pool, params)
		if err != nil {
			return nil, err
		}
		out.Export = sim.NewExport("omsstress")
		out.Export.Results = results
		out.Stats = stats
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Warm-state reuse telemetry rides along outside the per-run
	// registries (which stay bit-identical between cold and forked
	// runs): the deterministic tallies go into the export's counter map
	// — identically for a served job and a CLI -json run — and into the
	// output registry the serving layer aggregates into /metrics.
	if prov := pool.Snap.Provenance(); !prov.Empty() {
		prov.AttachCounters(out.Export)
		if out.Stats == nil {
			out.Stats = &sim.Stats{}
		}
		prov.AttachStats(out.Stats)
	}
	return out, nil
}
