package cache

import (
	"repro/internal/arch"
	"repro/internal/sim"
)

// Backend is what sits below the last-level cache: the memory controller
// (which resolves overlay addresses through the OMT before DRAM).
type Backend interface {
	// Fetch reads the line from main memory; done fires on completion.
	Fetch(addr arch.PhysAddr, done func())
	// WriteBack sends a dirty line to main memory (fire and forget).
	WriteBack(addr arch.PhysAddr)
}

// MissObserver is notified of L2 demand misses; the stream prefetcher
// implements it (Table 2: "monitor L2 misses and prefetch into L3").
type MissObserver interface {
	OnMiss(addr arch.PhysAddr)
}

// LevelConfig sizes one cache level. HitLatency is the full hit latency;
// TagLatency is the time to discover a miss and forward it down.
type LevelConfig struct {
	Size       int
	Ways       int
	HitLatency sim.Cycle
	TagLatency sim.Cycle
	NewRepl    func(sets, ways int) Replacement
}

// HierarchyConfig describes the three-level hierarchy.
type HierarchyConfig struct {
	L1, L2, L3 LevelConfig
}

// DefaultHierarchyConfig returns Table 2's hierarchy: 64 KB 4-way L1
// (tag/data 1/2, parallel), 512 KB 8-way L2 (2/8, parallel), 2 MB 16-way
// L3 (10/24, serial lookup) with DRRIP.
func DefaultHierarchyConfig() HierarchyConfig {
	return HierarchyConfig{
		L1: LevelConfig{Size: 64 << 10, Ways: 4, HitLatency: 2, TagLatency: 1, NewRepl: NewLRU},
		L2: LevelConfig{Size: 512 << 10, Ways: 8, HitLatency: 8, TagLatency: 2, NewRepl: NewLRU},
		L3: LevelConfig{Size: 2 << 20, Ways: 16, HitLatency: 34, TagLatency: 10, NewRepl: NewDRRIP},
	}
}

type mshrEntry struct {
	dones []func()
	write bool
}

// Hierarchy ties the three levels to a backend with MSHR-style merging of
// concurrent misses to the same line.
type Hierarchy struct {
	engine  *sim.Engine
	cfg     HierarchyConfig
	L1      *Cache
	L2      *Cache
	L3      *Cache
	backend Backend
	mshr    map[arch.PhysAddr]*mshrEntry
	pfBusy  map[arch.PhysAddr]*mshrEntry // in-flight prefetches (+ late demand waiters)
	pf      MissObserver
}

// NewHierarchy builds the hierarchy over the given backend.
func NewHierarchy(engine *sim.Engine, cfg HierarchyConfig, backend Backend) *Hierarchy {
	return &Hierarchy{
		engine:  engine,
		cfg:     cfg,
		L1:      New("l1", cfg.L1.Size, cfg.L1.Ways, cfg.L1.NewRepl),
		L2:      New("l2", cfg.L2.Size, cfg.L2.Ways, cfg.L2.NewRepl),
		L3:      New("l3", cfg.L3.Size, cfg.L3.Ways, cfg.L3.NewRepl),
		backend: backend,
		mshr:    make(map[arch.PhysAddr]*mshrEntry),
		pfBusy:  make(map[arch.PhysAddr]*mshrEntry),
	}
}

// SetPrefetcher attaches the L2-miss observer.
func (h *Hierarchy) SetPrefetcher(pf MissObserver) { h.pf = pf }

// Access performs a timed load (write=false) or store (write=true) of the
// line containing addr; done fires when the access completes at L1.
func (h *Hierarchy) Access(addr arch.PhysAddr, write bool, done func()) {
	addr = addr.LineAligned()
	if h.L1.Lookup(addr, write) {
		h.engine.Stats.Inc("cache.l1.hits")
		if done != nil {
			h.engine.Schedule(h.cfg.L1.HitLatency, done)
		}
		return
	}
	h.engine.Stats.Inc("cache.l1.misses")
	if e, ok := h.mshr[addr]; ok {
		h.engine.Stats.Inc("cache.mshr_merges")
		e.write = e.write || write
		if done != nil {
			e.dones = append(e.dones, done)
		}
		return
	}
	// A demand access racing an in-flight prefetch rides the prefetch's
	// completion instead of issuing a second fetch. It still trains the
	// prefetcher — a late prefetch means the stream must run further
	// ahead (the feedback in "feedback-directed prefetching").
	if e, ok := h.pfBusy[addr]; ok {
		h.engine.Stats.Inc("cache.prefetch_demand_merges")
		e.write = e.write || write
		if done != nil {
			e.dones = append(e.dones, done)
		}
		if h.pf != nil {
			h.pf.OnMiss(addr)
		}
		return
	}
	e := &mshrEntry{write: write}
	if done != nil {
		e.dones = append(e.dones, done)
	}
	h.mshr[addr] = e
	h.descend(addr)
}

func (h *Hierarchy) descend(addr arch.PhysAddr) {
	if h.L2.Lookup(addr, false) {
		h.engine.Stats.Inc("cache.l2.hits")
		h.engine.Schedule(h.cfg.L1.TagLatency+h.cfg.L2.HitLatency, func() { h.complete(addr, 2) })
		return
	}
	h.engine.Stats.Inc("cache.l2.misses")
	if h.pf != nil {
		h.pf.OnMiss(addr)
	}
	if h.L3.Lookup(addr, false) {
		h.engine.Stats.Inc("cache.l3.hits")
		lat := h.cfg.L1.TagLatency + h.cfg.L2.TagLatency + h.cfg.L3.HitLatency
		h.engine.Schedule(lat, func() { h.complete(addr, 3) })
		return
	}
	h.engine.Stats.Inc("cache.l3.misses")
	lat := h.cfg.L1.TagLatency + h.cfg.L2.TagLatency + h.cfg.L3.TagLatency
	h.engine.Schedule(lat, func() {
		h.backend.Fetch(addr, func() { h.complete(addr, 4) })
	})
}

// complete fires when data for addr arrives from the given level (2 = L2,
// 3 = L3, 4 = memory). It fills the upper levels and releases waiters.
func (h *Hierarchy) complete(addr arch.PhysAddr, fromLevel int) {
	e := h.mshr[addr]
	delete(h.mshr, addr)
	if fromLevel >= 4 {
		h.fill(h.L3, addr, false)
	}
	if fromLevel >= 3 {
		h.fill(h.L2, addr, false)
	}
	h.fill(h.L1, addr, e != nil && e.write)
	if e != nil {
		for _, d := range e.dones {
			d()
		}
	}
}

// fill installs a line into one level, routing any dirty victim downward.
func (h *Hierarchy) fill(c *Cache, addr arch.PhysAddr, dirty bool) {
	ev, evicted := c.Fill(addr, dirty)
	if !evicted || !ev.Dirty {
		return
	}
	switch c {
	case h.L1:
		h.engine.Stats.Inc("cache.l1.writebacks")
		h.fill(h.L2, ev.Addr, true)
	case h.L2:
		h.engine.Stats.Inc("cache.l2.writebacks")
		h.fill(h.L3, ev.Addr, true)
	default:
		h.engine.Stats.Inc("cache.l3.writebacks")
		h.backend.WriteBack(ev.Addr)
	}
}

// Prefetch brings the line into L3 only (no upper-level pollution), per
// the Table 2 prefetcher. Present or in-flight lines are skipped (it
// reports whether a new fetch was issued). Demand accesses that arrive
// while the prefetch is in flight merge onto it and are filled upward on
// completion.
func (h *Hierarchy) Prefetch(addr arch.PhysAddr) bool {
	addr = addr.LineAligned()
	if h.L3.Present(addr) || h.L2.Present(addr) || h.L1.Present(addr) {
		return false
	}
	if _, busy := h.pfBusy[addr]; busy {
		return false
	}
	if _, demand := h.mshr[addr]; demand {
		return false
	}
	e := &mshrEntry{}
	h.pfBusy[addr] = e
	h.engine.Stats.Inc("cache.prefetches")
	h.backend.Fetch(addr, func() {
		delete(h.pfBusy, addr)
		h.fill(h.L3, addr, false)
		if len(e.dones) > 0 {
			h.fill(h.L2, addr, false)
			h.fill(h.L1, addr, e.write)
			for _, d := range e.dones {
				d()
			}
		}
	})
	return true
}

// Install fills the line into L1 directly without a timed fetch (used for
// the destination lines of a conventional COW page copy, which are fully
// produced by the copy engine rather than demand-fetched).
func (h *Hierarchy) Install(addr arch.PhysAddr, dirty bool) {
	h.fill(h.L1, addr.LineAligned(), dirty)
}

// PrefetchInFlight reports whether addr is currently being prefetched.
// Backends use it to tell prefetch fills apart from demand fetches.
func (h *Hierarchy) PrefetchInFlight(addr arch.PhysAddr) bool {
	_, ok := h.pfBusy[addr.LineAligned()]
	return ok
}

// Present reports whether any level holds the line.
func (h *Hierarchy) Present(addr arch.PhysAddr) bool {
	addr = addr.LineAligned()
	return h.L1.Present(addr) || h.L2.Present(addr) || h.L3.Present(addr)
}

// Retag renames a line (overlaying-write step 1, §4.3.3) in every level
// that holds it; the data block stays put, only tags change. It returns
// whether any level held the line.
func (h *Hierarchy) Retag(oldAddr, newAddr arch.PhysAddr) bool {
	oldAddr, newAddr = oldAddr.LineAligned(), newAddr.LineAligned()
	any := false
	for _, c := range []*Cache{h.L1, h.L2, h.L3} {
		moved, ev, evicted := c.Retag(oldAddr, newAddr)
		any = any || moved
		if evicted && ev.Dirty {
			switch c {
			case h.L1:
				h.fill(h.L2, ev.Addr, true)
			case h.L2:
				h.fill(h.L3, ev.Addr, true)
			default:
				h.backend.WriteBack(ev.Addr)
			}
		}
	}
	return any
}

// Invalidate drops the line from every level, reporting whether any copy
// was dirty (promotion actions use this; functional data lives in mem).
func (h *Hierarchy) Invalidate(addr arch.PhysAddr) (present, dirty bool) {
	addr = addr.LineAligned()
	for _, c := range []*Cache{h.L1, h.L2, h.L3} {
		p, d := c.Invalidate(addr)
		present = present || p
		dirty = dirty || d
	}
	return present, dirty
}

// OutstandingMisses reports the number of in-flight demand misses.
func (h *Hierarchy) OutstandingMisses() int { return len(h.mshr) }
