package cache

import (
	"repro/internal/arch"
	"repro/internal/sim"
)

// Backend is what sits below the last-level cache: the memory controller
// (which resolves overlay addresses through the OMT before DRAM).
type Backend interface {
	// Fetch reads the line from main memory; done fires on completion.
	Fetch(addr arch.PhysAddr, done sim.Cont)
	// WriteBack sends a dirty line to main memory (fire and forget).
	WriteBack(addr arch.PhysAddr)
}

// MissObserver is notified of L2 demand misses; the stream prefetcher
// implements it (Table 2: "monitor L2 misses and prefetch into L3").
type MissObserver interface {
	OnMiss(addr arch.PhysAddr)
}

// LevelConfig sizes one cache level. HitLatency is the full hit latency;
// TagLatency is the time to discover a miss and forward it down.
type LevelConfig struct {
	Size       int
	Ways       int
	HitLatency sim.Cycle
	TagLatency sim.Cycle
	NewRepl    func(sets, ways int) Replacement
}

// HierarchyConfig describes the three-level hierarchy.
type HierarchyConfig struct {
	L1, L2, L3 LevelConfig
}

// DefaultHierarchyConfig returns Table 2's hierarchy: 64 KB 4-way L1
// (tag/data 1/2, parallel), 512 KB 8-way L2 (2/8, parallel), 2 MB 16-way
// L3 (10/24, serial lookup) with DRRIP.
func DefaultHierarchyConfig() HierarchyConfig {
	return HierarchyConfig{
		L1: LevelConfig{Size: 64 << 10, Ways: 4, HitLatency: 2, TagLatency: 1, NewRepl: NewLRU},
		L2: LevelConfig{Size: 512 << 10, Ways: 8, HitLatency: 8, TagLatency: 2, NewRepl: NewLRU},
		L3: LevelConfig{Size: 2 << 20, Ways: 16, HitLatency: 34, TagLatency: 10, NewRepl: NewDRRIP},
	}
}

type mshrEntry struct {
	dones []sim.Cont
	write bool
}

// Hierarchy ties the three levels to a backend with MSHR-style merging of
// concurrent misses to the same line. Its per-access event scheduling is
// allocation-free: completions are continuations bound once at
// construction with the line address as the packed argument, and MSHR
// entries are recycled through a free list.
type Hierarchy struct {
	engine   *sim.Engine
	cfg      HierarchyConfig
	L1       *Cache
	L2       *Cache
	L3       *Cache
	backend  Backend
	mshr     map[arch.PhysAddr]*mshrEntry
	pfBusy   map[arch.PhysAddr]*mshrEntry // in-flight prefetches (+ late demand waiters)
	pf       MissObserver
	freeMSHR []*mshrEntry

	completeL2Fn  sim.ArgEvent // arg = line address
	completeL3Fn  sim.ArgEvent
	completeMemFn sim.ArgEvent
	fetchFn       sim.ArgEvent
	pfDoneFn      sim.ArgEvent

	l1Hits, l1Misses     *uint64
	l2Hits, l2Misses     *uint64
	l3Hits, l3Misses     *uint64
	l1WBs, l2WBs, l3WBs  *uint64
	mshrMerges, pfMerges *uint64
	prefetches           *uint64
}

// NewHierarchy builds the hierarchy over the given backend.
func NewHierarchy(engine *sim.Engine, cfg HierarchyConfig, backend Backend) *Hierarchy {
	h := &Hierarchy{
		engine:     engine,
		cfg:        cfg,
		L1:         New("l1", cfg.L1.Size, cfg.L1.Ways, cfg.L1.NewRepl),
		L2:         New("l2", cfg.L2.Size, cfg.L2.Ways, cfg.L2.NewRepl),
		L3:         New("l3", cfg.L3.Size, cfg.L3.Ways, cfg.L3.NewRepl),
		backend:    backend,
		mshr:       make(map[arch.PhysAddr]*mshrEntry),
		pfBusy:     make(map[arch.PhysAddr]*mshrEntry),
		l1Hits:     engine.Stats.Counter("cache.l1.hits"),
		l1Misses:   engine.Stats.Counter("cache.l1.misses"),
		l2Hits:     engine.Stats.Counter("cache.l2.hits"),
		l2Misses:   engine.Stats.Counter("cache.l2.misses"),
		l3Hits:     engine.Stats.Counter("cache.l3.hits"),
		l3Misses:   engine.Stats.Counter("cache.l3.misses"),
		l1WBs:      engine.Stats.Counter("cache.l1.writebacks"),
		l2WBs:      engine.Stats.Counter("cache.l2.writebacks"),
		l3WBs:      engine.Stats.Counter("cache.l3.writebacks"),
		mshrMerges: engine.Stats.Counter("cache.mshr_merges"),
		pfMerges:   engine.Stats.Counter("cache.prefetch_demand_merges"),
		prefetches: engine.Stats.Counter("cache.prefetches"),
	}
	h.completeL2Fn = func(a uint64) { h.complete(arch.PhysAddr(a), 2) }
	h.completeL3Fn = func(a uint64) { h.complete(arch.PhysAddr(a), 3) }
	h.completeMemFn = func(a uint64) { h.complete(arch.PhysAddr(a), 4) }
	h.fetchFn = func(a uint64) {
		h.backend.Fetch(arch.PhysAddr(a), sim.Bind(h.completeMemFn, a))
	}
	h.pfDoneFn = func(a uint64) { h.prefetchDone(arch.PhysAddr(a)) }
	return h
}

func (h *Hierarchy) newEntry(write bool) *mshrEntry {
	if n := len(h.freeMSHR); n > 0 {
		e := h.freeMSHR[n-1]
		h.freeMSHR[n-1] = nil
		h.freeMSHR = h.freeMSHR[:n-1]
		e.write = write
		return e
	}
	return &mshrEntry{write: write}
}

func (h *Hierarchy) freeEntry(e *mshrEntry) {
	for i := range e.dones {
		e.dones[i] = sim.Cont{}
	}
	e.dones = e.dones[:0]
	e.write = false
	h.freeMSHR = append(h.freeMSHR, e)
}

// SetPrefetcher attaches the L2-miss observer.
func (h *Hierarchy) SetPrefetcher(pf MissObserver) { h.pf = pf }

// Access performs a timed load (write=false) or store (write=true) of the
// line containing addr; done fires when the access completes at L1.
func (h *Hierarchy) Access(addr arch.PhysAddr, write bool, done func()) {
	h.AccessCont(addr, write, sim.ContOf(done))
}

// AccessCont is the continuation form of Access.
func (h *Hierarchy) AccessCont(addr arch.PhysAddr, write bool, done sim.Cont) {
	addr = addr.LineAligned()
	if h.L1.Lookup(addr, write) {
		*h.l1Hits++
		if done.Valid() {
			h.engine.ScheduleCont(h.cfg.L1.HitLatency, done)
		}
		return
	}
	*h.l1Misses++
	if e, ok := h.mshr[addr]; ok {
		*h.mshrMerges++
		e.write = e.write || write
		if done.Valid() {
			e.dones = append(e.dones, done)
		}
		return
	}
	// A demand access racing an in-flight prefetch rides the prefetch's
	// completion instead of issuing a second fetch. It still trains the
	// prefetcher — a late prefetch means the stream must run further
	// ahead (the feedback in "feedback-directed prefetching").
	if e, ok := h.pfBusy[addr]; ok {
		*h.pfMerges++
		e.write = e.write || write
		if done.Valid() {
			e.dones = append(e.dones, done)
		}
		if h.pf != nil {
			h.pf.OnMiss(addr)
		}
		return
	}
	e := h.newEntry(write)
	if done.Valid() {
		e.dones = append(e.dones, done)
	}
	h.mshr[addr] = e
	h.descend(addr)
}

func (h *Hierarchy) descend(addr arch.PhysAddr) {
	if h.L2.Lookup(addr, false) {
		*h.l2Hits++
		h.engine.ScheduleArg(h.cfg.L1.TagLatency+h.cfg.L2.HitLatency, h.completeL2Fn, uint64(addr))
		return
	}
	*h.l2Misses++
	if h.pf != nil {
		h.pf.OnMiss(addr)
	}
	if h.L3.Lookup(addr, false) {
		*h.l3Hits++
		lat := h.cfg.L1.TagLatency + h.cfg.L2.TagLatency + h.cfg.L3.HitLatency
		h.engine.ScheduleArg(lat, h.completeL3Fn, uint64(addr))
		return
	}
	*h.l3Misses++
	lat := h.cfg.L1.TagLatency + h.cfg.L2.TagLatency + h.cfg.L3.TagLatency
	h.engine.ScheduleArg(lat, h.fetchFn, uint64(addr))
}

// complete fires when data for addr arrives from the given level (2 = L2,
// 3 = L3, 4 = memory). It fills the upper levels and releases waiters.
func (h *Hierarchy) complete(addr arch.PhysAddr, fromLevel int) {
	e := h.mshr[addr]
	delete(h.mshr, addr)
	if fromLevel >= 4 {
		h.fill(h.L3, addr, false)
	}
	if fromLevel >= 3 {
		h.fill(h.L2, addr, false)
	}
	h.fill(h.L1, addr, e != nil && e.write)
	if e != nil {
		for _, d := range e.dones {
			d.Invoke()
		}
		h.freeEntry(e)
	}
}

// fill installs a line into one level, routing any dirty victim downward.
func (h *Hierarchy) fill(c *Cache, addr arch.PhysAddr, dirty bool) {
	ev, evicted := c.Fill(addr, dirty)
	if !evicted || !ev.Dirty {
		return
	}
	switch c {
	case h.L1:
		*h.l1WBs++
		h.fill(h.L2, ev.Addr, true)
	case h.L2:
		*h.l2WBs++
		h.fill(h.L3, ev.Addr, true)
	default:
		*h.l3WBs++
		h.backend.WriteBack(ev.Addr)
	}
}

// Prefetch brings the line into L3 only (no upper-level pollution), per
// the Table 2 prefetcher. Present or in-flight lines are skipped (it
// reports whether a new fetch was issued). Demand accesses that arrive
// while the prefetch is in flight merge onto it and are filled upward on
// completion.
func (h *Hierarchy) Prefetch(addr arch.PhysAddr) bool {
	addr = addr.LineAligned()
	if h.L3.Present(addr) || h.L2.Present(addr) || h.L1.Present(addr) {
		return false
	}
	if _, busy := h.pfBusy[addr]; busy {
		return false
	}
	if _, demand := h.mshr[addr]; demand {
		return false
	}
	h.pfBusy[addr] = h.newEntry(false)
	*h.prefetches++
	h.backend.Fetch(addr, sim.Bind(h.pfDoneFn, uint64(addr)))
	return true
}

// prefetchDone fills a completed prefetch into L3 (and, when demand
// waiters merged onto it, upward) and releases the waiters.
func (h *Hierarchy) prefetchDone(addr arch.PhysAddr) {
	e := h.pfBusy[addr]
	delete(h.pfBusy, addr)
	h.fill(h.L3, addr, false)
	if e != nil {
		if len(e.dones) > 0 {
			h.fill(h.L2, addr, false)
			h.fill(h.L1, addr, e.write)
			for _, d := range e.dones {
				d.Invoke()
			}
		}
		h.freeEntry(e)
	}
}

// Install fills the line into L1 directly without a timed fetch (used for
// the destination lines of a conventional COW page copy, which are fully
// produced by the copy engine rather than demand-fetched).
func (h *Hierarchy) Install(addr arch.PhysAddr, dirty bool) {
	h.fill(h.L1, addr.LineAligned(), dirty)
}

// PrefetchInFlight reports whether addr is currently being prefetched.
// Backends use it to tell prefetch fills apart from demand fetches.
func (h *Hierarchy) PrefetchInFlight(addr arch.PhysAddr) bool {
	_, ok := h.pfBusy[addr.LineAligned()]
	return ok
}

// Present reports whether any level holds the line.
func (h *Hierarchy) Present(addr arch.PhysAddr) bool {
	addr = addr.LineAligned()
	return h.L1.Present(addr) || h.L2.Present(addr) || h.L3.Present(addr)
}

// Retag renames a line (overlaying-write step 1, §4.3.3) in every level
// that holds it; the data block stays put, only tags change. It returns
// whether any level held the line.
func (h *Hierarchy) Retag(oldAddr, newAddr arch.PhysAddr) bool {
	oldAddr, newAddr = oldAddr.LineAligned(), newAddr.LineAligned()
	any := false
	for _, c := range []*Cache{h.L1, h.L2, h.L3} {
		moved, ev, evicted := c.Retag(oldAddr, newAddr)
		any = any || moved
		if evicted && ev.Dirty {
			switch c {
			case h.L1:
				h.fill(h.L2, ev.Addr, true)
			case h.L2:
				h.fill(h.L3, ev.Addr, true)
			default:
				h.backend.WriteBack(ev.Addr)
			}
		}
	}
	return any
}

// Invalidate drops the line from every level, reporting whether any copy
// was dirty (promotion actions use this; functional data lives in mem).
func (h *Hierarchy) Invalidate(addr arch.PhysAddr) (present, dirty bool) {
	addr = addr.LineAligned()
	for _, c := range []*Cache{h.L1, h.L2, h.L3} {
		p, d := c.Invalidate(addr)
		present = present || p
		dirty = dirty || d
	}
	return present, dirty
}

// OutstandingMisses reports the number of in-flight demand misses.
func (h *Hierarchy) OutstandingMisses() int { return len(h.mshr) }
