package cache

// lru implements least-recently-used replacement with per-line
// timestamps.
type lru struct {
	stamp [][]uint64
	clock uint64
}

// NewLRU constructs an LRU policy for a (sets × ways) cache.
func NewLRU(sets, ways int) Replacement {
	s := make([][]uint64, sets)
	backing := make([]uint64, sets*ways)
	for i := range s {
		s[i], backing = backing[:ways], backing[ways:]
	}
	return &lru{stamp: s}
}

func (l *lru) touch(set, way int) {
	l.clock++
	l.stamp[set][way] = l.clock
}

func (l *lru) OnHit(set, way int)  { l.touch(set, way) }
func (l *lru) OnMiss(set int)      {}
func (l *lru) OnFill(set, way int) { l.touch(set, way) }

func (l *lru) Victim(set int) int {
	best, bestStamp := 0, l.stamp[set][0]
	for w := 1; w < len(l.stamp[set]); w++ {
		if l.stamp[set][w] < bestStamp {
			best, bestStamp = w, l.stamp[set][w]
		}
	}
	return best
}

// DRRIP constants (Jaleel et al., ISCA 2010): 2-bit re-reference
// prediction values, set dueling between SRRIP and BRRIP with a 10-bit
// policy selector.
const (
	rrpvMax      = 3    // distant re-reference
	rrpvLong     = 2    // long re-reference (SRRIP insertion)
	pselMax      = 1023 // 10-bit saturating selector
	duelPeriod   = 32   // one leader set per 32 sets per policy
	brripEpsilon = 32   // BRRIP inserts "long" once every 32 fills
)

type drrip struct {
	rrpv    [][]uint8
	psel    int
	fillSeq uint64
	sets    int

	// pendingMiss remembers, per set, that the next fill follows a miss in
	// a leader set so PSEL is updated once per miss.
}

// NewDRRIP constructs a DRRIP policy for a (sets × ways) cache.
func NewDRRIP(sets, ways int) Replacement {
	r := make([][]uint8, sets)
	backing := make([]uint8, sets*ways)
	for i := range backing {
		backing[i] = rrpvMax
	}
	for i := range r {
		r[i], backing = backing[:ways], backing[ways:]
	}
	return &drrip{rrpv: r, psel: pselMax / 2, sets: sets}
}

// leader classifies a set: +1 SRRIP leader, -1 BRRIP leader, 0 follower.
func (d *drrip) leader(set int) int {
	switch set % duelPeriod {
	case 0:
		return 1
	case duelPeriod / 2:
		return -1
	default:
		return 0
	}
}

func (d *drrip) OnHit(set, way int) { d.rrpv[set][way] = 0 }

func (d *drrip) OnMiss(set int) {
	// A miss in a leader set is a vote against that leader's policy.
	switch d.leader(set) {
	case 1: // SRRIP leader missed → favour BRRIP
		if d.psel > 0 {
			d.psel--
		}
	case -1: // BRRIP leader missed → favour SRRIP
		if d.psel < pselMax {
			d.psel++
		}
	}
}

// useSRRIP decides the insertion policy for this set.
func (d *drrip) useSRRIP(set int) bool {
	switch d.leader(set) {
	case 1:
		return true
	case -1:
		return false
	default:
		return d.psel >= pselMax/2
	}
}

func (d *drrip) OnFill(set, way int) {
	d.fillSeq++
	if d.useSRRIP(set) {
		d.rrpv[set][way] = rrpvLong
		return
	}
	// BRRIP: distant re-reference, with an occasional long insertion.
	if d.fillSeq%brripEpsilon == 0 {
		d.rrpv[set][way] = rrpvLong
	} else {
		d.rrpv[set][way] = rrpvMax
	}
}

func (d *drrip) Victim(set int) int {
	row := d.rrpv[set]
	for {
		for w, v := range row {
			if v == rrpvMax {
				return w
			}
		}
		for w := range row {
			row[w]++
		}
	}
}
