package cache

import (
	"math/rand"
	"testing"

	"repro/internal/arch"
)

func addrOf(lineNum uint64) arch.PhysAddr { return arch.PhysAddr(lineNum << arch.LineShift) }

func TestCacheGeometry(t *testing.T) {
	c := New("l1", 64<<10, 4, NewLRU)
	if c.Sets() != 256 || c.Ways() != 4 {
		t.Fatalf("sets=%d ways=%d, want 256/4", c.Sets(), c.Ways())
	}
}

func TestLookupMissThenHit(t *testing.T) {
	c := New("t", 4096, 2, NewLRU) // 32 sets
	a := addrOf(5)
	if c.Lookup(a, false) {
		t.Fatal("unexpected hit in empty cache")
	}
	c.Fill(a, false)
	if !c.Lookup(a, false) {
		t.Fatal("expected hit after fill")
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Fatalf("hits=%d misses=%d", c.Hits, c.Misses)
	}
}

func TestWriteMarksDirty(t *testing.T) {
	c := New("t", 4096, 2, NewLRU)
	a := addrOf(3)
	c.Fill(a, false)
	c.Lookup(a, true)
	dirty := c.DirtyLines()
	if len(dirty) != 1 || dirty[0] != a {
		t.Fatalf("DirtyLines = %v", dirty)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New("t", 2*arch.LineSize, 2, NewLRU) // 1 set, 2 ways
	a, b, d := addrOf(0), addrOf(1), addrOf(2)
	c.Fill(a, false)
	c.Fill(b, false)
	c.Lookup(a, false) // a is now MRU
	ev, evicted := c.Fill(d, true)
	if !evicted || ev.Addr != b {
		t.Fatalf("evicted %+v (%v), want b", ev, evicted)
	}
	if !c.Present(a) || !c.Present(d) || c.Present(b) {
		t.Fatal("wrong resident set after eviction")
	}
}

func TestEvictionReportsDirty(t *testing.T) {
	c := New("t", 2*arch.LineSize, 2, NewLRU)
	c.Fill(addrOf(0), true)
	c.Fill(addrOf(1), false)
	ev, evicted := c.Fill(addrOf(2), false)
	if !evicted || ev.Addr != addrOf(0) || !ev.Dirty {
		t.Fatalf("eviction = %+v (%v), want dirty line 0", ev, evicted)
	}
}

func TestFillIsIdempotentAndMergesDirty(t *testing.T) {
	c := New("t", 4096, 2, NewLRU)
	a := addrOf(9)
	c.Fill(a, false)
	_, evicted := c.Fill(a, true)
	if evicted {
		t.Fatal("refill of present line must not evict")
	}
	if len(c.DirtyLines()) != 1 {
		t.Fatal("refill should merge dirty state")
	}
}

func TestInvalidate(t *testing.T) {
	c := New("t", 4096, 2, NewLRU)
	a := addrOf(7)
	c.Fill(a, true)
	present, dirty := c.Invalidate(a)
	if !present || !dirty {
		t.Fatalf("Invalidate = (%v,%v), want (true,true)", present, dirty)
	}
	if c.Present(a) {
		t.Fatal("line still present")
	}
	present, _ = c.Invalidate(a)
	if present {
		t.Fatal("second invalidate should miss")
	}
}

func TestRetagSameSet(t *testing.T) {
	c := New("t", 64*arch.LineSize, 4, NewLRU) // 16 sets
	// Same set ⇒ line numbers congruent mod 16.
	oldA, newA := addrOf(3), addrOf(3+16)
	c.Fill(oldA, true)
	moved, _, evicted := c.Retag(oldA, newA)
	if !moved || evicted {
		t.Fatalf("Retag = moved=%v evicted=%v", moved, evicted)
	}
	if c.Present(oldA) || !c.Present(newA) {
		t.Fatal("retag did not rename the line")
	}
	if len(c.DirtyLines()) != 1 {
		t.Fatal("retag must preserve dirty state")
	}
}

func TestRetagDifferentSet(t *testing.T) {
	c := New("t", 64*arch.LineSize, 4, NewLRU)
	oldA, newA := addrOf(3), addrOf(4)
	c.Fill(oldA, false)
	moved, _, _ := c.Retag(oldA, newA)
	if !moved || c.Present(oldA) || !c.Present(newA) {
		t.Fatal("cross-set retag failed")
	}
}

func TestRetagMiss(t *testing.T) {
	c := New("t", 4096, 2, NewLRU)
	moved, _, _ := c.Retag(addrOf(1), addrOf(2))
	if moved {
		t.Fatal("retag of absent line reported moved")
	}
}

func TestOverlayAddressesCoexist(t *testing.T) {
	// An overlay line and the regular line with the same low bits must not
	// collide: the overlay bit is part of the tag.
	c := New("t", 4096, 2, NewLRU)
	reg := addrOf(5)
	ovl := arch.PhysAddr(uint64(reg) | arch.OverlayBit)
	c.Fill(reg, false)
	if c.Present(ovl) {
		t.Fatal("overlay alias hit on regular line")
	}
	c.Fill(ovl, true)
	if !c.Present(reg) || !c.Present(ovl) {
		t.Fatal("lines should coexist")
	}
}

func TestDRRIPVictimPrefersDistant(t *testing.T) {
	r := NewDRRIP(64, 4).(*drrip)
	set := 1 // follower set
	// Fill all ways (SRRIP default: PSEL starts in SRRIP half).
	for w := 0; w < 4; w++ {
		r.OnFill(set, w)
	}
	r.OnHit(set, 2) // way 2 becomes RRPV 0
	v := r.Victim(set)
	if v == 2 {
		t.Fatal("victim selected the just-hit way")
	}
}

func TestDRRIPVictimTerminates(t *testing.T) {
	r := NewDRRIP(64, 4).(*drrip)
	set := 1
	for w := 0; w < 4; w++ {
		r.OnFill(set, w)
		r.OnHit(set, w) // all RRPV 0
	}
	v := r.Victim(set)
	if v < 0 || v > 3 {
		t.Fatalf("victim = %d", v)
	}
}

func TestDRRIPSetDueling(t *testing.T) {
	r := NewDRRIP(64, 4).(*drrip)
	if r.leader(0) != 1 || r.leader(duelPeriod/2) != -1 || r.leader(1) != 0 {
		t.Fatal("leader classification wrong")
	}
	start := r.psel
	r.OnMiss(0) // SRRIP leader miss → PSEL down
	if r.psel != start-1 {
		t.Fatalf("psel = %d, want %d", r.psel, start-1)
	}
	r.OnMiss(duelPeriod / 2) // BRRIP leader miss → PSEL up
	if r.psel != start {
		t.Fatalf("psel = %d, want %d", r.psel, start)
	}
}

func TestDRRIPScanResistance(t *testing.T) {
	// DRRIP's reason to exist: a working set that fits plus a scan. With
	// BRRIP winning the duel, most scan lines insert at distant RRPV and
	// the working set survives better than pure LRU.
	const ways = 16
	c := New("t", ways*arch.LineSize*64, ways, NewDRRIP)
	rng := rand.New(rand.NewSource(7))
	// Hot working set: ways/2 lines per set, touched often.
	hot := make([]arch.PhysAddr, 0)
	for i := 0; i < c.Sets()*ways/2; i++ {
		hot = append(hot, addrOf(uint64(i)))
	}
	for iter := 0; iter < 4; iter++ {
		for _, a := range hot {
			if !c.Lookup(a, false) {
				c.Fill(a, false)
			}
		}
		// Streaming scan: never reused.
		for i := 0; i < c.Sets()*ways*4; i++ {
			a := addrOf(uint64(1<<20) + uint64(iter*c.Sets()*ways*4+i))
			if !c.Lookup(a, false) {
				c.Fill(a, false)
			}
			_ = rng
		}
	}
	hits := 0
	for _, a := range hot {
		if c.Present(a) {
			hits++
		}
	}
	if hits == 0 {
		t.Fatal("DRRIP retained none of the hot working set under a scan")
	}
}

func TestCachePanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-power-of-two sets")
		}
	}()
	New("bad", 3*arch.LineSize, 1, NewLRU)
}
