package cache

import "fmt"

// Snapshot support: a Cache's tag state, its replacement policy's
// internal state, and the whole Hierarchy can be captured at a
// quiescence point (no in-flight misses or prefetches) and restored
// onto a freshly constructed hierarchy of the same configuration.
// The stats-registry counters are restored separately through
// sim.Stats; Cache.Hits/Misses are plain struct fields and so are
// captured here.

// replState is the opaque captured state of a replacement policy.
type replState interface{ isReplState() }

// replSnapshotter is implemented by the built-in policies. A custom
// Replacement that does not implement it cannot be snapshotted.
type replSnapshotter interface {
	snapshotRepl() replState
	restoreRepl(replState)
}

type lruState struct {
	stamp []uint64
	clock uint64
}

func (lruState) isReplState() {}

func (l *lru) snapshotRepl() replState {
	var flat []uint64
	for _, row := range l.stamp {
		flat = append(flat, row...)
	}
	return lruState{stamp: flat, clock: l.clock}
}

func (l *lru) restoreRepl(s replState) {
	st := s.(lruState)
	i := 0
	for _, row := range l.stamp {
		copy(row, st.stamp[i:i+len(row)])
		i += len(row)
	}
	l.clock = st.clock
}

type drripState struct {
	rrpv    []uint8
	psel    int
	fillSeq uint64
}

func (drripState) isReplState() {}

func (d *drrip) snapshotRepl() replState {
	var flat []uint8
	for _, row := range d.rrpv {
		flat = append(flat, row...)
	}
	return drripState{rrpv: flat, psel: d.psel, fillSeq: d.fillSeq}
}

func (d *drrip) restoreRepl(s replState) {
	st := s.(drripState)
	i := 0
	for _, row := range d.rrpv {
		copy(row, st.rrpv[i:i+len(row)])
		i += len(row)
	}
	d.psel = st.psel
	d.fillSeq = st.fillSeq
}

// Snapshot is an immutable capture of one cache level.
type Snapshot struct {
	lines        []line
	hits, misses uint64
	repl         replState
}

// Snapshot captures the cache's tag array, hit/miss totals and
// replacement state. It panics if the replacement policy is not one of
// the built-in snapshottable ones.
func (c *Cache) Snapshot() *Snapshot {
	rs, ok := c.repl.(replSnapshotter)
	if !ok {
		panic(fmt.Sprintf("cache %s: replacement policy %T is not snapshottable", c.Name, c.repl))
	}
	var flat []line
	for _, set := range c.data {
		flat = append(flat, set...)
	}
	return &Snapshot{lines: flat, hits: c.Hits, misses: c.Misses, repl: rs.snapshotRepl()}
}

// Restore loads the captured state into this cache, which must have the
// same geometry and replacement policy kind.
func (c *Cache) Restore(s *Snapshot) {
	if len(s.lines) != c.sets*c.ways {
		panic(fmt.Sprintf("cache %s: restore geometry mismatch", c.Name))
	}
	i := 0
	for _, set := range c.data {
		copy(set, s.lines[i:i+len(set)])
		i += len(set)
	}
	c.Hits, c.Misses = s.hits, s.misses
	c.repl.(replSnapshotter).restoreRepl(s.repl)
}

// HierarchySnapshot captures all three levels of a quiescent hierarchy.
type HierarchySnapshot struct {
	L1, L2, L3 *Snapshot
}

// Snapshot captures the hierarchy. It panics if misses or prefetches
// are still in flight — snapshots are only taken after the engine's
// event queue has drained, at which point the MSHRs are empty.
func (h *Hierarchy) Snapshot() *HierarchySnapshot {
	if len(h.mshr) != 0 || len(h.pfBusy) != 0 {
		panic("cache: hierarchy snapshot with in-flight misses")
	}
	return &HierarchySnapshot{L1: h.L1.Snapshot(), L2: h.L2.Snapshot(), L3: h.L3.Snapshot()}
}

// Restore loads the captured levels into this hierarchy.
func (h *Hierarchy) Restore(s *HierarchySnapshot) {
	h.L1.Restore(s.L1)
	h.L2.Restore(s.L2)
	h.L3.Restore(s.L3)
}
