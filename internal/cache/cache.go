// Package cache models the processor cache hierarchy of Table 2: a 64 KB
// 4-way L1 and 512 KB 8-way L2 with LRU and parallel tag/data lookup, and
// a 2 MB 16-way L3 with serial tag/data lookup and DRRIP replacement. All
// levels use 64 B lines, are write-back/write-allocate, and are
// non-inclusive.
//
// Cache tags are full widened physical addresses, so lines from the
// Overlay Address Space coexist with regular lines — the "wider cache
// tags" cost the paper accounts for in §4.5. The hierarchy is timing-only:
// functional data lives in internal/mem and is updated by the core
// framework at access time.
package cache

import (
	"fmt"

	"repro/internal/arch"
)

// line is one cache block's tag state.
type line struct {
	valid bool
	dirty bool
	tag   uint64 // full line number (addr >> LineShift), overlay bit included
}

// Replacement is a per-set replacement policy.
type Replacement interface {
	// OnHit is called when way in set hits.
	OnHit(set, way int)
	// OnMiss is called when a lookup misses in set (before any fill).
	OnMiss(set int)
	// OnFill is called after a block is installed into way of set.
	OnFill(set, way int)
	// Victim selects the way to evict from a full set.
	Victim(set int) int
}

// Cache is a single set-associative cache level.
type Cache struct {
	Name string
	sets int
	ways int
	data [][]line
	repl Replacement

	Hits   uint64
	Misses uint64
}

// New builds a cache of sizeBytes capacity and the given associativity.
// newRepl constructs the replacement policy for (sets, ways).
func New(name string, sizeBytes, ways int, newRepl func(sets, ways int) Replacement) *Cache {
	lines := sizeBytes / arch.LineSize
	if lines%ways != 0 {
		panic(fmt.Sprintf("cache %s: %d lines not divisible by %d ways", name, lines, ways))
	}
	sets := lines / ways
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache %s: set count %d not a power of two", name, sets))
	}
	data := make([][]line, sets)
	backing := make([]line, sets*ways)
	for i := range data {
		data[i], backing = backing[:ways], backing[ways:]
	}
	return &Cache{Name: name, sets: sets, ways: ways, data: data, repl: newRepl(sets, ways)}
}

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

func (c *Cache) index(addr arch.PhysAddr) (set int, tag uint64) {
	lineNum := uint64(addr) >> arch.LineShift
	return int(lineNum % uint64(c.sets)), lineNum
}

func (c *Cache) find(addr arch.PhysAddr) (set, way int, ok bool) {
	set, tag := c.index(addr)
	for w := range c.data[set] {
		if l := &c.data[set][w]; l.valid && l.tag == tag {
			return set, w, true
		}
	}
	return set, -1, false
}

// Lookup probes the cache. On a hit it updates replacement state, marks
// the line dirty if write is set, and returns true.
func (c *Cache) Lookup(addr arch.PhysAddr, write bool) bool {
	set, way, ok := c.find(addr)
	if !ok {
		c.Misses++
		c.repl.OnMiss(set)
		return false
	}
	c.Hits++
	c.repl.OnHit(set, way)
	if write {
		c.data[set][way].dirty = true
	}
	return true
}

// Present reports whether the line is cached, without touching
// replacement or hit/miss statistics.
func (c *Cache) Present(addr arch.PhysAddr) bool {
	_, _, ok := c.find(addr)
	return ok
}

// Eviction describes a block displaced by Fill.
type Eviction struct {
	Addr  arch.PhysAddr
	Dirty bool
}

// Fill installs the line, evicting a victim if the set is full. The
// returned eviction is valid only when evicted is true.
func (c *Cache) Fill(addr arch.PhysAddr, dirty bool) (ev Eviction, evicted bool) {
	set, tag := c.index(addr)
	// Already present (e.g. racing prefetch): just merge dirty state.
	for w := range c.data[set] {
		if l := &c.data[set][w]; l.valid && l.tag == tag {
			l.dirty = l.dirty || dirty
			c.repl.OnFill(set, w)
			return Eviction{}, false
		}
	}
	way := -1
	for w := range c.data[set] {
		if !c.data[set][w].valid {
			way = w
			break
		}
	}
	if way == -1 {
		way = c.repl.Victim(set)
		v := c.data[set][way]
		ev = Eviction{Addr: arch.PhysAddr(v.tag << arch.LineShift), Dirty: v.dirty}
		evicted = true
	}
	c.data[set][way] = line{valid: true, dirty: dirty, tag: tag}
	c.repl.OnFill(set, way)
	return ev, evicted
}

// Invalidate removes the line if present, returning whether it was present
// and whether it was dirty.
func (c *Cache) Invalidate(addr arch.PhysAddr) (present, dirty bool) {
	set, way, ok := c.find(addr)
	if !ok {
		return false, false
	}
	dirty = c.data[set][way].dirty
	c.data[set][way] = line{}
	return true, dirty
}

// Retag renames a cached line from oldAddr to newAddr, preserving dirty
// state. This implements the first step of an overlaying write (§4.3.3):
// the block's data stays in place and only its tag changes. It returns
// false when oldAddr is not cached. If the new tag maps to a different
// set, the line is refilled there (possibly evicting a victim).
func (c *Cache) Retag(oldAddr, newAddr arch.PhysAddr) (moved bool, ev Eviction, evicted bool) {
	set, way, ok := c.find(oldAddr)
	if !ok {
		return false, Eviction{}, false
	}
	dirty := c.data[set][way].dirty
	newSet, newTag := c.index(newAddr)
	if newSet == set {
		c.data[set][way].tag = newTag
		return true, Eviction{}, false
	}
	c.data[set][way] = line{}
	ev, evicted = c.Fill(newAddr, dirty)
	return true, ev, evicted
}

// SetDirty marks a present line dirty (used when a retagged block absorbs
// the triggering store).
func (c *Cache) SetDirty(addr arch.PhysAddr) bool {
	set, way, ok := c.find(addr)
	if !ok {
		return false
	}
	c.data[set][way].dirty = true
	return true
}

// DirtyLines returns the addresses of all dirty lines (test/debug aid and
// used by flush-style promotions).
func (c *Cache) DirtyLines() []arch.PhysAddr {
	var out []arch.PhysAddr
	for s := range c.data {
		for w := range c.data[s] {
			if l := c.data[s][w]; l.valid && l.dirty {
				out = append(out, arch.PhysAddr(l.tag<<arch.LineShift))
			}
		}
	}
	return out
}
