package cache

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/sim"
)

// fakeBackend completes fetches after a fixed latency and records traffic.
type fakeBackend struct {
	engine     *sim.Engine
	latency    sim.Cycle
	fetches    []arch.PhysAddr
	writebacks []arch.PhysAddr
}

func (b *fakeBackend) Fetch(addr arch.PhysAddr, done sim.Cont) {
	b.fetches = append(b.fetches, addr)
	b.engine.ScheduleCont(b.latency, done)
}

func (b *fakeBackend) WriteBack(addr arch.PhysAddr) {
	b.writebacks = append(b.writebacks, addr)
}

func newTestHierarchy() (*sim.Engine, *Hierarchy, *fakeBackend) {
	e := sim.NewEngine()
	b := &fakeBackend{engine: e, latency: 200}
	h := NewHierarchy(e, DefaultHierarchyConfig(), b)
	return e, h, b
}

func TestColdMissGoesToMemory(t *testing.T) {
	e, h, b := newTestHierarchy()
	var doneAt sim.Cycle
	h.Access(addrOf(1), false, func() { doneAt = e.Now() })
	e.Run()
	cfg := DefaultHierarchyConfig()
	want := cfg.L1.TagLatency + cfg.L2.TagLatency + cfg.L3.TagLatency + 200
	if doneAt != want {
		t.Fatalf("cold miss latency = %d, want %d", doneAt, want)
	}
	if len(b.fetches) != 1 {
		t.Fatalf("fetches = %d, want 1", len(b.fetches))
	}
}

func TestSecondAccessHitsL1(t *testing.T) {
	e, h, b := newTestHierarchy()
	h.Access(addrOf(1), false, nil)
	e.Run()
	var lat sim.Cycle
	start := e.Now()
	h.Access(addrOf(1), false, func() { lat = e.Now() - start })
	e.Run()
	if lat != DefaultHierarchyConfig().L1.HitLatency {
		t.Fatalf("L1 hit latency = %d, want %d", lat, DefaultHierarchyConfig().L1.HitLatency)
	}
	if len(b.fetches) != 1 {
		t.Fatal("second access should not reach memory")
	}
}

func TestMSHRMergesConcurrentMisses(t *testing.T) {
	e, h, b := newTestHierarchy()
	done := 0
	h.Access(addrOf(1), false, func() { done++ })
	h.Access(addrOf(1), false, func() { done++ })
	h.Access(addrOf(1), true, func() { done++ })
	e.Run()
	if done != 3 {
		t.Fatalf("done = %d, want 3", done)
	}
	if len(b.fetches) != 1 {
		t.Fatalf("fetches = %d, want 1 (MSHR merge)", len(b.fetches))
	}
	if e.Stats.Get("cache.mshr_merges") != 2 {
		t.Fatalf("merges = %d, want 2", e.Stats.Get("cache.mshr_merges"))
	}
	// The merged write must leave the L1 line dirty.
	if len(h.L1.DirtyLines()) != 1 {
		t.Fatal("merged store did not dirty the line")
	}
}

func TestFillPropagatesToAllLevels(t *testing.T) {
	e, h, _ := newTestHierarchy()
	h.Access(addrOf(1), false, nil)
	e.Run()
	if !h.L1.Present(addrOf(1)) || !h.L2.Present(addrOf(1)) || !h.L3.Present(addrOf(1)) {
		t.Fatal("memory fill should populate L1, L2 and L3")
	}
}

func TestL2HitLatency(t *testing.T) {
	e, h, _ := newTestHierarchy()
	a := addrOf(1)
	h.Access(a, false, nil)
	e.Run()
	h.L1.Invalidate(a)
	start := e.Now()
	var lat sim.Cycle
	h.Access(a, false, func() { lat = e.Now() - start })
	e.Run()
	cfg := DefaultHierarchyConfig()
	want := cfg.L1.TagLatency + cfg.L2.HitLatency
	if lat != want {
		t.Fatalf("L2 hit latency = %d, want %d", lat, want)
	}
}

func TestL3HitLatency(t *testing.T) {
	e, h, _ := newTestHierarchy()
	a := addrOf(1)
	h.Access(a, false, nil)
	e.Run()
	h.L1.Invalidate(a)
	h.L2.Invalidate(a)
	start := e.Now()
	var lat sim.Cycle
	h.Access(a, false, func() { lat = e.Now() - start })
	e.Run()
	cfg := DefaultHierarchyConfig()
	want := cfg.L1.TagLatency + cfg.L2.TagLatency + cfg.L3.HitLatency
	if lat != want {
		t.Fatalf("L3 hit latency = %d, want %d", lat, want)
	}
}

func TestDirtyEvictionReachesMemory(t *testing.T) {
	e, h, b := newTestHierarchy()
	// Write a line, then force it out of every level by filling conflicting
	// lines. L1 is 256 sets × 4 ways; L2 1024×8; L3 2048×16. Lines spaced
	// 2048*64 bytes apart in line numbers collide in all three caches'
	// set 0 region... easier: use Invalidate-free pressure via many fills.
	victim := addrOf(0)
	h.Access(victim, true, nil)
	e.Run()
	// Evict from L1/L2/L3 by accessing many lines mapping to the same sets.
	const stride = 2048 // L3 sets
	for i := 1; i <= 40; i++ {
		h.Access(addrOf(uint64(i*stride)), false, nil)
		e.Run()
	}
	found := false
	for _, wb := range b.writebacks {
		if wb == victim {
			found = true
		}
	}
	if !found {
		t.Fatal("dirty line never written back to memory")
	}
}

func TestPrefetchFillsOnlyL3(t *testing.T) {
	e, h, b := newTestHierarchy()
	h.Prefetch(addrOf(9))
	e.Run()
	if h.L1.Present(addrOf(9)) || h.L2.Present(addrOf(9)) {
		t.Fatal("prefetch polluted upper levels")
	}
	if !h.L3.Present(addrOf(9)) {
		t.Fatal("prefetch did not fill L3")
	}
	if len(b.fetches) != 1 {
		t.Fatalf("fetches = %d", len(b.fetches))
	}
	// Prefetching again is a no-op.
	h.Prefetch(addrOf(9))
	e.Run()
	if len(b.fetches) != 1 {
		t.Fatal("duplicate prefetch issued")
	}
}

func TestPrefetchSkipsDemandInFlight(t *testing.T) {
	e, h, b := newTestHierarchy()
	h.Access(addrOf(5), false, nil)
	h.Prefetch(addrOf(5))
	e.Run()
	if len(b.fetches) != 1 {
		t.Fatalf("fetches = %d, want 1", len(b.fetches))
	}
}

func TestHierarchyRetag(t *testing.T) {
	e, h, _ := newTestHierarchy()
	oldA := addrOf(1)
	newA := arch.PhysAddr(uint64(oldA) | arch.OverlayBit)
	h.Access(oldA, true, nil)
	e.Run()
	if !h.Retag(oldA, newA) {
		t.Fatal("retag reported no line moved")
	}
	if h.Present(oldA) {
		t.Fatal("old address still present")
	}
	if !h.L1.Present(newA) {
		t.Fatal("new address missing from L1")
	}
	if len(h.L1.DirtyLines()) != 1 || h.L1.DirtyLines()[0] != newA {
		t.Fatal("dirty state lost in retag")
	}
}

func TestHierarchyInvalidate(t *testing.T) {
	e, h, _ := newTestHierarchy()
	a := addrOf(2)
	h.Access(a, true, nil)
	e.Run()
	present, dirty := h.Invalidate(a)
	if !present || !dirty {
		t.Fatalf("Invalidate = (%v,%v)", present, dirty)
	}
	if h.Present(a) {
		t.Fatal("line still present after invalidate")
	}
}

func TestOutstandingMisses(t *testing.T) {
	e, h, _ := newTestHierarchy()
	h.Access(addrOf(1), false, nil)
	h.Access(addrOf(2), false, nil)
	if h.OutstandingMisses() != 2 {
		t.Fatalf("outstanding = %d, want 2", h.OutstandingMisses())
	}
	e.Run()
	if h.OutstandingMisses() != 0 {
		t.Fatal("MSHRs not drained")
	}
}
