package prefetch

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/sim"
)

type recorder struct{ addrs []arch.PhysAddr }

func (r *recorder) Prefetch(addr arch.PhysAddr) bool { r.addrs = append(r.addrs, addr); return true }

func lineAddr(n int64) arch.PhysAddr { return arch.PhysAddr(uint64(n) << arch.LineShift) }

func newPF() (*Prefetcher, *recorder, *sim.Stats) {
	r := &recorder{}
	var st sim.Stats
	return New(DefaultConfig(), r, &st), r, &st
}

func TestFirstMissOnlyAllocates(t *testing.T) {
	p, r, st := newPF()
	p.OnMiss(lineAddr(100))
	if len(r.addrs) != 0 {
		t.Fatalf("prefetches after one miss: %v", r.addrs)
	}
	if st.Get("prefetch.streams_allocated") != 1 {
		t.Fatal("stream not allocated")
	}
}

func TestAscendingStreamPrefetchesAhead(t *testing.T) {
	p, r, _ := newPF()
	p.OnMiss(lineAddr(100))
	p.OnMiss(lineAddr(101))
	if len(r.addrs) != DefaultConfig().Degree {
		t.Fatalf("issued %d prefetches, want %d", len(r.addrs), DefaultConfig().Degree)
	}
	for i, a := range r.addrs {
		want := lineAddr(102 + int64(i))
		if a != want {
			t.Fatalf("prefetch[%d] = %#x, want %#x", i, uint64(a), uint64(want))
		}
	}
}

func TestDescendingStream(t *testing.T) {
	p, r, _ := newPF()
	p.OnMiss(lineAddr(200))
	p.OnMiss(lineAddr(199))
	if len(r.addrs) == 0 {
		t.Fatal("no prefetches for descending stream")
	}
	if r.addrs[0] != lineAddr(198) {
		t.Fatalf("first prefetch = %#x, want line 198", uint64(r.addrs[0]))
	}
}

func TestDistanceCap(t *testing.T) {
	p, r, _ := newPF()
	cfg := DefaultConfig()
	p.OnMiss(lineAddr(0))
	// Keep hitting the same stream; prefetches must never run more than
	// Distance lines past the latest miss.
	last := int64(0)
	for i := int64(1); i <= 20; i++ {
		p.OnMiss(lineAddr(i))
		last = i
	}
	for _, a := range r.addrs {
		line := int64(uint64(a) >> arch.LineShift)
		if line > last+int64(cfg.Distance) {
			t.Fatalf("prefetch to line %d exceeds distance cap (last miss %d)", line, last)
		}
	}
}

func TestNoDuplicatePrefetches(t *testing.T) {
	p, r, _ := newPF()
	for i := int64(0); i < 10; i++ {
		p.OnMiss(lineAddr(i))
	}
	seen := map[arch.PhysAddr]bool{}
	for _, a := range r.addrs {
		if seen[a] {
			t.Fatalf("duplicate prefetch of %#x", uint64(a))
		}
		seen[a] = true
	}
}

func TestDistantMissAllocatesNewStream(t *testing.T) {
	p, _, st := newPF()
	p.OnMiss(lineAddr(0))
	p.OnMiss(lineAddr(100000))
	if st.Get("prefetch.streams_allocated") != 2 {
		t.Fatalf("allocated = %d, want 2", st.Get("prefetch.streams_allocated"))
	}
}

func TestStreamTableLRUReplacement(t *testing.T) {
	p, r, st := newPF()
	cfg := DefaultConfig()
	// Allocate Streams+1 distinct streams; the first should be replaced.
	for i := 0; i <= cfg.Streams; i++ {
		p.OnMiss(lineAddr(int64(i) * 1000000))
	}
	if st.Get("prefetch.streams_allocated") != uint64(cfg.Streams+1) {
		t.Fatalf("allocated = %d", st.Get("prefetch.streams_allocated"))
	}
	// A miss near stream 0's old position must retrain from scratch (no
	// immediate prefetch burst from a stale entry with wrong direction).
	before := len(r.addrs)
	p.OnMiss(lineAddr(1))
	if len(r.addrs) != before {
		t.Fatal("stale stream produced prefetches")
	}
}

func TestDirectionFlipRetrains(t *testing.T) {
	p, r, _ := newPF()
	p.OnMiss(lineAddr(100))
	p.OnMiss(lineAddr(101)) // ascending established
	n := len(r.addrs)
	p.OnMiss(lineAddr(99)) // flip
	if len(r.addrs) <= n {
		t.Fatal("flip should issue prefetches in the new direction")
	}
	lastBatch := r.addrs[n:]
	if lastBatch[0] != lineAddr(98) {
		t.Fatalf("first post-flip prefetch = line %d, want 98", uint64(lastBatch[0])>>arch.LineShift)
	}
}

func TestOverlayAddressesPrefetchable(t *testing.T) {
	// Overlay-space streams (e.g. SpMV over overlays) must train too.
	p, r, _ := newPF()
	base := arch.PhysAddr(arch.OverlayBit)
	p.OnMiss(base)
	p.OnMiss(base + arch.LineSize)
	if len(r.addrs) == 0 {
		t.Fatal("no prefetches in overlay space")
	}
	if !r.addrs[0].IsOverlay() {
		t.Fatal("prefetch address lost the overlay bit")
	}
}
