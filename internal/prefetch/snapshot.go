package prefetch

// Snapshot support: the stream table and its LRU clock are plain
// values; capturing them is a slice copy.

// Snapshot is an immutable capture of the prefetcher's training state.
type Snapshot struct {
	streams []stream
	clock   uint64
}

// Snapshot captures the stream table.
func (p *Prefetcher) Snapshot() *Snapshot {
	return &Snapshot{streams: append([]stream(nil), p.streams...), clock: p.clock}
}

// Restore loads the captured streams into this prefetcher, which must
// have the same stream count.
func (p *Prefetcher) Restore(s *Snapshot) {
	if len(s.streams) != len(p.streams) {
		panic("prefetch: restore stream-count mismatch")
	}
	copy(p.streams, s.streams)
	p.clock = s.clock
}
