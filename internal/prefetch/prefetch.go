// Package prefetch implements the feedback-directed multi-stream
// prefetcher of Table 2 (Srinath et al., HPCA 2007; IBM Power6-style):
// 16 stream entries trained on L2 demand misses, prefetch degree 4,
// prefetch distance 24 lines, filling into L3.
package prefetch

import (
	"repro/internal/arch"
	"repro/internal/sim"
)

// Target receives the prefetch requests (the cache hierarchy fills them
// into L3). Prefetch reports whether a new fetch was actually issued
// (false when the line is already cached or in flight).
type Target interface {
	Prefetch(addr arch.PhysAddr) bool
}

// Config tunes the prefetcher.
type Config struct {
	Streams   int // stream table entries
	Degree    int // prefetches issued per trained miss
	Distance  int // how far ahead of the demand stream to run, in lines
	TrainSpan int // a miss within this many lines of a stream trains it
}

// DefaultConfig mirrors Table 2.
func DefaultConfig() Config {
	return Config{Streams: 16, Degree: 4, Distance: 24, TrainSpan: 16}
}

type stream struct {
	valid    bool
	lastLine int64 // line number of most recent miss in this stream
	dir      int64 // +1, -1, or 0 while direction is unknown
	aheadTo  int64 // highest (dir-relative) line already prefetched
	lastUsed uint64
}

// Prefetcher is the stream table. It implements cache.MissObserver.
type Prefetcher struct {
	cfg     Config
	target  Target
	stats   *sim.Stats
	streams []stream
	clock   uint64
}

// New builds a prefetcher that issues into target.
func New(cfg Config, target Target, stats *sim.Stats) *Prefetcher {
	return &Prefetcher{cfg: cfg, target: target, stats: stats, streams: make([]stream, cfg.Streams)}
}

// OnMiss trains the prefetcher with an L2 demand miss.
func (p *Prefetcher) OnMiss(addr arch.PhysAddr) {
	line := int64(uint64(addr) >> arch.LineShift)
	p.clock++

	if s := p.match(line); s != nil {
		s.lastUsed = p.clock
		delta := line - s.lastLine
		if delta == 0 {
			return
		}
		dir := int64(1)
		if delta < 0 {
			dir = -1
		}
		if s.dir == 0 {
			s.dir = dir
			s.aheadTo = line
		} else if s.dir != dir {
			// Direction flip: retrain the stream in the new direction.
			s.dir = dir
			s.aheadTo = line
		}
		s.lastLine = line
		p.issue(s)
		return
	}
	p.allocate(line)
}

// match finds a stream whose trained window covers the missing line.
func (p *Prefetcher) match(line int64) *stream {
	for i := range p.streams {
		s := &p.streams[i]
		if !s.valid {
			continue
		}
		d := line - s.lastLine
		if d < 0 {
			d = -d
		}
		if d <= int64(p.cfg.TrainSpan) {
			return s
		}
	}
	return nil
}

func (p *Prefetcher) allocate(line int64) {
	victim := 0
	for i := range p.streams {
		if !p.streams[i].valid {
			victim = i
			break
		}
		if p.streams[i].lastUsed < p.streams[victim].lastUsed {
			victim = i
		}
	}
	p.streams[victim] = stream{valid: true, lastLine: line, lastUsed: p.clock}
	if p.stats != nil {
		p.stats.Inc("prefetch.streams_allocated")
	}
}

// issue sends up to Degree prefetches, staying within Distance lines of
// the demand stream.
func (p *Prefetcher) issue(s *stream) {
	limit := s.lastLine + s.dir*int64(p.cfg.Distance)
	issued := 0
	for issued < p.cfg.Degree {
		next := s.aheadTo + s.dir
		if s.dir > 0 && next > limit || s.dir < 0 && next < limit {
			return
		}
		if next < 0 {
			return
		}
		s.aheadTo = next
		p.target.Prefetch(arch.PhysAddr(uint64(next) << arch.LineShift))
		if p.stats != nil {
			p.stats.Inc("prefetch.issued")
		}
		issued++
	}
}
